package gossip

import (
	"reflect"
	"sort"
	"testing"
)

func TestSamplerDeterministic(t *testing.T) {
	peers := []string{"a", "b", "c", "d", "e"}
	s1 := NewSampler(42)
	s2 := NewSampler(42)
	s1.SetPeers(peers)
	s2.SetPeers(peers)
	for i := 0; i < 20; i++ {
		a, b := s1.Next(2), s2.Next(2)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("draw %d diverged: %v vs %v", i, a, b)
		}
	}
}

func TestSamplerRoundRobinCoverage(t *testing.T) {
	peers := []string{"a", "b", "c", "d", "e", "f", "g"}
	s := NewSampler(7)
	s.SetPeers(peers)
	// One full traversal must visit every peer exactly once.
	seen := map[string]int{}
	for i := 0; i < len(peers); i++ {
		for _, p := range s.Next(1) {
			seen[p]++
		}
	}
	for _, p := range peers {
		if seen[p] != 1 {
			t.Fatalf("peer %s visited %d times in one traversal", p, seen[p])
		}
	}
}

func TestSamplerSetPeersKeepsPositionWhenUnchanged(t *testing.T) {
	peers := []string{"a", "b", "c", "d"}
	s := NewSampler(3)
	s.SetPeers(peers)
	first := s.Next(1)[0]
	// Re-setting the identical membership must not restart the traversal.
	s.SetPeers([]string{"a", "b", "c", "d"})
	second := s.Next(1)[0]
	if first == second {
		t.Fatalf("traversal restarted after no-op SetPeers: drew %s twice", first)
	}
	seen := map[string]bool{first: true, second: true}
	for i := 0; i < 2; i++ {
		seen[s.Next(1)[0]] = true
	}
	if len(seen) != 4 {
		t.Fatalf("traversal after no-op SetPeers revisited a peer: %v", seen)
	}
}

func TestSamplerSetPeersRebuildsOnChange(t *testing.T) {
	s := NewSampler(9)
	s.SetPeers([]string{"a", "b", "c"})
	s.Next(2)
	s.SetPeers([]string{"a", "b", "c", "d"})
	if s.Peers() != 4 {
		t.Fatalf("ring size = %d, want 4", s.Peers())
	}
	got := s.Next(4)
	sort.Strings(got)
	if !reflect.DeepEqual(got, []string{"a", "b", "c", "d"}) {
		t.Fatalf("rebuilt ring = %v", got)
	}
}

func TestSamplerPickExcludes(t *testing.T) {
	s := NewSampler(11)
	s.SetPeers([]string{"a", "b", "c", "d", "e"})
	for i := 0; i < 10; i++ {
		got := s.Pick(3, map[string]bool{"c": true})
		if len(got) != 3 {
			t.Fatalf("Pick returned %d peers, want 3", len(got))
		}
		for _, p := range got {
			if p == "c" {
				t.Fatalf("Pick returned excluded peer: %v", got)
			}
		}
	}
	// Asking for more than available caps at the candidate count.
	if got := s.Pick(10, map[string]bool{"a": true}); len(got) != 4 {
		t.Fatalf("Pick(10) = %d peers, want 4", len(got))
	}
	if got := s.Pick(0, nil); got != nil {
		t.Fatalf("Pick(0) = %v, want nil", got)
	}
}

func TestSamplerEmpty(t *testing.T) {
	s := NewSampler(1)
	if got := s.Next(3); got != nil {
		t.Fatalf("Next on empty ring = %v", got)
	}
	if got := s.Pick(1, nil); got != nil {
		t.Fatalf("Pick on empty ring = %v", got)
	}
}

func TestBudgetGrowsLogarithmically(t *testing.T) {
	cases := []struct {
		lambda, n, want int
	}{
		{3, 0, 3},    // log term floors at 1
		{3, 1, 6},    // ceil(log2(2)) = 1 -> 2 with the +1 convention
		{3, 7, 12},   // ceil(log2(8)) = 3 -> 4
		{3, 63, 21},  // n=63 -> 7
		{3, 511, 30}, // n=511 -> 10
		{0, 63, 7},   // lambda floors at 1
	}
	for _, c := range cases {
		if got := Budget(c.lambda, c.n); got != c.want {
			t.Errorf("Budget(%d, %d) = %d, want %d", c.lambda, c.n, got, c.want)
		}
	}
	// Sub-linear: doubling n adds a constant, not a factor.
	if Budget(3, 1024)-Budget(3, 512) > 3 {
		t.Errorf("budget not logarithmic: %d vs %d", Budget(3, 512), Budget(3, 1024))
	}
}

func TestQueueRankSupersedes(t *testing.T) {
	q := NewQueue()
	if !q.Put("src", 5, "old", 10) {
		t.Fatal("first Put rejected")
	}
	if q.Put("src", 5, "dup", 10) {
		t.Fatal("equal-rank Put accepted; should be stale")
	}
	if q.Put("src", 4, "older", 10) {
		t.Fatal("lower-rank Put accepted")
	}
	if !q.Put("src", 6, "new", 10) {
		t.Fatal("higher-rank Put rejected")
	}
	got := q.Take(1)
	if len(got) != 1 || got[0].(string) != "new" {
		t.Fatalf("Take = %v, want [new]", got)
	}
	if q.Rank("src") != 6 {
		t.Fatalf("Rank = %d, want 6", q.Rank("src"))
	}
	if q.Rank("absent") != 0 {
		t.Fatalf("Rank(absent) = %d, want 0", q.Rank("absent"))
	}
}

func TestQueueBudgetExhaustion(t *testing.T) {
	q := NewQueue()
	q.Put("a", 1, "a1", 2)
	for i := 0; i < 2; i++ {
		if got := q.Take(4); len(got) != 1 {
			t.Fatalf("Take %d = %v, want one item", i, got)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("entry survived its budget: len=%d", q.Len())
	}
	if got := q.Take(4); got != nil {
		t.Fatalf("Take on drained queue = %v", got)
	}
}

func TestQueuePrefersLeastTransmitted(t *testing.T) {
	q := NewQueue()
	q.Put("a", 1, "a", 10)
	q.Put("b", 1, "b", 10)
	q.Take(2) // both at 1 send
	q.Put("c", 1, "c", 10)
	got := q.Take(1)
	if len(got) != 1 || got[0].(string) != "c" {
		t.Fatalf("Take = %v, want the fresh update c", got)
	}
	// Now all at 1 send; ties break by key deterministically.
	got = q.Take(2)
	if len(got) != 2 || got[0].(string) != "a" || got[1].(string) != "b" {
		t.Fatalf("tie-break Take = %v, want [a b]", got)
	}
}

func TestQueueRankResetsBudget(t *testing.T) {
	q := NewQueue()
	q.Put("src", 1, "v1", 2)
	q.Take(1)
	// A superseding update starts a fresh retransmit budget.
	q.Put("src", 2, "v2", 2)
	for i := 0; i < 2; i++ {
		got := q.Take(1)
		if len(got) != 1 || got[0].(string) != "v2" {
			t.Fatalf("Take %d = %v, want v2", i, got)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("len=%d after budget spent", q.Len())
	}
}

// Package gossip provides the protocol-generic building blocks of a
// SWIM-style peer-sampled membership layer (Das et al., "SWIM: Scalable
// Weakly-consistent Infection-style Process Group Membership Protocol"):
// a deterministic round-robin peer sampler and a bounded piggyback queue
// that retransmits each update O(log n) times. The node-side state machine
// (probe timers, suspicion, eviction, refutation) lives in internal/athena;
// this package holds the pieces that are pure data structure and therefore
// testable in isolation.
package gossip

import (
	"math/rand"
	"sort"
)

// Sampler deals peers in SWIM's round-robin random order: every peer is
// visited exactly once per ring traversal (so probe intervals are bounded
// by ceil(n/k) ticks, not merely expected), and the ring is reshuffled
// between traversals. It is deterministic in its seed, which keeps
// simulated runs reproducible.
type Sampler struct {
	rng  *rand.Rand
	ring []string
	pos  int
}

// NewSampler returns a sampler drawing from the given seed.
func NewSampler(seed int64) *Sampler {
	return &Sampler{rng: rand.New(rand.NewSource(seed))}
}

// SetPeers replaces the peer set. The ring is rebuilt (and reshuffled)
// only when the membership actually changed, so steady-state ticks keep
// their round-robin position.
func (s *Sampler) SetPeers(peers []string) {
	if len(peers) == len(s.ring) {
		sorted := append([]string(nil), s.ring...)
		sort.Strings(sorted)
		same := true
		for i, p := range peers {
			if sorted[i] != p {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	s.ring = append(s.ring[:0:0], peers...)
	sort.Strings(s.ring) // canonical order before the shuffle, for determinism
	s.rng.Shuffle(len(s.ring), func(i, j int) { s.ring[i], s.ring[j] = s.ring[j], s.ring[i] })
	s.pos = 0
}

// Next deals the next k distinct peers off the ring, reshuffling when a
// traversal completes. Fewer than k are returned only when the ring is
// smaller than k.
func (s *Sampler) Next(k int) []string {
	if len(s.ring) == 0 || k <= 0 {
		return nil
	}
	if k > len(s.ring) {
		k = len(s.ring)
	}
	out := make([]string, 0, k)
	for len(out) < k {
		if s.pos >= len(s.ring) {
			s.rng.Shuffle(len(s.ring), func(i, j int) { s.ring[i], s.ring[j] = s.ring[j], s.ring[i] })
			s.pos = 0
		}
		out = append(out, s.ring[s.pos])
		s.pos++
	}
	return out
}

// Pick draws k distinct peers uniformly at random, skipping excluded ids —
// the ping-req intermediary choice, which must not reuse the ring position
// (an indirect probe should not perturb the round-robin schedule).
func (s *Sampler) Pick(k int, exclude map[string]bool) []string {
	if k <= 0 || len(s.ring) == 0 {
		return nil
	}
	candidates := make([]string, 0, len(s.ring))
	for _, p := range s.ring {
		if !exclude[p] {
			candidates = append(candidates, p)
		}
	}
	sort.Strings(candidates)
	if k > len(candidates) {
		k = len(candidates)
	}
	s.rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	return candidates[:k]
}

// Peers returns the current ring size.
func (s *Sampler) Peers() int { return len(s.ring) }

// Budget is SWIM's per-update retransmit allowance: lambda * ceil(log2(n+1)),
// at least 1. Disseminating each update that many times reaches all n
// members with high probability while bounding per-update traffic.
func Budget(lambda, n int) int {
	if lambda <= 0 {
		lambda = 1
	}
	log := 1
	for v := 1; v < n+1; v <<= 1 {
		log++
	}
	b := lambda * log
	if b < 1 {
		b = 1
	}
	return b
}

// queueEntry is one update awaiting dissemination.
type queueEntry struct {
	key     string
	rank    uint64
	payload any
	sends   int
	budget  int
}

// Queue is the bounded piggyback buffer: updates keyed by subject, each
// carrying a precedence rank (newer protocol state replaces older) and a
// retransmit budget. Take prefers the least-transmitted updates (SWIM's
// freshness bias) and drops entries whose budget is spent.
type Queue struct {
	entries map[string]*queueEntry
}

// NewQueue returns an empty piggyback queue.
func NewQueue() *Queue {
	return &Queue{entries: make(map[string]*queueEntry)}
}

// Put inserts or supersedes the update for key. A strictly higher rank
// replaces the stored update and resets its transmit count; an equal or
// lower rank is stale and ignored. Returns whether the update was stored.
func (q *Queue) Put(key string, rank uint64, payload any, budget int) bool {
	if e, ok := q.entries[key]; ok && rank <= e.rank {
		return false
	}
	q.entries[key] = &queueEntry{key: key, rank: rank, payload: payload, budget: budget}
	return true
}

// Rank returns the stored precedence rank for key (0 when absent).
func (q *Queue) Rank(key string) uint64 {
	if e, ok := q.entries[key]; ok {
		return e.rank
	}
	return 0
}

// Take returns up to max payloads for piggybacking on an outgoing message,
// least-transmitted first (ties broken by key for determinism), charging
// one transmission to each and evicting entries whose budget is exhausted.
func (q *Queue) Take(max int) []any {
	if max <= 0 || len(q.entries) == 0 {
		return nil
	}
	ordered := make([]*queueEntry, 0, len(q.entries))
	for _, e := range q.entries {
		ordered = append(ordered, e)
	}
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].sends != ordered[b].sends {
			return ordered[a].sends < ordered[b].sends
		}
		return ordered[a].key < ordered[b].key
	})
	if max > len(ordered) {
		max = len(ordered)
	}
	out := make([]any, 0, max)
	for _, e := range ordered[:max] {
		out = append(out, e.payload)
		e.sends++
		if e.sends >= e.budget {
			delete(q.entries, e.key)
		}
	}
	return out
}

// Len is the number of updates still awaiting dissemination.
func (q *Queue) Len() int { return len(q.entries) }

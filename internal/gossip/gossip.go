// Package gossip provides the protocol-generic building blocks of a
// SWIM-style peer-sampled membership layer (Das et al., "SWIM: Scalable
// Weakly-consistent Infection-style Process Group Membership Protocol"):
// a deterministic round-robin peer sampler and a bounded piggyback queue
// that retransmits each update O(log n) times. The node-side state machine
// (probe timers, suspicion, eviction, refutation) lives in internal/athena;
// this package holds the pieces that are pure data structure and therefore
// testable in isolation.
package gossip

import (
	"math/rand"
	"sort"
)

// Sampler deals peers in SWIM's round-robin random order: every peer is
// visited exactly once per ring traversal (so probe intervals are bounded
// by ceil(n/k) ticks, not merely expected), and the ring is reshuffled
// between traversals. It is deterministic in its seed, which keeps
// simulated runs reproducible.
type Sampler struct {
	rng    *rand.Rand
	ring   []string
	sorted []string // ring in canonical order, for SetPeers change detection
	pos    int
	next   []string // Next's deal scratch, reused across calls
	pick   []string // Pick's candidate scratch, reused across calls
}

// splitmixSource is a tiny deterministic rand.Source64 (splitmix64,
// Steele et al.). The stdlib's default source carries ~5KB of state per
// instance and a fleet allocates one sampler per node, so the sampler
// draws from this 8-byte generator instead.
type splitmixSource struct{ state uint64 }

func (s *splitmixSource) Seed(seed int64) { s.state = uint64(seed) }

func (s *splitmixSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// NewSampler returns a sampler drawing from the given seed.
func NewSampler(seed int64) *Sampler {
	return &Sampler{rng: rand.New(&splitmixSource{state: uint64(seed)})}
}

// SetPeers replaces the peer set; peers must be sorted. The ring is
// rebuilt (and reshuffled) only when the membership actually changed, so
// steady-state ticks keep their round-robin position.
func (s *Sampler) SetPeers(peers []string) {
	if len(peers) == len(s.sorted) {
		same := true
		for i, p := range peers {
			if s.sorted[i] != p {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	s.sorted = append(s.sorted[:0], peers...)
	sort.Strings(s.sorted) // canonical order, also the pre-shuffle state
	s.ring = append(s.ring[:0], s.sorted...)
	s.rng.Shuffle(len(s.ring), func(i, j int) { s.ring[i], s.ring[j] = s.ring[j], s.ring[i] })
	s.pos = 0
}

// Next deals the next k distinct peers off the ring, reshuffling when a
// traversal completes. Fewer than k are returned only when the ring is
// smaller than k. The returned slice is scratch owned by the sampler,
// valid until the next call.
func (s *Sampler) Next(k int) []string {
	if len(s.ring) == 0 || k <= 0 {
		return nil
	}
	if k > len(s.ring) {
		k = len(s.ring)
	}
	out := s.next[:0]
	for len(out) < k {
		if s.pos >= len(s.ring) {
			s.rng.Shuffle(len(s.ring), func(i, j int) { s.ring[i], s.ring[j] = s.ring[j], s.ring[i] })
			s.pos = 0
		}
		out = append(out, s.ring[s.pos])
		s.pos++
	}
	s.next = out
	return out
}

// Pick draws k distinct peers uniformly at random, skipping excluded ids —
// the ping-req intermediary choice, which must not reuse the ring position
// (an indirect probe should not perturb the round-robin schedule). The
// returned slice is scratch owned by the sampler, valid until the next
// Pick.
func (s *Sampler) Pick(k int, exclude map[string]bool) []string {
	if k <= 0 || len(s.ring) == 0 {
		return nil
	}
	candidates := s.pick[:0]
	for _, p := range s.ring {
		if !exclude[p] {
			candidates = append(candidates, p)
		}
	}
	sort.Strings(candidates)
	if k > len(candidates) {
		k = len(candidates)
	}
	s.rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	s.pick = candidates
	return candidates[:k]
}

// Peers returns the current ring size.
func (s *Sampler) Peers() int { return len(s.ring) }

// Budget is SWIM's per-update retransmit allowance: lambda * ceil(log2(n+1)),
// at least 1. Disseminating each update that many times reaches all n
// members with high probability while bounding per-update traffic.
func Budget(lambda, n int) int {
	if lambda <= 0 {
		lambda = 1
	}
	log := 1
	for v := 1; v < n+1; v <<= 1 {
		log++
	}
	b := lambda * log
	if b < 1 {
		b = 1
	}
	return b
}

// queueEntry is one update awaiting dissemination.
type queueEntry struct {
	key     string
	rank    uint64
	payload any
	sends   int
	budget  int
}

// Queue is the bounded piggyback buffer: updates keyed by subject, each
// carrying a precedence rank (newer protocol state replaces older) and a
// retransmit budget. Take prefers the least-transmitted updates (SWIM's
// freshness bias) and drops entries whose budget is spent.
type Queue struct {
	entries map[string]*queueEntry
	ordered []*queueEntry // Take's sort scratch, reused across calls
}

// NewQueue returns an empty piggyback queue.
func NewQueue() *Queue {
	return &Queue{entries: make(map[string]*queueEntry)}
}

// Put inserts or supersedes the update for key. A strictly higher rank
// replaces the stored update and resets its transmit count; an equal or
// lower rank is stale and ignored. Returns whether the update was stored.
func (q *Queue) Put(key string, rank uint64, payload any, budget int) bool {
	if e, ok := q.entries[key]; ok && rank <= e.rank {
		return false
	}
	q.entries[key] = &queueEntry{key: key, rank: rank, payload: payload, budget: budget}
	return true
}

// Rank returns the stored precedence rank for key (0 when absent).
func (q *Queue) Rank(key string) uint64 {
	if e, ok := q.entries[key]; ok {
		return e.rank
	}
	return 0
}

// Take returns up to max payloads for piggybacking on an outgoing message,
// least-transmitted first (ties broken by key for determinism), charging
// one transmission to each and evicting entries whose budget is exhausted.
func (q *Queue) Take(max int) []any {
	if max <= 0 || len(q.entries) == 0 {
		return nil
	}
	ordered := q.ordered[:0]
	for _, e := range q.entries {
		ordered = append(ordered, e)
	}
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].sends != ordered[b].sends {
			return ordered[a].sends < ordered[b].sends
		}
		return ordered[a].key < ordered[b].key
	})
	if max > len(ordered) {
		max = len(ordered)
	}
	out := make([]any, 0, max)
	for _, e := range ordered[:max] {
		out = append(out, e.payload)
		e.sends++
		if e.sends >= e.budget {
			delete(q.entries, e.key)
		}
	}
	for i := range ordered {
		ordered[i] = nil // drop entry references so evictions can collect
	}
	q.ordered = ordered[:0]
	return out
}

// Len is the number of updates still awaiting dissemination.
func (q *Queue) Len() int { return len(q.entries) }

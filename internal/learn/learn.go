// Package learn implements the model-learning loop sketched in
// Section VIII: the system observes label values over time and derives
// its own models of the physical phenomena — validity intervals (how fast
// state changes) and success probabilities (how often a predicate holds) —
// which then feed the planner's MetaTable. It also supports explicit
// invalidation: an external event (an earthquake, a concert letting out)
// resets what was learned about affected labels.
package learn

import (
	"math"
	"sort"
	"sync"
	"time"

	"athena/internal/boolexpr"
)

// Observation is one annotated label value at a point in time.
type Observation struct {
	// Label is the observed predicate.
	Label string
	// Value is the observed boolean state.
	Value bool
	// At is when the underlying evidence was sampled.
	At time.Time
}

// labelModel accumulates per-label statistics.
type labelModel struct {
	observations []Observation // kept sorted by At
	trueCount    int
}

// Estimator learns per-label physical models from observations. It is
// safe for concurrent use.
type Estimator struct {
	mu     sync.Mutex
	models map[string]*labelModel

	// MaxHistory bounds per-label observation history (default 512).
	maxHistory int
}

// NewEstimator returns an empty estimator keeping at most maxHistory
// observations per label (<= 0 means the 512 default).
func NewEstimator(maxHistory int) *Estimator {
	if maxHistory <= 0 {
		maxHistory = 512
	}
	return &Estimator{
		models:     make(map[string]*labelModel),
		maxHistory: maxHistory,
	}
}

// Observe records a label observation.
func (e *Estimator) Observe(obs Observation) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.models[obs.Label]
	if m == nil {
		m = &labelModel{}
		e.models[obs.Label] = m
	}
	// Insert keeping At order (observations usually arrive in order, so
	// this is an append in the common case).
	idx := sort.Search(len(m.observations), func(i int) bool {
		return m.observations[i].At.After(obs.At)
	})
	m.observations = append(m.observations, Observation{})
	copy(m.observations[idx+1:], m.observations[idx:])
	m.observations[idx] = obs
	if obs.Value {
		m.trueCount++
	}
	if len(m.observations) > e.maxHistory {
		if m.observations[0].Value {
			m.trueCount--
		}
		m.observations = m.observations[1:]
	}
}

// Invalidate discards everything learned about a label — Section VIII's
// external invalidation ("a large earthquake may invalidate such past
// observations").
func (e *Estimator) Invalidate(label string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.models, label)
}

// Observations reports how many observations are held for a label.
func (e *Estimator) Observations(label string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if m := e.models[label]; m != nil {
		return len(m.observations)
	}
	return 0
}

// ProbTrue is the Laplace-smoothed probability the label is true.
func (e *Estimator) ProbTrue(label string) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.models[label]
	if m == nil {
		return 0.5
	}
	return float64(m.trueCount+1) / float64(len(m.observations)+2)
}

// EstimateValidity estimates the label's validity interval from observed
// state flips: with state constant within epochs of period P and
// observations spaced finer than P, the shortest observed gap between a
// flip's bracketing observations lower-bounds P, and the mean run length
// between flips estimates it. We use the conservative estimate
//
//	P ≈ (span between first and last flip) / (number of flips)
//
// which converges to the true period for periodic phenomena and returns
// (fallback, false) with fewer than two flips observed.
func (e *Estimator) EstimateValidity(label string, fallback time.Duration) (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.models[label]
	if m == nil || len(m.observations) < 3 {
		return fallback, false
	}
	var flipTimes []time.Time
	for i := 1; i < len(m.observations); i++ {
		if m.observations[i].Value != m.observations[i-1].Value {
			// Midpoint of the bracketing observations approximates the
			// flip instant.
			gap := m.observations[i].At.Sub(m.observations[i-1].At)
			flipTimes = append(flipTimes, m.observations[i-1].At.Add(gap/2))
		}
	}
	if len(flipTimes) < 2 {
		return fallback, false
	}
	span := flipTimes[len(flipTimes)-1].Sub(flipTimes[0])
	est := span / time.Duration(len(flipTimes)-1)
	if est <= 0 {
		return fallback, false
	}
	return est, true
}

// Meta derives a planner metadata entry for the label, preserving the
// given retrieval cost and falling back to the provided defaults where
// nothing was learned.
func (e *Estimator) Meta(label string, cost float64, fallback boolexpr.Meta) boolexpr.Meta {
	validity, learned := e.EstimateValidity(label, fallback.Validity)
	out := boolexpr.Meta{
		Cost:     cost,
		ProbTrue: e.ProbTrue(label),
		Validity: validity,
		Latency:  fallback.Latency,
	}
	if !learned {
		out.Validity = fallback.Validity
	}
	if e.Observations(label) == 0 {
		out.ProbTrue = fallback.ProbTrue
	}
	return out
}

// Refine produces a MetaTable combining learned models with a base table:
// labels with enough observations get learned probabilities and validity
// estimates; others keep the base entry. minObservations gates how much
// history a label needs before its learned model is trusted.
func (e *Estimator) Refine(base boolexpr.MetaTable, minObservations int) boolexpr.MetaTable {
	e.mu.Lock()
	labels := make([]string, 0, len(e.models))
	for l, m := range e.models {
		if len(m.observations) >= minObservations {
			labels = append(labels, l)
		}
	}
	e.mu.Unlock()

	out := make(boolexpr.MetaTable, len(base))
	for l, meta := range base {
		out[l] = meta
	}
	for _, l := range labels {
		fallback := out[l]
		out[l] = e.Meta(l, fallback.Cost, fallback)
	}
	return out
}

// FlipRate is the observed flips per unit time, a dynamics score used to
// rank labels from most to least volatile (0 when unknown).
func (e *Estimator) FlipRate(label string) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.models[label]
	if m == nil || len(m.observations) < 2 {
		return 0
	}
	flips := 0
	for i := 1; i < len(m.observations); i++ {
		if m.observations[i].Value != m.observations[i-1].Value {
			flips++
		}
	}
	span := m.observations[len(m.observations)-1].At.Sub(m.observations[0].At)
	if span <= 0 {
		return 0
	}
	return float64(flips) / span.Seconds()
}

// MostVolatile returns the labels sorted by descending flip rate.
func (e *Estimator) MostVolatile() []string {
	e.mu.Lock()
	labels := make([]string, 0, len(e.models))
	for l := range e.models {
		labels = append(labels, l)
	}
	e.mu.Unlock()
	sort.SliceStable(labels, func(a, b int) bool {
		ra, rb := e.FlipRate(labels[a]), e.FlipRate(labels[b])
		if math.Abs(ra-rb) > 1e-12 {
			return ra > rb
		}
		return labels[a] < labels[b]
	})
	return labels
}

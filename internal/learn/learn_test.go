package learn

import (
	"fmt"
	"math"
	"testing"
	"time"

	"athena/internal/boolexpr"
	"athena/internal/workload"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestProbTrueSmoothing(t *testing.T) {
	e := NewEstimator(0)
	if got := e.ProbTrue("x"); got != 0.5 {
		t.Errorf("unknown ProbTrue = %v", got)
	}
	for i := 0; i < 8; i++ {
		e.Observe(Observation{Label: "x", Value: true, At: t0.Add(time.Duration(i) * time.Second)})
	}
	e.Observe(Observation{Label: "x", Value: false, At: t0.Add(9 * time.Second)})
	want := float64(8+1) / float64(9+2)
	if got := e.ProbTrue("x"); math.Abs(got-want) > 1e-12 {
		t.Errorf("ProbTrue = %v, want %v", got, want)
	}
}

func TestEstimateValidityConvergesToPeriod(t *testing.T) {
	// Square wave with a 10s period, sampled every second.
	e := NewEstimator(0)
	const period = 10 * time.Second
	for i := 0; i < 200; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		value := (at.Sub(t0)/period)%2 == 0
		e.Observe(Observation{Label: "wave", Value: value, At: at})
	}
	got, ok := e.EstimateValidity("wave", time.Minute)
	if !ok {
		t.Fatal("no estimate despite many flips")
	}
	if got < 9*time.Second || got > 11*time.Second {
		t.Errorf("estimated period = %v, want ~10s", got)
	}
}

func TestEstimateValidityAgainstWorkloadWorld(t *testing.T) {
	// End-to-end against the actual scenario ground truth: a fast label
	// flipping every 18s should be recognized as far more volatile than
	// a slow label flipping every 10m.
	w := workload.NewWorld(5, t0, 0.5, 10*time.Minute)
	w.SetPeriod("fast", 18*time.Second)
	w.SetPeriod("slow", 10*time.Minute)

	e := NewEstimator(2048)
	for i := 0; i < 1200; i++ {
		at := t0.Add(time.Duration(i) * 3 * time.Second) // one hour, 3s sampling
		e.Observe(Observation{Label: "fast", Value: w.LabelValue("fast", at), At: at})
		e.Observe(Observation{Label: "slow", Value: w.LabelValue("slow", at), At: at})
	}
	fast, ok := e.EstimateValidity("fast", time.Minute)
	if !ok {
		t.Fatal("no fast estimate")
	}
	slow, ok := e.EstimateValidity("slow", time.Minute)
	if !ok {
		t.Fatal("no slow estimate")
	}
	if fast >= slow {
		t.Errorf("fast estimate %v >= slow estimate %v", fast, slow)
	}
	// The epoch-hash world flips between epochs with probability ~0.5,
	// so the observed inter-flip time is ~2x the epoch period.
	if fast < 18*time.Second || fast > 90*time.Second {
		t.Errorf("fast estimate %v implausible for an 18s epoch", fast)
	}
	ranked := e.MostVolatile()
	if len(ranked) != 2 || ranked[0] != "fast" {
		t.Errorf("MostVolatile = %v", ranked)
	}
}

func TestEstimateValidityNeedsFlips(t *testing.T) {
	e := NewEstimator(0)
	for i := 0; i < 10; i++ {
		e.Observe(Observation{Label: "const", Value: true, At: t0.Add(time.Duration(i) * time.Second)})
	}
	got, ok := e.EstimateValidity("const", 42*time.Second)
	if ok || got != 42*time.Second {
		t.Errorf("constant label estimate = %v, %v; want fallback", got, ok)
	}
}

func TestInvalidate(t *testing.T) {
	e := NewEstimator(0)
	e.Observe(Observation{Label: "bridge", Value: true, At: t0})
	if e.Observations("bridge") != 1 {
		t.Fatal("observation not recorded")
	}
	e.Invalidate("bridge")
	if e.Observations("bridge") != 0 {
		t.Error("invalidation did not clear history")
	}
	if e.ProbTrue("bridge") != 0.5 {
		t.Error("invalidation did not reset probability")
	}
}

func TestHistoryBound(t *testing.T) {
	e := NewEstimator(16)
	for i := 0; i < 100; i++ {
		e.Observe(Observation{Label: "x", Value: i%2 == 0, At: t0.Add(time.Duration(i) * time.Second)})
	}
	if got := e.Observations("x"); got != 16 {
		t.Errorf("history = %d, want 16", got)
	}
	// trueCount stays consistent with retained history.
	p := e.ProbTrue("x")
	if p < 0.4 || p > 0.6 {
		t.Errorf("ProbTrue after trim = %v", p)
	}
}

func TestOutOfOrderObservations(t *testing.T) {
	e := NewEstimator(0)
	// Arrivals out of order must still yield a sane period estimate.
	times := []int{40, 0, 20, 30, 10, 50}
	for _, s := range times {
		at := t0.Add(time.Duration(s) * time.Second)
		value := (s/20)%2 == 0 // flips every 20s
		e.Observe(Observation{Label: "x", Value: value, At: at})
	}
	got, ok := e.EstimateValidity("x", time.Minute)
	if !ok {
		t.Fatal("no estimate")
	}
	if got < 15*time.Second || got > 25*time.Second {
		t.Errorf("period = %v, want ~20s", got)
	}
}

func TestRefine(t *testing.T) {
	e := NewEstimator(0)
	for i := 0; i < 50; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		e.Observe(Observation{Label: "learned", Value: (i/5)%2 == 0, At: at})
	}
	e.Observe(Observation{Label: "sparse", Value: true, At: t0})

	base := boolexpr.MetaTable{
		"learned": {Cost: 100, ProbTrue: 0.9, Validity: time.Hour},
		"sparse":  {Cost: 200, ProbTrue: 0.9, Validity: time.Hour},
		"unseen":  {Cost: 300, ProbTrue: 0.9, Validity: time.Hour},
	}
	refined := e.Refine(base, 10)

	got := refined["learned"]
	if got.Cost != 100 {
		t.Errorf("cost changed: %v", got.Cost)
	}
	if got.Validity >= time.Hour {
		t.Errorf("validity not learned: %v", got.Validity)
	}
	if math.Abs(got.ProbTrue-0.5) > 0.1 {
		t.Errorf("ProbTrue not learned: %v", got.ProbTrue)
	}
	if refined["sparse"] != base["sparse"] {
		t.Errorf("sparse label refined from %d observations", e.Observations("sparse"))
	}
	if refined["unseen"] != base["unseen"] {
		t.Error("unseen label changed")
	}
	if _, ok := base["learned"]; !ok {
		t.Error("base table mutated")
	}
}

func TestFlipRate(t *testing.T) {
	e := NewEstimator(0)
	if e.FlipRate("x") != 0 {
		t.Error("unknown flip rate nonzero")
	}
	for i := 0; i < 11; i++ {
		e.Observe(Observation{Label: "x", Value: i%2 == 0, At: t0.Add(time.Duration(i) * time.Second)})
	}
	// 10 flips over 10 seconds.
	if got := e.FlipRate("x"); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("FlipRate = %v, want 1.0", got)
	}
}

func TestConcurrentObserve(t *testing.T) {
	e := NewEstimator(0)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				e.Observe(Observation{
					Label: fmt.Sprintf("l%d", g),
					Value: i%2 == 0,
					At:    t0.Add(time.Duration(i) * time.Second),
				})
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	for g := 0; g < 4; g++ {
		if got := e.Observations(fmt.Sprintf("l%d", g)); got != 200 {
			t.Errorf("l%d observations = %d", g, got)
		}
	}
}

package lintkit

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// lockClassOf names every struct type owning a mutex field — the
// simplest classOf a client could supply.
func lockClassOf(pkg *Package, recv ast.Expr) (string, bool) {
	sel, ok := recv.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	t := pkg.Info.TypeOf(sel.X)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	return named.Obj().Name(), true
}

func TestLockGraphInfersTransitiveEdgesAndCycles(t *testing.T) {
	m, _ := loadStandalone(t, filepath.Join("testdata", "locks"))
	g := BuildCallGraph(m, m.Pkgs)
	lg := BuildLockGraph(g, lockClassOf)

	edges := make(map[string]LockEdge)
	for _, e := range lg.Edges {
		edges[e.From+"->"+e.To] = e
	}
	ab, ok := edges["A->B"]
	if !ok {
		t.Fatalf("missing inferred edge A -> B; got %v", lg.Edges)
	}
	if ab.Via != "lockB" {
		t.Errorf("A -> B must be attributed to the lockB call, got Via=%q", ab.Via)
	}
	ba, ok := edges["B->A"]
	if !ok {
		t.Fatalf("missing direct edge B -> A; got %v", lg.Edges)
	}
	if ba.Via != "" || ba.FuncName != "Inverted" {
		t.Errorf("B -> A should be a direct acquisition in Inverted, got %+v", ba)
	}

	if !lg.Acquired[nodeNamed(t, g, "Outer")]["B"] {
		t.Error("Outer's acquired set misses B (transitive through lockB)")
	}

	cycles := lg.Cycles()
	if len(cycles) != 1 {
		t.Fatalf("want exactly one cycle, got %d: %+v", len(cycles), cycles)
	}
	if got := strings.Join(cycles[0].Classes, "->"); got != "A->B" {
		t.Errorf("cycle normalizes to %s, want A->B (smallest class first)", got)
	}
}

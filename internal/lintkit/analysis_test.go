package lintkit

import (
	"go/ast"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunAnalyzersSuppression pins the //lint:allow contract: same-line
// and line-above directives mark findings suppressed (retained, excluded
// from Unsuppressed), stale directives are reported as suppressing
// nothing, and unknown check names are malformed.
func TestRunAnalyzersSuppression(t *testing.T) {
	m, pkg := loadStandalone(t, filepath.Join("testdata", "allow"))
	demo := &Analyzer{
		Name: "demo",
		Doc:  "flags every function declaration",
		Run: func(p *Pass) {
			for _, f := range p.Pkg.Files {
				for _, decl := range f.Decls {
					if fd, ok := decl.(*ast.FuncDecl); ok {
						p.Reportf(fd.Pos(), "function %s", fd.Name.Name)
					}
				}
			}
		},
	}
	diags := RunAnalyzers(m, []*Package{pkg}, []*Analyzer{demo}, nil)

	suppressed := make(map[string]bool)
	var directives []string
	for _, d := range diags {
		switch d.Check {
		case "demo":
			suppressed[strings.TrimPrefix(d.Message, "function ")] = d.Suppressed
		case DirectiveCheck:
			directives = append(directives, d.Message)
		default:
			t.Errorf("unexpected check %s: %s", d.Check, d.Message)
		}
	}
	for name, want := range map[string]bool{
		"Annotated": true,  // directive on the same line
		"NextLine":  true,  // directive on the line above
		"Plain":     false, // no directive
	} {
		got, found := suppressed[name]
		if !found {
			t.Errorf("no diagnostic for function %s", name)
			continue
		}
		if got != want {
			t.Errorf("function %s suppressed = %v, want %v", name, got, want)
		}
	}
	if len(directives) != 2 {
		t.Fatalf("want 2 directive findings (stale + malformed), got %d: %v", len(directives), directives)
	}
	if !strings.Contains(directives[0], "suppresses nothing") && !strings.Contains(directives[1], "suppresses nothing") {
		t.Errorf("missing stale-directive finding in %v", directives)
	}
	if !strings.Contains(directives[0]+directives[1], "unknown check") {
		t.Errorf("missing malformed-directive finding in %v", directives)
	}

	if got, want := len(Unsuppressed(diags)), 3; got != want {
		t.Errorf("Unsuppressed kept %d findings, want %d (Plain + 2 directive findings)", got, want)
	}
}

package lintkit

// Module loading: find the module, enumerate its package directories,
// parse and type-check every package in dependency order. Pure stdlib —
// go/build selects files (honouring build constraints), go/parser parses,
// go/types checks, and go/importer's source importer supplies the standard
// library. Module-internal imports are served from the packages checked
// earlier in the same run, so no export data or x/tools machinery is
// needed.

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package of the module. Only non-test files
// are loaded: the invariants athena-lint enforces are about production
// determinism and lifecycle, and tests legitimately use wall time,
// goroutines without stop channels, and ad-hoc randomness.
type Package struct {
	Path  string // import path ("athena", "athena/internal/netsim", ...)
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Fixture marks a testdata package loaded by LoadFixture. Fixture
	// packages are in scope for every check regardless of path.
	Fixture bool
}

// Module is a loaded, type-checked module.
type Module struct {
	Root string // absolute module root (directory of go.mod)
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package // topological order, dependencies first

	byPath map[string]*Package
	std    types.Importer // source importer for the standard library
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			m := moduleLineRE.FindSubmatch(data)
			if m == nil {
				return "", "", fmt.Errorf("no module line in %s", filepath.Join(dir, "go.mod"))
			}
			return dir, string(m[1]), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("go.mod not found above %s", dir)
		}
		dir = parent
	}
}

// LoadModule parses and type-checks every non-test package of the module
// containing dir. Directories named testdata, vendor, or starting with
// "." or "_" are skipped.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:   root,
		Path:   modPath,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}
	m.std = importer.ForCompiler(m.Fset, "source", nil)

	var pkgDirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		pkgDirs = append(pkgDirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(pkgDirs)

	parsed := make(map[string]*Package) // import path -> parsed (unchecked)
	for _, pd := range pkgDirs {
		pkg, err := m.parseDir(pd)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no buildable Go files
		}
		parsed[pkg.Path] = pkg
	}

	order, err := topoSort(parsed)
	if err != nil {
		return nil, err
	}
	for _, pkg := range order {
		if err := m.check(pkg); err != nil {
			return nil, err
		}
		m.byPath[pkg.Path] = pkg
		m.Pkgs = append(m.Pkgs, pkg)
	}
	return m, nil
}

// LoadFixture parses and type-checks a single testdata package against an
// already-loaded module (so fixtures may import module packages). The
// fixture's import path is "fixture/<basename>".
func LoadFixture(m *Module, dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := m.parseDir(abs)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("no buildable Go files in %s", abs)
	}
	pkg.Path = "fixture/" + filepath.Base(abs)
	pkg.Fixture = true
	if err := m.check(pkg); err != nil {
		return nil, err
	}
	return pkg, nil
}

// parseDir parses the buildable non-test Go files of one directory, or
// returns (nil, nil) if it holds none.
func (m *Module) parseDir(dir string) (*Package, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("scan %s: %w", dir, err)
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	path := m.Path
	if rel != "." {
		path = m.Path + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{Path: path, Dir: dir}
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	return pkg, nil
}

// imports lists the import paths of a parsed package.
func imports(pkg *Package) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[p] {
				continue
			}
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// topoSort orders packages dependencies-first, following only
// module-internal edges.
func topoSort(parsed map[string]*Package) ([]*Package, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int)
	var order []*Package
	var visit func(path string) error
	visit = func(path string) error {
		pkg, ok := parsed[path]
		if !ok {
			return nil // stdlib or external: not ours to order
		}
		switch state[path] {
		case visiting:
			return fmt.Errorf("import cycle through %s", path)
		case done:
			return nil
		}
		state[path] = visiting
		for _, dep := range imports(pkg) {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, pkg)
		return nil
	}
	paths := make([]string, 0, len(parsed))
	for p := range parsed {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Import implements types.Importer: module-internal packages come from the
// current run, everything else from the stdlib source importer.
func (m *Module) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := m.byPath[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("package %s not yet type-checked (cycle?)", path)
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

// check type-checks one parsed package, populating pkg.Types and pkg.Info.
func (m *Module) check(pkg *Package) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var firstErr error
	conf := types.Config{
		Importer: m,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(pkg.Path, m.Fset, pkg.Files, info)
	if firstErr != nil {
		return fmt.Errorf("type-check %s: %w", pkg.Path, firstErr)
	}
	if err != nil {
		return fmt.Errorf("type-check %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// Package lintkit is the analysis framework behind cmd/athena-lint: a
// pure-stdlib (go/ast + go/types, no x/tools) module loader, a named
// check / diagnostic / suppression API, a CHA-style call graph with
// reachability, and an inferred lock-acquisition graph. The framework is
// policy-free — which checks exist, which packages are in scope, and
// which lock order is canonical all live with the checks in
// cmd/athena-lint; lintkit supplies the machinery they share.
package lintkit

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressed by file position and check name.
// Suppressed findings (covered by a //lint:allow directive) are retained
// so machine consumers can report them; human output and exit status
// consider only the unsuppressed ones.
type Diagnostic struct {
	Pos        token.Position
	Check      string
	Message    string
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one separately-testable invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Session is the shared state of one RunAnalyzers invocation: the loaded
// module, the packages under analysis, the lazily-built call graph over
// their union, and a scratch cache where interprocedural checks memoize
// whole-module results (reachability sets, lock summaries) across the
// per-package passes.
type Session struct {
	Mod  *Module
	Pkgs []*Package

	graph *CallGraph
	Cache map[string]any
}

// Graph returns the session's call graph, built on first use over the
// module's packages plus any extra packages under analysis (fixtures).
func (s *Session) Graph() *CallGraph {
	if s.graph == nil {
		pkgs := make([]*Package, 0, len(s.Mod.Pkgs)+len(s.Pkgs))
		seen := make(map[*Package]bool)
		for _, p := range s.Mod.Pkgs {
			seen[p] = true
			pkgs = append(pkgs, p)
		}
		for _, p := range s.Pkgs {
			if !seen[p] {
				pkgs = append(pkgs, p)
			}
		}
		s.graph = BuildCallGraph(s.Mod, pkgs)
	}
	return s.graph
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Mod     *Module
	Pkg     *Package
	Session *Session

	check string
	sink  *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:     p.Mod.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Defs[id]
}

// Render prints an expression compactly, for messages and lock keys.
func (p *Pass) Render(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, p.Mod.Fset, e); err != nil {
		return "?"
	}
	return buf.String()
}

// PkgRel is the package path relative to the module root ("" for the
// root package).
func (p *Pass) PkgRel() string { return p.Mod.Rel(p.Pkg) }

// Rel is the package path relative to the module root ("" for the root
// package).
func (m *Module) Rel(pkg *Package) string {
	if pkg.Path == m.Path {
		return ""
	}
	return strings.TrimPrefix(pkg.Path, m.Path+"/")
}

// --- //lint:allow directives ------------------------------------------------

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos    token.Position
	check  string
	reason string
	used   bool
	bad    string // non-empty if malformed
}

const allowPrefix = "//lint:allow"

// collectAllows parses every //lint:allow directive in the package. A
// directive suppresses diagnostics of its check on its own line and, when
// it stands alone on a line, on the next line.
func collectAllows(mod *Module, pkg *Package, known map[string]bool, names []string) []*allowDirective {
	var out []*allowDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				d := &allowDirective{pos: mod.Fset.Position(c.Pos())}
				fields := strings.Fields(strings.TrimPrefix(c.Text, allowPrefix))
				switch {
				case len(fields) == 0:
					d.bad = "missing check name"
				case !known[fields[0]]:
					d.bad = fmt.Sprintf("unknown check %q (known: %s)", fields[0], strings.Join(names, ", "))
				case len(fields) < 2:
					d.check = fields[0]
					d.bad = fmt.Sprintf("missing reason after %q", fields[0])
				default:
					d.check = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// suppresses reports whether directive d covers diagnostic dg.
func (d *allowDirective) suppresses(dg Diagnostic) bool {
	if d.bad != "" || d.check != dg.Check || d.pos.Filename != dg.Pos.Filename {
		return false
	}
	return d.pos.Line == dg.Pos.Line || d.pos.Line == dg.Pos.Line-1
}

// --- runner -----------------------------------------------------------------

// DirectiveCheck is the reserved name of the directive meta-check:
// malformed or unused //lint:allow comments are reported under it by the
// runner itself. An Analyzer with this name documents the check in -list
// output; its Run must be nil.
const DirectiveCheck = "lintdirective"

// RunAnalyzers runs the enabled checks (nil = all) from analyzers over
// the packages and returns the diagnostics sorted by position, with
// suppressed findings marked rather than dropped. The DirectiveCheck —
// malformed or unused //lint:allow comments — is enforced here.
func RunAnalyzers(mod *Module, pkgs []*Package, analyzers []*Analyzer, enabled map[string]bool) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
		names = append(names, a.Name)
	}
	session := &Session{Mod: mod, Pkgs: pkgs, Cache: make(map[string]any)}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			if a.Run == nil || (enabled != nil && !enabled[a.Name]) {
				continue
			}
			pass := &Pass{Mod: mod, Pkg: pkg, Session: session, check: a.Name, sink: &raw}
			a.Run(pass)
		}
		allows := collectAllows(mod, pkg, known, names)
		for _, dg := range raw {
			for _, d := range allows {
				if d.suppresses(dg) {
					d.used = true
					dg.Suppressed = true
				}
			}
			diags = append(diags, dg)
		}
		if enabled == nil || enabled[DirectiveCheck] {
			for _, d := range allows {
				switch {
				case d.bad != "":
					diags = append(diags, Diagnostic{Pos: d.pos, Check: DirectiveCheck, Message: "malformed //lint:allow: " + d.bad})
				case !d.used:
					diags = append(diags, Diagnostic{Pos: d.pos, Check: DirectiveCheck, Message: fmt.Sprintf("//lint:allow %s suppresses nothing; delete it or fix the annotation", d.check)})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message // full order: sort.Slice is unstable
	})
	return diags
}

// Unsuppressed filters diags down to the findings not covered by a
// //lint:allow directive — the set that determines exit status.
func Unsuppressed(diags []Diagnostic) []Diagnostic {
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

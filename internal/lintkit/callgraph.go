package lintkit

// A CHA-style call graph over the loaded module (plus any fixture
// packages under analysis). Nodes are declared functions/methods and
// function literals; edges over-approximate the dynamic call relation:
//
//   - a call that resolves statically to a module function gets a direct
//     edge;
//   - a call through an interface method gets edges to every module
//     method of that name and signature whose receiver type implements
//     the interface (class-hierarchy analysis);
//   - a call through a function value (a field, variable, parameter, or
//     call result of func type) gets edges to every module function or
//     literal of identical signature whose value is taken somewhere —
//     assigned, stored in a field, or passed as an argument;
//   - a function literal is additionally reachable from its enclosing
//     function (it closes over that frame; if the frame runs, the
//     literal may).
//
// The over-approximation is deliberate: reachability clients (laneshare,
// floatorder) must never miss lane code, and a too-large reachable set
// costs at worst a spurious finding that code review rejects, never a
// missed determinism hazard.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FuncNode is one call-graph node: a declared function/method (Fn,
// Decl) or a function literal (Lit), with the package it was declared
// in and its resolved callees.
type FuncNode struct {
	Fn   *types.Func   // nil for literals
	Lit  *ast.FuncLit  // nil for declared functions
	Decl *ast.FuncDecl // nil for literals
	Pkg  *Package

	Callees []*FuncNode

	// AddressTaken marks functions whose value escapes a direct call:
	// stored, passed, or returned. Dynamic func-value calls may land on
	// any address-taken function of identical signature.
	AddressTaken bool

	sigKey string
}

// Name returns a human-readable identifier for diagnostics.
func (n *FuncNode) Name() string {
	if n.Fn != nil {
		return n.Fn.Name()
	}
	return "func literal"
}

// Body returns the node's statement body, or nil.
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	if n.Decl != nil {
		return n.Decl.Body
	}
	return nil
}

// Pos returns the node's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return token.NoPos
}

// CallGraph is the whole-module call graph. Build one with
// BuildCallGraph (or take the session's shared instance).
type CallGraph struct {
	mod   *Module
	nodes []*FuncNode

	byFn  map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode

	// methodsByName indexes module methods for interface-dispatch
	// resolution; takenBySig indexes address-taken functions for
	// func-value dispatch; litOfVar pins variables that are assigned
	// exactly one function literal and never reassigned, so calls
	// through them resolve to that literal instead of the whole
	// same-signature CHA set.
	methodsByName map[string][]*FuncNode
	takenBySig    map[string][]*FuncNode
	litOfVar      map[*types.Var]*FuncNode
}

// NodeOf returns the node of a declared function, or nil.
func (g *CallGraph) NodeOf(fn *types.Func) *FuncNode { return g.byFn[fn] }

// LitNode returns the node of a function literal, or nil.
func (g *CallGraph) LitNode(lit *ast.FuncLit) *FuncNode { return g.byLit[lit] }

// Nodes returns every node in the graph.
func (g *CallGraph) Nodes() []*FuncNode { return g.nodes }

// EnclosingNode returns the innermost function node whose body spans
// pos in the given package, or nil.
func (g *CallGraph) EnclosingNode(pkg *Package, pos token.Pos) *FuncNode {
	var best *FuncNode
	for _, n := range g.nodes {
		if n.Pkg != pkg {
			continue
		}
		var lo, hi token.Pos
		if n.Lit != nil {
			lo, hi = n.Lit.Pos(), n.Lit.End()
		} else if n.Decl != nil {
			lo, hi = n.Decl.Pos(), n.Decl.End()
		} else {
			continue
		}
		if pos < lo || pos > hi {
			continue
		}
		if best == nil || (lo >= bestLo(best)) {
			best = n
		}
	}
	return best
}

func bestLo(n *FuncNode) token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return n.Decl.Pos()
}

// Reachable returns the set of nodes reachable from roots over call
// edges (roots included).
func (g *CallGraph) Reachable(roots []*FuncNode) map[*FuncNode]bool {
	reach := make(map[*FuncNode]bool)
	stack := make([]*FuncNode, 0, len(roots))
	for _, r := range roots {
		if r != nil && !reach[r] {
			reach[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range n.Callees {
			if !reach[c] {
				reach[c] = true
				stack = append(stack, c)
			}
		}
	}
	return reach
}

// TakenWithSignature returns the address-taken functions whose
// signature is identical to sig (receiver excluded) — the candidate
// targets of a dynamic call through a value of that type.
func (g *CallGraph) TakenWithSignature(sig *types.Signature) []*FuncNode {
	return g.takenBySig[sigKey(sig)]
}

// sigKey renders a receiver-free signature fingerprint: dynamic
// dispatch can only land on a function whose parameters and results
// match the call site's static type exactly.
func sigKey(sig *types.Signature) string {
	if sig == nil {
		return "?"
	}
	key := ""
	if sig.Variadic() {
		key = "..."
	}
	for i := 0; i < sig.Params().Len(); i++ {
		key += sig.Params().At(i).Type().String() + ","
	}
	key += "->"
	for i := 0; i < sig.Results().Len(); i++ {
		key += sig.Results().At(i).Type().String() + ","
	}
	return key
}

// BuildCallGraph constructs the call graph over pkgs. Callees outside
// pkgs (stdlib, unanalyzed code) have no node and produce no edge.
func BuildCallGraph(mod *Module, pkgs []*Package) *CallGraph {
	g := &CallGraph{
		mod:           mod,
		byFn:          make(map[*types.Func]*FuncNode),
		byLit:         make(map[*ast.FuncLit]*FuncNode),
		methodsByName: make(map[string][]*FuncNode),
		takenBySig:    make(map[string][]*FuncNode),
		litOfVar:      make(map[*types.Var]*FuncNode),
	}
	// Pass 1: create a node per declared function and per literal, and
	// index methods and address-taken functions.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &FuncNode{Fn: obj, Decl: fd, Pkg: pkg, sigKey: sigKey(obj.Type().(*types.Signature))}
				g.nodes = append(g.nodes, n)
				g.byFn[obj] = n
				if fd.Recv != nil {
					g.methodsByName[obj.Name()] = append(g.methodsByName[obj.Name()], n)
				}
				if fd.Body == nil {
					continue
				}
				g.addLits(pkg, n, fd.Body)
			}
		}
	}
	// Pass 2: mark address-taken functions and literals, and bind
	// single-assignment literal-valued variables to their literals.
	for _, pkg := range pkgs {
		g.markTaken(pkg)
		g.bindLitVars(pkg)
	}
	for _, n := range g.nodes {
		if n.AddressTaken {
			g.takenBySig[n.sigKey] = append(g.takenBySig[n.sigKey], n)
		}
	}
	// Pass 3: resolve call edges.
	for _, n := range g.nodes {
		body := n.Body()
		if body == nil {
			continue
		}
		g.resolveCalls(n, body)
	}
	return g
}

// addLits creates nodes for every function literal nested in body,
// attributing each to pkg and linking enclosing -> literal.
func (g *CallGraph) addLits(pkg *Package, enclosing *FuncNode, body ast.Node) {
	ast.Inspect(body, func(node ast.Node) bool {
		lit, ok := node.(*ast.FuncLit)
		if !ok {
			return true
		}
		sig, _ := pkg.Info.TypeOf(lit).(*types.Signature)
		ln := &FuncNode{Lit: lit, Pkg: pkg, sigKey: sigKey(sig)}
		g.nodes = append(g.nodes, ln)
		g.byLit[lit] = ln
		enclosing.Callees = append(enclosing.Callees, ln)
		g.addLits(pkg, ln, lit.Body)
		return false // inner literals handled by the recursion
	})
}

// markTaken scans a package for function values that escape a direct
// call: identifiers or selectors resolving to a *types.Func anywhere
// except the Fun position of a call, and literals not immediately
// invoked.
func (g *CallGraph) markTaken(pkg *Package) {
	called := make(map[ast.Node]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			called[unparen(call.Fun)] = true
			return true
		})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			switch n := node.(type) {
			case *ast.FuncLit:
				if !called[n] {
					if ln := g.byLit[n]; ln != nil {
						ln.AddressTaken = true
					}
				}
			case *ast.Ident:
				if called[n] {
					return true
				}
				if fn, ok := pkg.Info.Uses[n].(*types.Func); ok {
					if fnNode := g.byFn[fn]; fnNode != nil {
						fnNode.AddressTaken = true
					}
				}
			case *ast.SelectorExpr:
				if called[n] {
					return true
				}
				if fn, ok := pkg.Info.Uses[n.Sel].(*types.Func); ok {
					if fnNode := g.byFn[fn]; fnNode != nil {
						fnNode.AddressTaken = true
					}
				}
			}
			return true
		})
	}
}

// bindLitVars finds variables whose every assignment is a single
// defining `v := func(...) {...}` (or `var v = func...`) and binds them
// to the literal's node. A call through such a variable can only invoke
// that literal, so the dynamic same-signature fallback would be pure
// noise for it.
func (g *CallGraph) bindLitVars(pkg *Package) {
	bound := make(map[*types.Var]*ast.FuncLit)
	disqualified := make(map[*types.Var]bool)
	lhsVar := func(e ast.Expr) *types.Var {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
			return v
		}
		v, _ := pkg.Info.Uses[id].(*types.Var)
		return v
	}
	consider := func(v *types.Var, rhs ast.Expr, defining bool) {
		if v == nil {
			return
		}
		lit, isLit := unparen(rhs).(*ast.FuncLit)
		if !defining || !isLit || bound[v] != nil {
			disqualified[v] = true
			return
		}
		bound[v] = lit
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			switch n := node.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					for _, lhs := range n.Lhs {
						if v := lhsVar(lhs); v != nil {
							disqualified[v] = true
						}
					}
					return true
				}
				for i, lhs := range n.Lhs {
					id, ok := unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
						consider(v, n.Rhs[i], true)
					} else if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
						disqualified[v] = true // reassignment
					}
				}
			case *ast.ValueSpec:
				for i, id := range n.Names {
					v, ok := pkg.Info.Defs[id].(*types.Var)
					if !ok {
						continue
					}
					if i < len(n.Values) {
						consider(v, n.Values[i], true)
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if v := lhsVar(n.X); v != nil {
						disqualified[v] = true // address escapes; writes untrackable
					}
				}
			}
			return true
		})
	}
	for v, lit := range bound {
		if disqualified[v] {
			continue
		}
		if ln := g.byLit[lit]; ln != nil {
			g.litOfVar[v] = ln
		}
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// resolveCalls adds edges for every call lexically inside body but not
// inside a nested literal (literals own their calls).
func (g *CallGraph) resolveCalls(n *FuncNode, body ast.Node) {
	ast.Inspect(body, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok && lit != n.Lit {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		g.addCallEdges(n, call)
		return true
	})
}

// addCallEdges resolves one call expression to its possible targets.
func (g *CallGraph) addCallEdges(n *FuncNode, call *ast.CallExpr) {
	n.Callees = append(n.Callees, g.CallTargets(n.Pkg, call)...)
}

// CallTargets resolves one call expression in pkg to its possible
// module-internal targets: the statically-named function, the CHA
// expansion of an interface method, or — for a call through a bare
// function value — every address-taken function of identical signature.
// Conversions, builtins, and calls landing outside the analyzed
// packages resolve to nothing.
func (g *CallGraph) CallTargets(pkg *Package, call *ast.CallExpr) []*FuncNode {
	info := pkg.Info
	fun := unparen(call.Fun)

	// Immediately-invoked literal.
	if lit, ok := fun.(*ast.FuncLit); ok {
		if ln := g.byLit[lit]; ln != nil {
			return []*FuncNode{ln}
		}
		return nil
	}

	// Statically-resolved function or method.
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	}
	if fn, ok := obj.(*types.Func); ok {
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			if s := info.Selections[sel]; s != nil && types.IsInterface(s.Recv()) {
				return g.interfaceTargets(fn, s.Recv())
			}
		}
		if target := g.byFn[fn]; target != nil {
			return []*FuncNode{target}
		}
		return nil
	}
	if _, ok := obj.(*types.Builtin); ok {
		return nil
	}
	if _, ok := obj.(*types.TypeName); ok {
		return nil // conversion, not a call
	}
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return nil // conversion through a func-typed named type
	}
	// A variable bound to exactly one function literal calls that
	// literal and nothing else.
	if v, ok := obj.(*types.Var); ok {
		if ln := g.litOfVar[v]; ln != nil {
			return []*FuncNode{ln}
		}
	}
	// Dynamic call through a function value: CHA over address-taken
	// functions of identical signature. Underlying() so calls through
	// named func types (netsim.Handler) resolve too.
	if t := info.TypeOf(call.Fun); t != nil {
		if sig, ok := t.Underlying().(*types.Signature); ok {
			return g.takenBySig[sigKey(sig)]
		}
	}
	return nil
}

// interfaceTargets links an interface-method call to every module
// method of the same name whose receiver type implements the interface.
func (g *CallGraph) interfaceTargets(fn *types.Func, recv types.Type) []*FuncNode {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*FuncNode
	want := sigKey(fn.Type().(*types.Signature))
	for _, cand := range g.methodsByName[fn.Name()] {
		if cand.sigKey != want {
			continue
		}
		crecv := cand.Fn.Type().(*types.Signature).Recv()
		if crecv == nil {
			continue
		}
		t := crecv.Type()
		if types.Implements(t, iface) {
			out = append(out, cand)
			continue
		}
		// A value-receiver method set may still satisfy the interface
		// through the pointer type.
		if _, isPtr := t.(*types.Pointer); !isPtr {
			if types.Implements(types.NewPointer(t), iface) {
				out = append(out, cand)
			}
		}
	}
	return out
}

package lintkit

// Unit tests for the CHA call graph over a self-contained diamond-shaped
// fixture: static edges, interface dispatch, dynamic calls through
// stored function values, and the single-literal variable binding.

import (
	"go/importer"
	"go/token"
	"path/filepath"
	"testing"
)

// loadStandalone type-checks one testdata directory as a module of its
// own, so lintkit's tests don't depend on the athena packages.
func loadStandalone(t *testing.T, dir string) (*Module, *Package) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := &Module{
		Root:   abs,
		Path:   filepath.Base(abs),
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}
	m.std = importer.ForCompiler(m.Fset, "source", nil)
	pkg, err := m.parseDir(abs)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("no Go files in %s", dir)
	}
	if err := m.check(pkg); err != nil {
		t.Fatalf("type-check %s: %v", dir, err)
	}
	m.byPath[pkg.Path] = pkg
	m.Pkgs = []*Package{pkg}
	return m, pkg
}

// nodeNamed finds a declared function by name or, for methods, by
// FullName ("(diamond.Alpha).Do").
func nodeNamed(t *testing.T, g *CallGraph, name string) *FuncNode {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Fn != nil && (n.Fn.Name() == name || n.Fn.FullName() == name) {
			return n
		}
	}
	t.Fatalf("call graph has no node %q", name)
	return nil
}

func TestCallGraphDiamond(t *testing.T) {
	m, _ := loadStandalone(t, filepath.Join("testdata", "diamond"))
	g := BuildCallGraph(m, m.Pkgs)

	t.Run("static edges", func(t *testing.T) {
		reach := g.Reachable([]*FuncNode{nodeNamed(t, g, "Top")})
		for _, want := range []string{"Top", "Left", "Right", "Sink"} {
			if !reach[nodeNamed(t, g, want)] {
				t.Errorf("Top's reachable set misses %s", want)
			}
		}
		if reach[nodeNamed(t, g, "Named")] {
			t.Error("Top never calls Named; the diamond leaked")
		}
	})

	t.Run("interface dispatch", func(t *testing.T) {
		reach := g.Reachable([]*FuncNode{nodeNamed(t, g, "CallIface")})
		for _, want := range []string{"(diamond.Alpha).Do", "(diamond.Beta).Do"} {
			if !reach[nodeNamed(t, g, want)] {
				t.Errorf("interface call misses implementation %s", want)
			}
		}
		if !reach[nodeNamed(t, g, "Sink")] {
			t.Error("interface dispatch lost Alpha.Do's call to Sink")
		}
	})

	t.Run("stored func value", func(t *testing.T) {
		reach := g.Reachable([]*FuncNode{nodeNamed(t, g, "CallStored")})
		for _, want := range []string{"Named", "Spare"} {
			if !reach[nodeNamed(t, g, want)] {
				t.Errorf("dynamic call misses address-taken candidate %s", want)
			}
		}
	})

	t.Run("literal binding", func(t *testing.T) {
		reach := g.Reachable([]*FuncNode{nodeNamed(t, g, "CallLit")})
		if !reach[nodeNamed(t, g, "Sink")] {
			t.Error("CallLit's bound literal body must be reachable")
		}
		if reach[nodeNamed(t, g, "Named")] || reach[nodeNamed(t, g, "Spare")] {
			t.Error("a variable bound to one literal must not expand to the same-signature CHA set")
		}
	})
}

// Package diamond is a self-contained call-graph fixture: a static
// diamond (Top calls Left and Right, which both call Sink), an
// interface-dispatch site, a dynamic call through a stored function
// value, and a variable bound to exactly one function literal.
package diamond

func Top() {
	Left()
	Right()
}

func Left()  { Sink() }
func Right() { Sink() }

var hits int

func Sink() { hits++ }

// Doer's dynamic dispatch must expand to both implementations.
type Doer interface{ Do() }

type Alpha struct{}

func (Alpha) Do() { Sink() }

type Beta struct{}

func (Beta) Do() {}

func CallIface(d Doer) { d.Do() }

// Named and Spare share a signature and both escape as values, so a
// call through a plain func-typed variable may land on either.
func Named() {}
func Spare() {}

var stored = Named

func CallStored() {
	f := Spare
	f()
	_ = stored
}

// CallLit's g is assigned exactly one literal and never reassigned or
// address-taken: the call resolves to that literal alone, not to the
// whole same-signature CHA set.
func CallLit() {
	g := func() { Sink() }
	g()
}

// Package allow exercises //lint:allow handling: same-line and
// line-above suppression, a directive that covers nothing, and a
// directive naming an unknown check.
package allow

func Annotated() {} //lint:allow demo documented exception

//lint:allow demo the whole next function is exempt
func NextLine() {}

func Plain() {}

//lint:allow demo nothing here trips the check, so this is stale

var placeholder int

//lint:allow nosuch bogus check name

var other int

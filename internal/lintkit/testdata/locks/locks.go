// Package locks is a lock-graph fixture: Outer acquires A and then,
// through a helper call, B; Inverted acquires B then A directly. The
// inference must record both edges — one interprocedural, one direct —
// and find the A -> B -> A cycle.
package locks

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func lockB(b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.touch()
}

func (b *B) touch() {}

func Outer(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockB(b)
}

func Inverted(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

package lintkit

// An inferred lock-acquisition graph. Instead of trusting a hand-written
// "A is always taken before B" table, BuildLockGraph walks every function
// body tracking which lock classes are held (the same linear held-set
// scan the intraprocedural order check used), then propagates transitive
// acquisitions through the call graph: a call made while holding A to a
// function that (transitively) acquires B records the edge A -> B. The
// client decides which lock classes exist (via classOf) and what order is
// canonical; lintkit reports the edges it actually observed and any
// cycles among them.
//
// The analysis is instance-insensitive — it tracks lock *classes* (the
// type owning the mutex field), not individual mutexes — so self-edges
// (A -> A) are discarded: re-acquiring the same class through a call is
// routinely a different instance (per-shard directories), and a
// class-level analysis cannot tell the two apart.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// MutexMethod decodes a call of the form X.Lock()/X.Unlock()/X.RLock()/
// X.RUnlock() where X is a sync.Mutex or sync.RWMutex (possibly through a
// pointer), returning the method name and the receiver expression.
func MutexMethod(pkg *Package, call *ast.CallExpr) (method string, recv ast.Expr, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", nil, false
	}
	t := pkg.Info.TypeOf(sel.X)
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", nil, false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", nil, false
	}
	return sel.Sel.Name, sel.X, true
}

// LockEdge records one observed acquisition order: the To class was
// acquired (directly, or transitively through the call named Via) at Pos
// while the From class was held, inside function FuncName.
type LockEdge struct {
	From, To string
	Pos      token.Pos
	FuncName string
	Via      string // callee name for interprocedural edges; "" when To was locked in place
}

// LockGraph is the set of observed acquisition-order edges, one per
// (From, To) pair, each keeping its first witness site.
type LockGraph struct {
	Edges []LockEdge

	// Acquired maps each call-graph node to the lock classes it acquires,
	// directly or through any callee — exposed so clients can reason about
	// "does calling f take locks" (e.g. laneshare's mutex whitelist).
	Acquired map[*FuncNode]map[string]bool
}

// LockCycle is one cycle among acquisition-order edges: Classes in cycle
// order (first not repeated), with Edges[i] witnessing
// Classes[i] -> Classes[(i+1)%len].
type LockCycle struct {
	Classes []string
	Edges   []LockEdge
}

// lockCallSite is a deferred interprocedural resolution: a call made
// while holding locks, attributed to its possible targets after the
// transitive-acquisition fixpoint.
type lockCallSite struct {
	node *FuncNode
	call *ast.CallExpr
	held []string
}

// BuildLockGraph infers the acquisition-order graph over the call graph.
// classOf names the lock class guarding a mutex receiver expression (for
// example "Node" for n.mu) or reports false for untracked mutexes.
func BuildLockGraph(g *CallGraph, classOf func(pkg *Package, recv ast.Expr) (string, bool)) *LockGraph {
	lg := &LockGraph{Acquired: make(map[*FuncNode]map[string]bool)}
	edgeSeen := make(map[[2]string]bool)
	addEdge := func(from, to string, pos token.Pos, fn, via string) {
		if from == to {
			return // instance-insensitive: can't judge self-edges
		}
		key := [2]string{from, to}
		if edgeSeen[key] {
			return
		}
		edgeSeen[key] = true
		lg.Edges = append(lg.Edges, LockEdge{From: from, To: to, Pos: pos, FuncName: fn, Via: via})
	}

	// Pass 1: per-node linear held-set walk. Records direct edges, direct
	// acquisition sets, and every call site made under a held lock.
	var sites []lockCallSite
	for _, n := range g.Nodes() {
		body := n.Body()
		if body == nil {
			continue
		}
		direct := make(map[string]bool)
		held := []string{}
		ast.Inspect(body, func(node ast.Node) bool {
			if lit, ok := node.(*ast.FuncLit); ok && lit != n.Lit {
				return false // nested literals are their own nodes
			}
			if d, isDefer := node.(*ast.DeferStmt); isDefer {
				// A deferred Unlock holds the lock for the rest of the
				// function; don't treat it as a release here.
				if _, _, ok := MutexMethod(n.Pkg, d.Call); ok {
					return false
				}
				return true
			}
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, recv, ok := MutexMethod(n.Pkg, call)
			if !ok {
				if len(held) > 0 {
					sites = append(sites, lockCallSite{node: n, call: call, held: append([]string(nil), held...)})
				}
				return true
			}
			class, tracked := classOf(n.Pkg, recv)
			if !tracked {
				return true
			}
			switch method {
			case "Lock", "RLock", "TryLock", "TryRLock":
				direct[class] = true
				for _, h := range held {
					addEdge(h, class, call.Pos(), n.Name(), "")
				}
				held = append(held, class)
			case "Unlock", "RUnlock":
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == class {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
			return true
		})
		if len(direct) > 0 {
			lg.Acquired[n] = direct
		}
	}

	// Pass 2: propagate acquisitions through call edges to a fixpoint.
	// Worklist over callers: when a node's set grows, its callers may too.
	callers := make(map[*FuncNode][]*FuncNode)
	for _, n := range g.Nodes() {
		for _, c := range n.Callees {
			callers[c] = append(callers[c], n)
		}
	}
	work := append([]*FuncNode(nil), g.Nodes()...)
	inWork := make(map[*FuncNode]bool, len(work))
	for _, n := range work {
		inWork[n] = true
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		inWork[n] = false
		set := lg.Acquired[n]
		grew := false
		for _, c := range n.Callees {
			for class := range lg.Acquired[c] {
				if !set[class] {
					if set == nil {
						set = make(map[string]bool)
						lg.Acquired[n] = set
					}
					set[class] = true
					grew = true
				}
			}
		}
		if grew {
			for _, caller := range callers[n] {
				if !inWork[caller] {
					inWork[caller] = true
					work = append(work, caller)
				}
			}
		}
	}

	// Pass 3: attribute held-context call sites to callee acquisitions.
	for _, s := range sites {
		for _, target := range g.CallTargets(s.node.Pkg, s.call) {
			acq := lg.Acquired[target]
			if len(acq) == 0 {
				continue
			}
			classes := make([]string, 0, len(acq))
			for class := range acq {
				classes = append(classes, class)
			}
			sort.Strings(classes)
			for _, class := range classes {
				for _, h := range s.held {
					addEdge(h, class, s.call.Pos(), s.node.Name(), target.Name())
				}
			}
		}
	}
	return lg
}

// Cycles enumerates the cycles in the acquisition-order graph, each
// reported once with its lexicographically-smallest class first.
func (lg *LockGraph) Cycles() []LockCycle {
	next := make(map[string][]LockEdge)
	classSet := make(map[string]bool)
	for _, e := range lg.Edges {
		next[e.From] = append(next[e.From], e)
		classSet[e.From] = true
		classSet[e.To] = true
	}
	classes := make([]string, 0, len(classSet))
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Strings(classes)

	var cycles []LockCycle
	seen := make(map[string]bool)
	var path []LockEdge
	onPath := make(map[string]bool)
	var dfs func(from string)
	dfs = func(from string) {
		onPath[from] = true
		for _, e := range next[from] {
			if onPath[e.To] {
				// Back edge: slice the cycle out of the current path.
				start := 0
				for i, pe := range path {
					if pe.From == e.To {
						start = i
						break
					}
				}
				cyc := append(append([]LockEdge(nil), path[start:]...), e)
				if key := cycleKey(cyc); !seen[key] {
					seen[key] = true
					cycles = append(cycles, normalizeCycle(cyc))
				}
				continue
			}
			path = append(path, e)
			dfs(e.To)
			path = path[:len(path)-1]
		}
		onPath[from] = false
	}
	for _, c := range classes {
		dfs(c)
	}
	return cycles
}

// cycleKey canonicalizes a cycle to its rotation starting at the
// smallest class, so the same cycle found from different entry points
// dedupes.
func cycleKey(edges []LockEdge) string {
	return strings.Join(normalizeCycle(edges).Classes, "->")
}

// normalizeCycle rotates the cycle so the smallest class comes first.
func normalizeCycle(edges []LockEdge) LockCycle {
	min := 0
	for i, e := range edges {
		if e.From < edges[min].From {
			min = i
		}
	}
	rot := append(append([]LockEdge(nil), edges[min:]...), edges[:min]...)
	cls := make([]string, len(rot))
	for i, e := range rot {
		cls[i] = e.From
	}
	return LockCycle{Classes: cls, Edges: rot}
}

package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"athena/internal/netsim"
	"athena/internal/simclock"
)

var origin = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestSimTransport(t *testing.T) {
	sched := simclock.New(origin)
	net := netsim.New(sched)
	net.AddNode("a", nil)
	net.AddNode("b", nil)
	if err := net.AddLink("a", "b", netsim.LinkConfig{Bandwidth: 1000}); err != nil {
		t.Fatal(err)
	}

	ta := NewSim(net, "a")
	tb := NewSim(net, "b")
	var got string
	tb.SetHandler(func(from string, size int64, payload any) {
		if from != "a" || size != 500 {
			t.Errorf("from=%s size=%d", from, size)
		}
		got, _ = payload.(string)
	})
	if ta.Self() != "a" || tb.Self() != "b" {
		t.Error("Self mismatch")
	}
	if nbs := ta.Neighbors(); len(nbs) != 1 || nbs[0] != "b" {
		t.Errorf("Neighbors = %v", nbs)
	}
	if err := ta.Send("b", 500, "ping"); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(0); err != nil {
		t.Fatal(err)
	}
	if got != "ping" {
		t.Errorf("payload = %q", got)
	}
	if ta.Clock().Now() != sched.Now() {
		t.Error("Clock not the scheduler")
	}
}

type testMsg struct {
	Text string
	N    int
}

// testCodec is a minimal Codec for the transport's own tests, framing
// string and testMsg payloads. The production codec lives in
// internal/wire, which depends on the athena message set and therefore
// cannot be imported from this package.
type testCodec struct{}

func (testCodec) Append(dst []byte, from string, size int64, payload any) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	var kind byte
	var text string
	var n uint16
	switch p := payload.(type) {
	case string:
		kind, text = 1, p
	case testMsg:
		kind, text, n = 2, p.Text, uint16(p.N)
	default:
		return dst[:start], fmt.Errorf("testCodec: unsupported payload %T", payload)
	}
	dst = append(dst, kind)
	dst = append(dst, byte(len(from)>>8), byte(len(from)))
	dst = append(dst, from...)
	dst = append(dst, byte(len(text)>>24), byte(len(text)>>16), byte(len(text)>>8), byte(len(text)))
	dst = append(dst, text...)
	dst = append(dst, byte(n>>8), byte(n))
	if raw := int64(len(dst) - start); size > raw {
		dst = append(dst, make([]byte, size-raw)...)
	}
	body := len(dst) - start - 4
	dst[start] = byte(body >> 24)
	dst[start+1] = byte(body >> 16)
	dst[start+2] = byte(body >> 8)
	dst[start+3] = byte(body)
	return dst, nil
}

func (testCodec) Decode(body []byte) (string, any, error) {
	if len(body) < 3 {
		return "", nil, errors.New("testCodec: short frame")
	}
	kind := body[0]
	fl := int(body[1])<<8 | int(body[2])
	if 3+fl > len(body) {
		return "", nil, errors.New("testCodec: bad from length")
	}
	from := string(body[3 : 3+fl])
	rest := body[3+fl:]
	if len(rest) < 4 {
		return "", nil, errors.New("testCodec: short text length")
	}
	tl := int(rest[0])<<24 | int(rest[1])<<16 | int(rest[2])<<8 | int(rest[3])
	if 4+tl > len(rest) {
		return "", nil, errors.New("testCodec: bad text length")
	}
	text := string(rest[4 : 4+tl])
	rest = rest[4+tl:]
	switch kind {
	case 1:
		return from, text, nil
	case 2:
		if len(rest) < 2 {
			return "", nil, errors.New("testCodec: short N")
		}
		return from, testMsg{Text: text, N: int(rest[0])<<8 | int(rest[1])}, nil
	}
	return "", nil, fmt.Errorf("testCodec: unknown kind %d", kind)
}

func TestTCPTransportRoundTrip(t *testing.T) {
	ta, err := NewTCP("a", "127.0.0.1:0", testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, err := NewTCP("b", "127.0.0.1:0", testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	ta.AddPeer("b", tb.Addr())
	tb.AddPeer("a", ta.Addr())

	var mu sync.Mutex
	received := make(map[string][]testMsg)
	done := make(chan struct{}, 1)
	tb.SetHandler(func(from string, size int64, payload any) {
		msg, ok := payload.(testMsg)
		if !ok {
			t.Errorf("payload type %T", payload)
			return
		}
		mu.Lock()
		received[from] = append(received[from], msg)
		n := len(received["a"])
		mu.Unlock()
		if n == 3 {
			done <- struct{}{}
		}
	})

	for i := 0; i < 3; i++ {
		if err := ta.Send("b", 100, testMsg{Text: "hi", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for messages")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, m := range received["a"] {
		if m.N != i {
			t.Errorf("out of order: %v", received["a"])
		}
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	ta, err := NewTCP("a", "127.0.0.1:0", testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	if err := ta.Send("ghost", 1, nil); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestTCPBidirectional(t *testing.T) {
	ta, err := NewTCP("a", "127.0.0.1:0", testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, err := NewTCP("b", "127.0.0.1:0", testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	ta.AddPeer("b", tb.Addr())
	tb.AddPeer("a", ta.Addr())

	gotA := make(chan string, 1)
	ta.SetHandler(func(from string, _ int64, payload any) {
		s, _ := payload.(string)
		gotA <- s
	})
	tb.SetHandler(func(from string, _ int64, payload any) {
		if err := tb.Send("a", 10, "pong"); err != nil {
			t.Error(err)
		}
	})
	if err := ta.Send("b", 10, "ping"); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-gotA:
		if s != "pong" {
			t.Errorf("got %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestTCPCloseIdempotentAndSendAfterClose(t *testing.T) {
	ta, err := NewTCP("a", "127.0.0.1:0", testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ta.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ta.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := ta.Send("b", 1, nil); err == nil {
		t.Error("Send after Close succeeded")
	}
}

// expectSevered fails unless the remote end closes conn promptly.
func expectSevered(t *testing.T, conn net.Conn) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection stayed open after hostile frame")
	}
}

// TestTCPHostileLengthPrefixSeversConnection drives the receive guard: a
// length prefix past MaxFrame must sever the connection before any
// allocation, and a well-formed frame that fails to decode must sever it
// too. The transport keeps accepting afterwards, so a legitimate sender
// recovers through its redial path.
func TestTCPHostileLengthPrefixSeversConnection(t *testing.T) {
	ta, err := NewTCP("a", "127.0.0.1:0", testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	got := make(chan string, 1)
	ta.SetHandler(func(from string, _ int64, payload any) {
		if s, ok := payload.(string); ok {
			got <- s
		}
	})

	hostile := [][]byte{
		{0xff, 0xff, 0xff, 0xff},          // length prefix far past MaxFrame
		{0x00, 0x00, 0x00, 0x01, 0x00},    // body too short to hold a header
		{0x00, 0x00, 0x00, 0x03, 9, 9, 9}, // in-bounds length, undecodable body
	}
	for _, frame := range hostile {
		conn, err := net.Dial("tcp", ta.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		expectSevered(t, conn)
		conn.Close()
	}

	// The listener must still serve well-behaved peers.
	tb, err := NewTCP("b", "127.0.0.1:0", testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	tb.AddPeer("a", ta.Addr())
	if err := tb.Send("a", 10, "alive"); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "alive" {
			t.Fatalf("got %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for post-sever delivery")
	}
}

package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"athena/internal/netsim"
	"athena/internal/simclock"
)

var origin = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestSimTransport(t *testing.T) {
	sched := simclock.New(origin)
	net := netsim.New(sched)
	net.AddNode("a", nil)
	net.AddNode("b", nil)
	if err := net.AddLink("a", "b", netsim.LinkConfig{Bandwidth: 1000}); err != nil {
		t.Fatal(err)
	}

	ta := NewSim(net, "a")
	tb := NewSim(net, "b")
	var got string
	tb.SetHandler(func(from string, size int64, payload any) {
		if from != "a" || size != 500 {
			t.Errorf("from=%s size=%d", from, size)
		}
		got, _ = payload.(string)
	})
	if ta.Self() != "a" || tb.Self() != "b" {
		t.Error("Self mismatch")
	}
	if nbs := ta.Neighbors(); len(nbs) != 1 || nbs[0] != "b" {
		t.Errorf("Neighbors = %v", nbs)
	}
	if err := ta.Send("b", 500, "ping"); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(0); err != nil {
		t.Fatal(err)
	}
	if got != "ping" {
		t.Errorf("payload = %q", got)
	}
	if ta.Clock().Now() != sched.Now() {
		t.Error("Clock not the scheduler")
	}
}

type testMsg struct {
	Text string
	N    int
}

func TestTCPTransportRoundTrip(t *testing.T) {
	RegisterWireType(testMsg{})

	ta, err := NewTCP("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, err := NewTCP("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	ta.AddPeer("b", tb.Addr())
	tb.AddPeer("a", ta.Addr())

	var mu sync.Mutex
	received := make(map[string][]testMsg)
	done := make(chan struct{}, 1)
	tb.SetHandler(func(from string, size int64, payload any) {
		msg, ok := payload.(testMsg)
		if !ok {
			t.Errorf("payload type %T", payload)
			return
		}
		mu.Lock()
		received[from] = append(received[from], msg)
		n := len(received["a"])
		mu.Unlock()
		if n == 3 {
			done <- struct{}{}
		}
	})

	for i := 0; i < 3; i++ {
		if err := ta.Send("b", 100, testMsg{Text: "hi", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for messages")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, m := range received["a"] {
		if m.N != i {
			t.Errorf("out of order: %v", received["a"])
		}
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	ta, err := NewTCP("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	if err := ta.Send("ghost", 1, nil); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestTCPBidirectional(t *testing.T) {
	ta, err := NewTCP("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, err := NewTCP("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	ta.AddPeer("b", tb.Addr())
	tb.AddPeer("a", ta.Addr())

	gotA := make(chan string, 1)
	ta.SetHandler(func(from string, _ int64, payload any) {
		s, _ := payload.(string)
		gotA <- s
	})
	tb.SetHandler(func(from string, _ int64, payload any) {
		if err := tb.Send("a", 10, "pong"); err != nil {
			t.Error(err)
		}
	})
	RegisterWireType("")
	if err := ta.Send("b", 10, "ping"); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-gotA:
		if s != "pong" {
			t.Errorf("got %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestTCPCloseIdempotentAndSendAfterClose(t *testing.T) {
	ta, err := NewTCP("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ta.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ta.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := ta.Send("b", 1, nil); err == nil {
		t.Error("Send after Close succeeded")
	}
}

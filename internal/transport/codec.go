package transport

// MaxFrame bounds the total length of one TCP frame, length prefix
// included. The receive loop refuses to allocate past it, so a corrupt
// or hostile length prefix cannot drive an unbounded allocation; codecs
// must refuse to produce larger frames.
const MaxFrame = 64 << 20

// Codec frames payloads for the TCP transport. The concrete codec for
// Athena's message set lives in internal/wire; the transport only needs
// the framing contract, which keeps the package dependency-free of the
// message definitions.
type Codec interface {
	// Append appends one complete frame — 4-byte big-endian length
	// prefix (counting everything after itself) followed by the body —
	// onto dst and returns the extended slice. from is the sender id;
	// size is the sender's modeled wire size, which the codec pads the
	// frame to when the raw encoding is smaller. On error dst is
	// returned unmodified.
	Append(dst []byte, from string, size int64, payload any) ([]byte, error)
	// Decode parses a frame body (everything after the length prefix)
	// into the sender id and payload. An error means the frame is
	// corrupt and the connection should be severed.
	Decode(body []byte) (from string, payload any, err error)
}

// Package transport abstracts message delivery between Athena nodes so the
// same node logic runs unchanged over the deterministic network simulator
// (internal/netsim) and over real TCP sockets (cmd/athenad). Messages carry
// an explicit wire size: the simulator accounts for it analytically, while
// the TCP transport actually pads frames to it so measured traffic matches.
package transport

import (
	"athena/internal/netsim"
	"athena/internal/simclock"
)

// Handler receives messages addressed to the local node.
type Handler func(from string, size int64, payload any)

// Transport sends messages between named nodes.
type Transport interface {
	// Self returns the local node's id.
	Self() string
	// Neighbors lists directly reachable peers.
	Neighbors() []string
	// Send transmits payload (accounted as size bytes) to a directly
	// reachable peer.
	Send(to string, size int64, payload any) error
	// SetHandler installs the receive callback. Must be called before
	// traffic flows.
	SetHandler(h Handler)
	// Clock is the time source consistent with the transport's world
	// (virtual for the simulator, wall for TCP).
	Clock() simclock.Clock
}

// SimTransport adapts one netsim node to the Transport interface.
type SimTransport struct {
	net *netsim.Network
	id  string
}

var _ Transport = (*SimTransport)(nil)

// NewSim returns a Transport bound to node id on the simulated network.
// The node must already exist in the network.
func NewSim(net *netsim.Network, id string) *SimTransport {
	return &SimTransport{net: net, id: id}
}

// Self implements Transport.
func (s *SimTransport) Self() string { return s.id }

// Neighbors implements Transport.
func (s *SimTransport) Neighbors() []string { return s.net.Neighbors(s.id) }

// Send implements Transport.
func (s *SimTransport) Send(to string, size int64, payload any) error {
	return s.net.Send(s.id, to, size, payload)
}

// SetHandler implements Transport.
func (s *SimTransport) SetHandler(h Handler) {
	// Errors are impossible here: the node was validated at construction.
	_ = s.net.SetHandler(s.id, netsim.Handler(h))
}

// Clock implements Transport.
func (s *SimTransport) Clock() simclock.Clock { return s.net.ClockFor(s.id) }

// PrioritySender is the optional interface of transports that support
// priority classes (Section V-C preferential treatment). The simulated
// transport implements it; plain TCP does not (the kernel socket is FIFO).
type PrioritySender interface {
	// SendPriority is Send with a priority class; higher goes first.
	SendPriority(to string, size int64, priority int, payload any) error
}

var _ PrioritySender = (*SimTransport)(nil)

// SendPriority implements PrioritySender.
func (s *SimTransport) SendPriority(to string, size int64, priority int, payload any) error {
	return s.net.SendPriority(s.id, to, size, priority, payload)
}

// PeerAdder is the optional interface of transports whose peer set can
// grow at runtime — the membership join handshake uses it to learn
// dialable addresses. The TCP transport implements it; the simulator's
// topology is fixed, so SimTransport does not.
type PeerAdder interface {
	// AddPeer registers a peer's dialable address.
	AddPeer(id, addr string)
}

// Addresser is the optional interface of transports that have a dialable
// address of their own to advertise in join handshakes.
type Addresser interface {
	// Addr returns the local listening address.
	Addr() string
}

// PeerLister is the optional interface of transports that track peer
// addresses; a join responder shares them so the newcomer can complete
// the mesh.
type PeerLister interface {
	// Peers returns a copy of the known peer id -> address map.
	Peers() map[string]string
}

package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"athena/internal/metrics"
	"athena/internal/simclock"
)

// ErrUnknownPeer is returned when sending to a peer that was never added.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// frameBufPool recycles frame buffers across sends and reads so the
// steady-state hot path allocates nothing per message.
var frameBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// tcpPeer is the per-peer connection state. Each peer has its own lock so
// a slow or unreachable peer (dial timeout, blocked write) never blocks
// sends to the others. addr is guarded by the transport lock, conn by the
// peer lock.
type tcpPeer struct {
	mu   sync.Mutex
	addr string
	conn net.Conn
}

// TCPTransport implements Transport over real TCP connections, one
// long-lived outbound connection per peer, framed by a Codec. Failed
// dials and writes are retried with exponential backoff before giving
// up. It exists to show the Athena node logic runs outside the simulator
// (the paper ran one OS process per node addressed by IP:PORT).
type TCPTransport struct {
	id    string
	ln    net.Listener
	codec Codec

	mu       sync.Mutex // guards peers map, peer addrs, conn sets, handler, closed
	peers    map[string]*tcpPeer
	outbound map[net.Conn]bool // dialed conns, so Close can sever a blocked write
	inbound  map[net.Conn]bool
	handler  Handler
	wg       sync.WaitGroup
	closed   bool

	retryAttempts int           // total dial/write attempts per Send
	retryBase     time.Duration // first backoff delay, doubling per attempt

	m TCPMetrics // nil fields are no-ops
}

// TCPMetrics mirrors the transport's send activity into a metrics
// registry. Any field may be nil (a nil counter is a no-op).
type TCPMetrics struct {
	// Sends counts successful message sends; SentBytes their frame bytes
	// as actually written to the socket.
	Sends, SentBytes *metrics.Counter
	// Redials counts reconnect attempts after a failed dial or write;
	// SendErrors counts messages given up on after exhausting retries.
	Redials, SendErrors *metrics.Counter
}

var _ Transport = (*TCPTransport)(nil)

// NewTCP starts a transport listening on addr (e.g. "127.0.0.1:0"),
// framing messages with codec. Call Close to stop it.
func NewTCP(id, addr string, codec Codec) (*TCPTransport, error) {
	if codec == nil {
		return nil, errors.New("transport: nil codec")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCPTransport{
		id:            id,
		ln:            ln,
		codec:         codec,
		peers:         make(map[string]*tcpPeer),
		outbound:      make(map[net.Conn]bool),
		inbound:       make(map[net.Conn]bool),
		retryAttempts: 4,
		retryBase:     50 * time.Millisecond,
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// AddPeer registers a peer id with its dialable address.
func (t *TCPTransport) AddPeer(id, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p, ok := t.peers[id]; ok {
		p.addr = addr
		return
	}
	t.peers[id] = &tcpPeer{addr: addr}
}

// Peers implements PeerLister: a copy of the known peer addresses.
func (t *TCPTransport) Peers() map[string]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]string, len(t.peers))
	for id, p := range t.peers {
		out[id] = p.addr
	}
	return out
}

// RemovePeer forgets a peer, closing any open connection to it. Used when
// a peer leaves the mesh.
func (t *TCPTransport) RemovePeer(id string) {
	t.mu.Lock()
	p, ok := t.peers[id]
	if ok {
		delete(t.peers, id)
	}
	t.mu.Unlock()
	if !ok {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		p.conn.Close()
		t.mu.Lock()
		delete(t.outbound, p.conn)
		t.mu.Unlock()
		p.conn = nil
	}
}

var (
	_ PeerAdder  = (*TCPTransport)(nil)
	_ Addresser  = (*TCPTransport)(nil)
	_ PeerLister = (*TCPTransport)(nil)
)

// SetRetryPolicy tunes Send's reconnect behavior: attempts total tries per
// message (minimum 1) with the backoff doubling from base between tries.
func (t *TCPTransport) SetRetryPolicy(attempts int, base time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if attempts < 1 {
		attempts = 1
	}
	t.retryAttempts = attempts
	t.retryBase = base
}

// Instrument mirrors the transport's send activity into m from now on.
func (t *TCPTransport) Instrument(m TCPMetrics) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m = m
}

// Self implements Transport.
func (t *TCPTransport) Self() string { return t.id }

// Neighbors implements Transport.
func (t *TCPTransport) Neighbors() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.peers))
	for id := range t.peers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// SetHandler implements Transport.
func (t *TCPTransport) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// Clock implements Transport.
func (t *TCPTransport) Clock() simclock.Clock { return simclock.WallClock{} }

// Send implements Transport: it encodes one frame with the codec, lazily
// dials the peer, and on dial or write failure redials with exponential
// backoff (per SetRetryPolicy) before reporting the last error. Only the
// target peer's lock is held, so an unresponsive peer stalls no one else.
func (t *TCPTransport) Send(to string, size int64, payload any) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errors.New("transport: closed")
	}
	p, ok := t.peers[to]
	var addr string
	if ok {
		addr = p.addr
	}
	attempts, backoff := t.retryAttempts, t.retryBase
	m := t.m
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}

	buf := frameBufPool.Get().(*[]byte)
	defer func() {
		*buf = (*buf)[:0]
		frameBufPool.Put(buf)
	}()
	frame, err := t.codec.Append((*buf)[:0], t.id, size, payload)
	if err != nil {
		// An unencodable payload is a programming error, not a flaky
		// link; retrying cannot help.
		m.SendErrors.Inc()
		return fmt.Errorf("transport: encode for %s: %w", to, err)
	}
	*buf = frame

	p.mu.Lock()
	defer p.mu.Unlock()
	var lastErr error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			m.Redials.Inc()
			time.Sleep(backoff)
			backoff *= 2
		}
		if p.conn == nil {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				lastErr = fmt.Errorf("transport: dial %s (%s): %w", to, addr, err)
				continue
			}
			t.mu.Lock()
			if t.closed {
				t.mu.Unlock()
				conn.Close()
				return errors.New("transport: closed")
			}
			t.outbound[conn] = true
			t.mu.Unlock()
			p.conn = conn
		}
		if _, err := p.conn.Write(frame); err != nil {
			// Drop the broken connection so the next attempt redials.
			p.conn.Close()
			t.mu.Lock()
			delete(t.outbound, p.conn)
			closed := t.closed
			t.mu.Unlock()
			p.conn = nil
			if closed {
				return errors.New("transport: closed")
			}
			lastErr = fmt.Errorf("transport: send to %s: %w", to, err)
			continue
		}
		m.Sends.Inc()
		m.SentBytes.Add(int64(len(frame)))
		return nil
	}
	m.SendErrors.Inc()
	return lastErr
}

// Close stops the listener and all connections, waiting for reader
// goroutines to exit.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	// Close raw connections without taking peer locks: a writer blocked in
	// Write holds its peer lock, and severing the socket is what unblocks
	// it.
	for c := range t.outbound {
		c.Close()
	}
	for c := range t.inbound {
		c.Close()
	}
	t.outbound = make(map[net.Conn]bool)
	t.mu.Unlock()

	err := t.ln.Close()
	t.wg.Wait()
	return err
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop reads length-prefixed frames off one inbound connection. Any
// malformed frame — length prefix out of bounds, short body, or a codec
// decode error — severs the connection; the sender's redial path
// re-establishes it. The handler's size argument is the actual frame
// length read off the wire, never a sender-asserted figure.
func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.inbound[conn] = true
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	buf := frameBufPool.Get().(*[]byte)
	defer func() {
		*buf = (*buf)[:0]
		frameBufPool.Put(buf)
	}()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := int(uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3]))
		// Guard before allocating: a corrupt or hostile prefix must not
		// drive an unbounded allocation. The body must at least hold the
		// version and type bytes.
		if n < 2 || n > MaxFrame-4 {
			return
		}
		if cap(*buf) < n {
			*buf = make([]byte, 0, n)
		}
		body := (*buf)[:n]
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		from, payload, err := t.codec.Decode(body)
		if err != nil {
			return
		}
		t.mu.Lock()
		h := t.handler
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		if h != nil {
			h(from, int64(4+n), payload)
		}
	}
}

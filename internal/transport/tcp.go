package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"

	"athena/internal/simclock"
)

// RegisterWireType registers a payload type for gob encoding over the TCP
// transport. All concrete payload types must be registered by both ends
// before traffic flows.
func RegisterWireType(value any) { gob.Register(value) }

// envelope is the TCP wire frame.
type envelope struct {
	From    string
	Size    int64
	Payload any
}

// ErrUnknownPeer is returned when sending to a peer that was never added.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// TCPTransport implements Transport over real TCP connections, one
// long-lived outbound connection per peer, gob-framed. It exists to show
// the Athena node logic runs outside the simulator (the paper ran one OS
// process per node addressed by IP:PORT).
type TCPTransport struct {
	id string
	ln net.Listener

	mu      sync.Mutex
	peers   map[string]string // id -> address
	conns   map[string]*gob.Encoder
	rawConn map[string]net.Conn
	inbound map[net.Conn]bool
	handler Handler
	wg      sync.WaitGroup
	closed  bool
}

var _ Transport = (*TCPTransport)(nil)

// NewTCP starts a transport listening on addr (e.g. "127.0.0.1:0"). Call
// Close to stop it.
func NewTCP(id, addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCPTransport{
		id:      id,
		ln:      ln,
		peers:   make(map[string]string),
		conns:   make(map[string]*gob.Encoder),
		rawConn: make(map[string]net.Conn),
		inbound: make(map[net.Conn]bool),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// AddPeer registers a peer id with its dialable address.
func (t *TCPTransport) AddPeer(id, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[id] = addr
}

// Self implements Transport.
func (t *TCPTransport) Self() string { return t.id }

// Neighbors implements Transport.
func (t *TCPTransport) Neighbors() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.peers))
	for id := range t.peers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// SetHandler implements Transport.
func (t *TCPTransport) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// Clock implements Transport.
func (t *TCPTransport) Clock() simclock.Clock { return simclock.WallClock{} }

// Send implements Transport: it lazily dials the peer and gob-encodes the
// envelope.
func (t *TCPTransport) Send(to string, size int64, payload any) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errors.New("transport: closed")
	}
	enc, ok := t.conns[to]
	if !ok {
		addr, known := t.peers[to]
		if !known {
			t.mu.Unlock()
			return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.mu.Unlock()
			return fmt.Errorf("transport: dial %s (%s): %w", to, addr, err)
		}
		enc = gob.NewEncoder(conn)
		t.conns[to] = enc
		t.rawConn[to] = conn
	}
	err := enc.Encode(envelope{From: t.id, Size: size, Payload: payload})
	if err != nil {
		// Drop the broken connection so the next Send redials.
		if c := t.rawConn[to]; c != nil {
			c.Close()
		}
		delete(t.conns, to)
		delete(t.rawConn, to)
		t.mu.Unlock()
		return fmt.Errorf("transport: send to %s: %w", to, err)
	}
	t.mu.Unlock()
	return nil
}

// Close stops the listener and all connections, waiting for reader
// goroutines to exit.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, c := range t.rawConn {
		c.Close()
	}
	for c := range t.inbound {
		c.Close()
	}
	t.conns = make(map[string]*gob.Encoder)
	t.rawConn = make(map[string]net.Conn)
	t.mu.Unlock()

	err := t.ln.Close()
	t.wg.Wait()
	return err
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.inbound[conn] = true
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		t.mu.Lock()
		h := t.handler
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		if h != nil {
			h(env.From, env.Size, env.Payload)
		}
	}
}

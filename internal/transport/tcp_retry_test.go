package transport

import (
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Send retries the dial with backoff: a peer that comes up moments after
// the first attempt still receives the message within one Send call.
func TestTCPSendRedialsWithBackoff(t *testing.T) {
	// Reserve an address, then free it so the first dial attempts fail.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	ta, err := NewTCP("a", "127.0.0.1:0", testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	ta.AddPeer("b", addr)
	ta.SetRetryPolicy(6, 40*time.Millisecond)

	received := make(chan testMsg, 1)
	// The peer appears mid-backoff.
	var tb *TCPTransport
	go func() {
		time.Sleep(100 * time.Millisecond)
		var err error
		tb, err = NewTCP("b", addr, testCodec{})
		if err != nil {
			t.Error(err)
			return
		}
		tb.SetHandler(func(_ string, _ int64, payload any) {
			if m, ok := payload.(testMsg); ok {
				received <- m
			}
		})
	}()
	defer func() {
		if tb != nil {
			tb.Close()
		}
	}()

	if err := ta.Send("b", 10, testMsg{Text: "late", N: 1}); err != nil {
		t.Fatalf("Send did not survive the late listener: %v", err)
	}
	select {
	case m := <-received:
		if m.Text != "late" {
			t.Errorf("got %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never delivered")
	}
}

// A peer that is permanently unreachable exhausts its attempts and Send
// reports the last dial error instead of hanging.
func TestTCPSendExhaustsRetries(t *testing.T) {
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	ta, err := NewTCP("a", "127.0.0.1:0", testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	ta.AddPeer("gone", addr)
	ta.SetRetryPolicy(3, 5*time.Millisecond)

	if err := ta.Send("gone", 10, testMsg{}); err == nil {
		t.Fatal("Send to a dead peer succeeded")
	} else if !strings.Contains(err.Error(), "dial") {
		t.Errorf("error = %v, want a dial failure", err)
	}
}

// A peer whose reader is stuck must not stall sends to other peers: the
// transport serializes per peer, not transport-wide. On the old
// transport-wide lock, the blocked write to the stuck peer held every
// other Send hostage.
func TestTCPNoHeadOfLineBlocking(t *testing.T) {
	// stuck accepts connections and never reads from them.
	stuck, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stuck.Close()
	go func() {
		for {
			if _, err := stuck.Accept(); err != nil {
				return
			}
		}
	}()

	healthy, err := NewTCP("healthy", "127.0.0.1:0", testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	delivered := make(chan struct{}, 1)
	healthy.SetHandler(func(string, int64, any) {
		select {
		case delivered <- struct{}{}:
		default:
		}
	})

	ta, err := NewTCP("a", "127.0.0.1:0", testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	ta.AddPeer("stuck", stuck.Addr().String())
	ta.AddPeer("healthy", healthy.Addr())

	// Jam the stuck peer's connection: keep writing 1 MB payloads until
	// the kernel buffers fill and Encode blocks.
	var jammedSends int32
	go func() {
		big := strings.Repeat("x", 1<<20)
		for i := 0; i < 64; i++ {
			if err := ta.Send("stuck", 1<<20, big); err != nil {
				return // transport closed at test end
			}
			atomic.AddInt32(&jammedSends, 1)
		}
	}()
	// Wait until the writer has stopped making progress (blocked in write).
	deadline := time.Now().Add(5 * time.Second)
	for {
		before := atomic.LoadInt32(&jammedSends)
		time.Sleep(100 * time.Millisecond)
		if atomic.LoadInt32(&jammedSends) == before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writer to stuck peer never blocked")
		}
	}

	done := make(chan error, 1)
	go func() { done <- ta.Send("healthy", 4, "ping") }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Send to healthy peer blocked behind the stuck peer")
	}
	select {
	case <-delivered:
	case <-time.After(3 * time.Second):
		t.Fatal("healthy peer never received the message")
	}
}

package schedule

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func item(id string, cost float64, validity time.Duration, pFalse float64) Item {
	return Item{ID: id, Cost: cost, Validity: validity, ProbFalse: pFalse}
}

func TestTimeline(t *testing.T) {
	items := []Item{
		item("a", 100, time.Minute, 0),
		item("b", 200, time.Minute, 0),
	}
	starts, finish := Timeline(items, []int{1, 0}, 100) // 100 B/s
	if starts[1] != 0 || starts[0] != 2*time.Second {
		t.Errorf("starts = %v", starts)
	}
	if finish != 3*time.Second {
		t.Errorf("finish = %v, want 3s", finish)
	}
}

func TestFeasibleBasics(t *testing.T) {
	items := []Item{
		item("long", 100, 10*time.Second, 0),
		item("short", 100, 1500*time.Millisecond, 0),
	}
	bw := 100.0 // each item takes 1s; F = 2s.
	// LVF (long first): short starts at 1s, fresh until 2.5s >= F. Feasible.
	if !Feasible(items, []int{0, 1}, bw, 10*time.Second) {
		t.Error("LVF order infeasible")
	}
	// Reverse: short starts at 0, stale at 1.5s < F=2s. Infeasible.
	if Feasible(items, []int{1, 0}, bw, 10*time.Second) {
		t.Error("MVF order feasible")
	}
	// Deadline violation.
	if Feasible(items, []int{0, 1}, bw, time.Second) {
		t.Error("missed deadline accepted")
	}
}

func TestLVFOrderSorts(t *testing.T) {
	items := []Item{
		item("mid", 1, 5*time.Second, 0),
		item("long", 1, 9*time.Second, 0),
		item("short", 1, time.Second, 0),
	}
	order := LVFOrder(items)
	want := []int{1, 0, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("LVFOrder = %v, want %v", order, want)
		}
	}
	// MVF is the exact reverse.
	mvf := MVFOrder(items)
	for i := range want {
		if mvf[i] != want[len(want)-1-i] {
			t.Fatalf("MVFOrder = %v", mvf)
		}
	}
}

func TestLCFOrderSorts(t *testing.T) {
	items := []Item{
		item("big", 300, time.Second, 0),
		item("small", 100, time.Second, 0),
		item("mid", 200, time.Second, 0),
	}
	order := LCFOrder(items)
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("LCFOrder = %v, want %v", order, want)
		}
	}
}

// Property (ref [1] theorem): if ANY order is feasible, LVF is feasible.
func TestLVFOptimalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const bw = 1000.0
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(6)
		items := make([]Item, n)
		for i := range items {
			items[i] = item(
				fmt.Sprintf("o%d", i),
				float64(100+rng.Intn(2000)),
				time.Duration(200+rng.Intn(8000))*time.Millisecond,
				0,
			)
		}
		deadline := time.Duration(500+rng.Intn(10000)) * time.Millisecond
		_, anyFeasible := BruteForceFeasible(items, bw, deadline)
		lvfFeasible := Feasible(items, LVFOrder(items), bw, deadline)
		if anyFeasible && !lvfFeasible {
			t.Fatalf("feasible schedule exists but LVF infeasible: items=%+v deadline=%v", items, deadline)
		}
		if lvfFeasible && !anyFeasible {
			t.Fatal("brute force missed the LVF schedule")
		}
	}
}

func TestExpectedCostShortCircuit(t *testing.T) {
	// The Section III-A example as schedule items.
	items := []Item{
		item("h", 4, time.Hour, 0.4),
		item("k", 5, time.Hour, 0.8),
	}
	if got := ExpectedCost(items, []int{1, 0}); got != 5.8 {
		t.Errorf("k-first expected cost = %v, want 5.8", got)
	}
	if got := ExpectedCost(items, []int{0, 1}); got != 7.0 {
		t.Errorf("h-first expected cost = %v, want 7.0", got)
	}
}

func TestGreedyShortCircuitReordersWhenSlackAllows(t *testing.T) {
	// Generous validities: greedy is free to move the strong
	// short-circuiter (k) first even though LVF puts h first.
	items := []Item{
		item("h", 400, time.Hour, 0.4),
		item("k", 500, 30*time.Minute, 0.8),
	}
	order := GreedyShortCircuit(items, 1000, time.Hour)
	if items[order[0]].ID != "k" {
		t.Errorf("greedy order = %v, want k first", order)
	}
	if !Feasible(items, order, 1000, time.Hour) {
		t.Error("greedy order infeasible")
	}
}

func TestGreedyShortCircuitRespectsFreshness(t *testing.T) {
	// Transfers: h 0.4s, k 0.5s; F = 0.9s. k's validity (0.6s) only
	// survives to F if k goes second (starts at 0.4s, fresh till 1.0s);
	// k first would expire at 0.6s < F. So only [h, k] is feasible, and
	// greedy must refuse the cost-motivated swap to k-first.
	items := []Item{
		item("h", 400, 920*time.Millisecond, 0.4),
		item("k", 500, 600*time.Millisecond, 0.8),
	}
	order := GreedyShortCircuit(items, 1000, time.Hour)
	if !Feasible(items, order, 1000, time.Hour) {
		t.Fatalf("greedy order %v infeasible", order)
	}
	if items[order[0]].ID != "h" {
		t.Errorf("greedy violated freshness to chase short-circuit: %v", order)
	}
}

// Property: greedy short-circuit order is feasible whenever LVF is, and
// its expected cost never exceeds LVF's.
func TestGreedyShortCircuitProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const bw = 1000.0
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(6)
		items := make([]Item, n)
		for i := range items {
			items[i] = item(
				fmt.Sprintf("o%d", i),
				float64(100+rng.Intn(2000)),
				time.Duration(200+rng.Intn(8000))*time.Millisecond,
				rng.Float64(),
			)
		}
		deadline := time.Duration(500+rng.Intn(10000)) * time.Millisecond
		lvf := LVFOrder(items)
		greedy := GreedyShortCircuit(items, bw, deadline)
		if Feasible(items, lvf, bw, deadline) && !Feasible(items, greedy, bw, deadline) {
			t.Fatalf("greedy broke feasibility: items=%+v", items)
		}
		if ExpectedCost(items, greedy) > ExpectedCost(items, lvf)+1e-9 {
			t.Fatalf("greedy cost %v > LVF cost %v",
				ExpectedCost(items, greedy), ExpectedCost(items, lvf))
		}
	}
}

func TestOptimalCost(t *testing.T) {
	items := []Item{item("a", 3, 0, 0), item("b", 4.5, 0, 0)}
	if got := OptimalCost(items); got != 7.5 {
		t.Errorf("OptimalCost = %v, want 7.5", got)
	}
}

func BenchmarkLVFOrder(b *testing.B) {
	rng := rand.New(rand.NewSource(29))
	items := make([]Item, 200)
	for i := range items {
		items[i] = item(fmt.Sprintf("o%d", i), rng.Float64()*1000,
			time.Duration(rng.Intn(10000))*time.Millisecond, rng.Float64())
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LVFOrder(items)
	}
}

func BenchmarkGreedyShortCircuit(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	items := make([]Item, 50)
	for i := range items {
		items[i] = item(fmt.Sprintf("o%d", i), 100+rng.Float64()*1000,
			time.Duration(1000+rng.Intn(60000))*time.Millisecond, rng.Float64())
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GreedyShortCircuit(items, 10000, time.Minute)
	}
}

func BenchmarkLCFOrder(b *testing.B) {
	rng := rand.New(rand.NewSource(37))
	items := make([]Item, 200)
	for i := range items {
		items[i] = item(fmt.Sprintf("o%d", i), rng.Float64()*1000,
			time.Duration(rng.Intn(10000))*time.Millisecond, rng.Float64())
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LCFOrder(items)
	}
}

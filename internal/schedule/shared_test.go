package schedule

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func TestSharedScheduleReusesOverlap(t *testing.T) {
	objects := []Item{
		item("shared", 1000, time.Minute, 0),
		item("onlyQ1", 1000, time.Minute, 0),
		item("onlyQ2", 1000, time.Minute, 0),
	}
	queries := []SharedQuery{
		{ID: "q1", Objects: []int{0, 1}, Deadline: 10 * time.Second},
		{ID: "q2", Objects: []int{0, 2}, Deadline: 20 * time.Second},
	}
	res := SharedSchedule(objects, queries, 1000) // 1s per object

	if got, want := res.Cost, 3000.0; got != want {
		t.Errorf("shared cost = %v, want %v (one transfer of the shared object)", got, want)
	}
	if indep := IndependentCost(objects, queries); indep != 4000 {
		t.Errorf("independent cost = %v, want 4000", indep)
	}
	if res.FeasibleCount() != 2 {
		t.Errorf("feasible = %v", res.Feasible)
	}
	if len(res.Transmissions) != 3 {
		t.Errorf("transmissions = %v", res.Transmissions)
	}
	// q1 decides after two transfers, q2 after one more.
	if res.Finish[0] != 2*time.Second || res.Finish[1] != 3*time.Second {
		t.Errorf("finish = %v", res.Finish)
	}
}

func TestSharedScheduleRetransmitsStaleOverlap(t *testing.T) {
	// The shared object's validity is too short to survive from q1's
	// transfer to q2's decision time: it must be transmitted twice.
	objects := []Item{
		item("shared", 1000, 2500*time.Millisecond, 0),
		item("bulk", 3000, time.Minute, 0),
	}
	queries := []SharedQuery{
		{ID: "q1", Objects: []int{0}, Deadline: 5 * time.Second},
		{ID: "q2", Objects: []int{0, 1}, Deadline: 20 * time.Second},
	}
	res := SharedSchedule(objects, queries, 1000)
	// q1: shared at [0,1s). q2: bulk 3s; reusing shared would need
	// freshness at ~4s > 0 + 2.5s. So shared retransmits: cost 1000 +
	// 3000 + 1000.
	if res.Cost != 5000 {
		t.Errorf("cost = %v, want 5000 (stale overlap retransmitted)", res.Cost)
	}
	if res.FeasibleCount() != 2 {
		t.Errorf("feasible = %v (finish %v)", res.Feasible, res.Finish)
	}
}

func TestSharedScheduleDeadlineMiss(t *testing.T) {
	objects := []Item{item("big", 10_000, time.Minute, 0)}
	queries := []SharedQuery{
		{ID: "q", Objects: []int{0}, Deadline: time.Second}, // 10s transfer
	}
	res := SharedSchedule(objects, queries, 1000)
	if res.FeasibleCount() != 0 {
		t.Errorf("infeasible query marked feasible")
	}
	if res.Cost != 10_000 {
		t.Errorf("cost = %v", res.Cost)
	}
}

func TestSharedScheduleNoOverlapMatchesIndependent(t *testing.T) {
	objects := []Item{
		item("a", 500, time.Minute, 0),
		item("b", 700, time.Minute, 0),
	}
	queries := []SharedQuery{
		{ID: "q1", Objects: []int{0}, Deadline: time.Minute},
		{ID: "q2", Objects: []int{1}, Deadline: time.Minute},
	}
	res := SharedSchedule(objects, queries, 1000)
	if res.Cost != IndependentCost(objects, queries) {
		t.Errorf("no-overlap cost %v != independent %v", res.Cost, IndependentCost(objects, queries))
	}
}

// Property: reuse never costs more than independent scheduling, and all
// reused samples are fresh at their consumers' decision times.
func TestSharedScheduleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	const bw = 1000.0
	for trial := 0; trial < 300; trial++ {
		nObj := 2 + rng.Intn(6)
		objects := make([]Item, nObj)
		for i := range objects {
			objects[i] = item(fmt.Sprintf("o%d", i),
				float64(100+rng.Intn(2000)),
				time.Duration(500+rng.Intn(10000))*time.Millisecond, 0)
		}
		nQ := 1 + rng.Intn(4)
		queries := make([]SharedQuery, nQ)
		for qi := range queries {
			n := 1 + rng.Intn(nObj)
			perm := rng.Perm(nObj)[:n]
			queries[qi] = SharedQuery{
				ID:       fmt.Sprintf("q%d", qi),
				Objects:  perm,
				Deadline: time.Duration(1000+rng.Intn(20000)) * time.Millisecond,
			}
		}
		res := SharedSchedule(objects, queries, bw)
		if indep := IndependentCost(objects, queries); res.Cost > indep+1e-9 {
			t.Fatalf("shared cost %v > independent %v", res.Cost, indep)
		}

		// Replay the schedule to verify the freshness invariant: a
		// feasible query must, for each of its objects, have some
		// transmission that ends by its finish time and stays fresh at it.
		for qi, q := range queries {
			if !res.Feasible[qi] {
				continue
			}
			if res.Finish[qi] > q.Deadline {
				t.Fatalf("feasible query %s missed deadline", q.ID)
			}
			for _, oi := range q.Objects {
				ok := false
				for _, tx := range res.Transmissions {
					if tx.Object != oi || tx.End > res.Finish[qi] {
						continue
					}
					if tx.Start+objects[oi].Validity >= res.Finish[qi] {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("feasible query %s lacks fresh evidence for object %d at %v",
						q.ID, oi, res.Finish[qi])
				}
			}
		}

		// Transmissions must be back-to-back and non-overlapping.
		var at time.Duration
		for _, tx := range res.Transmissions {
			if tx.Start != at {
				t.Fatalf("transmission gap/overlap at %v: %+v", at, tx)
			}
			at = tx.End
		}

		// Determinism.
		res2 := SharedSchedule(objects, queries, bw)
		if res2.Cost != res.Cost || len(res2.Transmissions) != len(res.Transmissions) {
			t.Fatal("nondeterministic schedule")
		}
	}
}

func BenchmarkSharedSchedule(b *testing.B) {
	rng := rand.New(rand.NewSource(67))
	objects := make([]Item, 40)
	for i := range objects {
		objects[i] = item(fmt.Sprintf("o%d", i), 100+rng.Float64()*1000,
			time.Duration(1+rng.Intn(30))*time.Second, 0)
	}
	queries := make([]SharedQuery, 20)
	for qi := range queries {
		queries[qi] = SharedQuery{
			ID:       fmt.Sprintf("q%d", qi),
			Objects:  rng.Perm(40)[:5],
			Deadline: time.Duration(5+rng.Intn(60)) * time.Second,
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SharedSchedule(objects, queries, 10_000)
	}
}

package schedule

import (
	"sort"
	"time"
)

// Query is one decision query competing for the shared channel: a set of
// evidence items and a decision deadline, all arriving at time zero.
type Query struct {
	// ID identifies the query.
	ID string
	// Items are the evidence objects the query needs (non-overlapping
	// with other queries in the ref [1] model).
	Items []Item
	// Deadline is the decision deadline D relative to arrival.
	Deadline time.Duration
}

// urgency is the query's priority key from ref [1]: the minimum of its
// items' validity expirations and its deadline. Smaller is more urgent.
// In the pre-sampled model (samples taken at query arrival) this is the
// query's exact effective deadline.
func (q Query) urgency() time.Duration {
	u := q.Deadline
	for _, it := range q.Items {
		if it.Validity < u {
			u = it.Validity
		}
	}
	return u
}

// Placement locates one item in a multi-query schedule.
type Placement struct {
	// Query indexes into the query slice.
	Query int
	// Item indexes into that query's Items.
	Item int
}

// HierarchicalOrder builds the hierarchical multi-query schedule of
// ref [1]: queries get non-overlapping priority bands ordered by ascending
// urgency — the minimum of object validity expirations and decision
// deadline — and items within a query follow LVF. Ties break by query
// index.
//
// Optimality is model-dependent. In the pre-sampled model (each query's
// sensors sample at query arrival, so validity expirations are absolute;
// see FeasibleMultiPreSampled) this order is feasible whenever any order
// is: the key is exactly the query's effective deadline and the exchange
// argument for earliest-due-date applies. In the normally-off model
// (sensors activate when retrieval starts; FeasibleMulti), within-band
// freshness does not depend on band position, so use HierarchicalOrderEDD
// there.
func HierarchicalOrder(queries []Query) []Placement {
	return bandOrder(queries, func(q Query) time.Duration { return q.urgency() })
}

// HierarchicalOrderEDD orders bands by decision deadline alone, LVF inside
// each band — the optimal policy in the normally-off-sensors model, where
// activation times are chosen by the scheduler and validity constraints
// are internal to each band.
func HierarchicalOrderEDD(queries []Query) []Placement {
	return bandOrder(queries, func(q Query) time.Duration { return q.Deadline })
}

func bandOrder(queries []Query, key func(Query) time.Duration) []Placement {
	qOrder := identity(len(queries))
	sort.SliceStable(qOrder, func(a, b int) bool {
		return key(queries[qOrder[a]]) < key(queries[qOrder[b]])
	})
	var out []Placement
	for _, qi := range qOrder {
		for _, ii := range LVFOrder(queries[qi].Items) {
			out = append(out, Placement{Query: qi, Item: ii})
		}
	}
	return out
}

// FeasibleMulti checks a flat multi-query schedule: items are transferred
// back-to-back in order; each query's decision time F_q is when its last
// item finishes; every item of q must still be fresh at F_q
// (start + I >= F_q) and F_q must meet q's deadline.
func FeasibleMulti(queries []Query, order []Placement, bandwidth float64) bool {
	starts := make([][]time.Duration, len(queries))
	finish := make([]time.Duration, len(queries))
	seen := make([]int, len(queries))
	for i := range queries {
		starts[i] = make([]time.Duration, len(queries[i].Items))
	}
	var at time.Duration
	for _, p := range order {
		it := queries[p.Query].Items[p.Item]
		starts[p.Query][p.Item] = at
		at += transferTime(it.Cost, bandwidth)
		seen[p.Query]++
		if seen[p.Query] == len(queries[p.Query].Items) {
			finish[p.Query] = at
		}
	}
	for qi, q := range queries {
		if seen[qi] != len(q.Items) {
			return false // incomplete schedule
		}
		if finish[qi] > q.Deadline {
			return false
		}
		for ii, it := range q.Items {
			if starts[qi][ii]+it.Validity < finish[qi] {
				return false
			}
		}
	}
	return true
}

// FeasibleMultiPreSampled checks a schedule under the pre-sampled model:
// every sensor samples at query arrival (time zero), so an item's evidence
// expires at the absolute instant I_i. Query q is correct iff its decision
// time F_q is at most min(D_q, min_i I_i) — its effective deadline.
func FeasibleMultiPreSampled(queries []Query, order []Placement, bandwidth float64) bool {
	finish := make([]time.Duration, len(queries))
	seen := make([]int, len(queries))
	var at time.Duration
	for _, p := range order {
		it := queries[p.Query].Items[p.Item]
		at += transferTime(it.Cost, bandwidth)
		seen[p.Query]++
		if seen[p.Query] == len(queries[p.Query].Items) {
			finish[p.Query] = at
		}
	}
	for qi, q := range queries {
		if seen[qi] != len(q.Items) {
			return false
		}
		if finish[qi] > q.urgency() {
			return false
		}
	}
	return true
}

// BruteForceFeasibleMulti searches every interleaving of every item for a
// feasible multi-query schedule under the provided feasibility predicate.
// Factorial; for small test instances only.
func BruteForceFeasibleMulti(queries []Query, bandwidth float64,
	feasible func([]Query, []Placement, float64) bool) ([]Placement, bool) {
	var all []Placement
	for qi, q := range queries {
		for ii := range q.Items {
			all = append(all, Placement{Query: qi, Item: ii})
		}
	}
	n := len(all)
	var found []Placement
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			if feasible(queries, all, bandwidth) {
				found = append([]Placement(nil), all...)
				return true
			}
			return false
		}
		for i := k; i < n; i++ {
			all[k], all[i] = all[i], all[k]
			if rec(k + 1) {
				return true
			}
			all[k], all[i] = all[i], all[k]
		}
		return false
	}
	return found, rec(0)
}

// OptimalCost is the cost floor of Equation (1): every object retrieved
// exactly once.
func OptimalCost(items []Item) float64 {
	total := 0.0
	for _, it := range items {
		total += it.Cost
	}
	return total
}

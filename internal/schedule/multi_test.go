package schedule

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func TestUrgency(t *testing.T) {
	q := Query{
		Deadline: 10 * time.Second,
		Items: []Item{
			item("a", 1, 4*time.Second, 0),
			item("b", 1, 7*time.Second, 0),
		},
	}
	if got := q.urgency(); got != 4*time.Second {
		t.Errorf("urgency = %v, want 4s", got)
	}
	q.Deadline = 2 * time.Second
	if got := q.urgency(); got != 2*time.Second {
		t.Errorf("urgency = %v, want deadline 2s", got)
	}
}

func TestHierarchicalOrderBandsAndLVF(t *testing.T) {
	queries := []Query{
		{ID: "relaxed", Deadline: time.Minute, Items: []Item{
			item("r1", 1, 50*time.Second, 0),
			item("r2", 1, 55*time.Second, 0),
		}},
		{ID: "urgent", Deadline: 5 * time.Second, Items: []Item{
			item("u1", 1, 3*time.Second, 0),
			item("u2", 1, 9*time.Second, 0),
		}},
	}
	order := HierarchicalOrder(queries)
	// Urgent query's items come first, LVF within (u2 validity 9s > u1 3s).
	want := []Placement{{1, 1}, {1, 0}, {0, 1}, {0, 0}}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFeasibleMulti(t *testing.T) {
	queries := []Query{
		{ID: "q0", Deadline: 3 * time.Second, Items: []Item{
			item("a", 1000, 10*time.Second, 0), // 1s at 1000 B/s
			item("b", 1000, 10*time.Second, 0),
		}},
		{ID: "q1", Deadline: 3 * time.Second, Items: []Item{
			item("c", 1000, 10*time.Second, 0),
		}},
	}
	// q0's items then q1's: F_q0 = 2s <= 3s, F_q1 = 3s <= 3s. Feasible.
	order := []Placement{{0, 0}, {0, 1}, {1, 0}}
	if !FeasibleMulti(queries, order, 1000) {
		t.Error("feasible schedule rejected")
	}
	// q1 first: F_q0 = 3s fine; but tighten q1's deadline in a variant.
	queries[1].Deadline = 2 * time.Second
	if FeasibleMulti(queries, order, 1000) {
		t.Error("deadline miss accepted")
	}
	// Incomplete schedules rejected.
	if FeasibleMulti(queries, order[:2], 1000) {
		t.Error("incomplete schedule accepted")
	}
}

func randomQueries(rng *rand.Rand) []Query {
	nq := 1 + rng.Intn(3)
	queries := make([]Query, nq)
	total := 0
	for qi := range queries {
		ni := 1 + rng.Intn(3)
		if total+ni > 6 {
			ni = 1
		}
		total += ni
		itemsQ := make([]Item, ni)
		for ii := range itemsQ {
			itemsQ[ii] = item(
				fmt.Sprintf("q%do%d", qi, ii),
				float64(100+rng.Intn(1500)),
				time.Duration(300+rng.Intn(6000))*time.Millisecond,
				0,
			)
		}
		queries[qi] = Query{
			ID:       fmt.Sprintf("q%d", qi),
			Items:    itemsQ,
			Deadline: time.Duration(500+rng.Intn(8000)) * time.Millisecond,
		}
	}
	return queries
}

// Property (ref [1], pre-sampled model): if any interleaving is feasible,
// the hierarchical order keyed on min(validity expirations, deadline) is
// feasible.
func TestHierarchicalOptimalPreSampledProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	const bw = 1000.0
	for trial := 0; trial < 250; trial++ {
		queries := randomQueries(rng)
		_, anyFeasible := BruteForceFeasibleMulti(queries, bw, FeasibleMultiPreSampled)
		hier := HierarchicalOrder(queries)
		hierFeasible := FeasibleMultiPreSampled(queries, hier, bw)
		if anyFeasible && !hierFeasible {
			t.Fatalf("hierarchical missed feasible schedule: %+v", queries)
		}
		if hierFeasible && !anyFeasible {
			t.Fatal("brute force missed hierarchical schedule")
		}
	}
}

// Property (normally-off model): if any interleaving is feasible, EDD
// bands with LVF inside are feasible.
func TestHierarchicalEDDOptimalNormallyOffProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	const bw = 1000.0
	for trial := 0; trial < 250; trial++ {
		queries := randomQueries(rng)
		_, anyFeasible := BruteForceFeasibleMulti(queries, bw, FeasibleMulti)
		edd := HierarchicalOrderEDD(queries)
		eddFeasible := FeasibleMulti(queries, edd, bw)
		if anyFeasible && !eddFeasible {
			t.Fatalf("EDD bands missed feasible schedule: %+v", queries)
		}
		if eddFeasible && !anyFeasible {
			t.Fatal("brute force missed EDD schedule")
		}
	}
}

// In the pre-sampled model a feasible schedule is also pre-sampled
// feasible only if validity expirations allow it; sanity-check the two
// predicates against each other: pre-sampled feasibility implies
// normally-off feasibility (activating sensors at retrieval can only add
// slack).
func TestPreSampledImpliesNormallyOff(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const bw = 1000.0
	for trial := 0; trial < 200; trial++ {
		queries := randomQueries(rng)
		order := HierarchicalOrder(queries)
		if FeasibleMultiPreSampled(queries, order, bw) && !FeasibleMulti(queries, order, bw) {
			t.Fatalf("pre-sampled feasible but normally-off infeasible: %+v", queries)
		}
	}
}

func BenchmarkHierarchicalOrder(b *testing.B) {
	rng := rand.New(rand.NewSource(41))
	queries := make([]Query, 30)
	for qi := range queries {
		itemsQ := make([]Item, 5)
		for ii := range itemsQ {
			itemsQ[ii] = item(fmt.Sprintf("q%do%d", qi, ii),
				100+rng.Float64()*1000,
				time.Duration(rng.Intn(60000))*time.Millisecond, 0)
		}
		queries[qi] = Query{ID: fmt.Sprintf("q%d", qi), Items: itemsQ,
			Deadline: time.Duration(5+rng.Intn(60)) * time.Second}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HierarchicalOrder(queries)
	}
}

// Package schedule implements the decision-driven real-time scheduling
// theory of Section IV: retrieval ordering of evidence objects over a
// shared channel under data-validity constraints (t_i + I_i >= F) and
// decision deadlines (t + D >= F). It provides the Least-Volatile-First
// (LVF) policy and its optimality machinery (ref [1]), the hierarchical
// multi-query scheduler, the greedy validity-then-short-circuit reordering
// (ref [3]), and the baseline orders used in the paper's evaluation
// (comprehensive/FIFO, lowest-cost-first).
package schedule

import (
	"sort"
	"time"
)

// Item is one object-retrieval request. In the Section IV-A model the
// sensor is activated (and samples) the moment its transfer begins, so the
// item's validity clock starts at its scheduled start time.
type Item struct {
	// ID identifies the object.
	ID string
	// Cost is the transfer size in bytes.
	Cost float64
	// Validity is the sample's validity interval I_i.
	Validity time.Duration
	// ProbFalse is the probability this item's predicate evaluates false
	// (its short-circuit probability within an AND term).
	ProbFalse float64
}

// transferTime is how long an item occupies the channel.
func transferTime(cost, bandwidth float64) time.Duration {
	return time.Duration(cost / bandwidth * float64(time.Second))
}

// Timeline computes, for items retrieved back-to-back in the given order
// over a channel of bandwidth bytes/sec, each item's start offset and the
// finish time F (both relative to the query start).
func Timeline(items []Item, order []int, bandwidth float64) (starts []time.Duration, finish time.Duration) {
	starts = make([]time.Duration, len(items))
	var at time.Duration
	for _, idx := range order {
		starts[idx] = at
		at += transferTime(items[idx].Cost, bandwidth)
	}
	return starts, at
}

// Feasible reports whether the order satisfies both constraint families of
// Section IV-A: every item is still fresh at finish time F
// (start_i + I_i >= F) and the decision completes by the deadline (F <= D).
func Feasible(items []Item, order []int, bandwidth float64, deadline time.Duration) bool {
	starts, finish := Timeline(items, order, bandwidth)
	if finish > deadline {
		return false
	}
	for i := range items {
		if starts[i]+items[i].Validity < finish {
			return false
		}
	}
	return true
}

// LVFOrder returns the Least-Volatile-object-First order: items sorted by
// decreasing validity interval (ties by increasing cost, then index, for
// determinism). Ref [1] proves this order is feasible whenever any order
// is, for a single decision query over a single channel.
func LVFOrder(items []Item) []int {
	order := identity(len(items))
	// Precomputed key slices keep the comparator on two flat arrays
	// instead of re-loading whole Items through double indirection on
	// every comparison (the sort runs on the per-pump hot path).
	validity := make([]time.Duration, len(items))
	cost := make([]float64, len(items))
	for i := range items {
		validity[i] = items[i].Validity
		cost[i] = items[i].Cost
	}
	sort.SliceStable(order, func(a, b int) bool {
		va, vb := validity[order[a]], validity[order[b]]
		if va != vb {
			return va > vb
		}
		return cost[order[a]] < cost[order[b]]
	})
	return order
}

// LCFOrder is the lowest-cost-first baseline (the paper's lcf scheme).
func LCFOrder(items []Item) []int {
	order := identity(len(items))
	cost := make([]float64, len(items))
	for i := range items {
		cost[i] = items[i].Cost
	}
	sort.SliceStable(order, func(a, b int) bool {
		return cost[order[a]] < cost[order[b]]
	})
	return order
}

// FIFOOrder retrieves items in arrival order (the comprehensive baseline).
func FIFOOrder(items []Item) []int { return identity(len(items)) }

// MVFOrder is Most-Volatile-First (shortest validity first) — the
// pessimal counterpart of LVF, useful in tests and ablations.
func MVFOrder(items []Item) []int {
	order := LVFOrder(items)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// BruteForceFeasible exhaustively searches all orders for a feasible one.
// Exponential; for tests validating LVF optimality on small instances.
func BruteForceFeasible(items []Item, bandwidth float64, deadline time.Duration) ([]int, bool) {
	n := len(items)
	perm := identity(n)
	var found []int
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			if Feasible(items, perm, bandwidth, deadline) {
				found = append([]int(nil), perm...)
				return true
			}
			return false
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if rec(k + 1) {
				return true
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return false
	}
	return found, rec(0)
}

// ExpectedCost is the expected bytes transferred when items are retrieved
// in the given order and retrieval stops early (short-circuits) as soon as
// an item's predicate is false, with independent outcomes.
func ExpectedCost(items []Item, order []int) float64 {
	cost := 0.0
	pAllTrueSoFar := 1.0
	for _, idx := range order {
		cost += pAllTrueSoFar * items[idx].Cost
		pAllTrueSoFar *= 1 - items[idx].ProbFalse
	}
	return cost
}

// GreedyShortCircuit implements the greedy algorithm of ref [3]
// (Section III-A): start from the LVF order to satisfy data-expiration
// constraints, then repeatedly apply adjacent swaps that strictly reduce
// expected cost — moving items with higher short-circuit probability per
// unit cost earlier — as long as the order remains feasible. The returned
// order is always feasible if LVF is.
func GreedyShortCircuit(items []Item, bandwidth float64, deadline time.Duration) []int {
	order := LVFOrder(items)
	if len(order) < 2 {
		return order
	}
	improved := true
	for improved {
		improved = false
		for k := 0; k+1 < len(order); k++ {
			a, b := order[k], order[k+1]
			// Swapping adjacent items changes expected cost iff the later
			// item has a higher (1-p)/C, i.e. ProbFalse/Cost.
			if items[b].ProbFalse*items[a].Cost <= items[a].ProbFalse*items[b].Cost {
				continue
			}
			order[k], order[k+1] = b, a
			if Feasible(items, order, bandwidth, deadline) {
				improved = true
			} else {
				order[k], order[k+1] = a, b
			}
		}
	}
	return order
}

func identity(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

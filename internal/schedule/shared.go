package schedule

import (
	"sort"
	"time"
)

// This file implements the "non-independent queries" extension called for
// in Section IV-B: when queries overlap in the data objects they need,
// retrieving each object once per query is no longer optimal — a single
// transmission can serve several queries if the sample is still fresh at
// each of their decision times. SharedSchedule is a greedy near-optimal
// policy: queries run in effective-deadline order, each reusing prior
// transmissions whose samples survive to its decision time, transmitting
// (in LVF order) only what it cannot reuse.

// SharedQuery is a decision query referencing objects by index into a
// common object pool.
type SharedQuery struct {
	// ID names the query.
	ID string
	// Objects indexes the shared object pool.
	Objects []int
	// Deadline is the decision deadline relative to time zero.
	Deadline time.Duration
}

// Transmission is one scheduled transfer of a pool object.
type Transmission struct {
	// Object indexes the object pool.
	Object int
	// Start is the transfer (and sample) start offset.
	Start time.Duration
	// End is when the transfer completes.
	End time.Duration
}

// SharedResult is the outcome of SharedSchedule.
type SharedResult struct {
	// Transmissions lists the scheduled transfers in channel order.
	Transmissions []Transmission
	// Finish[i] is query i's decision time.
	Finish []time.Duration
	// Feasible[i] reports whether query i met its deadline with all its
	// evidence fresh at decision time.
	Feasible []bool
	// Cost is the total bytes transmitted.
	Cost float64
}

// FeasibleCount is the number of feasible queries.
func (r SharedResult) FeasibleCount() int {
	n := 0
	for _, ok := range r.Feasible {
		if ok {
			n++
		}
	}
	return n
}

// IndependentCost is the cost of serving the queries with no reuse:
// every query transmits every object it needs.
func IndependentCost(objects []Item, queries []SharedQuery) float64 {
	total := 0.0
	for _, q := range queries {
		for _, oi := range q.Objects {
			total += objects[oi].Cost
		}
	}
	return total
}

// SharedSchedule builds a reuse-aware schedule over a single channel of
// the given bandwidth (bytes/second). Queries are served in ascending
// effective-deadline order; within a query, objects that must be
// transmitted go in LVF order. A previously transmitted object is reused
// when its sample remains fresh at this query's decision time.
func SharedSchedule(objects []Item, queries []SharedQuery, bandwidth float64) SharedResult {
	order := identity(len(queries))
	sort.SliceStable(order, func(a, b int) bool {
		return queries[order[a]].Deadline < queries[order[b]].Deadline
	})

	res := SharedResult{
		Finish:   make([]time.Duration, len(queries)),
		Feasible: make([]bool, len(queries)),
	}
	// latest[obj] is the most recent transmission of obj, if any.
	latest := make(map[int]Transmission)
	var channel time.Duration

	for _, qi := range order {
		q := queries[qi]
		// Fixed-point over the reuse decision: start assuming everything
		// can be reused, compute the resulting decision time, then demote
		// reuses whose samples would be stale. Two or three rounds settle
		// because demotions only grow the transmit set.
		needTx := make([]int, 0, len(q.Objects))
		for {
			needTx = needTx[:0]
			// Candidate reuse = any prior transmission still recorded.
			var txTime time.Duration
			for _, oi := range q.Objects {
				if _, ok := latest[oi]; !ok {
					needTx = append(needTx, oi)
					txTime += transferTime(objects[oi].Cost, bandwidth)
				}
			}
			finish := channel + txTime
			if len(needTx) == len(q.Objects) {
				break // nothing reusable: done deciding
			}
			// Demote candidate reuses whose samples would be stale at the
			// estimated decision time; demotions only grow the transmit
			// set, so this converges.
			demoted := false
			for _, oi := range q.Objects {
				t, ok := latest[oi]
				if !ok {
					continue
				}
				if t.Start+objects[oi].Validity < finish {
					// Stale at this query's finish, hence stale for every
					// later query too.
					delete(latest, oi)
					demoted = true
				}
			}
			if !demoted {
				break
			}
		}

		// Transmit what is needed in LVF order.
		items := make([]Item, len(needTx))
		for i, oi := range needTx {
			items[i] = objects[oi]
		}
		for _, k := range LVFOrder(items) {
			oi := needTx[k]
			tx := Transmission{
				Object: oi,
				Start:  channel,
				End:    channel + transferTime(objects[oi].Cost, bandwidth),
			}
			channel = tx.End
			res.Transmissions = append(res.Transmissions, tx)
			res.Cost += objects[oi].Cost
			latest[oi] = tx
		}

		finish := channel
		res.Finish[qi] = finish

		// Feasibility: deadline met and every object (reused or fresh)
		// valid at decision time.
		feasible := finish <= q.Deadline
		for _, oi := range q.Objects {
			t, ok := latest[oi]
			if !ok || t.Start+objects[oi].Validity < finish {
				feasible = false
				break
			}
		}
		res.Feasible[qi] = feasible
	}
	return res
}

// Package wire is the hand-rolled binary codec for every Athena message.
// It replaces encoding/gob on the TCP path with explicit, length-prefixed
// frames built on encoding/binary primitives, so that bytes-on-the-wire
// are knowable, auditable, and equal to the wireSize() estimates netsim
// charges against link bandwidth.
//
// Frame layout (all integers big-endian):
//
//	offset  size  field
//	0       4     N: frame length, bytes after this prefix (u32)
//	4       1     format version (currently 1)
//	5       1     message type ID (see Type* constants)
//	6       2     sender id length L (u16)
//	8       L     sender id (UTF-8)
//	8+L     P     payload (type-specific, see append*/read* pairs)
//	8+L+P   Z     zero padding up to the message's WireSize()
//
// The padding makes WireSize() the truth: when the raw encoding is
// smaller than the modeled size the frame is padded up to it, so the TCP
// transport ships exactly the bytes the simulator accounts for. If a raw
// encoding ever exceeds the model the frame is sent unpadded — the
// receiver always reports the actual frame length, never a sender
// estimate. TestWireSizeIsFrameLength pins the equality per type.
//
// Encoding primitives: strings and slices carry u16 lengths; integers are
// fixed-width big-endian; float64 goes through math.Float64bits; times
// travel as UnixNano with math.MinInt64 reserved for the zero time;
// durations are their int64 nanosecond count. Maps are encoded sorted by
// key so encoding is deterministic (golden tests depend on it).
//
// Buffers are pooled: Get/PutBuffer recycle frame buffers through a
// sync.Pool. Decoded messages never alias the input buffer (strings and
// byte fields are copied out), so callers may recycle a buffer as soon as
// Decode returns.
package wire

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"athena/internal/athena"
	"athena/internal/transport"
	"athena/internal/trust"
)

// Version is the wire format version stamped into every frame. Receivers
// reject frames with a different version rather than guessing.
const Version = 1

// MaxFrame bounds a frame's total length (prefix included). The value is
// the transport's receive-side guard: Append refuses to produce frames
// the peer's read loop would reject.
const MaxFrame = transport.MaxFrame

// headerBytes is the fixed cost before the sender id: 4-byte length
// prefix, version byte, type byte, and the id's u16 length.
const headerBytes = 8

// Message type IDs, one per Athena wire message. The zero value is
// reserved (it marks a corrupt frame).
const (
	TypeQueryAnnounce = 1 + iota
	TypeObjectRequest
	TypeObjectData
	TypeLabelShare
	TypeHeartbeat
	TypeAdvertGossip
	TypePeerJoin
	TypePeerJoinAck
	TypePeerLeave
	TypeSyncRequest
	TypeSyncResponse
	TypePing
	TypeAck
	TypePingReq
	TypeShardLookup
	TypeShardLookupReply
	TypeShardSyncRequest
	TypeShardSyncResponse
	TypeRequestBatch
	TypeDataBatch
)

// Codec implements transport.Codec for the Athena message set. It is
// stateless; the zero value is ready to use.
type Codec struct{}

var _ transport.Codec = Codec{}

var (
	// ErrUnknownType reports an unregistered payload type on encode or an
	// unrecognized type ID on decode.
	ErrUnknownType = errors.New("wire: unknown message type")
	// ErrBadFrame reports a structurally invalid frame: wrong version,
	// truncated field, or trailing garbage where padding should be.
	ErrBadFrame = errors.New("wire: bad frame")
	// ErrTooLarge reports a frame exceeding MaxFrame or a string/slice
	// exceeding its u16 length field.
	ErrTooLarge = errors.New("wire: frame too large")
)

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuffer returns a pooled frame buffer with zero length. Return it
// with PutBuffer when the frame has been written or decoded.
func GetBuffer() *[]byte {
	return bufPool.Get().(*[]byte)
}

// PutBuffer recycles a frame buffer obtained from GetBuffer.
func PutBuffer(b *[]byte) {
	*b = (*b)[:0]
	bufPool.Put(b)
}

// Append encodes one complete frame — length prefix, header, payload,
// padding — onto dst and returns the extended slice. from is the sender
// id stamped into the header; size is the sender's modeled wire size,
// which the frame is padded to when the raw encoding is smaller.
func (Codec) Append(dst []byte, from string, size int64, payload any) ([]byte, error) {
	start := len(dst)
	// Reserve the length prefix; patched once the body is known.
	dst = append(dst, 0, 0, 0, 0)
	dst = append(dst, Version)

	id, ok := typeID(payload)
	if !ok {
		return dst[:start], fmt.Errorf("%w: %T", ErrUnknownType, payload)
	}
	dst = append(dst, id)
	var err error
	if dst, err = appendString(dst, from); err != nil {
		return dst[:start], err
	}
	if dst, err = appendPayload(dst, payload); err != nil {
		return dst[:start], err
	}
	// Pad to the modeled size so measured traffic matches the simulator's
	// accounting; an oversized raw encoding ships as-is.
	if raw := int64(len(dst) - start); size > raw && size <= MaxFrame {
		dst = append(dst, make([]byte, size-raw)...)
	}
	total := len(dst) - start
	if total > MaxFrame {
		return dst[:start], fmt.Errorf("%w: %d bytes", ErrTooLarge, total)
	}
	putU32(dst[start:], uint32(total-4))
	return dst, nil
}

// Decode parses a frame body (everything after the 4-byte length prefix)
// and returns the sender id and the decoded message as a pointer
// (*athena.Ping, *athena.ObjectData, ...). Trailing bytes must be zero
// padding; anything else is ErrBadFrame.
func (Codec) Decode(body []byte) (from string, payload any, err error) {
	r := reader{b: body}
	if v := r.u8(); v != Version {
		return "", nil, fmt.Errorf("%w: version %d", ErrBadFrame, v)
	}
	id := r.u8()
	from = r.str()
	payload, err = readPayload(&r, id)
	if err != nil {
		return "", nil, err
	}
	if r.err != nil {
		return "", nil, r.err
	}
	// Whatever remains must be padding.
	for _, b := range r.b[r.off:] {
		if b != 0 {
			return "", nil, fmt.Errorf("%w: non-zero padding", ErrBadFrame)
		}
	}
	return from, payload, nil
}

// EncodedFrameLen returns the total frame length (prefix included) that
// Append would produce for the message — the quantity WireSize() models.
func (c Codec) EncodedFrameLen(from string, size int64, payload any) (int64, error) {
	buf := GetBuffer()
	defer PutBuffer(buf)
	b, err := c.Append(*buf, from, size, payload)
	if err != nil {
		return 0, err
	}
	n := int64(len(b))
	*buf = b[:0]
	return n, nil
}

func typeID(payload any) (byte, bool) {
	switch payload.(type) {
	case *athena.QueryAnnounce:
		return TypeQueryAnnounce, true
	case *athena.ObjectRequest:
		return TypeObjectRequest, true
	case *athena.ObjectData:
		return TypeObjectData, true
	case *athena.LabelShare:
		return TypeLabelShare, true
	case *athena.Heartbeat:
		return TypeHeartbeat, true
	case *athena.AdvertGossip:
		return TypeAdvertGossip, true
	case *athena.PeerJoin:
		return TypePeerJoin, true
	case *athena.PeerJoinAck:
		return TypePeerJoinAck, true
	case *athena.PeerLeave:
		return TypePeerLeave, true
	case *athena.SyncRequest:
		return TypeSyncRequest, true
	case *athena.SyncResponse:
		return TypeSyncResponse, true
	case *athena.Ping:
		return TypePing, true
	case *athena.Ack:
		return TypeAck, true
	case *athena.PingReq:
		return TypePingReq, true
	case *athena.ShardLookup:
		return TypeShardLookup, true
	case *athena.ShardLookupReply:
		return TypeShardLookupReply, true
	case *athena.ShardSyncRequest:
		return TypeShardSyncRequest, true
	case *athena.ShardSyncResponse:
		return TypeShardSyncResponse, true
	case *athena.RequestBatch:
		return TypeRequestBatch, true
	case *athena.DataBatch:
		return TypeDataBatch, true
	}
	return 0, false
}

func appendPayload(dst []byte, payload any) ([]byte, error) {
	switch m := payload.(type) {
	case *athena.QueryAnnounce:
		return appendQueryAnnounce(dst, m)
	case *athena.ObjectRequest:
		return appendObjectRequest(dst, m)
	case *athena.ObjectData:
		return appendObjectData(dst, m)
	case *athena.LabelShare:
		return appendLabelShare(dst, m)
	case *athena.Heartbeat:
		return appendHeartbeat(dst, m)
	case *athena.AdvertGossip:
		return appendAdvertGossip(dst, m)
	case *athena.PeerJoin:
		return appendPeerJoin(dst, m)
	case *athena.PeerJoinAck:
		return appendPeerJoinAck(dst, m)
	case *athena.PeerLeave:
		return appendPeerLeave(dst, m)
	case *athena.SyncRequest:
		return appendSyncRequest(dst, m)
	case *athena.SyncResponse:
		return appendSyncResponse(dst, m)
	case *athena.Ping:
		return appendPing(dst, m)
	case *athena.Ack:
		return appendAck(dst, m)
	case *athena.PingReq:
		return appendPingReq(dst, m)
	case *athena.ShardLookup:
		return appendShardLookup(dst, m)
	case *athena.ShardLookupReply:
		return appendShardLookupReply(dst, m)
	case *athena.ShardSyncRequest:
		return appendShardSyncRequest(dst, m)
	case *athena.ShardSyncResponse:
		return appendShardSyncResponse(dst, m)
	case *athena.RequestBatch:
		return appendRequestBatch(dst, m)
	case *athena.DataBatch:
		return appendDataBatch(dst, m)
	}
	return dst, fmt.Errorf("%w: %T", ErrUnknownType, payload)
}

func readPayload(r *reader, id byte) (any, error) {
	switch id {
	case TypeQueryAnnounce:
		return readQueryAnnounce(r), nil
	case TypeObjectRequest:
		return readObjectRequest(r), nil
	case TypeObjectData:
		return readObjectData(r), nil
	case TypeLabelShare:
		return readLabelShare(r), nil
	case TypeHeartbeat:
		return readHeartbeat(r), nil
	case TypeAdvertGossip:
		return readAdvertGossip(r), nil
	case TypePeerJoin:
		return readPeerJoin(r), nil
	case TypePeerJoinAck:
		return readPeerJoinAck(r), nil
	case TypePeerLeave:
		return readPeerLeave(r), nil
	case TypeSyncRequest:
		return readSyncRequest(r), nil
	case TypeSyncResponse:
		return readSyncResponse(r), nil
	case TypePing:
		return readPing(r), nil
	case TypeAck:
		return readAck(r), nil
	case TypePingReq:
		return readPingReq(r), nil
	case TypeShardLookup:
		return readShardLookup(r), nil
	case TypeShardLookupReply:
		return readShardLookupReply(r), nil
	case TypeShardSyncRequest:
		return readShardSyncRequest(r), nil
	case TypeShardSyncResponse:
		return readShardSyncResponse(r), nil
	case TypeRequestBatch:
		return readRequestBatch(r), nil
	case TypeDataBatch:
		return readDataBatch(r), nil
	}
	return nil, fmt.Errorf("%w: id %d", ErrUnknownType, id)
}

// --- per-message payload encodings -----------------------------------

func appendQueryAnnounce(dst []byte, m *athena.QueryAnnounce) ([]byte, error) {
	var err error
	if dst, err = appendString(dst, m.QueryID); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, m.Origin); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, m.Expr); err != nil {
		return dst, err
	}
	dst = appendTime(dst, m.Deadline)
	dst = appendI64(dst, int64(m.TTL))
	dst = appendI64(dst, int64(m.Hops))
	return dst, nil
}

func readQueryAnnounce(r *reader) *athena.QueryAnnounce {
	return &athena.QueryAnnounce{
		QueryID:  r.str(),
		Origin:   r.str(),
		Expr:     r.str(),
		Deadline: r.time(),
		TTL:      int(r.i64()),
		Hops:     int(r.i64()),
	}
}

func appendObjectRequest(dst []byte, m *athena.ObjectRequest) ([]byte, error) {
	var err error
	if dst, err = appendString(dst, m.QueryID); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, m.Origin); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, m.Object); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, m.SourceNode); err != nil {
		return dst, err
	}
	if dst, err = appendStrings(dst, m.Labels); err != nil {
		return dst, err
	}
	dst = appendBool(dst, m.Prefetch)
	return dst, nil
}

func readObjectRequest(r *reader) *athena.ObjectRequest {
	m := &athena.ObjectRequest{}
	readObjectRequestInto(r, m)
	return m
}

func readObjectRequestInto(r *reader, m *athena.ObjectRequest) {
	m.QueryID = r.str()
	m.Origin = r.str()
	m.Object = r.str()
	m.SourceNode = r.str()
	m.Labels = r.strs()
	m.Prefetch = r.bool()
}

func appendObjectData(dst []byte, m *athena.ObjectData) ([]byte, error) {
	var err error
	if dst, err = appendString(dst, m.Object); err != nil {
		return dst, err
	}
	dst = appendU64(dst, m.Version)
	dst = appendI64(dst, m.Size)
	dst = appendTime(dst, m.Created)
	dst = appendI64(dst, int64(m.Validity))
	if dst, err = appendStrings(dst, m.Labels); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, m.SourceNode); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, m.Origin); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, m.QueryID); err != nil {
		return dst, err
	}
	dst = appendBool(dst, m.Background)
	return dst, nil
}

func readObjectData(r *reader) *athena.ObjectData {
	m := &athena.ObjectData{}
	readObjectDataInto(r, m)
	return m
}

func readObjectDataInto(r *reader, m *athena.ObjectData) {
	m.Object = r.str()
	m.Version = r.u64()
	m.Size = r.i64()
	m.Created = r.time()
	m.Validity = time.Duration(r.i64())
	m.Labels = r.strs()
	m.SourceNode = r.str()
	m.Origin = r.str()
	m.QueryID = r.str()
	m.Background = r.bool()
}

func appendLabelShare(dst []byte, m *athena.LabelShare) ([]byte, error) {
	var err error
	if dst, err = appendCount(dst, len(m.Records)); err != nil {
		return dst, err
	}
	for i := range m.Records {
		if dst, err = appendLabel(dst, &m.Records[i]); err != nil {
			return dst, err
		}
	}
	if dst, err = appendString(dst, m.Dest); err != nil {
		return dst, err
	}
	return appendString(dst, m.QueryID)
}

func readLabelShare(r *reader) *athena.LabelShare {
	m := &athena.LabelShare{}
	if n := r.count(); n > 0 {
		m.Records = make([]trust.Label, n)
		for i := range m.Records {
			readLabel(r, &m.Records[i])
		}
	}
	m.Dest = r.str()
	m.QueryID = r.str()
	return m
}

func appendHeartbeat(dst []byte, m *athena.Heartbeat) ([]byte, error) {
	var err error
	if dst, err = appendString(dst, m.Node); err != nil {
		return dst, err
	}
	dst = appendU64(dst, m.Beat)
	dst = appendU64(dst, m.AdvSeq)
	dst = appendU64(dst, m.Digest)
	return dst, nil
}

func readHeartbeat(r *reader) *athena.Heartbeat {
	return &athena.Heartbeat{
		Node:   r.str(),
		Beat:   r.u64(),
		AdvSeq: r.u64(),
		Digest: r.u64(),
	}
}

func appendAdvertGossip(dst []byte, m *athena.AdvertGossip) ([]byte, error) {
	var err error
	if dst, err = appendString(dst, m.To); err != nil {
		return dst, err
	}
	return appendAdverts(dst, m.Adverts)
}

func readAdvertGossip(r *reader) *athena.AdvertGossip {
	return &athena.AdvertGossip{To: r.str(), Adverts: readAdverts(r)}
}

func appendPeerJoin(dst []byte, m *athena.PeerJoin) ([]byte, error) {
	var err error
	if dst, err = appendString(dst, m.Node); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, m.Addr); err != nil {
		return dst, err
	}
	return appendAdverts(dst, m.Adverts)
}

func readPeerJoin(r *reader) *athena.PeerJoin {
	return &athena.PeerJoin{Node: r.str(), Addr: r.str(), Adverts: readAdverts(r)}
}

func appendPeerJoinAck(dst []byte, m *athena.PeerJoinAck) ([]byte, error) {
	var err error
	if dst, err = appendString(dst, m.Node); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, m.Addr); err != nil {
		return dst, err
	}
	if dst, err = appendStringMap(dst, m.Peers); err != nil {
		return dst, err
	}
	return appendAdverts(dst, m.Adverts)
}

func readPeerJoinAck(r *reader) *athena.PeerJoinAck {
	return &athena.PeerJoinAck{
		Node:    r.str(),
		Addr:    r.str(),
		Peers:   r.strMap(),
		Adverts: readAdverts(r),
	}
}

func appendPeerLeave(dst []byte, m *athena.PeerLeave) ([]byte, error) {
	var err error
	if dst, err = appendString(dst, m.Node); err != nil {
		return dst, err
	}
	return appendU64(dst, m.Seq), nil
}

func readPeerLeave(r *reader) *athena.PeerLeave {
	return &athena.PeerLeave{Node: r.str(), Seq: r.u64()}
}

func appendSync(dst []byte, from, to string, adverts []athena.Advertisement, seqs map[string]uint64, labels []trust.Label) ([]byte, error) {
	var err error
	if dst, err = appendString(dst, from); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, to); err != nil {
		return dst, err
	}
	if dst, err = appendAdverts(dst, adverts); err != nil {
		return dst, err
	}
	if dst, err = appendSeqMap(dst, seqs); err != nil {
		return dst, err
	}
	if dst, err = appendCount(dst, len(labels)); err != nil {
		return dst, err
	}
	for i := range labels {
		if dst, err = appendLabel(dst, &labels[i]); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

func readSyncLabels(r *reader) []trust.Label {
	n := r.count()
	if n == 0 {
		return nil
	}
	ls := make([]trust.Label, n)
	for i := range ls {
		readLabel(r, &ls[i])
	}
	return ls
}

func appendSyncRequest(dst []byte, m *athena.SyncRequest) ([]byte, error) {
	return appendSync(dst, m.From, m.To, m.Adverts, m.Seqs, m.Labels)
}

func readSyncRequest(r *reader) *athena.SyncRequest {
	return &athena.SyncRequest{
		From:    r.str(),
		To:      r.str(),
		Adverts: readAdverts(r),
		Seqs:    r.seqMap(),
		Labels:  readSyncLabels(r),
	}
}

func appendSyncResponse(dst []byte, m *athena.SyncResponse) ([]byte, error) {
	return appendSync(dst, m.From, m.To, m.Adverts, m.Seqs, m.Labels)
}

func readSyncResponse(r *reader) *athena.SyncResponse {
	return &athena.SyncResponse{
		From:    r.str(),
		To:      r.str(),
		Adverts: readAdverts(r),
		Seqs:    r.seqMap(),
		Labels:  readSyncLabels(r),
	}
}

func appendPing(dst []byte, m *athena.Ping) ([]byte, error) {
	var err error
	if dst, err = appendString(dst, m.From); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, m.To); err != nil {
		return dst, err
	}
	dst = appendU64(dst, m.Seq)
	dst = appendU64(dst, m.AdvSeq)
	dst = appendU64(dst, m.Digest)
	if dst, err = appendString(dst, m.OnBehalf); err != nil {
		return dst, err
	}
	dst = appendU64(dst, m.OnBehalfSeq)
	return appendUpdates(dst, m.Updates)
}

func readPing(r *reader) *athena.Ping {
	return &athena.Ping{
		From:        r.str(),
		To:          r.str(),
		Seq:         r.u64(),
		AdvSeq:      r.u64(),
		Digest:      r.u64(),
		OnBehalf:    r.str(),
		OnBehalfSeq: r.u64(),
		Updates:     readUpdates(r),
	}
}

func appendAck(dst []byte, m *athena.Ack) ([]byte, error) {
	var err error
	if dst, err = appendString(dst, m.From); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, m.To); err != nil {
		return dst, err
	}
	dst = appendU64(dst, m.Seq)
	dst = appendU64(dst, m.AdvSeq)
	dst = appendU64(dst, m.Digest)
	return appendUpdates(dst, m.Updates)
}

func readAck(r *reader) *athena.Ack {
	return &athena.Ack{
		From:    r.str(),
		To:      r.str(),
		Seq:     r.u64(),
		AdvSeq:  r.u64(),
		Digest:  r.u64(),
		Updates: readUpdates(r),
	}
}

func appendPingReq(dst []byte, m *athena.PingReq) ([]byte, error) {
	var err error
	if dst, err = appendString(dst, m.From); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, m.To); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, m.Target); err != nil {
		return dst, err
	}
	dst = appendU64(dst, m.Seq)
	return appendUpdates(dst, m.Updates)
}

func readPingReq(r *reader) *athena.PingReq {
	return &athena.PingReq{
		From:    r.str(),
		To:      r.str(),
		Target:  r.str(),
		Seq:     r.u64(),
		Updates: readUpdates(r),
	}
}

func appendShardLookup(dst []byte, m *athena.ShardLookup) ([]byte, error) {
	var err error
	if dst, err = appendString(dst, m.From); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, m.To); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, m.Label); err != nil {
		return dst, err
	}
	dst = appendU32(dst, m.Shard)
	dst = appendU64(dst, m.Nonce)
	return dst, nil
}

func readShardLookup(r *reader) *athena.ShardLookup {
	return &athena.ShardLookup{
		From:  r.str(),
		To:    r.str(),
		Label: r.str(),
		Shard: r.u32(),
		Nonce: r.u64(),
	}
}

func appendShardLookupReply(dst []byte, m *athena.ShardLookupReply) ([]byte, error) {
	var err error
	if dst, err = appendString(dst, m.From); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, m.To); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, m.Label); err != nil {
		return dst, err
	}
	dst = appendU32(dst, m.Shard)
	dst = appendU64(dst, m.Nonce)
	return appendAdverts(dst, m.Adverts)
}

func readShardLookupReply(r *reader) *athena.ShardLookupReply {
	return &athena.ShardLookupReply{
		From:    r.str(),
		To:      r.str(),
		Label:   r.str(),
		Shard:   r.u32(),
		Nonce:   r.u64(),
		Adverts: readAdverts(r),
	}
}

func appendShardSyncRequest(dst []byte, m *athena.ShardSyncRequest) ([]byte, error) {
	var err error
	if dst, err = appendString(dst, m.From); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, m.To); err != nil {
		return dst, err
	}
	if dst, err = appendU32s(dst, m.Shards); err != nil {
		return dst, err
	}
	return appendSeqMap(dst, m.Seqs)
}

func readShardSyncRequest(r *reader) *athena.ShardSyncRequest {
	return &athena.ShardSyncRequest{
		From:   r.str(),
		To:     r.str(),
		Shards: r.u32s(),
		Seqs:   r.seqMap(),
	}
}

func appendShardSyncResponse(dst []byte, m *athena.ShardSyncResponse) ([]byte, error) {
	var err error
	if dst, err = appendString(dst, m.From); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, m.To); err != nil {
		return dst, err
	}
	if dst, err = appendU32s(dst, m.Shards); err != nil {
		return dst, err
	}
	if dst, err = appendAdverts(dst, m.Adverts); err != nil {
		return dst, err
	}
	return appendSeqMap(dst, m.Seqs)
}

func readShardSyncResponse(r *reader) *athena.ShardSyncResponse {
	return &athena.ShardSyncResponse{
		From:    r.str(),
		To:      r.str(),
		Shards:  r.u32s(),
		Adverts: readAdverts(r),
		Seqs:    r.seqMap(),
	}
}

func appendRequestBatch(dst []byte, m *athena.RequestBatch) ([]byte, error) {
	var err error
	if dst, err = appendCount(dst, len(m.Requests)); err != nil {
		return dst, err
	}
	for i := range m.Requests {
		if dst, err = appendObjectRequest(dst, &m.Requests[i]); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

func readRequestBatch(r *reader) *athena.RequestBatch {
	m := &athena.RequestBatch{}
	if n := r.count(); n > 0 {
		m.Requests = make([]athena.ObjectRequest, n)
		for i := range m.Requests {
			readObjectRequestInto(r, &m.Requests[i])
		}
	}
	return m
}

func appendDataBatch(dst []byte, m *athena.DataBatch) ([]byte, error) {
	var err error
	if dst, err = appendCount(dst, len(m.Items)); err != nil {
		return dst, err
	}
	for i := range m.Items {
		if dst, err = appendObjectData(dst, &m.Items[i]); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

func readDataBatch(r *reader) *athena.DataBatch {
	m := &athena.DataBatch{}
	if n := r.count(); n > 0 {
		m.Items = make([]athena.ObjectData, n)
		for i := range m.Items {
			readObjectDataInto(r, &m.Items[i])
		}
	}
	return m
}

// --- sub-records ------------------------------------------------------

func appendAdvert(dst []byte, a *athena.Advertisement) ([]byte, error) {
	var err error
	if dst, err = appendString(dst, a.Source); err != nil {
		return dst, err
	}
	if dst, err = appendString(dst, a.Name); err != nil {
		return dst, err
	}
	dst = appendI64(dst, a.Size)
	dst = appendI64(dst, int64(a.Validity))
	if dst, err = appendStrings(dst, a.Labels); err != nil {
		return dst, err
	}
	dst = appendU64(dst, math.Float64bits(a.ProbTrue))
	dst = appendU64(dst, a.Seq)
	dst = appendBool(dst, a.Withdrawn)
	return dst, nil
}

func readAdvert(r *reader, a *athena.Advertisement) {
	a.Source = r.str()
	a.Name = r.str()
	a.Size = r.i64()
	a.Validity = time.Duration(r.i64())
	a.Labels = r.strs()
	a.ProbTrue = math.Float64frombits(r.u64())
	a.Seq = r.u64()
	a.Withdrawn = r.bool()
}

func appendAdverts(dst []byte, as []athena.Advertisement) ([]byte, error) {
	var err error
	if dst, err = appendCount(dst, len(as)); err != nil {
		return dst, err
	}
	for i := range as {
		if dst, err = appendAdvert(dst, &as[i]); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

func readAdverts(r *reader) []athena.Advertisement {
	n := r.count()
	if n == 0 {
		return nil
	}
	as := make([]athena.Advertisement, n)
	for i := range as {
		readAdvert(r, &as[i])
	}
	return as
}

// appendUpdates batches a piggyback delta into the enclosing frame: one
// count followed by the packed updates, no per-update framing.
func appendUpdates(dst []byte, us []athena.MemberUpdate) ([]byte, error) {
	var err error
	if dst, err = appendCount(dst, len(us)); err != nil {
		return dst, err
	}
	for i := range us {
		if dst, err = appendAdvert(dst, &us[i].Adv); err != nil {
			return dst, err
		}
		dst = appendBool(dst, us[i].Dead)
		dst = appendTime(dst, us[i].Born)
	}
	return dst, nil
}

func readUpdates(r *reader) []athena.MemberUpdate {
	n := r.count()
	if n == 0 {
		return nil
	}
	us := make([]athena.MemberUpdate, n)
	for i := range us {
		readAdvert(r, &us[i].Adv)
		us[i].Dead = r.bool()
		us[i].Born = r.time()
	}
	return us
}

func appendLabel(dst []byte, l *trust.Label) ([]byte, error) {
	var err error
	if dst, err = appendString(dst, l.Name); err != nil {
		return dst, err
	}
	dst = appendBool(dst, l.Value)
	if dst, err = appendString(dst, l.Annotator); err != nil {
		return dst, err
	}
	if dst, err = appendStrings(dst, l.Evidence); err != nil {
		return dst, err
	}
	dst = appendTime(dst, l.Computed)
	dst = appendI64(dst, int64(l.Validity))
	return appendString(dst, l.Signature)
}

func readLabel(r *reader, l *trust.Label) {
	l.Name = r.str()
	l.Value = r.bool()
	l.Annotator = r.str()
	l.Evidence = r.strs()
	l.Computed = r.time()
	l.Validity = time.Duration(r.i64())
	l.Signature = r.str()
}

// --- primitives -------------------------------------------------------

func putU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v>>8), byte(v))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU32s(dst []byte, vs []uint32) ([]byte, error) {
	var err error
	if dst, err = appendCount(dst, len(vs)); err != nil {
		return dst, err
	}
	for _, v := range vs {
		dst = appendU32(dst, v)
	}
	return dst, nil
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendI64(dst []byte, v int64) []byte {
	return appendU64(dst, uint64(v))
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// zeroTimeNanos is the sentinel for the zero time.Time, which has no
// representable UnixNano.
const zeroTimeNanos = math.MinInt64

func appendTime(dst []byte, t time.Time) []byte {
	if t.IsZero() {
		return appendI64(dst, zeroTimeNanos)
	}
	return appendI64(dst, t.UnixNano())
}

func appendString(dst []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		return dst, fmt.Errorf("%w: string of %d bytes", ErrTooLarge, len(s))
	}
	dst = appendU16(dst, uint16(len(s)))
	return append(dst, s...), nil
}

func appendCount(dst []byte, n int) ([]byte, error) {
	if n > math.MaxUint16 {
		return dst, fmt.Errorf("%w: %d elements", ErrTooLarge, n)
	}
	return appendU16(dst, uint16(n)), nil
}

func appendStrings(dst []byte, ss []string) ([]byte, error) {
	var err error
	if dst, err = appendCount(dst, len(ss)); err != nil {
		return dst, err
	}
	for _, s := range ss {
		if dst, err = appendString(dst, s); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

func appendStringMap(dst []byte, m map[string]string) ([]byte, error) {
	var err error
	if dst, err = appendCount(dst, len(m)); err != nil {
		return dst, err
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if dst, err = appendString(dst, k); err != nil {
			return dst, err
		}
		if dst, err = appendString(dst, m[k]); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

func appendSeqMap(dst []byte, m map[string]uint64) ([]byte, error) {
	var err error
	if dst, err = appendCount(dst, len(m)); err != nil {
		return dst, err
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if dst, err = appendString(dst, k); err != nil {
			return dst, err
		}
		dst = appendU64(dst, m[k])
	}
	return dst, nil
}

// reader decodes the primitives, latching the first error and returning
// zero values afterwards so per-field checks aren't needed.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated at offset %d", ErrBadFrame, r.off)
	}
}

func (r *reader) u8() byte {
	if r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := uint16(r.b[r.off])<<8 | uint16(r.b[r.off+1])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	b := r.b[r.off : r.off+4]
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	r.off += 4
	return v
}

func (r *reader) u32s() []uint32 {
	n := r.count()
	if n == 0 {
		return nil
	}
	vs := make([]uint32, n)
	for i := range vs {
		vs[i] = r.u32()
	}
	return vs
}

func (r *reader) u64() uint64 {
	if r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	b := r.b[r.off : r.off+8]
	v := uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
	r.off += 8
	return v
}

func (r *reader) i64() int64 { return int64(r.u64()) }

func (r *reader) bool() bool { return r.u8() != 0 }

func (r *reader) time() time.Time {
	ns := r.i64()
	if ns == zeroTimeNanos || r.err != nil {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

func (r *reader) str() string {
	n := int(r.u16())
	if r.off+n > len(r.b) {
		r.fail()
		return ""
	}
	// string() copies, so decoded messages never alias the frame buffer.
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) count() int {
	n := int(r.u16())
	// A count can't exceed the bytes remaining: each element is ≥1 byte.
	// Checking here stops a corrupt count from driving a huge make().
	if r.off+n > len(r.b) {
		r.fail()
		return 0
	}
	return n
}

func (r *reader) strs() []string {
	n := r.count()
	if n == 0 {
		return nil
	}
	ss := make([]string, n)
	for i := range ss {
		ss[i] = r.str()
	}
	return ss
}

func (r *reader) strMap() map[string]string {
	n := r.count()
	if n == 0 {
		return nil
	}
	m := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := r.str()
		m[k] = r.str()
	}
	return m
}

func (r *reader) seqMap() map[string]uint64 {
	n := r.count()
	if n == 0 {
		return nil
	}
	m := make(map[string]uint64, n)
	for i := 0; i < n; i++ {
		k := r.str()
		m[k] = r.u64()
	}
	return m
}

package wire

import (
	"bytes"
	"encoding/hex"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"athena/internal/athena"
	"athena/internal/trust"
)

// tAt builds a codec-representable instant: the codec ships UnixNano, so
// fidelity-checked fixtures must carry no monotonic clock reading and no
// timezone beyond UTC.
func tAt(ns int64) time.Time { return time.Unix(0, ns).UTC() }

func label(name, annotator string, ns int64) trust.Label {
	return trust.Label{
		Name:      name,
		Value:     true,
		Annotator: annotator,
		Evidence:  []string{"/city/cam1#v12", "/city/cam2#v9"},
		Computed:  tAt(ns),
		Validity:  30 * time.Second,
		Signature: strings.Repeat("ab", 32),
	}
}

func advert(src string, seq uint64) athena.Advertisement {
	return athena.Advertisement{
		Source:    src,
		Name:      "/city/market/" + src,
		Size:      250_000,
		Validity:  time.Minute,
		Labels:    []string{"viable:h:1-2", "viable:v:3-1"},
		ProbTrue:  0.8,
		Seq:       seq,
		Withdrawn: false,
	}
}

func updates(n int) []athena.MemberUpdate {
	if n == 0 {
		return nil
	}
	us := make([]athena.MemberUpdate, n)
	for i := range us {
		us[i] = athena.MemberUpdate{Adv: advert("node-07", uint64(i+1)), Born: tAt(int64(1e9 * (i + 1)))}
	}
	return us
}

// sizedMessages returns one realistic instance per wire message type,
// with ids and payload shapes like those the experiments generate. Every
// message must satisfy WireSize() >= raw encoding so the padded frame
// length equals the modeled size.
func sizedMessages() []interface {
	WireSize() int64
} {
	return []interface {
		WireSize() int64
	}{
		&athena.QueryAnnounce{QueryID: "node-042/q17", Origin: "node-042", Expr: "viable:h:1-2 & viable:v:3-1 | viable:h:2-2", Deadline: tAt(9e9), TTL: 4, Hops: 1},
		&athena.ObjectRequest{QueryID: "node-042/q17", Origin: "node-042", Object: "/city/market/cam3", SourceNode: "node-017", Labels: []string{"viable:h:1-2", "viable:v:3-1"}, Prefetch: false},
		&athena.ObjectData{Object: "/city/market/cam3", Version: 12, Size: 250_000, Created: tAt(5e9), Validity: time.Minute, Labels: []string{"viable:h:1-2", "viable:v:3-1"}, SourceNode: "node-017", Origin: "node-042", QueryID: "node-042/q17"},
		&athena.LabelShare{Records: []trust.Label{label("viable:h:1-2", "node-017", 5e9), label("viable:v:3-1", "node-017", 6e9)}, Dest: "node-042", QueryID: "node-042/q17"},
		&athena.Heartbeat{Node: "node-042", Beat: 991, AdvSeq: 7, Digest: 0xdeadbeefcafe},
		&athena.AdvertGossip{To: "node-017", Adverts: []athena.Advertisement{advert("node-03", 4), advert("node-11", 9)}},
		&athena.PeerJoin{Node: "node-042", Addr: "192.168.10.42:9042", Adverts: []athena.Advertisement{advert("node-042", 1)}},
		&athena.PeerJoinAck{Node: "node-017", Addr: "192.168.10.17:9017", Peers: map[string]string{"node-03": "192.168.10.3:9003", "node-11": "192.168.10.11:9011"}, Adverts: []athena.Advertisement{advert("node-03", 4), advert("node-17", 2)}},
		&athena.PeerLeave{Node: "node-042", Seq: 8},
		&athena.SyncRequest{From: "node-042", To: "node-017", Adverts: []athena.Advertisement{advert("node-042", 7)}, Seqs: map[string]uint64{"node-03": 9, "node-11": 19, "node-17": 5}, Labels: []trust.Label{label("viable:h:1-2", "node-017", 5e9)}},
		&athena.SyncResponse{From: "node-017", To: "node-042", Adverts: []athena.Advertisement{advert("node-17", 2)}, Seqs: map[string]uint64{"node-03": 9, "node-42": 15}, Labels: []trust.Label{label("viable:v:3-1", "node-042", 6e9)}},
		&athena.Ping{From: "node-042", To: "node-017", Seq: 31, AdvSeq: 7, Digest: 0xfeed, OnBehalf: "node-003", OnBehalfSeq: 12, Updates: updates(2)},
		&athena.Ack{From: "node-017", To: "node-042", Seq: 31, AdvSeq: 2, Digest: 0xbeef, Updates: updates(3)},
		&athena.PingReq{From: "node-042", To: "node-011", Target: "node-017", Seq: 31, Updates: updates(1)},
		&athena.ShardLookup{From: "node-042", To: "node-017", Label: "viable:h:1-2", Shard: 23, Nonce: 7771},
		&athena.ShardLookupReply{From: "node-017", To: "node-042", Label: "viable:h:1-2", Shard: 23, Nonce: 7771, Adverts: []athena.Advertisement{advert("node-03", 4), advert("node-11", 9)}},
		&athena.ShardSyncRequest{From: "node-042", To: "node-017", Shards: []uint32{3, 23, 41}, Seqs: map[string]uint64{"node-03": 9, "node-11": 19, "node-17": 5}},
		&athena.ShardSyncResponse{From: "node-017", To: "node-042", Shards: []uint32{3, 23, 41}, Adverts: []athena.Advertisement{advert("node-03", 4)}, Seqs: map[string]uint64{"node-03": 9, "node-42": 15}},
		&athena.RequestBatch{Requests: []athena.ObjectRequest{
			{QueryID: "node-042/q17", Origin: "node-042", Object: "/city/market/cam3", SourceNode: "node-017", Labels: []string{"viable:h:1-2", "viable:v:3-1"}},
			{QueryID: "node-042/q18", Origin: "node-042", Object: "/city/market/cam4", SourceNode: "node-017", Labels: []string{"viable:h:2-2"}},
			{QueryID: "node-011/q03", Origin: "node-011", Object: "/city/market/cam5", SourceNode: "node-017", Labels: []string{"viable:v:3-1"}, Prefetch: true},
		}},
		&athena.DataBatch{Items: []athena.ObjectData{
			{Object: "/city/market/cam3", Version: 12, Size: 250_000, Created: tAt(5e9), Validity: time.Minute, Labels: []string{"viable:h:1-2", "viable:v:3-1"}, SourceNode: "node-017", Origin: "node-042", QueryID: "node-042/q17"},
			{Object: "/city/market/cam4", Version: 3, Size: 180_000, Created: tAt(6e9), Validity: time.Minute, Labels: []string{"viable:h:2-2"}, SourceNode: "node-017", Origin: "node-042", QueryID: "node-042/q18", Background: true},
		}},
	}
}

// TestWireSizeIsFrameLength is the acceptance-criteria pin: for every
// message type, the modeled WireSize() equals the encoded frame length
// the codec actually ships.
func TestWireSizeIsFrameLength(t *testing.T) {
	var c Codec
	for _, m := range sizedMessages() {
		got, err := c.EncodedFrameLen("node-042", m.WireSize(), m)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		if got != m.WireSize() {
			t.Errorf("%T: encoded frame = %d bytes, WireSize() = %d", m, got, m.WireSize())
		}
	}
}

// TestRoundTripAllTypes re-decodes every realistic fixture and demands
// exact structural fidelity.
func TestRoundTripAllTypes(t *testing.T) {
	var c Codec
	for _, m := range sizedMessages() {
		frame, err := c.Append(nil, "node-042", m.WireSize(), m)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		from, got, err := c.Decode(frame[4:])
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if from != "node-042" {
			t.Errorf("%T: from = %q", m, from)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%T: round trip mismatch:\n got %#v\nwant %#v", m, got, m)
		}
	}
}

// TestGoldenFrameBytes pins the exact frame layout. If this test fails,
// the wire format changed: bump Version and update the golden rather
// than silently shipping frames old receivers cannot parse.
func TestGoldenFrameBytes(t *testing.T) {
	hb := &athena.Heartbeat{Node: "n1", Beat: 1, AdvSeq: 2, Digest: 3}
	frame, err := (Codec{}).Append(nil, "a", hb.WireSize(), hb)
	if err != nil {
		t.Fatal(err)
	}
	golden := "0000003c" + // length: 60 bytes follow
		"01" + // version 1
		"05" + // type: Heartbeat
		"000161" + // from: "a"
		"00026e31" + // Node: "n1"
		"0000000000000001" + // Beat
		"0000000000000002" + // AdvSeq
		"0000000000000003" + // Digest
		strings.Repeat("00", 27) // padding up to heartbeatBytes (64)
	want, err := hex.DecodeString(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, want) {
		t.Errorf("frame bytes changed:\n got %x\nwant %x", frame, want)
	}
}

// TestGoldenShardLookupBytes pins the shard-routed lookup's frame layout
// the same way the heartbeat golden pins the original message set.
func TestGoldenShardLookupBytes(t *testing.T) {
	m := &athena.ShardLookup{From: "n1", To: "n2", Label: "seg", Shard: 7, Nonce: 9}
	frame, err := (Codec{}).Append(nil, "a", m.WireSize(), m)
	if err != nil {
		t.Fatal(err)
	}
	golden := "0000007c" + // length: 124 bytes follow
		"01" + // version 1
		"0f" + // type: ShardLookup (15)
		"000161" + // from: "a"
		"00026e31" + // From: "n1"
		"00026e32" + // To: "n2"
		"0003736567" + // Label: "seg"
		"00000007" + // Shard (u32)
		"0000000000000009" + // Nonce
		strings.Repeat("00", 94) // padding up to shardLookupBytes (128)
	want, err := hex.DecodeString(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, want) {
		t.Errorf("frame bytes changed:\n got %x\nwant %x", frame, want)
	}
}

// TestGoldenRequestBatchBytes pins the coalesced frame layout the same
// way the heartbeat golden pins the original message set.
func TestGoldenRequestBatchBytes(t *testing.T) {
	m := &athena.RequestBatch{Requests: []athena.ObjectRequest{
		{QueryID: "q", Origin: "o", Object: "/x", SourceNode: "s"},
	}}
	frame, err := (Codec{}).Append(nil, "a", m.WireSize(), m)
	if err != nil {
		t.Fatal(err)
	}
	golden := "000000ac" + // length: 172 bytes follow
		"01" + // version 1
		"13" + // type: RequestBatch (19)
		"000161" + // from: "a"
		"0001" + // member count
		"000171" + // QueryID: "q"
		"00016f" + // Origin: "o"
		"00022f78" + // Object: "/x"
		"000173" + // SourceNode: "s"
		"0000" + // Labels: empty
		"00" + // Prefetch: false
		strings.Repeat("00", 149) // padding up to batchBaseBytes + batchedRequestBytes (176)
	want, err := hex.DecodeString(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, want) {
		t.Errorf("frame bytes changed:\n got %x\nwant %x", frame, want)
	}
}

func TestDecodeRejectsBadFrames(t *testing.T) {
	hb := &athena.Heartbeat{Node: "n1", Beat: 1}
	frame, err := (Codec{}).Append(nil, "a", hb.WireSize(), hb)
	if err != nil {
		t.Fatal(err)
	}
	body := frame[4:]

	t.Run("wrong version", func(t *testing.T) {
		b := append([]byte(nil), body...)
		b[0] = 99
		if _, _, err := (Codec{}).Decode(b); err == nil {
			t.Error("accepted wrong version")
		}
	})
	t.Run("unknown type", func(t *testing.T) {
		b := append([]byte(nil), body...)
		b[1] = 200
		if _, _, err := (Codec{}).Decode(b); err == nil {
			t.Error("accepted unknown type id")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, _, err := (Codec{}).Decode(body[:8]); err == nil {
			t.Error("accepted truncated frame")
		}
	})
	t.Run("garbage padding", func(t *testing.T) {
		b := append([]byte(nil), body...)
		b[len(b)-1] = 0xff
		if _, _, err := (Codec{}).Decode(b); err == nil {
			t.Error("accepted non-zero padding")
		}
	})
}

func TestOversizeEncodingShipsUnpadded(t *testing.T) {
	// A message whose raw encoding exceeds its modeled size must ship
	// as-is; the receiver reports actual bytes, never the stale model.
	m := &athena.QueryAnnounce{QueryID: "q", Origin: "o", Expr: strings.Repeat("x", 300)}
	frame, err := (Codec{}).Append(nil, "a", 10 /* bogus model */, m)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(frame)) <= 300 {
		t.Fatalf("frame = %d bytes, expected the raw encoding to win over the 10-byte model", len(frame))
	}
	_, got, err := (Codec{}).Decode(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Error("oversize round trip mismatch")
	}
}

func TestZeroTimeRoundTrips(t *testing.T) {
	m := &athena.ObjectData{Object: "/x", Created: time.Time{}}
	frame, err := (Codec{}).Append(nil, "a", m.WireSize(), m)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := (Codec{}).Decode(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	if !got.(*athena.ObjectData).Created.IsZero() {
		t.Error("zero time did not round trip")
	}
}

// roundTrip encodes msg, decodes it back, and fails on any loss of
// fidelity. Shared by all the per-type fuzz targets.
func roundTrip(t *testing.T, msg interface{ WireSize() int64 }) {
	t.Helper()
	var c Codec
	frame, err := c.Append(nil, "fuzz-node", msg.WireSize(), msg)
	if err != nil {
		// Oversized strings/slices are legal encode rejections, not bugs.
		return
	}
	from, got, err := c.Decode(frame[4:])
	if err != nil {
		t.Fatalf("decode of freshly encoded %T: %v", msg, err)
	}
	if from != "fuzz-node" {
		t.Fatalf("from = %q", from)
	}
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, msg)
	}
}

// fuzzTime maps an arbitrary int64 to a codec-representable instant,
// avoiding the zero-time sentinel.
func fuzzTime(ns int64) time.Time {
	if ns == math.MinInt64 {
		ns = 0
	}
	return tAt(ns)
}

// fuzzStrings derives a bounded label slice from fuzz inputs (nil when
// n == 0, matching the codec's nil-for-empty decoding).
func fuzzStrings(s string, n uint8) []string {
	k := int(n % 4)
	if k == 0 {
		return nil
	}
	out := make([]string, k)
	for i := range out {
		out[i] = s
	}
	return out
}

func fuzzAdverts(src, name, lbl string, count, lbls uint8, size int64, seq uint64, withdrawn bool) []athena.Advertisement {
	k := int(count % 3)
	if k == 0 {
		return nil
	}
	out := make([]athena.Advertisement, k)
	for i := range out {
		out[i] = athena.Advertisement{
			Source: src, Name: name, Size: size, Validity: time.Duration(seq),
			Labels: fuzzStrings(lbl, lbls), ProbTrue: 0.5, Seq: seq, Withdrawn: withdrawn,
		}
	}
	return out
}

func fuzzUpdates(src, name string, count uint8, seq uint64, dead bool, born int64) []athena.MemberUpdate {
	k := int(count % 3)
	if k == 0 {
		return nil
	}
	out := make([]athena.MemberUpdate, k)
	for i := range out {
		out[i] = athena.MemberUpdate{
			Adv:  athena.Advertisement{Source: src, Name: name, Seq: seq},
			Dead: dead,
			Born: fuzzTime(born),
		}
	}
	return out
}

func fuzzSeqs(k1, k2 string, n uint8) map[string]uint64 {
	if n%2 == 0 {
		return nil
	}
	return map[string]uint64{k1: 1, k2: 9}
}

func fuzzLabels(name, annot, ev, sig string, n uint8, ns int64, validity int64, val bool) []trust.Label {
	k := int(n % 3)
	if k == 0 {
		return nil
	}
	out := make([]trust.Label, k)
	for i := range out {
		out[i] = trust.Label{
			Name: name, Value: val, Annotator: annot,
			Evidence: fuzzStrings(ev, n), Computed: fuzzTime(ns),
			Validity: time.Duration(validity), Signature: sig,
		}
	}
	return out
}

func FuzzQueryAnnounce(f *testing.F) {
	f.Add("q1", "origin", "a & b", int64(5e9), 4, 1)
	f.Add("", "", "", int64(math.MinInt64), -1, 0)
	f.Fuzz(func(t *testing.T, id, origin, expr string, deadline int64, ttl, hops int) {
		roundTrip(t, &athena.QueryAnnounce{QueryID: id, Origin: origin, Expr: expr, Deadline: fuzzTime(deadline), TTL: ttl, Hops: hops})
	})
}

func FuzzObjectRequest(f *testing.F) {
	f.Add("q1", "origin", "/city/cam1", "src", "lbl", uint8(2), true)
	f.Fuzz(func(t *testing.T, id, origin, obj, src, lbl string, n uint8, prefetch bool) {
		roundTrip(t, &athena.ObjectRequest{QueryID: id, Origin: origin, Object: obj, SourceNode: src, Labels: fuzzStrings(lbl, n), Prefetch: prefetch})
	})
}

func FuzzObjectData(f *testing.F) {
	f.Add("/city/cam1", uint64(3), int64(1000), int64(5e9), int64(1e9), "lbl", uint8(1), "src", "origin", "q1", false)
	f.Fuzz(func(t *testing.T, obj string, version uint64, size, created, validity int64, lbl string, n uint8, src, origin, id string, bg bool) {
		roundTrip(t, &athena.ObjectData{Object: obj, Version: version, Size: size, Created: fuzzTime(created), Validity: time.Duration(validity), Labels: fuzzStrings(lbl, n), SourceNode: src, Origin: origin, QueryID: id, Background: bg})
	})
}

func FuzzLabelShare(f *testing.F) {
	f.Add("lbl", "annot", "/ev", "sig", uint8(2), int64(5e9), int64(1e9), true, "dest", "q1")
	f.Fuzz(func(t *testing.T, name, annot, ev, sig string, n uint8, ns, validity int64, val bool, dest, id string) {
		roundTrip(t, &athena.LabelShare{Records: fuzzLabels(name, annot, ev, sig, n, ns, validity, val), Dest: dest, QueryID: id})
	})
}

func FuzzHeartbeat(f *testing.F) {
	f.Add("n1", uint64(1), uint64(2), uint64(3))
	f.Fuzz(func(t *testing.T, node string, beat, advSeq, digest uint64) {
		roundTrip(t, &athena.Heartbeat{Node: node, Beat: beat, AdvSeq: advSeq, Digest: digest})
	})
}

func FuzzAdvertGossip(f *testing.F) {
	f.Add("to", "src", "/name", "lbl", uint8(2), uint8(1), int64(100), uint64(3), false)
	f.Fuzz(func(t *testing.T, to, src, name, lbl string, count, lbls uint8, size int64, seq uint64, withdrawn bool) {
		roundTrip(t, &athena.AdvertGossip{To: to, Adverts: fuzzAdverts(src, name, lbl, count, lbls, size, seq, withdrawn)})
	})
}

func FuzzPeerJoin(f *testing.F) {
	f.Add("n1", "127.0.0.1:9", "src", "/name", "lbl", uint8(1), uint8(1), int64(5), uint64(1), false)
	f.Fuzz(func(t *testing.T, node, addr, src, name, lbl string, count, lbls uint8, size int64, seq uint64, withdrawn bool) {
		roundTrip(t, &athena.PeerJoin{Node: node, Addr: addr, Adverts: fuzzAdverts(src, name, lbl, count, lbls, size, seq, withdrawn)})
	})
}

func FuzzPeerJoinAck(f *testing.F) {
	f.Add("n1", "127.0.0.1:9", "p1", "p2", uint8(1), "src", "/name", "lbl", uint8(1), uint8(1), int64(5), uint64(1), false)
	f.Fuzz(func(t *testing.T, node, addr, k1, k2 string, pn uint8, src, name, lbl string, count, lbls uint8, size int64, seq uint64, withdrawn bool) {
		var peers map[string]string
		if pn%2 == 1 && k1 != k2 {
			peers = map[string]string{k1: addr, k2: addr}
		}
		roundTrip(t, &athena.PeerJoinAck{Node: node, Addr: addr, Peers: peers, Adverts: fuzzAdverts(src, name, lbl, count, lbls, size, seq, withdrawn)})
	})
}

func FuzzPeerLeave(f *testing.F) {
	f.Add("n1", uint64(4))
	f.Fuzz(func(t *testing.T, node string, seq uint64) {
		roundTrip(t, &athena.PeerLeave{Node: node, Seq: seq})
	})
}

func FuzzSyncRequest(f *testing.F) {
	f.Add("from", "to", "src", "/name", "lbl", uint8(1), uint8(1), int64(5), uint64(1), false, "k1", "k2", uint8(1), "annot", "sig", int64(5e9))
	f.Fuzz(func(t *testing.T, from, to, src, name, lbl string, count, lbls uint8, size int64, seq uint64, withdrawn bool, k1, k2 string, n uint8, annot, sig string, ns int64) {
		if k1 == k2 {
			k2 = k1 + "x"
		}
		roundTrip(t, &athena.SyncRequest{From: from, To: to, Adverts: fuzzAdverts(src, name, lbl, count, lbls, size, seq, withdrawn), Seqs: fuzzSeqs(k1, k2, n), Labels: fuzzLabels(lbl, annot, name, sig, n, ns, size, withdrawn)})
	})
}

func FuzzSyncResponse(f *testing.F) {
	f.Add("from", "to", "src", "/name", "lbl", uint8(1), uint8(1), int64(5), uint64(1), false, "k1", "k2", uint8(1), "annot", "sig", int64(5e9))
	f.Fuzz(func(t *testing.T, from, to, src, name, lbl string, count, lbls uint8, size int64, seq uint64, withdrawn bool, k1, k2 string, n uint8, annot, sig string, ns int64) {
		if k1 == k2 {
			k2 = k1 + "x"
		}
		roundTrip(t, &athena.SyncResponse{From: from, To: to, Adverts: fuzzAdverts(src, name, lbl, count, lbls, size, seq, withdrawn), Seqs: fuzzSeqs(k1, k2, n), Labels: fuzzLabels(lbl, annot, name, sig, n, ns, size, withdrawn)})
	})
}

func FuzzPing(f *testing.F) {
	f.Add("from", "to", uint64(1), uint64(2), uint64(3), "behalf", uint64(4), "src", "/name", uint8(1), uint64(5), false, int64(5e9))
	f.Fuzz(func(t *testing.T, from, to string, seq, advSeq, digest uint64, onBehalf string, obSeq uint64, src, name string, count uint8, useq uint64, dead bool, born int64) {
		roundTrip(t, &athena.Ping{From: from, To: to, Seq: seq, AdvSeq: advSeq, Digest: digest, OnBehalf: onBehalf, OnBehalfSeq: obSeq, Updates: fuzzUpdates(src, name, count, useq, dead, born)})
	})
}

func FuzzAck(f *testing.F) {
	f.Add("from", "to", uint64(1), uint64(2), uint64(3), "src", "/name", uint8(1), uint64(5), false, int64(5e9))
	f.Fuzz(func(t *testing.T, from, to string, seq, advSeq, digest uint64, src, name string, count uint8, useq uint64, dead bool, born int64) {
		roundTrip(t, &athena.Ack{From: from, To: to, Seq: seq, AdvSeq: advSeq, Digest: digest, Updates: fuzzUpdates(src, name, count, useq, dead, born)})
	})
}

func FuzzPingReq(f *testing.F) {
	f.Add("from", "to", "target", uint64(1), "src", "/name", uint8(1), uint64(5), false, int64(5e9))
	f.Fuzz(func(t *testing.T, from, to, target string, seq uint64, src, name string, count uint8, useq uint64, dead bool, born int64) {
		roundTrip(t, &athena.PingReq{From: from, To: to, Target: target, Seq: seq, Updates: fuzzUpdates(src, name, count, useq, dead, born)})
	})
}

// fuzzShards derives a bounded shard-id slice from fuzz inputs (nil when
// the count folds to 0, matching the codec's nil-for-empty decoding).
func fuzzShards(base uint32, n uint8) []uint32 {
	k := int(n % 4)
	if k == 0 {
		return nil
	}
	out := make([]uint32, k)
	for i := range out {
		out[i] = base + uint32(i)
	}
	return out
}

func FuzzShardLookup(f *testing.F) {
	f.Add("from", "to", "lbl", uint32(3), uint64(9))
	f.Fuzz(func(t *testing.T, from, to, lbl string, shard uint32, nonce uint64) {
		roundTrip(t, &athena.ShardLookup{From: from, To: to, Label: lbl, Shard: shard, Nonce: nonce})
	})
}

func FuzzShardLookupReply(f *testing.F) {
	f.Add("from", "to", "lbl", uint32(3), uint64(9), "src", "/name", uint8(1), uint8(1), int64(5), uint64(1), false)
	f.Fuzz(func(t *testing.T, from, to, lbl string, shard uint32, nonce uint64, src, name string, count, lbls uint8, size int64, seq uint64, withdrawn bool) {
		roundTrip(t, &athena.ShardLookupReply{From: from, To: to, Label: lbl, Shard: shard, Nonce: nonce, Adverts: fuzzAdverts(src, name, lbl, count, lbls, size, seq, withdrawn)})
	})
}

func FuzzShardSyncRequest(f *testing.F) {
	f.Add("from", "to", uint32(3), uint8(2), "k1", "k2", uint8(1))
	f.Fuzz(func(t *testing.T, from, to string, base uint32, sn uint8, k1, k2 string, n uint8) {
		if k1 == k2 {
			k2 = k1 + "x"
		}
		roundTrip(t, &athena.ShardSyncRequest{From: from, To: to, Shards: fuzzShards(base, sn), Seqs: fuzzSeqs(k1, k2, n)})
	})
}

func FuzzShardSyncResponse(f *testing.F) {
	f.Add("from", "to", uint32(3), uint8(2), "src", "/name", "lbl", uint8(1), uint8(1), int64(5), uint64(1), false, "k1", "k2", uint8(1))
	f.Fuzz(func(t *testing.T, from, to string, base uint32, sn uint8, src, name, lbl string, count, lbls uint8, size int64, seq uint64, withdrawn bool, k1, k2 string, n uint8) {
		if k1 == k2 {
			k2 = k1 + "x"
		}
		roundTrip(t, &athena.ShardSyncResponse{From: from, To: to, Shards: fuzzShards(base, sn), Adverts: fuzzAdverts(src, name, lbl, count, lbls, size, seq, withdrawn), Seqs: fuzzSeqs(k1, k2, n)})
	})
}

func FuzzRequestBatch(f *testing.F) {
	f.Add("q1", "origin", "/city/cam1", "src", "lbl", uint8(2), true, uint8(2))
	f.Fuzz(func(t *testing.T, id, origin, obj, src, lbl string, n uint8, prefetch bool, count uint8) {
		k := int(count % 4)
		var reqs []athena.ObjectRequest
		for i := 0; i < k; i++ {
			reqs = append(reqs, athena.ObjectRequest{QueryID: id, Origin: origin, Object: obj, SourceNode: src, Labels: fuzzStrings(lbl, n), Prefetch: prefetch})
		}
		roundTrip(t, &athena.RequestBatch{Requests: reqs})
	})
}

func FuzzDataBatch(f *testing.F) {
	f.Add("/city/cam1", uint64(3), int64(1000), int64(5e9), int64(1e9), "lbl", uint8(1), "src", "origin", "q1", false, uint8(2))
	f.Fuzz(func(t *testing.T, obj string, version uint64, size, created, validity int64, lbl string, n uint8, src, origin, id string, bg bool, count uint8) {
		k := int(count % 4)
		var items []athena.ObjectData
		for i := 0; i < k; i++ {
			items = append(items, athena.ObjectData{Object: obj, Version: version, Size: size, Created: fuzzTime(created), Validity: time.Duration(validity), Labels: fuzzStrings(lbl, n), SourceNode: src, Origin: origin, QueryID: id, Background: bg})
		}
		roundTrip(t, &athena.DataBatch{Items: items})
	})
}

// FuzzDecode throws arbitrary bytes at the decoder: it must reject or
// parse, never panic or over-allocate.
func FuzzDecode(f *testing.F) {
	hb := &athena.Heartbeat{Node: "n1", Beat: 1}
	frame, _ := (Codec{}).Append(nil, "a", hb.WireSize(), hb)
	f.Add(frame[4:])
	f.Add([]byte{1, 5, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		_, _, _ = (Codec{}).Decode(body)
	})
}

// TestConstantsCoverRawEncoding checks the audited base constants: no
// realistic message may raw-encode past its modeled size, or netsim's
// tables underprice the wire.
func TestConstantsCoverRawEncoding(t *testing.T) {
	var c Codec
	for _, m := range sizedMessages() {
		buf, err := c.Append(nil, "node-042", 0 /* no padding */, m)
		if err != nil {
			t.Fatal(err)
		}
		if raw := int64(len(buf)); raw > m.WireSize() {
			t.Errorf("%T: raw encoding %d exceeds WireSize %d", m, raw, m.WireSize())
		}
	}
}

// Package object defines evidence (data) objects — the primary resources
// of decision-driven execution (Section II-B): sensor-generated items that
// carry the evidence needed to resolve decision labels, each with a size
// (retrieval cost), a creation instant, and a validity interval after which
// the evidence is stale.
package object

import (
	"fmt"
	"time"

	"athena/internal/names"
)

// ID uniquely identifies an object *version*: the name plus the sample
// sequence number. Two samples of the same sensor share a Name but differ
// in Version.
type ID struct {
	// Name is the object's hierarchical semantic name.
	Name names.Name
	// Version is the sample sequence number, starting at 1.
	Version uint64
}

// String renders the ID.
func (id ID) String() string {
	return fmt.Sprintf("%s#%d", id.Name, id.Version)
}

// Object is one sampled evidence item.
type Object struct {
	// ID identifies this sample.
	ID ID
	// Size is the object's size in bytes — its transmission cost.
	Size int64
	// Created is when the sensor sampled this object.
	Created time.Time
	// Validity is how long after Created the object remains fresh.
	Validity time.Duration
	// Labels are the decision labels this object can provide evidence
	// for (a camera image may cover several road segments at once,
	// Section III-B).
	Labels []string
	// Source identifies the node that originated the object.
	Source string
	// Payload carries synthetic content. For simulation we keep it empty
	// and account for Size analytically; the TCP transport fills it.
	Payload []byte
}

// Expiry is the instant the object's evidence becomes stale.
func (o *Object) Expiry() time.Time { return o.Created.Add(o.Validity) }

// FreshAt reports whether the object is still within its validity interval
// at instant t.
func (o *Object) FreshAt(t time.Time) bool { return !t.After(o.Expiry()) }

// RemainingValidity is how much freshness is left at t (zero if stale).
func (o *Object) RemainingValidity(t time.Time) time.Duration {
	d := o.Expiry().Sub(t)
	if d < 0 {
		return 0
	}
	return d
}

// CoversLabel reports whether the object can supply evidence for label.
func (o *Object) CoversLabel(label string) bool {
	for _, l := range o.Labels {
		if l == label {
			return true
		}
	}
	return false
}

// Clone returns a deep copy (payload included) so caches can hand out
// objects without aliasing internal state.
func (o *Object) Clone() *Object {
	dup := *o
	dup.Labels = append([]string(nil), o.Labels...)
	dup.Payload = append([]byte(nil), o.Payload...)
	return &dup
}

// Descriptor is the advertised metadata of a *source's* object stream —
// what a sensor publishes about itself (Section II-B: sources advertise
// data type and which labels their objects help resolve). It also carries
// the planning metadata of Section III-A.
type Descriptor struct {
	// Name is the semantic name under which samples are published.
	Name names.Name
	// Size is the (typical) sample size in bytes.
	Size int64
	// Validity is the validity interval of samples, which equals the
	// sensor's sampling period in the model of Section IV-A.
	Validity time.Duration
	// Labels are the labels the stream's samples can evidence.
	Labels []string
	// Source is the originating node.
	Source string
	// ProbTrue is the prior probability that the evidence supports its
	// labels (used for short-circuit planning).
	ProbTrue float64
}

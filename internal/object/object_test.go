package object

import (
	"testing"
	"time"

	"athena/internal/names"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func sample() *Object {
	return &Object{
		ID:       ID{Name: names.MustParse("/grid/seg/3/4/cam"), Version: 2},
		Size:     500_000,
		Created:  t0,
		Validity: 10 * time.Second,
		Labels:   []string{"viable:3-4", "viable:3-5"},
		Source:   "node7",
		Payload:  []byte{1, 2, 3},
	}
}

func TestFreshness(t *testing.T) {
	o := sample()
	if !o.FreshAt(t0) {
		t.Error("not fresh at creation")
	}
	if !o.FreshAt(t0.Add(10 * time.Second)) {
		t.Error("not fresh exactly at expiry")
	}
	if o.FreshAt(t0.Add(10*time.Second + time.Nanosecond)) {
		t.Error("fresh after expiry")
	}
	if got := o.RemainingValidity(t0.Add(4 * time.Second)); got != 6*time.Second {
		t.Errorf("RemainingValidity = %v, want 6s", got)
	}
	if got := o.RemainingValidity(t0.Add(time.Minute)); got != 0 {
		t.Errorf("RemainingValidity past expiry = %v, want 0", got)
	}
}

func TestCoversLabel(t *testing.T) {
	o := sample()
	if !o.CoversLabel("viable:3-4") {
		t.Error("CoversLabel missed listed label")
	}
	if o.CoversLabel("viable:9-9") {
		t.Error("CoversLabel matched unlisted label")
	}
}

func TestCloneIsDeep(t *testing.T) {
	o := sample()
	dup := o.Clone()
	dup.Labels[0] = "mutated"
	dup.Payload[0] = 99
	if o.Labels[0] == "mutated" || o.Payload[0] == 99 {
		t.Error("Clone shares backing arrays")
	}
	if dup.ID != o.ID || dup.Size != o.Size {
		t.Error("Clone lost fields")
	}
}

func TestIDString(t *testing.T) {
	o := sample()
	if got := o.ID.String(); got != "/grid/seg/3/4/cam#2" {
		t.Errorf("ID.String = %q", got)
	}
}

package experiment

import (
	"strings"
	"testing"
)

// A9's acceptance claim: at n ≥ 256 and 10^5 sources, per-node memory and
// per-exchange sync bytes are far below the full replica, and along the
// grow-the-fleet-with-the-deployment diagonal both rise sublinearly in
// total sources while the baseline rises linearly.
func TestAblationShardScaleSublinear(t *testing.T) {
	rows, err := AblationShardScale([]int{1_000, 100_000}, []int{64, 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byLabel := make(map[string]ShardScaleRow)
	for _, r := range rows {
		byLabel[r.Label] = r
	}

	big := byLabel["S=100000 n=512"]
	if big.MemRatio > 0.05 {
		t.Errorf("memory per node = %.1f%% of full replica, want < 5%%", 100*big.MemRatio)
	}
	if big.SyncRatio > 0.05 {
		t.Errorf("sync bytes = %.1f%% of full exchange, want < 5%%", 100*big.SyncRatio)
	}

	// Diagonal scaling: 100x the sources on 8x the fleet must cost far
	// less than 100x per node (the full replica pays the full 100x).
	small := byLabel["S=1000 n=64"]
	growth := float64(big.Sources) / float64(small.Sources)
	if memGrowth := big.EntriesPerNode / small.EntriesPerNode; memGrowth > growth/2 {
		t.Errorf("entries/node grew %.1fx over a %.0fx source sweep; want sublinear", memGrowth, growth)
	}
	if syncGrowth := big.SyncBytes / small.SyncBytes; syncGrowth > growth/2 {
		t.Errorf("sync bytes grew %.1fx over a %.0fx source sweep; want sublinear", syncGrowth, growth)
	}
	if fullGrowth := big.FullSyncBytes / small.FullSyncBytes; fullGrowth < growth/2 {
		t.Errorf("baseline grew only %.1fx; the comparison lost its control", fullGrowth)
	}

	// More nodes at the same population shrink the per-node share.
	same := byLabel["S=100000 n=64"]
	if big.EntriesPerNode >= same.EntriesPerNode {
		t.Errorf("entries/node did not shrink with fleet size: n=64 %.0f, n=512 %.0f",
			same.EntriesPerNode, big.EntriesPerNode)
	}

	out := RenderShardScale(rows)
	if !strings.Contains(out, "Ablation A9") || !strings.Contains(out, "S=100000 n=512") {
		t.Errorf("render:\n%s", out)
	}
}

// The rig is a pure function of its parameters.
func TestShardScaleDeterministic(t *testing.T) {
	a, err := RunShardScale(64, 1_000, 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunShardScale(64, 1_000, 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("runs diverged:\n%+v\n%+v", a, b)
	}
}

package experiment

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"athena/internal/athena"
	"athena/internal/infomax"
	"athena/internal/names"
	"athena/internal/workload"
)

// AblationRow is one aggregated row of an ablation table.
type AblationRow struct {
	// Label names the configuration (e.g. "trust=0.50").
	Label string
	// Ratio is the mean resolution ratio.
	Ratio float64
	// MeanMB is the mean total traffic in megabytes.
	MeanMB float64
	// MeanLatency is the mean decision latency.
	MeanLatency time.Duration
	// HitRatio is the mean fleet cache hit ratio from the per-run metrics
	// snapshots (approximate hits count as hits).
	HitRatio float64
	// Retries is the mean recovery-layer event count per run (request
	// timeouts plus retransmissions).
	Retries float64
	// Extra carries experiment-specific values (e.g. label answers).
	Extra float64
}

// RenderAblation prints rows as an aligned table.
func RenderAblation(title, extraHeader string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-20s%10s%14s%12s%11s%10s", "config", "ratio", "bandwidth(MB)", "latency(s)", "cache_hit", "retries")
	if extraHeader != "" {
		fmt.Fprintf(&b, "%14s", extraHeader)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s%10.3f%14.1f%12.2f%11.3f%10.1f", r.Label, r.Ratio, r.MeanMB, r.MeanLatency.Seconds(), r.HitRatio, r.Retries)
		if extraHeader != "" {
			fmt.Fprintf(&b, "%14.1f", r.Extra)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// aggregate runs Reps clusters built by mk (which receives the repetition
// seed) on a bounded pool and averages outcomes.
func aggregate(cfg Config, mk func(seed int64) (*athena.Cluster, error)) (AblationRow, error) {
	return aggregateExtra(cfg, mk, func(out athena.Outcome) float64 {
		return float64(out.Node.LabelAnswers)
	})
}

// aggregateExtra is aggregate with a custom Extra-column reducer.
func aggregateExtra(cfg Config, mk func(seed int64) (*athena.Cluster, error), extra func(athena.Outcome) float64) (AblationRow, error) {
	if cfg.Reps <= 0 {
		cfg.Reps = 10
	}
	type res struct {
		out athena.Outcome
		err error
	}
	results := make([]res, cfg.Reps)
	runPool(cfg.Reps, cfg.Parallelism, func(r int) {
		cluster, err := mk(cfg.BaseSeed + int64(r))
		if err != nil {
			results[r] = res{err: err}
			return
		}
		out, err := cluster.Run()
		results[r] = res{out: out, err: err}
	})

	outs := make([]athena.Outcome, len(results))
	for i, r := range results {
		if r.err != nil {
			return AblationRow{}, r.err
		}
		outs[i] = r.out
	}
	return foldOutcomes(outs, extra), nil
}

// foldOutcomes averages repetition outcomes into one row. Latency is
// weighted by each repetition's resolved-query count so repetitions that
// resolved nothing (and so report zero latency) do not dilute the mean.
func foldOutcomes(outs []athena.Outcome, extra func(athena.Outcome) float64) AblationRow {
	var row AblationRow
	var lat time.Duration
	resolved := 0
	for _, out := range outs {
		row.Ratio += out.ResolutionRatio()
		row.MeanMB += float64(out.TotalBytes) / (1 << 20)
		row.HitRatio += out.CacheHitRatio()
		row.Retries += float64(out.RetryCount())
		if extra != nil {
			row.Extra += extra(out)
		}
		lat += out.MeanLatency * time.Duration(out.QueriesResolved)
		resolved += out.QueriesResolved
	}
	n := float64(len(outs))
	row.Ratio /= n
	row.MeanMB /= n
	row.HitRatio /= n
	row.Retries /= n
	row.Extra /= n
	if resolved > 0 {
		row.MeanLatency = lat / time.Duration(resolved)
	}
	return row
}

// AblationLabelSharing (A1) sweeps the trusted-annotator fraction under
// lvfl and compares against plain lvf: label sharing's savings shrink as
// fewer annotators are trusted (Section VI-D's Alice/Bob example).
func AblationLabelSharing(cfg Config) ([]AblationRow, error) {
	var rows []AblationRow
	base := cfg
	mk := func(scheme athena.Scheme, trust float64) func(int64) (*athena.Cluster, error) {
		return func(seed int64) (*athena.Cluster, error) {
			wcfg := base.Workload
			wcfg.Seed = seed
			s, err := workload.Generate(wcfg)
			if err != nil {
				return nil, err
			}
			ccfg := base.Cluster
			ccfg.Scheme = scheme
			ccfg.TrustFraction = trust
			return athena.NewCluster(s, ccfg)
		}
	}
	row, err := aggregate(cfg, mk(athena.SchemeLVF, 1))
	if err != nil {
		return nil, err
	}
	row.Label = "lvf (no share)"
	rows = append(rows, row)
	for _, trust := range []float64{0.25, 0.5, 0.75, 1.0} {
		row, err := aggregate(cfg, mk(athena.SchemeLVFL, trust))
		if err != nil {
			return nil, err
		}
		row.Label = fmt.Sprintf("lvfl trust=%.2f", trust)
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationPrefetch (A2) compares lvf with and without background
// prefetching of announced query expressions.
func AblationPrefetch(cfg Config) ([]AblationRow, error) {
	var rows []AblationRow
	for _, enable := range []bool{false, true} {
		enable := enable
		row, err := aggregate(cfg, func(seed int64) (*athena.Cluster, error) {
			wcfg := cfg.Workload
			wcfg.Seed = seed
			s, err := workload.Generate(wcfg)
			if err != nil {
				return nil, err
			}
			ccfg := cfg.Cluster
			ccfg.Scheme = athena.SchemeLVF
			ccfg.EnablePrefetch = enable
			return athena.NewCluster(s, ccfg)
		})
		if err != nil {
			return nil, err
		}
		if enable {
			row.Label = "prefetch on"
		} else {
			row.Label = "prefetch off"
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationCache (A3) sweeps per-node content-store capacity under lvf.
func AblationCache(cfg Config) ([]AblationRow, error) {
	var rows []AblationRow
	// A capacity of 1 byte fits nothing: effectively no caching. (The
	// cluster treats 0 as "use the default".)
	for _, capBytes := range []int64{-1, 16 << 20, 4 << 20, 1 << 20, 1} {
		capBytes := capBytes
		row, err := aggregate(cfg, func(seed int64) (*athena.Cluster, error) {
			wcfg := cfg.Workload
			wcfg.Seed = seed
			s, err := workload.Generate(wcfg)
			if err != nil {
				return nil, err
			}
			ccfg := cfg.Cluster
			ccfg.Scheme = athena.SchemeLVF
			ccfg.CacheBytes = capBytes
			return athena.NewCluster(s, ccfg)
		})
		if err != nil {
			return nil, err
		}
		switch {
		case capBytes < 0:
			row.Label = "cache unbounded"
		case capBytes == 1:
			row.Label = "cache off"
		default:
			row.Label = fmt.Sprintf("cache %dMB", capBytes>>20)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationNoise (A5) sweeps the per-annotation sensor error rate under
// lvf with corroboration to 95% confidence (Section IV-B): noisier
// sensors force more corroborating evidence, raising cost and latency.
func AblationNoise(cfg Config) ([]AblationRow, error) {
	var rows []AblationRow
	for _, noise := range []float64{0, 0.1, 0.2, 0.3} {
		noise := noise
		row, err := aggregate(cfg, func(seed int64) (*athena.Cluster, error) {
			wcfg := cfg.Workload
			wcfg.Seed = seed
			s, err := workload.Generate(wcfg)
			if err != nil {
				return nil, err
			}
			ccfg := cfg.Cluster
			ccfg.Scheme = athena.SchemeLVF
			ccfg.SensorNoise = noise
			ccfg.ConfidenceTarget = 0.95
			return athena.NewCluster(s, ccfg)
		})
		if err != nil {
			return nil, err
		}
		row.Label = fmt.Sprintf("noise=%.2f", noise)
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationFailure (A6) injects per-message link loss (seeded, so every
// row is deterministic) and compares the recovery layer on vs off under
// the decision-driven schemes. With retries the resolution ratio degrades
// gracefully as loss climbs; without them a single lost request or data
// frame strands its query until the fixed request timeout, usually past
// the deadline. Extra is the mean retransmission count.
func AblationFailure(cfg Config) ([]AblationRow, error) {
	var rows []AblationRow
	for _, scheme := range []athena.Scheme{athena.SchemeLVF, athena.SchemeLVFL} {
		for _, loss := range []float64{0, 0.1, 0.2, 0.3} {
			for _, retries := range []bool{true, false} {
				scheme, loss, retries := scheme, loss, retries
				row, err := aggregateExtra(cfg, func(seed int64) (*athena.Cluster, error) {
					wcfg := cfg.Workload
					wcfg.Seed = seed
					s, err := workload.Generate(wcfg)
					if err != nil {
						return nil, err
					}
					ccfg := cfg.Cluster
					ccfg.Scheme = scheme
					ccfg.LinkLoss = loss
					ccfg.DisableRetries = !retries
					return athena.NewCluster(s, ccfg)
				}, func(out athena.Outcome) float64 {
					return float64(out.Node.Retransmits)
				})
				if err != nil {
					return nil, err
				}
				mode := "retry"
				if !retries {
					mode = "no-retry"
				}
				row.Label = fmt.Sprintf("%s p=%.1f %s", scheme, loss, mode)
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// AblationChurn (A7) sweeps node churn (deterministic seeded outages) and
// compares the live-membership layer — heartbeat eviction plus re-sourcing
// of in-flight fetches — against the static directory, which only has the
// slow retry-failover path. Eviction detects a dead source within
// miss*interval (~6s here) while pure retry failover needs the full
// backoff ladder (tens of seconds), so membership dominates on resolution
// ratio as churn climbs. The gossip rows run the same churn through the
// SWIM membership protocol (sampled probes, suspicion, piggybacked
// deltas): churn resolution must hold while the control plane shrinks
// (ablation A8 measures the shrinkage). Extra is the mean eviction count.
func AblationChurn(cfg Config) ([]AblationRow, error) {
	var rows []AblationRow
	for _, churn := range []int{0, 2, 4, 8} {
		for _, mode := range []string{"live", "gossip", "static"} {
			churn, mode := churn, mode
			row, err := aggregateExtra(cfg, func(seed int64) (*athena.Cluster, error) {
				wcfg := cfg.Workload
				wcfg.Seed = seed
				s, err := workload.Generate(wcfg)
				if err != nil {
					return nil, err
				}
				ccfg := cfg.Cluster
				ccfg.Scheme = athena.SchemeLVF
				ccfg.ChurnEvents = churn
				ccfg.ChurnOutage = 60 * time.Second
				if mode != "static" {
					ccfg.HeartbeatInterval = 2 * time.Second
					ccfg.HeartbeatMiss = 3
				}
				if mode == "gossip" {
					ccfg.GossipFanout = 2
				}
				return athena.NewCluster(s, ccfg)
			}, func(out athena.Outcome) float64 {
				return float64(out.Node.Evictions)
			})
			if err != nil {
				return nil, err
			}
			row.Label = fmt.Sprintf("churn=%d %s", churn, mode)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// InfomaxRow is one row of the A4 overload-triage experiment.
type InfomaxRow struct {
	// Label names the forwarding policy.
	Label string
	// Utility is the mean delivered sub-additive information utility.
	Utility float64
	// Items is the mean number of items delivered within budget.
	Items float64
}

// AblationInfomax (A4) models an overloaded bottleneck link: a backlog of
// named objects competes for a byte budget. FIFO forwarding delivers
// whatever arrived first; infomax triage (Section V-B) forwards by
// marginal utility per byte. Deterministic in the seed.
func AblationInfomax(seed int64, reps int) []InfomaxRow {
	if reps <= 0 {
		reps = 10
	}
	var fifoU, fifoN, greedyU, greedyN float64
	for r := 0; r < reps; r++ {
		rng := rand.New(rand.NewSource(seed + int64(r)))
		// A disaster scene: many cameras per site, few sites; most
		// content is redundant.
		sites := []string{"/city/bridge", "/city/market", "/city/hospital", "/city/station"}
		items := make([]infomax.Item, 60)
		for i := range items {
			site := sites[rng.Intn(len(sites))]
			cam := fmt.Sprintf("cam%d", rng.Intn(4))
			shot := fmt.Sprintf("shot%d", rng.Intn(3))
			items[i] = infomax.Item{
				Name:        names.MustParse(site + "/" + cam + "/" + shot),
				Size:        int64(100_000 + rng.Intn(900_000)),
				BaseUtility: 1 + rng.Float64()*9,
			}
		}
		const budget = 5_000_000 // bottleneck can carry 5 MB before deadline

		// FIFO: deliver in arrival order until the budget runs out.
		var fifo []infomax.Item
		var used int64
		for _, it := range items {
			if used+it.Size > budget {
				continue
			}
			used += it.Size
			fifo = append(fifo, it)
		}
		fifoU += infomax.SetUtility(fifo)
		fifoN += float64(len(fifo))

		order := infomax.Greedy(items, budget)
		sel := make([]infomax.Item, len(order))
		for i, idx := range order {
			sel[i] = items[idx]
		}
		greedyU += infomax.SetUtility(sel)
		greedyN += float64(len(sel))
	}
	n := float64(reps)
	return []InfomaxRow{
		{Label: "fifo", Utility: fifoU / n, Items: fifoN / n},
		{Label: "infomax", Utility: greedyU / n, Items: greedyN / n},
	}
}

// RenderInfomax prints the A4 table.
func RenderInfomax(rows []InfomaxRow) string {
	var b strings.Builder
	b.WriteString("Ablation A4: delivered information utility under overload\n")
	fmt.Fprintf(&b, "%-10s%12s%10s\n", "policy", "utility", "items")
	sorted := append([]InfomaxRow(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Label < sorted[j].Label })
	for _, r := range sorted {
		fmt.Fprintf(&b, "%-10s%12.2f%10.1f\n", r.Label, r.Utility, r.Items)
	}
	return b.String()
}

package experiment

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"athena/internal/athena"
)

// runPool must execute every job exactly once while never exceeding the
// worker bound.
func TestRunPoolBoundsConcurrency(t *testing.T) {
	const jobs, workers = 50, 4
	var current, peak, ran int32
	var mu sync.Mutex
	runPool(jobs, workers, func(i int) {
		c := atomic.AddInt32(&current, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&ran, 1)
		atomic.AddInt32(&current, -1)
	})
	if ran != jobs {
		t.Errorf("ran %d jobs, want %d", ran, jobs)
	}
	if peak > workers {
		t.Errorf("peak concurrency %d exceeded worker bound %d", peak, workers)
	}
	// Degenerate shapes must not hang.
	runPool(0, workers, func(int) { t.Error("fn called for n=0") })
	var count int32
	runPool(3, 100, func(int) { atomic.AddInt32(&count, 1) })
	if count != 3 {
		t.Errorf("workers>n ran %d jobs, want 3", count)
	}
}

// Mean latency must be weighted by each repetition's resolved-query
// count: a repetition that resolved nothing reports zero latency, and
// averaging that zero in would fabricate a faster mean than any query
// ever achieved.
func TestAggregatePointsWeightsLatencyByResolved(t *testing.T) {
	key := runKey{scheme: athena.SchemeLVF, dynamics: 0.4}
	results := []runResult{
		{key: key, outcome: athena.Outcome{
			QueriesIssued: 4, QueriesResolved: 4, ResolvedTrue: 4,
			MeanLatency: 10 * time.Second,
		}},
		{key: key, outcome: athena.Outcome{
			QueriesIssued: 4, QueriesResolved: 0,
			MeanLatency: 0, // nothing resolved: no latency evidence
		}},
	}
	points, err := aggregatePoints(results)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points = %d, want 1", len(points))
	}
	if got := points[0].MeanLatency; got != 10*time.Second {
		t.Errorf("MeanLatency = %v, want 10s (unresolved rep diluted the mean)", got)
	}
	if got := points[0].Ratio; got != 0.5 {
		t.Errorf("Ratio = %v, want 0.5", got)
	}
	// All-unresolved: latency stays zero rather than dividing by zero.
	none := []runResult{{key: key, outcome: athena.Outcome{QueriesIssued: 2}}}
	points, err = aggregatePoints(none)
	if err != nil || len(points) != 1 || points[0].MeanLatency != 0 {
		t.Errorf("all-unresolved aggregation = %+v, %v", points, err)
	}
}

// foldOutcomes (the ablation-side aggregation) uses the same weighting.
func TestFoldOutcomesWeightsLatency(t *testing.T) {
	row := foldOutcomes([]athena.Outcome{
		{QueriesIssued: 2, QueriesResolved: 2, ResolvedTrue: 2, MeanLatency: 8 * time.Second},
		{QueriesIssued: 2, QueriesResolved: 0},
	}, nil)
	if row.MeanLatency != 8*time.Second {
		t.Errorf("MeanLatency = %v, want 8s", row.MeanLatency)
	}
	if row.Ratio != 0.5 {
		t.Errorf("Ratio = %v, want 0.5", row.Ratio)
	}
}

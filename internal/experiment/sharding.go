package experiment

// Ablation A9: directory sharding at scale. The full simulator cannot
// hold 10^5 advertising sources across a 512-node fleet in a test budget,
// so this rig measures the two quantities the sharding refactor exists to
// bound — directory entries held per node and anti-entropy bytes per
// exchange — structurally: real rendezvous shard assignment over a real
// membership view, real name-prefix partitioning, and real wire-message
// sizes, with the advertisement population synthesized instead of
// simulated. Query-path equivalence with the full replica is pinned
// separately by the cluster tests in internal/athena.

import (
	"fmt"
	"slices"
	"strings"

	"athena/internal/athena"
	"athena/internal/names"
	"athena/internal/shard"
)

// ShardScaleRow is one (sources × fleet) cell of the A9 table, comparing
// a sharded directory against the full-replica baseline.
type ShardScaleRow struct {
	// Label names the configuration (e.g. "S=100000 n=512").
	Label string
	// Sources is the advertised-source population; Nodes the fleet size;
	// Shards and RF the partition and replication configuration.
	Sources, Nodes, Shards, RF int
	// EntriesPerNode is the mean directory payload entries a node
	// retains. The full-replica baseline is Sources (every node holds
	// every record).
	EntriesPerNode float64
	// MemRatio is EntriesPerNode / Sources: the fraction of the full
	// replica a sharded node actually stores.
	MemRatio float64
	// SyncBytes is the mean wire cost (request + response) of one
	// steady-state anti-entropy exchange under shard scoping;
	// FullSyncBytes is the same exchange with a whole-directory seq
	// vector. SyncRatio is their quotient.
	SyncBytes     float64
	FullSyncBytes float64
	SyncRatio     float64
}

// shardScaleLabels is the label-vocabulary size: IoT deployments reuse a
// bounded predicate vocabulary ("intruder", "smoke", ...) across many
// streams, so labels are drawn from a fixed pool regardless of scale.
const shardScaleLabels = 256

// RunShardScale measures per-node directory retention and scoped
// anti-entropy cost for a fleet of n nodes sharing `sources` advertised
// streams over `shards` name-prefix shards at replication factor rf.
// Names follow the deployment shape /r<region>/b<building>/s<i> — the
// depth-2 prefix key groups ~8 streams per building — and every stream
// carries one label from the fixed vocabulary plus its building prefix.
// Deterministic: rendezvous assignment and FNV partitioning have no
// random inputs.
func RunShardScale(n, sources, shards, rf int) (ShardScaleRow, error) {
	if n <= 0 || sources <= 0 || shards <= 0 || rf <= 0 {
		return ShardScaleRow{}, fmt.Errorf("shardscale: bad parameters n=%d S=%d shards=%d rf=%d", n, sources, shards, rf)
	}
	view := make([]string, n)
	for i := range view {
		view[i] = fmt.Sprintf("n%03d", i)
	}
	smap := shard.NewMap(shards, 0)

	// Each source maps to two shards: its name-prefix shard and its
	// label shard (a label must route to one shard whose owners hold
	// every covering advert). Group the population by that pair so the
	// per-node retention count is a sum over pairs, not sources.
	type pair struct{ name, label int }
	pairCount := make(map[pair]int)
	for i := 0; i < sources; i++ {
		name := names.MustParse(fmt.Sprintf("/r%d/b%d/s%d", i%16, i/8, i))
		label := fmt.Sprintf("l%03d", i%shardScaleLabels)
		pairCount[pair{smap.OfName(name), smap.OfKey(label)}]++
	}

	var totalEntries int64
	var totalSync int64
	for i, id := range view {
		owned := make(map[int]bool)
		for _, s := range smap.OwnedBy(id, view, rf) {
			owned[s] = true
		}
		for p, c := range pairCount {
			if owned[p.name] || owned[p.label] {
				totalEntries += int64(c)
			}
		}

		// One steady-state exchange with the next node in the view:
		// scope = the shards both replicate, seq vector = the sources
		// inside that scope, no delta records (replicas converged).
		peer := view[(i+1)%n]
		var shared []uint32
		sharedSet := make(map[int]bool)
		for s := range owned {
			if smap.Owns(peer, s, view, rf) {
				shared = append(shared, uint32(s))
				sharedSet[s] = true
			}
		}
		slices.Sort(shared)
		scope := 0
		for p, c := range pairCount {
			if sharedSet[p.name] || sharedSet[p.label] {
				scope += c
			}
		}
		seqs := make(map[string]uint64, scope)
		for k := 0; k < scope; k++ {
			seqs[fmt.Sprintf("s%d", k)] = 1
		}
		req := athena.ShardSyncRequest{From: id, To: peer, Shards: shared, Seqs: seqs}
		resp := athena.ShardSyncResponse{From: peer, To: id, Shards: shared, Seqs: seqs}
		totalSync += req.WireSize() + resp.WireSize()
	}

	// Full-replica baseline: the same exchange carries a seq vector over
	// the entire source population, both ways.
	fullSeqs := make(map[string]uint64, sources)
	for k := 0; k < sources; k++ {
		fullSeqs[fmt.Sprintf("s%d", k)] = 1
	}
	fullReq := athena.SyncRequest{From: "a", To: "b", Seqs: fullSeqs}
	fullResp := athena.SyncResponse{From: "b", To: "a", Seqs: fullSeqs}
	fullSync := float64(fullReq.WireSize() + fullResp.WireSize())

	row := ShardScaleRow{
		Label:          fmt.Sprintf("S=%d n=%d", sources, n),
		Sources:        sources,
		Nodes:          n,
		Shards:         shards,
		RF:             rf,
		EntriesPerNode: float64(totalEntries) / float64(n),
		SyncBytes:      float64(totalSync) / float64(n),
		FullSyncBytes:  fullSync,
	}
	row.MemRatio = row.EntriesPerNode / float64(sources)
	row.SyncRatio = row.SyncBytes / fullSync
	return row, nil
}

// AblationShardScale (A9) sweeps the source population 10^3 → 10^5
// against fleet sizes {64, 256, 512} at fixed rf=3, with the shard count
// tracking the fleet (4 shards per node keeps rendezvous assignment
// balanced without inflating per-exchange scope headers). Memory per node
// and sync bytes both collapse from the full replica's Θ(S) to Θ(S·rf/n):
// grow the fleet with the deployment — the paradigm's operating regime —
// and per-node cost rises sublinearly in total sources while the
// full-replica baseline rises linearly. A nil sizes slice runs the full
// sweep; tests pass a trimmed one.
func AblationShardScale(sources []int, fleets []int) ([]ShardScaleRow, error) {
	if len(sources) == 0 {
		sources = []int{1_000, 10_000, 100_000}
	}
	if len(fleets) == 0 {
		fleets = []int{64, 256, 512}
	}
	const rf = 3
	var rows []ShardScaleRow
	for _, s := range sources {
		for _, n := range fleets {
			row, err := RunShardScale(n, s, 4*n, rf)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderShardScale prints the A9 table.
func RenderShardScale(rows []ShardScaleRow) string {
	var b strings.Builder
	b.WriteString("Ablation A9: directory sharding — per-node memory and sync bytes vs full replica\n")
	fmt.Fprintf(&b, "%-18s%10s%12s%10s%14s%16s%10s\n",
		"config", "entries", "full", "mem", "sync B/exch", "full B/exch", "sync")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s%10.0f%12d%9.1f%%%14.0f%16.0f%9.1f%%\n",
			r.Label, r.EntriesPerNode, r.Sources, 100*r.MemRatio,
			r.SyncBytes, r.FullSyncBytes, 100*r.SyncRatio)
	}
	return b.String()
}

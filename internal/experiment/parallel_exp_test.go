package experiment

import "testing"

// TestKernelScaleWorkerInvariant pins the A10 rig's determinism claim:
// the executed-event and delivery counts are a pure function of (n, seed)
// regardless of worker count.
func TestKernelScaleWorkerInvariant(t *testing.T) {
	base, err := RunKernelScale(64, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if base.Events == 0 || base.Delivered == 0 {
		t.Fatalf("degenerate baseline: %+v", base)
	}
	for _, w := range []int{2, 8} {
		row, err := RunKernelScale(64, w, 5)
		if err != nil {
			t.Fatal(err)
		}
		if row.Events != base.Events || row.Delivered != base.Delivered {
			t.Errorf("W=%d: events/delivered = %d/%d, want %d/%d",
				w, row.Events, row.Delivered, base.Events, base.Delivered)
		}
	}
}

// TestAblationKernelScaleTrimmed exercises the sweep plumbing (labels,
// speedup normalization) on a size small enough for the test budget.
func TestAblationKernelScaleTrimmed(t *testing.T) {
	rows, err := AblationKernelScale([]int{48}, []int{1, 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].Label != "n=48 W=1" || rows[1].Label != "n=48 W=2" {
		t.Errorf("labels = %q, %q", rows[0].Label, rows[1].Label)
	}
	if rows[0].Speedup != 1 {
		t.Errorf("baseline speedup = %v, want 1", rows[0].Speedup)
	}
	if rows[0].Events != rows[1].Events {
		t.Errorf("event counts diverged across W: %d vs %d", rows[0].Events, rows[1].Events)
	}
	if out := RenderKernelScale(rows); len(out) == 0 {
		t.Error("empty render")
	}
}

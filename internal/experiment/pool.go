package experiment

import (
	"runtime"
	"sync"
)

// runPool runs fn(i) for every i in [0, n) on a bounded pool of workers
// goroutines (default NumCPU). Unlike a goroutine-per-job fan-out, at most
// workers goroutines ever exist, so a 1000-job sweep does not allocate a
// thousand stacks just to have most of them wait on a semaphore.
func runPool(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

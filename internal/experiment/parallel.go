package experiment

// Ablation A10: parallel kernel throughput. The rig is netsim-only — a
// synthetic message-passing workload rather than full Athena nodes — so
// fleet size can reach n=10240 (a full node carries per-fleet directory
// state that makes 10k-node deployments a memory experiment, not a
// kernel-throughput one). Every row's outcome is a pure function of
// (n, seed): the worker sweep re-runs the identical scenario and only
// wall-clock time may change, which is what the speedup column measures.

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"athena/internal/netsim"
	"athena/internal/simclock"
)

// KernelScaleRow is one (fleet size × worker count) cell of the A10 table.
type KernelScaleRow struct {
	// Label names the configuration (e.g. "n=2048 W=8").
	Label string
	// Nodes is the fleet size; Workers the kernel's executor count.
	Nodes, Workers int
	// Events is the number of simulation events executed; Delivered the
	// messages that arrived (both worker-count-invariant by construction).
	Events, Delivered int64
	// Wall is the host time the run took; EventsPerSec is Events/Wall.
	Wall         time.Duration
	EventsPerSec float64
	// Speedup is EventsPerSec relative to the same fleet at W=1.
	Speedup float64
}

// kernelEpoch anchors the rig's virtual clock; deterministic in the seed,
// so any fixed instant works.
var kernelEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// kernelScaleSim is the virtual time each A10 cell simulates. Event count
// scales with n (every node ticks at ~100 Hz), so a fixed window keeps
// per-row wall time bounded while still executing millions of events at
// the large sizes.
const kernelScaleSim = 2 * time.Second

// kernelTicker is one node's share of the synthetic workload: a ~100 Hz
// tick that sends a small message to a pseudo-randomly chosen neighbor,
// with the stream state owned by the node's lane.
type kernelTicker struct {
	net       *netsim.Network
	lane      *simclock.Lane
	id        string
	neighbors []string
	period    time.Duration
	rng       uint64
}

func (k *kernelTicker) tick() {
	to := k.neighbors[int(simclock.RandNext(&k.rng)%uint64(len(k.neighbors)))]
	// Sends between registered nodes cannot fail; size 200 keeps the
	// serialization delay off the tick grid.
	_ = k.net.Send(k.id, to, 200, nil)
	k.lane.After(k.period, k.tick)
}

// RunKernelScale runs the synthetic workload for fleet size n with the
// given worker count and returns the measured cell. Deterministic in
// (n, seed) — the worker count affects only wall-clock time.
func RunKernelScale(n, workers int, seed int64) (KernelScaleRow, error) {
	kern := simclock.NewKernel(kernelEpoch, simclock.KernelOpts{Workers: workers, Seed: uint64(seed)})
	net := netsim.NewParallel(kern)
	rng := rand.New(rand.NewSource(seed))
	// Odd bandwidth and prime-offset tick periods keep event times off a
	// shared grid, so same-instant ties (the one place engines may
	// reorder) stay rare and the workload exercises genuine concurrency.
	link := netsim.LinkConfig{Bandwidth: 1_250_013, Latency: time.Millisecond}
	if err := netsim.BuildRandomConnected(net, n, n/2, link, rng); err != nil {
		return KernelScaleRow{}, err
	}
	var delivered int64 // summed post-run from lane-owned counters
	counts := make([]int64, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%d", i)
		idx := i
		if err := net.SetHandler(id, func(from string, size int64, payload any) {
			counts[idx]++
		}); err != nil {
			return KernelScaleRow{}, err
		}
		t := &kernelTicker{
			net:       net,
			lane:      net.LaneOf(id),
			id:        id,
			neighbors: net.Neighbors(id),
			period:    10*time.Millisecond + time.Duration(i)*99991*time.Nanosecond/time.Duration(n),
			rng:       simclock.Mix64(uint64(seed) ^ uint64(i)*0x9e3779b97f4a7c15),
		}
		t.lane.After(time.Duration(i)*1000003*time.Nanosecond/time.Duration(n), t.tick)
	}
	//lint:allow walltime measuring host throughput is this ablation's purpose
	start := time.Now()
	if err := net.RunUntil(kernelEpoch.Add(kernelScaleSim), 0); err != nil {
		return KernelScaleRow{}, err
	}
	//lint:allow walltime measuring host throughput is this ablation's purpose
	wall := time.Since(start)
	for _, c := range counts {
		delivered += c
	}
	row := KernelScaleRow{
		Label:     fmt.Sprintf("n=%d W=%d", n, workers),
		Nodes:     n,
		Workers:   workers,
		Events:    kern.Executed(),
		Delivered: delivered,
		Wall:      wall,
	}
	if wall > 0 {
		row.EventsPerSec = float64(row.Events) / wall.Seconds()
	}
	return row, nil
}

// AblationKernelScale (A10) sweeps fleet size × worker count and reports
// kernel throughput and parallel speedup. The W=1 cell doubles as the
// determinism baseline: every W cell of the same n must report identical
// Events and Delivered counts (the test suite pins this; here it is
// surfaced in the table so a regression is visible in the artifact). A
// nil sizes slice runs {512, 2048, 10240}; a nil workers slice runs
// {1, NumCPU} (deduplicated on single-core hosts).
func AblationKernelScale(sizes, workers []int, seed int64) ([]KernelScaleRow, error) {
	if len(sizes) == 0 {
		sizes = []int{512, 2048, 10240}
	}
	if len(workers) == 0 {
		workers = []int{1}
		if nc := runtime.NumCPU(); nc > 1 {
			workers = append(workers, nc)
		}
	}
	var rows []KernelScaleRow
	for _, n := range sizes {
		var base float64
		for _, w := range workers {
			row, err := RunKernelScale(n, w, seed)
			if err != nil {
				return nil, err
			}
			if base == 0 {
				base = row.EventsPerSec
			}
			if base > 0 {
				row.Speedup = row.EventsPerSec / base
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderKernelScale prints the A10 table.
func RenderKernelScale(rows []KernelScaleRow) string {
	var b strings.Builder
	b.WriteString("Ablation A10: parallel kernel throughput — events/sec and speedup vs n and workers\n")
	fmt.Fprintf(&b, "%-16s%12s%12s%12s%14s%10s\n",
		"config", "events", "delivered", "wall", "events/sec", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s%12d%12d%12s%14.0f%9.2fx\n",
			r.Label, r.Events, r.Delivered, r.Wall.Round(time.Millisecond),
			r.EventsPerSec, r.Speedup)
	}
	return b.String()
}

package experiment

import (
	"strings"
	"testing"
	"time"

	"athena/internal/athena"
	"athena/internal/workload"
)

// tinyConfig is a fast experiment configuration for tests.
func tinyConfig() Config {
	cfg := Default()
	cfg.Reps = 2
	cfg.Dynamics = []float64{0, 0.5}
	cfg.Schemes = []athena.Scheme{athena.SchemeSLT, athena.SchemeLVFL}
	w := workload.DefaultConfig()
	w.GridRows, w.GridCols = 4, 4
	w.Nodes = 8
	w.QueriesPerNode = 1
	w.Deadline = 45 * time.Second
	cfg.Workload = w
	return cfg
}

func TestFig2SmallRun(t *testing.T) {
	points, err := Fig2(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 { // 2 dynamics x 2 schemes
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Reps != 2 {
			t.Errorf("reps = %d", p.Reps)
		}
		if p.Ratio < 0 || p.Ratio > 1 {
			t.Errorf("ratio = %v", p.Ratio)
		}
		if p.MeanMB <= 0 {
			t.Errorf("bytes = %v", p.MeanMB)
		}
		if p.RatioMin > p.Ratio || p.RatioMax < p.Ratio {
			t.Errorf("bounds %v..%v around %v", p.RatioMin, p.RatioMax, p.Ratio)
		}
	}
	table := RenderFig2(points)
	if !strings.Contains(table, "slt") || !strings.Contains(table, "lvfl") {
		t.Errorf("render missing schemes:\n%s", table)
	}
	csv := CSV(points)
	if strings.Count(csv, "\n") != 5 {
		t.Errorf("csv rows:\n%s", csv)
	}
}

func TestFig3SmallRun(t *testing.T) {
	cfg := tinyConfig()
	points, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Dynamics != 0.4 {
			t.Errorf("dynamics = %v", p.Dynamics)
		}
	}
	out := RenderFig3(points)
	if !strings.Contains(out, "bandwidth") {
		t.Errorf("render:\n%s", out)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := tinyConfig()
	cfg.Dynamics = []float64{0.5}
	cfg.Schemes = []athena.Scheme{athena.SchemeLVFL}
	a, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Ratio != b[0].Ratio || a[0].MeanMB != b[0].MeanMB {
		t.Errorf("nondeterministic: %+v vs %+v", a[0], b[0])
	}
}

func TestAblationInfomax(t *testing.T) {
	rows := AblationInfomax(7, 5)
	var fifo, info InfomaxRow
	for _, r := range rows {
		switch r.Label {
		case "fifo":
			fifo = r
		case "infomax":
			info = r
		}
	}
	if info.Utility <= fifo.Utility {
		t.Errorf("infomax %v did not beat fifo %v", info.Utility, fifo.Utility)
	}
	out := RenderInfomax(rows)
	if !strings.Contains(out, "infomax") {
		t.Errorf("render:\n%s", out)
	}
}

func TestAblationPrefetchSmall(t *testing.T) {
	cfg := tinyConfig()
	cfg.Reps = 1
	rows, err := AblationPrefetch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := RenderAblation("A2", "labelAns", rows)
	if !strings.Contains(out, "prefetch on") {
		t.Errorf("render:\n%s", out)
	}
}

func TestAblationNoiseSmall(t *testing.T) {
	cfg := tinyConfig()
	cfg.Reps = 1
	rows, err := AblationNoise(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Noise-free must do at least as well as the noisiest setting on
	// resolution, and cost must not shrink with noise.
	first, last := rows[0], rows[len(rows)-1]
	if first.Label != "noise=0.00" {
		t.Fatalf("rows[0] = %q", first.Label)
	}
	if last.Ratio > first.Ratio+1e-9 {
		t.Errorf("noise improved resolution: %v -> %v", first.Ratio, last.Ratio)
	}
	if last.MeanMB < first.MeanMB-1e-9 {
		t.Errorf("noise reduced cost: %v -> %v", first.MeanMB, last.MeanMB)
	}
}

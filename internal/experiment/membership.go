package experiment

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"athena/internal/athena"
	"athena/internal/boolexpr"
	"athena/internal/names"
	"athena/internal/netsim"
	"athena/internal/object"
	"athena/internal/simclock"
	"athena/internal/transport"
	"athena/internal/trust"
)

// MembershipRow is one fleet-size × protocol cell of the A8 table.
type MembershipRow struct {
	// Label names the configuration (e.g. "n=128 gossip").
	Label string
	// Nodes is the fleet size.
	Nodes int
	// CtlMsgs and CtlBytes are the steady-state control-plane cost per
	// node per heartbeat interval (the quantity that is O(n) per node
	// under flooding and ~flat under peer-sampled gossip).
	CtlMsgs  float64
	CtlBytes float64
	// Detection is how long after a crash the last live replica evicted
	// the dead node (capped at membershipDetectCap).
	Detection time.Duration
	// FalseDrops is the fraction of (live observer, live source) pairs
	// missing from a directory replica at the end of the run — the
	// false-eviction rate after the recovery tail.
	FalseDrops float64
}

// The A8 rig's fixed parameters. The 2-second interval keeps the flood
// protocol's O(n²) per-interval message count affordable at n=512 while
// preserving the per-node scaling contrast the experiment exists to show.
const (
	membershipInterval  = 2 * time.Second
	membershipMiss      = 3
	membershipSettle    = 10 * membershipInterval
	membershipWindow    = 10 * membershipInterval
	membershipDetectCap = 120 * membershipInterval
	membershipTail      = 5 * membershipInterval
)

// membershipEpoch anchors the simulated clock; runs are deterministic in
// the seed, so any fixed instant works.
var membershipEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// allTrue is the trivial ground truth for membership-only fleets: the rig
// never issues queries, so label values are irrelevant.
type allTrue struct{}

func (allTrue) LabelValue(string, time.Time) bool { return true }

// memTimers adapts the simulation scheduler to the node Timers interface.
type memTimers struct{ s *simclock.Scheduler }

func (t memTimers) After(d time.Duration, fn func()) { t.s.After(d, fn) }

func (t memTimers) AfterArg(d time.Duration, fn func(any), arg any) { t.s.AfterCall(d, fn, arg) }

// memLaneTimers adapts a node's kernel lane to the Timers interface.
type memLaneTimers struct{ l *simclock.Lane }

func (t memLaneTimers) After(d time.Duration, fn func()) { t.l.After(d, fn) }

func (t memLaneTimers) AfterArg(d time.Duration, fn func(any), arg any) { t.l.AfterCall(d, fn, arg) }

// MembershipOpts configures one A8 rig run beyond the fleet size.
type MembershipOpts struct {
	// Fanout 0 runs the flooded-heartbeat protocol; > 0 runs SWIM gossip
	// with that probe fan-out.
	Fanout int
	// Seed drives topology, gossip sampling, and the kernel tie-break.
	Seed int64
	// Workers > 0 runs the scenario on the parallel kernel with that many
	// lane executors; 0 uses the sequential reference scheduler. The
	// outcome is identical either way up to same-instant tie order — the
	// kernel exists to make the n >= 2048 rows affordable.
	Workers int
	// Shards/ShardReplicas > 0 enable the sharded directory (requires
	// Fanout > 0), mirroring the A9 configuration on a real simulation.
	Shards, ShardReplicas int
}

// RunMembership measures the membership control plane at fleet size n on a
// seeded random connected topology: steady-state control messages and
// bytes per node per heartbeat interval, crash-detection latency, and the
// false-eviction rate. fanout 0 runs the flooded-heartbeat protocol;
// fanout > 0 runs SWIM gossip with that probe fan-out. Deterministic in
// the seed. Exported so BenchmarkMembershipControlPlane can reuse the rig.
func RunMembership(n, fanout int, seed int64) (MembershipRow, error) {
	return RunMembershipOpts(n, MembershipOpts{Fanout: fanout, Seed: seed})
}

// RunMembershipOpts is RunMembership with engine and sharding control.
func RunMembershipOpts(n int, o MembershipOpts) (MembershipRow, error) {
	fanout, seed := o.Fanout, o.Seed
	var sched *simclock.Scheduler
	var kern *simclock.Kernel
	var net *netsim.Network
	if o.Workers > 0 {
		kern = simclock.NewKernel(membershipEpoch, simclock.KernelOpts{Workers: o.Workers, Seed: uint64(seed)})
		net = netsim.NewParallel(kern)
	} else {
		sched = simclock.New(membershipEpoch)
		net = netsim.New(sched)
	}
	rng := rand.New(rand.NewSource(seed))
	link := netsim.LinkConfig{Bandwidth: 1 << 20, Latency: time.Millisecond}
	if err := netsim.BuildRandomConnected(net, n, n/2, link, rng); err != nil {
		return MembershipRow{}, err
	}

	descs := make([]object.Descriptor, n)
	ids := make([]string, n)
	for i := range descs {
		ids[i] = fmt.Sprintf("n%d", i)
		descs[i] = object.Descriptor{
			Name: names.MustParse("/src/" + ids[i]), Size: 1000, Source: ids[i],
			Labels: []string{"up"}, Validity: time.Minute, ProbTrue: 0.8,
		}
	}
	auth := trust.NewAuthority()
	meta := boolexpr.MetaTable{"up": {Cost: 1000, ProbTrue: 0.8, Validity: time.Minute}}
	nodes := make(map[string]*athena.Node, n)
	for i, id := range ids {
		desc := descs[i]
		var timers athena.Timers = memTimers{sched}
		if kern != nil {
			timers = memLaneTimers{net.LaneOf(id)}
		}
		node, err := athena.New(athena.Config{
			ID:                id,
			Transport:         transport.NewSim(net, id),
			Router:            net,
			Timers:            timers,
			Scheme:            athena.SchemeLVF,
			Directory:         athena.NewDirectory(descs),
			Meta:              meta,
			World:             allTrue{},
			Authority:         auth,
			Signer:            auth.Register(id, []byte("k-"+id)),
			Policy:            trust.TrustAll(),
			Descriptor:        &desc,
			CacheBytes:        1 << 20,
			DisablePrefetch:   true,
			HeartbeatInterval: membershipInterval,
			HeartbeatMiss:     membershipMiss,
			GossipFanout:      fanout,
			GossipSeed:        seed,
			Shards:            o.Shards,
			ShardReplicas:     o.ShardReplicas,
		})
		if err != nil {
			return MembershipRow{}, err
		}
		nodes[id] = node
	}

	runUntil := func(d time.Duration) error {
		return net.RunUntil(membershipEpoch.Add(d), 0)
	}
	if err := runUntil(membershipSettle); err != nil {
		return MembershipRow{}, err
	}

	// Steady-state measurement window: replicas start converged, so every
	// control byte in here is pure protocol upkeep.
	type ctl struct {
		msgs  int
		bytes int64
	}
	before := make(map[string]ctl, n)
	for id, node := range nodes {
		st := node.Stats()
		before[id] = ctl{st.ControlMsgs, st.ControlBytes}
	}
	if err := runUntil(membershipSettle + membershipWindow); err != nil {
		return MembershipRow{}, err
	}
	var msgs int
	var bytes int64
	for id, node := range nodes {
		st := node.Stats()
		msgs += st.ControlMsgs - before[id].msgs
		bytes += st.ControlBytes - before[id].bytes
	}
	intervals := float64(membershipWindow / membershipInterval)
	row := MembershipRow{
		Nodes:    n,
		CtlMsgs:  float64(msgs) / float64(n) / intervals,
		CtlBytes: float64(bytes) / float64(n) / intervals,
	}

	// Crash a leaf. The simulator's routes are not failure-aware, so a
	// dead transit node legitimately blackholes everything behind it; a
	// degree-1 node carries no transit traffic and isolates the failure
	// detector itself. Random connected graphs at this density always
	// have leaves, but fall back to the last node just in case.
	dead := ids[n-1]
	for _, id := range ids {
		if len(net.Neighbors(id)) == 1 {
			dead = id
			break
		}
	}
	if err := net.SetNodeDown(dead, true); err != nil {
		return MembershipRow{}, err
	}
	crashAt := membershipSettle + membershipWindow
	detect := membershipDetectCap
	for at := crashAt + membershipInterval; at <= crashAt+membershipDetectCap; at += membershipInterval {
		if err := runUntil(at); err != nil {
			return MembershipRow{}, err
		}
		all := true
		for id, node := range nodes {
			if id != dead && node.Directory().Has(dead) {
				all = false
				break
			}
		}
		if all {
			detect = at - crashAt
			break
		}
	}
	row.Detection = detect

	// Recovery tail (refutations re-admit any falsely accused live node),
	// then audit every live replica for missing live sources.
	if err := runUntil(crashAt + detect + membershipTail); err != nil {
		return MembershipRow{}, err
	}
	var missing, pairs int
	for id, node := range nodes {
		if id == dead {
			continue
		}
		for _, src := range ids {
			if src == dead || src == id {
				continue
			}
			pairs++
			if !node.Directory().Has(src) {
				missing++
			}
		}
	}
	if pairs > 0 {
		row.FalseDrops = float64(missing) / float64(pairs)
	}
	return row, nil
}

// AblationMembership (A8) sweeps fleet size × membership protocol: the
// flooded-heartbeat control plane costs O(n) messages per node per
// interval while SWIM gossip holds per-node cost ~flat (fanout probes plus
// λ·log n piggybacked deltas), at the price of a longer — but bounded and
// false-positive-resistant — detection window. A nil sizes slice runs the
// full {8, 32, 128, 512} sweep plus an n=2048 gossip+sharding row that is
// simulated for real on the parallel kernel (flooding at that size would
// cost O(n²) messages per interval for no new information, so only the
// scalable configuration gets the scale row).
func AblationMembership(cfg Config, sizes []int) ([]MembershipRow, error) {
	scaleRow := len(sizes) == 0
	if len(sizes) == 0 {
		sizes = []int{8, 32, 128, 512}
	}
	var rows []MembershipRow
	for _, n := range sizes {
		for _, fanout := range []int{0, 2} {
			row, err := RunMembership(n, fanout, cfg.BaseSeed)
			if err != nil {
				return nil, err
			}
			mode := "flood"
			if fanout > 0 {
				mode = "gossip"
			}
			row.Label = fmt.Sprintf("n=%d %s", n, mode)
			rows = append(rows, row)
		}
	}
	if scaleRow {
		const n = 2048
		row, err := RunMembershipOpts(n, MembershipOpts{
			Fanout:        2,
			Seed:          cfg.BaseSeed,
			Workers:       runtime.NumCPU(),
			Shards:        4 * n,
			ShardReplicas: 3,
		})
		if err != nil {
			return nil, err
		}
		row.Label = fmt.Sprintf("n=%d gossip+shard", n)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderMembership prints the A8 table.
func RenderMembership(rows []MembershipRow) string {
	var b strings.Builder
	b.WriteString("Ablation A8: membership control plane — flood vs SWIM gossip\n")
	fmt.Fprintf(&b, "%-16s%14s%16s%12s%12s\n", "config", "msgs/node/iv", "bytes/node/iv", "detect(s)", "false-drop")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s%14.1f%16.0f%12.1f%12.4f\n",
			r.Label, r.CtlMsgs, r.CtlBytes, r.Detection.Seconds(), r.FalseDrops)
	}
	return b.String()
}

// Package experiment regenerates the paper's evaluation (Section VII):
// Figure 2 (query resolution ratio vs. environment dynamics) and Figure 3
// (total network bandwidth by retrieval scheme), plus the ablations called
// out in DESIGN.md. Runs are deterministic in their seeds and repetitions
// execute in parallel, each in its own simulator.
package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"athena/internal/athena"
	"athena/internal/workload"
)

// Config parameterizes an experiment family.
type Config struct {
	// BaseSeed seeds repetition r with BaseSeed + r.
	BaseSeed int64
	// Reps is the number of randomized repetitions per data point
	// (paper: 10).
	Reps int
	// Schemes to evaluate (default: all five).
	Schemes []athena.Scheme
	// Dynamics are the fast-changing-object ratios for Figure 2.
	Dynamics []float64
	// Workload is the base scenario configuration (seed/dynamics fields
	// are overridden per run).
	Workload workload.Config
	// Cluster is the base cluster configuration (scheme overridden per
	// run).
	Cluster athena.ClusterConfig
	// Parallelism bounds concurrent simulations (default: NumCPU).
	Parallelism int
}

// Default returns the paper's Section VII experiment configuration.
func Default() Config {
	return Config{
		BaseSeed: 1,
		Reps:     10,
		Schemes:  athena.Schemes(),
		Dynamics: []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0},
		Workload: workload.DefaultConfig(),
	}
}

// Point is one aggregated data point.
type Point struct {
	// Scheme identifies the retrieval scheme.
	Scheme athena.Scheme
	// Dynamics is the fast-changing-object ratio.
	Dynamics float64
	// Ratio is the mean query resolution ratio across repetitions.
	Ratio float64
	// RatioMin and RatioMax bound the per-repetition ratios.
	RatioMin, RatioMax float64
	// MeanMB is the mean total network traffic in megabytes.
	MeanMB float64
	// MeanLatency is the mean decision latency of resolved queries.
	MeanLatency time.Duration
	// HitRatio is the mean fleet cache hit ratio (approximate hits count
	// as hits), from the per-run metrics registry snapshots.
	HitRatio float64
	// Retries is the mean recovery-layer event count per run (request
	// timeouts plus retransmissions).
	Retries float64
	// Reps is the number of repetitions aggregated.
	Reps int
}

type runKey struct {
	scheme   athena.Scheme
	dynamics float64
}

type runResult struct {
	key     runKey
	outcome athena.Outcome
	err     error
}

// sweep runs Reps repetitions of every (scheme, dynamics) combination in
// parallel and aggregates.
func sweep(cfg Config, dynamics []float64) ([]Point, error) {
	if cfg.Reps <= 0 {
		cfg.Reps = 10
	}
	if len(cfg.Schemes) == 0 {
		cfg.Schemes = athena.Schemes()
	}

	type job struct {
		key  runKey
		seed int64
	}
	var jobs []job
	for _, d := range dynamics {
		for _, s := range cfg.Schemes {
			for r := 0; r < cfg.Reps; r++ {
				jobs = append(jobs, job{key: runKey{scheme: s, dynamics: d}, seed: cfg.BaseSeed + int64(r)})
			}
		}
	}

	results := make([]runResult, len(jobs))
	runPool(len(jobs), cfg.Parallelism, func(i int) {
		results[i] = runOne(cfg, jobs[i].key, jobs[i].seed)
	})
	return aggregatePoints(results)
}

// aggregatePoints folds per-repetition outcomes into one Point per
// (scheme, dynamics) key. Latency is weighted by each repetition's
// resolved-query count: a repetition that resolved nothing carries no
// latency evidence and must not drag the mean toward zero.
func aggregatePoints(results []runResult) ([]Point, error) {
	agg := make(map[runKey]*Point)
	latencySums := make(map[runKey]time.Duration)
	resolved := make(map[runKey]int)
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		p := agg[r.key]
		if p == nil {
			p = &Point{
				Scheme:   r.key.scheme,
				Dynamics: r.key.dynamics,
				RatioMin: 2,
				RatioMax: -1,
			}
			agg[r.key] = p
		}
		ratio := r.outcome.ResolutionRatio()
		p.Ratio += ratio
		if ratio < p.RatioMin {
			p.RatioMin = ratio
		}
		if ratio > p.RatioMax {
			p.RatioMax = ratio
		}
		p.MeanMB += float64(r.outcome.TotalBytes) / (1 << 20)
		p.HitRatio += r.outcome.CacheHitRatio()
		p.Retries += float64(r.outcome.RetryCount())
		latencySums[r.key] += r.outcome.MeanLatency * time.Duration(r.outcome.QueriesResolved)
		resolved[r.key] += r.outcome.QueriesResolved
		p.Reps++
	}
	var points []Point
	for k, p := range agg {
		p.Ratio /= float64(p.Reps)
		p.MeanMB /= float64(p.Reps)
		p.HitRatio /= float64(p.Reps)
		p.Retries /= float64(p.Reps)
		if n := resolved[k]; n > 0 {
			p.MeanLatency = latencySums[k] / time.Duration(n)
		}
		points = append(points, *p)
	}
	sort.Slice(points, func(a, b int) bool {
		if points[a].Dynamics != points[b].Dynamics {
			return points[a].Dynamics < points[b].Dynamics
		}
		return points[a].Scheme < points[b].Scheme
	})
	return points, nil
}

func runOne(cfg Config, key runKey, seed int64) runResult {
	wcfg := cfg.Workload
	wcfg.Seed = seed
	wcfg.FastRatio = key.dynamics
	scenario, err := workload.Generate(wcfg)
	if err != nil {
		return runResult{key: key, err: fmt.Errorf("experiment: generate seed %d: %w", seed, err)}
	}
	ccfg := cfg.Cluster
	ccfg.Scheme = key.scheme
	cluster, err := athena.NewCluster(scenario, ccfg)
	if err != nil {
		return runResult{key: key, err: fmt.Errorf("experiment: cluster seed %d: %w", seed, err)}
	}
	out, err := cluster.Run()
	if err != nil {
		return runResult{key: key, err: fmt.Errorf("experiment: run seed %d scheme %s: %w", seed, key.scheme, err)}
	}
	return runResult{key: key, outcome: out}
}

// Fig2 regenerates Figure 2: resolution ratio per scheme across
// environment-dynamics levels.
func Fig2(cfg Config) ([]Point, error) {
	dynamics := cfg.Dynamics
	if len(dynamics) == 0 {
		dynamics = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	}
	return sweep(cfg, dynamics)
}

// Fig3 regenerates Figure 3: total bandwidth per scheme at 40%
// fast-changing objects.
func Fig3(cfg Config) ([]Point, error) {
	return sweep(cfg, []float64{0.4})
}

// RenderFig2 prints the Figure 2 series as an aligned table: one row per
// dynamics level, one column per scheme.
func RenderFig2(points []Point) string {
	schemes, dynamics := axes(points)
	byKey := index(points)

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: query resolution ratio vs environment dynamics\n")
	fmt.Fprintf(&b, "%-10s", "dynamics")
	for _, s := range schemes {
		fmt.Fprintf(&b, "%10s", s)
	}
	b.WriteByte('\n')
	for _, d := range dynamics {
		fmt.Fprintf(&b, "%-10.2f", d)
		for _, s := range schemes {
			if p, ok := byKey[runKey{scheme: s, dynamics: d}]; ok {
				fmt.Fprintf(&b, "%10.3f", p.Ratio)
			} else {
				fmt.Fprintf(&b, "%10s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFig3 prints the Figure 3 bars: total bandwidth per scheme.
func RenderFig3(points []Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: total network bandwidth (40%% fast-changing objects)\n")
	fmt.Fprintf(&b, "%-8s%14s%12s%11s%10s\n", "scheme", "bandwidth(MB)", "resolution", "cache_hit", "retries")
	for _, s := range athena.Schemes() {
		for _, p := range points {
			if p.Scheme == s {
				fmt.Fprintf(&b, "%-8s%14.1f%12.3f%11.3f%10.1f\n", s, p.MeanMB, p.Ratio, p.HitRatio, p.Retries)
			}
		}
	}
	return b.String()
}

// CSV renders points as comma-separated values with a header.
func CSV(points []Point) string {
	var b strings.Builder
	b.WriteString("scheme,dynamics,ratio,ratio_min,ratio_max,mean_mb,mean_latency_s,cache_hit,retries,reps\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%s,%.2f,%.4f,%.4f,%.4f,%.2f,%.3f,%.4f,%.1f,%d\n",
			p.Scheme, p.Dynamics, p.Ratio, p.RatioMin, p.RatioMax, p.MeanMB,
			p.MeanLatency.Seconds(), p.HitRatio, p.Retries, p.Reps)
	}
	return b.String()
}

func axes(points []Point) ([]athena.Scheme, []float64) {
	schemeSet := make(map[athena.Scheme]bool)
	dynSet := make(map[float64]bool)
	for _, p := range points {
		schemeSet[p.Scheme] = true
		dynSet[p.Dynamics] = true
	}
	var schemes []athena.Scheme
	for _, s := range athena.Schemes() {
		if schemeSet[s] {
			schemes = append(schemes, s)
		}
	}
	var dynamics []float64
	for d := range dynSet {
		dynamics = append(dynamics, d)
	}
	sort.Float64s(dynamics)
	return schemes, dynamics
}

func index(points []Point) map[runKey]Point {
	m := make(map[runKey]Point, len(points))
	for _, p := range points {
		m[runKey{scheme: p.Scheme, dynamics: p.Dynamics}] = p
	}
	return m
}

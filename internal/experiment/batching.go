package experiment

// Ablation A11: data-plane batching. The rig is an IoT-gateway incast —
// the topology batching exists for: m consumer nodes and k sensor
// sources all hang off one gateway, every consumer queries a conjunction
// over all k sensor labels, and the per-query transfer window ("fan-in",
// SequentialWindow) controls how many requests and replies are in flight
// at once. Every frame of a consumer's query crosses its gateway link,
// so that link sees bursts of fan-in same-destination messages — the
// coalescing layer merges them into RequestBatch/DataBatch frames while
// the window=0 cell of each (n, fan-in) group ships every message
// separately, giving the unbatched baseline the other cells are
// normalized against. Reported per cell: data-plane frames and bytes per
// node, the p99 issue-to-decision latency (batching must not cost a
// query its deadline: the Nagle-style idle path ships lone messages
// immediately, so only burst followers ever wait, and at most one
// window), the mean members per batch frame, and the frame/byte
// reduction versus the baseline.

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"athena/internal/athena"
	"athena/internal/boolexpr"
	"athena/internal/metrics"
	"athena/internal/names"
	"athena/internal/netsim"
	"athena/internal/object"
	"athena/internal/simclock"
	"athena/internal/transport"
	"athena/internal/trust"
)

// The A11 rig's fixed parameters: k sensor streams behind the gateway,
// each query a conjunction over all of them, small telemetry-sized
// objects (per-frame overhead matters most there), queries staggered
// over a short window so consumers load the gateway concurrently.
const (
	batchingSources  = 16
	batchingDeadline = 30 * time.Second
	batchingStagger  = 2 * time.Second
	batchingSlack    = 10 * time.Second
)

// batchingEpoch anchors the rig's virtual clock; deterministic in the
// seed, so any fixed instant works.
var batchingEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// BatchingRow is one (fleet size × fan-in × window) cell of the A11 table.
type BatchingRow struct {
	// Label names the configuration (e.g. "n=512 f=8 w=10ms").
	Label string
	// Nodes is the fleet size (gateway + sources + consumers); FanIn the
	// per-query concurrent-transfer cap; Window the coalescing window
	// (0 = batching off).
	Nodes  int
	FanIn  int
	Window time.Duration
	// MsgsPerNode / BytesPerNode are data-plane frames and total network
	// bytes sent, divided by the fleet size.
	MsgsPerNode  float64
	BytesPerNode float64
	// P99Latency is the exact 99th-percentile issue-to-decision latency
	// over all resolved queries (not a histogram-bucket bound: batching's
	// latency cost is bounded by the coalescing window, far below the
	// metrics registry's bucket resolution).
	P99Latency time.Duration
	// Resolution is the query resolution ratio.
	Resolution float64
	// MeanBatch is the mean member count of shipped batch frames (0 when
	// batching is off or nothing coalesced).
	MeanBatch float64
	// FrameReduction is baseline MsgsPerNode over this cell's (1.0 for
	// the baseline itself); ByteSavings the fraction of baseline
	// BytesPerNode saved.
	FrameReduction float64
	ByteSavings    float64
}

// RunBatching runs one A11 cell. Deterministic in (n, fanIn, window,
// seed); workers only changes wall-clock time.
func RunBatching(n, fanIn, workers int, window time.Duration, seed int64) (BatchingRow, error) {
	k := batchingSources
	consumers := n - k - 1
	if consumers < 1 {
		return BatchingRow{}, fmt.Errorf("experiment: batching fleet n=%d too small for %d sources", n, k)
	}
	var sched *simclock.Scheduler
	var kern *simclock.Kernel
	var net *netsim.Network
	if workers > 0 {
		kern = simclock.NewKernel(batchingEpoch, simclock.KernelOpts{Workers: workers, Seed: uint64(seed)})
		net = netsim.NewParallel(kern)
	} else {
		sched = simclock.New(batchingEpoch)
		net = netsim.New(sched)
	}
	_ = kern

	const gw = "gw"
	link := netsim.LinkConfig{Bandwidth: 8 << 20, Latency: time.Millisecond}
	net.AddNode(gw, nil)
	ids := make([]string, 0, n)
	ids = append(ids, gw)
	srcIDs := make([]string, k)
	for i := 0; i < k; i++ {
		srcIDs[i] = fmt.Sprintf("s%d", i)
		net.AddNode(srcIDs[i], nil)
		if err := net.AddLink(gw, srcIDs[i], link); err != nil {
			return BatchingRow{}, err
		}
		ids = append(ids, srcIDs[i])
	}
	conIDs := make([]string, consumers)
	for i := 0; i < consumers; i++ {
		conIDs[i] = fmt.Sprintf("c%d", i)
		net.AddNode(conIDs[i], nil)
		if err := net.AddLink(gw, conIDs[i], link); err != nil {
			return BatchingRow{}, err
		}
		ids = append(ids, conIDs[i])
	}

	// One telemetry stream per source; sizes vary deterministically in
	// the 8–32 KB band so batches mix member sizes.
	descs := make([]object.Descriptor, k)
	meta := make(boolexpr.MetaTable, k)
	labels := make([]string, k)
	for i := range descs {
		labels[i] = fmt.Sprintf("l%d", i)
		size := int64(8_000 + (i*1619)%24_000)
		descs[i] = object.Descriptor{
			Name:     names.MustParse("/src/" + srcIDs[i]),
			Size:     size,
			Source:   srcIDs[i],
			Labels:   []string{labels[i]},
			Validity: 5 * time.Minute,
			ProbTrue: 0.9,
		}
		meta[labels[i]] = boolexpr.Meta{Cost: float64(size), ProbTrue: 0.9, Validity: 5 * time.Minute}
	}
	expr, err := boolexpr.Parse(strings.Join(labels, " & "))
	if err != nil {
		return BatchingRow{}, err
	}
	dnf := boolexpr.ToDNF(expr)

	reg := metrics.NewRegistry()
	auth := trust.NewAuthority()
	dir := athena.NewDirectory(descs)
	nodes := make(map[string]*athena.Node, n)
	for i, id := range ids {
		var desc *object.Descriptor
		if i >= 1 && i <= k {
			desc = &descs[i-1]
		}
		var timers athena.Timers = memTimers{sched}
		if kern != nil {
			timers = memLaneTimers{net.LaneOf(id)}
		}
		node, err := athena.New(athena.Config{
			ID:               id,
			Transport:        transport.NewSim(net, id),
			Router:           net,
			Timers:           timers,
			Scheme:           athena.SchemeLVF,
			Directory:        dir,
			Meta:             meta,
			World:            allTrue{},
			Authority:        auth,
			Signer:           auth.Register(id, []byte("k-"+id)),
			Policy:           trust.TrustAll(),
			Descriptor:       desc,
			CacheBytes:       8 << 20,
			DisablePrefetch:  true,
			SequentialWindow: fanIn,
			CoalesceWindow:   window,
			Metrics:          reg,
		})
		if err != nil {
			return BatchingRow{}, err
		}
		nodes[id] = node
	}

	// Stagger consumer queries over the issue window; each consumer must
	// gather all k streams to resolve its conjunction.
	for i, id := range conIDs {
		offset := time.Duration(i) * batchingStagger / time.Duration(consumers)
		node := nodes[id]
		err := net.AtNode(id, batchingEpoch.Add(offset), func() {
			if _, err := node.QueryInit(dnf, batchingDeadline); err != nil {
				panic(fmt.Sprintf("experiment: batching QueryInit: %v", err))
			}
		})
		if err != nil {
			return BatchingRow{}, err
		}
	}
	if err := net.RunUntil(batchingEpoch.Add(batchingStagger+batchingDeadline+batchingSlack), 0); err != nil {
		return BatchingRow{}, err
	}

	var agg athena.Stats
	for _, node := range nodes {
		st := node.Stats()
		agg.DataFrames += st.DataFrames
		agg.BatchesSent += st.BatchesSent
		agg.BatchedMsgs += st.BatchedMsgs
		agg.BatchBytesSaved += st.BatchBytesSaved
		agg.QueriesIssued += st.QueriesIssued
		agg.ResolvedTrue += st.ResolvedTrue
		agg.ResolvedFalse += st.ResolvedFalse
	}
	netStats := net.Stats()
	row := BatchingRow{
		Label:        fmt.Sprintf("n=%d f=%d w=%s", n, fanIn, windowLabel(window)),
		Nodes:        n,
		FanIn:        fanIn,
		Window:       window,
		MsgsPerNode:  float64(agg.DataFrames) / float64(n),
		BytesPerNode: float64(netStats.BytesSent) / float64(n),
		Resolution:   1,
	}
	if agg.QueriesIssued > 0 {
		row.Resolution = float64(agg.ResolvedTrue+agg.ResolvedFalse) / float64(agg.QueriesIssued)
	}
	var lats []time.Duration
	for _, node := range nodes {
		for _, r := range node.Results() {
			s := r.Status.String()
			if s == "resolved-true" || s == "resolved-false" {
				lats = append(lats, r.Finished.Sub(r.Issued))
			}
		}
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		row.P99Latency = lats[(len(lats)-1)*99/100]
	}
	if agg.BatchesSent > 0 {
		row.MeanBatch = float64(agg.BatchedMsgs) / float64(agg.BatchesSent)
	}
	return row, nil
}

func windowLabel(w time.Duration) string {
	if w <= 0 {
		return "off"
	}
	return w.String()
}

// AblationBatching (A11) sweeps fleet size × fan-in × coalescing window,
// normalizing every batched cell against its (n, fan-in) unbatched
// baseline. A nil sizes slice runs {64, 512, 2048}.
func AblationBatching(seed int64, workers int, sizes []int) ([]BatchingRow, error) {
	if len(sizes) == 0 {
		sizes = []int{64, 512, 2048}
	}
	windows := []time.Duration{0, 10 * time.Millisecond, 50 * time.Millisecond}
	fanIns := []int{2, 8}
	var rows []BatchingRow
	for _, n := range sizes {
		for _, f := range fanIns {
			var base BatchingRow
			for i, w := range windows {
				row, err := RunBatching(n, f, workers, w, seed)
				if err != nil {
					return nil, err
				}
				if i == 0 {
					base = row
				}
				if row.MsgsPerNode > 0 {
					row.FrameReduction = base.MsgsPerNode / row.MsgsPerNode
				}
				if base.BytesPerNode > 0 {
					row.ByteSavings = 1 - row.BytesPerNode/base.BytesPerNode
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// RenderBatching prints the A11 table.
func RenderBatching(rows []BatchingRow) string {
	var b strings.Builder
	b.WriteString("Ablation A11: data-plane batching — frames/bytes per node vs coalescing window and fan-in\n")
	fmt.Fprintf(&b, "%-20s%12s%14s%10s%12s%8s%8s%8s\n",
		"config", "msgs/node", "bytes/node", "p99", "resolution", "batch", "frames", "bytes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s%12.1f%14.0f%10s%12.3f%8.1f%7.2fx%7.1f%%\n",
			r.Label, r.MsgsPerNode, r.BytesPerNode,
			r.P99Latency.Round(time.Millisecond), r.Resolution,
			r.MeanBatch, r.FrameReduction, 100*r.ByteSavings)
	}
	return b.String()
}

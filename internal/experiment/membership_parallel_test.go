package experiment

import "testing"

// TestMembershipKernelWorkerInvariant pins the A8 rig's parallel path:
// the row a kernel run produces is a pure function of the scenario and
// seed, independent of the worker count — the property that makes the
// n=2048 scale row trustworthy.
func TestMembershipKernelWorkerInvariant(t *testing.T) {
	opts := MembershipOpts{Fanout: 2, Seed: 7, Workers: 1, Shards: 8, ShardReplicas: 2}
	base, err := RunMembershipOpts(24, opts)
	if err != nil {
		t.Fatal(err)
	}
	if base.CtlMsgs <= 0 || base.CtlBytes <= 0 {
		t.Fatalf("degenerate baseline row: %+v", base)
	}
	for _, w := range []int{2, 8} {
		opts.Workers = w
		row, err := RunMembershipOpts(24, opts)
		if err != nil {
			t.Fatal(err)
		}
		if row != base {
			t.Errorf("W=%d row diverged:\n%+v\nvs baseline\n%+v", w, row, base)
		}
	}
}

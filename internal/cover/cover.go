// Package cover solves the source-selection problem of Section III-B: pick
// the least-cost subset of sources whose evidence objects cover all labels
// a decision query needs. One camera may cover several road segments at
// once, so this is weighted set cover. Greedy gives the classic H(n)
// approximation; an exact bitmask solver verifies small instances.
package cover

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Source is a candidate data source.
type Source struct {
	// ID names the source (e.g. a node or sensor identifier).
	ID string
	// Cost is the retrieval cost of using this source (e.g. its object
	// size in bytes).
	Cost float64
	// Covers lists the labels this source's evidence can resolve.
	Covers []string
}

// ErrUncoverable is returned when no subset of sources covers the
// universe.
var ErrUncoverable = errors.New("cover: labels not coverable by any source subset")

// Greedy selects sources by the weighted-set-cover greedy rule: repeatedly
// take the source minimizing cost per newly covered label. It returns
// indices into sources in selection order. Labels that no source covers
// yield ErrUncoverable naming the first such label.
func Greedy(labels []string, sources []Source) ([]int, error) {
	need := make(map[string]bool, len(labels))
	for _, l := range labels {
		need[l] = true
	}
	if len(need) == 0 {
		return nil, nil
	}

	var selected []int
	chosen := make([]bool, len(sources))
	for len(need) > 0 {
		bestIdx := -1
		bestRatio := math.Inf(1)
		bestGain := 0
		for i, s := range sources {
			if chosen[i] {
				continue
			}
			gain := 0
			counted := make(map[string]bool, len(s.Covers))
			for _, l := range s.Covers {
				if need[l] && !counted[l] {
					counted[l] = true
					gain++
				}
			}
			if gain == 0 {
				continue
			}
			ratio := s.Cost / float64(gain)
			// Ties: prefer larger gain, then lower index, for determinism.
			if ratio < bestRatio || (ratio == bestRatio && gain > bestGain) {
				bestIdx, bestRatio, bestGain = i, ratio, gain
			}
		}
		if bestIdx < 0 {
			for _, l := range labels {
				if need[l] {
					return nil, fmt.Errorf("%w: label %q", ErrUncoverable, l)
				}
			}
			return nil, ErrUncoverable
		}
		chosen[bestIdx] = true
		selected = append(selected, bestIdx)
		for _, l := range sources[bestIdx].Covers {
			delete(need, l)
		}
	}
	return selected, nil
}

// Exact finds a minimum-cost cover by dynamic programming over label
// subsets. It requires len(labels) <= 20; intended for tests and small
// decision queries. Returns selected indices (ascending) and total cost.
func Exact(labels []string, sources []Source) ([]int, float64, error) {
	if len(labels) > 20 {
		return nil, 0, fmt.Errorf("cover: exact solver limited to 20 labels, got %d", len(labels))
	}
	idx := make(map[string]int, len(labels))
	uniq := 0
	for _, l := range labels {
		if _, ok := idx[l]; !ok {
			idx[l] = uniq
			uniq++
		}
	}
	full := (1 << uniq) - 1
	if full == 0 {
		return nil, 0, nil
	}

	masks := make([]int, len(sources))
	for i, s := range sources {
		for _, l := range s.Covers {
			if bit, ok := idx[l]; ok {
				masks[i] |= 1 << bit
			}
		}
	}

	const unset = math.MaxFloat64
	cost := make([]float64, full+1)
	choice := make([]int, full+1)
	parent := make([]int, full+1)
	for m := 1; m <= full; m++ {
		cost[m] = unset
		choice[m] = -1
		parent[m] = -1
	}
	for m := 0; m <= full; m++ {
		if cost[m] == unset {
			continue
		}
		for i, sm := range masks {
			next := m | sm
			if next == m {
				continue
			}
			if c := cost[m] + sources[i].Cost; c < cost[next] {
				cost[next] = c
				choice[next] = i
				parent[next] = m
			}
		}
	}
	if cost[full] == unset {
		return nil, 0, ErrUncoverable
	}

	// Reconstruct along the recorded parent chain.
	var picked []int
	for m := full; m != 0 && choice[m] >= 0; m = parent[m] {
		picked = append(picked, choice[m])
	}
	sort.Ints(picked)
	return picked, cost[full], nil
}

// TotalCost sums the cost of the selected source indices.
func TotalCost(sources []Source, selected []int) float64 {
	total := 0.0
	for _, i := range selected {
		total += sources[i].Cost
	}
	return total
}

// Covered reports whether the selected sources cover every label.
func Covered(labels []string, sources []Source, selected []int) bool {
	have := make(map[string]bool)
	for _, i := range selected {
		for _, l := range sources[i].Covers {
			have[l] = true
		}
	}
	for _, l := range labels {
		if !have[l] {
			return false
		}
	}
	return true
}

// HarmonicBound returns H(d) where d is the largest cover set size among
// sources — the greedy algorithm's approximation guarantee.
func HarmonicBound(sources []Source) float64 {
	d := 0
	for _, s := range sources {
		if len(s.Covers) > d {
			d = len(s.Covers)
		}
	}
	h := 0.0
	for i := 1; i <= d; i++ {
		h += 1 / float64(i)
	}
	return h
}

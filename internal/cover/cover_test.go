package cover

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestGreedyOverlappingCameras(t *testing.T) {
	// The paper's example: two cameras overlap on one segment; pick one.
	labels := []string{"segA", "segB"}
	sources := []Source{
		{ID: "cam1", Cost: 5, Covers: []string{"segA"}},
		{ID: "cam2", Cost: 5, Covers: []string{"segA"}},
		{ID: "cam3", Cost: 5, Covers: []string{"segB"}},
	}
	sel, err := Greedy(labels, sources)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("selected %d sources, want 2 (no redundant camera)", len(sel))
	}
	if !Covered(labels, sources, sel) {
		t.Error("selection does not cover")
	}
}

func TestGreedyPrefersWideCoverage(t *testing.T) {
	// A single camera covering both segments at cost 6 beats two at 5+5.
	labels := []string{"segA", "segB"}
	sources := []Source{
		{ID: "narrow1", Cost: 5, Covers: []string{"segA"}},
		{ID: "narrow2", Cost: 5, Covers: []string{"segB"}},
		{ID: "wide", Cost: 6, Covers: []string{"segA", "segB"}},
	}
	sel, err := Greedy(labels, sources)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 1 || sources[sel[0]].ID != "wide" {
		t.Errorf("selected %v, want [wide]", sel)
	}
}

func TestGreedyUncoverable(t *testing.T) {
	_, err := Greedy([]string{"segZ"}, []Source{{ID: "c", Cost: 1, Covers: []string{"segA"}}})
	if !errors.Is(err, ErrUncoverable) {
		t.Errorf("err = %v, want ErrUncoverable", err)
	}
}

func TestGreedyEmptyUniverse(t *testing.T) {
	sel, err := Greedy(nil, []Source{{ID: "c", Cost: 1}})
	if err != nil || len(sel) != 0 {
		t.Errorf("Greedy(nil) = %v, %v", sel, err)
	}
}

func TestExactSmall(t *testing.T) {
	labels := []string{"a", "b", "c"}
	sources := []Source{
		{ID: "s0", Cost: 10, Covers: []string{"a", "b", "c"}},
		{ID: "s1", Cost: 4, Covers: []string{"a", "b"}},
		{ID: "s2", Cost: 4, Covers: []string{"c"}},
	}
	sel, cost, err := Exact(labels, sources)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 8 {
		t.Errorf("cost = %v, want 8", cost)
	}
	if !Covered(labels, sources, sel) {
		t.Error("exact selection does not cover")
	}
}

func TestExactUncoverable(t *testing.T) {
	_, _, err := Exact([]string{"x"}, []Source{{ID: "s", Cost: 1, Covers: []string{"y"}}})
	if !errors.Is(err, ErrUncoverable) {
		t.Errorf("err = %v, want ErrUncoverable", err)
	}
}

func TestExactTooManyLabels(t *testing.T) {
	labels := make([]string, 21)
	for i := range labels {
		labels[i] = fmt.Sprintf("l%d", i)
	}
	if _, _, err := Exact(labels, nil); err == nil {
		t.Error("Exact accepted >20 labels")
	}
}

// Property: greedy always covers, and stays within the harmonic bound of
// the exact optimum on random instances.
func TestGreedyWithinHarmonicBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		nLabels := 1 + rng.Intn(8)
		labels := make([]string, nLabels)
		for i := range labels {
			labels[i] = fmt.Sprintf("l%d", i)
		}
		nSources := 1 + rng.Intn(10)
		sources := make([]Source, nSources)
		for i := range sources {
			covers := []string{labels[rng.Intn(nLabels)]} // ensure nonempty
			for _, l := range labels {
				if rng.Float64() < 0.3 {
					covers = append(covers, l)
				}
			}
			sources[i] = Source{ID: fmt.Sprintf("s%d", i), Cost: 0.5 + rng.Float64()*9.5, Covers: covers}
		}

		sel, gerr := Greedy(labels, sources)
		_, optCost, xerr := Exact(labels, sources)
		if (gerr == nil) != (xerr == nil) {
			t.Fatalf("coverability disagreement: greedy=%v exact=%v", gerr, xerr)
		}
		if gerr != nil {
			continue
		}
		if !Covered(labels, sources, sel) {
			t.Fatal("greedy selection does not cover")
		}
		bound := HarmonicBound(sources)
		if g := TotalCost(sources, sel); g > bound*optCost+1e-9 {
			t.Fatalf("greedy %v exceeds H(d)=%v times optimum %v", g, bound, optCost)
		}
	}
}

// Property: exact never exceeds greedy.
func TestExactNeverWorseThanGreedyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		labels := []string{"a", "b", "c", "d"}
		sources := make([]Source, 6)
		for i := range sources {
			var covers []string
			for _, l := range labels {
				if rng.Float64() < 0.5 {
					covers = append(covers, l)
				}
			}
			sources[i] = Source{ID: fmt.Sprintf("s%d", i), Cost: 1 + rng.Float64()*5, Covers: covers}
		}
		sel, gerr := Greedy(labels, sources)
		exactSel, optCost, xerr := Exact(labels, sources)
		if gerr != nil || xerr != nil {
			continue
		}
		if !Covered(labels, sources, exactSel) {
			t.Fatal("exact selection does not cover")
		}
		if greedyCost := TotalCost(sources, sel); optCost > greedyCost+1e-9 {
			t.Fatalf("exact %v worse than greedy %v", optCost, greedyCost)
		}
		if math.Abs(TotalCost(sources, exactSel)-optCost) > 1e-9 {
			t.Fatalf("reconstructed selection cost %v != reported %v",
				TotalCost(sources, exactSel), optCost)
		}
	}
}

func BenchmarkGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	labels := make([]string, 30)
	for i := range labels {
		labels[i] = fmt.Sprintf("l%d", i)
	}
	sources := make([]Source, 100)
	for i := range sources {
		covers := []string{labels[rng.Intn(len(labels))]}
		for _, l := range labels {
			if rng.Float64() < 0.1 {
				covers = append(covers, l)
			}
		}
		sources[i] = Source{ID: fmt.Sprintf("s%d", i), Cost: 1 + rng.Float64()*10, Covers: covers}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Greedy(labels, sources); err != nil {
			b.Fatal(err)
		}
	}
}

package shard

import (
	"fmt"
	"testing"

	"athena/internal/names"
)

func view(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("athena%03d", i)
	}
	return out
}

func TestOfNamePrefixStability(t *testing.T) {
	m := NewMap(16, 2)
	a := m.OfName(names.MustParse("/grid/cam/3-4"))
	b := m.OfName(names.MustParse("/grid/cam/7-1"))
	c := m.OfName(names.MustParse("/grid/cam"))
	if a != b || a != c {
		t.Errorf("names under /grid/cam map to shards %d, %d, %d; want equal", a, b, c)
	}
	if a < 0 || a >= 16 {
		t.Errorf("shard %d out of range", a)
	}
	// Shallower names than the partition depth still map deterministically.
	if s := m.OfName(names.MustParse("/grid")); s < 0 || s >= 16 {
		t.Errorf("shallow name shard %d out of range", s)
	}
}

func TestOfKeyRange(t *testing.T) {
	m := NewMap(8, 1)
	seen := make(map[int]bool)
	for i := 0; i < 256; i++ {
		s := m.OfKey(fmt.Sprintf("seg-h-%d-%d", i/16, i%16))
		if s < 0 || s >= 8 {
			t.Fatalf("OfKey out of range: %d", s)
		}
		seen[s] = true
	}
	if len(seen) < 8 {
		t.Errorf("256 keys hit only %d of 8 shards", len(seen))
	}
}

func TestReplicasDeterministicAndSized(t *testing.T) {
	m := NewMap(32, 2)
	v := view(20)
	for s := 0; s < 32; s++ {
		r1 := m.Replicas(s, v, 3)
		// Same assignment from a permuted view.
		perm := append([]string(nil), v...)
		for i := range perm {
			j := (i * 7) % len(perm)
			perm[i], perm[j] = perm[j], perm[i]
		}
		r2 := m.Replicas(s, perm, 3)
		if len(r1) != 3 || len(r2) != 3 {
			t.Fatalf("shard %d: replica sizes %d, %d", s, len(r1), len(r2))
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("shard %d: view order changed assignment: %v vs %v", s, r1, r2)
			}
		}
	}
	// rf clamps to the view size.
	if r := m.Replicas(0, view(2), 5); len(r) != 2 {
		t.Errorf("clamped replicas = %d, want 2", len(r))
	}
	if r := m.Replicas(0, nil, 3); r != nil {
		t.Errorf("empty view replicas = %v, want nil", r)
	}
}

func TestOwnsMatchesReplicas(t *testing.T) {
	m := NewMap(24, 2)
	v := view(12)
	for s := 0; s < 24; s++ {
		set := make(map[string]bool)
		for _, id := range m.Replicas(s, v, 3) {
			set[id] = true
		}
		for _, id := range v {
			if got := m.Owns(id, s, v, 3); got != set[id] {
				t.Errorf("shard %d node %s: Owns = %v, Replicas membership = %v", s, id, got, set[id])
			}
		}
		if m.Owns("stranger", s, v, 3) {
			t.Errorf("shard %d: node outside the view owns it", s)
		}
	}
}

// Rendezvous property: removing one node from the view only reassigns
// shards that node owned; every other shard's replica set is unchanged.
func TestMinimalDisruptionOnRemoval(t *testing.T) {
	m := NewMap(64, 2)
	v := view(16)
	gone := v[5]
	smaller := append(append([]string(nil), v[:5]...), v[6:]...)
	moved := 0
	for s := 0; s < 64; s++ {
		before := m.Replicas(s, v, 3)
		after := m.Replicas(s, smaller, 3)
		hadGone := false
		for _, id := range before {
			if id == gone {
				hadGone = true
			}
		}
		if !hadGone {
			for i := range before {
				if before[i] != after[i] {
					t.Errorf("shard %d not owned by %s changed: %v -> %v", s, gone, before, after)
				}
			}
			continue
		}
		moved++
		// The surviving owners keep their relative order; exactly one new
		// member appears.
		for _, id := range after {
			if id == gone {
				t.Errorf("shard %d still lists evicted node %s", s, gone)
			}
		}
	}
	if moved == 0 {
		t.Error("removed node owned no shards; balance is broken")
	}
}

// Load balance: with shards >> nodes, per-node ownership counts stay within
// a small factor of the mean.
func TestOwnershipBalance(t *testing.T) {
	m := NewMap(128, 2)
	v := view(16)
	const rf = 3
	counts := make(map[string]int)
	for s := 0; s < 128; s++ {
		for _, id := range m.Replicas(s, v, rf) {
			counts[id]++
		}
	}
	mean := float64(128*rf) / 16
	for id, c := range counts {
		if float64(c) > 3*mean || float64(c) < mean/3 {
			t.Errorf("node %s owns %d shards; mean %.1f", id, c, mean)
		}
	}
	// OwnedBy agrees with the per-shard scan.
	for _, id := range v {
		if got := len(m.OwnedBy(id, v, rf)); got != counts[id] {
			t.Errorf("OwnedBy(%s) = %d shards, per-shard scan says %d", id, got, counts[id])
		}
	}
}

func TestNewMapClamps(t *testing.T) {
	m := NewMap(0, 0)
	if m.Shards() != 1 || m.Depth() != DefaultPrefixDepth {
		t.Errorf("NewMap(0,0) = %d shards depth %d", m.Shards(), m.Depth())
	}
	if s := m.OfKey("anything"); s != 0 {
		t.Errorf("single-shard OfKey = %d", s)
	}
}

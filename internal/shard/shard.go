// Package shard partitions the hierarchical namespace into a fixed number
// of shards and assigns each shard a replica set drawn from the live
// membership view. The partition key of an advertisement is the leading
// prefix of its name (names.Name.Prefix); flat keys such as coverage labels
// hash directly. Replica sets use rendezvous (highest-random-weight)
// hashing, so the assignment is a pure function of (shard, view, rf):
// every node that agrees on the membership view agrees on ownership, and
// removing one node from the view moves only that node's shards.
package shard

import (
	"sort"

	"athena/internal/names"
)

// FNV-1a, manually inlined so shard lookups stay allocation-free on the
// query hot path (same constants as internal/athena's digest fold).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// Map is the prefix→shard partition: a fixed shard count plus the prefix
// depth that forms the partition key. It is immutable and safe for
// concurrent use.
type Map struct {
	shards int
	depth  int
}

// DefaultPrefixDepth is the partition-key depth used when none is given:
// two leading components ("/grid/cam") balance fan-out against locality in
// the paper's namespaces.
const DefaultPrefixDepth = 2

// NewMap builds a partition over the given shard count. shards < 1 is
// clamped to 1; depth < 1 takes DefaultPrefixDepth.
func NewMap(shards, depth int) *Map {
	if shards < 1 {
		shards = 1
	}
	if depth < 1 {
		depth = DefaultPrefixDepth
	}
	return &Map{shards: shards, depth: depth}
}

// Shards returns the shard count.
func (m *Map) Shards() int { return m.shards }

// Depth returns the partition-key prefix depth.
func (m *Map) Depth() int { return m.depth }

// OfName returns the shard owning a hierarchical name: the hash of the
// name's leading-prefix key reduced modulo the shard count. Every name
// under the same prefix lands on the same shard, so prefix-local
// advertisement bursts stay within one replica set.
func (m *Map) OfName(n names.Name) int {
	return m.OfKey(n.Prefix(m.depth).String())
}

// OfKey returns the shard owning a flat key (a coverage label or a source
// id — anything without name structure).
func (m *Map) OfKey(key string) int {
	return int(fnvString(fnvOffset, key) % uint64(m.shards))
}

// weight is the rendezvous score of a (shard, node) pair: the shard id is
// folded into the FNV stream before the node id (so each shard ranks nodes
// from a different base), and a splitmix-style finalizer gives the
// avalanche FNV lacks — without it, small shard ids barely perturb the
// high bits that decide the ranking.
func (m *Map) weight(s int, node string) uint64 {
	h := uint64(fnvOffset)
	for k := 0; k < 4; k++ {
		h ^= uint64(s) >> (8 * k) & 0xff
		h *= fnvPrime
	}
	h = fnvString(h, node)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Replicas returns shard s's replica set: the rf members of view with the
// highest rendezvous weight, ties broken by node id. The result is sorted
// by descending weight — index 0 is the shard's primary, and the remainder
// is the deterministic re-route order when earlier owners are evicted from
// the view. view need not be sorted and is not modified. rf is clamped to
// len(view).
func (m *Map) Replicas(s int, view []string, rf int) []string {
	if rf > len(view) {
		rf = len(view)
	}
	if rf <= 0 {
		return nil
	}
	type scored struct {
		id string
		w  uint64
	}
	all := make([]scored, len(view))
	for i, id := range view {
		all[i] = scored{id: id, w: m.weight(s, id)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].id < all[j].id
	})
	out := make([]string, rf)
	for i := range out {
		out[i] = all[i].id
	}
	return out
}

// Owns reports whether node is in shard s's replica set under the given
// view: node's weight ranks within the top rf. It avoids materializing the
// full ranking.
func (m *Map) Owns(node string, s int, view []string, rf int) bool {
	if rf <= 0 {
		return false
	}
	nw := m.weight(s, node)
	seen := false
	higher := 0
	for _, id := range view {
		if id == node {
			seen = true
			continue
		}
		w := m.weight(s, id)
		if w > nw || (w == nw && id < node) {
			higher++
			if higher >= rf {
				return false
			}
		}
	}
	return seen
}

// OwnedBy returns the sorted set of shards whose replica set includes node
// under the given view.
func (m *Map) OwnedBy(node string, view []string, rf int) []int {
	var out []int
	for s := 0; s < m.shards; s++ {
		if m.Owns(node, s, view, rf) {
			out = append(out, s)
		}
	}
	return out
}

package metrics

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

// Concurrent increments across counters, gauges and histograms must be
// exact under -race.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("events")
			g := r.Gauge("level")
			h := r.Histogram("latency", LinearBuckets(1, 1, 10))
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%10) + 0.5)
			}
		}()
	}
	wg.Wait()

	if got := r.Counter("events").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("level").Value(); got != workers*per {
		t.Errorf("gauge = %d, want %d", got, workers*per)
	}
	hs := r.Snapshot().Histograms["latency"]
	if hs.Count != workers*per {
		t.Errorf("histogram count = %d, want %d", hs.Count, workers*per)
	}
	wantSum := float64(workers) * (float64(per/10) * (0.5 + 1.5 + 2.5 + 3.5 + 4.5 + 5.5 + 6.5 + 7.5 + 8.5 + 9.5))
	if math.Abs(hs.Sum-wantSum) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", hs.Sum, wantSum)
	}
}

// Registry lookups return the same instrument for the same name.
func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same-name counters differ")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Error("same-name gauges differ")
	}
	h := r.Histogram("a", []float64{1, 2})
	if r.Histogram("a", []float64{9}) != h {
		t.Error("same-name histograms differ")
	}
}

// A nil registry and nil instruments must be inert and safe.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", LatencyBuckets())
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out live instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil instruments reported values")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
	if s.Ratio("hit", "miss") != 1 {
		t.Error("empty ratio should default to 1")
	}
}

// Histogram bucket boundaries: an observation equal to a bound lands in
// that bound's bucket; past the last bound lands in overflow.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 3.9, 4.0, 4.1, 100} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []int64{2, 2, 2, 2} // (<=1)=0.5,1.0  (<=2)=1.5,2.0  (<=4)=3.9,4.0  over=4.1,100
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 8 {
		t.Errorf("count = %d, want 8", s.Count)
	}
}

// Snapshots must be detached from later updates.
func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []float64{1, 10})
	c.Inc()
	h.Observe(0.5)
	snap := r.Snapshot()

	c.Add(100)
	h.Observe(0.5)
	h.Observe(5)

	if got := snap.Counters["c"]; got != 1 {
		t.Errorf("snapshot counter mutated: %d", got)
	}
	hs := snap.Histograms["h"]
	if hs.Count != 1 || hs.Counts[0] != 1 || hs.Counts[1] != 0 {
		t.Errorf("snapshot histogram mutated: %+v", hs)
	}
	if got := r.Snapshot().Counters["c"]; got != 101 {
		t.Errorf("registry lost updates: %d", got)
	}
}

func TestHistogramMeanAndQuantile(t *testing.T) {
	h := NewHistogram(LinearBuckets(10, 10, 10)) // 10..100
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.snapshot()
	if got := s.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("mean = %v, want 50.5", got)
	}
	if q := s.Quantile(0.5); q < 40 || q > 60 {
		t.Errorf("p50 = %v, want ~50", q)
	}
	if q := s.Quantile(0.99); q < 90 || q > 100 {
		t.Errorf("p99 = %v, want ~99", q)
	}
	if q := s.Quantile(0); q < 0 || q > 10 {
		t.Errorf("p0 = %v, want within first bucket", q)
	}
	var empty HistogramSnapshot
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty histogram stats should be zero")
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	for i, want := range []float64{1, 2, 4, 8} {
		if exp[i] != want {
			t.Errorf("ExpBuckets[%d] = %v, want %v", i, exp[i], want)
		}
	}
	lin := LinearBuckets(0, 5, 3)
	for i, want := range []float64{0, 5, 10} {
		if lin[i] != want {
			t.Errorf("LinearBuckets[%d] = %v, want %v", i, lin[i], want)
		}
	}
	lb := LatencyBuckets()
	if len(lb) == 0 || lb[0] != 0.001 {
		t.Errorf("LatencyBuckets head = %v", lb)
	}
}

// The snapshot must round-trip through JSON (the status endpoint's wire
// format).
func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("cache.hits").Add(3)
	r.Counter("cache.misses").Inc()
	r.Gauge("directory.version").Set(7)
	r.Histogram("lat", []float64{1}).Observe(0.5)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("cache.hits") != 3 || back.Gauges["directory.version"] != 7 {
		t.Errorf("round-trip lost data: %+v", back)
	}
	if got := back.Ratio("cache.hits", "cache.misses"); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("hit ratio = %v, want 0.75", got)
	}
}

// The no-op contract is enforced by benchmarks: enabled instruments must
// be allocation-free, and nil instruments must be branch-only.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 0.001)
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var r *Registry
	h := r.Histogram("h", LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 0.001)
	}
}

func TestInstrumentedPathsDoNotAllocate(t *testing.T) {
	c := NewRegistry().Counter("c")
	if n := testing.AllocsPerRun(100, c.Inc); n != 0 {
		t.Errorf("Counter.Inc allocates %v per op", n)
	}
	h := NewRegistry().Histogram("h", LatencyBuckets())
	if n := testing.AllocsPerRun(100, func() { h.Observe(0.25) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per op", n)
	}
}

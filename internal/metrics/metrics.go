// Package metrics is the fleet-observability layer: lock-free atomic
// counters and gauges, fixed-bucket histograms, and a named registry whose
// snapshots feed the athenad status endpoint and the simulator's per-run
// tables. It is pure stdlib and safe for concurrent use.
//
// The package is built around a disabled-is-free contract: every
// instrument is usable as a nil pointer, and a nil *Registry hands out nil
// instruments. A nil Inc/Add/Observe is a single branch — no allocation,
// no atomic, no lock — so instrumented hot paths cost nothing when
// observability is off. Enabled instruments are a single atomic RMW
// (counters, gauges) or a bucket search plus two atomic RMWs (histograms),
// still allocation-free.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; a nil *Counter is a valid no-op instrument.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are the caller's bug; they are applied
// as-is rather than paying for a check on the hot path).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level that can move both ways. The zero value
// is ready to use; a nil *Gauge is a valid no-op instrument.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the level by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// SetMax raises the level to v if it is above the current value.
// Concurrent SetMax calls commute, so a gauge fed by many writers (for
// example one directory replica per node mirroring its version) settles
// on the same value regardless of update order — a requirement for
// worker-count-independent simulation outcomes.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		old := g.v.Load()
		if v <= old || g.v.CompareAndSwap(old, v) {
			return
		}
	}
}

// Value returns the current level (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets chosen at creation:
// bucket i counts observations v <= bounds[i] (the first bucket whose
// upper bound admits v), and one extra overflow bucket counts everything
// past the last bound. The running sum lets snapshots report the mean.
// A nil *Histogram is a valid no-op instrument.
type Histogram struct {
	bounds []float64      // ascending upper bounds, immutable after creation
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// The bounds slice is copied and sorted defensively.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = overflow
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// snapshot copies the histogram's state. Buckets are loaded individually,
// so a snapshot taken during concurrent observation is internally
// approximate, but it is fully detached: later observations never mutate
// a snapshot already taken.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable, safe to share
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start, each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n evenly spaced upper bounds starting at start.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// LatencyBuckets is the default bound set for latency and staleness
// histograms expressed in seconds: 1ms to ~17.5 minutes, doubling.
func LatencyBuckets() []float64 { return ExpBuckets(0.001, 2, 21) }

// Registry is a named set of instruments. Lookups create on first use, so
// instrumented code never checks existence; resolve instruments once at
// construction and hold the pointers — the per-event path then touches no
// map and no lock. A nil *Registry hands out nil (no-op) instruments and
// an empty snapshot.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. An existing histogram keeps its original bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot captures every instrument's current value. The result is
// detached: later instrument updates do not alter it. A nil registry
// yields the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// Snapshot is a point-in-time copy of a registry, JSON-ready for the
// status endpoint and the simulator's per-run tables.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns a counter's value (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Ratio returns hit/(hit+miss) for two counters, or 1 when neither fired
// (an idle cache has served every request it got).
func (s Snapshot) Ratio(hit, miss string) float64 {
	h, m := float64(s.Counters[hit]), float64(s.Counters[miss])
	if h+m == 0 {
		return 1
	}
	return h / (h + m)
}

// HistogramSnapshot is a detached histogram state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra trailing
	// overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean is Sum/Count (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation inside the bucket that crosses the target rank. Values in
// the overflow bucket report the last finite bound.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var seen float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			if i >= len(h.Bounds) {
				return h.Bounds[len(h.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			frac := (rank - seen) / float64(c)
			return lo + frac*(h.Bounds[i]-lo)
		}
		seen += float64(c)
	}
	return h.Bounds[len(h.Bounds)-1]
}

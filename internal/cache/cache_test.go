package cache

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"athena/internal/names"
	"athena/internal/object"
	"athena/internal/trust"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func obj(name string, size int64, validity time.Duration) *object.Object {
	return &object.Object{
		ID:       object.ID{Name: names.MustParse(name), Version: 1},
		Size:     size,
		Created:  t0,
		Validity: validity,
	}
}

func TestStorePutGet(t *testing.T) {
	s := NewStore(1000)
	s.Put(obj("/a/x", 400, time.Minute), t0)
	got, ok := s.Get(names.MustParse("/a/x"), t0.Add(time.Second))
	if !ok || got.Size != 400 {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if _, ok := s.Get(names.MustParse("/a/y"), t0); ok {
		t.Error("Get hit for absent name")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStoreStaleEntriesDropped(t *testing.T) {
	s := NewStore(1000)
	s.Put(obj("/a/x", 100, time.Second), t0)
	if _, ok := s.Get(names.MustParse("/a/x"), t0.Add(2*time.Second)); ok {
		t.Fatal("stale object served")
	}
	if s.Len() != 0 {
		t.Errorf("stale entry still indexed, Len=%d", s.Len())
	}
	if s.Stats().StaleDrops != 1 {
		t.Errorf("StaleDrops = %d, want 1", s.Stats().StaleDrops)
	}
}

func TestStoreRejectsStaleAndOversized(t *testing.T) {
	s := NewStore(1000)
	stale := obj("/a/x", 100, time.Second)
	s.Put(stale, t0.Add(time.Minute)) // already stale at insert
	if s.Len() != 0 {
		t.Error("stale object cached")
	}
	s.Put(obj("/a/big", 5000, time.Minute), t0)
	if s.Len() != 0 {
		t.Error("oversized object cached")
	}
}

func TestStoreReplaceWithOversizeKeepsOld(t *testing.T) {
	s := NewStore(1000)
	s.Put(obj("/a/x", 400, time.Minute), t0)
	// A newer same-name version too big for the whole store must be
	// rejected without evicting the cached (still fresh) old version.
	big := obj("/a/x", 5000, time.Minute)
	big.ID.Version = 2
	s.Put(big, t0.Add(time.Second))
	got, ok := s.Get(names.MustParse("/a/x"), t0.Add(2*time.Second))
	if !ok {
		t.Fatal("old entry evicted by rejected oversize replacement")
	}
	if got.Size != 400 || got.ID.Version != 1 {
		t.Errorf("Get = size %d version %d, want the old 400-byte v1", got.Size, got.ID.Version)
	}
	if s.UsedBytes() != 400 {
		t.Errorf("UsedBytes = %d, want 400", s.UsedBytes())
	}
}

func TestStoreZeroCapacityDisables(t *testing.T) {
	s := NewStore(0)
	s.Put(obj("/a/x", 1, time.Minute), t0)
	if s.Len() != 0 {
		t.Error("zero-capacity store cached")
	}
}

func TestStoreUnboundedNegativeCapacity(t *testing.T) {
	s := NewStore(-1)
	for i := 0; i < 100; i++ {
		s.Put(obj(fmt.Sprintf("/a/n%d", i), 1_000_000, time.Minute), t0)
	}
	if s.Len() != 100 {
		t.Errorf("Len = %d, want 100", s.Len())
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(300)
	s.Put(obj("/a/1", 100, time.Minute), t0)
	s.Put(obj("/a/2", 100, time.Minute), t0)
	s.Put(obj("/a/3", 100, time.Minute), t0)
	// Touch /a/1 so /a/2 becomes LRU.
	if _, ok := s.Get(names.MustParse("/a/1"), t0); !ok {
		t.Fatal("warm-up get missed")
	}
	s.Put(obj("/a/4", 100, time.Minute), t0)
	if _, ok := s.Get(names.MustParse("/a/2"), t0); ok {
		t.Error("LRU entry survived eviction")
	}
	for _, n := range []string{"/a/1", "/a/3", "/a/4"} {
		if _, ok := s.Get(names.MustParse(n), t0); !ok {
			t.Errorf("%s evicted unexpectedly", n)
		}
	}
	if s.Stats().Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", s.Stats().Evictions)
	}
}

func TestStoreEvictsStaleBeforeFresh(t *testing.T) {
	s := NewStore(200)
	s.Put(obj("/a/stale", 100, time.Second), t0)
	s.Put(obj("/a/fresh", 100, time.Hour), t0)
	// At t0+2s the stale entry should be reaped to make room, keeping the
	// fresh one.
	s.Put(obj("/a/new", 100, time.Hour), t0.Add(2*time.Second))
	if _, ok := s.Get(names.MustParse("/a/fresh"), t0.Add(3*time.Second)); !ok {
		t.Error("fresh entry evicted while stale entry available")
	}
	if _, ok := s.Get(names.MustParse("/a/new"), t0.Add(3*time.Second)); !ok {
		t.Error("new entry not cached")
	}
}

func TestStoreReplaceSameName(t *testing.T) {
	s := NewStore(1000)
	s.Put(obj("/a/x", 100, time.Minute), t0)
	o2 := obj("/a/x", 200, time.Minute)
	o2.ID.Version = 2
	s.Put(o2, t0)
	if s.Len() != 1 || s.UsedBytes() != 200 {
		t.Errorf("Len=%d Used=%d, want 1/200", s.Len(), s.UsedBytes())
	}
	got, _ := s.Get(names.MustParse("/a/x"), t0)
	if got.ID.Version != 2 {
		t.Errorf("Version = %d, want 2", got.ID.Version)
	}
}

func TestStoreGetApprox(t *testing.T) {
	s := NewStore(1000)
	s.Put(obj("/city/market/south/cam1", 100, time.Minute), t0)
	got, ok := s.GetApprox(names.MustParse("/city/market/south/cam2"), 0.7, t0)
	if !ok || got.ID.Name.String() != "/city/market/south/cam1" {
		t.Fatalf("GetApprox = %v, %v", got, ok)
	}
	if s.Stats().ApproxHits != 1 {
		t.Errorf("ApproxHits = %d, want 1", s.Stats().ApproxHits)
	}
	if _, ok := s.GetApprox(names.MustParse("/rural/x"), 0.7, t0); ok {
		t.Error("GetApprox matched dissimilar name")
	}
	// Stale candidates are vetoed.
	s2 := NewStore(1000)
	s2.Put(obj("/city/market/south/cam1", 100, time.Second), t0)
	if _, ok := s2.GetApprox(names.MustParse("/city/market/south/cam2"), 0.7, t0.Add(time.Minute)); ok {
		t.Error("GetApprox served stale object")
	}
}

// Property: the store never exceeds capacity and never serves stale data,
// under random operations.
func TestStoreInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const capacity = 500
	s := NewStore(capacity)
	now := t0
	for i := 0; i < 3000; i++ {
		now = now.Add(time.Duration(rng.Intn(500)) * time.Millisecond)
		name := fmt.Sprintf("/p/%d", rng.Intn(30))
		switch rng.Intn(2) {
		case 0:
			o := obj(name, int64(50+rng.Intn(200)), time.Duration(rng.Intn(5))*time.Second)
			o.Created = now
			s.Put(o, now)
		case 1:
			if got, ok := s.Get(names.MustParse(name), now); ok && !got.FreshAt(now) {
				t.Fatal("served stale object")
			}
		}
		if s.UsedBytes() > capacity {
			t.Fatalf("capacity exceeded: %d > %d", s.UsedBytes(), capacity)
		}
	}
}

func makeLabel(t *testing.T, auth *trust.Authority, annotator, name string, value bool, validity time.Duration) *trust.Label {
	t.Helper()
	signer := auth.Register(annotator, []byte(annotator+"-secret"))
	l := &trust.Label{Name: name, Value: value, Computed: t0, Validity: validity}
	signer.Sign(l)
	return l
}

func TestLabelCache(t *testing.T) {
	auth := trust.NewAuthority()
	c := NewLabelCache()
	c.Put(makeLabel(t, auth, "ann1", "viableA", true, 10*time.Second))
	c.Put(makeLabel(t, auth, "ann2", "viableA", false, time.Minute))

	// TrustAll: freshest record wins (ann2's, longer validity).
	rec, ok := c.Get("viableA", trust.TrustAll(), t0.Add(time.Second))
	if !ok || rec.Annotator != "ann2" {
		t.Fatalf("Get = %v, %v", rec, ok)
	}
	// Restricted trust picks the trusted annotator even if less fresh.
	rec, ok = c.Get("viableA", trust.TrustOnly("ann1"), t0.Add(time.Second))
	if !ok || rec.Annotator != "ann1" {
		t.Fatalf("Get trusted-only = %v, %v", rec, ok)
	}
	// Nothing trusted: miss.
	if _, ok := c.Get("viableA", trust.TrustNone(), t0.Add(time.Second)); ok {
		t.Error("TrustNone got a record")
	}
	// Stale records pruned.
	if _, ok := c.Get("viableA", trust.TrustOnly("ann1"), t0.Add(30*time.Second)); ok {
		t.Error("stale record served")
	}
	if c.Len() != 1 {
		t.Errorf("Len after prune = %d, want 1", c.Len())
	}
}

func TestLabelCacheKeepsFreshest(t *testing.T) {
	auth := trust.NewAuthority()
	c := NewLabelCache()
	long := makeLabel(t, auth, "ann1", "x", true, time.Minute)
	short := makeLabel(t, auth, "ann1", "x", false, time.Second)
	c.Put(long)
	c.Put(short) // must not displace the longer-lived record
	rec, ok := c.Get("x", trust.TrustAll(), t0)
	if !ok || rec.Validity != time.Minute {
		t.Fatalf("Get = %v, %v; freshest record displaced", rec, ok)
	}
}

func BenchmarkStorePutGet(b *testing.B) {
	s := NewStore(1 << 20)
	namesList := make([]names.Name, 64)
	for i := range namesList {
		namesList[i] = names.MustParse(fmt.Sprintf("/bench/n%d", i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := namesList[i%len(namesList)]
		o := &object.Object{ID: object.ID{Name: n, Version: uint64(i)}, Size: 1000, Created: t0, Validity: time.Hour}
		s.Put(o, t0)
		s.Get(n, t0)
	}
}

// Property (testing/quick): the label cache never returns a record that is
// stale or untrusted, regardless of insertion order.
func TestQuickLabelCacheSafety(t *testing.T) {
	auth := trust.NewAuthority()
	signers := map[string]trust.Signer{
		"annA": auth.Register("annA", []byte("a")),
		"annB": auth.Register("annB", []byte("b")),
	}
	policy := trust.TrustOnly("annA")

	f := func(steps []struct {
		Ann      bool // false=annA, true=annB
		Value    bool
		Validity uint8
		Offset   uint8
	}) bool {
		c := NewLabelCache()
		now := t0
		for _, s := range steps {
			ann := "annA"
			if s.Ann {
				ann = "annB"
			}
			l := &trust.Label{
				Name:     "x",
				Value:    s.Value,
				Computed: now,
				Validity: time.Duration(s.Validity) * time.Second,
			}
			signers[ann].Sign(l)
			c.Put(l)
			now = now.Add(time.Duration(s.Offset) * time.Second)
			if rec, ok := c.Get("x", policy, now); ok {
				if rec.Annotator != "annA" {
					return false // untrusted record served
				}
				if !rec.FreshAt(now) {
					return false // stale record served
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Package cache implements the in-network stores of Sections VI-B and VI-D:
// a byte-capacity content store for evidence objects with freshness decay
// (stale entries age out of their validity intervals) and a label cache for
// shared annotation records. Eviction removes stale entries first, then
// least-recently-used fresh entries.
package cache

import (
	"container/list"
	"sort"
	"time"

	"athena/internal/metrics"
	"athena/internal/names"
	"athena/internal/object"
	"athena/internal/trust"
)

// Stats counts cache outcomes.
type Stats struct {
	// Hits counts fresh exact-name hits.
	Hits int64
	// ApproxHits counts hits served by approximate name substitution.
	ApproxHits int64
	// Misses counts lookups with no usable entry.
	Misses int64
	// StaleDrops counts entries evicted or rejected because they aged out.
	StaleDrops int64
	// Evictions counts capacity evictions of fresh entries.
	Evictions int64
}

// Metrics mirrors a cache's counters into a metrics registry. Any field
// may be nil (a nil counter is a no-op), so an uninstrumented cache pays
// only a nil check per event.
type Metrics struct {
	Hits, ApproxHits, Misses, StaleDrops, Evictions *metrics.Counter
}

// Store is a content store for evidence objects with a byte-capacity bound.
// It is not safe for concurrent use; each simulated node owns one.
type Store struct {
	capacity int64
	used     int64
	index    names.Trie[*entry]
	lru      list.List // front = most recently used
	stats    Stats
	m        Metrics
}

type entry struct {
	obj *object.Object
	elt *list.Element // element value is the entry itself
}

// NewStore returns a content store bounded to capacity bytes. A capacity
// of 0 disables caching (every Put is a no-op); negative capacity means
// unbounded.
func NewStore(capacity int64) *Store {
	return &Store{capacity: capacity}
}

// Stats returns a copy of the store's counters.
func (s *Store) Stats() Stats { return s.stats }

// Instrument mirrors the store's counters into m from now on.
func (s *Store) Instrument(m Metrics) { s.m = m }

// Len reports the number of cached objects.
func (s *Store) Len() int { return s.index.Len() }

// UsedBytes reports the bytes currently cached.
func (s *Store) UsedBytes() int64 { return s.used }

// Put caches an object (replacing any same-name entry), evicting stale
// entries first and then LRU entries until the object fits. Objects larger
// than the whole capacity, and objects already stale at now, are not
// cached.
func (s *Store) Put(o *object.Object, now time.Time) {
	if s.capacity == 0 || !o.FreshAt(now) {
		return
	}
	// Check fit before touching any existing same-name entry: replacing a
	// cached object with an over-capacity newer version must keep the old
	// (still fresh) entry rather than evicting it and caching nothing.
	if s.capacity > 0 && o.Size > s.capacity {
		return
	}
	if old, ok := s.index.Get(o.ID.Name); ok {
		s.removeEntry(o.ID.Name, old)
	}
	if s.capacity > 0 {
		s.reap(now)
		for s.used+o.Size > s.capacity {
			if !s.evictLRU() {
				return
			}
		}
	}
	e := &entry{obj: o}
	e.elt = s.lru.PushFront(e)
	s.index.Put(o.ID.Name, e)
	s.used += o.Size
}

// Get returns a fresh cached object by exact name, updating recency. A
// stale entry is dropped and counts as a miss.
func (s *Store) Get(name names.Name, now time.Time) (*object.Object, bool) {
	e, ok := s.index.Get(name)
	if !ok {
		s.stats.Misses++
		s.m.Misses.Inc()
		return nil, false
	}
	if !e.obj.FreshAt(now) {
		s.removeEntry(name, e)
		s.stats.StaleDrops++
		s.stats.Misses++
		s.m.StaleDrops.Inc()
		s.m.Misses.Inc()
		return nil, false
	}
	s.lru.MoveToFront(e.elt)
	s.stats.Hits++
	s.m.Hits.Inc()
	return e.obj, true
}

// GetApprox returns a fresh cached object whose name similarity to the
// query is at least minSimilarity — the Section V-A approximate
// substitution used for congestion control. Exact matches are preferred
// automatically (similarity 1).
func (s *Store) GetApprox(name names.Name, minSimilarity float64, now time.Time) (*object.Object, bool) {
	match, e, ok := s.index.Nearest(name, minSimilarity, func(_ names.Name, e *entry) bool {
		return e.obj.FreshAt(now)
	})
	if !ok {
		s.stats.Misses++
		s.m.Misses.Inc()
		return nil, false
	}
	s.lru.MoveToFront(e.elt)
	if match.Compare(name) == 0 {
		s.stats.Hits++
		s.m.Hits.Inc()
	} else {
		s.stats.ApproxHits++
		s.m.ApproxHits.Inc()
	}
	return e.obj, true
}

// Reap drops all entries stale at now and returns how many were dropped.
func (s *Store) Reap(now time.Time) int { return s.reap(now) }

func (s *Store) reap(now time.Time) int {
	// Scan the LRU list rather than walking the name index: the trie
	// walk re-materializes every stored name, while the list already
	// holds the entries. Removal is order-independent.
	dropped := 0
	var next *list.Element
	for elt := s.lru.Front(); elt != nil; elt = next {
		next = elt.Next()
		e, ok := elt.Value.(*entry)
		if !ok || e.obj.FreshAt(now) {
			continue
		}
		s.removeEntry(e.obj.ID.Name, e)
		s.stats.StaleDrops++
		s.m.StaleDrops.Inc()
		dropped++
	}
	return dropped
}

func (s *Store) evictLRU() bool {
	back := s.lru.Back()
	if back == nil {
		return false
	}
	e, ok := back.Value.(*entry)
	if !ok {
		return false
	}
	s.removeEntry(e.obj.ID.Name, e)
	s.stats.Evictions++
	s.m.Evictions.Inc()
	return true
}

func (s *Store) removeEntry(name names.Name, e *entry) {
	s.index.Delete(name)
	s.lru.Remove(e.elt)
	s.used -= e.obj.Size
}

// LabelCache stores shared label records (Section VI-D), keyed by label
// name and annotator, so consumers with different trust policies can each
// find an acceptable record.
type LabelCache struct {
	records map[string]map[string]*trust.Label // label -> annotator -> record
	stats   Stats
	m       Metrics
}

// NewLabelCache returns an empty label cache.
func NewLabelCache() *LabelCache {
	return &LabelCache{records: make(map[string]map[string]*trust.Label)}
}

// Stats returns a copy of the cache's counters.
func (c *LabelCache) Stats() Stats { return c.stats }

// Instrument mirrors the cache's counters into m from now on.
func (c *LabelCache) Instrument(m Metrics) { c.m = m }

// Len reports the number of cached records.
func (c *LabelCache) Len() int {
	n := 0
	for _, m := range c.records {
		n += len(m)
	}
	return n
}

// Put caches a record, keeping only the freshest record per
// (label, annotator).
func (c *LabelCache) Put(l *trust.Label) {
	byAnn := c.records[l.Name]
	if byAnn == nil {
		byAnn = make(map[string]*trust.Label)
		c.records[l.Name] = byAnn
	}
	if prev, ok := byAnn[l.Annotator]; ok && prev.Expiry().After(l.Expiry()) {
		return
	}
	byAnn[l.Annotator] = l
}

// Records returns every record still fresh at now, sorted by label name
// then annotator — the payload of a membership anti-entropy exchange
// (partition healing shares label caches, not just directories). Stale
// records encountered are pruned.
func (c *LabelCache) Records(now time.Time) []trust.Label {
	var out []trust.Label
	for label, byAnn := range c.records {
		for ann, rec := range byAnn {
			if !rec.FreshAt(now) {
				delete(byAnn, ann)
				c.stats.StaleDrops++
				c.m.StaleDrops.Inc()
				continue
			}
			out = append(out, *rec)
		}
		if len(byAnn) == 0 {
			delete(c.records, label)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Annotator < out[j].Annotator
	})
	return out
}

// Get returns the freshest record for label accepted by the policy, or
// false. Stale records encountered are pruned.
func (c *LabelCache) Get(label string, policy *trust.Policy, now time.Time) (*trust.Label, bool) {
	byAnn := c.records[label]
	var best *trust.Label
	for ann, rec := range byAnn {
		if !rec.FreshAt(now) {
			delete(byAnn, ann)
			c.stats.StaleDrops++
			c.m.StaleDrops.Inc()
			continue
		}
		if !policy.Trusts(ann) {
			continue
		}
		if best == nil || rec.Expiry().After(best.Expiry()) {
			best = rec
		}
	}
	if len(byAnn) == 0 {
		delete(c.records, label)
	}
	if best == nil {
		c.stats.Misses++
		c.m.Misses.Inc()
		return nil, false
	}
	c.stats.Hits++
	c.m.Hits.Inc()
	return best, true
}

package infomax

import (
	"fmt"
	"math/rand"
	"testing"

	"athena/internal/names"
)

func item(name string, size int64, utility float64) Item {
	return Item{Name: names.MustParse(name), Size: size, BaseUtility: utility}
}

func TestMarginalUtilityDiscountsBySimilarity(t *testing.T) {
	bridge1 := item("/city/bridge/north/cam1", 100, 10)
	// Nothing delivered: full utility.
	if got := MarginalUtility(bridge1, nil); got != 10 {
		t.Errorf("marginal = %v, want 10", got)
	}
	// Same name delivered: zero marginal (the 10-pictures-of-one-bridge
	// example).
	same := []names.Name{names.MustParse("/city/bridge/north/cam1")}
	if got := MarginalUtility(bridge1, same); got != 0 {
		t.Errorf("marginal of duplicate = %v, want 0", got)
	}
	// Sibling camera: 3/4 shared prefix -> quarter utility.
	sibling := []names.Name{names.MustParse("/city/bridge/north/cam2")}
	if got := MarginalUtility(bridge1, sibling); got != 2.5 {
		t.Errorf("marginal vs sibling = %v, want 2.5", got)
	}
	// Unrelated name: full utility.
	far := []names.Name{names.MustParse("/rural/farm/sensor")}
	if got := MarginalUtility(bridge1, far); got != 10 {
		t.Errorf("marginal vs unrelated = %v, want 10", got)
	}
}

func TestSetUtilitySubAdditive(t *testing.T) {
	one := []Item{item("/city/bridge/cam1", 100, 10)}
	ten := make([]Item, 10)
	for i := range ten {
		ten[i] = item("/city/bridge/cam1", 100, 10)
	}
	if u1, u10 := SetUtility(one), SetUtility(ten); u10 != u1 {
		t.Errorf("10 copies utility %v != single %v", u10, u1)
	}
	distinct := []Item{
		item("/a/x", 100, 10),
		item("/b/y", 100, 10),
	}
	if got := SetUtility(distinct); got != 20 {
		t.Errorf("distinct utility = %v, want additive 20", got)
	}
}

func TestGreedyPrefersDissimilarContent(t *testing.T) {
	items := []Item{
		item("/city/market/cam1", 100, 10),
		item("/city/market/cam2", 100, 10), // similar to cam1
		item("/city/harbor/cam1", 100, 10), // dissimilar
	}
	order := Greedy(items, 200) // room for two
	if len(order) != 2 {
		t.Fatalf("selected %d items", len(order))
	}
	picked := map[int]bool{order[0]: true, order[1]: true}
	if !picked[2] {
		t.Errorf("greedy skipped the dissimilar item: %v", order)
	}
	if picked[0] && picked[1] {
		t.Errorf("greedy picked both similar items: %v", order)
	}
}

func TestGreedyBudget(t *testing.T) {
	items := []Item{
		item("/a/big", 1000, 10),
		item("/b/small", 100, 5),
	}
	order := Greedy(items, 500)
	if len(order) != 1 || order[0] != 1 {
		t.Errorf("order = %v, want only the affordable item", order)
	}
	// Unlimited budget takes everything useful.
	if order := Greedy(items, 0); len(order) != 2 {
		t.Errorf("unlimited order = %v", order)
	}
}

func TestGreedySkipsZeroMarginal(t *testing.T) {
	items := []Item{
		item("/a/x", 100, 10),
		item("/a/x", 100, 10), // duplicate name: zero marginal once first sent
	}
	order := Greedy(items, 0)
	if len(order) != 1 {
		t.Errorf("order = %v, duplicate should be skipped", order)
	}
}

func TestRankForCachePutsDuplicatesLast(t *testing.T) {
	items := []Item{
		item("/a/x", 100, 3),
		item("/a/x", 100, 9), // duplicate name, higher base utility
		item("/b/y", 100, 5),
	}
	order := RankForCache(items)
	if len(order) != 3 {
		t.Fatalf("rank len = %d", len(order))
	}
	last := items[order[2]]
	if last.Name.String() != "/a/x" {
		t.Errorf("last ranked = %v, want a duplicate", last.Name)
	}
}

func TestDropRedundant(t *testing.T) {
	queue := []Item{
		item("/city/bridge/cam1", 100, 10),
		item("/city/bridge/cam1", 100, 10), // exact duplicate
		item("/city/bridge/cam2", 100, 10), // mostly redundant
		item("/rural/farm/s1", 100, 10),    // novel
	}
	keep, dropped := DropRedundant(queue, 5.0)
	if len(keep) != 2 || len(dropped) != 2 {
		t.Fatalf("keep=%d dropped=%d, want 2/2", len(keep), len(dropped))
	}
	if keep[0].Name.String() != "/city/bridge/cam1" || keep[1].Name.String() != "/rural/farm/s1" {
		t.Errorf("kept %v", keep)
	}
}

// Property: greedy with a budget never exceeds it, and its delivered
// utility is at least that of a random feasible selection (sanity, not the
// full submodular bound).
func TestGreedyBudgetAndQualityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	prefixes := []string{"/a/b", "/a/c", "/d/e", "/f/g"}
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(10)
		items := make([]Item, n)
		for i := range items {
			items[i] = item(
				fmt.Sprintf("%s/o%d", prefixes[rng.Intn(len(prefixes))], rng.Intn(4)),
				int64(50+rng.Intn(500)),
				1+rng.Float64()*9,
			)
		}
		budget := int64(200 + rng.Intn(1000))
		order := Greedy(items, budget)
		var used int64
		sel := make([]Item, 0, len(order))
		for _, i := range order {
			used += items[i].Size
			sel = append(sel, items[i])
		}
		if used > budget {
			t.Fatalf("budget exceeded: %d > %d", used, budget)
		}
		greedyU := SetUtility(sel)

		// Random feasible selection for comparison.
		perm := rng.Perm(n)
		var randSel []Item
		var randUsed int64
		for _, i := range perm {
			if randUsed+items[i].Size <= budget {
				randSel = append(randSel, items[i])
				randUsed += items[i].Size
			}
		}
		// Greedy doesn't always dominate an arbitrary selection (knapsack
		// effects), but it must achieve at least half of this heuristic's
		// utility in practice for these instances.
		if randU := SetUtility(randSel); greedyU < 0.5*randU {
			t.Fatalf("greedy utility %v << random %v", greedyU, randU)
		}
	}
}

// Property: marginal utility never increases as the delivered set grows
// (submodularity over the prefix-similarity proxy).
func TestSubmodularityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 200; trial++ {
		it := item(fmt.Sprintf("/p/%d/x", rng.Intn(5)), 100, 1+rng.Float64()*9)
		var delivered []names.Name
		prev := MarginalUtility(it, delivered)
		for k := 0; k < 8; k++ {
			delivered = append(delivered, names.MustParse(fmt.Sprintf("/p/%d/o%d", rng.Intn(5), rng.Intn(5))))
			cur := MarginalUtility(it, delivered)
			if cur > prev+1e-12 {
				t.Fatalf("marginal increased: %v -> %v", prev, cur)
			}
			prev = cur
		}
	}
}

func BenchmarkGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(55))
	items := make([]Item, 200)
	for i := range items {
		items[i] = item(fmt.Sprintf("/z/%d/o%d", rng.Intn(20), i), int64(100+rng.Intn(900)), rng.Float64()*10)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Greedy(items, 20_000)
	}
}

// Package infomax implements the information-maximizing triage of
// Section V-B: the utility of delivered data is sub-additive, with
// redundancy between objects estimated from their hierarchical-name
// similarity (longer shared prefix = more redundant). Greedy
// marginal-utility-per-byte selection decides what to forward across a
// bottleneck or keep in a cache under overload.
package infomax

import (
	"sort"

	"athena/internal/names"
)

// Item is a candidate object for triage.
type Item struct {
	// Name is the object's hierarchical semantic name.
	Name names.Name
	// Size is the transmission/storage cost in bytes.
	Size int64
	// BaseUtility is the item's standalone information value.
	BaseUtility float64
}

// MarginalUtility is the extra information an item adds given an
// already-delivered set: its base utility discounted by its maximum name
// similarity to any delivered item. Identical names add nothing; disjoint
// names add full value.
func MarginalUtility(item Item, delivered []names.Name) float64 {
	maxSim := 0.0
	for _, d := range delivered {
		if s := item.Name.Similarity(d); s > maxSim {
			maxSim = s
		}
	}
	return item.BaseUtility * (1 - maxSim)
}

// SetUtility is the sub-additive utility of delivering the items in the
// given order: the sum of each item's marginal utility over its
// predecessors. It is order-dependent in general; Greedy chooses an order
// that maximizes it under a budget.
func SetUtility(items []Item) float64 {
	total := 0.0
	var seen []names.Name
	for _, it := range items {
		total += MarginalUtility(it, seen)
		seen = append(seen, it.Name)
	}
	return total
}

// Greedy selects items to send across a bottleneck with a byte budget,
// maximizing delivered sub-additive utility: at each step it takes the
// affordable item with the highest marginal utility per byte, stopping
// when nothing affordable adds utility. It returns indices into items in
// transmission order. A budget <= 0 means unlimited.
func Greedy(items []Item, budget int64) []int {
	remaining := budget
	chosen := make([]bool, len(items))
	var delivered []names.Name
	var order []int
	for {
		bestIdx := -1
		bestScore := 0.0
		for i, it := range items {
			if chosen[i] {
				continue
			}
			if budget > 0 && it.Size > remaining {
				continue
			}
			mu := MarginalUtility(it, delivered)
			if mu <= 0 {
				continue
			}
			size := it.Size
			if size < 1 {
				size = 1
			}
			score := mu / float64(size)
			// Ties break by lower index for determinism.
			if score > bestScore {
				bestIdx, bestScore = i, score
			}
		}
		if bestIdx < 0 {
			return order
		}
		chosen[bestIdx] = true
		order = append(order, bestIdx)
		delivered = append(delivered, items[bestIdx].Name)
		if budget > 0 {
			remaining -= items[bestIdx].Size
		}
	}
}

// RankForCache orders items from most to least worth keeping under the
// same marginal-utility-per-byte rule, with no budget: a cache evicting
// from the tail of this order preferentially keeps dissimilar content
// (Section V-B: "cache more dissimilar content").
func RankForCache(items []Item) []int {
	order := Greedy(items, 0)
	if len(order) == len(items) {
		return order
	}
	// Items with zero marginal utility (exact-duplicate names) go last,
	// ordered by base utility then index.
	inOrder := make([]bool, len(items))
	for _, i := range order {
		inOrder[i] = true
	}
	var rest []int
	for i := range items {
		if !inOrder[i] {
			rest = append(rest, i)
		}
	}
	sort.SliceStable(rest, func(a, b int) bool {
		return items[rest[a]].BaseUtility > items[rest[b]].BaseUtility
	})
	return append(order, rest...)
}

// DropRedundant filters a transmission queue, keeping only items whose
// marginal utility over the kept set reaches minMarginal. Used by
// forwarders to refrain from sending partially redundant objects across a
// bottleneck.
func DropRedundant(items []Item, minMarginal float64) (keep []Item, dropped []Item) {
	var seen []names.Name
	for _, it := range items {
		if MarginalUtility(it, seen) >= minMarginal {
			keep = append(keep, it)
			seen = append(seen, it.Name)
		} else {
			dropped = append(dropped, it)
		}
	}
	return keep, dropped
}

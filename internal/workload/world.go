// Package workload generates the paper's Section VII evaluation scenario:
// a post-disaster Manhattan grid of road segments, ~30 Athena nodes whose
// cameras cover their surrounding segments, evidence objects of
// 100 KB–1 MB, a mix of slow- and fast-changing environment state, and
// route-finding decision queries (5 candidate routes each, 3 concurrent
// queries per node). Everything is deterministic in the seed.
package workload

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"time"
)

// Segment identifies one road segment between two adjacent intersections
// of the grid. Intersections are (row, col) points; a segment is either
// horizontal ((r,c)-(r,c+1)) or vertical ((r,c)-(r+1,c)).
type Segment struct {
	// Row, Col locate the segment's upper-left endpoint.
	Row, Col int
	// Horizontal is true for (r,c)-(r,c+1), false for (r,c)-(r+1,c).
	Horizontal bool
}

// Label is the decision label naming this segment's viability predicate:
// "viable:h:R-C" or "viable:v:R-C". Built by hand rather than
// fmt.Sprintf because scenario generation calls it in inner loops.
func (s Segment) Label() string {
	dir := byte('v')
	if s.Horizontal {
		dir = 'h'
	}
	b := make([]byte, 0, 16)
	b = append(b, "viable:"...)
	b = append(b, dir, ':')
	b = strconv.AppendInt(b, int64(s.Row), 10)
	b = append(b, '-')
	b = strconv.AppendInt(b, int64(s.Col), 10)
	return string(b)
}

// World is the ground-truth model of the physical environment: each
// segment label flips between viable/blocked states in epochs of its
// dynamics period. Values are pseudo-random but deterministic in
// (seed, label, epoch). It implements annotate.GroundTruth.
type World struct {
	seed       int64
	epoch      time.Time
	periods    map[string]time.Duration
	probViable float64
	fallback   time.Duration
}

// NewWorld builds a world anchored at epoch. probViable is the per-epoch
// probability a segment is viable; fallbackPeriod applies to labels
// without an explicit period.
func NewWorld(seed int64, epoch time.Time, probViable float64, fallbackPeriod time.Duration) *World {
	return &World{
		seed:       seed,
		epoch:      epoch,
		periods:    make(map[string]time.Duration),
		probViable: probViable,
		fallback:   fallbackPeriod,
	}
}

// SetPeriod fixes a label's dynamics period (its validity interval: state
// is constant within an epoch).
func (w *World) SetPeriod(label string, period time.Duration) {
	w.periods[label] = period
}

// Period returns the label's dynamics period.
func (w *World) Period(label string) time.Duration {
	if p, ok := w.periods[label]; ok {
		return p
	}
	return w.fallback
}

// LabelValue implements annotate.GroundTruth: the label's state during the
// epoch containing t.
func (w *World) LabelValue(label string, t time.Time) bool {
	period := w.Period(label)
	if period <= 0 {
		period = w.fallback
	}
	epochIdx := int64(0)
	if t.After(w.epoch) {
		epochIdx = int64(t.Sub(w.epoch) / period)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", w.seed, label, epochIdx)
	// Map the hash to [0,1) and compare against the viability prior. FNV
	// alone has weak high bits; run it through a splitmix64 finalizer
	// first.
	u := float64(mix64(h.Sum64())>>11) / float64(1<<53)
	return u < w.probViable
}

// mix64 is the splitmix64 finalizer, used to whiten FNV output.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"athena/internal/boolexpr"
	"athena/internal/names"
	"athena/internal/netsim"
	"athena/internal/object"
)

// Config parameterizes scenario generation. Defaults (via DefaultConfig)
// follow Section VII.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// GridRows, GridCols give the road-segment grid of intersections
	// (8x8 segments = 9x9 intersections in the paper's sense; we use the
	// segment counts directly).
	GridRows, GridCols int
	// Nodes is how many Athena nodes to deploy (paper: ~30).
	Nodes int
	// QueriesPerNode is the number of concurrent route queries each node
	// issues (paper: 3).
	QueriesPerNode int
	// RoutesPerQuery is the number of candidate routes per query
	// (paper: 5).
	RoutesPerQuery int
	// MinObjectBytes, MaxObjectBytes bound evidence object sizes
	// (paper: 100 KB to ~1 MB).
	MinObjectBytes, MaxObjectBytes int64
	// LinkBandwidth is the node-to-node bandwidth in bytes/sec
	// (paper: 1 Mbps = 125000 B/s).
	LinkBandwidth float64
	// LinkLatency is the per-hop propagation delay.
	LinkLatency time.Duration
	// FastRatio is the fraction of fast-changing segment labels — the
	// environment-dynamics knob of Figure 2.
	FastRatio float64
	// SlowValidity, FastValidity are the dynamics periods (= validity
	// intervals) of slow and fast labels.
	SlowValidity, FastValidity time.Duration
	// Deadline is each query's decision deadline.
	Deadline time.Duration
	// ProbViable is the per-epoch probability a segment is viable.
	ProbViable float64
}

// DefaultConfig returns the Section VII parameters.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		GridRows:       8,
		GridCols:       8,
		Nodes:          30,
		QueriesPerNode: 3,
		RoutesPerQuery: 5,
		MinObjectBytes: 100_000,
		MaxObjectBytes: 1_000_000,
		LinkBandwidth:  125_000, // 1 Mbps
		LinkLatency:    5 * time.Millisecond,
		FastRatio:      0.4,
		SlowValidity:   600 * time.Second,
		FastValidity:   18 * time.Second,
		Deadline:       55 * time.Second,
		ProbViable:     0.8,
	}
}

// Placement locates one Athena node at a grid intersection.
type Placement struct {
	// ID is the node's network identifier.
	ID string
	// Row, Col is the node's intersection.
	Row, Col int
}

// QuerySpec is one generated decision query.
type QuerySpec struct {
	// Origin is the issuing node.
	Origin string
	// Expr is the route-finding decision logic in DNF: OR over candidate
	// routes of AND over segment-viability labels.
	Expr boolexpr.DNF
	// Deadline is the decision deadline relative to issue time.
	Deadline time.Duration
}

// Scenario is a fully generated evaluation instance.
type Scenario struct {
	// Config echoes the generating configuration.
	Config Config
	// Placements are the deployed nodes.
	Placements []Placement
	// Links are the communication links (pairs of node ids).
	Links [][2]string
	// LinkCfg is the shared link configuration.
	LinkCfg netsim.LinkConfig
	// Sources describes each node's camera stream; index matches
	// Placements.
	Sources []object.Descriptor
	// Queries are all decision queries across all nodes.
	Queries []QuerySpec
	// World is the ground-truth environment model.
	World *World
	// Meta is the per-label planning metadata (cost, prior, validity).
	Meta boolexpr.MetaTable
	// LabelSources maps each segment label to the node ids whose cameras
	// cover it.
	LabelSources map[string][]string
	// Epoch is the world anchor and simulation start time.
	Epoch time.Time
}

// segmentsAround lists the road segments incident to intersection (r, c)
// within an R x C segment grid.
func segmentsAround(r, c, rows, cols int) []Segment {
	var out []Segment
	if c < cols {
		out = append(out, Segment{Row: r, Col: c, Horizontal: true})
	}
	if c > 0 {
		out = append(out, Segment{Row: r, Col: c - 1, Horizontal: true})
	}
	if r < rows {
		out = append(out, Segment{Row: r, Col: c, Horizontal: false})
	}
	if r > 0 {
		out = append(out, Segment{Row: r - 1, Col: c, Horizontal: false})
	}
	return out
}

// cameraView lists the segments a camera at (r, c) can examine: the
// node's immediate surrounding segments (those incident to its
// intersection, Section VII). One picture can still evidence several
// nearby segments at once (Section III-B).
func cameraView(r, c, rows, cols int) []Segment {
	return segmentsAround(r, c, rows, cols)
}

// Generate builds a deterministic scenario from the config.
func Generate(cfg Config) (*Scenario, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("workload: need at least 2 nodes, got %d", cfg.Nodes)
	}
	interRows, interCols := cfg.GridRows+1, cfg.GridCols+1
	if cfg.Nodes > interRows*interCols {
		return nil, fmt.Errorf("workload: %d nodes exceed %d intersections", cfg.Nodes, interRows*interCols)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	// Assign dynamics periods: FastRatio of all segment labels flip fast.
	world := NewWorld(cfg.Seed, epoch, cfg.ProbViable, cfg.SlowValidity)
	var allSegments []Segment
	for r := 0; r <= cfg.GridRows; r++ {
		for c := 0; c <= cfg.GridCols; c++ {
			if c < cfg.GridCols {
				allSegments = append(allSegments, Segment{Row: r, Col: c, Horizontal: true})
			}
			if r < cfg.GridRows {
				allSegments = append(allSegments, Segment{Row: r, Col: c, Horizontal: false})
			}
		}
	}
	fastCount := int(float64(len(allSegments)) * cfg.FastRatio)
	for i, idx := range rng.Perm(len(allSegments)) {
		seg := allSegments[idx]
		if i < fastCount {
			world.SetPeriod(seg.Label(), cfg.FastValidity)
		} else {
			world.SetPeriod(seg.Label(), cfg.SlowValidity)
		}
	}

	// Place nodes at distinct intersections.
	perm := rng.Perm(interRows * interCols)
	placements := make([]Placement, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		p := perm[i]
		placements[i] = Placement{
			ID:  fmt.Sprintf("athena%02d", i),
			Row: p / interCols,
			Col: p % interCols,
		}
	}

	// Communication links: mesh between nodes within Manhattan distance 4,
	// then stitch components together via closest pairs so the network is
	// connected.
	links := meshLinks(placements, 4)
	links = connectComponents(placements, links)

	// Camera sources: each node's stream covers the segments around its
	// intersection.
	sources := make([]object.Descriptor, cfg.Nodes)
	labelSources := make(map[string][]string)
	meta := make(boolexpr.MetaTable)
	for i, p := range placements {
		segs := cameraView(p.Row, p.Col, cfg.GridRows, cfg.GridCols)
		labels := make([]string, len(segs))
		validity := cfg.SlowValidity
		for j, s := range segs {
			labels[j] = s.Label()
			if wp := world.Period(s.Label()); wp < validity {
				validity = wp
			}
		}
		size := cfg.MinObjectBytes
		if cfg.MaxObjectBytes > cfg.MinObjectBytes {
			size += rng.Int63n(cfg.MaxObjectBytes - cfg.MinObjectBytes)
		}
		sources[i] = object.Descriptor{
			Name:     names.MustParse(fmt.Sprintf("/grid/cam/%d-%d", p.Row, p.Col)),
			Size:     size,
			Validity: validity,
			Labels:   labels,
			Source:   p.ID,
			ProbTrue: cfg.ProbViable,
		}
		for _, l := range labels {
			labelSources[l] = append(labelSources[l], p.ID)
		}
	}
	for l, srcs := range labelSources {
		sort.Strings(srcs)
		labelSources[l] = srcs
	}

	// Per-label metadata: cost is the cheapest covering camera's size.
	for l, srcs := range labelSources {
		minSize := int64(1 << 62)
		for _, sid := range srcs {
			for i := range placements {
				if placements[i].ID == sid && sources[i].Size < minSize {
					minSize = sources[i].Size
				}
			}
		}
		meta[l] = boolexpr.Meta{
			Cost:     float64(minSize),
			ProbTrue: cfg.ProbViable,
			Validity: world.Period(l),
		}
	}

	// Route queries. The covered road network is identical for every
	// query, so build it (and its Dijkstra scratch) once.
	g := newRouteGraph(cfg, placements)
	var queries []QuerySpec
	for i, p := range placements {
		for q := 0; q < cfg.QueriesPerNode; q++ {
			dest := placements[rng.Intn(len(placements))]
			for dest.Row == p.Row && dest.Col == p.Col {
				dest = placements[rng.Intn(len(placements))]
			}
			expr, ok := routeQuery(rng, g, p, dest, cfg)
			if !ok {
				continue
			}
			_ = i
			queries = append(queries, QuerySpec{
				Origin:   p.ID,
				Expr:     expr,
				Deadline: cfg.Deadline,
			})
		}
	}

	return &Scenario{
		Config:     cfg,
		Placements: placements,
		Links:      links,
		LinkCfg: netsim.LinkConfig{
			Bandwidth: cfg.LinkBandwidth,
			Latency:   cfg.LinkLatency,
		},
		Sources:      sources,
		Queries:      queries,
		World:        world,
		Meta:         meta,
		LabelSources: labelSources,
		Epoch:        epoch,
	}, nil
}

// routeGraph is the covered-segment road network used to compute
// candidate routes: only segments some camera can examine are usable.
// Intersections and segments are indexed into flat slices, and the
// Dijkstra scratch state is allocated once and reused across routes, so
// scenario generation stays off the allocator's hot path.
type routeGraph struct {
	rows, cols int
	interCols  int // cols + 1 intersections per row

	// coveredH[r*cols+c] marks horizontal segment (r,c); coveredV
	// indexes vertical segments by r*(cols+1)+c. labelH/labelV memoize
	// Segment.Label with the same indexing, and keyBuf is the reused
	// route-dedup key scratch.
	coveredH, coveredV []bool
	labelH, labelV     []string
	keyBuf             []byte

	// Dijkstra scratch, indexed by intersection (r*interCols + c).
	// dist < 0 means unreached; prevSeg/prevNode are only read along a
	// found path, every entry of which was just written.
	dist     []float64
	visited  []bool
	prevSeg  []Segment
	prevNode []int32
}

type inter struct{ r, c int }

// newRouteGraph builds the covered road network once per scenario: a
// segment is usable when some node's camera view includes it, which is
// exactly the set of labels with a non-empty source list.
func newRouteGraph(cfg Config, placements []Placement) *routeGraph {
	g := &routeGraph{
		rows:      cfg.GridRows,
		cols:      cfg.GridCols,
		interCols: cfg.GridCols + 1,
		coveredH:  make([]bool, (cfg.GridRows+1)*cfg.GridCols),
		coveredV:  make([]bool, cfg.GridRows*(cfg.GridCols+1)),
	}
	g.labelH = make([]string, len(g.coveredH))
	g.labelV = make([]string, len(g.coveredV))
	for r := 0; r <= g.rows; r++ {
		for c := 0; c < g.cols; c++ {
			g.labelH[r*g.cols+c] = Segment{Row: r, Col: c, Horizontal: true}.Label()
		}
	}
	for r := 0; r < g.rows; r++ {
		for c := 0; c <= g.cols; c++ {
			g.labelV[r*g.interCols+c] = Segment{Row: r, Col: c, Horizontal: false}.Label()
		}
	}
	n := (cfg.GridRows + 1) * (cfg.GridCols + 1)
	g.dist = make([]float64, n)
	g.visited = make([]bool, n)
	g.prevSeg = make([]Segment, n)
	g.prevNode = make([]int32, n)
	for _, p := range placements {
		for _, s := range cameraView(p.Row, p.Col, cfg.GridRows, cfg.GridCols) {
			g.setCovered(s)
		}
	}
	return g
}

func (g *routeGraph) setCovered(s Segment) {
	if s.Horizontal {
		g.coveredH[s.Row*g.cols+s.Col] = true
	} else {
		g.coveredV[s.Row*g.interCols+s.Col] = true
	}
}

func (g *routeGraph) interIdx(at inter) int32 { return int32(at.r*g.interCols + at.c) }

// segIdx flattens a segment into an index, with horizontals first.
func (g *routeGraph) segIdx(s Segment) int {
	if s.Horizontal {
		return s.Row*g.cols + s.Col
	}
	return len(g.labelH) + s.Row*g.interCols + s.Col
}

// label returns the memoized Segment.Label.
func (g *routeGraph) label(s Segment) string {
	if s.Horizontal {
		return g.labelH[s.Row*g.cols+s.Col]
	}
	return g.labelV[s.Row*g.interCols+s.Col]
}

// routeKey builds a dedup key from the route's segment sequence into the
// reused scratch buffer. Two candidate routes between the same endpoints
// are equal exactly when their segment sequences are, so this matches
// keying on the term's rendered string at a fraction of the cost.
func (g *routeGraph) routeKey(route []Segment) string {
	g.keyBuf = g.keyBuf[:0]
	for _, seg := range route {
		idx := g.segIdx(seg)
		g.keyBuf = append(g.keyBuf, byte(idx), byte(idx>>8))
	}
	return string(g.keyBuf)
}

// relax draws one perturbed weight for the edge (seg) from the extracted
// intersection best to t, improving t's tentative distance if shorter.
// The rng draw happens for every covered edge to an unvisited neighbor,
// improving or not, because the draw sequence is part of the scenario's
// determinism contract.
func (g *routeGraph) relax(rng *rand.Rand, best int32, seg Segment, t inter) {
	ti := g.interIdx(t)
	if g.visited[ti] {
		return
	}
	w := 1 + rng.Float64()*2
	nd := g.dist[best] + w
	if d := g.dist[ti]; d < 0 || nd < d {
		g.dist[ti] = nd
		g.prevSeg[ti] = seg
		g.prevNode[ti] = best
	}
}

// randomRoute finds a path from one intersection to another over covered
// segments, using Dijkstra under randomly perturbed edge weights so
// repeated calls yield diverse plausible routes. The relaxation order —
// and therefore the rng draw sequence — matches segmentsAround: the
// east, west, south, then north segment of the extracted intersection,
// drawing one weight per covered edge to an unvisited neighbor.
func (g *routeGraph) randomRoute(rng *rand.Rand, from, to inter) []Segment {
	for i := range g.dist {
		g.dist[i] = -1
		g.visited[i] = false
	}
	g.dist[g.interIdx(from)] = 0
	target := g.interIdx(to)
	for {
		// Extract the unvisited node with minimum distance (grids are
		// tiny; linear scan is fine and deterministic). Scanning in
		// increasing index order breaks distance ties toward the smaller
		// (row, col).
		best := int32(-1)
		for i, d := range g.dist {
			if d < 0 || g.visited[i] {
				continue
			}
			if best < 0 || d < g.dist[best] {
				best = int32(i)
			}
		}
		if best < 0 {
			return nil // unreachable
		}
		if best == target {
			break
		}
		g.visited[best] = true
		at := inter{int(best) / g.interCols, int(best) % g.interCols}
		if at.c < g.cols && g.coveredH[at.r*g.cols+at.c] {
			g.relax(rng, best, Segment{Row: at.r, Col: at.c, Horizontal: true}, inter{at.r, at.c + 1})
		}
		if at.c > 0 && g.coveredH[at.r*g.cols+at.c-1] {
			g.relax(rng, best, Segment{Row: at.r, Col: at.c - 1, Horizontal: true}, inter{at.r, at.c - 1})
		}
		if at.r < g.rows && g.coveredV[at.r*g.interCols+at.c] {
			g.relax(rng, best, Segment{Row: at.r, Col: at.c, Horizontal: false}, inter{at.r + 1, at.c})
		}
		if at.r > 0 && g.coveredV[(at.r-1)*g.interCols+at.c] {
			g.relax(rng, best, Segment{Row: at.r - 1, Col: at.c, Horizontal: false}, inter{at.r - 1, at.c})
		}
	}
	var segs []Segment
	start := g.interIdx(from)
	for at := target; at != start; at = g.prevNode[at] {
		segs = append(segs, g.prevSeg[at])
	}
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return segs
}

// routeQuery builds a candidate-route DNF between two intersections over
// the covered road network (5 candidate routes per Section VII).
func routeQuery(rng *rand.Rand, g *routeGraph, from, to Placement, cfg Config) (boolexpr.DNF, bool) {
	var terms []boolexpr.Term
	seen := make(map[string]bool)
	for attempt := 0; len(terms) < cfg.RoutesPerQuery && attempt < cfg.RoutesPerQuery*4; attempt++ {
		route := g.randomRoute(rng, inter{from.Row, from.Col}, inter{to.Row, to.Col})
		if len(route) == 0 {
			break // unreachable; no more attempts will help
		}
		if key := g.routeKey(route); !seen[key] {
			seen[key] = true
			lits := make([]boolexpr.Literal, 0, len(route))
			for _, seg := range route {
				lits = append(lits, boolexpr.Literal{Label: g.label(seg)})
			}
			terms = append(terms, boolexpr.Term{Literals: lits})
		}
	}
	if len(terms) == 0 {
		return boolexpr.DNF{}, false
	}
	return boolexpr.DNF{Terms: terms}, true
}

func manhattan(a, b Placement) int {
	dr, dc := a.Row-b.Row, a.Col-b.Col
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

// meshLinks links every node pair within the given Manhattan radius.
func meshLinks(placements []Placement, radius int) [][2]string {
	var links [][2]string
	for i := range placements {
		for j := i + 1; j < len(placements); j++ {
			if manhattan(placements[i], placements[j]) <= radius {
				links = append(links, [2]string{placements[i].ID, placements[j].ID})
			}
		}
	}
	return links
}

// connectComponents adds minimum-distance links until the node graph is
// connected.
func connectComponents(placements []Placement, links [][2]string) [][2]string {
	idx := make(map[string]int, len(placements))
	for i, p := range placements {
		idx[p.ID] = i
	}
	parent := make([]int, len(placements))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, l := range links {
		union(idx[l[0]], idx[l[1]])
	}
	for {
		// Find the closest cross-component pair.
		bestI, bestJ, bestD := -1, -1, 1<<30
		for i := range placements {
			for j := i + 1; j < len(placements); j++ {
				if find(i) == find(j) {
					continue
				}
				if d := manhattan(placements[i], placements[j]); d < bestD {
					bestI, bestJ, bestD = i, j, d
				}
			}
		}
		if bestI < 0 {
			return links // connected
		}
		links = append(links, [2]string{placements[bestI].ID, placements[bestJ].ID})
		union(bestI, bestJ)
	}
}

// BuildNetwork instantiates the scenario's topology on a netsim network.
func (s *Scenario) BuildNetwork(net *netsim.Network) error {
	for _, p := range s.Placements {
		net.AddNode(p.ID, nil)
	}
	for _, l := range s.Links {
		if err := net.AddLink(l[0], l[1], s.LinkCfg); err != nil {
			return fmt.Errorf("workload: add link %v: %w", l, err)
		}
	}
	return nil
}

package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"athena/internal/boolexpr"
	"athena/internal/names"
	"athena/internal/netsim"
	"athena/internal/object"
)

// Config parameterizes scenario generation. Defaults (via DefaultConfig)
// follow Section VII.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// GridRows, GridCols give the road-segment grid of intersections
	// (8x8 segments = 9x9 intersections in the paper's sense; we use the
	// segment counts directly).
	GridRows, GridCols int
	// Nodes is how many Athena nodes to deploy (paper: ~30).
	Nodes int
	// QueriesPerNode is the number of concurrent route queries each node
	// issues (paper: 3).
	QueriesPerNode int
	// RoutesPerQuery is the number of candidate routes per query
	// (paper: 5).
	RoutesPerQuery int
	// MinObjectBytes, MaxObjectBytes bound evidence object sizes
	// (paper: 100 KB to ~1 MB).
	MinObjectBytes, MaxObjectBytes int64
	// LinkBandwidth is the node-to-node bandwidth in bytes/sec
	// (paper: 1 Mbps = 125000 B/s).
	LinkBandwidth float64
	// LinkLatency is the per-hop propagation delay.
	LinkLatency time.Duration
	// FastRatio is the fraction of fast-changing segment labels — the
	// environment-dynamics knob of Figure 2.
	FastRatio float64
	// SlowValidity, FastValidity are the dynamics periods (= validity
	// intervals) of slow and fast labels.
	SlowValidity, FastValidity time.Duration
	// Deadline is each query's decision deadline.
	Deadline time.Duration
	// ProbViable is the per-epoch probability a segment is viable.
	ProbViable float64
}

// DefaultConfig returns the Section VII parameters.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		GridRows:       8,
		GridCols:       8,
		Nodes:          30,
		QueriesPerNode: 3,
		RoutesPerQuery: 5,
		MinObjectBytes: 100_000,
		MaxObjectBytes: 1_000_000,
		LinkBandwidth:  125_000, // 1 Mbps
		LinkLatency:    5 * time.Millisecond,
		FastRatio:      0.4,
		SlowValidity:   600 * time.Second,
		FastValidity:   18 * time.Second,
		Deadline:       55 * time.Second,
		ProbViable:     0.8,
	}
}

// Placement locates one Athena node at a grid intersection.
type Placement struct {
	// ID is the node's network identifier.
	ID string
	// Row, Col is the node's intersection.
	Row, Col int
}

// QuerySpec is one generated decision query.
type QuerySpec struct {
	// Origin is the issuing node.
	Origin string
	// Expr is the route-finding decision logic in DNF: OR over candidate
	// routes of AND over segment-viability labels.
	Expr boolexpr.DNF
	// Deadline is the decision deadline relative to issue time.
	Deadline time.Duration
}

// Scenario is a fully generated evaluation instance.
type Scenario struct {
	// Config echoes the generating configuration.
	Config Config
	// Placements are the deployed nodes.
	Placements []Placement
	// Links are the communication links (pairs of node ids).
	Links [][2]string
	// LinkCfg is the shared link configuration.
	LinkCfg netsim.LinkConfig
	// Sources describes each node's camera stream; index matches
	// Placements.
	Sources []object.Descriptor
	// Queries are all decision queries across all nodes.
	Queries []QuerySpec
	// World is the ground-truth environment model.
	World *World
	// Meta is the per-label planning metadata (cost, prior, validity).
	Meta boolexpr.MetaTable
	// LabelSources maps each segment label to the node ids whose cameras
	// cover it.
	LabelSources map[string][]string
	// Epoch is the world anchor and simulation start time.
	Epoch time.Time
}

// segmentsAround lists the road segments incident to intersection (r, c)
// within an R x C segment grid.
func segmentsAround(r, c, rows, cols int) []Segment {
	var out []Segment
	if c < cols {
		out = append(out, Segment{Row: r, Col: c, Horizontal: true})
	}
	if c > 0 {
		out = append(out, Segment{Row: r, Col: c - 1, Horizontal: true})
	}
	if r < rows {
		out = append(out, Segment{Row: r, Col: c, Horizontal: false})
	}
	if r > 0 {
		out = append(out, Segment{Row: r - 1, Col: c, Horizontal: false})
	}
	return out
}

// cameraView lists the segments a camera at (r, c) can examine: the
// node's immediate surrounding segments (those incident to its
// intersection, Section VII). One picture can still evidence several
// nearby segments at once (Section III-B).
func cameraView(r, c, rows, cols int) []Segment {
	return segmentsAround(r, c, rows, cols)
}

// Generate builds a deterministic scenario from the config.
func Generate(cfg Config) (*Scenario, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("workload: need at least 2 nodes, got %d", cfg.Nodes)
	}
	interRows, interCols := cfg.GridRows+1, cfg.GridCols+1
	if cfg.Nodes > interRows*interCols {
		return nil, fmt.Errorf("workload: %d nodes exceed %d intersections", cfg.Nodes, interRows*interCols)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	// Assign dynamics periods: FastRatio of all segment labels flip fast.
	world := NewWorld(cfg.Seed, epoch, cfg.ProbViable, cfg.SlowValidity)
	var allSegments []Segment
	for r := 0; r <= cfg.GridRows; r++ {
		for c := 0; c <= cfg.GridCols; c++ {
			if c < cfg.GridCols {
				allSegments = append(allSegments, Segment{Row: r, Col: c, Horizontal: true})
			}
			if r < cfg.GridRows {
				allSegments = append(allSegments, Segment{Row: r, Col: c, Horizontal: false})
			}
		}
	}
	fastCount := int(float64(len(allSegments)) * cfg.FastRatio)
	for i, idx := range rng.Perm(len(allSegments)) {
		seg := allSegments[idx]
		if i < fastCount {
			world.SetPeriod(seg.Label(), cfg.FastValidity)
		} else {
			world.SetPeriod(seg.Label(), cfg.SlowValidity)
		}
	}

	// Place nodes at distinct intersections.
	perm := rng.Perm(interRows * interCols)
	placements := make([]Placement, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		p := perm[i]
		placements[i] = Placement{
			ID:  fmt.Sprintf("athena%02d", i),
			Row: p / interCols,
			Col: p % interCols,
		}
	}

	// Communication links: mesh between nodes within Manhattan distance 4,
	// then stitch components together via closest pairs so the network is
	// connected.
	links := meshLinks(placements, 4)
	links = connectComponents(placements, links)

	// Camera sources: each node's stream covers the segments around its
	// intersection.
	sources := make([]object.Descriptor, cfg.Nodes)
	labelSources := make(map[string][]string)
	meta := make(boolexpr.MetaTable)
	for i, p := range placements {
		segs := cameraView(p.Row, p.Col, cfg.GridRows, cfg.GridCols)
		labels := make([]string, len(segs))
		validity := cfg.SlowValidity
		for j, s := range segs {
			labels[j] = s.Label()
			if wp := world.Period(s.Label()); wp < validity {
				validity = wp
			}
		}
		size := cfg.MinObjectBytes
		if cfg.MaxObjectBytes > cfg.MinObjectBytes {
			size += rng.Int63n(cfg.MaxObjectBytes - cfg.MinObjectBytes)
		}
		sources[i] = object.Descriptor{
			Name:     names.MustParse(fmt.Sprintf("/grid/cam/%d-%d", p.Row, p.Col)),
			Size:     size,
			Validity: validity,
			Labels:   labels,
			Source:   p.ID,
			ProbTrue: cfg.ProbViable,
		}
		for _, l := range labels {
			labelSources[l] = append(labelSources[l], p.ID)
		}
	}
	for l, srcs := range labelSources {
		sort.Strings(srcs)
		labelSources[l] = srcs
	}

	// Per-label metadata: cost is the cheapest covering camera's size.
	for l, srcs := range labelSources {
		minSize := int64(1 << 62)
		for _, sid := range srcs {
			for i := range placements {
				if placements[i].ID == sid && sources[i].Size < minSize {
					minSize = sources[i].Size
				}
			}
		}
		meta[l] = boolexpr.Meta{
			Cost:     float64(minSize),
			ProbTrue: cfg.ProbViable,
			Validity: world.Period(l),
		}
	}

	// Route queries.
	var queries []QuerySpec
	for i, p := range placements {
		for q := 0; q < cfg.QueriesPerNode; q++ {
			dest := placements[rng.Intn(len(placements))]
			for dest.Row == p.Row && dest.Col == p.Col {
				dest = placements[rng.Intn(len(placements))]
			}
			expr, ok := routeQuery(rng, p, dest, cfg, labelSources)
			if !ok {
				continue
			}
			_ = i
			queries = append(queries, QuerySpec{
				Origin:   p.ID,
				Expr:     expr,
				Deadline: cfg.Deadline,
			})
		}
	}

	return &Scenario{
		Config:     cfg,
		Placements: placements,
		Links:      links,
		LinkCfg: netsim.LinkConfig{
			Bandwidth: cfg.LinkBandwidth,
			Latency:   cfg.LinkLatency,
		},
		Sources:      sources,
		Queries:      queries,
		World:        world,
		Meta:         meta,
		LabelSources: labelSources,
		Epoch:        epoch,
	}, nil
}

// routeGraph is the covered-segment road network used to compute
// candidate routes: only segments some camera can examine are usable.
type routeGraph struct {
	rows, cols int
	covered    map[string]bool
}

type inter struct{ r, c int }

// edges lists the covered segments incident to an intersection with the
// neighbor intersection they lead to.
func (g *routeGraph) edges(at inter) []struct {
	seg Segment
	to  inter
} {
	var out []struct {
		seg Segment
		to  inter
	}
	for _, s := range segmentsAround(at.r, at.c, g.rows, g.cols) {
		if !g.covered[s.Label()] {
			continue
		}
		var to inter
		if s.Horizontal {
			if s.Row == at.r && s.Col == at.c {
				to = inter{at.r, at.c + 1}
			} else {
				to = inter{at.r, at.c - 1}
			}
		} else {
			if s.Row == at.r && s.Col == at.c {
				to = inter{at.r + 1, at.c}
			} else {
				to = inter{at.r - 1, at.c}
			}
		}
		out = append(out, struct {
			seg Segment
			to  inter
		}{s, to})
	}
	return out
}

// randomRoute finds a path from one intersection to another over covered
// segments, using Dijkstra under randomly perturbed edge weights so
// repeated calls yield diverse plausible routes.
func (g *routeGraph) randomRoute(rng *rand.Rand, from, to inter) []Segment {
	type state struct {
		at   inter
		dist float64
	}
	dist := map[inter]float64{from: 0}
	prevSeg := map[inter]Segment{}
	prevNode := map[inter]inter{}
	visited := map[inter]bool{}
	for {
		// Extract the unvisited node with minimum distance (grids are
		// tiny; linear scan is fine and deterministic).
		best := state{dist: -1}
		for at, d := range dist {
			if visited[at] {
				continue
			}
			if best.dist < 0 || d < best.dist || (d == best.dist && (at.r < best.at.r || (at.r == best.at.r && at.c < best.at.c))) {
				best = state{at: at, dist: d}
			}
		}
		if best.dist < 0 {
			return nil // unreachable
		}
		if best.at == to {
			break
		}
		visited[best.at] = true
		for _, e := range g.edges(best.at) {
			if visited[e.to] {
				continue
			}
			w := 1 + rng.Float64()*2
			nd := best.dist + w
			if d, ok := dist[e.to]; !ok || nd < d {
				dist[e.to] = nd
				prevSeg[e.to] = e.seg
				prevNode[e.to] = best.at
			}
		}
	}
	var segs []Segment
	for at := to; at != from; at = prevNode[at] {
		segs = append(segs, prevSeg[at])
	}
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return segs
}

// routeQuery builds a candidate-route DNF between two intersections over
// the covered road network (5 candidate routes per Section VII).
func routeQuery(rng *rand.Rand, from, to Placement, cfg Config, labelSources map[string][]string) (boolexpr.DNF, bool) {
	g := &routeGraph{rows: cfg.GridRows, cols: cfg.GridCols, covered: make(map[string]bool)}
	for l, srcs := range labelSources {
		if len(srcs) > 0 {
			g.covered[l] = true
		}
	}
	var terms []boolexpr.Term
	seen := make(map[string]bool)
	for attempt := 0; len(terms) < cfg.RoutesPerQuery && attempt < cfg.RoutesPerQuery*4; attempt++ {
		route := g.randomRoute(rng, inter{from.Row, from.Col}, inter{to.Row, to.Col})
		if len(route) == 0 {
			break // unreachable; no more attempts will help
		}
		lits := make([]boolexpr.Literal, 0, len(route))
		for _, seg := range route {
			lits = append(lits, boolexpr.Literal{Label: seg.Label()})
		}
		term := boolexpr.Term{Literals: lits}
		if key := term.String(); !seen[key] {
			seen[key] = true
			terms = append(terms, term)
		}
	}
	if len(terms) == 0 {
		return boolexpr.DNF{}, false
	}
	return boolexpr.DNF{Terms: terms}, true
}

func manhattan(a, b Placement) int {
	dr, dc := a.Row-b.Row, a.Col-b.Col
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

// meshLinks links every node pair within the given Manhattan radius.
func meshLinks(placements []Placement, radius int) [][2]string {
	var links [][2]string
	for i := range placements {
		for j := i + 1; j < len(placements); j++ {
			if manhattan(placements[i], placements[j]) <= radius {
				links = append(links, [2]string{placements[i].ID, placements[j].ID})
			}
		}
	}
	return links
}

// connectComponents adds minimum-distance links until the node graph is
// connected.
func connectComponents(placements []Placement, links [][2]string) [][2]string {
	idx := make(map[string]int, len(placements))
	for i, p := range placements {
		idx[p.ID] = i
	}
	parent := make([]int, len(placements))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, l := range links {
		union(idx[l[0]], idx[l[1]])
	}
	for {
		// Find the closest cross-component pair.
		bestI, bestJ, bestD := -1, -1, 1<<30
		for i := range placements {
			for j := i + 1; j < len(placements); j++ {
				if find(i) == find(j) {
					continue
				}
				if d := manhattan(placements[i], placements[j]); d < bestD {
					bestI, bestJ, bestD = i, j, d
				}
			}
		}
		if bestI < 0 {
			return links // connected
		}
		links = append(links, [2]string{placements[bestI].ID, placements[bestJ].ID})
		union(bestI, bestJ)
	}
}

// BuildNetwork instantiates the scenario's topology on a netsim network.
func (s *Scenario) BuildNetwork(net *netsim.Network) error {
	for _, p := range s.Placements {
		net.AddNode(p.ID, nil)
	}
	for _, l := range s.Links {
		if err := net.AddLink(l[0], l[1], s.LinkCfg); err != nil {
			return fmt.Errorf("workload: add link %v: %w", l, err)
		}
	}
	return nil
}

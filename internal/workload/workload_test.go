package workload

import (
	"testing"
	"time"

	"athena/internal/boolexpr"
	"athena/internal/netsim"
	"athena/internal/simclock"
)

func TestWorldDeterministicAndEpochal(t *testing.T) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	w1 := NewWorld(7, epoch, 0.8, time.Minute)
	w2 := NewWorld(7, epoch, 0.8, time.Minute)
	w1.SetPeriod("x", 10*time.Second)
	w2.SetPeriod("x", 10*time.Second)

	for i := 0; i < 100; i++ {
		at := epoch.Add(time.Duration(i) * 3 * time.Second)
		if w1.LabelValue("x", at) != w2.LabelValue("x", at) {
			t.Fatal("same seed worlds disagree")
		}
	}
	// Constant within an epoch.
	if w1.LabelValue("x", epoch.Add(time.Second)) != w1.LabelValue("x", epoch.Add(9*time.Second)) {
		t.Error("value changed within one epoch")
	}
	// Different seeds disagree somewhere.
	w3 := NewWorld(8, epoch, 0.8, time.Minute)
	w3.SetPeriod("x", 10*time.Second)
	diff := false
	for i := 0; i < 200 && !diff; i++ {
		at := epoch.Add(time.Duration(i) * 10 * time.Second)
		diff = w1.LabelValue("x", at) != w3.LabelValue("x", at)
	}
	if !diff {
		t.Error("different seeds never disagree")
	}
}

func TestWorldViabilityPrior(t *testing.T) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	w := NewWorld(3, epoch, 0.8, time.Second)
	viable := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if w.LabelValue("seg", epoch.Add(time.Duration(i)*time.Second)) {
			viable++
		}
	}
	rate := float64(viable) / n
	if rate < 0.75 || rate > 0.85 {
		t.Errorf("viability rate = %v, want ~0.8", rate)
	}
}

func TestSegmentLabels(t *testing.T) {
	h := Segment{Row: 2, Col: 3, Horizontal: true}
	v := Segment{Row: 2, Col: 3, Horizontal: false}
	if h.Label() == v.Label() {
		t.Error("horizontal and vertical labels collide")
	}
	if h.Label() != "viable:h:2-3" {
		t.Errorf("label = %q", h.Label())
	}
}

func TestGenerateScenarioShape(t *testing.T) {
	cfg := DefaultConfig()
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Placements) != 30 {
		t.Errorf("nodes = %d", len(s.Placements))
	}
	if len(s.Queries) == 0 || len(s.Queries) > 30*3 {
		t.Errorf("queries = %d", len(s.Queries))
	}
	for _, q := range s.Queries {
		if len(q.Expr.Terms) == 0 || len(q.Expr.Terms) > cfg.RoutesPerQuery {
			t.Fatalf("query has %d routes", len(q.Expr.Terms))
		}
		// Every label in every query must be coverable.
		for _, l := range q.Expr.Labels() {
			if len(s.LabelSources[l]) == 0 {
				t.Fatalf("label %s has no sources", l)
			}
			if _, ok := s.Meta[l]; !ok {
				t.Fatalf("label %s has no metadata", l)
			}
		}
	}
	for _, src := range s.Sources {
		if src.Size < cfg.MinObjectBytes || src.Size > cfg.MaxObjectBytes {
			t.Errorf("object size %d out of range", src.Size)
		}
		if len(src.Labels) == 0 {
			t.Error("camera covers no segments")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Queries) != len(b.Queries) {
		t.Fatal("query counts differ across identical seeds")
	}
	for i := range a.Queries {
		if a.Queries[i].Expr.String() != b.Queries[i].Expr.String() {
			t.Fatalf("query %d differs", i)
		}
	}
	if len(a.Links) != len(b.Links) {
		t.Fatal("links differ")
	}
}

func TestFastRatioControlsPeriods(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FastRatio = 0
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for l := range s.LabelSources {
		if s.World.Period(l) != cfg.SlowValidity {
			t.Fatalf("label %s fast at ratio 0", l)
		}
	}
	cfg.FastRatio = 1
	s, err = Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for l := range s.LabelSources {
		if s.World.Period(l) != cfg.FastValidity {
			t.Fatalf("label %s slow at ratio 1", l)
		}
	}
}

func TestBuildNetworkConnected(t *testing.T) {
	s, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sched := simclock.New(s.Epoch)
	net := netsim.New(sched)
	if err := s.BuildNetwork(net); err != nil {
		t.Fatal(err)
	}
	nodes := net.Nodes()
	if len(nodes) != 30 {
		t.Fatalf("network nodes = %d", len(nodes))
	}
	for _, n := range nodes {
		if _, err := net.PathLength(n, nodes[0]); err != nil {
			t.Fatalf("node %s unreachable: %v", n, err)
		}
	}
}

func TestStaircaseRouteConnects(t *testing.T) {
	s, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check: each query's routes are non-empty conjunctions of
	// viability predicates.
	for _, q := range s.Queries[:5] {
		for _, term := range q.Expr.Terms {
			if len(term.Literals) == 0 {
				t.Fatal("empty route term")
			}
			for _, lit := range term.Literals {
				if lit.Negated {
					t.Fatal("route literal negated")
				}
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 1
	if _, err := Generate(cfg); err == nil {
		t.Error("accepted 1 node")
	}
	cfg = DefaultConfig()
	cfg.Nodes = 500
	if _, err := Generate(cfg); err == nil {
		t.Error("accepted more nodes than intersections")
	}
}

func TestMetaMatchesWorldPeriods(t *testing.T) {
	s, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for l, m := range s.Meta {
		if m.Validity != s.World.Period(l) {
			t.Fatalf("meta validity %v != world period %v for %s", m.Validity, s.World.Period(l), l)
		}
		if m.Cost <= 0 {
			t.Fatalf("non-positive cost for %s", l)
		}
	}
	var _ boolexpr.MetaTable = s.Meta
}

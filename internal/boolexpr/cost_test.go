package boolexpr

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestWorkedExampleSecIIIA reproduces the paper's Section III-A numeric
// example: conditions h (4 MB, 60% true) and k (5 MB, 20% true). The
// (1-p)/C rule fetches k first; expected cost 5.8 MB vs 7 MB the other way.
func TestWorkedExampleSecIIIA(t *testing.T) {
	m := MetaTable{
		"h": {Cost: 4, ProbTrue: 0.6},
		"k": {Cost: 5, ProbTrue: 0.2},
	}
	term := Term{Literals: []Literal{{Label: "h"}, {Label: "k"}}}

	order := OrderTermGreedy(term, m)
	if term.Literals[order[0]].Label != "k" {
		t.Fatalf("greedy fetched %q first, want k", term.Literals[order[0]].Label)
	}
	kFirst := ExpectedTermCost(term, m, order)
	if math.Abs(kFirst-5.8) > 1e-9 {
		t.Errorf("expected cost k-first = %v, want 5.8", kFirst)
	}
	hFirst := ExpectedTermCost(term, m, []int{0, 1})
	if math.Abs(hFirst-7.0) > 1e-9 {
		t.Errorf("expected cost h-first = %v, want 7.0", hFirst)
	}
	if kFirst >= hFirst {
		t.Error("short-circuit ordering did not reduce expected cost")
	}
}

func randomMeta(rng *rand.Rand, labels []string) MetaTable {
	m := make(MetaTable, len(labels))
	for _, l := range labels {
		m[l] = Meta{
			Cost:     0.1 + rng.Float64()*10,
			ProbTrue: rng.Float64(),
			Validity: time.Duration(1+rng.Intn(60)) * time.Second,
		}
	}
	return m
}

// Property: the greedy (1-p)/C order matches brute-force optimal expected
// cost for AND terms (pipelined filter ordering optimality).
func TestOrderTermGreedyOptimalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	labels := []string{"a", "b", "c", "d", "e", "f"}
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(5)
		lits := make([]Literal, n)
		for i := range lits {
			lits[i] = Literal{Label: labels[i], Negated: rng.Intn(2) == 0}
		}
		term := Term{Literals: lits}
		m := randomMeta(rng, labels[:n])

		greedy := ExpectedTermCost(term, m, OrderTermGreedy(term, m))
		_, optimal := OrderTermBruteForce(term, m)
		if greedy > optimal+1e-9 {
			t.Fatalf("greedy %v > optimal %v for %s", greedy, optimal, term)
		}
	}
}

func TestTermProbTrue(t *testing.T) {
	m := MetaTable{"a": {Cost: 1, ProbTrue: 0.5}, "b": {Cost: 1, ProbTrue: 0.4}}
	term := Term{Literals: []Literal{{Label: "a"}, {Label: "b", Negated: true}}}
	if got, want := TermProbTrue(term, m), 0.5*0.6; math.Abs(got-want) > 1e-12 {
		t.Errorf("TermProbTrue = %v, want %v", got, want)
	}
}

func TestMetaTableDefaults(t *testing.T) {
	var m MetaTable
	got := m.Get("missing")
	if got.Cost != 1 || got.ProbTrue != 0.5 {
		t.Errorf("default meta = %+v", got)
	}
}

// Property: GreedyPlan's expected cost never exceeds NaivePlan's.
func TestGreedyPlanBeatsNaiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		e := randomExpr(rng, 3)
		d := ToDNF(e)
		if len(d.Terms) == 0 {
			continue
		}
		m := randomMeta(rng, d.Labels())
		greedy := ExpectedQueryCost(d, m, GreedyPlan(d, m))
		naive := ExpectedQueryCost(d, m, NaivePlan(d))
		if greedy > naive+1e-9 {
			t.Fatalf("greedy %v > naive %v for %s", greedy, naive, d)
		}
	}
}

func TestNextUnknownFollowsPlan(t *testing.T) {
	d := ToDNF(MustParse("(a & b) | (c & d)"))
	m := MetaTable{
		"a": {Cost: 1, ProbTrue: 0.9},
		"b": {Cost: 1, ProbTrue: 0.9},
		"c": {Cost: 100, ProbTrue: 0.1},
		"d": {Cost: 100, ProbTrue: 0.1},
	}
	plan := GreedyPlan(d, m)

	// The cheap/likely (a & b) term should be explored first.
	a := Assignment{}
	l, ok := NextUnknown(d, a, plan)
	if !ok || (l.Label != "a" && l.Label != "b") {
		t.Fatalf("NextUnknown = %v %v, want a or b", l, ok)
	}

	// Resolving the first term true resolves the query: no more fetches.
	a["a"], a["b"] = True, True
	if _, ok := NextUnknown(d, a, plan); ok {
		t.Error("NextUnknown after resolution returned a literal")
	}

	// Short-circuit: first term false moves on to the second term.
	a = Assignment{"a": False}
	l, ok = NextUnknown(d, a, plan)
	if !ok || (l.Label != "c" && l.Label != "d") {
		t.Fatalf("NextUnknown after short-circuit = %v %v, want c or d", l, ok)
	}

	// All terms false: resolved false, nothing to fetch.
	a = Assignment{"a": False, "c": False}
	if _, ok := NextUnknown(d, a, plan); ok {
		t.Error("NextUnknown on false query returned a literal")
	}
}

func TestNextUnknownSkipsKnownLiterals(t *testing.T) {
	d := ToDNF(MustParse("a & b & c"))
	plan := NaivePlan(d)
	a := Assignment{"a": True}
	l, ok := NextUnknown(d, a, plan)
	if !ok || l.Label != "b" {
		t.Fatalf("NextUnknown = %v %v, want b", l, ok)
	}
}

// Property: simulated execution cost following GreedyPlan matches the
// analytic ExpectedQueryCost in expectation (within Monte-Carlo error) for
// terms with disjoint labels.
func TestExpectedQueryCostMatchesSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := ToDNF(MustParse("(a & b) | (c & d & e)"))
	m := randomMeta(rng, d.Labels())
	plan := GreedyPlan(d, m)
	analytic := ExpectedQueryCost(d, m, plan)

	const trials = 60000
	total := 0.0
	for i := 0; i < trials; i++ {
		a := Assignment{}
		for {
			l, ok := NextUnknown(d, a, plan)
			if !ok {
				break
			}
			total += m.Get(l.Label).Cost
			a[l.Label] = FromBool(rng.Float64() < clamp01(m.Get(l.Label).ProbTrue))
		}
	}
	sim := total / trials
	if math.Abs(sim-analytic) > 0.12*math.Max(analytic, 1) {
		t.Errorf("simulated cost %v vs analytic %v", sim, analytic)
	}
}

func BenchmarkToDNF(b *testing.B) {
	e := MustParse("((a & b) | (c & d)) & ((e | f) & (g | h)) | !(a & (b | c))")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ToDNF(e)
	}
}

func BenchmarkGreedyPlan(b *testing.B) {
	d := ToDNF(MustParse("(a & b & c) | (d & e & f) | (g & h & i) | (j & k & l)"))
	rng := rand.New(rand.NewSource(5))
	m := randomMeta(rng, d.Labels())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GreedyPlan(d, m)
	}
}

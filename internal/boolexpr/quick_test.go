package boolexpr

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// genExpr adapts randomExpr to testing/quick's generator protocol.
type genExpr struct{ e Expr }

// Generate implements quick.Generator.
func (genExpr) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genExpr{e: randomExpr(rng, 3)})
}

var _ quick.Generator = genExpr{}

// Property: DNF conversion is idempotent up to semantics — converting a
// DNF's expression again yields an equivalent DNF.
func TestQuickDNFIdempotent(t *testing.T) {
	f := func(g genExpr) bool {
		d1 := ToDNF(g.e)
		d2 := ToDNF(d1.Expr())
		// Compare over all assignments of the combined label set.
		labels := d1.Labels()
		if len(labels) > 12 {
			return true
		}
		for mask := 0; mask < 1<<len(labels); mask++ {
			a := make(Assignment, len(labels))
			for i, l := range labels {
				a[l] = FromBool(mask&(1<<i) != 0)
			}
			if d1.Eval(a) != d2.Eval(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: parsing the String() of any generated expression succeeds.
func TestQuickStringParsable(t *testing.T) {
	f := func(g genExpr) bool {
		_, err := Parse(g.e.String())
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: expected query cost is never negative and never exceeds the
// total cost of all labels (the comprehensive upper bound).
func TestQuickExpectedCostBounds(t *testing.T) {
	f := func(g genExpr, seed int64) bool {
		d := ToDNF(g.e)
		if len(d.Terms) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		m := make(MetaTable)
		total := 0.0
		// Total cost counts each term's labels separately, matching the
		// estimator's assumption that shared labels may be re-fetched.
		for _, term := range d.Terms {
			for _, lit := range term.Literals {
				if _, ok := m[lit.Label]; !ok {
					m[lit.Label] = Meta{
						Cost:     rng.Float64() * 10,
						ProbTrue: rng.Float64(),
						Validity: time.Duration(rng.Intn(100)) * time.Second,
					}
				}
				total += m[lit.Label].Cost
			}
		}
		cost := ExpectedQueryCost(d, m, GreedyPlan(d, m))
		return cost >= -1e-9 && cost <= total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: NextUnknown terminates — repeatedly resolving the returned
// label always reaches a terminal state within |labels| steps.
func TestQuickNextUnknownTerminates(t *testing.T) {
	f := func(g genExpr, seed int64) bool {
		d := ToDNF(g.e)
		if len(d.Terms) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		plan := NaivePlan(d)
		a := Assignment{}
		for steps := 0; steps <= len(d.Labels()); steps++ {
			lit, ok := NextUnknown(d, a, plan)
			if !ok {
				return true
			}
			a[lit.Label] = FromBool(rng.Intn(2) == 0)
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

package boolexpr

import (
	"sort"
	"strings"
)

// Literal is a possibly negated label inside a DNF term.
type Literal struct {
	// Label is the referenced label name.
	Label string
	// Negated marks a "NOT label" literal.
	Negated bool
}

// String renders the literal.
func (l Literal) String() string {
	if l.Negated {
		return "!" + l.Label
	}
	return l.Label
}

// Eval resolves the literal under an assignment.
func (l Literal) Eval(a Assignment) Value {
	v := a.Get(l.Label)
	if !l.Negated {
		return v
	}
	switch v {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// Term is a conjunction of literals: one alternative course of action
// (an a_i in the paper's query form).
type Term struct {
	// Literals are the ANDed conditions (the b_ij of the paper).
	Literals []Literal
}

// String renders the term.
func (t Term) String() string {
	parts := make([]string, len(t.Literals))
	for i, l := range t.Literals {
		parts[i] = l.String()
	}
	return strings.Join(parts, " & ")
}

// Eval computes the three-valued conjunction of the term's literals.
func (t Term) Eval(a Assignment) Value {
	result := True
	for _, l := range t.Literals {
		switch l.Eval(a) {
		case False:
			return False
		case Unknown:
			result = Unknown
		}
	}
	return result
}

// Labels returns the distinct labels in the term, in literal order.
func (t Term) Labels() []string {
	seen := make(map[string]bool, len(t.Literals))
	out := make([]string, 0, len(t.Literals))
	for _, l := range t.Literals {
		if !seen[l.Label] {
			seen[l.Label] = true
			out = append(out, l.Label)
		}
	}
	return out
}

// DNF is a decision query in disjunctive normal form: an OR of terms, each
// an alternative course of action.
type DNF struct {
	// Terms are the alternative courses of action.
	Terms []Term
}

// String renders the DNF as a parseable expression.
func (d DNF) String() string {
	if len(d.Terms) == 0 {
		return "false"
	}
	parts := make([]string, len(d.Terms))
	for i, t := range d.Terms {
		if len(d.Terms) > 1 && len(t.Literals) > 1 {
			parts[i] = "(" + t.String() + ")"
		} else {
			parts[i] = t.String()
		}
	}
	return strings.Join(parts, " | ")
}

// Eval computes the three-valued disjunction over the terms.
func (d DNF) Eval(a Assignment) Value {
	result := False
	for _, t := range d.Terms {
		switch t.Eval(a) {
		case True:
			return True
		case Unknown:
			result = Unknown
		}
	}
	return result
}

// Expr converts the DNF back to an expression tree.
func (d DNF) Expr() Expr {
	ors := make([]Expr, 0, len(d.Terms))
	for _, t := range d.Terms {
		ands := make([]Expr, 0, len(t.Literals))
		for _, l := range t.Literals {
			var e Expr = Pred{Label: l.Label}
			if l.Negated {
				e = Not{X: e}
			}
			ands = append(ands, e)
		}
		if len(ands) == 1 {
			ors = append(ors, ands[0])
		} else {
			ors = append(ors, And{Xs: ands})
		}
	}
	if len(ors) == 1 {
		return ors[0]
	}
	return Or{Xs: ors}
}

// Labels returns the distinct labels across all terms, sorted.
func (d DNF) Labels() []string {
	seen := make(map[string]bool)
	for _, t := range d.Terms {
		for _, l := range t.Literals {
			seen[l.Label] = true
		}
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// ToDNF converts an arbitrary expression to disjunctive normal form:
// negations pushed to leaves (negation normal form), then distribution of
// AND over OR, then simplification (contradictory terms dropped, duplicate
// literals merged, absorbed/duplicate terms removed). The result evaluates
// identically on fully resolved assignments.
func ToDNF(e Expr) DNF {
	terms := dnfRec(nnf(e, false))
	return simplify(DNF{Terms: terms})
}

// nnf pushes negations down to predicates. neg tracks whether the current
// subtree is under an odd number of negations.
func nnf(e Expr, neg bool) Expr {
	switch v := e.(type) {
	case Pred:
		if neg {
			return Not{X: v}
		}
		return v
	case Not:
		return nnf(v.X, !neg)
	case And:
		xs := make([]Expr, len(v.Xs))
		for i, x := range v.Xs {
			xs[i] = nnf(x, neg)
		}
		if neg {
			return Or{Xs: xs}
		}
		return And{Xs: xs}
	case Or:
		xs := make([]Expr, len(v.Xs))
		for i, x := range v.Xs {
			xs[i] = nnf(x, neg)
		}
		if neg {
			return And{Xs: xs}
		}
		return Or{Xs: xs}
	default:
		return e
	}
}

// dnfRec converts an NNF expression into a list of terms.
func dnfRec(e Expr) []Term {
	switch v := e.(type) {
	case Pred:
		return []Term{{Literals: []Literal{{Label: v.Label}}}}
	case Not:
		p, ok := v.X.(Pred)
		if !ok {
			// NNF guarantees Not only wraps Pred; fall back defensively.
			return dnfRec(nnf(v, false))
		}
		return []Term{{Literals: []Literal{{Label: p.Label, Negated: true}}}}
	case Or:
		var out []Term
		for _, x := range v.Xs {
			out = append(out, dnfRec(x)...)
		}
		return out
	case And:
		// Cross product of the children's term lists.
		out := []Term{{}}
		for _, x := range v.Xs {
			sub := dnfRec(x)
			next := make([]Term, 0, len(out)*len(sub))
			for _, a := range out {
				for _, b := range sub {
					merged := make([]Literal, 0, len(a.Literals)+len(b.Literals))
					merged = append(merged, a.Literals...)
					merged = append(merged, b.Literals...)
					next = append(next, Term{Literals: merged})
				}
			}
			out = next
		}
		return out
	default:
		return nil
	}
}

// simplify removes contradictions, duplicate literals, duplicate terms, and
// absorbed terms (a term that is a superset of another is redundant).
func simplify(d DNF) DNF {
	kept := make([]Term, 0, len(d.Terms))
	sets := make([]map[Literal]bool, 0, len(d.Terms))

termLoop:
	for _, t := range d.Terms {
		set := make(map[Literal]bool, len(t.Literals))
		for _, l := range t.Literals {
			if set[Literal{Label: l.Label, Negated: !l.Negated}] {
				continue termLoop // x & !x: contradiction
			}
			set[l] = true
		}
		lits := make([]Literal, 0, len(set))
		for l := range set {
			lits = append(lits, l)
		}
		sort.Slice(lits, func(i, j int) bool {
			if lits[i].Label != lits[j].Label {
				return lits[i].Label < lits[j].Label
			}
			return !lits[i].Negated && lits[j].Negated
		})
		kept = append(kept, Term{Literals: lits})
		sets = append(sets, set)
	}

	// Absorption: drop any term whose literal set is a superset of another
	// term's. This also removes exact duplicates (keep the earlier one).
	out := make([]Term, 0, len(kept))
	for i := range kept {
		absorbed := false
		for j := range kept {
			if i == j {
				continue
			}
			if len(sets[j]) > len(sets[i]) {
				continue
			}
			if len(sets[j]) == len(sets[i]) && j > i {
				continue // equal sets: only the earlier survives
			}
			if isSubset(sets[j], sets[i]) {
				absorbed = true
				break
			}
		}
		if !absorbed {
			out = append(out, kept[i])
		}
	}
	return DNF{Terms: out}
}

func isSubset(small, big map[Literal]bool) bool {
	for l := range small {
		if !big[l] {
			return false
		}
	}
	return true
}

package boolexpr

import (
	"math"
	"sort"
	"time"
)

// Meta holds the per-condition metadata of Section III-A: retrieval cost
// (e.g. object size in bytes or MB), estimated retrieval latency, success
// probability (probability the underlying label is true), and data validity
// interval.
type Meta struct {
	// Cost is the retrieval cost of the evidence for this label, in
	// arbitrary units (the paper uses data size).
	Cost float64
	// Latency is the estimated retrieval latency.
	Latency time.Duration
	// ProbTrue is the prior probability that the label evaluates to true.
	ProbTrue float64
	// Validity is how long evidence for this label stays fresh.
	Validity time.Duration
}

// MetaTable maps label names to their metadata.
type MetaTable map[string]Meta

// Get returns the metadata for a label, with neutral defaults (cost 1,
// probability 0.5) if absent, so planning degrades gracefully when models
// are missing (Section II-A notes optimization may proceed without them).
func (m MetaTable) Get(label string) Meta {
	if meta, ok := m[label]; ok {
		return meta
	}
	return Meta{Cost: 1, ProbTrue: 0.5}
}

// probTrue is the probability a literal evaluates true.
func probTrue(l Literal, m MetaTable) float64 {
	p := clamp01(m.Get(l.Label).ProbTrue)
	if l.Negated {
		return 1 - p
	}
	return p
}

func clamp01(p float64) float64 {
	return math.Min(1, math.Max(0, p))
}

// ExpectedTermCost is the expected retrieval cost of evaluating the term's
// literals in the given order, short-circuiting as soon as a literal is
// false. Literal outcomes are treated as independent.
func ExpectedTermCost(t Term, m MetaTable, order []int) float64 {
	cost := 0.0
	pAllTrue := 1.0
	for _, idx := range order {
		l := t.Literals[idx]
		cost += pAllTrue * m.Get(l.Label).Cost
		pAllTrue *= probTrue(l, m)
	}
	return cost
}

// TermProbTrue is the probability the whole term evaluates true, assuming
// independent literals.
func TermProbTrue(t Term, m MetaTable) float64 {
	p := 1.0
	for _, l := range t.Literals {
		p *= probTrue(l, m)
	}
	return p
}

// identityOrder returns [0, 1, ..., n-1].
func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// OrderTermGreedy returns the evaluation order for a term that sorts
// literals by descending short-circuit probability per unit cost,
// (1-p)/C — the rule of Section III-A. For independent literals this
// ordering minimizes expected cost (it is the classic "pipelined filter
// ordering" optimum). Ties break by original position for determinism.
func OrderTermGreedy(t Term, m MetaTable) []int {
	order := identityOrder(len(t.Literals))
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := t.Literals[order[a]], t.Literals[order[b]]
		ca := m.Get(la.Label).Cost
		cb := m.Get(lb.Label).Cost
		// Compare (1-pa)/ca > (1-pb)/cb without dividing (cost may be 0:
		// zero-cost literals go first).
		return (1-probTrue(la, m))*cb > (1-probTrue(lb, m))*ca
	})
	return order
}

// OrderTermBruteForce finds a minimum-expected-cost order by exhaustive
// permutation search. Exponential; intended for tests validating the
// greedy rule on small terms.
func OrderTermBruteForce(t Term, m MetaTable) ([]int, float64) {
	n := len(t.Literals)
	best := identityOrder(n)
	bestCost := ExpectedTermCost(t, m, best)
	perm := identityOrder(n)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			if c := ExpectedTermCost(t, m, perm); c < bestCost {
				bestCost = c
				best = append([]int(nil), perm...)
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best, bestCost
}

// QueryPlan is a complete evaluation plan for a DNF query: the order in
// which to try terms, and within each term the order in which to retrieve
// evidence.
type QueryPlan struct {
	// TermOrder lists term indices in evaluation order.
	TermOrder []int
	// LiteralOrder[i] is the literal evaluation order for term i (indexed
	// by the DNF's term index, not plan position).
	LiteralOrder [][]int
}

// ExpectedQueryCost is the expected total retrieval cost of executing plan
// on d: terms are tried in order until one evaluates true; a false term
// short-circuits as soon as one of its literals is false. Terms are
// treated as independent and label reuse across terms is ignored (an
// upper bound; the scheduler deduplicates shared fetches at run time).
func ExpectedQueryCost(d DNF, m MetaTable, plan QueryPlan) float64 {
	cost := 0.0
	pAllPriorFalse := 1.0
	for _, ti := range plan.TermOrder {
		t := d.Terms[ti]
		cost += pAllPriorFalse * ExpectedTermCost(t, m, plan.LiteralOrder[ti])
		pAllPriorFalse *= 1 - TermProbTrue(t, m)
	}
	return cost
}

// GreedyPlan builds the Section III-A plan: literals within each term by
// descending (1-p)/C, terms by descending probability-of-success per unit
// expected cost (the OR-side short-circuit rule).
func GreedyPlan(d DNF, m MetaTable) QueryPlan {
	litOrder := make([][]int, len(d.Terms))
	termCost := make([]float64, len(d.Terms))
	termProb := make([]float64, len(d.Terms))
	for i, t := range d.Terms {
		litOrder[i] = OrderTermGreedy(t, m)
		termCost[i] = ExpectedTermCost(t, m, litOrder[i])
		termProb[i] = TermProbTrue(t, m)
	}
	termOrder := identityOrder(len(d.Terms))
	sort.SliceStable(termOrder, func(a, b int) bool {
		ia, ib := termOrder[a], termOrder[b]
		// Compare p_a/c_a > p_b/c_b without dividing.
		return termProb[ia]*termCost[ib] > termProb[ib]*termCost[ia]
	})
	return QueryPlan{TermOrder: termOrder, LiteralOrder: litOrder}
}

// NaivePlan evaluates terms and literals in their original order, used as
// the comprehensive-retrieval baseline for comparisons.
func NaivePlan(d DNF) QueryPlan {
	litOrder := make([][]int, len(d.Terms))
	for i, t := range d.Terms {
		litOrder[i] = identityOrder(len(t.Literals))
	}
	return QueryPlan{TermOrder: identityOrder(len(d.Terms)), LiteralOrder: litOrder}
}

// NextUnknown returns, following the plan, the first literal whose label is
// still Unknown within the first non-false term that is still undecided.
// It returns ok=false when the query is already resolved or no literal can
// advance it. This is the step function the per-query retrieval loop uses.
func NextUnknown(d DNF, a Assignment, plan QueryPlan) (Literal, bool) {
	for _, ti := range plan.TermOrder {
		t := d.Terms[ti]
		switch t.Eval(a) {
		case True:
			return Literal{}, false // query resolved true
		case False:
			continue // short-circuited; try next course of action
		}
		for _, li := range plan.LiteralOrder[ti] {
			l := t.Literals[li]
			if a.Get(l.Label) == Unknown {
				return l, true
			}
		}
	}
	return Literal{}, false
}

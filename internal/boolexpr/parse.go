package boolexpr

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
)

// Grammar (precedence low to high):
//
//	expr   := term ('|' term)*
//	term   := factor ('&' factor)*
//	factor := '!' factor | '(' expr ')' | label
//	label  := [A-Za-z_][A-Za-z0-9_.:-]*
//
// '&&', '||', 'AND', 'OR', 'NOT' are accepted as synonyms.

// ErrParse is wrapped by all parse failures.
var ErrParse = errors.New("boolexpr: parse error")

type tokenKind int

const (
	tokLabel tokenKind = iota + 1
	tokAnd
	tokOr
	tokNot
	tokLParen
	tokRParen
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func isLabelStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isLabelRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || strings.ContainsRune("_.:-", r)
}

func lex(s string) ([]token, error) {
	var toks []token
	runes := []rune(s)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case r == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case r == '!':
			toks = append(toks, token{tokNot, "!", i})
			i++
		case r == '&':
			start := i
			i++
			if i < len(runes) && runes[i] == '&' {
				i++
			}
			toks = append(toks, token{tokAnd, s[start:i], start})
		case r == '|':
			start := i
			i++
			if i < len(runes) && runes[i] == '|' {
				i++
			}
			toks = append(toks, token{tokOr, s[start:i], start})
		case isLabelStart(r):
			start := i
			for i < len(runes) && isLabelRune(runes[i]) {
				i++
			}
			word := string(runes[start:i])
			switch strings.ToUpper(word) {
			case "AND":
				toks = append(toks, token{tokAnd, word, start})
			case "OR":
				toks = append(toks, token{tokOr, word, start})
			case "NOT":
				toks = append(toks, token{tokNot, word, start})
			default:
				toks = append(toks, token{tokLabel, word, start})
			}
		default:
			return nil, fmt.Errorf("%w: unexpected character %q at %d", ErrParse, r, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(runes)})
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// Parse parses a decision-logic expression such as
//
//	(viableA & viableB & viableC) | (viableD & viableE & viableF)
func Parse(s string) (Expr, error) {
	toks, err := lex(s)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("%w: trailing input %q at %d", ErrParse, t.text, t.pos)
	}
	return e, nil
}

// MustParse is Parse that panics on error, for static expressions in tests
// and examples.
func MustParse(s string) Expr {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *parser) parseOr() (Expr, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	xs := []Expr{first}
	for p.peek().kind == tokOr {
		p.next()
		x, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		xs = append(xs, x)
	}
	if len(xs) == 1 {
		return xs[0], nil
	}
	return Or{Xs: xs}, nil
}

func (p *parser) parseAnd() (Expr, error) {
	first, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	xs := []Expr{first}
	for p.peek().kind == tokAnd {
		p.next()
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		xs = append(xs, x)
	}
	if len(xs) == 1 {
		return xs[0], nil
	}
	return And{Xs: xs}, nil
}

func (p *parser) parseFactor() (Expr, error) {
	switch t := p.next(); t.kind {
	case tokNot:
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return Not{X: x}, nil
	case tokLParen:
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if closing := p.next(); closing.kind != tokRParen {
			return nil, fmt.Errorf("%w: expected ')' at %d", ErrParse, closing.pos)
		}
		return e, nil
	case tokLabel:
		return Pred{Label: t.text}, nil
	case tokEOF:
		return nil, fmt.Errorf("%w: unexpected end of input", ErrParse)
	default:
		return nil, fmt.Errorf("%w: unexpected %q at %d", ErrParse, t.text, t.pos)
	}
}

// Package boolexpr implements the paper's decision-logic expressions
// (Section II-A, III): Boolean expressions over predicates ("labels"),
// three-valued evaluation against partially known state, conversion to
// disjunctive normal form (OR of ANDs), and the short-circuit cost analysis
// of Section III-A that drives decision-driven retrieval scheduling.
package boolexpr

import (
	"sort"
	"strings"
)

// Value is the three-valued logic value of a label or expression. The zero
// value is Unknown on purpose: unset state is "not yet resolved".
type Value int

const (
	// Unknown means the predicate has not been resolved (or its evidence
	// is stale).
	Unknown Value = iota
	// True means the predicate holds.
	True
	// False means the predicate does not hold.
	False
)

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "unknown"
	}
}

// FromBool converts a resolved boolean to a Value.
func FromBool(b bool) Value {
	if b {
		return True
	}
	return False
}

// Assignment maps label names to their current values. Missing labels are
// Unknown.
type Assignment map[string]Value

// Get returns the value for label, Unknown if absent.
func (a Assignment) Get(label string) Value {
	if a == nil {
		return Unknown
	}
	return a[label]
}

// Expr is a node of a decision-logic expression tree.
type Expr interface {
	// Eval computes the three-valued result under the assignment,
	// propagating Unknown per Kleene logic (e.g. false AND unknown is
	// false).
	Eval(a Assignment) Value
	// Labels appends the distinct labels referenced, in first-appearance
	// order, to dst.
	labels(seen map[string]bool, dst *[]string)
	// String renders the expression in parseable syntax.
	String() string
}

// Pred is a leaf predicate referencing a label.
type Pred struct {
	// Label is the label name whose value resolves this predicate.
	Label string
}

// Not negates a subexpression.
type Not struct {
	// X is the negated subexpression.
	X Expr
}

// And is a conjunction of subexpressions.
type And struct {
	// Xs are the conjuncts; an empty And is true.
	Xs []Expr
}

// Or is a disjunction of subexpressions.
type Or struct {
	// Xs are the disjuncts; an empty Or is false.
	Xs []Expr
}

var (
	_ Expr = Pred{}
	_ Expr = Not{}
	_ Expr = And{}
	_ Expr = Or{}
)

// Eval implements Expr.
func (p Pred) Eval(a Assignment) Value { return a.Get(p.Label) }

// Eval implements Expr.
func (n Not) Eval(a Assignment) Value {
	switch n.X.Eval(a) {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// Eval implements Expr with Kleene three-valued AND: False dominates,
// then Unknown, else True.
func (e And) Eval(a Assignment) Value {
	result := True
	for _, x := range e.Xs {
		switch x.Eval(a) {
		case False:
			return False
		case Unknown:
			result = Unknown
		}
	}
	return result
}

// Eval implements Expr with Kleene three-valued OR: True dominates, then
// Unknown, else False.
func (e Or) Eval(a Assignment) Value {
	result := False
	for _, x := range e.Xs {
		switch x.Eval(a) {
		case True:
			return True
		case Unknown:
			result = Unknown
		}
	}
	return result
}

func (p Pred) labels(seen map[string]bool, dst *[]string) {
	if !seen[p.Label] {
		seen[p.Label] = true
		*dst = append(*dst, p.Label)
	}
}

func (n Not) labels(seen map[string]bool, dst *[]string) { n.X.labels(seen, dst) }

func (e And) labels(seen map[string]bool, dst *[]string) {
	for _, x := range e.Xs {
		x.labels(seen, dst)
	}
}

func (e Or) labels(seen map[string]bool, dst *[]string) {
	for _, x := range e.Xs {
		x.labels(seen, dst)
	}
}

// Labels returns the distinct labels referenced by e in first-appearance
// order.
func Labels(e Expr) []string {
	var out []string
	e.labels(make(map[string]bool), &out)
	return out
}

// String implements Expr.
func (p Pred) String() string { return p.Label }

// String implements Expr.
func (n Not) String() string {
	switch n.X.(type) {
	case Pred:
		return "!" + n.X.String()
	default:
		return "!(" + n.X.String() + ")"
	}
}

// String implements Expr.
func (e And) String() string { return joinExprs(e.Xs, " & ", true) }

// String implements Expr.
func (e Or) String() string { return joinExprs(e.Xs, " | ", false) }

func joinExprs(xs []Expr, sep string, parenOr bool) string {
	if len(xs) == 0 {
		if parenOr {
			return "true"
		}
		return "false"
	}
	parts := make([]string, len(xs))
	for i, x := range xs {
		s := x.String()
		if _, isOr := x.(Or); isOr && parenOr {
			s = "(" + s + ")"
		}
		if _, isAnd := x.(And); isAnd && !parenOr {
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, sep)
}

// Resolved reports whether the expression's value is decided (True or
// False) under the assignment — i.e. no further evidence is needed.
func Resolved(e Expr, a Assignment) bool { return e.Eval(a) != Unknown }

// SortedLabels returns the referenced labels in lexicographic order, for
// deterministic iteration.
func SortedLabels(e Expr) []string {
	ls := Labels(e)
	sort.Strings(ls)
	return ls
}

package boolexpr

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func TestEvalKleene(t *testing.T) {
	a := Assignment{"t": True, "f": False}
	cases := []struct {
		expr string
		want Value
	}{
		{"t", True},
		{"f", False},
		{"u", Unknown},
		{"!t", False},
		{"!f", True},
		{"!u", Unknown},
		{"t & t", True},
		{"t & f", False},
		{"t & u", Unknown},
		{"f & u", False}, // false dominates unknown in AND
		{"t | f", True},
		{"f | f", False},
		{"f | u", Unknown},
		{"t | u", True}, // true dominates unknown in OR
		{"(t & u) | t", True},
		{"!(t & f)", True},
		{"!(f | u)", Unknown},
	}
	for _, tc := range cases {
		e, err := Parse(tc.expr)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.expr, err)
		}
		if got := e.Eval(a); got != tc.want {
			t.Errorf("Eval(%q) = %v, want %v", tc.expr, got, tc.want)
		}
	}
}

func TestParseSynonymsAndPrecedence(t *testing.T) {
	e1 := MustParse("a && b || c AND NOT d")
	e2 := MustParse("(a & b) | (c & !d)")
	a := Assignment{"a": True, "b": False, "c": True, "d": False}
	if e1.Eval(a) != e2.Eval(a) {
		t.Error("synonym parse differs")
	}
	if e1.Eval(a) != True {
		t.Errorf("Eval = %v, want true", e1.Eval(a))
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "a &", "& a", "(a", "a)", "a b", "a @ b", "!"} {
		if _, err := Parse(s); !errors.Is(err, ErrParse) {
			t.Errorf("Parse(%q) err = %v, want ErrParse", s, err)
		}
	}
}

func TestLabelsOrder(t *testing.T) {
	e := MustParse("(b & a) | (c & a)")
	got := Labels(e)
	want := []string{"b", "a", "c"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("Labels = %v, want %v", got, want)
	}
	sorted := SortedLabels(e)
	if strings.Join(sorted, ",") != "a,b,c" {
		t.Errorf("SortedLabels = %v", sorted)
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		"a",
		"!a",
		"a & b",
		"a | b & c",
		"(a | b) & c",
		"!(a & b) | c",
	} {
		e := MustParse(s)
		again, err := Parse(e.String())
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", e.String(), s, err)
		}
		// Compare on all assignments of the labels.
		if !equivalent(t, e, again) {
			t.Errorf("round trip of %q changed semantics: %q", s, e.String())
		}
	}
}

// equivalent exhaustively compares two expressions over all boolean
// assignments of their combined label set.
func equivalent(t *testing.T, e1, e2 Expr) bool {
	t.Helper()
	labelSet := make(map[string]bool)
	for _, l := range Labels(e1) {
		labelSet[l] = true
	}
	for _, l := range Labels(e2) {
		labelSet[l] = true
	}
	labels := make([]string, 0, len(labelSet))
	for l := range labelSet {
		labels = append(labels, l)
	}
	if len(labels) > 16 {
		t.Fatalf("too many labels for exhaustive check: %d", len(labels))
	}
	for mask := 0; mask < 1<<len(labels); mask++ {
		a := make(Assignment, len(labels))
		for i, l := range labels {
			a[l] = FromBool(mask&(1<<i) != 0)
		}
		if e1.Eval(a) != e2.Eval(a) {
			return false
		}
	}
	return true
}

// randomExpr builds a random expression over a small label alphabet.
func randomExpr(rng *rand.Rand, depth int) Expr {
	labels := []string{"a", "b", "c", "d", "e"}
	if depth == 0 || rng.Intn(3) == 0 {
		return Pred{Label: labels[rng.Intn(len(labels))]}
	}
	switch rng.Intn(3) {
	case 0:
		return Not{X: randomExpr(rng, depth-1)}
	case 1:
		n := 2 + rng.Intn(2)
		xs := make([]Expr, n)
		for i := range xs {
			xs[i] = randomExpr(rng, depth-1)
		}
		return And{Xs: xs}
	default:
		n := 2 + rng.Intn(2)
		xs := make([]Expr, n)
		for i := range xs {
			xs[i] = randomExpr(rng, depth-1)
		}
		return Or{Xs: xs}
	}
}

// Property: ToDNF preserves semantics on fully resolved assignments.
func TestDNFEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		e := randomExpr(rng, 3)
		d := ToDNF(e)
		if !equivalent(t, e, d.Expr()) {
			t.Fatalf("DNF not equivalent:\n  expr: %s\n  dnf:  %s", e, d)
		}
	}
}

func TestDNFSimplification(t *testing.T) {
	// Contradiction inside a term removes the term.
	d := ToDNF(MustParse("(a & !a) | b"))
	if len(d.Terms) != 1 || d.Terms[0].String() != "b" {
		t.Errorf("contradiction not removed: %s", d)
	}
	// Absorption: a | (a & b) == a.
	d = ToDNF(MustParse("a | (a & b)"))
	if len(d.Terms) != 1 || d.Terms[0].String() != "a" {
		t.Errorf("absorption failed: %s", d)
	}
	// Duplicate literal merged.
	d = ToDNF(MustParse("a & a & b"))
	if len(d.Terms) != 1 || len(d.Terms[0].Literals) != 2 {
		t.Errorf("duplicate literal kept: %s", d)
	}
	// Duplicate term removed.
	d = ToDNF(MustParse("(a & b) | (b & a)"))
	if len(d.Terms) != 1 {
		t.Errorf("duplicate term kept: %s", d)
	}
}

func TestDNFRouteExample(t *testing.T) {
	// The paper's route-finding query stays intact.
	d := ToDNF(MustParse("(viableA & viableB & viableC) | (viableD & viableE & viableF)"))
	if len(d.Terms) != 2 {
		t.Fatalf("terms = %d, want 2", len(d.Terms))
	}
	if got := len(d.Labels()); got != 6 {
		t.Errorf("labels = %d, want 6", got)
	}
}

func TestTermEvalAndLabels(t *testing.T) {
	term := Term{Literals: []Literal{{Label: "x"}, {Label: "y", Negated: true}, {Label: "x"}}}
	if v := term.Eval(Assignment{"x": True, "y": False}); v != True {
		t.Errorf("Eval = %v, want true", v)
	}
	if v := term.Eval(Assignment{"x": True}); v != Unknown {
		t.Errorf("Eval partial = %v, want unknown", v)
	}
	if v := term.Eval(Assignment{"y": True}); v != False {
		t.Errorf("Eval = %v, want false (negated literal)", v)
	}
	if got := term.Labels(); len(got) != 2 {
		t.Errorf("Labels = %v, want 2 distinct", got)
	}
}

func TestValueString(t *testing.T) {
	if Unknown.String() != "unknown" || True.String() != "true" || False.String() != "false" {
		t.Error("Value.String mismatch")
	}
}

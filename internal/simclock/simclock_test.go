package simclock

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

var origin = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestSchedulerOrdering(t *testing.T) {
	s := New(origin)
	var got []int
	s.After(3*time.Second, func() { got = append(got, 3) })
	s.After(1*time.Second, func() { got = append(got, 1) })
	s.After(2*time.Second, func() { got = append(got, 2) })
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != origin.Add(3*time.Second) {
		t.Errorf("Now = %v, want origin+3s", s.Now())
	}
}

func TestSchedulerTieBreakBySequence(t *testing.T) {
	s := New(origin)
	var got []int
	at := origin.Add(time.Second)
	for i := 0; i < 10; i++ {
		i := i
		s.At(at, func() { got = append(got, i) })
	}
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie-break order = %v", got)
		}
	}
}

func TestSchedulerPastClamped(t *testing.T) {
	s := New(origin)
	s.After(time.Second, func() {
		// Scheduling in the past must clamp to now, not rewind the clock.
		s.At(origin, func() {
			if s.Now().Before(origin.Add(time.Second)) {
				t.Error("clock rewound")
			}
		})
	})
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEventCancel(t *testing.T) {
	s := New(origin)
	ran := false
	ev := s.After(time.Second, func() { ran = true })
	ev.Cancel()
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Error("cancelled event ran")
	}
}

func TestRunBudget(t *testing.T) {
	s := New(origin)
	// A self-perpetuating event chain must trip the budget.
	var tick func()
	tick = func() { s.After(time.Millisecond, tick) }
	s.After(0, tick)
	err := s.Run(100)
	if !errors.Is(err, ErrHorizon) {
		t.Fatalf("Run err = %v, want ErrHorizon", err)
	}
}

func TestRunUntil(t *testing.T) {
	s := New(origin)
	var got []int
	s.After(1*time.Second, func() { got = append(got, 1) })
	s.After(5*time.Second, func() { got = append(got, 5) })
	deadline := origin.Add(2 * time.Second)
	if err := s.RunUntil(deadline, 0); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("got %v, want [1]", got)
	}
	if !s.Now().Equal(deadline) {
		t.Errorf("Now = %v, want %v", s.Now(), deadline)
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
}

func TestRunUntilCancelledHead(t *testing.T) {
	s := New(origin)
	ev := s.After(time.Second, func() { t.Error("cancelled event ran") })
	ev.Cancel()
	ran := false
	s.After(2*time.Second, func() { ran = true })
	if err := s.RunUntil(origin.Add(3*time.Second), 0); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if !ran {
		t.Error("live event did not run")
	}
}

// Property: for any set of delays, events fire in nondecreasing time order.
func TestPropertyMonotoneFiring(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		s := New(origin)
		var fired []time.Time
		for _, d := range delaysMs {
			s.After(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, s.Now())
			})
		}
		if err := s.Run(0); err != nil {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool {
			return fired[i].Before(fired[j])
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: events scheduled from inside callbacks still fire exactly once
// each and in time order.
func TestPropertyNestedScheduling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		s := New(origin)
		count := 0
		var last time.Time
		var spawn func(depth int)
		spawn = func(depth int) {
			count++
			if s.Now().Before(last) {
				t.Fatal("time went backwards")
			}
			last = s.Now()
			if depth < 3 {
				n := rng.Intn(3)
				for i := 0; i < n; i++ {
					d := time.Duration(rng.Intn(1000)) * time.Millisecond
					s.After(d, func() { spawn(depth + 1) })
				}
			}
		}
		s.After(0, func() { spawn(0) })
		if err := s.Run(0); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if count == 0 {
			t.Fatal("no events ran")
		}
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := New(origin)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%100)*time.Millisecond, func() {})
		s.Step()
	}
}

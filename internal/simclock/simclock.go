// Package simclock provides a deterministic discrete-event simulation
// kernel: a virtual clock and an event scheduler with a stable ordering.
//
// All of the Athena emulation (internal/netsim, internal/athena,
// internal/experiment) runs on top of this kernel so that every experiment
// is exactly repeatable from a seed, independent of wall-clock time or
// goroutine interleaving.
package simclock

import (
	"container/heap"
	"errors"
	"time"
)

// Clock exposes the current instant. Both the simulated scheduler and a
// wall-clock implementation satisfy it, so node logic can run in either
// world.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
}

// WallClock is a Clock backed by time.Now, for code paths (such as the TCP
// transport daemon) that run in real time.
type WallClock struct{}

var _ Clock = WallClock{}

// Now returns the wall-clock time.
func (WallClock) Now() time.Time { return time.Now() }

// Event is a scheduled callback. The callback runs with the scheduler's
// clock already advanced to the event time.
type Event struct {
	at  time.Time
	seq uint64 // tie-break so equal-time events run in schedule order
	fn  func()

	// fnArg/arg are the no-handle form used by AtCall/AfterCall; such
	// events are recycled through the scheduler's freelist after running,
	// which is only safe because no caller can hold a handle to them.
	fnArg func(any)
	arg   any

	index     int // heap index; -1 once popped or cancelled
	cancelled bool
	pooled    bool
	nextFree  *Event
}

// Cancel prevents a pending event from running. Cancelling an event that
// already ran is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// At reports the instant the event is scheduled for.
func (e *Event) At() time.Time { return e.at }

// eventHeap orders events by time, then by scheduling sequence.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// ErrHorizon is returned by Run when the event budget is exhausted before
// the event queue drains, which usually indicates a scheduling livelock.
var ErrHorizon = errors.New("simclock: event budget exhausted")

// Scheduler is a deterministic discrete-event scheduler. The zero value is
// not usable; create one with New.
type Scheduler struct {
	now    time.Time
	seq    uint64
	events eventHeap
	free   *Event // recycled no-handle events
}

var _ Clock = (*Scheduler)(nil)

// New returns a Scheduler whose clock starts at the given origin.
func New(origin time.Time) *Scheduler {
	return &Scheduler{now: origin}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return s.now }

// Pending reports how many events are queued (including cancelled ones not
// yet reaped).
func (s *Scheduler) Pending() int { return len(s.events) }

// At schedules fn to run at instant t. Scheduling in the past is clamped to
// the current time (the event runs next). It returns a handle that can
// cancel the event.
func (s *Scheduler) At(t time.Time, fn func()) *Event {
	if t.Before(s.now) {
		t = s.now
	}
	ev := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return ev
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	return s.At(s.now.Add(d), fn)
}

// AtCall schedules fn(arg) at instant t without returning a handle. The
// event cannot be cancelled, which lets the scheduler recycle it
// internally — a hot send path schedules without allocating. fn is
// typically a stored method value, so the call itself captures nothing.
func (s *Scheduler) AtCall(t time.Time, fn func(any), arg any) {
	if t.Before(s.now) {
		t = s.now
	}
	ev := s.free
	if ev != nil {
		s.free = ev.nextFree
		*ev = Event{at: t, seq: s.seq, fnArg: fn, arg: arg, pooled: true}
	} else {
		ev = &Event{at: t, seq: s.seq, fnArg: fn, arg: arg, pooled: true}
	}
	s.seq++
	heap.Push(&s.events, ev)
}

// AfterCall schedules fn(arg) to run d after the current virtual time,
// with AtCall's no-handle, allocation-recycling semantics.
func (s *Scheduler) AfterCall(d time.Duration, fn func(any), arg any) {
	s.AtCall(s.now.Add(d), fn, arg)
}

// release returns a pooled event to the freelist.
func (s *Scheduler) release(ev *Event) {
	*ev = Event{nextFree: s.free}
	s.free = ev
}

// Step runs the single earliest pending event, advancing the clock to its
// time. It reports whether an event ran.
func (s *Scheduler) Step() bool {
	for len(s.events) > 0 {
		ev, ok := heap.Pop(&s.events).(*Event)
		if !ok {
			return false
		}
		if ev.cancelled {
			continue
		}
		s.now = ev.at
		if ev.pooled {
			// Copy out before releasing: the callback may schedule new
			// events that reuse this Event value.
			fn, arg := ev.fnArg, ev.arg
			s.release(ev)
			fn(arg)
			return true
		}
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or maxEvents have run. A
// maxEvents of 0 means no budget. It returns ErrHorizon if the budget was
// exhausted with events still pending.
func (s *Scheduler) Run(maxEvents int) error {
	ran := 0
	for s.Step() {
		ran++
		if maxEvents > 0 && ran >= maxEvents {
			if s.Pending() > 0 {
				return ErrHorizon
			}
			return nil
		}
	}
	return nil
}

// RunUntil executes events with time at or before deadline, leaving later
// events queued and the clock at min(deadline, last event time). It returns
// ErrHorizon if maxEvents (0 = unlimited) ran before reaching the deadline.
func (s *Scheduler) RunUntil(deadline time.Time, maxEvents int) error {
	ran := 0
	for len(s.events) > 0 {
		next := s.events[0]
		if next.cancelled {
			heap.Pop(&s.events)
			continue
		}
		if next.at.After(deadline) {
			break
		}
		s.Step()
		ran++
		if maxEvents > 0 && ran >= maxEvents {
			return ErrHorizon
		}
	}
	if s.now.Before(deadline) {
		s.now = deadline
	}
	return nil
}

package simclock

import (
	"fmt"
	"testing"
	"time"
)

var kernelEpoch = time.Unix(0, 0).UTC()

// laneTrace records one lane's execution history. Each lane appends only
// from its own events, so traces are safe under any worker count.
type laneTrace struct {
	entries []string
}

func (tr *laneTrace) hit(l *Lane, tag string) {
	tr.entries = append(tr.entries, fmt.Sprintf("%d@%s:%s", l.Index(), l.Now().Format(time.RFC3339Nano), tag))
}

// chatterWorkload drives a kernel with a deterministic cross-lane
// workload: every lane ticks periodically, and each tick posts a
// message to a peer lane chosen by a per-lane splitmix64 stream with a
// delay of at least the lookahead. Returns per-lane traces.
func chatterWorkload(t *testing.T, workers, lanes int, seed uint64, dur time.Duration) []laneTrace {
	t.Helper()
	const lookahead = 10 * time.Millisecond
	k := NewKernel(kernelEpoch, KernelOpts{Workers: workers, Seed: seed})
	k.SetLookahead(lookahead)
	traces := make([]laneTrace, lanes)
	rngs := make([]uint64, lanes)
	for i := 0; i < lanes; i++ {
		l := k.AddLane()
		rngs[i] = seed ^ uint64(i)*0x9e3779b97f4a7c15
		tr := &traces[i]
		idx := i
		var tick func()
		tick = func() {
			tr.hit(l, "tick")
			draw := splitmix64(&rngs[idx])
			peer := k.Lane(int(draw % uint64(lanes)))
			jitter := time.Duration(draw>>32%uint64(lookahead)) + lookahead
			l.Post(peer, l.Now().Add(jitter), func(arg any) {
				dst, _ := arg.(*Lane)
				traces[dst.Index()].hit(dst, fmt.Sprintf("msg-from-%d", idx))
			}, peer)
			l.After(lookahead/2+time.Duration(draw%7)*time.Millisecond, tick)
		}
		l.After(time.Duration(i)*time.Millisecond, tick)
	}
	if err := k.RunUntil(kernelEpoch.Add(dur), 0); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	return traces
}

// TestKernelDeterministicAcrossWorkers is the tentpole's core claim:
// the same seed produces an identical per-lane event trace at any
// worker count.
func TestKernelDeterministicAcrossWorkers(t *testing.T) {
	ref := chatterWorkload(t, 1, 16, 0xa7e4a, 2*time.Second)
	for _, w := range []int{2, 4, 8} {
		got := chatterWorkload(t, w, 16, 0xa7e4a, 2*time.Second)
		for i := range ref {
			if len(got[i].entries) != len(ref[i].entries) {
				t.Fatalf("workers=%d lane %d: %d entries, want %d", w, i, len(got[i].entries), len(ref[i].entries))
			}
			for j := range ref[i].entries {
				if got[i].entries[j] != ref[i].entries[j] {
					t.Fatalf("workers=%d lane %d entry %d: %q, want %q", w, i, j, got[i].entries[j], ref[i].entries[j])
				}
			}
		}
	}
}

// TestKernelSeedChangesTieOrder sanity-checks that the tie-break is
// actually seeded: distinct seeds may produce distinct traces (they do
// on this workload), while equal seeds always match.
func TestKernelSeedChangesTieOrder(t *testing.T) {
	a := chatterWorkload(t, 1, 8, 1, time.Second)
	b := chatterWorkload(t, 1, 8, 1, time.Second)
	for i := range a {
		if len(a[i].entries) != len(b[i].entries) {
			t.Fatalf("same seed diverged on lane %d", i)
		}
		for j := range a[i].entries {
			if a[i].entries[j] != b[i].entries[j] {
				t.Fatalf("same seed diverged: lane %d entry %d", i, j)
			}
		}
	}
}

// TestKernelSingleLaneMatchesScheduler pins the 1-lane kernel to the
// sequential reference engine on an identical schedule: same execution
// order, same observed clocks.
func TestKernelSingleLaneMatchesScheduler(t *testing.T) {
	type probe struct {
		at  time.Duration
		tag string
	}
	schedule := []probe{
		{5 * time.Millisecond, "a"},
		{5 * time.Millisecond, "b"}, // simultaneous: insertion order wins in both engines
		{1 * time.Millisecond, "c"},
		{9 * time.Millisecond, "d"},
		{5 * time.Millisecond, "e"},
	}
	run := func(after func(time.Duration, func()) *Event, now func() time.Time, drive func()) []string {
		var got []string
		for _, p := range schedule {
			tag := p.tag
			after(p.at, func() {
				got = append(got, fmt.Sprintf("%s@%s", tag, now().Format(time.RFC3339Nano)))
			})
		}
		drive()
		return got
	}

	s := New(kernelEpoch)
	want := run(s.After, s.Now, func() {
		if err := s.RunUntil(kernelEpoch.Add(time.Second), 0); err != nil {
			t.Fatal(err)
		}
	})

	k := NewKernel(kernelEpoch, KernelOpts{})
	l := k.AddLane()
	k.SetLookahead(2 * time.Millisecond)
	got := run(l.After, l.Now, func() {
		if err := k.RunUntil(kernelEpoch.Add(time.Second), 0); err != nil {
			t.Fatal(err)
		}
	})

	if len(got) != len(want) {
		t.Fatalf("kernel ran %d events, scheduler %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: kernel %q, scheduler %q", i, got[i], want[i])
		}
	}
	if !k.Now().Equal(s.Now()) {
		t.Fatalf("clocks diverged: kernel %v, scheduler %v", k.Now(), s.Now())
	}
}

// TestKernelSimultaneousCrossLaneEvents pins the canonical merge order
// when several lanes post to one destination at the same instant: the
// order is a pure function of the seed, identical at every worker
// count.
func TestKernelSimultaneousCrossLaneEvents(t *testing.T) {
	run := func(workers int) []string {
		k := NewKernel(kernelEpoch, KernelOpts{Workers: workers, Seed: 42})
		k.SetLookahead(10 * time.Millisecond)
		const n = 8
		dst := k.AddLane()
		var got []string // only dst appends: single-lane owned
		at := kernelEpoch.Add(20 * time.Millisecond)
		for i := 0; i < n; i++ {
			src := k.AddLane()
			tag := fmt.Sprintf("src-%d", i)
			src.After(5*time.Millisecond, func() {
				src.Post(dst, at, func(any) { got = append(got, tag) }, nil)
			})
		}
		if err := k.RunUntil(kernelEpoch.Add(time.Second), 0); err != nil {
			t.Fatal(err)
		}
		return got
	}
	want := run(1)
	if len(want) != 8 {
		t.Fatalf("expected 8 deliveries, got %d", len(want))
	}
	for _, w := range []int{2, 8} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: delivery %d is %q, want %q", w, i, got[i], want[i])
			}
		}
	}
}

// TestKernelAfterCallReuseAcrossBarriers exercises the pooled
// no-handle path when recycled events carry arguments across window
// barriers: every delivery must see its own argument even though the
// Event structs are freelist-reused between windows.
func TestKernelAfterCallReuseAcrossBarriers(t *testing.T) {
	k := NewKernel(kernelEpoch, KernelOpts{})
	k.SetLookahead(time.Millisecond)
	l := k.AddLane()
	const rounds = 50
	seen := make([]int, 0, rounds)
	var fire func(any)
	fire = func(arg any) {
		i, _ := arg.(int)
		seen = append(seen, i)
		if i+1 < rounds {
			// Spans several barriers per hop: delay > lookahead.
			l.AfterCall(3*time.Millisecond, fire, i+1)
		}
	}
	l.AfterCall(0, fire, 0)
	if err := k.RunUntil(kernelEpoch.Add(time.Second), 0); err != nil {
		t.Fatal(err)
	}
	if len(seen) != rounds {
		t.Fatalf("ran %d rounds, want %d", len(seen), rounds)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("round %d saw argument %d", i, v)
		}
	}
	if k.Executed() != rounds {
		t.Fatalf("Executed() = %d, want %d", k.Executed(), rounds)
	}
}

// TestKernelCancelRacingBarrierFlush cancels a timer in the same window
// where a barrier flush merges a post onto the same lane at the very
// same instant: the cancelled timer must not fire, the merged post
// must, and a cancelled-then-drained lane must not wedge the kernel.
func TestKernelCancelRacingBarrierFlush(t *testing.T) {
	k := NewKernel(kernelEpoch, KernelOpts{Seed: 7})
	k.SetLookahead(10 * time.Millisecond)
	a, b := k.AddLane(), k.AddLane()

	var cancelled *Event
	fired := []string{}
	at := kernelEpoch.Add(25 * time.Millisecond)
	cancelled = b.At(at, func() { fired = append(fired, "cancelled-timer") })
	// Lane b cancels its own timer inside the window that also produces
	// a's post targeting the same lane and instant.
	b.After(2*time.Millisecond, func() { cancelled.Cancel() })
	a.After(2*time.Millisecond, func() {
		a.Post(b, at, func(any) { fired = append(fired, "post") }, nil)
	})

	if err := k.RunUntil(kernelEpoch.Add(time.Second), 0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != "post" {
		t.Fatalf("fired = %v, want [post]", fired)
	}
	if k.Pending() != 0 {
		t.Fatalf("pending = %d after drain", k.Pending())
	}
}

// TestKernelCancelOnlyEventThenIdle pins the fully-cancelled-lane path:
// a lane whose only pending event is cancelled must be reaped from the
// wake heap without stalling the run or firing anything.
func TestKernelCancelOnlyEventThenIdle(t *testing.T) {
	k := NewKernel(kernelEpoch, KernelOpts{})
	k.SetLookahead(time.Millisecond)
	a, b := k.AddLane(), k.AddLane()
	ran := false
	ev := b.At(kernelEpoch.Add(50*time.Millisecond), func() { ran = true })
	a.After(time.Millisecond, func() { ev.Cancel() })
	if err := k.RunUntil(kernelEpoch.Add(time.Second), 0); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !k.Now().Equal(kernelEpoch.Add(time.Second)) {
		t.Fatalf("clock stopped at %v", k.Now())
	}
}

// TestKernelErrHorizon mirrors the sequential engine's event budget:
// exceeding maxEvents before the deadline returns ErrHorizon.
func TestKernelErrHorizon(t *testing.T) {
	k := NewKernel(kernelEpoch, KernelOpts{})
	k.SetLookahead(time.Millisecond)
	l := k.AddLane()
	var tick func()
	tick = func() { l.After(time.Microsecond, tick) }
	l.After(0, tick)
	if err := k.RunUntil(kernelEpoch.Add(time.Hour), 100); err != ErrHorizon {
		t.Fatalf("err = %v, want ErrHorizon", err)
	}
}

// TestKernelIdleAdvancesClocks: with nothing scheduled, RunUntil leaves
// the kernel and every lane clock at the deadline, matching the
// sequential engine so idle nodes observe the same time.
func TestKernelIdleAdvancesClocks(t *testing.T) {
	k := NewKernel(kernelEpoch, KernelOpts{Workers: 4})
	a, b := k.AddLane(), k.AddLane()
	deadline := kernelEpoch.Add(3 * time.Second)
	if err := k.RunUntil(deadline, 0); err != nil {
		t.Fatal(err)
	}
	for i, l := range []*Lane{a, b} {
		if !l.Now().Equal(deadline) {
			t.Fatalf("lane %d clock %v, want %v", i, l.Now(), deadline)
		}
	}
	if !k.Now().Equal(deadline) {
		t.Fatalf("kernel clock %v, want %v", k.Now(), deadline)
	}
}

// TestKernelZeroLookahead pins the degenerate window: with no declared
// lookahead the kernel barriers at every distinct instant and still
// runs everything in order.
func TestKernelZeroLookahead(t *testing.T) {
	k := NewKernel(kernelEpoch, KernelOpts{})
	a, b := k.AddLane(), k.AddLane()
	var got []string
	a.After(2*time.Millisecond, func() { got = append(got, "a2") })
	b.After(1*time.Millisecond, func() { got = append(got, "b1") })
	a.After(3*time.Millisecond, func() {
		a.Post(b, a.Now().Add(time.Millisecond), func(any) { got = append(got, "post4") }, nil)
	})
	if err := k.RunUntil(kernelEpoch.Add(time.Second), 0); err != nil {
		t.Fatal(err)
	}
	want := []string{"b1", "a2", "post4"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestKernelPostClamp: a post violating the conservative contract
// (target instant inside the current window) is clamped to the window
// end rather than delivered into the past.
func TestKernelPostClamp(t *testing.T) {
	k := NewKernel(kernelEpoch, KernelOpts{})
	k.SetLookahead(10 * time.Millisecond)
	a, b := k.AddLane(), k.AddLane()
	var at time.Time
	a.After(time.Millisecond, func() {
		// Target is in the past relative to the window: must clamp.
		a.Post(b, kernelEpoch, func(any) { at = b.Now() }, nil)
	})
	if err := k.RunUntil(kernelEpoch.Add(time.Second), 0); err != nil {
		t.Fatal(err)
	}
	if at.Before(kernelEpoch.Add(time.Millisecond)) {
		t.Fatalf("post delivered at %v, before the posting window", at)
	}
}

// BenchmarkKernelLocalEvents measures the pooled same-lane hot path;
// steady-state must be allocation-free like the sequential engine.
func BenchmarkKernelLocalEvents(b *testing.B) {
	k := NewKernel(kernelEpoch, KernelOpts{})
	k.SetLookahead(time.Millisecond)
	l := k.AddLane()
	var tick func(any)
	tick = func(any) { l.AfterCall(time.Millisecond, tick, nil) }
	l.AfterCall(0, tick, nil)
	deadline := kernelEpoch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deadline = deadline.Add(time.Millisecond)
		if err := k.RunUntil(deadline, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// checkWakeOrder verifies the wake heap's structural invariants: every
// in-heap lane's heapIdx matches its position, and no parent orders after
// a child. A violation strands the child's subtree — those lanes stop
// being claimed until an unrelated far-future window drags time forward.
func checkWakeOrder(t *testing.T, k *Kernel) {
	t.Helper()
	for i, l := range k.wake {
		if int(l.heapIdx) != i {
			t.Fatalf("wake[%d] lane %d has heapIdx %d", i, l.idx, l.heapIdx)
		}
		if i == 0 {
			continue
		}
		p := k.wake[(i-1)/2]
		ct, cok := l.nextAt()
		pt, pok := p.nextAt()
		if pok && cok && pt.After(ct) {
			t.Fatalf("wake order violated: parent lane %d at %v above child lane %d at %v (pos %d)",
				p.idx, pt.Sub(kernelEpoch), l.idx, ct.Sub(kernelEpoch), i)
		}
		if !pok && cok {
			t.Fatalf("wake order violated: eventless parent lane %d above child lane %d (pos %d)", p.idx, l.idx, i)
		}
	}
}

// TestKernelMassBarrierWakeOrder reproduces a wake-heap corruption: a
// barrier that merges posts into a subset of quiet in-wake lanes
// (rewriting their far-future keys to near-term ones, in an order
// unrelated to their heap positions) while re-queueing a large fleet of
// active lanes. Deferring the heap fixes to the end of the barrier let
// re-queued lanes pile up beneath a mispositioned small-key lane, and
// the deferred sift-up then dragged an untouched far-future lane down on
// top of them — a subtree the claim loop never reached, so its events ran
// seconds late, and every message they posted was clamped to the late
// window. The test checks the heap invariant between steps and asserts
// every cross-lane post lands exactly at its posted instant.
func TestKernelMassBarrierWakeOrder(t *testing.T) {
	const (
		lookahead = time.Millisecond
		fleet     = 1024
		quiet     = 64
		ticks     = 8
	)
	k := NewKernel(kernelEpoch, KernelOpts{Workers: 4, Seed: 42})
	k.SetLookahead(lookahead)
	hub := k.AddLane()
	var late int
	var maxSkew time.Duration
	check := func(l *Lane, expect time.Time) {
		if d := l.Now().Sub(expect); d != 0 {
			late++
			if d > maxSkew {
				maxSkew = d
			}
		}
	}

	// Quiet lanes idle on varied far-future timers — the keys a bad sift
	// can strand the fleet behind.
	quietLanes := make([]*Lane, quiet)
	for i := range quietLanes {
		l := k.AddLane()
		quietLanes[i] = l
		l.At(kernelEpoch.Add(4*time.Second+time.Duration(i)*13*time.Millisecond), func() {})
	}
	// Fleet lanes tick in lockstep (like fleet-wide maintenance timers)
	// and report each tick to the hub; the report must arrive exactly one
	// lookahead after the tick.
	for i := 0; i < fleet; i++ {
		l := k.AddLane()
		for n := 1; n <= ticks; n++ {
			at := kernelEpoch.Add(time.Duration(n) * 30 * time.Millisecond)
			l.At(at, func() {
				expect := l.Now().Add(lookahead)
				l.Post(hub, expect, func(any) { check(hub, expect) }, nil)
			})
		}
	}
	// Just before each fleet tick, the hub pings a rotating subset of the
	// quiet lanes, with delivery instants ordered against the lanes' timer
	// order; the merge of those posts shares a barrier with the fleet's
	// mass re-queue and rewrites scattered in-wake keys at once.
	for n := 1; n <= ticks; n++ {
		n := n
		at := kernelEpoch.Add(time.Duration(n)*30*time.Millisecond - lookahead/2)
		hub.At(at, func() {
			for j, ql := range quietLanes {
				if (j*7+n)%3 != 0 {
					continue
				}
				ql := ql
				expect := hub.Now().Add(lookahead + time.Duration(quiet-j)*100*time.Microsecond)
				hub.Post(ql, expect, func(any) { check(ql, expect) }, nil)
			}
		})
	}
	// Step through the tick storms in small increments, auditing the wake
	// heap at each pause; then run out the clock and demand punctuality.
	end := kernelEpoch.Add(12 * time.Second)
	for at := kernelEpoch.Add(time.Millisecond); at.Before(kernelEpoch.Add(300 * time.Millisecond)); at = at.Add(time.Millisecond) {
		if err := k.RunUntil(at, 0); err != nil {
			t.Fatal(err)
		}
		checkWakeOrder(t, k)
	}
	if err := k.RunUntil(end, 0); err != nil {
		t.Fatal(err)
	}
	if late > 0 {
		t.Fatalf("%d cross-lane posts ran off their posted instant (max skew %v)", late, maxSkew)
	}
}

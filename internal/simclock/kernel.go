// The parallel deterministic kernel. A Kernel partitions the simulation
// into lanes — one per network node — each with its own event heap,
// clock, and schedule-order sequence. Lanes whose next events fall inside
// the current conservative window [T, T+lookahead) execute concurrently
// on a configurable number of workers; cross-lane effects (message
// deliveries) are posted into per-lane mailboxes and merged at the
// window barrier in a canonical order. Because lane assignment, window
// boundaries, per-lane sequences, and the mailbox merge order are all
// derived from the seed and the schedule alone — never from worker
// count, goroutine interleaving, or GOMAXPROCS — a Kernel run is a pure
// function of (seed, topology): the same seed produces byte-identical
// event orders at any worker count. The classic conservative-PDES
// safety argument applies: a cross-lane effect posted from a window
// always lands at or after the window's end (netsim guarantees post
// delay >= lookahead = the minimum link latency), so no lane can ever
// receive an event earlier than one it already executed.
package simclock

import (
	"container/heap"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// splitmix64 advances the splitmix64 generator and returns the next
// 64-bit output. It is the kernel's tie-break hash and the seed
// derivation primitive for per-link RNG streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes x through one splitmix64 round — the deterministic
// stream-derivation helper shared by the kernel's tie-breaks and
// netsim's per-link loss streams.
func Mix64(x uint64) uint64 {
	s := x
	return splitmix64(&s)
}

// Float64From maps a 64-bit draw onto [0, 1) with 53-bit precision.
func Float64From(bits uint64) float64 {
	return float64(bits>>11) / (1 << 53)
}

// RandNext advances a splitmix64 stream in place and returns its next
// output. Streams seeded with Mix64 and advanced with RandNext give
// every consumer (for example each netsim link) an independent
// deterministic sequence regardless of global event interleaving.
func RandNext(state *uint64) uint64 {
	return splitmix64(state)
}

// post is one cross-lane effect awaiting the window barrier.
type post struct {
	fn  func(any)
	arg any
	// at is the instant the effect fires on the destination lane.
	at time.Time
	// postedAt is the source lane's clock when the effect was posted —
	// the lamport component of the merge order (the sequential reference
	// engine would have heap-inserted the event at this instant).
	postedAt time.Time
	// tie is a seeded hash breaking (at, postedAt) collisions without
	// systematic lane-index bias; src/seq give the total-order fallback.
	tie      uint64
	src, dst int32
	seq      uint64
}

// cmpPost is the canonical mailbox merge order: delivery time, then the
// lamport post instant, then the seeded tie-break, then (source lane,
// per-lane post sequence) as a total-order fallback. Every component is
// a pure function of the schedule, so the order is identical at any
// worker count.
func cmpPost(a, b post) int {
	if c := a.at.Compare(b.at); c != 0 {
		return c
	}
	if c := a.postedAt.Compare(b.postedAt); c != 0 {
		return c
	}
	if a.tie != b.tie {
		if a.tie < b.tie {
			return -1
		}
		return 1
	}
	if a.src != b.src {
		return int(a.src - b.src)
	}
	if a.seq < b.seq {
		return -1
	}
	if a.seq > b.seq {
		return 1
	}
	return 0
}

// Lane is one deterministic partition of a Kernel: an event heap, a
// clock, and a schedule-order sequence, owned by exactly one worker for
// the duration of a window. All scheduling calls on a Lane must come
// from code running on that lane (or from outside RunUntil entirely).
type Lane struct {
	k   *Kernel
	idx int32
	// heapIdx is the lane's position in the kernel's wake heap; -1 when
	// the lane has no pending events.
	heapIdx int32

	now     time.Time
	seq     uint64
	postSeq uint64
	events  eventHeap
	free    *Event

	outbox []post
	inbox  []post
	ran    int
}

var _ Clock = (*Lane)(nil)

// Index returns the lane's index within its kernel.
func (l *Lane) Index() int { return int(l.idx) }

// Now returns the lane's current virtual time: the instant of the event
// being executed while the lane runs, and the kernel's committed time
// between runs.
func (l *Lane) Now() time.Time { return l.now }

// At schedules fn on this lane at instant t (clamped to the lane's
// current time) and returns a cancellable handle.
func (l *Lane) At(t time.Time, fn func()) *Event {
	if t.Before(l.now) {
		t = l.now
	}
	ev := &Event{at: t, seq: l.seq, fn: fn}
	l.seq++
	heap.Push(&l.events, ev)
	return ev
}

// After schedules fn on this lane d after the lane's current time.
func (l *Lane) After(d time.Duration, fn func()) *Event {
	return l.At(l.now.Add(d), fn)
}

// AtCall schedules fn(arg) at instant t without returning a handle,
// recycling the event through the lane's freelist (the same no-handle,
// no-allocation contract as Scheduler.AtCall).
func (l *Lane) AtCall(t time.Time, fn func(any), arg any) {
	if t.Before(l.now) {
		t = l.now
	}
	ev := l.free
	if ev != nil {
		l.free = ev.nextFree
		*ev = Event{at: t, seq: l.seq, fnArg: fn, arg: arg, pooled: true}
	} else {
		ev = &Event{at: t, seq: l.seq, fnArg: fn, arg: arg, pooled: true}
	}
	l.seq++
	heap.Push(&l.events, ev)
}

// AfterCall schedules fn(arg) d after the lane's current time with
// AtCall's pooled semantics.
func (l *Lane) AfterCall(d time.Duration, fn func(any), arg any) {
	l.AtCall(l.now.Add(d), fn, arg)
}

// Post schedules fn(arg) on another lane at instant t. The effect is
// buffered in the posting lane's outbox and merged into the destination
// at the next window barrier in canonical order. The conservative
// contract requires t >= the current window's end (netsim guarantees it
// by deriving the kernel lookahead from the minimum link latency);
// earlier instants are clamped to the window end.
func (l *Lane) Post(dst *Lane, t time.Time, fn func(any), arg any) {
	if l.k.inWindow && t.Before(l.k.wEnd) {
		t = l.k.wEnd
	}
	h := l.k.seed ^ (uint64(l.idx) << 40) ^ l.postSeq ^ uint64(t.UnixNano())
	l.outbox = append(l.outbox, post{
		fn: fn, arg: arg, at: t, postedAt: l.now,
		tie: Mix64(h), src: l.idx, dst: dst.idx, seq: l.postSeq,
	})
	l.postSeq++
}

// runWindow executes the lane's events inside [l.now, wEnd) that are not
// past the deadline, and reports how many ran.
func (l *Lane) runWindow(wEnd, deadline time.Time) int {
	ran := 0
	for len(l.events) > 0 {
		ev := l.events[0]
		if ev.cancelled {
			heap.Pop(&l.events)
			if ev.pooled {
				l.release(ev)
			}
			continue
		}
		if !ev.at.Before(wEnd) || ev.at.After(deadline) {
			break
		}
		heap.Pop(&l.events)
		l.now = ev.at
		if ev.pooled {
			fn, arg := ev.fnArg, ev.arg
			l.release(ev)
			fn(arg)
		} else {
			ev.fn()
		}
		ran++
	}
	return ran
}

// release returns a pooled event to the lane freelist.
func (l *Lane) release(ev *Event) {
	*ev = Event{nextFree: l.free}
	l.free = ev
}

// nextAt reaps cancelled heap heads and returns the lane's next pending
// event time; ok is false when the lane is drained.
func (l *Lane) nextAt() (time.Time, bool) {
	for len(l.events) > 0 {
		ev := l.events[0]
		if !ev.cancelled {
			return ev.at, true
		}
		heap.Pop(&l.events)
		if ev.pooled {
			l.release(ev)
		}
	}
	return time.Time{}, false
}

// laneHeap orders lanes by next pending event time, then lane index.
type laneHeap []*Lane

func (h laneHeap) Len() int { return len(h) }

func (h laneHeap) Less(i, j int) bool {
	ti, _ := h[i].nextAt()
	tj, _ := h[j].nextAt()
	if !ti.Equal(tj) {
		return ti.Before(tj)
	}
	return h[i].idx < h[j].idx
}

func (h laneHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = int32(i)
	h[j].heapIdx = int32(j)
}

func (h *laneHeap) Push(x any) {
	l, ok := x.(*Lane)
	if !ok {
		return
	}
	l.heapIdx = int32(len(*h))
	*h = append(*h, l)
}

func (h *laneHeap) Pop() any {
	old := *h
	n := len(old)
	l := old[n-1]
	old[n-1] = nil
	l.heapIdx = -1
	*h = old[:n-1]
	return l
}

// KernelOpts configures a Kernel.
type KernelOpts struct {
	// Workers is the number of concurrent lane executors (<= 1 runs the
	// whole window inline on the calling goroutine). Worker count never
	// affects results — only wall-clock time.
	Workers int
	// Seed feeds the canonical merge order's tie-break hash.
	Seed uint64
}

// Kernel is the parallel deterministic event kernel. Create one with
// NewKernel, add a lane per simulated node, and drive it with RunUntil.
type Kernel struct {
	origin time.Time
	now    time.Time
	seed   uint64

	lookahead time.Duration
	workers   int

	lanes []*Lane
	wake  laneHeap

	// Window state shared with workers. wEnd and deadline are written by
	// the coordinating goroutine before workers are released for a
	// window and read by workers during it (the channel send orders the
	// accesses); cursor hands out active-lane indices.
	inWindow bool
	wEnd     time.Time
	deadline time.Time
	active   []*Lane
	cursor   atomic.Int64
	pool     *workerPool

	executed int64
}

// NewKernel returns an empty Kernel whose clock starts at origin.
func NewKernel(origin time.Time, opts KernelOpts) *Kernel {
	w := opts.Workers
	if w < 1 {
		w = 1
	}
	return &Kernel{origin: origin, now: origin, seed: opts.Seed, workers: w}
}

// AddLane appends a lane and returns it. Lanes must be added before
// RunUntil is first called.
func (k *Kernel) AddLane() *Lane {
	l := &Lane{k: k, idx: int32(len(k.lanes)), heapIdx: -1, now: k.now}
	k.lanes = append(k.lanes, l)
	return l
}

// Lane returns lane i.
func (k *Kernel) Lane(i int) *Lane { return k.lanes[i] }

// Lanes reports the lane count.
func (k *Kernel) Lanes() int { return len(k.lanes) }

// Now returns the kernel's committed virtual time.
func (k *Kernel) Now() time.Time { return k.now }

// Executed reports the total number of events run so far.
func (k *Kernel) Executed() int64 { return k.executed }

// SetWorkers changes the worker count for subsequent runs. Results are
// unaffected by construction; only wall-clock time changes.
func (k *Kernel) SetWorkers(w int) {
	if w < 1 {
		w = 1
	}
	k.workers = w
}

// Workers reports the configured worker count.
func (k *Kernel) Workers() int { return k.workers }

// SetLookahead sets the conservative window width: the guaranteed
// minimum delay of any cross-lane Post. netsim derives it from the
// minimum link latency before each run. A zero lookahead degrades to
// one barrier per distinct instant, which is still deterministic —
// just slower.
func (k *Kernel) SetLookahead(d time.Duration) {
	if d < 0 {
		d = 0
	}
	k.lookahead = d
}

// Pending reports how many events are queued across all lanes
// (including cancelled ones not yet reaped).
func (k *Kernel) Pending() int {
	n := 0
	for _, l := range k.lanes {
		n += len(l.events)
	}
	return n
}

// minParallelLanes is the window occupancy below which dispatching to
// workers costs more than it buys; such windows run inline.
const minParallelLanes = 4

// RunUntil executes events with time at or before deadline, leaving
// later events queued and the committed clock at the deadline. It
// returns ErrHorizon if maxEvents (0 = unlimited) ran before the
// deadline was reached. Results are identical at any worker count.
func (k *Kernel) RunUntil(deadline time.Time, maxEvents int) error {
	// Seed the wake heap from every lane with pending work: events may
	// have been scheduled directly between runs.
	k.wake = k.wake[:0]
	for _, l := range k.lanes {
		l.heapIdx = -1
		if _, ok := l.nextAt(); ok {
			l.heapIdx = int32(len(k.wake))
			k.wake = append(k.wake, l)
		}
	}
	heap.Init(&k.wake)
	k.deadline = deadline

	stop := k.startWorkers()
	defer stop()

	step := k.lookahead
	if step <= 0 {
		step = 1 // degenerate: one barrier per distinct instant
	}
	ran := 0
	for len(k.wake) > 0 {
		first, ok := k.wake[0].nextAt()
		if !ok {
			// Fully-cancelled lane: reap it rather than let a zero
			// next-event time distort the window start.
			heap.Pop(&k.wake)
			continue
		}
		if first.After(deadline) {
			break
		}
		k.wEnd = first.Add(step)
		k.inWindow = true

		// Claim every lane with work inside the window. Lanes cannot
		// become runnable mid-window: local scheduling stays on the
		// already-claimed lane and cross-lane posts land at or after
		// wEnd.
		k.active = k.active[:0]
		for len(k.wake) > 0 {
			t, _ := k.wake[0].nextAt()
			if !t.Before(k.wEnd) || t.After(deadline) {
				break
			}
			l, _ := heap.Pop(&k.wake).(*Lane)
			k.active = append(k.active, l)
		}

		if k.workers <= 1 || len(k.active) < minParallelLanes {
			for _, l := range k.active {
				l.ran = l.runWindow(k.wEnd, deadline)
			}
		} else {
			k.cursor.Store(0)
			k.releaseWorkers()
			k.drainActive()
			k.awaitWorkers()
		}
		k.inWindow = false

		// Barrier: merge outboxes into destination lanes in canonical
		// order, then requeue lanes with remaining work.
		dirty := k.mergePosts()
		for _, l := range k.active {
			ran += l.ran
			k.executed += int64(l.ran)
			if l.heapIdx < 0 {
				if _, ok := l.nextAt(); ok {
					heap.Push(&k.wake, l)
				}
			}
		}
		// In-wake dirty lanes were re-positioned inside mergePosts; what
		// remains is waking lanes that were idle (not in the heap, not
		// active) before their posts arrived.
		for _, l := range dirty {
			if l.heapIdx < 0 {
				if _, ok := l.nextAt(); ok {
					heap.Push(&k.wake, l)
				}
			}
		}
		if maxEvents > 0 && ran >= maxEvents {
			return ErrHorizon
		}
	}

	if k.now.Before(deadline) {
		k.now = deadline
	}
	// Lanes idle between runs read the committed clock, mirroring the
	// sequential engine's RunUntil contract.
	for _, l := range k.lanes {
		if l.now.Before(k.now) {
			l.now = k.now
		}
	}
	return nil
}

// mergePosts distributes every active lane's outbox into destination
// inboxes, sorts each inbox canonically, and appends the posts to the
// destination heaps in that order. It returns the lanes that received
// posts. Single-threaded: it runs between windows.
func (k *Kernel) mergePosts() []*Lane {
	var dirty []*Lane
	for _, src := range k.active {
		for _, p := range src.outbox {
			dst := k.lanes[p.dst]
			if len(dst.inbox) == 0 {
				dirty = append(dirty, dst)
			}
			dst.inbox = append(dst.inbox, p)
		}
		src.outbox = src.outbox[:0]
	}
	for _, dst := range dirty {
		slices.SortFunc(dst.inbox, cmpPost)
		for _, p := range dst.inbox {
			dst.AtCall(p.at, p.fn, p.arg)
		}
		dst.inbox = dst.inbox[:0]
		// Restore the wake heap NOW, before the next lane's inserts touch
		// another key. heap.Fix is only sound for a single out-of-place
		// element in an otherwise valid heap: deferring all fixes to the
		// end of the barrier (while posts shrink many in-wake keys at
		// once) lets a sift move a large-keyed lane above a small-keyed
		// one it is never compared against, and a lane stranded deep in
		// the heap stops being claimed — its events (and every message
		// behind them) sit until some unrelated far-future timer drags
		// the window forward.
		if dst.heapIdx >= 0 {
			heap.Fix(&k.wake, int(dst.heapIdx))
		}
	}
	return dirty
}

// Worker pool. Workers are spawned per RunUntil and torn down before it
// returns; each window the coordinator resets the cursor, releases the
// workers, participates itself, and waits for the window WaitGroup.
type workerPool struct {
	wake []chan struct{}
	done sync.WaitGroup
	quit chan struct{}
	join sync.WaitGroup
}

var noopStop = func() {}

func (k *Kernel) startWorkers() func() {
	if k.workers <= 1 {
		return noopStop
	}
	p := &workerPool{quit: make(chan struct{})}
	p.wake = make([]chan struct{}, k.workers-1)
	for i := range p.wake {
		ch := make(chan struct{}, 1)
		p.wake[i] = ch
		p.join.Add(1)
		go func() {
			defer p.join.Done()
			for {
				select {
				case <-p.quit:
					return
				case <-ch:
				}
				k.drainActive()
				p.done.Done()
			}
		}()
	}
	k.pool = p
	return func() {
		close(p.quit)
		p.join.Wait()
		k.pool = nil
	}
}

func (k *Kernel) releaseWorkers() {
	k.pool.done.Add(len(k.pool.wake))
	for _, ch := range k.pool.wake {
		ch <- struct{}{}
	}
}

func (k *Kernel) awaitWorkers() { k.pool.done.Wait() }

// drainActive claims active lanes off the shared cursor and runs their
// windows. Which worker runs which lane never matters: lanes are
// disjoint and the merge order is canonical.
func (k *Kernel) drainActive() {
	for {
		i := k.cursor.Add(1) - 1
		if int(i) >= len(k.active) {
			return
		}
		l := k.active[i]
		l.ran = l.runWindow(k.wEnd, k.deadline)
	}
}

// Package core is the paper's primary contribution as a library: the
// decision-driven execution engine. It tracks the state of one decision
// query — a DNF expression over labels, each resolved by time-limited
// evidence — and answers the questions the resource manager needs:
// is the decision made, which label should be resolved next (short-circuit
// aware), when does currently held evidence expire, and was the decision
// reached in time.
package core

import (
	"errors"
	"fmt"
	"time"

	"athena/internal/boolexpr"
)

// Entry is one resolved label held by the engine, valid until Expires.
type Entry struct {
	// Value is the resolved boolean value.
	Value bool
	// Expires is when the evidence behind the value goes stale.
	Expires time.Time
	// Source identifies the data source of the evidence.
	Source string
	// Annotator identifies who computed the value.
	Annotator string
}

// Status describes a query's progress.
type Status int

const (
	// Pending means more evidence is needed.
	Pending Status = iota + 1
	// ResolvedTrue means a viable course of action was found.
	ResolvedTrue
	// ResolvedFalse means every course of action was ruled out.
	ResolvedFalse
	// Expired means the deadline passed before resolution.
	Expired
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Pending:
		return "pending"
	case ResolvedTrue:
		return "resolved-true"
	case ResolvedFalse:
		return "resolved-false"
	case Expired:
		return "expired"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrUnknownLabel is returned when setting a label the query does not
// reference.
var ErrUnknownLabel = errors.New("core: label not referenced by query")

// Engine drives one decision query.
type Engine struct {
	id       string
	expr     boolexpr.DNF
	deadline time.Time
	meta     boolexpr.MetaTable
	plan     boolexpr.QueryPlan

	entries map[string]Entry
	known   map[string]bool // labels referenced by the expression

	resolved   Status
	resolvedAt time.Time
}

// NewEngine creates an engine for a decision query. The metadata informs
// the short-circuit plan (Section III-A); missing entries get neutral
// defaults.
func NewEngine(id string, expr boolexpr.DNF, deadline time.Time, meta boolexpr.MetaTable) *Engine {
	known := make(map[string]bool)
	for _, l := range expr.Labels() {
		known[l] = true
	}
	return &Engine{
		id:       id,
		expr:     expr,
		deadline: deadline,
		meta:     meta,
		plan:     boolexpr.GreedyPlan(expr, meta),
		entries:  make(map[string]Entry),
		known:    known,
		resolved: Pending,
	}
}

// NewEngineWithPlan is NewEngine with an explicit evaluation plan, for
// callers that order retrieval by other criteria (e.g. the LVF scheduler
// orders literals by validity instead of short-circuit probability).
func NewEngineWithPlan(id string, expr boolexpr.DNF, deadline time.Time, meta boolexpr.MetaTable, plan boolexpr.QueryPlan) *Engine {
	e := NewEngine(id, expr, deadline, meta)
	e.plan = plan
	return e
}

// ID returns the query identifier.
func (e *Engine) ID() string { return e.id }

// Expr returns the decision expression.
func (e *Engine) Expr() boolexpr.DNF { return e.expr }

// Deadline returns the decision deadline.
func (e *Engine) Deadline() time.Time { return e.deadline }

// Labels returns the labels the query references, sorted.
func (e *Engine) Labels() []string { return e.expr.Labels() }

// Plan returns the short-circuit evaluation plan in use.
func (e *Engine) Plan() boolexpr.QueryPlan { return e.plan }

// Set records a resolved label. Stale entries (expires before now) are
// accepted but will read as Unknown. Setting after resolution is a no-op.
func (e *Engine) Set(label string, value bool, expires time.Time, source, annotator string) error {
	if !e.known[label] {
		return fmt.Errorf("%w: %q", ErrUnknownLabel, label)
	}
	if e.resolved != Pending {
		return nil
	}
	// Keep the longer-lived of the old and new evidence for this value;
	// a fresh observation always replaces an older one regardless.
	if prev, ok := e.entries[label]; ok && prev.Value == value && prev.Expires.After(expires) {
		return nil
	}
	e.entries[label] = Entry{Value: value, Expires: expires, Source: source, Annotator: annotator}
	return nil
}

// Entry returns the held entry for a label.
func (e *Engine) Entry(label string) (Entry, bool) {
	en, ok := e.entries[label]
	return en, ok
}

// Assignment is the fresh three-valued view of the query's labels at
// instant now: entries past expiry read as Unknown. Freshness at the
// exact expiry instant counts as fresh, matching object.Object.FreshAt so
// cache and engine agree and cannot livelock each other.
func (e *Engine) Assignment(now time.Time) boolexpr.Assignment {
	a := make(boolexpr.Assignment, len(e.entries))
	for l, en := range e.entries {
		if !now.After(en.Expires) {
			a[l] = boolexpr.FromBool(en.Value)
		}
	}
	return a
}

// Step advances the engine's status at instant now and returns it. Once a
// terminal status is reached it is sticky: a decision made in time stays
// made (condition (ii) of Section I demands freshness at decision time,
// which Step enforces by evaluating only unexpired entries).
func (e *Engine) Step(now time.Time) Status {
	if e.resolved != Pending {
		return e.resolved
	}
	switch e.expr.Eval(e.Assignment(now)) {
	case boolexpr.True:
		e.resolved = ResolvedTrue
		e.resolvedAt = now
	case boolexpr.False:
		e.resolved = ResolvedFalse
		e.resolvedAt = now
	default:
		if now.After(e.deadline) {
			e.resolved = Expired
			e.resolvedAt = now
		}
	}
	return e.resolved
}

// ResolvedAt returns when a terminal status was reached (zero if pending).
func (e *Engine) ResolvedAt() time.Time { return e.resolvedAt }

// NextLabel returns the label the short-circuit plan wants resolved next
// at instant now, or false if the query is terminal or nothing can advance
// it. Expired entries read as Unknown and so become fetchable again
// (refetch on expiry).
func (e *Engine) NextLabel(now time.Time) (string, bool) {
	if e.Step(now) != Pending {
		return "", false
	}
	lit, ok := boolexpr.NextUnknown(e.expr, e.Assignment(now), e.plan)
	if !ok {
		return "", false
	}
	return lit.Label, true
}

// UnknownLabels lists every label that currently reads Unknown in the
// first undecided term and all later terms — the candidate set batch
// schemes fetch eagerly. Order follows the plan.
func (e *Engine) UnknownLabels(now time.Time) []string {
	a := e.Assignment(now)
	var out []string
	seen := make(map[string]bool)
	for _, ti := range e.plan.TermOrder {
		t := e.expr.Terms[ti]
		if t.Eval(a) == boolexpr.False {
			continue
		}
		for _, li := range e.plan.LiteralOrder[ti] {
			l := t.Literals[li].Label
			if a.Get(l) == boolexpr.Unknown && !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	return out
}

// NextExpiry returns the earliest future expiry among entries that are
// still load-bearing (their label appears in a term not yet ruled out).
// The caller schedules a recheck then: if the query is still pending, the
// expired label must be refetched.
func (e *Engine) NextExpiry(now time.Time) (time.Time, bool) {
	a := e.Assignment(now)
	var (
		best  time.Time
		found bool
	)
	for _, ti := range e.plan.TermOrder {
		t := e.expr.Terms[ti]
		if t.Eval(a) == boolexpr.False {
			continue
		}
		for _, lit := range t.Literals {
			en, ok := e.entries[lit.Label]
			if !ok || !en.Expires.After(now) {
				continue
			}
			if !found || en.Expires.Before(best) {
				best = en.Expires
				found = true
			}
		}
	}
	return best, found
}

package core

import (
	"errors"
	"testing"
	"time"

	"athena/internal/boolexpr"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newEngine(expr string, deadline time.Duration) *Engine {
	return NewEngine("q1", boolexpr.ToDNF(boolexpr.MustParse(expr)), t0.Add(deadline), nil)
}

func TestEngineResolvesTrue(t *testing.T) {
	e := newEngine("(a & b) | c", time.Minute)
	if e.Step(t0) != Pending {
		t.Fatal("fresh engine not pending")
	}
	if err := e.Set("a", true, t0.Add(time.Minute), "s1", "ann"); err != nil {
		t.Fatal(err)
	}
	if e.Step(t0.Add(time.Second)) != Pending {
		t.Fatal("partial evidence resolved")
	}
	if err := e.Set("b", true, t0.Add(time.Minute), "s2", "ann"); err != nil {
		t.Fatal(err)
	}
	if got := e.Step(t0.Add(2 * time.Second)); got != ResolvedTrue {
		t.Fatalf("Step = %v, want resolved-true", got)
	}
	if !e.ResolvedAt().Equal(t0.Add(2 * time.Second)) {
		t.Errorf("ResolvedAt = %v", e.ResolvedAt())
	}
	// Terminal status sticky even if evidence later expires.
	if got := e.Step(t0.Add(time.Hour)); got != ResolvedTrue {
		t.Errorf("post-expiry Step = %v", got)
	}
}

func TestEngineResolvesFalseByShortCircuit(t *testing.T) {
	e := newEngine("(a & b) | (c & d)", time.Minute)
	if err := e.Set("a", false, t0.Add(time.Minute), "", ""); err != nil {
		t.Fatal(err)
	}
	if err := e.Set("c", false, t0.Add(time.Minute), "", ""); err != nil {
		t.Fatal(err)
	}
	if got := e.Step(t0); got != ResolvedFalse {
		t.Fatalf("Step = %v, want resolved-false (b and d short-circuited)", got)
	}
}

func TestEngineDeadline(t *testing.T) {
	e := newEngine("a", time.Second)
	if got := e.Step(t0.Add(2 * time.Second)); got != Expired {
		t.Fatalf("Step past deadline = %v", got)
	}
	// Late evidence does not revive it.
	if err := e.Set("a", true, t0.Add(time.Hour), "", ""); err != nil {
		t.Fatal(err)
	}
	if got := e.Step(t0.Add(3 * time.Second)); got != Expired {
		t.Errorf("Step = %v, want expired sticky", got)
	}
}

func TestEngineFreshnessAtDecisionTime(t *testing.T) {
	// Condition (ii): evidence must be fresh when the decision is made.
	e := newEngine("a & b", time.Minute)
	if err := e.Set("a", true, t0.Add(2*time.Second), "", ""); err != nil {
		t.Fatal(err)
	}
	if err := e.Set("b", true, t0.Add(time.Minute), "", ""); err != nil {
		t.Fatal(err)
	}
	// At t0+1s both fresh: resolves.
	if got := e.Step(t0.Add(time.Second)); got != ResolvedTrue {
		t.Fatalf("Step = %v", got)
	}

	// Same evidence but checked only after a expired: not resolvable.
	e2 := newEngine("a & b", time.Minute)
	if err := e2.Set("a", true, t0.Add(2*time.Second), "", ""); err != nil {
		t.Fatal(err)
	}
	if err := e2.Set("b", true, t0.Add(time.Minute), "", ""); err != nil {
		t.Fatal(err)
	}
	if got := e2.Step(t0.Add(10 * time.Second)); got != Pending {
		t.Fatalf("Step with stale a = %v, want pending", got)
	}
	// And a is fetchable again.
	if next, ok := e2.NextLabel(t0.Add(10 * time.Second)); !ok || next != "a" {
		t.Errorf("NextLabel = %q %v, want a (refetch)", next, ok)
	}
}

func TestEngineSetUnknownLabel(t *testing.T) {
	e := newEngine("a", time.Minute)
	if err := e.Set("zz", true, t0.Add(time.Minute), "", ""); !errors.Is(err, ErrUnknownLabel) {
		t.Errorf("err = %v, want ErrUnknownLabel", err)
	}
}

func TestEngineKeepsLongerLivedEvidence(t *testing.T) {
	e := newEngine("a & b", time.Minute)
	if err := e.Set("a", true, t0.Add(30*time.Second), "s1", ""); err != nil {
		t.Fatal(err)
	}
	// A shorter-lived same-value entry must not displace it.
	if err := e.Set("a", true, t0.Add(5*time.Second), "s2", ""); err != nil {
		t.Fatal(err)
	}
	en, ok := e.Entry("a")
	if !ok || !en.Expires.Equal(t0.Add(30*time.Second)) || en.Source != "s1" {
		t.Errorf("Entry = %+v %v", en, ok)
	}
	// A value change always replaces.
	if err := e.Set("a", false, t0.Add(10*time.Second), "s3", ""); err != nil {
		t.Fatal(err)
	}
	en, _ = e.Entry("a")
	if en.Value || en.Source != "s3" {
		t.Errorf("Entry after flip = %+v", en)
	}
}

func TestNextLabelFollowsShortCircuitPlan(t *testing.T) {
	meta := boolexpr.MetaTable{
		"cheapLikely": {Cost: 1, ProbTrue: 0.95},
		"other":       {Cost: 1, ProbTrue: 0.95},
		"costly":      {Cost: 1000, ProbTrue: 0.05},
		"costly2":     {Cost: 1000, ProbTrue: 0.05},
	}
	expr := boolexpr.ToDNF(boolexpr.MustParse("(costly & costly2) | (cheapLikely & other)"))
	e := NewEngine("q", expr, t0.Add(time.Minute), meta)
	next, ok := e.NextLabel(t0)
	if !ok || (next != "cheapLikely" && next != "other") {
		t.Errorf("NextLabel = %q, want the cheap likely term first", next)
	}
}

func TestUnknownLabelsSkipsFalseTerms(t *testing.T) {
	e := newEngine("(a & b) | (c & d)", time.Minute)
	if err := e.Set("a", false, t0.Add(time.Minute), "", ""); err != nil {
		t.Fatal(err)
	}
	got := e.UnknownLabels(t0)
	if len(got) != 2 {
		t.Fatalf("UnknownLabels = %v", got)
	}
	for _, l := range got {
		if l == "b" {
			t.Error("short-circuited label still listed")
		}
	}
}

func TestNextExpiryTracksLoadBearingEntries(t *testing.T) {
	e := newEngine("(a & b) | (c & d)", time.Minute)
	if err := e.Set("a", true, t0.Add(10*time.Second), "", ""); err != nil {
		t.Fatal(err)
	}
	if err := e.Set("c", false, t0.Add(5*time.Second), "", ""); err != nil {
		t.Fatal(err)
	}
	// c's term is ruled out while c is fresh, so c's expiry is not
	// load-bearing... but after c expires the term revives. The engine
	// reports the earliest expiry among entries in live terms; with c
	// fresh its term evaluates false, so only a (10s) counts... c itself
	// expires sooner (5s) but its term is currently false.
	exp, ok := e.NextExpiry(t0)
	if !ok || !exp.Equal(t0.Add(10*time.Second)) {
		t.Errorf("NextExpiry = %v %v, want a's 10s", exp, ok)
	}
	// Past c's expiry, its term is live again; a is the only fresh entry.
	exp, ok = e.NextExpiry(t0.Add(6 * time.Second))
	if !ok || !exp.Equal(t0.Add(10*time.Second)) {
		t.Errorf("NextExpiry after c stale = %v %v", exp, ok)
	}
	// Nothing fresh: no expiry.
	if _, ok := e.NextExpiry(t0.Add(time.Minute)); ok {
		t.Error("NextExpiry with all stale returned true")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Pending: "pending", ResolvedTrue: "resolved-true",
		ResolvedFalse: "resolved-false", Expired: "expired",
	} {
		if s.String() != want {
			t.Errorf("String(%d) = %q", int(s), s.String())
		}
	}
}

package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"athena/internal/simclock"
)

// chatterNet builds a random connected topology and drives deterministic
// node-local traffic over it: every node ticks on its own phase and
// sends to a neighbor chosen by its private splitmix64 stream; receivers
// probabilistically reply. Loss, a link outage, and node churn are all
// injected. Returns per-node receive traces and the network.
func chatterNet(t *testing.T, workers int, seq bool) (map[string][]string, *Network) {
	t.Helper()
	const (
		nNodes = 24
		seed   = 0x5eed
		run    = 3 * time.Second
	)
	epoch := time.Unix(0, 0).UTC()

	var net *Network
	if seq {
		net = New(simclock.New(epoch))
	} else {
		net = NewParallel(simclock.NewKernel(epoch, simclock.KernelOpts{Workers: workers, Seed: seed}))
	}

	// The odd bandwidth keeps serialization times off any round-ns grid:
	// the engines agree on the order of same-node same-instant events
	// only up to their (different but equally valid) tie-break rules, so
	// the equivalence scenario avoids manufacturing exact-instant ties.
	topoRNG := rand.New(rand.NewSource(seed))
	cfg := LinkConfig{Bandwidth: 1250013, Latency: 5 * time.Millisecond, QueueBytes: 1 << 14}
	if err := BuildRandomConnected(net, nNodes, nNodes, cfg, topoRNG); err != nil {
		t.Fatal(err)
	}

	// traceArr[i] is appended only by node i's handler — lane-owned, so
	// safe at any worker count.
	traceArr := make([][]string, nNodes)
	ids := make([]string, nNodes)
	rngs := make([]uint64, nNodes)
	for i := range ids {
		ids[i] = fmt.Sprintf("n%d", i)
		rngs[i] = simclock.Mix64(seed ^ uint64(i+1))
		idx := i
		self := ids[i]
		clock := net.ClockFor(self)
		net.AddNode(self, func(from string, size int64, payload any) {
			traceArr[idx] = append(traceArr[idx],
				fmt.Sprintf("%s<-%s:%d@%d", self, from, size, clock.Now().UnixNano()))
			// Occasional reply exercises receive-triggered sends.
			if simclock.RandNext(&rngs[idx])%4 == 0 {
				_ = net.Send(self, from, 64, nil)
			}
		})
	}

	net.SeedFailures(seed)
	if err := net.SetLoss(0.05); err != nil {
		t.Fatal(err)
	}
	if err := net.ScheduleLinkOutage(ids[0], net.Neighbors(ids[0])[0], epoch.Add(700*time.Millisecond), 500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := net.ScheduleNodeOutage(ids[nNodes-1], epoch.Add(1100*time.Millisecond), 600*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	for i, id := range ids {
		idx := i
		self := id
		clock := net.ClockFor(self)
		nbs := net.Neighbors(self)
		var tick func()
		tick = func() {
			draw := simclock.RandNext(&rngs[idx])
			peer := nbs[draw%uint64(len(nbs))]
			size := int64(100 + draw%900)
			_ = net.SendPriority(self, peer, size, int(draw%3), nil)
			_ = net.AtNode(self, clock.Now().Add(time.Duration(7000019+idx*99991)*time.Nanosecond), tick)
		}
		if err := net.AtNode(id, epoch.Add(time.Duration(i*1000003)*time.Nanosecond), tick); err != nil {
			t.Fatal(err)
		}
	}

	if err := net.RunUntil(epoch.Add(run), 0); err != nil {
		t.Fatal(err)
	}
	traces := make(map[string][]string, nNodes)
	for i, id := range ids {
		traces[id] = traceArr[i]
	}
	return traces, net
}

// TestParallelMatchesSequentialOutcome pins the two engines to each
// other: same topology, traffic, loss streams, outage and churn schedule
// must produce the same aggregate counters and the same per-node receive
// multisets. (Event order between independent nodes may differ; their
// effects commute.)
func TestParallelMatchesSequentialOutcome(t *testing.T) {
	seqTraces, seqNet := chatterNet(t, 1, true)
	parTraces, parNet := chatterNet(t, 1, false)

	if s, p := seqNet.Stats(), parNet.Stats(); s != p {
		t.Fatalf("stats diverged:\nsequential %+v\nparallel   %+v", s, p)
	}
	for id, want := range seqTraces {
		got := parTraces[id]
		if len(got) != len(want) {
			t.Fatalf("node %s: %d receives on parallel, %d on sequential", id, len(got), len(want))
		}
		ws, gs := append([]string(nil), want...), append([]string(nil), got...)
		sort.Strings(ws)
		sort.Strings(gs)
		for i := range ws {
			if ws[i] != gs[i] {
				t.Fatalf("node %s receive multiset diverged at %d: %q vs %q", id, i, gs[i], ws[i])
			}
		}
	}
}

// TestParallelDeterministicAcrossWorkers pins the headline property at
// the netsim layer: identical per-node receive traces — order included —
// at any worker count.
func TestParallelDeterministicAcrossWorkers(t *testing.T) {
	ref, refNet := chatterNet(t, 1, false)
	for _, w := range []int{2, 8} {
		got, gotNet := chatterNet(t, w, false)
		if r, g := refNet.Stats(), gotNet.Stats(); r != g {
			t.Fatalf("workers=%d stats diverged:\nW=1 %+v\nW=%d %+v", w, r, w, g)
		}
		for id, want := range ref {
			g := got[id]
			if len(g) != len(want) {
				t.Fatalf("workers=%d node %s: %d receives, want %d", w, id, len(g), len(want))
			}
			for i := range want {
				if g[i] != want[i] {
					t.Fatalf("workers=%d node %s receive %d: %q, want %q", w, id, i, g[i], want[i])
				}
			}
		}
	}
}

// TestParallelRoutesMatchSequential exercises the lock-free route cache
// on the parallel engine: next hops agree with the sequential engine's
// for every pair on the same topology.
func TestParallelRoutesMatchSequential(t *testing.T) {
	epoch := time.Unix(0, 0).UTC()
	build := func(net *Network) {
		rng := rand.New(rand.NewSource(7))
		BuildRandomConnected(net, 16, 10, LinkConfig{Bandwidth: 1e6, Latency: time.Millisecond}, rng)
	}
	seq := New(simclock.New(epoch))
	build(seq)
	par := NewParallel(simclock.NewKernel(epoch, simclock.KernelOpts{Workers: 4}))
	build(par)
	ids := seq.Nodes()
	for _, a := range ids {
		for _, b := range ids {
			sh, serr := seq.NextHop(a, b)
			ph, perr := par.NextHop(a, b)
			if (serr == nil) != (perr == nil) || sh != ph {
				t.Fatalf("NextHop(%s, %s): sequential (%q, %v), parallel (%q, %v)", a, b, sh, serr, ph, perr)
			}
		}
	}
}

// Failure models for the emulated network (the post-disaster setting of
// Section VII): per-link probabilistic message loss, scheduled link
// up/down windows, and node churn. All failures are deterministic — loss
// draws come from a single seeded RNG consumed in event order, and
// outages are ordinary scheduler events — so a failure-injected run is
// exactly repeatable from its seed.
package netsim

import (
	"fmt"
	"math/rand"
	"time"
)

// SeedFailures installs the RNG behind probabilistic message loss. It
// must be called before any SetLoss/SetLinkLoss takes effect; calling it
// again reseeds (restarting the draw sequence).
func (n *Network) SeedFailures(seed int64) {
	n.failRNG = rand.New(rand.NewSource(seed))
}

// SetLinkLoss sets the probability that a message crossing the a<->b link
// (either direction) is lost in transit. Requires SeedFailures first when
// p > 0.
func (n *Network) SetLinkLoss(a, b string, p float64) error {
	la, oka := n.links[[2]string{a, b}]
	lb, okb := n.links[[2]string{b, a}]
	if !oka || !okb {
		return fmt.Errorf("%w: %s <-> %s", ErrNoLink, a, b)
	}
	if p > 0 && n.failRNG == nil {
		return fmt.Errorf("netsim: SetLinkLoss(%s, %s): SeedFailures not called", a, b)
	}
	la.lossProb = p
	lb.lossProb = p
	return nil
}

// SetLoss sets the same loss probability on every link.
func (n *Network) SetLoss(p float64) error {
	if p > 0 && n.failRNG == nil {
		return fmt.Errorf("netsim: SetLoss: SeedFailures not called")
	}
	for _, l := range n.links {
		l.lossProb = p
	}
	return nil
}

// SetLinkDown takes the a<->b link down (or back up). Messages sent or in
// flight while the link is down are lost (counted, no error), as on a
// severed radio link.
func (n *Network) SetLinkDown(a, b string, down bool) error {
	la, oka := n.links[[2]string{a, b}]
	lb, okb := n.links[[2]string{b, a}]
	if !oka || !okb {
		return fmt.Errorf("%w: %s <-> %s", ErrNoLink, a, b)
	}
	la.down = down
	lb.down = down
	return nil
}

// ScheduleLinkOutage schedules the a<->b link to go down at the given
// instant and come back up after the outage duration.
func (n *Network) ScheduleLinkOutage(a, b string, at time.Time, outage time.Duration) error {
	if _, ok := n.links[[2]string{a, b}]; !ok {
		return fmt.Errorf("%w: %s <-> %s", ErrNoLink, a, b)
	}
	n.sched.At(at, func() { _ = n.SetLinkDown(a, b, true) })
	n.sched.At(at.Add(outage), func() { _ = n.SetLinkDown(a, b, false) })
	return nil
}

// SetNodeDown takes a node out of the network (or brings it back): while
// down it neither sends nor receives — messages addressed to or from it
// are lost. Churn hooks installed with OnChurn fire on every transition.
func (n *Network) SetNodeDown(id string, down bool) error {
	nd, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	if nd.down == down {
		return nil
	}
	nd.down = down
	for _, fn := range n.churnHooks {
		fn(id, !down)
	}
	return nil
}

// NodeDown reports whether a node is currently down.
func (n *Network) NodeDown(id string) bool {
	nd, ok := n.nodes[id]
	return ok && nd.down
}

// ScheduleNodeOutage schedules a node to churn out at the given instant
// and rejoin after the outage duration.
func (n *Network) ScheduleNodeOutage(id string, at time.Time, outage time.Duration) error {
	if _, ok := n.nodes[id]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	n.sched.At(at, func() { _ = n.SetNodeDown(id, true) })
	n.sched.At(at.Add(outage), func() { _ = n.SetNodeDown(id, false) })
	return nil
}

// ScheduleChurn schedules a deterministic churn pattern: events node
// outages, victims and start instants drawn from the given seed. Each
// event takes one node down at a uniform instant in [start, start+window)
// for the outage duration. A node is never scheduled for two overlapping
// outages, and at most half the nodes ever churn (the rest keep the
// network connected). Returns the victim ids in schedule order.
func (n *Network) ScheduleChurn(seed int64, events int, start time.Time, window, outage time.Duration) []string {
	if events <= 0 || window <= 0 {
		return nil
	}
	ids := n.Nodes() // sorted
	if len(ids) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	busyUntil := make(map[string]time.Time)
	maxChurning := (len(ids) + 1) / 2
	churned := make(map[string]bool)
	victims := make([]string, 0, events)
	for i := 0; i < events; i++ {
		at := start.Add(time.Duration(rng.Int63n(int64(window))))
		id := ids[rng.Intn(len(ids))]
		if !churned[id] && len(churned) >= maxChurning {
			continue
		}
		if until, ok := busyUntil[id]; ok && at.Before(until) {
			continue
		}
		churned[id] = true
		busyUntil[id] = at.Add(outage)
		_ = n.ScheduleNodeOutage(id, at, outage)
		victims = append(victims, id)
	}
	return victims
}

// OnChurn registers a hook invoked on every node churn transition with the
// node id and whether it is now up. Hooks run on the event loop.
func (n *Network) OnChurn(fn func(id string, up bool)) {
	n.churnHooks = append(n.churnHooks, fn)
}

// lose decides whether a message delivery on link l is lost to injected
// failures at the delivery instant: the link or an endpoint is down, or
// the seeded loss draw fires. Draws happen in event order, so runs are
// deterministic.
func (n *Network) lose(l *link, m *pendingMsg) bool {
	if l.down {
		return true
	}
	if src, ok := n.nodes[m.from]; ok && src.down {
		return true
	}
	if dst, ok := n.nodes[m.to]; ok && dst.down {
		return true
	}
	if l.lossProb > 0 && n.failRNG != nil && n.failRNG.Float64() < l.lossProb {
		return true
	}
	return false
}

// Failure models for the emulated network (the post-disaster setting of
// Section VII): per-link probabilistic message loss, scheduled link
// up/down windows, and node churn. All failures are deterministic — each
// directed link draws losses from its own splitmix64 stream derived from
// the master failure seed and the link's endpoints, and outages are
// ordinary events on the lane that owns the affected state — so a
// failure-injected run is exactly repeatable from its seed, on either
// engine, at any worker count.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"athena/internal/simclock"
)

// linkStream derives a directed link's loss-stream seed from the master
// failure seed and the link's endpoints (FNV-1a over from NUL to).
func linkStream(seed uint64, from, to string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(from); i++ {
		h ^= uint64(from[i])
		h *= 1099511628211
	}
	h *= 1099511628211 // NUL separator
	for i := 0; i < len(to); i++ {
		h ^= uint64(to[i])
		h *= 1099511628211
	}
	return simclock.Mix64(seed ^ h)
}

// SeedFailures installs the master seed behind probabilistic message
// loss: every directed link gets an independent splitmix64 draw stream
// derived from this seed and its endpoints. It must be called before any
// SetLoss/SetLinkLoss takes effect; calling it again reseeds (restarting
// every stream).
func (n *Network) SeedFailures(seed int64) {
	n.failSeed = uint64(seed)
	n.failSeeded = true
	for key, l := range n.links {
		l.rng = linkStream(n.failSeed, key[0], key[1])
	}
}

// SetLinkLoss sets the probability that a message crossing the a<->b link
// (either direction) is lost in transit. Requires SeedFailures first when
// p > 0.
func (n *Network) SetLinkLoss(a, b string, p float64) error {
	la, oka := n.links[[2]string{a, b}]
	lb, okb := n.links[[2]string{b, a}]
	if !oka || !okb {
		return fmt.Errorf("%w: %s <-> %s", ErrNoLink, a, b)
	}
	if p > 0 && !n.failSeeded {
		return fmt.Errorf("netsim: SetLinkLoss(%s, %s): SeedFailures not called", a, b)
	}
	la.lossProb = p
	lb.lossProb = p
	return nil
}

// SetLoss sets the same loss probability on every link.
func (n *Network) SetLoss(p float64) error {
	if p > 0 && !n.failSeeded {
		return fmt.Errorf("netsim: SetLoss: SeedFailures not called")
	}
	for _, l := range n.links {
		l.lossProb = p
	}
	return nil
}

// SetLinkDown takes the a<->b link down (or back up). Messages sent or in
// flight while the link is down are lost (counted, no error), as on a
// severed radio link. Call it between runs; during a parallel run use
// ScheduleLinkOutage, which routes each direction's transition to the
// lane that owns it.
func (n *Network) SetLinkDown(a, b string, down bool) error {
	la, oka := n.links[[2]string{a, b}]
	lb, okb := n.links[[2]string{b, a}]
	if !oka || !okb {
		return fmt.Errorf("%w: %s <-> %s", ErrNoLink, a, b)
	}
	la.down = down
	lb.down = down
	return nil
}

// ScheduleLinkOutage schedules the a<->b link to go down at the given
// instant and come back up after the outage duration. Each direction's
// transitions run on its source node's lane — the lane that reads the
// flag on the transmit path — so the outage is engine- and worker-safe.
func (n *Network) ScheduleLinkOutage(a, b string, at time.Time, outage time.Duration) error {
	la, oka := n.links[[2]string{a, b}]
	lb, okb := n.links[[2]string{b, a}]
	if !oka || !okb {
		return fmt.Errorf("%w: %s <-> %s", ErrNoLink, a, b)
	}
	_ = n.AtNode(a, at, func() { la.down = true })
	_ = n.AtNode(a, at.Add(outage), func() { la.down = false })
	_ = n.AtNode(b, at, func() { lb.down = true })
	_ = n.AtNode(b, at.Add(outage), func() { lb.down = false })
	return nil
}

// SetNodeDown takes a node out of the network (or brings it back): while
// down it neither sends nor receives — messages addressed to or from it
// are lost. Churn hooks installed with OnChurn fire on every transition.
// During a parallel run this must execute on the node's own lane (use
// ScheduleNodeOutage/ScheduleChurn, which arrange that); between runs it
// may be called directly.
func (n *Network) SetNodeDown(id string, down bool) error {
	nd, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	if nd.down == down {
		return nil
	}
	nd.down = down
	for _, fn := range n.churnHooks {
		fn(id, !down)
	}
	return nil
}

// NodeDown reports whether a node is currently down.
func (n *Network) NodeDown(id string) bool {
	nd, ok := n.nodes[id]
	return ok && nd.down
}

// ScheduleNodeOutage schedules a node to churn out at the given instant
// and rejoin after the outage duration. The transitions run on the
// node's own lane.
func (n *Network) ScheduleNodeOutage(id string, at time.Time, outage time.Duration) error {
	if _, ok := n.nodes[id]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	_ = n.AtNode(id, at, func() { _ = n.SetNodeDown(id, true) })
	_ = n.AtNode(id, at.Add(outage), func() { _ = n.SetNodeDown(id, false) })
	return nil
}

// ScheduleChurn schedules a deterministic churn pattern: events node
// outages, victims and start instants drawn from the given seed. Each
// event takes one node down at a uniform instant in [start, start+window)
// for the outage duration. A node is never scheduled for two overlapping
// outages, and at most half the nodes ever churn (the rest keep the
// network connected). Returns the victim ids in schedule order.
func (n *Network) ScheduleChurn(seed int64, events int, start time.Time, window, outage time.Duration) []string {
	if events <= 0 || window <= 0 {
		return nil
	}
	ids := n.Nodes() // sorted
	if len(ids) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	busyUntil := make(map[string]time.Time)
	maxChurning := (len(ids) + 1) / 2
	churned := make(map[string]bool)
	victims := make([]string, 0, events)
	for i := 0; i < events; i++ {
		at := start.Add(time.Duration(rng.Int63n(int64(window))))
		id := ids[rng.Intn(len(ids))]
		if !churned[id] && len(churned) >= maxChurning {
			continue
		}
		if until, ok := busyUntil[id]; ok && at.Before(until) {
			continue
		}
		churned[id] = true
		busyUntil[id] = at.Add(outage)
		_ = n.ScheduleNodeOutage(id, at, outage)
		victims = append(victims, id)
	}
	return victims
}

// OnChurn registers a hook invoked on every node churn transition with the
// node id and whether it is now up. Hooks run on the event loop — on the
// parallel engine, on the churning node's lane, so a hook must only touch
// that node's state.
func (n *Network) OnChurn(fn func(id string, up bool)) {
	n.churnHooks = append(n.churnHooks, fn)
}

// lose decides whether a message on link l is lost to injected failures
// at the end of serialization: the link is down, its source has churned
// out, or the link's seeded loss draw fires. It runs on the source lane
// and reads only source-side state; destination churn is judged at
// arrival on the destination lane (see deliver). Draws come from the
// link's own stream in the link's own serialization order, so they are
// independent of how events on other links interleave.
func (n *Network) lose(l *link) bool {
	if l.down || l.src.down {
		return true
	}
	if l.lossProb > 0 && n.failSeeded && simclock.Float64From(simclock.RandNext(&l.rng)) < l.lossProb {
		return true
	}
	return false
}

package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"athena/internal/simclock"
)

var origin = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newNet() (*simclock.Scheduler, *Network) {
	s := simclock.New(origin)
	return s, New(s)
}

func TestSendSerializationAndLatency(t *testing.T) {
	s, net := newNet()
	net.AddNode("a", nil)
	var deliveredAt time.Time
	net.AddNode("b", func(from string, size int64, payload any) {
		deliveredAt = s.Now()
		if from != "a" || size != 1000 {
			t.Errorf("delivery from=%s size=%d", from, size)
		}
		if msg, ok := payload.(string); !ok || msg != "hello" {
			t.Errorf("payload = %v", payload)
		}
	})
	// 1000 B at 1000 B/s = 1s serialization + 50ms latency.
	if err := net.AddLink("a", "b", LinkConfig{Bandwidth: 1000, Latency: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := net.Send("a", "b", 1000, "hello"); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	want := origin.Add(time.Second + 50*time.Millisecond)
	if !deliveredAt.Equal(want) {
		t.Errorf("deliveredAt = %v, want %v", deliveredAt, want)
	}
}

func TestFIFOQueueing(t *testing.T) {
	s, net := newNet()
	net.AddNode("a", nil)
	var deliveries []time.Time
	net.AddNode("b", func(string, int64, any) { deliveries = append(deliveries, s.Now()) })
	if err := net.AddLink("a", "b", LinkConfig{Bandwidth: 1000}); err != nil {
		t.Fatal(err)
	}
	// Two back-to-back 500 B messages: second waits for the first.
	if err := net.Send("a", "b", 500, nil); err != nil {
		t.Fatal(err)
	}
	if err := net.Send("a", "b", 500, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(deliveries) != 2 {
		t.Fatalf("deliveries = %d", len(deliveries))
	}
	if !deliveries[0].Equal(origin.Add(500 * time.Millisecond)) {
		t.Errorf("first delivery at %v", deliveries[0])
	}
	if !deliveries[1].Equal(origin.Add(time.Second)) {
		t.Errorf("second delivery at %v (no FIFO backlog)", deliveries[1])
	}
}

func TestDirectionsIndependent(t *testing.T) {
	s, net := newNet()
	count := 0
	net.AddNode("a", func(string, int64, any) { count++ })
	net.AddNode("b", func(string, int64, any) { count++ })
	if err := net.AddLink("a", "b", LinkConfig{Bandwidth: 1000}); err != nil {
		t.Fatal(err)
	}
	// Simultaneous opposite-direction sends must not queue behind each
	// other (duplex link).
	if err := net.Send("a", "b", 1000, nil); err != nil {
		t.Fatal(err)
	}
	if err := net.Send("b", "a", 1000, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(origin.Add(1100*time.Millisecond), 0); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("deliveries = %d, want 2 (duplex)", count)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	s, net := newNet()
	net.AddNode("a", nil)
	delivered := 0
	net.AddNode("b", func(string, int64, any) { delivered++ })
	if err := net.AddLink("a", "b", LinkConfig{Bandwidth: 1000, QueueBytes: 1500}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := net.Send("a", "b", 1000, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1 (rest dropped)", delivered)
	}
	if net.Stats().MessagesDropped != 2 {
		t.Errorf("dropped = %d, want 2", net.Stats().MessagesDropped)
	}
}

func TestSendErrors(t *testing.T) {
	_, net := newNet()
	net.AddNode("a", nil)
	net.AddNode("b", nil)
	net.AddNode("c", nil)
	if err := net.AddLink("a", "b", LinkConfig{Bandwidth: 1}); err != nil {
		t.Fatal(err)
	}
	if err := net.Send("x", "a", 1, nil); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown sender: %v", err)
	}
	if err := net.Send("a", "x", 1, nil); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown receiver: %v", err)
	}
	if err := net.Send("a", "c", 1, nil); !errors.Is(err, ErrNoLink) {
		t.Errorf("no link: %v", err)
	}
	if err := net.AddLink("a", "zz", LinkConfig{}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("AddLink unknown: %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	s, net := newNet()
	net.AddNode("a", nil)
	net.AddNode("b", nil)
	if err := net.AddLink("a", "b", LinkConfig{Bandwidth: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := net.Send("a", "b", 700, nil); err != nil {
		t.Fatal(err)
	}
	if err := net.Send("b", "a", 300, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	if st.BytesSent != 1000 || st.BytesDelivered != 1000 || st.MessagesDelivered != 2 {
		t.Errorf("stats = %+v", st)
	}
	ls := net.LinkStats("a", "b")
	if ls.Bytes != 1000 || ls.Messages != 2 {
		t.Errorf("link stats = %+v", ls)
	}
}

func TestGridRouting(t *testing.T) {
	_, net := newNet()
	if err := BuildGrid(net, 4, 4, LinkConfig{Bandwidth: 1000}); err != nil {
		t.Fatal(err)
	}
	if got := len(net.Nodes()); got != 16 {
		t.Fatalf("nodes = %d", got)
	}
	// Manhattan distance between corners is 6.
	hops, err := net.PathLength(GridNodeID(0, 0), GridNodeID(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if hops != 6 {
		t.Errorf("hops = %d, want 6", hops)
	}
	// Next hop from (0,0) toward (0,3) must be a neighbor.
	hop, err := net.NextHop(GridNodeID(0, 0), GridNodeID(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if hop != GridNodeID(0, 1) && hop != GridNodeID(1, 0) {
		t.Errorf("NextHop = %s", hop)
	}
	// Self route.
	if hop, err := net.NextHop("n0-0", "n0-0"); err != nil || hop != "n0-0" {
		t.Errorf("self NextHop = %s, %v", hop, err)
	}
}

func TestNoRoute(t *testing.T) {
	_, net := newNet()
	net.AddNode("island", nil)
	net.AddNode("main", nil)
	if _, err := net.NextHop("island", "main"); !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
}

func TestMultiHopForwarding(t *testing.T) {
	s, net := newNet()
	if err := BuildLine(net, 3, LinkConfig{Bandwidth: 1000}); err != nil {
		t.Fatal(err)
	}
	// n0 -> n2 via manual forwarding at n1.
	got := ""
	if err := net.SetHandler("n1", func(from string, size int64, payload any) {
		hop, err := net.NextHop("n1", "n2")
		if err != nil {
			t.Error(err)
			return
		}
		if err := net.Send("n1", hop, size, payload); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.SetHandler("n2", func(from string, size int64, payload any) {
		got, _ = payload.(string)
	}); err != nil {
		t.Fatal(err)
	}
	hop, err := net.NextHop("n0", "n2")
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Send("n0", hop, 100, "relay"); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if got != "relay" {
		t.Errorf("payload = %q", got)
	}
}

func TestBuildStarAndRandom(t *testing.T) {
	_, net := newNet()
	if err := BuildStar(net, 5, LinkConfig{Bandwidth: 1000}); err != nil {
		t.Fatal(err)
	}
	if hops, err := net.PathLength("leaf0", "leaf4"); err != nil || hops != 2 {
		t.Errorf("star hops = %d, %v", hops, err)
	}

	_, net2 := newNet()
	rng := rand.New(rand.NewSource(5))
	if err := BuildRandomConnected(net2, 20, 10, LinkConfig{Bandwidth: 1000}, rng); err != nil {
		t.Fatal(err)
	}
	// Connectivity: every pair reachable.
	nodes := net2.Nodes()
	for _, a := range nodes {
		if _, err := net2.PathLength(a, nodes[0]); err != nil {
			t.Fatalf("unreachable %s: %v", a, err)
		}
	}
}

// Property: total delivered bytes equals sent bytes minus drops, for
// random traffic.
func TestConservationProperty(t *testing.T) {
	s, net := newNet()
	if err := BuildGrid(net, 3, 3, LinkConfig{Bandwidth: 10000}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	nodes := net.Nodes()
	for i := 0; i < 500; i++ {
		a := nodes[rng.Intn(len(nodes))]
		nbs := net.Neighbors(a)
		if len(nbs) == 0 {
			continue
		}
		b := nbs[rng.Intn(len(nbs))]
		if err := net.Send(a, b, int64(rng.Intn(5000)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	if st.BytesDelivered != st.BytesSent {
		t.Errorf("delivered %d != sent %d (no drops configured)", st.BytesDelivered, st.BytesSent)
	}
	if st.MessagesDelivered != st.MessagesSent {
		t.Errorf("messages delivered %d != sent %d", st.MessagesDelivered, st.MessagesSent)
	}
}

func BenchmarkSendDeliver(b *testing.B) {
	s, net := newNet()
	net.AddNode("a", nil)
	net.AddNode("b", func(string, int64, any) {})
	if err := net.AddLink("a", "b", LinkConfig{Bandwidth: 1e9}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := net.Send("a", "b", 1000, nil); err != nil {
			b.Fatal(err)
		}
		s.Run(0)
	}
}

func TestPriorityJumpsQueue(t *testing.T) {
	s, net := newNet()
	net.AddNode("a", nil)
	var order []string
	net.AddNode("b", func(_ string, _ int64, payload any) {
		tag, _ := payload.(string)
		order = append(order, tag)
	})
	if err := net.AddLink("a", "b", LinkConfig{Bandwidth: 1000}); err != nil {
		t.Fatal(err)
	}
	// Three bulk messages queue up; a critical message sent last must be
	// serialized right after the in-flight one (no preemption), beating
	// the remaining bulk backlog.
	for i := 0; i < 3; i++ {
		if err := net.Send("a", "b", 1000, fmt.Sprintf("bulk%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.SendPriority("a", "b", 100, 1, "critical"); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []string{"bulk0", "critical", "bulk1", "bulk2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPrioritySamePriorityStaysFIFO(t *testing.T) {
	s, net := newNet()
	net.AddNode("a", nil)
	var order []string
	net.AddNode("b", func(_ string, _ int64, payload any) {
		tag, _ := payload.(string)
		order = append(order, tag)
	})
	if err := net.AddLink("a", "b", LinkConfig{Bandwidth: 1000}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := net.SendPriority("a", "b", 100, 2, fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != fmt.Sprintf("m%d", i) {
			t.Fatalf("FIFO broken: %v", order)
		}
	}
}

// Package netsim is the network emulator substrate standing in for the
// EMANE-Shim emulator the paper used (Section VII). It models a static
// topology of duplex links, each with a bandwidth, propagation latency,
// and a FIFO transmission queue (store-and-forward), on top of the
// deterministic discrete-event machinery in internal/simclock. Per-link
// and network-wide byte accounting provides the bandwidth measurements
// behind Figure 3.
//
// A Network runs on one of two engines. The sequential engine (New)
// drives everything from a single simclock.Scheduler heap. The parallel
// engine (NewParallel) assigns every node its own simclock.Kernel lane:
// all of a node's work — serialization on its outgoing links, timer
// callbacks, handler invocations — executes on that lane, and the only
// cross-lane effects are message deliveries, posted with a delay of at
// least the link latency (the kernel's conservative lookahead). Both
// engines share this file's transmit/deliver path and produce identical
// outcomes; the parallel engine is additionally identical at any worker
// count by the kernel's construction.
package netsim

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"athena/internal/simclock"
)

// Handler receives messages delivered to a node.
type Handler func(from string, size int64, payload any)

// Stats aggregates network accounting.
type Stats struct {
	// MessagesSent counts Send calls that were accepted.
	MessagesSent int64
	// MessagesDelivered counts messages handed to receivers.
	MessagesDelivered int64
	// MessagesDropped counts messages dropped at full link queues.
	MessagesDropped int64
	// MessagesLost counts messages lost to injected failures (link loss,
	// link outages, node churn).
	MessagesLost int64
	// BytesSent is the total bytes accepted for transmission.
	BytesSent int64
	// BytesDelivered is the total bytes delivered.
	BytesDelivered int64
}

// add accumulates other into s.
func (s *Stats) add(o *Stats) {
	s.MessagesSent += o.MessagesSent
	s.MessagesDelivered += o.MessagesDelivered
	s.MessagesDropped += o.MessagesDropped
	s.MessagesLost += o.MessagesLost
	s.BytesSent += o.BytesSent
	s.BytesDelivered += o.BytesDelivered
}

// LinkStats is the per-link accounting.
type LinkStats struct {
	// Bytes transmitted over the link (both directions).
	Bytes int64
	// Messages transmitted over the link.
	Messages int64
	// Dropped counts queue-overflow drops.
	Dropped int64
	// Lost counts messages lost to injected failures.
	Lost int64
}

var (
	// ErrUnknownNode is returned when addressing a node that was never
	// added.
	ErrUnknownNode = errors.New("netsim: unknown node")
	// ErrNoLink is returned when sending between nodes with no direct
	// link.
	ErrNoLink = errors.New("netsim: no link between nodes")
	// ErrNoRoute is returned when no path exists between two nodes.
	ErrNoRoute = errors.New("netsim: no route")
)

// pendingMsg is one message waiting for (or in) transmission on a link.
// It carries its link so the serialization- and delivery-complete
// callbacks need no per-message closure, and recycles through per-node
// freelists once delivered or lost.
type pendingMsg struct {
	size     int64
	payload  any
	from, to string
	priority int
	seq      uint64

	link *link
	next *pendingMsg // freelist
}

// msgQueue orders pending messages by descending priority, then FIFO.
type msgQueue []*pendingMsg

func (q msgQueue) Len() int { return len(q) }

func (q msgQueue) Less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority > q[j].priority
	}
	return q[i].seq < q[j].seq
}

func (q msgQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *msgQueue) Push(x any) {
	if m, ok := x.(*pendingMsg); ok {
		*q = append(*q, m)
	}
}

func (q *msgQueue) Pop() any {
	old := *q
	n := len(old)
	m := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return m
}

// link is one directed link. In the parallel engine every field except
// lost belongs to the source node's lane: Send, serialization, the
// queue, and the failure draw all run there. lost alone is atomic
// because the destination lane also counts losses (a message arriving
// at a churned-out node).
type link struct {
	bandwidth float64 // bytes per second
	latency   time.Duration
	queueCap  int64 // max queued-but-unsent bytes; <=0 means unbounded

	src, dst *node // endpoints, resolved at AddLink

	queue   msgQueue // waiting messages, highest priority first
	sending bool     // a transmission is in progress
	queued  int64    // bytes accepted but not yet fully serialized
	seq     uint64   // FIFO tiebreak within this link's queue
	stats   LinkStats
	lost    atomic.Int64 // injected-failure losses (src and dst lanes)

	// Injected failure state (see failure.go). rng is the link's own
	// splitmix64 loss stream, derived from the master failure seed and
	// the link's endpoints, so draws are independent of global event
	// interleaving — a requirement for worker-count independence.
	lossProb float64 // per-message loss probability
	rng      uint64  // seeded splitmix64 state; valid once seeded
	down     bool    // link severed: everything on it is lost
}

type node struct {
	handler   Handler
	neighbors []string
	idx       int32          // position in Network.order; keys the route tables
	lane      *simclock.Lane // the node's kernel lane; nil on the sequential engine
	down      bool           // churned out: sends and deliveries are lost

	freeMsgs *pendingMsg // recycled pendingMsgs, owned by this node's lane
}

// Network is the emulated network, runnable on either the sequential
// scheduler or the parallel kernel (see the package comment).
type Network struct {
	sched  *simclock.Scheduler // sequential engine; nil in kernel mode
	kernel *simclock.Kernel    // parallel engine; nil in scheduler mode
	nodes  map[string]*node
	links  map[[2]string]*link

	// perNode holds each node's share of the network counters, indexed
	// by node idx. Every event mutates only the slot of the lane it runs
	// on, so no synchronization is needed; Stats sums the slots.
	perNode []Stats

	// Route cache: order maps a node index back to its id, and
	// hopTab[dstIdx] holds the next-hop table toward dst (entry per src,
	// -1 = unreachable), built lazily per destination by BFS. Tables are
	// atomic pointers because any lane may ask for a route; builders
	// serialize on routeMu. The slice itself only grows outside runs
	// (see prepare).
	order   []string
	routeMu sync.Mutex
	hopTab  []atomic.Pointer[[]int32]

	// BFS scratch reused across route builds; guarded by routeMu.
	bfsFrontier, bfsLevel []int32

	// minLatency is the smallest link latency — the kernel's
	// conservative lookahead.
	minLatency  time.Duration
	haveLatency bool

	// finishTxFn/deliverFn are the method values the transmit path hands
	// to the engine, bound once here so the hot path allocates no
	// closures.
	finishTxFn, deliverFn func(any)

	// Failure injection (see failure.go).
	failSeed   uint64
	failSeeded bool
	churnHooks []func(id string, up bool)
}

// New creates an empty network on the sequential scheduler engine.
func New(sched *simclock.Scheduler) *Network {
	n := &Network{
		sched: sched,
		nodes: make(map[string]*node),
		links: make(map[[2]string]*link),
	}
	n.finishTxFn = n.finishTx
	n.deliverFn = n.deliver
	return n
}

// NewParallel creates an empty network on the parallel kernel engine:
// each AddNode claims a kernel lane, and RunUntil drives the kernel
// with a lookahead of the minimum link latency.
func NewParallel(k *simclock.Kernel) *Network {
	n := &Network{
		kernel: k,
		nodes:  make(map[string]*node),
		links:  make(map[[2]string]*link),
	}
	n.finishTxFn = n.finishTx
	n.deliverFn = n.deliver
	return n
}

// Scheduler exposes the sequential engine's scheduler (also the
// network's clock); nil when running on the parallel kernel.
func (n *Network) Scheduler() *simclock.Scheduler { return n.sched }

// Kernel exposes the parallel engine's kernel; nil on the sequential
// engine.
func (n *Network) Kernel() *simclock.Kernel { return n.kernel }

// Now returns the current committed virtual time.
func (n *Network) Now() time.Time {
	if n.kernel != nil {
		return n.kernel.Now()
	}
	return n.sched.Now()
}

// ClockFor returns the clock a node's own logic should read: the node's
// lane on the parallel engine (a lane clock tracks the node's current
// event during execution), the shared scheduler otherwise.
func (n *Network) ClockFor(id string) simclock.Clock {
	if nd, ok := n.nodes[id]; ok && nd.lane != nil {
		return nd.lane
	}
	if n.kernel != nil {
		return n.kernel
	}
	return n.sched
}

// LaneOf returns a node's kernel lane, or nil on the sequential engine.
func (n *Network) LaneOf(id string) *simclock.Lane {
	if nd, ok := n.nodes[id]; ok {
		return nd.lane
	}
	return nil
}

// AtNode schedules fn at the given instant on the node's lane (parallel
// engine) or the shared scheduler (sequential engine). Anything that
// touches a single node's state from outside — churn events, query
// injection — must be routed through here so it executes on the lane
// that owns the state.
func (n *Network) AtNode(id string, at time.Time, fn func()) error {
	nd, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	if nd.lane != nil {
		nd.lane.At(at, fn)
	} else {
		n.sched.At(at, fn)
	}
	return nil
}

// RunUntil drives the network's engine until the deadline, whichever
// engine it is. maxEvents (0 = unlimited) bounds execution; exceeding
// it returns simclock.ErrHorizon.
func (n *Network) RunUntil(deadline time.Time, maxEvents int) error {
	if n.kernel == nil {
		return n.sched.RunUntil(deadline, maxEvents)
	}
	n.prepare()
	n.kernel.SetLookahead(n.minLatency)
	return n.kernel.RunUntil(deadline, maxEvents)
}

// prepare sizes the route-table slice to the node population so it
// never grows during a parallel run (lanes index it concurrently).
func (n *Network) prepare() {
	n.routeMu.Lock()
	for len(n.hopTab) < len(n.order) {
		n.hopTab = append(n.hopTab, atomic.Pointer[[]int32]{})
	}
	n.routeMu.Unlock()
}

// MinLatency returns the smallest latency over all links — the
// conservative lookahead bound for the parallel engine.
func (n *Network) MinLatency() time.Duration { return n.minLatency }

// Stats returns the network-wide counters, summed over the per-node
// shares. Call it between runs (or after them), not from node code.
func (n *Network) Stats() Stats {
	var out Stats
	for i := range n.perNode {
		out.add(&n.perNode[i])
	}
	return out
}

// AddNode registers a node. Adding an existing node replaces its handler.
func (n *Network) AddNode(id string, h Handler) {
	if existing, ok := n.nodes[id]; ok {
		existing.handler = h
		return
	}
	nd := &node{handler: h, idx: int32(len(n.order))}
	if n.kernel != nil {
		nd.lane = n.kernel.AddLane()
	}
	n.nodes[id] = nd
	n.order = append(n.order, id)
	n.perNode = append(n.perNode, Stats{})
}

// SetHandler replaces a node's message handler.
func (n *Network) SetHandler(id string, h Handler) error {
	nd, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	nd.handler = h
	return nil
}

// Nodes returns all node ids, sorted.
func (n *Network) Nodes() []string {
	ids := make([]string, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Neighbors returns a node's directly linked peers, sorted. The
// neighbor lists are kept sorted at AddLink time, so this is a copy, not
// a sort.
func (n *Network) Neighbors(id string) []string {
	nd, ok := n.nodes[id]
	if !ok {
		return nil
	}
	return append([]string(nil), nd.neighbors...)
}

// insertSorted adds s to a sorted slice, keeping it sorted.
func insertSorted(ss []string, s string) []string {
	i := sort.SearchStrings(ss, s)
	ss = append(ss, "")
	copy(ss[i+1:], ss[i:])
	ss[i] = s
	return ss
}

// LinkConfig parameterizes a duplex link.
type LinkConfig struct {
	// Bandwidth is the serialization rate in bytes per second.
	Bandwidth float64
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// QueueBytes bounds the transmission backlog; <= 0 means unbounded.
	QueueBytes int64
}

// AddLink connects a and b with two independent directed links (one per
// direction) sharing the config. Both nodes must exist.
func (n *Network) AddLink(a, b string, cfg LinkConfig) error {
	na, ok := n.nodes[a]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, a)
	}
	nb, ok := n.nodes[b]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, b)
	}
	if _, dup := n.links[[2]string{a, b}]; !dup {
		na.neighbors = insertSorted(na.neighbors, b)
		nb.neighbors = insertSorted(nb.neighbors, a)
	}
	ab := &link{bandwidth: cfg.Bandwidth, latency: cfg.Latency, queueCap: cfg.QueueBytes, src: na, dst: nb}
	ba := &link{bandwidth: cfg.Bandwidth, latency: cfg.Latency, queueCap: cfg.QueueBytes, src: nb, dst: na}
	if n.failSeeded {
		ab.rng = linkStream(n.failSeed, a, b)
		ba.rng = linkStream(n.failSeed, b, a)
	}
	n.links[[2]string{a, b}] = ab
	n.links[[2]string{b, a}] = ba
	if !n.haveLatency || cfg.Latency < n.minLatency {
		n.minLatency = cfg.Latency
		n.haveLatency = true
	}
	clear(n.hopTab) // topology changed
	return nil
}

// LinkStats returns accounting for the directed link a->b combined with
// b->a.
func (n *Network) LinkStats(a, b string) LinkStats {
	var out LinkStats
	if l, ok := n.links[[2]string{a, b}]; ok {
		out.Bytes += l.stats.Bytes
		out.Messages += l.stats.Messages
		out.Dropped += l.stats.Dropped
		out.Lost += l.lost.Load()
	}
	if l, ok := n.links[[2]string{b, a}]; ok {
		out.Bytes += l.stats.Bytes
		out.Messages += l.stats.Messages
		out.Dropped += l.stats.Dropped
		out.Lost += l.lost.Load()
	}
	return out
}

// Send transmits a message of the given size from one node to a directly
// linked neighbor at default (zero) priority, modeling FIFO serialization
// (size/bandwidth) plus propagation latency. Delivery invokes the
// receiver's handler on the event loop. Messages beyond a bounded queue
// are dropped (counted, no error) — overload behaves like a real link.
// On the parallel engine, Send must be called from the sending node's
// lane (node handlers and timers already are).
func (n *Network) Send(from, to string, size int64, payload any) error {
	return n.SendPriority(from, to, size, 0, payload)
}

// SendPriority is Send with an explicit priority class (Section V-C
// preferential treatment): within one link, higher-priority messages are
// serialized before lower-priority backlog; the in-flight transmission is
// never preempted.
func (n *Network) SendPriority(from, to string, size int64, priority int, payload any) error {
	nf, ok := n.nodes[from]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, from)
	}
	if _, ok := n.nodes[to]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	l, ok := n.links[[2]string{from, to}]
	if !ok {
		return fmt.Errorf("%w: %s -> %s", ErrNoLink, from, to)
	}
	st := &n.perNode[nf.idx]
	if size < 0 {
		size = 0
	}
	if l.queueCap > 0 && l.queued+size > l.queueCap {
		l.stats.Dropped++
		st.MessagesDropped++
		return nil
	}

	l.queued += size
	l.stats.Bytes += size
	l.stats.Messages++
	st.MessagesSent++
	st.BytesSent += size
	m := nf.freeMsgs
	if m != nil {
		nf.freeMsgs = m.next
		*m = pendingMsg{size: size, payload: payload, from: from, to: to, priority: priority, seq: l.seq, link: l}
	} else {
		m = &pendingMsg{size: size, payload: payload, from: from, to: to, priority: priority, seq: l.seq, link: l}
	}
	heap.Push(&l.queue, m)
	l.seq++
	if !l.sending {
		n.transmitNext(l)
	}
	return nil
}

// releaseTo returns a delivered or lost message to owner's freelist.
func (n *Network) releaseTo(owner *node, m *pendingMsg) {
	*m = pendingMsg{next: owner.freeMsgs}
	owner.freeMsgs = m
}

// afterCallOn schedules fn(arg) after d on the node's lane (parallel)
// or the shared scheduler (sequential).
func (n *Network) afterCallOn(nd *node, d time.Duration, fn func(any), arg any) {
	if nd.lane != nil {
		nd.lane.AfterCall(d, fn, arg)
	} else {
		n.sched.AfterCall(d, fn, arg)
	}
}

// transmitNext starts serializing the highest-priority waiting message on
// the link. It runs on the link's source lane.
func (n *Network) transmitNext(l *link) {
	if len(l.queue) == 0 {
		l.sending = false
		return
	}
	m, ok := heap.Pop(&l.queue).(*pendingMsg)
	if !ok {
		l.sending = false
		return
	}
	l.sending = true
	txTime := time.Duration(float64(m.size) / l.bandwidth * float64(time.Second))
	n.afterCallOn(l.src, txTime, n.finishTxFn, m)
}

// finishTx runs when a message's serialization completes (on the source
// lane): the link is free for its next message, and the frame either
// dies to an injected failure or propagates toward delivery. The
// propagation hop is the engines' one cross-lane edge: its delay is the
// link latency, which is at least the kernel's lookahead by
// construction, satisfying the conservative contract.
func (n *Network) finishTx(arg any) {
	m, ok := arg.(*pendingMsg)
	if !ok {
		return
	}
	l := m.link
	l.queued -= m.size
	// Failure check at the end of serialization: a link outage, source
	// churn, or the link's seeded loss draw destroys the frame in
	// transit. (Destination churn is judged at arrival, on the
	// destination's lane — see deliver.)
	if n.lose(l) {
		l.lost.Add(1)
		n.perNode[l.src.idx].MessagesLost++
		n.releaseTo(l.src, m)
		n.transmitNext(l)
		return
	}
	if l.src.lane != nil {
		l.src.lane.Post(l.dst.lane, l.src.lane.Now().Add(l.latency), n.deliverFn, m)
	} else {
		n.sched.AfterCall(l.latency, n.deliverFn, m)
	}
	n.transmitNext(l)
}

// deliver runs after propagation, on the destination lane: the message
// reaches its destination, or dies there if the destination has churned
// out by the arrival instant.
func (n *Network) deliver(arg any) {
	m, ok := arg.(*pendingMsg)
	if !ok {
		return
	}
	l := m.link
	dst := l.dst
	st := &n.perNode[dst.idx]
	if dst.down {
		l.lost.Add(1)
		st.MessagesLost++
		n.releaseTo(dst, m)
		return
	}
	st.MessagesDelivered++
	st.BytesDelivered += m.size
	if dst.handler != nil {
		dst.handler(m.from, m.size, m.payload)
	}
	n.releaseTo(dst, m)
}

// NextHop returns the next hop on a shortest (fewest-hops) path from src
// toward dst, computing and caching routes by BFS. Ties break toward the
// lexicographically smallest neighbor for determinism. Safe to call from
// any lane: route tables are atomically published and builders serialize
// on routeMu, and the table contents depend only on the topology, so the
// cache is worker-count independent.
func (n *Network) NextHop(src, dst string) (string, error) {
	if src == dst {
		return dst, nil
	}
	sn, ok := n.nodes[src]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownNode, src)
	}
	dn, ok := n.nodes[dst]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownNode, dst)
	}
	if int(dn.idx) < len(n.hopTab) {
		if tab := n.hopTab[dn.idx].Load(); tab != nil {
			if hi := (*tab)[sn.idx]; hi >= 0 {
				return n.order[hi], nil
			}
			return "", fmt.Errorf("%w: %s -> %s", ErrNoRoute, src, dst)
		}
	}
	return n.buildRoute(sn, dn, src, dst)
}

// buildRoute computes and publishes the next-hop table toward dst by a
// backward BFS, so each visited node learns its next hop toward dst in
// one pass. The per-destination table is cached until the topology
// changes: n int32s per destination, not a map entry per (src, dst)
// string pair.
func (n *Network) buildRoute(sn, dn *node, src, dst string) (string, error) {
	n.routeMu.Lock()
	defer n.routeMu.Unlock()
	for len(n.hopTab) < len(n.order) {
		n.hopTab = append(n.hopTab, atomic.Pointer[[]int32]{})
	}
	// Another lane may have published the table while we waited.
	if tab := n.hopTab[dn.idx].Load(); tab != nil {
		if hi := (*tab)[sn.idx]; hi >= 0 {
			return n.order[hi], nil
		}
		return "", fmt.Errorf("%w: %s -> %s", ErrNoRoute, src, dst)
	}
	tab := make([]int32, len(n.order))
	for i := range tab {
		tab[i] = -1
	}
	tab[dn.idx] = dn.idx
	frontier := append(n.bfsFrontier[:0], dn.idx)
	level := n.bfsLevel[:0]
	for len(frontier) > 0 {
		level = level[:0]
		for _, cur := range frontier {
			for _, nb := range n.nodes[n.order[cur]].neighbors {
				nbi := n.nodes[nb].idx
				if tab[nbi] >= 0 {
					continue
				}
				tab[nbi] = cur
				level = append(level, nbi)
			}
		}
		frontier, level = level, frontier
	}
	n.bfsFrontier, n.bfsLevel = frontier, level
	n.hopTab[dn.idx].Store(&tab)
	if hi := tab[sn.idx]; hi >= 0 {
		return n.order[hi], nil
	}
	return "", fmt.Errorf("%w: %s -> %s", ErrNoRoute, src, dst)
}

// PathLength returns the hop count of the shortest path from src to dst.
func (n *Network) PathLength(src, dst string) (int, error) {
	hops := 0
	cur := src
	for cur != dst {
		next, err := n.NextHop(cur, dst)
		if err != nil {
			return 0, err
		}
		cur = next
		hops++
		if hops > len(n.nodes) {
			return 0, fmt.Errorf("%w: routing loop %s -> %s", ErrNoRoute, src, dst)
		}
	}
	return hops, nil
}

// Package netsim is the network emulator substrate standing in for the
// EMANE-Shim emulator the paper used (Section VII). It models a static
// topology of duplex links, each with a bandwidth, propagation latency,
// and a FIFO transmission queue (store-and-forward), on top of the
// deterministic discrete-event kernel in internal/simclock. Per-link and
// network-wide byte accounting provides the bandwidth measurements behind
// Figure 3.
package netsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"athena/internal/simclock"
)

// Handler receives messages delivered to a node.
type Handler func(from string, size int64, payload any)

// Stats aggregates network accounting.
type Stats struct {
	// MessagesSent counts Send calls that were accepted.
	MessagesSent int64
	// MessagesDelivered counts messages handed to receivers.
	MessagesDelivered int64
	// MessagesDropped counts messages dropped at full link queues.
	MessagesDropped int64
	// MessagesLost counts messages lost to injected failures (link loss,
	// link outages, node churn).
	MessagesLost int64
	// BytesSent is the total bytes accepted for transmission.
	BytesSent int64
	// BytesDelivered is the total bytes delivered.
	BytesDelivered int64
}

// LinkStats is the per-link accounting.
type LinkStats struct {
	// Bytes transmitted over the link (both directions).
	Bytes int64
	// Messages transmitted over the link.
	Messages int64
	// Dropped counts queue-overflow drops.
	Dropped int64
	// Lost counts messages lost to injected failures.
	Lost int64
}

var (
	// ErrUnknownNode is returned when addressing a node that was never
	// added.
	ErrUnknownNode = errors.New("netsim: unknown node")
	// ErrNoLink is returned when sending between nodes with no direct
	// link.
	ErrNoLink = errors.New("netsim: no link between nodes")
	// ErrNoRoute is returned when no path exists between two nodes.
	ErrNoRoute = errors.New("netsim: no route")
)

// pendingMsg is one message waiting for (or in) transmission on a link.
// It carries its link so the serialization- and delivery-complete
// callbacks need no per-message closure, and recycles through the
// network's freelist once delivered or lost.
type pendingMsg struct {
	size     int64
	payload  any
	from, to string
	priority int
	seq      uint64

	link *link
	next *pendingMsg // freelist
}

// msgQueue orders pending messages by descending priority, then FIFO.
type msgQueue []*pendingMsg

func (q msgQueue) Len() int { return len(q) }

func (q msgQueue) Less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority > q[j].priority
	}
	return q[i].seq < q[j].seq
}

func (q msgQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *msgQueue) Push(x any) {
	if m, ok := x.(*pendingMsg); ok {
		*q = append(*q, m)
	}
}

func (q *msgQueue) Pop() any {
	old := *q
	n := len(old)
	m := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return m
}

type link struct {
	bandwidth float64 // bytes per second
	latency   time.Duration
	queueCap  int64 // max queued-but-unsent bytes; <=0 means unbounded

	queue   msgQueue // waiting messages, highest priority first
	sending bool     // a transmission is in progress
	queued  int64    // bytes accepted but not yet fully serialized
	stats   LinkStats

	// Injected failure state (see failure.go).
	lossProb float64 // per-message loss probability
	down     bool    // link severed: everything on it is lost
}

type node struct {
	handler   Handler
	neighbors []string
	idx       int32 // position in Network.order; keys the route tables
	down      bool  // churned out: sends and deliveries are lost
}

// Network is the emulated network. It is single-threaded: all activity
// runs on the embedded discrete-event scheduler.
type Network struct {
	sched  *simclock.Scheduler
	nodes  map[string]*node
	links  map[[2]string]*link
	stats  Stats
	msgSeq uint64

	// Route cache: order maps a node index back to its id, and
	// hopTab[dstIdx][srcIdx] holds the next-hop index toward dst (-1 =
	// unreachable), built lazily per destination by BFS.
	order  []string
	hopTab [][]int32

	// BFS scratch reused across NextHop route computations.
	bfsFrontier, bfsLevel []int32

	freeMsgs *pendingMsg // recycled pendingMsgs

	// finishTxFn/deliverFn are the method values the transmit path hands
	// to the scheduler, bound once here so the hot path allocates no
	// closures.
	finishTxFn, deliverFn func(any)

	// Failure injection (see failure.go).
	failRNG    *rand.Rand
	churnHooks []func(id string, up bool)
}

// New creates an empty network on the given scheduler.
func New(sched *simclock.Scheduler) *Network {
	n := &Network{
		sched: sched,
		nodes: make(map[string]*node),
		links: make(map[[2]string]*link),
	}
	n.finishTxFn = n.finishTx
	n.deliverFn = n.deliver
	return n
}

// Scheduler exposes the underlying event scheduler (also the network's
// clock).
func (n *Network) Scheduler() *simclock.Scheduler { return n.sched }

// Now returns the current virtual time.
func (n *Network) Now() time.Time { return n.sched.Now() }

// Stats returns a copy of the network-wide counters.
func (n *Network) Stats() Stats { return n.stats }

// AddNode registers a node. Adding an existing node replaces its handler.
func (n *Network) AddNode(id string, h Handler) {
	if existing, ok := n.nodes[id]; ok {
		existing.handler = h
		return
	}
	n.nodes[id] = &node{handler: h, idx: int32(len(n.order))}
	n.order = append(n.order, id)
}

// SetHandler replaces a node's message handler.
func (n *Network) SetHandler(id string, h Handler) error {
	nd, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	nd.handler = h
	return nil
}

// Nodes returns all node ids, sorted.
func (n *Network) Nodes() []string {
	ids := make([]string, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Neighbors returns a node's directly linked peers, sorted. The
// neighbor lists are kept sorted at AddLink time, so this is a copy, not
// a sort.
func (n *Network) Neighbors(id string) []string {
	nd, ok := n.nodes[id]
	if !ok {
		return nil
	}
	return append([]string(nil), nd.neighbors...)
}

// insertSorted adds s to a sorted slice, keeping it sorted.
func insertSorted(ss []string, s string) []string {
	i := sort.SearchStrings(ss, s)
	ss = append(ss, "")
	copy(ss[i+1:], ss[i:])
	ss[i] = s
	return ss
}

// LinkConfig parameterizes a duplex link.
type LinkConfig struct {
	// Bandwidth is the serialization rate in bytes per second.
	Bandwidth float64
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// QueueBytes bounds the transmission backlog; <= 0 means unbounded.
	QueueBytes int64
}

// AddLink connects a and b with two independent directed links (one per
// direction) sharing the config. Both nodes must exist.
func (n *Network) AddLink(a, b string, cfg LinkConfig) error {
	na, ok := n.nodes[a]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, a)
	}
	nb, ok := n.nodes[b]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, b)
	}
	if _, dup := n.links[[2]string{a, b}]; !dup {
		na.neighbors = insertSorted(na.neighbors, b)
		nb.neighbors = insertSorted(nb.neighbors, a)
	}
	n.links[[2]string{a, b}] = &link{bandwidth: cfg.Bandwidth, latency: cfg.Latency, queueCap: cfg.QueueBytes}
	n.links[[2]string{b, a}] = &link{bandwidth: cfg.Bandwidth, latency: cfg.Latency, queueCap: cfg.QueueBytes}
	clear(n.hopTab) // topology changed
	return nil
}

// LinkStats returns accounting for the directed link a->b combined with
// b->a.
func (n *Network) LinkStats(a, b string) LinkStats {
	var out LinkStats
	if l, ok := n.links[[2]string{a, b}]; ok {
		out.Bytes += l.stats.Bytes
		out.Messages += l.stats.Messages
		out.Dropped += l.stats.Dropped
	}
	if l, ok := n.links[[2]string{b, a}]; ok {
		out.Bytes += l.stats.Bytes
		out.Messages += l.stats.Messages
		out.Dropped += l.stats.Dropped
	}
	return out
}

// Send transmits a message of the given size from one node to a directly
// linked neighbor at default (zero) priority, modeling FIFO serialization
// (size/bandwidth) plus propagation latency. Delivery invokes the
// receiver's handler on the event loop. Messages beyond a bounded queue
// are dropped (counted, no error) — overload behaves like a real link.
func (n *Network) Send(from, to string, size int64, payload any) error {
	return n.SendPriority(from, to, size, 0, payload)
}

// SendPriority is Send with an explicit priority class (Section V-C
// preferential treatment): within one link, higher-priority messages are
// serialized before lower-priority backlog; the in-flight transmission is
// never preempted.
func (n *Network) SendPriority(from, to string, size int64, priority int, payload any) error {
	if _, ok := n.nodes[from]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, from)
	}
	if _, ok := n.nodes[to]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	l, ok := n.links[[2]string{from, to}]
	if !ok {
		return fmt.Errorf("%w: %s -> %s", ErrNoLink, from, to)
	}
	if size < 0 {
		size = 0
	}
	if l.queueCap > 0 && l.queued+size > l.queueCap {
		l.stats.Dropped++
		n.stats.MessagesDropped++
		return nil
	}

	l.queued += size
	l.stats.Bytes += size
	l.stats.Messages++
	n.stats.MessagesSent++
	n.stats.BytesSent += size
	m := n.freeMsgs
	if m != nil {
		n.freeMsgs = m.next
		*m = pendingMsg{size: size, payload: payload, from: from, to: to, priority: priority, seq: n.msgSeq, link: l}
	} else {
		m = &pendingMsg{size: size, payload: payload, from: from, to: to, priority: priority, seq: n.msgSeq, link: l}
	}
	heap.Push(&l.queue, m)
	n.msgSeq++
	if !l.sending {
		n.transmitNext(l)
	}
	return nil
}

// release returns a delivered or lost message to the freelist.
func (n *Network) release(m *pendingMsg) {
	*m = pendingMsg{next: n.freeMsgs}
	n.freeMsgs = m
}

// transmitNext starts serializing the highest-priority waiting message on
// the link.
func (n *Network) transmitNext(l *link) {
	if len(l.queue) == 0 {
		l.sending = false
		return
	}
	m, ok := heap.Pop(&l.queue).(*pendingMsg)
	if !ok {
		l.sending = false
		return
	}
	l.sending = true
	txTime := time.Duration(float64(m.size) / l.bandwidth * float64(time.Second))
	n.sched.AfterCall(txTime, n.finishTxFn, m)
}

// finishTx runs when a message's serialization completes: the link is
// free for its next message, and the frame either dies to an injected
// failure or propagates toward delivery.
func (n *Network) finishTx(arg any) {
	m, ok := arg.(*pendingMsg)
	if !ok {
		return
	}
	l := m.link
	l.queued -= m.size
	// Failure check at the end of serialization: a link outage, node
	// churn, or a seeded loss draw destroys the frame in transit.
	if n.lose(l, m) {
		l.stats.Lost++
		n.stats.MessagesLost++
		n.release(m)
		n.transmitNext(l)
		return
	}
	n.sched.AfterCall(l.latency, n.deliverFn, m)
	n.transmitNext(l)
}

// deliver runs after propagation: the message reaches its destination.
func (n *Network) deliver(arg any) {
	m, ok := arg.(*pendingMsg)
	if !ok {
		return
	}
	n.stats.MessagesDelivered++
	n.stats.BytesDelivered += m.size
	if dst, ok := n.nodes[m.to]; ok && dst.handler != nil && !dst.down {
		dst.handler(m.from, m.size, m.payload)
	}
	n.release(m)
}

// NextHop returns the next hop on a shortest (fewest-hops) path from src
// toward dst, computing and caching routes by BFS. Ties break toward the
// lexicographically smallest neighbor for determinism.
func (n *Network) NextHop(src, dst string) (string, error) {
	if src == dst {
		return dst, nil
	}
	sn, ok := n.nodes[src]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownNode, src)
	}
	dn, ok := n.nodes[dst]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownNode, dst)
	}
	if int(dn.idx) < len(n.hopTab) {
		if tab := n.hopTab[dn.idx]; tab != nil {
			if hi := tab[sn.idx]; hi >= 0 {
				return n.order[hi], nil
			}
			return "", fmt.Errorf("%w: %s -> %s", ErrNoRoute, src, dst)
		}
	}
	// BFS backward from dst so each visited node learns its next hop
	// toward dst in one pass. The per-destination table is cached until
	// the topology changes: n int32s per destination, not a map entry per
	// (src, dst) string pair. Frontier slices are scheduler-thread
	// scratch, reused across computations.
	for len(n.hopTab) < len(n.order) {
		n.hopTab = append(n.hopTab, nil)
	}
	tab := make([]int32, len(n.order))
	for i := range tab {
		tab[i] = -1
	}
	tab[dn.idx] = dn.idx
	frontier := append(n.bfsFrontier[:0], dn.idx)
	level := n.bfsLevel[:0]
	for len(frontier) > 0 {
		level = level[:0]
		for _, cur := range frontier {
			for _, nb := range n.nodes[n.order[cur]].neighbors {
				nbi := n.nodes[nb].idx
				if tab[nbi] >= 0 {
					continue
				}
				tab[nbi] = cur
				level = append(level, nbi)
			}
		}
		frontier, level = level, frontier
	}
	n.bfsFrontier, n.bfsLevel = frontier, level
	n.hopTab[dn.idx] = tab
	if hi := tab[sn.idx]; hi >= 0 {
		return n.order[hi], nil
	}
	return "", fmt.Errorf("%w: %s -> %s", ErrNoRoute, src, dst)
}

// PathLength returns the hop count of the shortest path from src to dst.
func (n *Network) PathLength(src, dst string) (int, error) {
	hops := 0
	cur := src
	for cur != dst {
		next, err := n.NextHop(cur, dst)
		if err != nil {
			return 0, err
		}
		cur = next
		hops++
		if hops > len(n.nodes) {
			return 0, fmt.Errorf("%w: routing loop %s -> %s", ErrNoRoute, src, dst)
		}
	}
	return hops, nil
}

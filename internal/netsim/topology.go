package netsim

import (
	"fmt"
	"math/rand"
)

// GridNodeID names the node at grid coordinate (row, col).
func GridNodeID(row, col int) string {
	return fmt.Sprintf("n%d-%d", row, col)
}

// BuildGrid adds a rows x cols Manhattan grid of nodes (the Section VII
// road-segment layout) with links between 4-neighbors. Node ids follow
// GridNodeID.
func BuildGrid(n *Network, rows, cols int, cfg LinkConfig) error {
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			n.AddNode(GridNodeID(r, c), nil)
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := n.AddLink(GridNodeID(r, c), GridNodeID(r, c+1), cfg); err != nil {
					return err
				}
			}
			if r+1 < rows {
				if err := n.AddLink(GridNodeID(r, c), GridNodeID(r+1, c), cfg); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// BuildLine adds a chain of n nodes named n0..n<n-1>.
func BuildLine(net *Network, n int, cfg LinkConfig) error {
	for i := 0; i < n; i++ {
		net.AddNode(fmt.Sprintf("n%d", i), nil)
	}
	for i := 0; i+1 < n; i++ {
		if err := net.AddLink(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1), cfg); err != nil {
			return err
		}
	}
	return nil
}

// BuildStar adds a hub node "hub" linked to n leaves named leaf0..
func BuildStar(net *Network, n int, cfg LinkConfig) error {
	net.AddNode("hub", nil)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("leaf%d", i)
		net.AddNode(id, nil)
		if err := net.AddLink("hub", id, cfg); err != nil {
			return err
		}
	}
	return nil
}

// BuildRandomConnected adds n nodes named n0.. with a random spanning tree
// plus extra random edges, guaranteeing connectivity. Deterministic for a
// given rng.
func BuildRandomConnected(net *Network, n int, extraEdges int, cfg LinkConfig, rng *rand.Rand) error {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("n%d", i)
		net.AddNode(ids[i], nil)
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		parent := perm[rng.Intn(i)]
		if err := net.AddLink(ids[perm[i]], ids[parent], cfg); err != nil {
			return err
		}
	}
	for e := 0; e < extraEdges; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if err := net.AddLink(ids[a], ids[b], cfg); err != nil {
			return err
		}
	}
	return nil
}

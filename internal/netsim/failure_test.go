package netsim

import (
	"testing"
	"time"
)

// Loss probability 1 destroys every message; the counters account for it.
func TestLinkLossDropsAll(t *testing.T) {
	s, net := newNet()
	net.AddNode("a", nil)
	delivered := 0
	net.AddNode("b", func(string, int64, any) { delivered++ })
	if err := net.AddLink("a", "b", LinkConfig{Bandwidth: 1000}); err != nil {
		t.Fatal(err)
	}
	net.SeedFailures(1)
	if err := net.SetLinkLoss("a", "b", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := net.Send("a", "b", 100, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Errorf("delivered = %d, want 0", delivered)
	}
	if got := net.Stats().MessagesLost; got != 5 {
		t.Errorf("MessagesLost = %d, want 5", got)
	}
	if got := net.LinkStats("a", "b").Lost; got != 5 {
		t.Errorf("link Lost = %d, want 5", got)
	}
}

func (n *Network) linkPair(a, b string) *link { return n.links[[2]string{a, b}] }

// SetLinkLoss without SeedFailures is rejected: unseeded loss would be
// nondeterministic.
func TestLinkLossRequiresSeed(t *testing.T) {
	_, net := newNet()
	net.AddNode("a", nil)
	net.AddNode("b", nil)
	if err := net.AddLink("a", "b", LinkConfig{Bandwidth: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := net.SetLinkLoss("a", "b", 0.5); err == nil {
		t.Fatal("SetLinkLoss before SeedFailures succeeded")
	}
	if err := net.SetLoss(0.5); err == nil {
		t.Fatal("SetLoss before SeedFailures succeeded")
	}
}

// Same seed, same traffic, same losses: a fractional loss rate is exactly
// repeatable.
func TestLossDeterministicBySeed(t *testing.T) {
	run := func(seed int64) []int {
		s, net := newNet()
		net.AddNode("a", nil)
		var got []int
		net.AddNode("b", func(_ string, _ int64, payload any) {
			if i, ok := payload.(int); ok {
				got = append(got, i)
			}
		})
		if err := net.AddLink("a", "b", LinkConfig{Bandwidth: 1e6}); err != nil {
			t.Fatal(err)
		}
		net.SeedFailures(seed)
		if err := net.SetLoss(0.4); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if err := net.Send("a", "b", 100, i); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Run(0); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(7), run(7)
	if len(a) == 0 || len(a) == 50 {
		t.Fatalf("loss 0.4 delivered %d/50; expected a strict subset", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed delivered %d vs %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different survivors at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(c) == len(a)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical loss patterns")
	}
}

// A scheduled outage window loses messages serialized inside it and lets
// traffic through once the link recovers.
func TestScheduledLinkOutage(t *testing.T) {
	s, net := newNet()
	net.AddNode("a", nil)
	var deliveredAt []time.Time
	net.AddNode("b", func(string, int64, any) { deliveredAt = append(deliveredAt, s.Now()) })
	// 100 B at 1000 B/s = 100 ms serialization, no latency.
	if err := net.AddLink("a", "b", LinkConfig{Bandwidth: 1000}); err != nil {
		t.Fatal(err)
	}
	// Down from +1s to +3s.
	if err := net.ScheduleLinkOutage("a", "b", origin.Add(time.Second), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// One message per second at +0s, +1.5s, +4s: the middle one dies.
	for _, at := range []time.Duration{0, 1500 * time.Millisecond, 4 * time.Second} {
		s.At(origin.Add(at), func() {
			if err := net.Send("a", "b", 100, nil); err != nil {
				t.Error(err)
			}
		})
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(deliveredAt) != 2 {
		t.Fatalf("delivered %d messages, want 2 (outage window eats the middle one)", len(deliveredAt))
	}
	if net.Stats().MessagesLost != 1 {
		t.Errorf("MessagesLost = %d, want 1", net.Stats().MessagesLost)
	}
	if want := origin.Add(100 * time.Millisecond); !deliveredAt[0].Equal(want) {
		t.Errorf("first delivery at %v, want %v", deliveredAt[0], want)
	}
	if want := origin.Add(4*time.Second + 100*time.Millisecond); !deliveredAt[1].Equal(want) {
		t.Errorf("post-recovery delivery at %v, want %v", deliveredAt[1], want)
	}
}

// Node churn: a down node neither sends nor receives, churn hooks see every
// transition, and a rejoined node works again.
func TestNodeChurn(t *testing.T) {
	s, net := newNet()
	net.AddNode("a", nil)
	delivered := 0
	net.AddNode("b", func(string, int64, any) { delivered++ })
	if err := net.AddLink("a", "b", LinkConfig{Bandwidth: 1000}); err != nil {
		t.Fatal(err)
	}
	type churn struct {
		id string
		up bool
	}
	var transitions []churn
	net.OnChurn(func(id string, up bool) { transitions = append(transitions, churn{id, up}) })

	if err := net.ScheduleNodeOutage("b", origin.Add(time.Second), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	for _, at := range []time.Duration{0, 1500 * time.Millisecond, 4 * time.Second} {
		s.At(origin.Add(at), func() {
			if err := net.Send("a", "b", 100, nil); err != nil {
				t.Error(err)
			}
		})
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Errorf("delivered = %d, want 2 (message during b's outage lost)", delivered)
	}
	if net.NodeDown("b") {
		t.Error("b still down after outage window")
	}
	want := []churn{{"b", false}, {"b", true}}
	if len(transitions) != len(want) {
		t.Fatalf("churn transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("churn transitions = %v, want %v", transitions, want)
		}
	}
	// Redundant SetNodeDown is a no-op for hooks.
	if err := net.SetNodeDown("b", false); err != nil {
		t.Fatal(err)
	}
	if len(transitions) != 2 {
		t.Errorf("redundant SetNodeDown fired a hook: %v", transitions)
	}
}

// Package trust implements the paper's label records and trust machinery
// (Section III-B): label values computed by annotators are signed, note
// which evidence objects were used, and are accepted by a query source only
// if its trust policy accepts the annotator. Signing uses HMAC-SHA256 with
// per-annotator keys issued by a shared Authority (a stand-in for a PKI).
package trust

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"athena/internal/boolexpr"
)

// Label is the paper's cached label record: the resolved predicate value,
// who computed it, from which evidence, when, and for how long it stays
// valid. This is the unit that label sharing (Section VI-D) propagates in
// place of megabyte evidence objects.
type Label struct {
	// Name is the label (predicate) name, e.g. "viableA".
	Name string `json:"label"`
	// Value is the resolved boolean value.
	Value bool `json:"value"`
	// Annotator identifies who computed the value.
	Annotator string `json:"annotator"`
	// Evidence lists the object IDs examined to compute the value.
	Evidence []string `json:"evidence"`
	// Computed is when the annotation was made.
	Computed time.Time `json:"computed"`
	// Validity bounds how long the annotation stays fresh; it inherits
	// the minimum remaining validity of the evidence used.
	Validity time.Duration `json:"validityNanos"`
	// Signature is the annotator's HMAC over the canonical record.
	Signature string `json:"signature"`
}

// Expiry is the instant the label record becomes stale.
func (l *Label) Expiry() time.Time { return l.Computed.Add(l.Validity) }

// FreshAt reports whether the record is still valid at t.
func (l *Label) FreshAt(t time.Time) bool { return !t.After(l.Expiry()) }

// BoolValue converts the record's value to a three-valued logic value,
// Unknown if the record is stale at t.
func (l *Label) BoolValue(t time.Time) boolexpr.Value {
	if !l.FreshAt(t) {
		return boolexpr.Unknown
	}
	return boolexpr.FromBool(l.Value)
}

// canonical serializes the signed fields deterministically.
func (l *Label) canonical() []byte {
	ev := append([]string(nil), l.Evidence...)
	sort.Strings(ev)
	payload := l.Name + "|" + strconv.FormatBool(l.Value) + "|" + l.Annotator +
		"|" + strconv.FormatInt(l.Computed.UnixNano(), 10) +
		"|" + strconv.FormatInt(int64(l.Validity), 10)
	for _, e := range ev {
		payload += "|" + e
	}
	return []byte(payload)
}

// MarshalJSON uses the paper's JSON label format.
func (l *Label) MarshalJSON() ([]byte, error) {
	type alias Label // avoid recursion
	return json.Marshal((*alias)(l))
}

var (
	// ErrUnknownAnnotator is returned when verifying a record whose
	// annotator has no registered key.
	ErrUnknownAnnotator = errors.New("trust: unknown annotator")
	// ErrBadSignature is returned when a record's signature does not
	// verify.
	ErrBadSignature = errors.New("trust: bad signature")
)

// Authority issues per-annotator signing keys and verifies records. It is
// safe for concurrent use.
type Authority struct {
	mu   sync.RWMutex
	keys map[string][]byte
}

// NewAuthority returns an empty Authority.
func NewAuthority() *Authority {
	return &Authority{keys: make(map[string][]byte)}
}

// Register derives and stores a signing key for the annotator, returning a
// Signer bound to it. Re-registering replaces the key.
func (a *Authority) Register(annotator string, secret []byte) Signer {
	key := deriveKey(annotator, secret)
	a.mu.Lock()
	a.keys[annotator] = key
	a.mu.Unlock()
	return Signer{annotator: annotator, key: key}
}

func deriveKey(annotator string, secret []byte) []byte {
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte("athena-key/" + annotator))
	return mac.Sum(nil)
}

// Verify checks a record's signature against the registered key.
func (a *Authority) Verify(l *Label) error {
	a.mu.RLock()
	key, ok := a.keys[l.Annotator]
	a.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAnnotator, l.Annotator)
	}
	want := sign(key, l)
	if !hmac.Equal([]byte(want), []byte(l.Signature)) {
		return fmt.Errorf("%w: label %q by %q", ErrBadSignature, l.Name, l.Annotator)
	}
	return nil
}

// Signer signs label records on behalf of one annotator.
type Signer struct {
	annotator string
	key       []byte
}

// Annotator returns the identity the signer signs as.
func (s Signer) Annotator() string { return s.annotator }

// Sign fills in the record's Annotator and Signature fields.
func (s Signer) Sign(l *Label) {
	l.Annotator = s.annotator
	l.Signature = sign(s.key, l)
}

func sign(key []byte, l *Label) string {
	mac := hmac.New(sha256.New, key)
	mac.Write(l.canonical())
	return hex.EncodeToString(mac.Sum(nil))
}

// Policy decides which annotators a consumer trusts for which labels. The
// zero value trusts nobody; use TrustAll or Allow to open it up. Policies
// make trust pairwise between annotator and query source (Section III-B).
type Policy struct {
	trustAll bool
	allowed  map[string]bool
}

// TrustAll returns a policy accepting every verified annotator.
func TrustAll() *Policy { return &Policy{trustAll: true} }

// TrustNone returns a policy accepting no annotators (forces raw-object
// retrieval, like Alice refusing Bob's judgment in Section VI-D).
func TrustNone() *Policy { return &Policy{} }

// TrustOnly returns a policy accepting exactly the given annotators.
func TrustOnly(annotators ...string) *Policy {
	p := &Policy{allowed: make(map[string]bool, len(annotators))}
	for _, a := range annotators {
		p.allowed[a] = true
	}
	return p
}

// Allow adds an annotator to the policy's allow list.
func (p *Policy) Allow(annotator string) {
	if p.allowed == nil {
		p.allowed = make(map[string]bool)
	}
	p.allowed[annotator] = true
}

// Trusts reports whether the policy accepts the annotator.
func (p *Policy) Trusts(annotator string) bool {
	if p == nil {
		return false
	}
	return p.trustAll || p.allowed[annotator]
}

// Accept verifies a record against the authority and the policy: the
// record must be authentic, trusted, and fresh at instant now.
func (p *Policy) Accept(a *Authority, l *Label, now time.Time) error {
	if err := a.Verify(l); err != nil {
		return err
	}
	if !p.Trusts(l.Annotator) {
		return fmt.Errorf("trust: annotator %q not trusted for label %q", l.Annotator, l.Name)
	}
	if !l.FreshAt(now) {
		return fmt.Errorf("trust: label %q stale (expired %v)", l.Name, l.Expiry())
	}
	return nil
}

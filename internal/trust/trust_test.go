package trust

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"athena/internal/boolexpr"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func signedLabel(t *testing.T, auth *Authority) (*Label, Signer) {
	t.Helper()
	signer := auth.Register("vision-1", []byte("secret"))
	l := &Label{
		Name:     "viableA",
		Value:    true,
		Evidence: []string{"/grid/a/cam#1", "/grid/a/cam#2"},
		Computed: t0,
		Validity: 30 * time.Second,
	}
	signer.Sign(l)
	return l, signer
}

func TestSignAndVerify(t *testing.T) {
	auth := NewAuthority()
	l, _ := signedLabel(t, auth)
	if err := auth.Verify(l); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	auth := NewAuthority()
	for _, mutate := range []func(*Label){
		func(l *Label) { l.Value = false },
		func(l *Label) { l.Name = "viableB" },
		func(l *Label) { l.Evidence = append(l.Evidence, "/bogus#1") },
		func(l *Label) { l.Computed = l.Computed.Add(time.Second) },
		func(l *Label) { l.Validity += time.Second },
		func(l *Label) { l.Signature = "deadbeef" },
	} {
		l, _ := signedLabel(t, auth)
		mutate(l)
		if err := auth.Verify(l); !errors.Is(err, ErrBadSignature) {
			t.Errorf("tampered record verified: %v", err)
		}
	}
}

func TestVerifyEvidenceOrderInsensitive(t *testing.T) {
	auth := NewAuthority()
	l, _ := signedLabel(t, auth)
	l.Evidence[0], l.Evidence[1] = l.Evidence[1], l.Evidence[0]
	if err := auth.Verify(l); err != nil {
		t.Errorf("evidence reorder broke signature: %v", err)
	}
}

func TestVerifyUnknownAnnotator(t *testing.T) {
	auth := NewAuthority()
	l, _ := signedLabel(t, auth)
	other := NewAuthority()
	if err := other.Verify(l); !errors.Is(err, ErrUnknownAnnotator) {
		t.Errorf("err = %v, want ErrUnknownAnnotator", err)
	}
}

func TestFreshnessAndBoolValue(t *testing.T) {
	auth := NewAuthority()
	l, _ := signedLabel(t, auth)
	if got := l.BoolValue(t0.Add(10 * time.Second)); got != boolexpr.True {
		t.Errorf("BoolValue fresh = %v, want true", got)
	}
	if got := l.BoolValue(t0.Add(time.Minute)); got != boolexpr.Unknown {
		t.Errorf("BoolValue stale = %v, want unknown", got)
	}
}

func TestPolicies(t *testing.T) {
	auth := NewAuthority()
	l, signer := signedLabel(t, auth)

	if err := TrustAll().Accept(auth, l, t0.Add(time.Second)); err != nil {
		t.Errorf("TrustAll rejected: %v", err)
	}
	if err := TrustNone().Accept(auth, l, t0.Add(time.Second)); err == nil {
		t.Error("TrustNone accepted")
	}
	if err := TrustOnly(signer.Annotator()).Accept(auth, l, t0.Add(time.Second)); err != nil {
		t.Errorf("TrustOnly rejected listed annotator: %v", err)
	}
	if err := TrustOnly("someone-else").Accept(auth, l, t0.Add(time.Second)); err == nil {
		t.Error("TrustOnly accepted unlisted annotator")
	}
	p := TrustNone()
	p.Allow(signer.Annotator())
	if err := p.Accept(auth, l, t0.Add(time.Second)); err != nil {
		t.Errorf("Allow did not take effect: %v", err)
	}
	// Stale record rejected even when trusted.
	if err := TrustAll().Accept(auth, l, t0.Add(time.Hour)); err == nil {
		t.Error("stale record accepted")
	}
	var nilPolicy *Policy
	if nilPolicy.Trusts("x") {
		t.Error("nil policy trusts")
	}
}

func TestLabelJSONFormat(t *testing.T) {
	auth := NewAuthority()
	l, _ := signedLabel(t, auth)
	raw, err := json.Marshal(l)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var decoded Label
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if err := auth.Verify(&decoded); err != nil {
		t.Errorf("round-tripped record failed verification: %v", err)
	}
}

func TestReRegisterReplacesKey(t *testing.T) {
	auth := NewAuthority()
	l, _ := signedLabel(t, auth)
	auth.Register("vision-1", []byte("rotated"))
	if err := auth.Verify(l); !errors.Is(err, ErrBadSignature) {
		t.Errorf("old signature verified after key rotation: %v", err)
	}
}

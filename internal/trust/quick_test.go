package trust

import (
	"testing"
	"testing/quick"
	"time"
)

// Property: any record a signer produces verifies, and any single-field
// perturbation breaks verification.
func TestQuickSignVerify(t *testing.T) {
	auth := NewAuthority()
	signer := auth.Register("quick-ann", []byte("quick-secret"))

	f := func(name string, value bool, evidence []string, computedUnix int64, validitySec uint16) bool {
		l := &Label{
			Name:     name,
			Value:    value,
			Evidence: evidence,
			Computed: time.Unix(computedUnix%1_000_000_000, 0),
			Validity: time.Duration(validitySec) * time.Second,
		}
		signer.Sign(l)
		if auth.Verify(l) != nil {
			return false
		}
		// Flip the value: must fail.
		l.Value = !l.Value
		if auth.Verify(l) == nil {
			return false
		}
		l.Value = !l.Value
		// Append evidence: must fail.
		l.Evidence = append(l.Evidence, "tampered")
		if auth.Verify(l) == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: freshness is exactly Computed+Validity inclusive.
func TestQuickFreshness(t *testing.T) {
	f := func(validitySec uint16, offsetSec uint16) bool {
		base := time.Unix(1_000_000, 0)
		l := &Label{Computed: base, Validity: time.Duration(validitySec) * time.Second}
		at := base.Add(time.Duration(offsetSec) * time.Second)
		want := offsetSec <= validitySec
		return l.FreshAt(at) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

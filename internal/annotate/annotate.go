// Package annotate implements annotators (Section II-B): entities that
// examine evidence objects and resolve label values. It provides machine
// annotators driven by a ground-truth world model, simulated human
// annotators with decision latency, per-source reliability profiles built
// from annotator feedback, and corroboration of noisy sensor evidence to a
// target confidence (Section IV-B).
package annotate

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"athena/internal/object"
	"athena/internal/trust"
)

// Annotator turns evidence objects into label values.
type Annotator interface {
	// ID identifies the annotator (also its signing identity).
	ID() string
	// Accepts reports whether the annotator can evaluate the given label
	// from the given object.
	Accepts(label string, obj *object.Object) bool
	// Annotate resolves the label from the object, returning the value
	// and the processing latency incurred.
	Annotate(label string, obj *object.Object) (value bool, latency time.Duration, err error)
}

// ErrCannotAnnotate is returned when an annotator is asked to evaluate
// evidence it does not accept.
var ErrCannotAnnotate = errors.New("annotate: object does not evidence label")

// GroundTruth supplies the true value of a label at a given instant; the
// workload's world model implements it.
type GroundTruth interface {
	// LabelValue returns the true value of label at instant t.
	LabelValue(label string, t time.Time) bool
}

// Machine is a software annotator (e.g. a vision model): it reads the
// ground truth as of the object's sample time, optionally corrupted by a
// symmetric noise rate, with a fixed compute latency.
type Machine struct {
	id      string
	truth   GroundTruth
	latency time.Duration
	// NoiseRate is the probability the annotator misreads the evidence
	// (symmetric flip). Zero means a perfect annotator.
	NoiseRate float64
	// rand returns a uniform [0,1) sample; injected for determinism.
	rand func() float64
}

var _ Annotator = (*Machine)(nil)

// NewMachine builds a machine annotator. The rnd function drives noise
// decisions and may be nil when NoiseRate is zero.
func NewMachine(id string, truth GroundTruth, latency time.Duration, noiseRate float64, rnd func() float64) *Machine {
	return &Machine{id: id, truth: truth, latency: latency, NoiseRate: noiseRate, rand: rnd}
}

// ID implements Annotator.
func (m *Machine) ID() string { return m.id }

// Accepts implements Annotator: the object must list the label.
func (m *Machine) Accepts(label string, obj *object.Object) bool {
	return obj.CoversLabel(label)
}

// Annotate implements Annotator. The value reflects the world at the
// object's sample time (evidence is a snapshot), not at annotation time.
func (m *Machine) Annotate(label string, obj *object.Object) (bool, time.Duration, error) {
	if !m.Accepts(label, obj) {
		return false, 0, fmt.Errorf("%w: %s from %s", ErrCannotAnnotate, label, obj.ID)
	}
	v := m.truth.LabelValue(label, obj.Created)
	if m.NoiseRate > 0 && m.rand != nil && m.rand() < m.NoiseRate {
		v = !v
	}
	return v, m.latency, nil
}

// Human simulates a human analyst: same semantics as Machine but with a
// (typically much larger) per-judgment latency.
type Human struct {
	machine Machine
}

var _ Annotator = (*Human)(nil)

// NewHuman builds a simulated human annotator with the given judgment
// latency and error rate.
func NewHuman(id string, truth GroundTruth, judgment time.Duration, errRate float64, rnd func() float64) *Human {
	return &Human{machine: Machine{id: id, truth: truth, latency: judgment, NoiseRate: errRate, rand: rnd}}
}

// ID implements Annotator.
func (h *Human) ID() string { return h.machine.id }

// Accepts implements Annotator.
func (h *Human) Accepts(label string, obj *object.Object) bool {
	return h.machine.Accepts(label, obj)
}

// Annotate implements Annotator.
func (h *Human) Annotate(label string, obj *object.Object) (bool, time.Duration, error) {
	return h.machine.Annotate(label, obj)
}

// Registry tracks annotators and their advertised capabilities, pairing an
// incoming (label, object) with an annotator that accepts it. Safe for
// concurrent use.
type Registry struct {
	mu         sync.RWMutex
	annotators map[string]Annotator
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{annotators: make(map[string]Annotator)}
}

// Add registers an annotator (replacing any with the same ID).
func (r *Registry) Add(a Annotator) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.annotators[a.ID()] = a
}

// Get returns an annotator by id.
func (r *Registry) Get(id string) (Annotator, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.annotators[id]
	return a, ok
}

// Find returns an annotator accepting the (label, object) pair, trying ids
// in sorted order for determinism.
func (r *Registry) Find(label string, obj *object.Object) (Annotator, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.annotators))
	for id := range r.annotators {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if a := r.annotators[id]; a.Accepts(label, obj) {
			return a, true
		}
	}
	return nil, false
}

// MakeLabel runs an annotator over evidence and returns a signed label
// record whose validity inherits the evidence's remaining validity at
// annotation completion.
func MakeLabel(a Annotator, signer trust.Signer, label string, obj *object.Object, now time.Time) (*trust.Label, time.Duration, error) {
	v, latency, err := a.Annotate(label, obj)
	if err != nil {
		return nil, 0, err
	}
	done := now.Add(latency)
	rec := &trust.Label{
		Name:     label,
		Value:    v,
		Evidence: []string{obj.ID.String()},
		Computed: done,
		Validity: obj.RemainingValidity(done),
	}
	signer.Sign(rec)
	return rec, latency, nil
}

// Confidence is the posterior probability that the majority value of n
// independent annotations with per-annotation error rate eps is correct,
// under a uniform prior. Used to decide how much corroborating evidence a
// noisy label needs (Section IV-B).
func Confidence(votesFor, votesAgainst int, eps float64) float64 {
	if eps <= 0 {
		if votesFor > 0 && votesAgainst == 0 || votesAgainst > 0 && votesFor == 0 {
			return 1
		}
	}
	eps = math.Min(math.Max(eps, 1e-9), 0.5)
	// Likelihood ratio for value=true vs value=false given the votes.
	logLR := float64(votesFor-votesAgainst) * math.Log((1-eps)/eps)
	pTrue := 1 / (1 + math.Exp(-logLR))
	return math.Max(pTrue, 1-pTrue)
}

// VotesNeeded returns the minimum number of unanimous annotations needed
// to reach the target confidence with per-annotation error rate eps.
func VotesNeeded(target, eps float64) int {
	for n := 1; n <= 64; n++ {
		if Confidence(n, 0, eps) >= target {
			return n
		}
	}
	return 64
}

// Corroborator accumulates noisy annotations for one label until a target
// confidence is reached.
type Corroborator struct {
	// Target is the required confidence in (0.5, 1].
	Target float64
	// Eps is the assumed per-annotation error rate.
	Eps float64

	votesFor     int
	votesAgainst int
}

// Add records one annotation vote.
func (c *Corroborator) Add(value bool) {
	if value {
		c.votesFor++
	} else {
		c.votesAgainst++
	}
}

// Votes returns the tallies so far.
func (c *Corroborator) Votes() (votesFor, votesAgainst int) {
	return c.votesFor, c.votesAgainst
}

// Decided reports whether confidence has reached the target, and if so
// the majority value.
func (c *Corroborator) Decided() (value bool, confident bool) {
	if c.votesFor == c.votesAgainst {
		return false, false
	}
	conf := Confidence(c.votesFor, c.votesAgainst, c.Eps)
	return c.votesFor > c.votesAgainst, conf >= c.Target
}

// Profile is a per-source reliability profile built from annotator
// feedback (Section IV-B): annotators mark evidence useful or not, and the
// accumulated Beta-style counts rank sources for future selection.
type Profile struct {
	useful  int
	useless int
}

// Reliability is the smoothed fraction of useful evidence (Laplace +1/+2).
func (p Profile) Reliability() float64 {
	return float64(p.useful+1) / float64(p.useful+p.useless+2)
}

// Profiles tracks reliability per source. Each query originator keeps its
// own Profiles, so trust in sources stays pairwise.
type Profiles struct {
	mu      sync.Mutex
	bySouce map[string]Profile
}

// NewProfiles returns an empty profile set.
func NewProfiles() *Profiles {
	return &Profiles{bySouce: make(map[string]Profile)}
}

// Feedback records whether evidence from source was useful.
func (p *Profiles) Feedback(source string, useful bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	prof := p.bySouce[source]
	if useful {
		prof.useful++
	} else {
		prof.useless++
	}
	p.bySouce[source] = prof
}

// Reliability returns the source's smoothed reliability (0.5 when
// unknown).
func (p *Profiles) Reliability(source string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bySouce[source].Reliability()
}

// Rank returns the sources ordered from most to least reliable; ties
// break lexicographically.
func (p *Profiles) Rank(sources []string) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := append([]string(nil), sources...)
	sort.SliceStable(out, func(a, b int) bool {
		ra := p.bySouce[out[a]].Reliability()
		rb := p.bySouce[out[b]].Reliability()
		if ra != rb {
			return ra > rb
		}
		return out[a] < out[b]
	})
	return out
}

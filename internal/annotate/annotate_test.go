package annotate

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"athena/internal/names"
	"athena/internal/object"
	"athena/internal/trust"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// world is a test GroundTruth: label "flips" toggles each second,
// everything else is constant true.
type world struct{}

func (world) LabelValue(label string, t time.Time) bool {
	if label == "flips" {
		return t.Unix()%2 == 0
	}
	return label != "alwaysFalse"
}

func evidence(labels ...string) *object.Object {
	return &object.Object{
		ID:       object.ID{Name: names.MustParse("/test/cam"), Version: 1},
		Size:     1000,
		Created:  t0,
		Validity: 30 * time.Second,
		Labels:   labels,
		Source:   "src1",
	}
}

func TestMachineAnnotate(t *testing.T) {
	m := NewMachine("m1", world{}, 10*time.Millisecond, 0, nil)
	obj := evidence("viableA", "alwaysFalse")

	v, lat, err := m.Annotate("viableA", obj)
	if err != nil || !v || lat != 10*time.Millisecond {
		t.Errorf("Annotate = %v %v %v", v, lat, err)
	}
	v, _, err = m.Annotate("alwaysFalse", obj)
	if err != nil || v {
		t.Errorf("Annotate alwaysFalse = %v %v", v, err)
	}
	if _, _, err := m.Annotate("other", obj); !errors.Is(err, ErrCannotAnnotate) {
		t.Errorf("err = %v, want ErrCannotAnnotate", err)
	}
}

func TestMachineReadsSampleTimeNotNow(t *testing.T) {
	m := NewMachine("m1", world{}, 0, 0, nil)
	obj := evidence("flips")
	obj.Created = time.Unix(100, 0) // even second: true
	v, _, err := m.Annotate("flips", obj)
	if err != nil || !v {
		t.Errorf("Annotate = %v %v, want snapshot at sample time", v, err)
	}
}

func TestMachineNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMachine("noisy", world{}, 0, 0.3, rng.Float64)
	obj := evidence("viableA")
	flips := 0
	const n = 5000
	for i := 0; i < n; i++ {
		v, _, err := m.Annotate("viableA", obj)
		if err != nil {
			t.Fatal(err)
		}
		if !v {
			flips++
		}
	}
	rate := float64(flips) / n
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("noise rate = %v, want ~0.3", rate)
	}
}

func TestHumanAnnotator(t *testing.T) {
	h := NewHuman("alice", world{}, 2*time.Second, 0, nil)
	obj := evidence("viableA")
	v, lat, err := h.Annotate("viableA", obj)
	if err != nil || !v || lat != 2*time.Second {
		t.Errorf("human Annotate = %v %v %v", v, lat, err)
	}
	if h.ID() != "alice" || !h.Accepts("viableA", obj) {
		t.Error("human identity/acceptance")
	}
}

func TestRegistryFindDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Add(NewMachine("zeta", world{}, 0, 0, nil))
	r.Add(NewMachine("alpha", world{}, 0, 0, nil))
	obj := evidence("viableA")
	a, ok := r.Find("viableA", obj)
	if !ok || a.ID() != "alpha" {
		t.Errorf("Find = %v %v, want alpha (sorted order)", a, ok)
	}
	if _, ok := r.Find("uncovered", obj); ok {
		t.Error("Find matched annotator for uncovered label")
	}
	if got, ok := r.Get("zeta"); !ok || got.ID() != "zeta" {
		t.Error("Get failed")
	}
}

func TestMakeLabelSignsAndInheritsValidity(t *testing.T) {
	auth := trust.NewAuthority()
	signer := auth.Register("m1", []byte("key"))
	m := NewMachine("m1", world{}, 5*time.Second, 0, nil)
	obj := evidence("viableA") // created t0, validity 30s

	now := t0.Add(10 * time.Second)
	rec, lat, err := MakeLabel(m, signer, "viableA", obj, now)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 5*time.Second {
		t.Errorf("latency = %v", lat)
	}
	if err := auth.Verify(rec); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// Annotation completes at t0+15s; evidence expires at t0+30s; the
	// record inherits the 15s remainder.
	if rec.Validity != 15*time.Second {
		t.Errorf("Validity = %v, want 15s", rec.Validity)
	}
	if len(rec.Evidence) != 1 || rec.Evidence[0] != obj.ID.String() {
		t.Errorf("Evidence = %v", rec.Evidence)
	}
}

func TestMakeLabelRejectsWrongEvidence(t *testing.T) {
	auth := trust.NewAuthority()
	signer := auth.Register("m1", []byte("key"))
	m := NewMachine("m1", world{}, 0, 0, nil)
	if _, _, err := MakeLabel(m, signer, "other", evidence("viableA"), t0); !errors.Is(err, ErrCannotAnnotate) {
		t.Errorf("err = %v", err)
	}
}

func TestConfidenceMonotone(t *testing.T) {
	eps := 0.2
	prev := 0.0
	for n := 1; n <= 10; n += 2 { // odd unanimous votes
		c := Confidence(n, 0, eps)
		if c < prev {
			t.Errorf("confidence not monotone at n=%d: %v < %v", n, c, prev)
		}
		prev = c
	}
	if c := Confidence(3, 3, eps); c != 0.5 {
		t.Errorf("tied votes confidence = %v, want 0.5", c)
	}
	if c := Confidence(1, 0, 0); c != 1 {
		t.Errorf("noise-free confidence = %v, want 1", c)
	}
}

func TestVotesNeeded(t *testing.T) {
	if n := VotesNeeded(0.9, 0.0); n != 1 {
		t.Errorf("noise-free VotesNeeded = %d, want 1", n)
	}
	n02 := VotesNeeded(0.99, 0.2)
	if n02 < 2 {
		t.Errorf("VotesNeeded(0.99, 0.2) = %d, want >= 2", n02)
	}
	if Confidence(n02, 0, 0.2) < 0.99 {
		t.Error("VotesNeeded result does not reach target")
	}
	if n := VotesNeeded(0.999, 0.4); n <= n02 {
		t.Errorf("noisier sensor needs fewer votes: %d <= %d", n, n02)
	}
}

func TestCorroborator(t *testing.T) {
	c := &Corroborator{Target: 0.95, Eps: 0.2}
	if _, confident := c.Decided(); confident {
		t.Error("empty corroborator decided")
	}
	c.Add(true)
	if v, confident := c.Decided(); confident {
		t.Errorf("one vote at eps 0.2 reached 0.95: %v", v)
	}
	c.Add(true)
	c.Add(true)
	v, confident := c.Decided()
	if !confident || !v {
		vf, va := c.Votes()
		t.Errorf("Decided = %v %v after votes %d/%d", v, confident, vf, va)
	}
	// Conflicting votes reduce confidence.
	c2 := &Corroborator{Target: 0.95, Eps: 0.2}
	c2.Add(true)
	c2.Add(false)
	if _, confident := c2.Decided(); confident {
		t.Error("tied corroborator decided")
	}
}

func TestProfiles(t *testing.T) {
	p := NewProfiles()
	if r := p.Reliability("new"); r != 0.5 {
		t.Errorf("unknown reliability = %v, want 0.5", r)
	}
	for i := 0; i < 8; i++ {
		p.Feedback("good", true)
		p.Feedback("bad", false)
	}
	p.Feedback("good", false)
	p.Feedback("bad", true)
	if p.Reliability("good") <= p.Reliability("bad") {
		t.Error("feedback did not separate sources")
	}
	ranked := p.Rank([]string{"bad", "new", "good"})
	want := []string{"good", "new", "bad"}
	for i := range want {
		if ranked[i] != want[i] {
			t.Fatalf("Rank = %v, want %v", ranked, want)
		}
	}
}

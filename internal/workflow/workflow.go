// Package workflow implements the Section VIII anticipation machinery:
// missions follow prescribed workflows — flowcharts of decision points —
// so, given the current decision query, the system can anticipate which
// decisions (and therefore which labels and evidence objects) come next,
// and warm them up before they are asked for. "Anticipating what
// information is needed next ... gives the system more time to acquire it
// before it is actually used."
package workflow

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"athena/internal/boolexpr"
)

// Step is one decision point in a workflow.
type Step struct {
	// ID names the step.
	ID string
	// Expr is the decision logic evaluated at this step.
	Expr boolexpr.DNF
	// Deadline is the decision deadline once the step activates.
	Deadline time.Duration
	// OnTrue and OnFalse list successor step ids for each outcome.
	// Empty means the workflow ends on that outcome.
	OnTrue, OnFalse []string
}

// Workflow is a flowchart of decision points. Cycles are allowed
// (standing procedures loop); references must resolve.
type Workflow struct {
	start string
	steps map[string]*Step
}

// Errors returned by Validate and accessors.
var (
	ErrUnknownStep   = errors.New("workflow: unknown step")
	ErrNoStart       = errors.New("workflow: start step missing")
	ErrDuplicateStep = errors.New("workflow: duplicate step")
)

// New creates a workflow that begins at the step named start.
func New(start string) *Workflow {
	return &Workflow{start: start, steps: make(map[string]*Step)}
}

// AddStep registers a decision point.
func (w *Workflow) AddStep(s Step) error {
	if s.ID == "" {
		return errors.New("workflow: step needs an ID")
	}
	if _, dup := w.steps[s.ID]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateStep, s.ID)
	}
	copied := s
	copied.OnTrue = append([]string(nil), s.OnTrue...)
	copied.OnFalse = append([]string(nil), s.OnFalse...)
	w.steps[s.ID] = &copied
	return nil
}

// Start returns the start step id.
func (w *Workflow) Start() string { return w.start }

// Step returns a step by id.
func (w *Workflow) Step(id string) (Step, bool) {
	s, ok := w.steps[id]
	if !ok {
		return Step{}, false
	}
	return *s, true
}

// Len reports the number of steps.
func (w *Workflow) Len() int { return len(w.steps) }

// Validate checks that the start step exists and all successor references
// resolve.
func (w *Workflow) Validate() error {
	if _, ok := w.steps[w.start]; !ok {
		return fmt.Errorf("%w: %q", ErrNoStart, w.start)
	}
	for id, s := range w.steps {
		for _, next := range append(append([]string(nil), s.OnTrue...), s.OnFalse...) {
			if _, ok := w.steps[next]; !ok {
				return fmt.Errorf("%w: %q referenced from %q", ErrUnknownStep, next, id)
			}
		}
	}
	return nil
}

// Successors lists the steps reachable from id under the given outcome.
func (w *Workflow) Successors(id string, outcome bool) []string {
	s, ok := w.steps[id]
	if !ok {
		return nil
	}
	if outcome {
		return append([]string(nil), s.OnTrue...)
	}
	return append([]string(nil), s.OnFalse...)
}

// Anticipated is a label the workflow may need soon.
type Anticipated struct {
	// Label is the predicate that may need evidence.
	Label string
	// Weight scores how soon/likely: 1/2^d summed over reachable steps
	// at distance d >= 1 that reference the label. Higher = warm it up
	// first.
	Weight float64
	// Steps lists the step ids that would consume it, sorted.
	Steps []string
}

// Anticipate returns the labels referenced by decision points reachable
// from the current step within the given horizon (in steps, >= 1),
// weighted by proximity: a label needed by the immediate next decision
// outweighs one needed three decisions out. Labels already referenced by
// the current step are excluded (they are being fetched right now, not
// anticipated). Deterministic: results sort by descending weight, then
// label.
func (w *Workflow) Anticipate(from string, horizon int) ([]Anticipated, error) {
	cur, ok := w.steps[from]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownStep, from)
	}
	current := make(map[string]bool)
	for _, l := range cur.Expr.Labels() {
		current[l] = true
	}

	type hit struct {
		weight float64
		steps  map[string]bool
	}
	hits := make(map[string]*hit)
	// BFS over both outcomes, tracking the shortest distance at which
	// each step is reachable (cycles visit each step once).
	type frontierItem struct {
		id   string
		dist int
	}
	seen := map[string]int{from: 0}
	frontier := []frontierItem{{id: from, dist: 0}}
	for len(frontier) > 0 {
		item := frontier[0]
		frontier = frontier[1:]
		if item.dist >= horizon {
			continue
		}
		step := w.steps[item.id]
		for _, next := range append(append([]string(nil), step.OnTrue...), step.OnFalse...) {
			d := item.dist + 1
			if prev, visited := seen[next]; visited && prev <= d {
				continue
			}
			seen[next] = d
			frontier = append(frontier, frontierItem{id: next, dist: d})
			for _, l := range w.steps[next].Expr.Labels() {
				if current[l] {
					continue
				}
				h := hits[l]
				if h == nil {
					h = &hit{steps: make(map[string]bool)}
					hits[l] = h
				}
				h.weight += 1 / float64(int(1)<<d)
				h.steps[next] = true
			}
		}
	}

	out := make([]Anticipated, 0, len(hits))
	for l, h := range hits {
		steps := make([]string, 0, len(h.steps))
		for id := range h.steps {
			steps = append(steps, id)
		}
		sort.Strings(steps)
		out = append(out, Anticipated{Label: l, Weight: h.weight, Steps: steps})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Weight != out[b].Weight {
			return out[a].Weight > out[b].Weight
		}
		return out[a].Label < out[b].Label
	})
	return out, nil
}

// Path records one traversed decision point and its outcome.
type Path struct {
	// Step is the decision point id.
	Step string
	// Outcome is the decision reached.
	Outcome bool
	// At is when the decision was made.
	At time.Time
}

// Runner walks a workflow, one decision at a time. Branching with
// multiple successors takes the first (doctrine lists alternatives in
// priority order); a custom Chooser can override.
type Runner struct {
	wf      *Workflow
	current string
	done    bool
	history []Path

	// Chooser picks among multiple successors (default: first).
	Chooser func(candidates []string) string
}

// NewRunner starts a runner at the workflow's start step. The workflow
// must validate.
func NewRunner(wf *Workflow) (*Runner, error) {
	if err := wf.Validate(); err != nil {
		return nil, err
	}
	return &Runner{wf: wf, current: wf.Start()}, nil
}

// Current returns the active decision point; ok=false once the workflow
// has ended.
func (r *Runner) Current() (Step, bool) {
	if r.done {
		return Step{}, false
	}
	return r.wf.Step(r.current)
}

// History returns the decisions taken so far.
func (r *Runner) History() []Path {
	return append([]Path(nil), r.history...)
}

// Resolve records the current decision's outcome and advances to the next
// step. It reports whether the workflow continues.
func (r *Runner) Resolve(outcome bool, at time.Time) (continues bool, err error) {
	if r.done {
		return false, errors.New("workflow: already finished")
	}
	r.history = append(r.history, Path{Step: r.current, Outcome: outcome, At: at})
	candidates := r.wf.Successors(r.current, outcome)
	if len(candidates) == 0 {
		r.done = true
		return false, nil
	}
	next := candidates[0]
	if r.Chooser != nil && len(candidates) > 1 {
		next = r.Chooser(candidates)
	}
	if _, ok := r.wf.Step(next); !ok {
		return false, fmt.Errorf("%w: %q", ErrUnknownStep, next)
	}
	r.current = next
	return true, nil
}

// Anticipate is the runner-relative view of Workflow.Anticipate.
func (r *Runner) Anticipate(horizon int) ([]Anticipated, error) {
	if r.done {
		return nil, nil
	}
	return r.wf.Anticipate(r.current, horizon)
}

package workflow

import (
	"errors"
	"testing"
	"time"

	"athena/internal/boolexpr"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func dnf(s string) boolexpr.DNF { return boolexpr.ToDNF(boolexpr.MustParse(s)) }

// rescueWorkflow models a post-disaster doctrine: assess the scene, then
// either evacuate (route decision) or shelter (supply decision); an
// evacuation decision leads to a transport decision.
func rescueWorkflow(t *testing.T) *Workflow {
	t.Helper()
	w := New("assess")
	steps := []Step{
		{ID: "assess", Expr: dnf("sceneSafe & accessOpen"), Deadline: 30 * time.Second,
			OnTrue: []string{"evacuate"}, OnFalse: []string{"shelter"}},
		{ID: "evacuate", Expr: dnf("(routeA & bridgeUp) | routeB"), Deadline: time.Minute,
			OnTrue: []string{"transport"}, OnFalse: []string{"shelter"}},
		{ID: "shelter", Expr: dnf("supplies & medkit"), Deadline: time.Minute},
		{ID: "transport", Expr: dnf("fuelOK & driverReady"), Deadline: time.Minute},
	}
	for _, s := range steps {
		if err := w.AddStep(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestValidate(t *testing.T) {
	w := New("missing")
	if err := w.Validate(); !errors.Is(err, ErrNoStart) {
		t.Errorf("err = %v, want ErrNoStart", err)
	}
	w = New("a")
	if err := w.AddStep(Step{ID: "a", Expr: dnf("x"), OnTrue: []string{"ghost"}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); !errors.Is(err, ErrUnknownStep) {
		t.Errorf("err = %v, want ErrUnknownStep", err)
	}
	if err := w.AddStep(Step{ID: "a", Expr: dnf("y")}); !errors.Is(err, ErrDuplicateStep) {
		t.Errorf("err = %v, want ErrDuplicateStep", err)
	}
	if err := w.AddStep(Step{}); err == nil {
		t.Error("empty step accepted")
	}
}

func TestSuccessors(t *testing.T) {
	w := rescueWorkflow(t)
	if got := w.Successors("assess", true); len(got) != 1 || got[0] != "evacuate" {
		t.Errorf("Successors(true) = %v", got)
	}
	if got := w.Successors("assess", false); len(got) != 1 || got[0] != "shelter" {
		t.Errorf("Successors(false) = %v", got)
	}
	if got := w.Successors("transport", true); got != nil {
		t.Errorf("terminal successors = %v", got)
	}
	if got := w.Successors("ghost", true); got != nil {
		t.Errorf("unknown successors = %v", got)
	}
}

func TestAnticipateWeightsByDistance(t *testing.T) {
	w := rescueWorkflow(t)
	ant, err := w.Anticipate("assess", 2)
	if err != nil {
		t.Fatal(err)
	}
	weights := make(map[string]float64, len(ant))
	for _, a := range ant {
		weights[a.Label] = a.Weight
	}
	// Distance 1: evacuate (routeA, bridgeUp, routeB) and shelter
	// (supplies, medkit) at weight 0.5. Distance 2: transport (fuelOK,
	// driverReady) at 0.25. shelter is also reachable at distance 2 via
	// evacuate-false, but BFS keeps its shortest distance.
	if weights["routeA"] != 0.5 || weights["supplies"] != 0.5 {
		t.Errorf("distance-1 weights = %v", weights)
	}
	if weights["fuelOK"] != 0.25 {
		t.Errorf("distance-2 weight = %v", weights["fuelOK"])
	}
	// Current step's own labels are not anticipated.
	if _, ok := weights["sceneSafe"]; ok {
		t.Error("current step's label anticipated")
	}
	// Sorted by weight descending.
	for i := 1; i < len(ant); i++ {
		if ant[i].Weight > ant[i-1].Weight {
			t.Errorf("not sorted: %v", ant)
		}
	}
}

func TestAnticipateHorizonOne(t *testing.T) {
	w := rescueWorkflow(t)
	ant, err := w.Anticipate("assess", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range ant {
		if a.Label == "fuelOK" || a.Label == "driverReady" {
			t.Errorf("horizon 1 leaked distance-2 label %s", a.Label)
		}
	}
	if _, err := w.Anticipate("ghost", 1); !errors.Is(err, ErrUnknownStep) {
		t.Errorf("err = %v", err)
	}
}

func TestAnticipateHandlesCycles(t *testing.T) {
	w := New("patrol")
	if err := w.AddStep(Step{ID: "patrol", Expr: dnf("areaClear"),
		OnTrue: []string{"patrol"}, OnFalse: []string{"investigate"}}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddStep(Step{ID: "investigate", Expr: dnf("intruder"),
		OnTrue: []string{"patrol"}}); err != nil {
		t.Fatal(err)
	}
	ant, err := w.Anticipate("patrol", 10)
	if err != nil {
		t.Fatal(err)
	}
	// Must terminate and include intruder (distance 1), not loop.
	if len(ant) != 1 || ant[0].Label != "intruder" {
		t.Errorf("Anticipate = %v", ant)
	}
}

func TestRunnerWalk(t *testing.T) {
	w := rescueWorkflow(t)
	r, err := NewRunner(w)
	if err != nil {
		t.Fatal(err)
	}
	step, ok := r.Current()
	if !ok || step.ID != "assess" {
		t.Fatalf("Current = %v %v", step, ok)
	}
	// Scene safe -> evacuate; route viable -> transport; fuel ok -> done.
	for i, outcome := range []bool{true, true, true} {
		cont, err := r.Resolve(outcome, t0.Add(time.Duration(i)*time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		if i < 2 && !cont {
			t.Fatalf("ended early at %d", i)
		}
		if i == 2 && cont {
			t.Fatal("did not end at terminal step")
		}
	}
	if _, ok := r.Current(); ok {
		t.Error("Current after end")
	}
	if _, err := r.Resolve(true, t0); err == nil {
		t.Error("Resolve after end accepted")
	}
	history := r.History()
	want := []string{"assess", "evacuate", "transport"}
	if len(history) != len(want) {
		t.Fatalf("history = %v", history)
	}
	for i := range want {
		if history[i].Step != want[i] || !history[i].Outcome {
			t.Errorf("history[%d] = %+v", i, history[i])
		}
	}
	if ant, err := r.Anticipate(3); err != nil || ant != nil {
		t.Errorf("Anticipate after end = %v, %v", ant, err)
	}
}

func TestRunnerFalseBranch(t *testing.T) {
	w := rescueWorkflow(t)
	r, err := NewRunner(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resolve(false, t0); err != nil {
		t.Fatal(err)
	}
	step, ok := r.Current()
	if !ok || step.ID != "shelter" {
		t.Errorf("Current = %v", step.ID)
	}
}

func TestRunnerChooser(t *testing.T) {
	w := New("a")
	if err := w.AddStep(Step{ID: "a", Expr: dnf("x"), OnTrue: []string{"b", "c"}}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddStep(Step{ID: "b", Expr: dnf("y")}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddStep(Step{ID: "c", Expr: dnf("z")}); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(w)
	if err != nil {
		t.Fatal(err)
	}
	r.Chooser = func(candidates []string) string { return candidates[1] }
	if _, err := r.Resolve(true, t0); err != nil {
		t.Fatal(err)
	}
	if step, _ := r.Current(); step.ID != "c" {
		t.Errorf("Chooser ignored: at %s", step.ID)
	}
}

func TestNewRunnerValidates(t *testing.T) {
	w := New("missing")
	if _, err := NewRunner(w); err == nil {
		t.Error("invalid workflow accepted")
	}
}

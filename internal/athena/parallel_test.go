package athena

import (
	"testing"
	"time"

	"athena/internal/workload"
)

// runEngines runs one scenario on the given engine configuration and
// returns its outcome. Workers 0 = the sequential reference scheduler.
func runEngine(t *testing.T, workers int, churn int, gossip bool) Outcome {
	t.Helper()
	wcfg := workload.DefaultConfig()
	wcfg.GridRows, wcfg.GridCols = 5, 5
	wcfg.Nodes = 14
	wcfg.QueriesPerNode = 2
	wcfg.Seed = 11
	wcfg.FastRatio = 0.4
	s, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := ClusterConfig{
		Scheme:            SchemeLVF,
		Workers:           workers,
		HeartbeatInterval: 2 * time.Second,
		HeartbeatMiss:     3,
		ChurnEvents:       churn,
		ChurnOutage:       30 * time.Second,
	}
	if gossip {
		ccfg.GossipFanout = 2
	}
	cluster, err := NewCluster(s, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cluster.Run()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// requireOutcomesEqual compares the deterministic portions of two
// outcomes: everything except the metrics snapshot's float-valued
// histogram sums (whose accumulation order is engine-defined). With
// latencySlack > 0, MeanLatency may differ by up to that much — used
// when comparing the two engines, whose tie-break rules for
// same-instant events are different but equally valid, which can shift
// individual message timings by microseconds without changing what the
// fleet computes. Engine-to-engine comparisons therefore allow the
// slack; worker-count comparisons (same engine) must be exact.
func requireOutcomesEqual(t *testing.T, label string, a, b Outcome, latencySlack time.Duration) {
	t.Helper()
	if a.QueriesIssued != b.QueriesIssued || a.QueriesResolved != b.QueriesResolved ||
		a.ResolvedTrue != b.ResolvedTrue || a.ResolvedFalse != b.ResolvedFalse {
		t.Errorf("%s: resolution diverged: %d/%d (%d true, %d false) vs %d/%d (%d true, %d false)",
			label, a.QueriesResolved, a.QueriesIssued, a.ResolvedTrue, a.ResolvedFalse,
			b.QueriesResolved, b.QueriesIssued, b.ResolvedTrue, b.ResolvedFalse)
	}
	if a.TotalBytes != b.TotalBytes {
		t.Errorf("%s: TotalBytes diverged: %d vs %d", label, a.TotalBytes, b.TotalBytes)
	}
	if d := a.MeanLatency - b.MeanLatency; d > latencySlack || -d > latencySlack {
		t.Errorf("%s: MeanLatency diverged: %v vs %v", label, a.MeanLatency, b.MeanLatency)
	}
	if a.Node != b.Node {
		t.Errorf("%s: node stats diverged:\n%+v\nvs\n%+v", label, a.Node, b.Node)
	}
	for _, c := range []string{
		"cache.hits", "cache.misses", "retry.timeouts", "retry.retransmits",
		"membership.heartbeats", "membership.evictions",
	} {
		if av, bv := a.Metrics.Counter(c), b.Metrics.Counter(c); av != bv {
			t.Errorf("%s: counter %s diverged: %d vs %d", label, c, av, bv)
		}
	}
	if av, bv := a.Metrics.Gauges["directory.version"], b.Metrics.Gauges["directory.version"]; av != bv {
		t.Errorf("%s: directory.version diverged: %d vs %d", label, av, bv)
	}
}

// TestClusterKernelMatchesSequential pins the parallel kernel to the
// sequential reference engine on a full flood-membership cluster
// scenario: identical resolution, traffic, and node counters, with
// mean latency agreeing to well under a millisecond (same-instant tie
// order is the engines' one permitted difference — see
// requireOutcomesEqual; netsim's TestParallelMatchesSequentialOutcome
// pins loss, outage, and churn injection exactly at the network layer).
func TestClusterKernelMatchesSequential(t *testing.T) {
	seqOut := runEngine(t, 0, 0, false)
	kernOut := runEngine(t, 1, 0, false)
	requireOutcomesEqual(t, "sequential vs kernel-W1", seqOut, kernOut, time.Millisecond)
}

// TestClusterKernelWorkerCountInvariant pins the headline guarantee at
// the cluster layer: worker count cannot change the outcome in any
// measurable way — exact equality, no slack, on the most
// timing-sensitive configuration (gossip membership plus churn).
func TestClusterKernelWorkerCountInvariant(t *testing.T) {
	w1 := runEngine(t, 1, 3, true)
	for _, w := range []int{2, 8} {
		wN := runEngine(t, w, 3, true)
		requireOutcomesEqual(t, "kernel-W1 vs kernel-WN", w1, wN, 0)
	}
}

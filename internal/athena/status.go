package athena

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"time"

	"athena/internal/metrics"
)

// PeerStatus is one directory source's state as seen from this node:
// whether the directory lists it, whether the failure detector considers
// it alive, and when it was last heard from.
type PeerStatus struct {
	// Present reports whether the directory currently lists the source.
	Present bool `json:"present"`
	// Withdrawn marks an explicit leave (vs. a local eviction).
	Withdrawn bool `json:"withdrawn,omitempty"`
	// Alive reports whether the source has been heard from within the
	// failure detector's miss budget. Without membership it mirrors
	// Present (a static directory has no liveness signal).
	Alive bool `json:"alive"`
	// Seq is the source's highest processed advertisement sequence number.
	Seq uint64 `json:"seq"`
	// LastHeard is the last heartbeat or advertisement time (zero if the
	// source was never heard from directly).
	LastHeard time.Time `json:"last_heard,omitempty"`
}

// PeerLiveness reports every known directory source's status, including
// evicted and withdrawn peers.
func (n *Node) PeerLiveness() map[string]PeerStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.now()
	deadline := time.Duration(n.hbMiss) * n.hbInterval
	out := make(map[string]PeerStatus)
	for _, src := range n.dir.AllSources() {
		seq, present, withdrawn := n.dir.Known(src)
		ps := PeerStatus{Present: present, Withdrawn: withdrawn, Seq: seq}
		switch {
		case src == n.id:
			ps.Alive = true
			ps.LastHeard = now
		case !n.memberOn:
			ps.Alive = present
		default:
			if last, ok := n.lastHeard[src]; ok {
				ps.LastHeard = last
				ps.Alive = deadline <= 0 || now.Sub(last) <= deadline
			}
		}
		out[src] = ps
	}
	return out
}

// StatusSnapshot is the JSON document the status endpoint serves: a
// point-in-time view of one node's directory, peers, counters and
// instrument values.
type StatusSnapshot struct {
	Node             string                `json:"node"`
	Time             time.Time             `json:"time"`
	DirectoryVersion uint64                `json:"directory_version"`
	Peers            map[string]PeerStatus `json:"peers"`
	// Stats are the node's lifetime counters (evictions, retries, cache
	// answers, heartbeats, ...).
	Stats Stats `json:"stats"`
	// CacheHitRatio is the content store's hit ratio counting approximate
	// substitutions as hits (1 when the store saw no lookups).
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// Metrics is the node's registry snapshot — counters, gauges, and the
	// fetch-latency / decision-age histograms. Empty when the node runs
	// uninstrumented.
	Metrics metrics.Snapshot `json:"metrics"`
	// Sharding is the directory-sharding view (owned shards, retained
	// entries, routed-lookup counters); absent when sharding is off.
	Sharding *ShardInfo `json:"sharding,omitempty"`
}

// StatusSnapshot captures the node's current status.
func (n *Node) StatusSnapshot() StatusSnapshot {
	peers := n.PeerLiveness()
	shard, shardOn := n.ShardInfo()
	n.mu.Lock()
	s := StatusSnapshot{
		Node:             n.id,
		Time:             n.now(),
		DirectoryVersion: n.dir.Version(),
		Peers:            peers,
		Stats:            n.stats,
	}
	cs := n.store.Stats()
	reg := n.reg
	n.mu.Unlock()

	hits := cs.Hits + cs.ApproxHits
	if total := hits + cs.Misses; total > 0 {
		s.CacheHitRatio = float64(hits) / float64(total)
	} else {
		s.CacheHitRatio = 1
	}
	s.Metrics = reg.Snapshot()
	if shardOn {
		s.Sharding = &shard
	}
	return s
}

// StatusMux returns the node's observability mux:
//
//	/statusz          the StatusSnapshot as JSON
//	/debug/vars       expvar
//	/debug/pprof/...  runtime profiles
//
// cmd/athenad serves it when started with -status.
func (n *Node) StatusMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(n.StatusSnapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

package athena

import (
	"testing"
	"time"

	"athena/internal/boolexpr"
)

// A duplicate Add must refresh the waiter's expiry: a downstream node that
// keeps re-requesting an object stays interested past the original TTL.
func TestInterestDuplicateAddRefreshesExpiry(t *testing.T) {
	it := NewInterestTable(10 * time.Second)
	it.Add("/cam/x", "o1", "q1", "nb1", []string{"l1"}, tBase)
	// Re-request at +8s: the waiter must now live until +18s, not +10s.
	it.Add("/cam/x", "o1", "q1", "nb1", []string{"l1"}, tBase.Add(8*time.Second))
	ws := it.Waiters("/cam/x", tBase.Add(12*time.Second), true)
	if len(ws) != 1 {
		t.Fatalf("waiters at +12s = %d, want 1 (expiry refreshed by duplicate Add)", len(ws))
	}
	if ws[0].origin != "o1" {
		t.Errorf("waiter origin = %q", ws[0].origin)
	}
}

// Pending-request lifetime is independent of waiter lifetime: once the
// upstream request's own lifetime lapses, a new interest must be allowed
// to re-forward, even while later-arriving waiters are still live.
// (Conversely, reap of lapsed waiters alone must not clear a live pending
// mark — that is covered by the retransmission tests.)
func TestInterestPendingLifetimeIndependentOfWaiters(t *testing.T) {
	it := NewInterestTable(10 * time.Second)
	// First interest forwards upstream; the request's lifetime runs to +10s.
	if pending := it.Add("/cam/x", "o1", "q1", "nb1", nil, tBase); pending {
		t.Fatal("first Add reported pending")
	}
	// A second origin joins at +5s; its waiter lives until +15s.
	if pending := it.Add("/cam/x", "o2", "q2", "nb2", nil, tBase.Add(5*time.Second)); !pending {
		t.Fatal("second Add did not see the pending request")
	}
	// At +11s the upstream request has lapsed (no data came back). The
	// live o2 waiter must not keep reporting it pending: a fresh interest
	// must trigger a re-forward instead of stranding every waiter.
	if pending := it.Add("/cam/x", "o3", "q3", "nb3", nil, tBase.Add(11*time.Second)); pending {
		t.Fatal("lapsed upstream request still reported pending; new interest stranded")
	}
	if !it.HasWaiters("/cam/x", tBase.Add(11*time.Second)) {
		t.Error("live waiters lost")
	}
}

// RefreshPending extends the in-flight request's lifetime (the
// retransmission layer does this on every retry) and ClearPending ends it
// early (when retries are exhausted).
func TestInterestRefreshAndClearPending(t *testing.T) {
	it := NewInterestTable(5 * time.Second)
	it.Add("/cam/x", "o1", "q1", "nb1", nil, tBase)
	it.RefreshPending("/cam/x", tBase.Add(20*time.Second))
	if !it.Pending("/cam/x", tBase.Add(15*time.Second)) {
		t.Error("refreshed pending lapsed early")
	}
	// Refresh never shortens.
	it.RefreshPending("/cam/x", tBase.Add(time.Second))
	if !it.Pending("/cam/x", tBase.Add(15*time.Second)) {
		t.Error("RefreshPending shortened the lifetime")
	}
	it.ClearPending("/cam/x")
	if it.Pending("/cam/x", tBase.Add(time.Second)) {
		t.Error("cleared pending still reported")
	}
}

// TestInterestEdgeCases drives the independent waiter/pending lifetimes
// through their corner states: waiters lapsing under a live pending mark,
// the pending mark lapsing over surviving waiters, and a post-reap Add
// restarting the pending lifetime from scratch.
func TestInterestEdgeCases(t *testing.T) {
	const obj = "/cam/x"
	for _, tc := range []struct {
		name string
		run  func(t *testing.T, it *InterestTable)
	}{
		{
			// All waiters lapse while the upstream request is still in
			// flight: the reap must not clear the pending mark, or the
			// next Add would race the in-flight request with a duplicate.
			name: "waiter lapse under live pending",
			run: func(t *testing.T, it *InterestTable) {
				it.Add(obj, "o1", "q1", "nb1", nil, tBase)
				it.RefreshPending(obj, tBase.Add(30*time.Second))
				at := tBase.Add(15 * time.Second) // waiter TTL 10s: lapsed
				if it.HasWaiters(obj, at) {
					t.Fatal("lapsed waiter survived reap")
				}
				if !it.Pending(obj, at) {
					t.Fatal("reap of lapsed waiters cleared the live pending mark")
				}
				if pending := it.Add(obj, "o2", "q2", "nb2", nil, at); !pending {
					t.Error("Add after waiter lapse re-forwarded while the request was in flight")
				}
			},
		},
		{
			// The upstream request lapses first (extended by nothing),
			// leaving a younger waiter live: the waiter must survive, and
			// the next Add must report not-pending so the caller
			// re-forwards on the survivor's behalf.
			name: "pending expiry with surviving waiters",
			run: func(t *testing.T, it *InterestTable) {
				it.Add(obj, "o1", "q1", "nb1", nil, tBase)
				it.Add(obj, "o2", "q2", "nb2", nil, tBase.Add(8*time.Second))
				at := tBase.Add(11 * time.Second) // pending ran to +10s
				if it.Pending(obj, at) {
					t.Fatal("lapsed pending mark still reported")
				}
				if !it.HasWaiters(obj, at) {
					t.Fatal("younger waiter lost with the pending mark")
				}
				if pending := it.Add(obj, "o3", "q3", "nb3", nil, at); pending {
					t.Error("Add after pending expiry did not ask for a re-forward")
				}
			},
		},
		{
			// Everything lapses, then interest returns: the new Add must
			// start a fresh pending lifetime of the full TTL, not inherit
			// a stale expiry from the reaped generation.
			name: "Add after reap restarts pending lifetime",
			run: func(t *testing.T, it *InterestTable) {
				it.Add(obj, "o1", "q1", "nb1", nil, tBase)
				at := tBase.Add(20 * time.Second) // waiter and pending both gone
				if pending := it.Add(obj, "o2", "q2", "nb2", nil, at); pending {
					t.Fatal("Add after full lapse saw a stale pending mark")
				}
				if !it.Pending(obj, at.Add(9*time.Second)) {
					t.Error("restarted pending lifetime shorter than the TTL")
				}
				if it.Pending(obj, at.Add(11*time.Second)) {
					t.Error("restarted pending lifetime longer than the TTL")
				}
			},
		},
		{
			// A background push serves the waiters but must not satisfy
			// the pending mark: the foreground request it overlaps is
			// still in flight, and the next Add must not duplicate it.
			name: "background data leaves pending in flight",
			run: func(t *testing.T, it *InterestTable) {
				it.Add(obj, "o1", "q1", "nb1", nil, tBase)
				at := tBase.Add(time.Second)
				if ws := it.Waiters(obj, at, false); len(ws) != 1 {
					t.Fatalf("background Waiters = %d entries, want 1", len(ws))
				}
				if !it.Pending(obj, at) {
					t.Fatal("background data cleared the pending mark")
				}
				if pending := it.Add(obj, "o2", "q2", "nb2", nil, at); !pending {
					t.Error("Add after background push re-forwarded a duplicate request")
				}
				// Foreground data is the request's answer: mark cleared.
				it.Waiters(obj, at, true)
				if it.Pending(obj, at) {
					t.Error("foreground data left the pending mark standing")
				}
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tc.run(t, NewInterestTable(10*time.Second))
		})
	}
}

// TestBackgroundPushKeepsForegroundPending pins the node-level half of
// the background-push interaction: a forwarder with a foreground request
// in flight receives a prefetch push for the same object. The push must
// serve the waiting origin, but the forwarder's pending mark must stand —
// deliverObject marks pushes Background precisely so handleData can tell
// them from the answer to its own upstream request.
func TestBackgroundPushKeepsForegroundPending(t *testing.T) {
	world := staticWorld{"lc1": true, "lc2": true}
	r := buildRig(t, SchemeLVF, world, nil)
	if _, err := r.nodes["nodeA"].QueryInit(boolexpr.ToDNF(boolexpr.MustParse("lc1 & lc2")), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	// 200 KB over a 125 KB/s link: the request reaches nodeC quickly, the
	// answer is still on the wire at +100ms, so nodeB's pending is live.
	r.run(t, 100*time.Millisecond)
	nodeB := r.nodes["nodeB"]
	nodeB.mu.Lock()
	pendingBefore := nodeB.interest.Pending("/cam/c", nodeB.now())
	nodeB.mu.Unlock()
	if !pendingBefore {
		t.Fatal("rig precondition: nodeB has no pending request for /cam/c at +100ms")
	}

	// A background push of the same object arrives from the upstream side.
	push := &ObjectData{
		Object: "/cam/c", Version: 99, Size: 200_000,
		Created: tBase, Validity: time.Minute,
		Labels: []string{"lc1", "lc2"}, SourceNode: "nodeC",
		Origin: "nodeA", Background: true,
	}
	nodeB.handleMessage("nodeC", push.WireSize(), push)

	nodeB.mu.Lock()
	pendingAfter := nodeB.interest.Pending("/cam/c", nodeB.now())
	waitersAfter := nodeB.interest.HasWaiters("/cam/c", nodeB.now())
	nodeB.mu.Unlock()
	if !pendingAfter {
		t.Error("background push cleared nodeB's foreground pending mark")
	}
	if waitersAfter {
		t.Error("background push left the served waiters behind")
	}
	// The foreground answer still lands without incident.
	r.run(t, time.Minute)
	results := r.nodes["nodeA"].Results()
	if len(results) != 1 || results[0].Status.String() != "resolved-true" {
		t.Fatalf("query did not resolve cleanly after the push: %+v", results)
	}
}

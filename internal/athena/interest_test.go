package athena

import (
	"testing"
	"time"
)

// A duplicate Add must refresh the waiter's expiry: a downstream node that
// keeps re-requesting an object stays interested past the original TTL.
func TestInterestDuplicateAddRefreshesExpiry(t *testing.T) {
	it := NewInterestTable(10 * time.Second)
	it.Add("/cam/x", "o1", "q1", "nb1", []string{"l1"}, tBase)
	// Re-request at +8s: the waiter must now live until +18s, not +10s.
	it.Add("/cam/x", "o1", "q1", "nb1", []string{"l1"}, tBase.Add(8*time.Second))
	ws := it.Waiters("/cam/x", tBase.Add(12*time.Second))
	if len(ws) != 1 {
		t.Fatalf("waiters at +12s = %d, want 1 (expiry refreshed by duplicate Add)", len(ws))
	}
	if ws[0].origin != "o1" {
		t.Errorf("waiter origin = %q", ws[0].origin)
	}
}

// Pending-request lifetime is independent of waiter lifetime: once the
// upstream request's own lifetime lapses, a new interest must be allowed
// to re-forward, even while later-arriving waiters are still live.
// (Conversely, reap of lapsed waiters alone must not clear a live pending
// mark — that is covered by the retransmission tests.)
func TestInterestPendingLifetimeIndependentOfWaiters(t *testing.T) {
	it := NewInterestTable(10 * time.Second)
	// First interest forwards upstream; the request's lifetime runs to +10s.
	if pending := it.Add("/cam/x", "o1", "q1", "nb1", nil, tBase); pending {
		t.Fatal("first Add reported pending")
	}
	// A second origin joins at +5s; its waiter lives until +15s.
	if pending := it.Add("/cam/x", "o2", "q2", "nb2", nil, tBase.Add(5*time.Second)); !pending {
		t.Fatal("second Add did not see the pending request")
	}
	// At +11s the upstream request has lapsed (no data came back). The
	// live o2 waiter must not keep reporting it pending: a fresh interest
	// must trigger a re-forward instead of stranding every waiter.
	if pending := it.Add("/cam/x", "o3", "q3", "nb3", nil, tBase.Add(11*time.Second)); pending {
		t.Fatal("lapsed upstream request still reported pending; new interest stranded")
	}
	if !it.HasWaiters("/cam/x", tBase.Add(11*time.Second)) {
		t.Error("live waiters lost")
	}
}

// RefreshPending extends the in-flight request's lifetime (the
// retransmission layer does this on every retry) and ClearPending ends it
// early (when retries are exhausted).
func TestInterestRefreshAndClearPending(t *testing.T) {
	it := NewInterestTable(5 * time.Second)
	it.Add("/cam/x", "o1", "q1", "nb1", nil, tBase)
	it.RefreshPending("/cam/x", tBase.Add(20*time.Second))
	if !it.Pending("/cam/x", tBase.Add(15*time.Second)) {
		t.Error("refreshed pending lapsed early")
	}
	// Refresh never shortens.
	it.RefreshPending("/cam/x", tBase.Add(time.Second))
	if !it.Pending("/cam/x", tBase.Add(15*time.Second)) {
		t.Error("RefreshPending shortened the lifetime")
	}
	it.ClearPending("/cam/x")
	if it.Pending("/cam/x", tBase.Add(time.Second)) {
		t.Error("cleared pending still reported")
	}
}

package athena

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"athena/internal/annotate"
	"athena/internal/boolexpr"
	"athena/internal/cache"
	"athena/internal/core"
	"athena/internal/gossip"
	"athena/internal/metrics"
	"athena/internal/names"
	"athena/internal/object"
	"athena/internal/transport"
	"athena/internal/trust"
)

// Router supplies next hops toward non-neighbor nodes. The simulator's
// network implements it; a deployment would use static tables or a routing
// protocol.
type Router interface {
	// NextHop returns the neighbor of from on a path toward to.
	NextHop(from, to string) (string, error)
}

// Timers schedules callbacks; the simulator's scheduler and wall-clock
// timers both satisfy it.
type Timers interface {
	// After runs fn after d (d <= 0 means as soon as possible).
	After(d time.Duration, fn func())
	// AfterArg runs fn(arg) after d. Hot paths pass a stored method value
	// and an already-allocated argument so no closure is built per timer;
	// the simulator's scheduler additionally recycles the event, since no
	// handle escapes.
	AfterArg(d time.Duration, fn func(arg any), arg any)
}

// Stats counts a node's activity.
type Stats struct {
	// QueriesIssued counts locally originated queries.
	QueriesIssued int
	// ResolvedTrue / ResolvedFalse / Expired count terminal statuses of
	// local queries.
	ResolvedTrue, ResolvedFalse, Expired int
	// RequestsSent counts object requests dispatched (first sends and
	// refetches).
	RequestsSent int
	// Refetches counts requests re-issued after evidence expired.
	Refetches int
	// Retransmits counts upstream requests re-forwarded by the interest
	// layer after a retry window lapsed without data.
	Retransmits int
	// RequestTimeouts counts origin-side request timeouts (the backoff
	// timer fired with the request still unanswered).
	RequestTimeouts int
	// DupSuppressed counts duplicate requests dropped because the object
	// was plausibly still in flight to the same neighbor.
	DupSuppressed int
	// CacheAnswers counts requests served from the local content store.
	CacheAnswers int
	// ApproxAnswers counts requests served by approximate name
	// substitution (a subset of CacheAnswers).
	ApproxAnswers int
	// LabelAnswers counts requests answered with cached label records.
	LabelAnswers int
	// PrefetchPushes counts background object pushes.
	PrefetchPushes int
	// Annotations counts labels computed locally.
	Annotations int
	// RoutingDrops counts messages dropped for lack of a route.
	RoutingDrops int
	// HeartbeatsSent counts membership heartbeats originated here.
	HeartbeatsSent int
	// Evictions counts sources this node's failure detector evicted.
	Evictions int
	// SyncExchanges counts anti-entropy exchanges this node initiated.
	SyncExchanges int
	// PingsSent counts SWIM probes (direct, indirect requests, and relays)
	// originated here.
	PingsSent int
	// Suspicions counts probe targets that entered the suspect state here.
	Suspicions int
	// Refutations counts false-positive evictions of this node it refuted
	// by re-advertising with a bumped sequence number.
	Refutations int
	// ControlMsgs / ControlBytes count membership control-plane traffic
	// (heartbeats, adverts, leaves, syncs, pings/acks) sent or forwarded by
	// this node, in both flood and gossip mode.
	ControlMsgs  int
	ControlBytes int64
	// PlanCacheHits counts QueryInits served by the memoized query plan.
	PlanCacheHits int
	// ShardLookups counts routed label lookups this node issued (sharded
	// directory); ShardLookupHits counts query-path resolutions served from
	// the local lookup cache instead.
	ShardLookups    int
	ShardLookupHits int
	// ShardServed counts routed lookups this node answered as a shard
	// owner.
	ShardServed int
	// ShardReroutes counts lookup re-sends to an alternate replica (retry
	// timeouts and owner evictions).
	ShardReroutes int
	// DataFrames counts data-plane frames put on the wire by this node —
	// per-hop ObjectRequest/ObjectData sends plus batch frames — the
	// denominator the batching layer can actually shrink (control-plane
	// floods are untouched by it).
	DataFrames int
	// BatchesSent counts coalesced frames shipped by the data-plane
	// batching layer; BatchedMsgs counts the members they carried.
	BatchesSent int
	BatchedMsgs int
	// BatchBytesSaved is the wire bytes batching saved versus shipping
	// every member in its own frame.
	BatchBytesSaved int64
}

// QueryResult records the outcome of one locally originated query.
type QueryResult struct {
	// QueryID identifies the query.
	QueryID string
	// Status is the terminal status.
	Status core.Status
	// Issued and Finished bound the query's lifetime.
	Issued, Finished time.Time
	// Deadline is the absolute deadline it had.
	Deadline time.Time
}

// Config assembles a node.
type Config struct {
	// ID is the node's network identifier.
	ID string
	// Transport delivers messages.
	Transport transport.Transport
	// Router supplies next hops.
	Router Router
	// Timers schedules deadline and expiry events.
	Timers Timers
	// Scheme is the retrieval strategy.
	Scheme Scheme
	// Directory is the semantic lookup service.
	Directory *Directory
	// Meta is per-label planning metadata.
	Meta boolexpr.MetaTable
	// World is the ground truth used for sampling and annotation.
	World annotate.GroundTruth
	// Authority verifies label signatures.
	Authority *trust.Authority
	// Signer signs labels this node computes.
	Signer trust.Signer
	// Policy decides whose labels this node accepts.
	Policy *trust.Policy
	// Descriptor advertises this node's sensor stream (nil if none).
	Descriptor *object.Descriptor
	// CacheBytes bounds the content store (negative = unbounded).
	CacheBytes int64
	// AnnotateLatency is the local annotation delay.
	AnnotateLatency time.Duration
	// AnnounceTTL bounds query-expression flooding (default 4).
	AnnounceTTL int
	// DisablePrefetch turns off background prefetching (ablation A2).
	DisablePrefetch bool
	// PrefetchDelay paces background pushes (default 250ms).
	PrefetchDelay time.Duration
	// InterestTTL bounds interest-table entries (default 30s).
	InterestTTL time.Duration
	// BatchWindow caps concurrent in-flight object requests per query for
	// the batch schemes cmp/slt/lcf (default 8). The decision-driven
	// schemes are sequential (window 1) by design.
	BatchWindow int
	// RequestTimeout clears a stuck in-flight request so the query can
	// retry (default 30s). With retries enabled it also caps the
	// per-attempt backoff delay.
	RequestTimeout time.Duration
	// RetryInterval is the base delay before a lapsed request is retried
	// — origin-side re-requests and interest-layer retransmissions both
	// back off exponentially from it (default 6s).
	RetryInterval time.Duration
	// RetryBackoff is the exponential backoff multiplier applied to
	// RetryInterval on successive attempts (default 2).
	RetryBackoff float64
	// MaxRetries bounds retransmissions per forwarded request and
	// origin-side timeouts before an alternate source is tried
	// (default 3).
	MaxRetries int
	// RetryBandwidth is the assumed worst-case end-to-end throughput
	// used to stretch retry delays for large objects: every attempt
	// waits an extra Size/RetryBandwidth on top of the backoff, so a
	// slow-but-healthy multi-hop transfer is not mistaken for a loss
	// (default 50 kB/s — a fraction of the paper's 1 Mbps links, to
	// absorb serialization over several hops plus queueing). The same
	// window arms the responder-side duplicate suppression.
	RetryBandwidth float64
	// DisableRetries turns the recovery layer off (ablation A6 baseline):
	// requests get only the single fixed RequestTimeout safety net and
	// forwarded interests are never retransmitted.
	DisableRetries bool
	// SequentialWindow caps concurrent transfers for the decision-driven
	// schemes lvf/lvfl (default 4): near-sequential, with modest
	// pipelining inside the active course of action.
	SequentialWindow int
	// CoalesceWindow enables data-plane batching: ObjectRequests and
	// ObjectData headed for the same neighbor wait up to this long to be
	// merged into RequestBatch/DataBatch frames (see coalesce.go). Zero
	// (the default) keeps the one-frame-per-message behavior, byte for
	// byte. Queries close to their deadline flush immediately and
	// critical-namespace traffic bypasses the queue.
	CoalesceWindow time.Duration
	// CoalesceBytes is the per-neighbor byte budget that forces a flush
	// before the window expires (default 256 KiB when batching is on).
	CoalesceBytes int64
	// ApproxMinSimilarity enables approximate object substitution
	// (Section V-A): a cached object whose name similarity to the
	// requested one is at least this threshold may answer the request,
	// provided it covers at least one requested label. Zero disables.
	ApproxMinSimilarity float64
	// CriticalPrefix marks a critical part of the name space
	// (Section V-C): objects under this prefix get transmission priority
	// on priority-capable transports and are exempt from approximate
	// substitution. Zero value disables.
	CriticalPrefix names.Name
	// SensorNoise is the probability a single annotation misreads its
	// evidence (Section IV-B). When positive, labels are corroborated
	// across multiple evidence objects until ConfidenceTarget is reached.
	SensorNoise float64
	// ConfidenceTarget is the required posterior confidence for noisy
	// labels (default 0.95 when SensorNoise > 0).
	ConfidenceTarget float64
	// HeartbeatInterval enables the live-membership layer: the node floods
	// a heartbeat every interval, evicts sources that miss HeartbeatMiss
	// beats, and reconciles directory replicas by anti-entropy. Zero (the
	// default) keeps the directory static — the pre-membership behavior.
	HeartbeatInterval time.Duration
	// HeartbeatMiss is the failure detector's tolerance in missed
	// heartbeat intervals before a silent source is evicted (default 3).
	HeartbeatMiss int
	// GossipFanout switches the membership layer from flooded heartbeats
	// to SWIM-style peer-sampled gossip: each heartbeat interval the node
	// pings this many sampled members directly instead of flooding,
	// suspicion is confirmed through GossipIndirect intermediaries before
	// eviction, and membership updates ride as bounded piggyback buffers
	// on ping/ack instead of being flooded. Zero (the default) keeps the
	// flood protocol. Requires HeartbeatInterval > 0.
	GossipFanout int
	// GossipIndirect is the number of intermediaries asked to ping-req a
	// silent probe target on the prober's behalf (default 2).
	GossipIndirect int
	// SuspectTimeout is how long an unacknowledged probe target stays
	// suspect before eviction (default 3×HeartbeatMiss heartbeat
	// intervals). Unlike the flood detector — whose redundant delivery
	// paths refresh liveness from any direction — a sampled probe rides
	// one route, so the window must also cover worst-case head-of-line
	// blocking behind bulk object transfers on that route. Suspicion is
	// cleared by any contact, suspects are re-probed every period, and
	// the window self-dilates under local congestion (Lifeguard-style
	// local health multiplier), so shorter values are safe on idle or
	// fast networks.
	SuspectTimeout time.Duration
	// GossipRetransmit is λ in the per-update piggyback retransmit budget
	// λ·⌈log₂(n+1)⌉ (default 3).
	GossipRetransmit int
	// GossipMaxPiggyback caps membership updates per ping/ack (default 8).
	GossipMaxPiggyback int
	// GossipSeed seeds the deterministic peer-sampling RNG; the node's own
	// id is mixed in, so one scenario seed serves a whole fleet.
	GossipSeed int64
	// Shards enables the sharded directory: advertisements are partitioned
	// by name prefix into this many shards, each replicated on
	// ShardReplicas nodes chosen by rendezvous hashing over the live
	// membership view. Non-owned payloads are thinned out of the local
	// replica and label lookups outside the owned shards are routed to a
	// shard owner. Zero (the default) keeps the full-replica directory —
	// the pre-sharding behavior, byte for byte. Requires gossip membership
	// (GossipFanout > 0).
	Shards int
	// ShardReplicas is the per-shard replication factor (default 3).
	ShardReplicas int
	// ShardCacheSize bounds the LRU of remote lookup results a sharded
	// node keeps (default 256 labels).
	ShardCacheSize int
	// Metrics, when non-nil, mirrors the node's activity into the registry:
	// cache and interest-table counters, retry/failover counts, membership
	// events, directory version, and fetch-latency / decision-age
	// histograms. Nil keeps instrumentation disabled (every instrument is a
	// nil no-op; see internal/metrics).
	Metrics *metrics.Registry
}

type localQuery struct {
	engine      *core.Engine
	issued      time.Time
	selected    []string             // selected source ids (slt/lcf/lvf/lvfl)
	outstanding map[string]time.Time // object name -> request send time
	requested   map[string]bool      // object names requested at least once
	attempts    map[string]int       // object name -> origin-side timeout count
	suspect     map[string]bool      // sources that exhausted their retries
	batch       bool
	nextExpiry  time.Time
	nextRetry   time.Time
	recorded    bool
	corr        map[string]*corrState // label -> corroboration (noisy mode)
}

// corrState accumulates noisy annotation votes for one label of one query
// (Section IV-B).
type corrState struct {
	c *annotate.Corroborator
	// votedVersion records which exact object versions already voted.
	votedVersion map[string]bool
	// nameExpiry maps a voted object name to the expiry of the version
	// that voted: a new vote from that source is only possible after it.
	nameExpiry map[string]time.Time
}

type queuedRequest struct {
	req *ObjectRequest
	// urgency is the issuing query's hierarchical priority key (ref [1]):
	// the minimum of its evidence validity expirations and its decision
	// deadline, precomputed as UnixNano at enqueue so the drain sort
	// compares plain integers. Smaller = more urgent; the fetch queue
	// drains in this order (Section VI-A's "optimal object retrieval order
	// according to the current set of queries").
	urgency int64
}

type prefetchTask struct {
	origin  string
	queryID string
}

// nodeMetrics holds the node's pre-resolved instruments so per-event code
// never touches a registry map or lock. Every field is nil (a no-op) when
// the node was built without a registry.
type nodeMetrics struct {
	retryTimeouts    *metrics.Counter
	failovers        *metrics.Counter
	retransmits      *metrics.Counter
	heartbeats       *metrics.Counter
	evictions        *metrics.Counter
	syncRounds       *metrics.Counter
	pings            *metrics.Counter
	suspicions       *metrics.Counter
	refutes          *metrics.Counter
	ctlMsgs          *metrics.Counter
	ctlBytes         *metrics.Counter
	fetchLatency     *metrics.Histogram
	resolveLatency   *metrics.Histogram
	decisionAge      *metrics.Histogram
	convergence      *metrics.Histogram
	batchSize        *metrics.Histogram
	batchFramesSaved *metrics.Counter
	batchBytesSaved  *metrics.Counter
}

// newNodeMetrics resolves the node's instruments once. A nil registry
// yields all-nil instruments.
func newNodeMetrics(r *metrics.Registry) nodeMetrics {
	return nodeMetrics{
		retryTimeouts:    r.Counter("retry.timeouts"),
		failovers:        r.Counter("retry.failovers"),
		retransmits:      r.Counter("retry.retransmits"),
		heartbeats:       r.Counter("membership.heartbeats_sent"),
		evictions:        r.Counter("membership.evictions"),
		syncRounds:       r.Counter("membership.sync_rounds"),
		pings:            r.Counter("membership.pings_sent"),
		suspicions:       r.Counter("membership.suspicions"),
		refutes:          r.Counter("membership.refutations"),
		ctlMsgs:          r.Counter("membership.ctl_msgs"),
		ctlBytes:         r.Counter("membership.ctl_bytes"),
		fetchLatency:     r.Histogram("query.fetch_latency_s", metrics.LatencyBuckets()),
		resolveLatency:   r.Histogram("query.resolve_latency_s", metrics.LatencyBuckets()),
		decisionAge:      r.Histogram("query.decision_age_s", metrics.LatencyBuckets()),
		convergence:      r.Histogram("membership.convergence_s", metrics.LatencyBuckets()),
		batchSize:        r.Histogram("batch.size", metrics.LinearBuckets(1, 1, 16)),
		batchFramesSaved: r.Counter("batch.frames_saved"),
		batchBytesSaved:  r.Counter("batch.bytes_saved"),
	}
}

// cacheMetrics resolves the counter set mirroring one cache's Stats under
// the given name prefix ("cache" for the content store, "labels" for the
// label cache).
func cacheMetrics(r *metrics.Registry, prefix string) cache.Metrics {
	return cache.Metrics{
		Hits:       r.Counter(prefix + ".hits"),
		ApproxHits: r.Counter(prefix + ".approx_hits"),
		Misses:     r.Counter(prefix + ".misses"),
		StaleDrops: r.Counter(prefix + ".stale_drops"),
		Evictions:  r.Counter(prefix + ".evictions"),
	}
}

// Node is one Athena node.
type Node struct {
	mu sync.Mutex

	id        string
	tr        transport.Transport
	router    Router
	timers    Timers
	scheme    Scheme
	dir       *Directory
	meta      boolexpr.MetaTable
	world     annotate.GroundTruth
	annotator annotate.Annotator
	authority *trust.Authority
	signer    trust.Signer
	policy    *trust.Policy
	desc      *object.Descriptor

	store    *cache.Store
	labels   *cache.LabelCache
	interest *InterestTable

	queries        map[string]*localQuery
	seenAnnounce   map[string]bool
	pushed         map[string]bool      // queryID -> already prefetch-pushed
	pushedVersions map[string]uint64    // origin|object -> last pushed version
	sentRecently   map[string]time.Time // object|neighbor -> in-flight window end

	fetchQ    []queuedRequest
	prefetchQ []prefetchTask
	draining  bool

	lastSample *object.Object
	version    uint64
	querySeq   int

	announceTTL      int
	disablePrefetch  bool
	prefetchDelay    time.Duration
	annotateLatency  time.Duration
	batchWindow      int
	sequentialWindow int
	requestTimeout   time.Duration
	retryInterval    time.Duration
	retryBackoff     float64
	maxRetries       int
	retryBandwidth   float64
	disableRetries   bool
	approxMinSim     float64
	criticalPrefix   names.Name
	sensorNoise      float64
	confTarget       float64

	// Data-plane batching (inert unless coalesceWindow > 0; coalesce.go).
	coalesceWindow time.Duration
	coalesceBytes  int64
	sendQ          map[string]*sendQueue
	burstQs        []*sendQueue

	// Live membership (zero-valued and inert unless memberOn).
	memberOn   bool
	hbInterval time.Duration
	hbMiss     int
	adSeq      uint64               // this node's advertisement sequence number
	beatSeq    uint64               // this node's heartbeat counter
	lastHeard  map[string]time.Time // source -> last heartbeat (or advert) time
	seenBeat   map[string]uint64    // node -> highest heartbeat re-flooded
	lastSync   map[string]time.Time // peer -> last anti-entropy request time

	// SWIM gossip mode (zero-valued and inert unless gossipOn).
	gossipOn    bool
	fanout      int           // peers probed per protocol period
	indirectK   int           // ping-req intermediaries per suspicion
	suspectTO   time.Duration // probe → eviction window
	lambda      int           // piggyback retransmit multiplier
	piggyMax    int           // piggyback updates per ping/ack
	sampler     *gossip.Sampler
	piggy       *gossip.Queue
	probeSeq    uint64                 // this node's probe counter
	probes      map[uint64]*probeState // outstanding probes by seq
	probeFree   *probeState            // recycled probe states (see freeProbe)
	pickExcl    map[string]bool        // scratch exclude set for sampler.Pick
	peerScratch []string               // refreshSampler's peer-list scratch
	suspects    map[string]time.Time   // suspect -> first-suspected instant
	samplerVer  uint64                 // directory version at last ring refresh
	left        bool                   // this node issued a graceful Leave
	lhm         int                    // Lifeguard-style local health multiplier

	// Sharded directory (zero-valued and inert unless shardOn; see
	// sharding.go and shardrouter.go).
	shardOn     bool
	shardRouter *ShardRouter
	shardVer    uint64 // directory version at last shard refresh

	// Method values bound once in New: the membership loops re-arm
	// themselves every period through Timers.AfterArg, and binding these
	// per call would allocate a closure per tick per node.
	gossipTickFn    func(any)
	heartbeatTickFn func(any)
	probeTimeoutFn  func(any)

	// Query-plan memoization: planFor's output keyed by expression text,
	// valid while the directory version is unchanged (directory changes are
	// the only event that re-prices planning metadata at runtime).
	planCache map[string]cachedPlan

	reg     *metrics.Registry
	m       nodeMetrics
	stats   Stats
	results []QueryResult
	onDone  func(QueryResult)
}

// New assembles a node and installs its transport handler.
func New(cfg Config) (*Node, error) {
	if cfg.ID == "" || cfg.Transport == nil || cfg.Router == nil || cfg.Timers == nil {
		return nil, errors.New("athena: ID, Transport, Router and Timers are required")
	}
	if cfg.Directory == nil {
		return nil, errors.New("athena: Directory is required")
	}
	if cfg.Authority == nil || cfg.Policy == nil {
		return nil, errors.New("athena: Authority and Policy are required")
	}
	if cfg.AnnounceTTL <= 0 {
		cfg.AnnounceTTL = 4
	}
	if cfg.PrefetchDelay <= 0 {
		cfg.PrefetchDelay = 250 * time.Millisecond
	}
	if cfg.InterestTTL <= 0 {
		cfg.InterestTTL = 30 * time.Second
	}
	if cfg.BatchWindow <= 0 {
		cfg.BatchWindow = 8
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.SequentialWindow <= 0 {
		cfg.SequentialWindow = 4
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 6 * time.Second
	}
	if cfg.RetryBackoff <= 1 {
		cfg.RetryBackoff = 2
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	if cfg.RetryBandwidth <= 0 {
		cfg.RetryBandwidth = 50_000
	}
	if cfg.SensorNoise > 0 && cfg.ConfidenceTarget <= 0 {
		cfg.ConfidenceTarget = 0.95
	}
	if cfg.CoalesceWindow > 0 && cfg.CoalesceBytes <= 0 {
		cfg.CoalesceBytes = 256 << 10
	}
	if cfg.HeartbeatInterval > 0 && cfg.HeartbeatMiss <= 0 {
		cfg.HeartbeatMiss = 3
	}
	if cfg.GossipFanout > 0 {
		if cfg.HeartbeatInterval <= 0 {
			return nil, errors.New("athena: GossipFanout requires HeartbeatInterval")
		}
		if cfg.GossipIndirect <= 0 {
			cfg.GossipIndirect = 2
		}
		if cfg.SuspectTimeout <= 0 {
			cfg.SuspectTimeout = 3 * time.Duration(cfg.HeartbeatMiss) * cfg.HeartbeatInterval
		}
		if cfg.GossipRetransmit <= 0 {
			cfg.GossipRetransmit = 3
		}
		if cfg.GossipMaxPiggyback <= 0 {
			cfg.GossipMaxPiggyback = 8
		}
	}
	if cfg.Shards > 0 {
		if cfg.GossipFanout <= 0 {
			return nil, errors.New("athena: Shards requires gossip membership (set GossipFanout)")
		}
		if cfg.ShardReplicas <= 0 {
			cfg.ShardReplicas = 3
		}
		if cfg.ShardCacheSize <= 0 {
			cfg.ShardCacheSize = 256
		}
	}
	n := &Node{
		id:               cfg.ID,
		tr:               cfg.Transport,
		router:           cfg.Router,
		timers:           cfg.Timers,
		scheme:           cfg.Scheme,
		dir:              cfg.Directory,
		meta:             cfg.Meta,
		world:            cfg.World,
		authority:        cfg.Authority,
		signer:           cfg.Signer,
		policy:           cfg.Policy,
		desc:             cfg.Descriptor,
		store:            cache.NewStore(cfg.CacheBytes),
		labels:           cache.NewLabelCache(),
		interest:         NewInterestTable(cfg.InterestTTL),
		queries:          make(map[string]*localQuery),
		seenAnnounce:     make(map[string]bool),
		pushed:           make(map[string]bool),
		pushedVersions:   make(map[string]uint64),
		sentRecently:     make(map[string]time.Time),
		announceTTL:      cfg.AnnounceTTL,
		disablePrefetch:  cfg.DisablePrefetch,
		prefetchDelay:    cfg.PrefetchDelay,
		annotateLatency:  cfg.AnnotateLatency,
		batchWindow:      cfg.BatchWindow,
		sequentialWindow: cfg.SequentialWindow,
		requestTimeout:   cfg.RequestTimeout,
		retryInterval:    cfg.RetryInterval,
		retryBackoff:     cfg.RetryBackoff,
		maxRetries:       cfg.MaxRetries,
		retryBandwidth:   cfg.RetryBandwidth,
		disableRetries:   cfg.DisableRetries,
		approxMinSim:     cfg.ApproxMinSimilarity,
		criticalPrefix:   cfg.CriticalPrefix,
		sensorNoise:      cfg.SensorNoise,
		confTarget:       cfg.ConfidenceTarget,
		coalesceWindow:   cfg.CoalesceWindow,
		coalesceBytes:    cfg.CoalesceBytes,
	}
	if cfg.CoalesceWindow > 0 {
		n.sendQ = make(map[string]*sendQueue)
	}
	n.reg = cfg.Metrics
	n.m = newNodeMetrics(cfg.Metrics)
	if cfg.Metrics != nil {
		n.store.Instrument(cacheMetrics(cfg.Metrics, "cache"))
		n.labels.Instrument(cacheMetrics(cfg.Metrics, "labels"))
		n.interest.Instrument(cfg.Metrics.Counter("interest.inserts"), cfg.Metrics.Counter("interest.expiries"))
		n.dir.Instrument(cfg.Metrics.Gauge("directory.version"))
	}
	if cfg.World != nil {
		n.annotator = annotate.NewMachine(cfg.ID, cfg.World, cfg.AnnotateLatency, 0, nil)
	}
	if cfg.HeartbeatInterval > 0 {
		n.memberOn = true
		n.hbInterval = cfg.HeartbeatInterval
		n.hbMiss = cfg.HeartbeatMiss
		n.lastHeard = make(map[string]time.Time)
		n.seenBeat = make(map[string]uint64)
		n.lastSync = make(map[string]time.Time)
		// Make sure our own stream is advertised under a sequence number we
		// own, so Leave/Rejoin can order later updates.
		if n.desc != nil {
			if seq, ok := n.dir.Seq(n.id); ok && n.dir.Has(n.id) {
				n.adSeq = seq
			} else {
				n.adSeq = 1
				n.dir.Advertise(*n.desc, n.adSeq)
			}
		}
		if cfg.GossipFanout > 0 {
			n.gossipOn = true
			n.fanout = cfg.GossipFanout
			n.indirectK = cfg.GossipIndirect
			n.suspectTO = cfg.SuspectTimeout
			n.lambda = cfg.GossipRetransmit
			n.piggyMax = cfg.GossipMaxPiggyback
			h := fnv.New64a()
			h.Write([]byte(cfg.ID))
			n.sampler = gossip.NewSampler(cfg.GossipSeed ^ int64(h.Sum64()))
			n.piggy = gossip.NewQueue()
			n.probes = make(map[uint64]*probeState)
			n.suspects = make(map[string]time.Time)
			n.samplerVer = ^uint64(0)
		}
		if cfg.Shards > 0 {
			n.shardOn = true
			n.shardRouter = NewShardRouter(cfg.ID, cfg.Shards, cfg.ShardReplicas, cfg.ShardCacheSize)
			n.shardVer = ^uint64(0)
			// Until the first refresh the router's nil snapshot keeps every
			// payload; the first gossip tick thins the replica down to the
			// shards this node owns.
			n.dir.SetRetention(n.shardRouter.Keep)
		}
		n.gossipTickFn = n.gossipTickArg
		n.heartbeatTickFn = n.heartbeatTickArg
		n.probeTimeoutFn = n.probeTimeout
		n.startMembership()
	}
	cfg.Transport.SetHandler(n.handleMessage)
	return n, nil
}

// ID returns the node's identifier.
func (n *Node) ID() string { return n.id }

// Stats returns a copy of the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Results returns the outcomes of locally originated queries so far.
func (n *Node) Results() []QueryResult {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]QueryResult(nil), n.results...)
}

// OnQueryDone installs a callback fired when a local query reaches a
// terminal status.
func (n *Node) OnQueryDone(fn func(QueryResult)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onDone = fn
}

// PendingQueries counts local queries that have not reached a terminal
// status.
func (n *Node) PendingQueries() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.tr.Clock().Now()
	pending := 0
	for _, q := range n.queries {
		if q.engine.Step(now) == core.Pending {
			pending++
		}
	}
	return pending
}

func (n *Node) now() time.Time { return n.tr.Clock().Now() }

// DebugQueries renders the state of all local queries, for diagnostics.
// Queries and their outstanding fetches are listed in sorted order so the
// dump is stable run to run (both live in maps).
func (n *Node) DebugQueries() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.now()
	ids := make([]string, 0, len(n.queries))
	for id := range n.queries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := ""
	for _, id := range ids {
		q := n.queries[id]
		inflight := make([]string, 0, len(q.outstanding))
		for obj, at := range q.outstanding {
			inflight = append(inflight, fmt.Sprintf("%s@%s", obj, at.Format("15:04:05")))
		}
		sort.Strings(inflight)
		out += fmt.Sprintf("%s status=%v unknown=%v outstanding=%v expr=%s\n",
			id, q.engine.Step(now), q.engine.UnknownLabels(now), inflight, q.engine.Expr())
	}
	return out
}

// QueryInit issues a decision query at this node (the paper's Query_Init):
// it plans retrieval per the node's scheme, floods the expression to
// neighbors for prefetching, and starts fetching evidence.
func (n *Node) QueryInit(expr boolexpr.DNF, deadline time.Duration) (string, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(expr.Terms) == 0 {
		return "", errors.New("athena: empty decision expression")
	}
	n.querySeq++
	id := fmt.Sprintf("%s/q%d", n.id, n.querySeq)
	now := n.now()
	abs := now.Add(deadline)
	exprText := expr.String()

	q := &localQuery{
		engine:      core.NewEngineWithPlan(id, expr, abs, n.meta, n.planFor(expr, exprText)),
		issued:      now,
		outstanding: make(map[string]time.Time),
		requested:   make(map[string]bool),
		attempts:    make(map[string]int),
		suspect:     make(map[string]bool),
		batch:       n.scheme == SchemeCMP || n.scheme == SchemeSLT || n.scheme == SchemeLCF,
		corr:        make(map[string]*corrState),
	}
	if n.scheme != SchemeCMP {
		q.selected = n.selectSources(id, expr.Labels())
	}
	n.queries[id] = q
	n.stats.QueriesIssued++
	n.seenAnnounce[id] = true

	// Step (iv): share the decision structure with neighbors.
	n.floodAnnounce(&QueryAnnounce{
		QueryID:  id,
		Origin:   n.id,
		Expr:     exprText,
		Deadline: abs,
		TTL:      n.announceTTL,
	}, "")

	// Deadline watchdog.
	n.timers.After(deadline+time.Millisecond, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if lq, ok := n.queries[id]; ok {
			lq.engine.Step(n.now())
			n.recordIfTerminal(lq)
		}
	})

	n.pump(q)
	return id, nil
}

// cachedPlan is one memoized planFor result, valid while the directory
// version it was computed under still holds.
type cachedPlan struct {
	plan boolexpr.QueryPlan
	dirv uint64
}

// planFor builds the evaluation plan per scheme: decision-driven schemes
// order terms by short-circuit efficiency and literals by longest validity
// first; batch schemes use the greedy plan only for bookkeeping. Plans are
// memoized by expression text — recurring queries (QueryEvery) re-plan an
// identical expression every period otherwise — and invalidated when the
// directory version moves (membership churn re-prices the metadata the
// plan was built from). Cached plans are shared across engines; the engine
// only reads them.
func (n *Node) planFor(expr boolexpr.DNF, key string) boolexpr.QueryPlan {
	dirv := n.dir.Version()
	if c, ok := n.planCache[key]; ok && c.dirv == dirv {
		n.stats.PlanCacheHits++
		return c.plan
	}
	plan := boolexpr.GreedyPlan(expr, n.meta)
	if n.scheme == SchemeLVF || n.scheme == SchemeLVFL {
		for ti, t := range expr.Terms {
			order := plan.LiteralOrder[ti]
			validity := make([]time.Duration, len(t.Literals))
			for li := range t.Literals {
				validity[li] = n.meta.Get(t.Literals[li].Label).Validity
			}
			sort.SliceStable(order, func(a, b int) bool {
				return validity[order[a]] > validity[order[b]]
			})
		}
	}
	if n.planCache == nil || len(n.planCache) >= 256 {
		n.planCache = make(map[string]cachedPlan)
	}
	n.planCache[key] = cachedPlan{plan: plan, dirv: dirv}
	return plan
}

// pump advances a local query: issues whatever requests its scheme wants
// outstanding, schedules the next expiry recheck, and records terminal
// status. Callers hold n.mu.
func (n *Node) pump(q *localQuery) {
	now := n.now()
	if q.engine.Step(now) != core.Pending {
		n.recordIfTerminal(q)
		return
	}
	if q.batch {
		n.pumpBatch(q, now)
	} else {
		n.pumpSequential(q, now)
	}
	n.scheduleExpiryCheck(q, now)
}

// pumpBatch (cmp/slt/lcf) keeps a request in flight for every unresolved
// label's object.
func (n *Node) pumpBatch(q *localQuery, now time.Time) {
	type target struct {
		source string
		obj    string
		size   int64 // descriptor size, precomputed for the LCF sort
	}
	var targets []target
	seen := make(map[string]bool)
	add := func(src string) {
		desc, ok := n.descriptorOf(src)
		if !ok {
			return
		}
		obj := desc.Name.String()
		if !seen[obj] {
			seen[obj] = true
			targets = append(targets, target{source: src, obj: obj, size: desc.Size})
		}
	}
	for _, label := range q.engine.UnknownLabels(now) {
		if n.scheme == SchemeCMP {
			for _, src := range n.sourcesForLabel(q, label) {
				add(src)
			}
		} else {
			if src := n.sourceFor(q, label); src != "" {
				add(src)
			}
		}
	}
	if n.scheme == SchemeLCF {
		sort.SliceStable(targets, func(a, b int) bool {
			return targets[a].size < targets[b].size
		})
	}
	for _, t := range targets {
		if len(q.outstanding) >= n.batchWindow {
			break
		}
		if _, inFlight := q.outstanding[t.obj]; inFlight {
			continue
		}
		n.requestObject(q, t.source, now)
	}
}

// pumpSequential (lvf/lvfl) is the decision-driven retrieval schedule:
// evidence is fetched only for the course of action currently under
// evaluation, at most sequentialWindow transfers at a time, in the plan's
// order (longest validity first within the term). A falsifying label
// short-circuits the term and the next pump moves on to the next
// alternative.
func (n *Node) pumpSequential(q *localQuery, now time.Time) {
	a := q.engine.Assignment(now)
	expr := q.engine.Expr()
	plan := q.engine.Plan()
	for _, ti := range plan.TermOrder {
		t := expr.Terms[ti]
		if t.Eval(a) != boolexpr.Unknown {
			continue // decided either way; not the active term
		}
		// Active term: keep up to sequentialWindow transfers in flight.
		for _, li := range plan.LiteralOrder[ti] {
			if len(q.outstanding) >= n.sequentialWindow {
				return
			}
			label := t.Literals[li].Label
			if a.Get(label) != boolexpr.Unknown {
				continue
			}
			src := n.sourceFor(q, label)
			if n.sensorNoise > 0 {
				var retry time.Time
				src, retry = n.corrSource(q, label, now)
				if src == "" && !retry.IsZero() {
					// Every fresh sample already voted; try again once a
					// new sample can exist.
					n.scheduleRetry(q, retry, now)
				}
			}
			if src == "" {
				continue // uncoverable (or awaiting fresh corroboration)
			}
			desc, ok := n.descriptorOf(src)
			if !ok {
				continue
			}
			if _, inFlight := q.outstanding[desc.Name.String()]; inFlight {
				continue
			}
			n.requestObject(q, src, now)
		}
		return
	}
}

// scheduleRetry arms a pump at the given instant (deduplicated per
// query). Callers hold n.mu.
func (n *Node) scheduleRetry(q *localQuery, at, now time.Time) {
	if q.nextRetry.Equal(at) {
		return
	}
	q.nextRetry = at
	id := q.engine.ID()
	n.timers.After(at.Sub(now)+time.Millisecond, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if lq, ok := n.queries[id]; ok {
			lq.nextRetry = time.Time{}
			n.pump(lq)
		}
	})
}

// requestObject enqueues a fetch for the source's object on behalf of q.
// Callers hold n.mu.
func (n *Node) requestObject(q *localQuery, source string, now time.Time) {
	desc, ok := n.descriptorOf(source)
	if !ok {
		return
	}
	objName := desc.Name.String()
	// The request's labels are the query labels this object can resolve
	// and that are still unknown.
	unknown := make(map[string]bool)
	for _, l := range q.engine.UnknownLabels(now) {
		unknown[l] = true
	}
	var want []string
	for _, l := range desc.Labels {
		if unknown[l] {
			want = append(want, l)
		}
	}
	if len(want) == 0 {
		return
	}
	if q.requested[objName] {
		n.stats.Refetches++
	}
	q.requested[objName] = true
	q.outstanding[objName] = now
	n.stats.RequestsSent++
	n.fetchQ = append(n.fetchQ, queuedRequest{
		req: &ObjectRequest{
			QueryID:    q.engine.ID(),
			Origin:     n.id,
			Object:     objName,
			SourceNode: source,
			Labels:     want,
		},
		urgency: n.queryUrgency(q, now).UnixNano(),
	})
	// Recovery timer: if no answer arrives (lost request or data,
	// overload), clear the in-flight mark so the next pump re-requests —
	// with exponential backoff across attempts, and switching to an
	// alternate source once this one exhausts its retries. With retries
	// disabled this degrades to the single fixed-timeout safety net. The
	// timestamp check ignores answers that arrived and were re-requested.
	id := q.engine.ID()
	sentAt := now
	timeout := n.requestTimeout
	if !n.disableRetries {
		timeout = n.retryDelay(q.attempts[objName], desc.Size)
	}
	n.timers.After(timeout, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		lq, ok := n.queries[id]
		if !ok || lq.recorded {
			return
		}
		if at, inFlight := lq.outstanding[objName]; !inFlight || !at.Equal(sentAt) {
			return
		}
		delete(lq.outstanding, objName)
		if !n.disableRetries {
			n.stats.RequestTimeouts++
			n.m.retryTimeouts.Inc()
			lq.attempts[objName]++
			if lq.attempts[objName] > n.maxRetries && !lq.suspect[source] {
				lq.suspect[source] = true
				n.m.failovers.Inc()
			}
		}
		n.pump(lq)
	})
	n.kick()
}

// retryDelay is the backoff delay before attempt's retry: RetryInterval
// scaled by RetryBackoff^attempt (capped at RequestTimeout), plus a
// size-proportional allowance so a large object still serializing over a
// slow multi-hop path is not declared lost while making progress. Callers
// hold n.mu.
func (n *Node) retryDelay(attempt int, size int64) time.Duration {
	d := n.retryInterval
	for i := 0; i < attempt; i++ {
		d = time.Duration(float64(d) * n.retryBackoff)
		if d >= n.requestTimeout {
			d = n.requestTimeout
			break
		}
	}
	if d > n.requestTimeout {
		d = n.requestTimeout
	}
	if size > 0 && n.retryBandwidth > 0 {
		d += time.Duration(float64(size) / n.retryBandwidth * float64(time.Second))
	}
	return d
}

// sourceFor picks the source covering label for query q, steering around
// sources whose requests kept timing out (the directory supplies the
// alternate next hop). When every covering source is suspect, the primary
// is retried — a struggling source beats none. On a sharded directory an
// unowned label resolves through the router's cache instead. Callers hold
// n.mu.
func (n *Node) sourceFor(q *localQuery, label string) string {
	if n.shardOn && !n.shardRouter.OwnsLabel(label) {
		return n.sourceForRouted(q, label)
	}
	if len(q.suspect) > 0 {
		if s := n.dir.SourceForLabelExcluding(label, q.selected, q.suspect); s != "" {
			return s
		}
	}
	return n.dir.SourceForLabel(label, q.selected)
}

// queryUrgency is the hierarchical priority key of ref [1]: the minimum
// of the query's deadline and the earliest expiration its evidence could
// have (now + the smallest validity interval among its labels). Callers
// hold n.mu.
func (n *Node) queryUrgency(q *localQuery, now time.Time) time.Time {
	u := q.engine.Deadline()
	for _, l := range q.engine.Labels() {
		if v := n.meta.Get(l).Validity; v > 0 {
			if exp := now.Add(v); exp.Before(u) {
				u = exp
			}
		}
	}
	return u
}

// scheduleExpiryCheck arms a timer at the engine's next load-bearing
// evidence expiry so stale labels get refetched. Callers hold n.mu.
func (n *Node) scheduleExpiryCheck(q *localQuery, now time.Time) {
	exp, ok := q.engine.NextExpiry(now)
	if !ok {
		return
	}
	if q.nextExpiry.Equal(exp) {
		return // already armed
	}
	q.nextExpiry = exp
	id := q.engine.ID()
	n.timers.After(exp.Sub(now)+time.Millisecond, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if lq, ok := n.queries[id]; ok {
			lq.nextExpiry = time.Time{}
			n.pump(lq)
		}
	})
}

// recordIfTerminal records a terminal query exactly once. Callers hold
// n.mu.
func (n *Node) recordIfTerminal(q *localQuery) {
	if q.recorded {
		return
	}
	status := q.engine.Step(n.now())
	if status == core.Pending {
		return
	}
	q.recorded = true
	switch status {
	case core.ResolvedTrue:
		n.stats.ResolvedTrue++
	case core.ResolvedFalse:
		n.stats.ResolvedFalse++
	case core.Expired:
		n.stats.Expired++
	}
	res := QueryResult{
		QueryID:  q.engine.ID(),
		Status:   status,
		Issued:   q.issued,
		Finished: q.engine.ResolvedAt(),
		Deadline: q.engine.Deadline(),
	}
	if status == core.ResolvedTrue || status == core.ResolvedFalse {
		n.m.resolveLatency.ObserveDuration(res.Finished.Sub(res.Issued))
	}
	n.results = append(n.results, res)
	if n.onDone != nil {
		cb := n.onDone
		n.timers.After(0, func() { cb(res) })
	}
}

// Prewarm floods a decision expression that is *anticipated* but not yet
// issued (Section VIII: workflow anticipation): nearby sources prefetch
// the evidence toward this node in the background, so a subsequent
// QueryInit for the same logic finds it cached. No local query state is
// created. Requires prefetching to be enabled somewhere in the network to
// have any effect.
func (n *Node) Prewarm(expr boolexpr.DNF) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(expr.Terms) == 0 {
		return errors.New("athena: empty decision expression")
	}
	n.querySeq++
	id := fmt.Sprintf("%s/warm%d", n.id, n.querySeq)
	n.seenAnnounce[id] = true
	n.floodAnnounce(&QueryAnnounce{
		QueryID:  id,
		Origin:   n.id,
		Expr:     expr.String(),
		Deadline: n.now().Add(time.Hour),
		TTL:      n.announceTTL,
	}, "")
	return nil
}

// QueryEvery issues the decision expression periodically (Section IV-B:
// "other decisions may need to be done periodically"), starting
// immediately. Each firing is an independent query with the given
// deadline. The returned stop function cancels future firings (it never
// interrupts an in-flight query).
func (n *Node) QueryEvery(expr boolexpr.DNF, deadline, period time.Duration) (stop func(), err error) {
	if period <= 0 {
		return nil, errors.New("athena: period must be positive")
	}
	if len(expr.Terms) == 0 {
		return nil, errors.New("athena: empty decision expression")
	}
	stopped := false
	var fire func()
	fire = func() {
		n.mu.Lock()
		cancelled := stopped
		n.mu.Unlock()
		if cancelled {
			return
		}
		// Errors are impossible here (the expression was validated), but
		// surface defensively through the result stream by skipping.
		_, _ = n.QueryInit(expr, deadline)
		n.timers.After(period, fire)
	}
	n.timers.After(0, fire)
	return func() {
		n.mu.Lock()
		stopped = true
		n.mu.Unlock()
	}, nil
}

package athena

import (
	"sort"
	"time"

	"athena/internal/boolexpr"
	"athena/internal/core"
	"athena/internal/names"
	"athena/internal/object"
	"athena/internal/transport"
	"athena/internal/trust"
)

// handleMessage is the transport receive entry point.
func (n *Node) handleMessage(from string, size int64, payload any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	// Everything this frame's handlers coalesced in response ships when
	// the dispatch ends (the Nagle push) — a batched arrival's fan-out
	// re-batches on the way out without waiting out a window.
	defer n.flushBursts()
	// Payloads are pointers end to end — sent as pointers, decoded as
	// pointers by internal/wire — so a multi-hop forward re-sends the
	// same allocation instead of re-boxing a struct copy per hop.
	// Handlers that mutate a message before forwarding copy it first.
	switch msg := payload.(type) {
	case *QueryAnnounce:
		n.handleAnnounce(from, msg)
	case *ObjectRequest:
		n.handleRequest(from, msg)
	case *ObjectData:
		n.handleData(from, msg)
	case *RequestBatch:
		// Unpack a coalesced frame and run every member through the
		// ordinary handler: interest fan-out, forwarding, and (at the
		// next hop) re-coalescing all happen per member.
		for i := range msg.Requests {
			n.handleRequest(from, &msg.Requests[i])
		}
	case *DataBatch:
		for i := range msg.Items {
			n.handleData(from, &msg.Items[i])
		}
	case *LabelShare:
		n.handleLabelShare(from, msg)
	case *Heartbeat:
		n.handleHeartbeat(from, msg)
	case *AdvertGossip:
		n.handleGossip(from, msg)
	case *PeerJoin:
		n.handlePeerJoin(from, msg)
	case *PeerJoinAck:
		n.handlePeerJoinAck(from, msg)
	case *PeerLeave:
		n.handlePeerLeave(from, msg)
	case *SyncRequest:
		n.handleSyncRequest(from, msg)
	case *SyncResponse:
		n.handleSyncResponse(from, msg)
	case *Ping:
		n.handlePing(from, msg)
	case *Ack:
		n.handleAck(from, msg)
	case *PingReq:
		n.handlePingReq(from, msg)
	case *ShardLookup:
		n.handleShardLookup(from, msg)
	case *ShardLookupReply:
		n.handleShardLookupReply(from, msg)
	case *ShardSyncRequest:
		n.handleShardSyncRequest(from, msg)
	case *ShardSyncResponse:
		n.handleShardSyncResponse(from, msg)
	}
}

// sendTo routes a message toward dest via the next hop, accounting for
// routing failures. Callers hold n.mu.
func (n *Node) sendTo(dest string, size int64, payload any) {
	n.sendToPri(dest, size, payload, 0)
}

func (n *Node) sendToPri(dest string, size int64, payload any, priority int) {
	if dest == n.id {
		return
	}
	hop, err := n.router.NextHop(n.id, dest)
	if err != nil {
		n.stats.RoutingDrops++
		return
	}
	// Default-priority data-plane traffic may coalesce with other messages
	// headed for the same next hop (coalesce.go); everything else — and
	// everything when batching is off — ships in its own frame.
	if priority == 0 {
		switch m := payload.(type) {
		case *ObjectRequest:
			if n.enqueueRequest(hop, m) {
				return
			}
		case *ObjectData:
			if n.enqueueData(hop, m) {
				return
			}
		}
	}
	if err := n.transmit(hop, size, payload, priority); err != nil {
		n.stats.RoutingDrops++
	}
}

// transmit sends to a direct neighbor, using the priority class when the
// transport supports one (Section V-C).
func (n *Node) transmit(neighbor string, size int64, payload any, priority int) error {
	switch payload.(type) {
	case *ObjectRequest, *ObjectData, *RequestBatch, *DataBatch:
		n.stats.DataFrames++
	}
	if priority > 0 {
		if ps, ok := n.tr.(transport.PrioritySender); ok {
			return ps.SendPriority(neighbor, size, priority, payload)
		}
	}
	return n.tr.Send(neighbor, size, payload)
}

// isCritical reports whether an object name falls in the critical part of
// the name space (Section V-C).
func (n *Node) isCritical(objName string) bool {
	if n.criticalPrefix.IsZero() {
		return false
	}
	name, err := names.Parse(objName)
	if err != nil {
		return false
	}
	return name.HasPrefix(n.criticalPrefix)
}

// floodAnnounce fans a query announcement out to all neighbors except the
// one it came from. Callers hold n.mu.
func (n *Node) floodAnnounce(a *QueryAnnounce, except string) {
	for _, nb := range n.tr.Neighbors() {
		if nb == except {
			continue
		}
		if err := n.tr.Send(nb, a.WireSize(), a); err != nil {
			n.stats.RoutingDrops++
		}
	}
}

// handleAnnounce implements the prefetch side of Query_Recv: remember the
// query, queue background prefetch of any locally sourced objects it
// needs, and keep flooding within the TTL.
func (n *Node) handleAnnounce(from string, a *QueryAnnounce) {
	if n.seenAnnounce[a.QueryID] {
		return
	}
	n.seenAnnounce[a.QueryID] = true

	// Prefetch (Section VI-A): background-push this node's object toward
	// the origin, but only when it is the cheapest source for a needed
	// label and close to the origin — unselective pushing would flood the
	// network with redundant evidence.
	if !n.disablePrefetch && n.desc != nil && a.Origin != n.id &&
		!n.pushed[a.QueryID] && a.Hops < 2 {
		expr, err := boolexpr.Parse(a.Expr)
		if err == nil {
			needed := make(map[string]bool)
			for _, l := range boolexpr.Labels(expr) {
				needed[l] = true
			}
			for _, l := range n.desc.Labels {
				if needed[l] && n.dir.SourceForLabel(l, nil) == n.id {
					n.pushed[a.QueryID] = true
					n.prefetchQ = append(n.prefetchQ, prefetchTask{origin: a.Origin, queryID: a.QueryID})
					n.kick()
					break
				}
			}
		}
	}

	if a.TTL > 1 {
		// The incoming message is shared with other receivers; copy
		// before stamping this hop's TTL/Hops.
		fwd := *a
		fwd.TTL--
		fwd.Hops++
		n.floodAnnounce(&fwd, from)
	}
}

// handleRequest implements Request_Recv (Section VI-B): answer from the
// label cache (lvfl) or content store, sample if this node is the source,
// otherwise bookmark interest and forward fetches toward the source.
func (n *Node) handleRequest(from string, req *ObjectRequest) {
	now := n.now()

	// Label-cache answer: if label sharing is on and fresh records cover
	// everything the requester wants, reply with records instead of the
	// object — "several orders of magnitude resource savings".
	if n.scheme == SchemeLVFL && len(req.Labels) > 0 {
		records := make([]trust.Label, 0, len(req.Labels))
		covered := true
		for _, l := range req.Labels {
			rec, ok := n.labels.Get(l, trust.TrustAll(), now)
			if !ok {
				covered = false
				break
			}
			records = append(records, *rec)
		}
		if covered {
			n.stats.LabelAnswers++
			share := &LabelShare{Records: records, Dest: req.Origin, QueryID: req.QueryID}
			n.sendTo(req.Origin, share.WireSize(), share)
			return
		}
	}

	// Content-store answer, returned along the reverse path. With
	// approximate substitution enabled (Section V-A), a cached object of
	// a sufficiently similar name may stand in for the requested one, as
	// long as it actually evidences something the requester wants.
	if name, err := names.Parse(req.Object); err == nil {
		if obj, ok := n.store.Get(name, now); ok {
			if n.duplicateInFlight(req.Object, from, obj.Size, now) {
				return
			}
			n.stats.CacheAnswers++
			n.sendDataTo(from, obj, req.Origin, req.QueryID, false)
			return
		}
		// Critical-namespace objects are exempt from approximation
		// (Section V-C): consumers get the real thing or nothing.
		if n.approxMinSim > 0 && !n.isCritical(req.Object) {
			if obj, ok := n.store.GetApprox(name, n.approxMinSim, now); ok && coversAnyLabel(obj, req.Labels) {
				if n.duplicateInFlight(req.Object, from, obj.Size, now) {
					return
				}
				n.stats.CacheAnswers++
				n.stats.ApproxAnswers++
				n.sendDataTo(from, obj, req.Origin, req.QueryID, false)
				return
			}
		}
	}

	// Source answer: sample the sensor.
	if req.SourceNode == n.id && n.desc != nil {
		obj := n.sample(now)
		if n.duplicateInFlight(req.Object, from, obj.Size, now) {
			return
		}
		n.sendDataTo(from, obj, req.Origin, req.QueryID, false)
		return
	}

	// Prefetch requests are never forwarded.
	if req.Prefetch {
		return
	}

	alreadyPending := n.interest.Add(req.Object, req.Origin, req.QueryID, from, req.Labels, now)
	if !alreadyPending {
		n.forwardRequest(req, 0)
	}
}

// duplicateInFlight reports whether this object was already sent to the
// neighbor so recently that the copy is plausibly still serializing on
// the link — in which case the request is almost certainly a spurious
// retransmit racing a slow transfer, and answering it again would only
// add a redundant full copy to the congestion that delayed the first.
// The in-flight window is the same size allowance the retry timers use
// (Size/RetryBandwidth), so a genuine loss is still recovered: the
// requester's next retransmit lands at least one base interval past the
// window and gets answered. When true, the send is suppressed; when
// false, the window is (re)armed for the send the caller is about to
// make. Callers hold n.mu.
func (n *Node) duplicateInFlight(objName, neighbor string, size int64, now time.Time) bool {
	if n.disableRetries || n.retryBandwidth <= 0 {
		return false
	}
	key := objName + "\x00" + neighbor
	if until, ok := n.sentRecently[key]; ok && now.Before(until) {
		n.stats.DupSuppressed++
		return true
	}
	if len(n.sentRecently) > 4096 {
		for k, until := range n.sentRecently {
			if !now.Before(until) {
				delete(n.sentRecently, k)
			}
		}
	}
	n.sentRecently[key] = now.Add(time.Duration(float64(size) / n.retryBandwidth * float64(time.Second)))
	return false
}

// forwardRequest sends a request upstream toward its source and, unless
// retries are disabled, arms a retransmit timer: if the retry window
// lapses with the interest still pending and live downstream waiters, the
// request is re-forwarded with exponential backoff, up to maxRetries.
// Retransmissions recover hop-by-hop — a duplicate is absorbed by the next
// hop's pending mark (or answered from its content store once data passed
// through), so a spurious retry costs one request message on one link.
// When retries are exhausted the pending mark is cleared so the next
// incoming interest forwards afresh, possibly via an alternate source
// chosen at the origin. Callers hold n.mu.
func (n *Node) forwardRequest(req *ObjectRequest, attempt int) {
	n.sendTo(req.SourceNode, req.WireSize(), req)
	if n.disableRetries {
		return
	}
	var objSize int64
	if desc, ok := n.dir.Descriptor(req.SourceNode); ok {
		objSize = desc.Size
	}
	delay := n.retryDelay(attempt, objSize)
	n.timers.After(delay, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		now := n.now()
		if !n.interest.Pending(req.Object, now) {
			return // data arrived (or the request lapsed) meanwhile
		}
		if !n.interest.HasWaiters(req.Object, now) {
			return // everyone downstream gave up; let the pending mark lapse
		}
		if attempt+1 > n.maxRetries {
			n.interest.ClearPending(req.Object)
			return
		}
		n.stats.Retransmits++
		n.m.retransmits.Inc()
		// Keep the pending mark alive through the next retry window.
		n.interest.RefreshPending(req.Object, now.Add(n.retryDelay(attempt+1, objSize)+n.retryInterval))
		n.forwardRequest(req, attempt+1)
	})
}

// sample returns the sensor's current object, reusing the last sample
// while it is fresh (sensors sample at their validity period, Section
// IV-A). Callers hold n.mu.
func (n *Node) sample(now time.Time) *object.Object {
	if n.lastSample != nil && n.lastSample.FreshAt(now) {
		return n.lastSample
	}
	n.version++
	obj := &object.Object{
		ID:       object.ID{Name: n.desc.Name, Version: n.version},
		Size:     n.desc.Size,
		Created:  now,
		Validity: n.desc.Validity,
		Labels:   append([]string(nil), n.desc.Labels...),
		Source:   n.id,
	}
	n.lastSample = obj
	n.store.Put(obj, now)
	return obj
}

// dataMsg builds the wire form of an object destined for dest.
func dataMsg(obj *object.Object, dest, queryID string, background bool) *ObjectData {
	return &ObjectData{
		Object:     obj.ID.Name.String(),
		Version:    obj.ID.Version,
		Size:       obj.Size,
		Created:    obj.Created,
		Validity:   obj.Validity,
		Labels:     append([]string(nil), obj.Labels...),
		SourceNode: obj.Source,
		Origin:     dest,
		QueryID:    queryID,
		Background: background,
	}
}

// dataPriority gives critical-namespace objects transmission priority
// (Section V-C); background pushes never get it.
func (n *Node) dataPriority(msg *ObjectData) int {
	if !msg.Background && n.isCritical(msg.Object) {
		return 1
	}
	return 0
}

// sendData routes an object toward dest via the next hop (used for
// prefetch pushes, which have no interest trail). Callers hold n.mu.
func (n *Node) sendData(obj *object.Object, dest, queryID string, background bool) {
	if dest == n.id {
		return
	}
	msg := dataMsg(obj, dest, queryID, background)
	n.sendToPri(dest, msg.WireSize(), msg, n.dataPriority(msg))
}

// sendDataTo ships an object to a specific neighbor — the reverse-path
// hop of the request being answered. Callers hold n.mu.
func (n *Node) sendDataTo(neighbor string, obj *object.Object, dest, queryID string, background bool) {
	if neighbor == n.id {
		return
	}
	msg := dataMsg(obj, dest, queryID, background)
	pri := n.dataPriority(msg)
	if pri == 0 && n.enqueueData(neighbor, msg) {
		return
	}
	if err := n.transmit(neighbor, msg.WireSize(), msg, pri); err != nil {
		n.stats.RoutingDrops++
	}
}

func dataToObject(d *ObjectData) *object.Object {
	return &object.Object{
		ID:       object.ID{Name: names.MustParse(d.Object), Version: d.Version},
		Size:     d.Size,
		Created:  d.Created,
		Validity: d.Validity,
		Labels:   append([]string(nil), d.Labels...),
		Source:   d.SourceNode,
	}
}

// handleData implements Data_Recv (Section VI-C): cache the object,
// satisfy waiting interests along their reverse paths, deliver to any
// interested local query, and keep prefetch pushes moving toward their
// destination.
func (n *Node) handleData(from string, d *ObjectData) {
	now := n.now()
	obj := dataToObject(d)
	n.store.Put(obj, now)

	// One copy per downstream neighbor suffices: that neighbor's own
	// interest table fans out further.
	servedOrigin := d.Origin == n.id
	sentTo := make(map[string]bool)
	for _, w := range n.interest.Waiters(d.Object, now, !d.Background) {
		if w.origin == d.Origin {
			servedOrigin = true
		}
		if w.from == n.id || w.origin == n.id {
			continue // local delivery handled below
		}
		if !sentTo[w.from] {
			sentTo[w.from] = true
			n.sendDataTo(w.from, obj, w.origin, w.queryID, d.Background)
		}
	}

	// Any pending local query that can use this object's evidence gets
	// it, whether or not it asked (opportunistic reuse across queries).
	n.deliverObject(obj, now)

	if !servedOrigin {
		n.sendToPri(d.Origin, d.WireSize(), d, n.dataPriority(d))
	}
}

// deliverObject annotates an arrived object against every pending local
// query that references any of its labels, then advances those queries.
// The query origin is the predicate evaluator (Section VI-C). Callers hold
// n.mu.
func (n *Node) deliverObject(obj *object.Object, now time.Time) {
	if n.annotator == nil {
		return
	}
	objName := obj.ID.Name.String()
	// Visit queries in a fixed order: iteration here schedules sends and
	// timers, and map order would make event order — and therefore which
	// messages seeded loss draws land on — vary across identical runs.
	ids := make([]string, 0, len(n.queries))
	for id := range n.queries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		q := n.queries[id]
		if q.recorded {
			continue
		}
		sentAt, waiting := q.outstanding[objName]
		if !waiting && !queryWantsAny(q, obj) {
			continue
		}
		if waiting {
			n.m.fetchLatency.ObserveDuration(now.Sub(sentAt))
		}
		delete(q.outstanding, objName)
		delete(q.attempts, objName) // answered: reset its backoff
		if q.engine.Step(now) != core.Pending {
			n.recordIfTerminal(q)
			continue
		}
		var records []trust.Label
		for _, label := range obj.Labels {
			if !queryReferences(q, label) {
				continue
			}
			value, _, err := n.annotator.Annotate(label, obj)
			if err != nil {
				continue
			}
			n.stats.Annotations++
			if n.sensorNoise > 0 {
				decided, v := n.corroborate(q, label, obj, value)
				if !decided {
					continue // need more evidence; pump seeks another source
				}
				value = v
			}
			done := now.Add(n.annotateLatency)
			rec := &trust.Label{
				Name:     label,
				Value:    value,
				Evidence: []string{obj.ID.String()},
				Computed: done,
				Validity: obj.RemainingValidity(done),
			}
			n.signer.Sign(rec)
			n.labels.Put(rec)
			records = append(records, *rec)
			// The engine accepts the evidence with the object's expiry.
			_ = q.engine.Set(label, value, obj.Expiry(), obj.Source, n.id)
		}
		if len(records) > 0 {
			// Age of information at decision application (Dong et al.'s
			// age-upon-decision): how stale the evidence already was when
			// its labels entered the decision engine.
			n.m.decisionAge.ObserveDuration(now.Sub(obj.Created))
		}
		// Label sharing: propagate computed labels back toward the data
		// source so the path caches them (Section VI-D).
		if n.scheme == SchemeLVFL && len(records) > 0 && obj.Source != n.id {
			share := &LabelShare{Records: records, Dest: obj.Source}
			n.sendTo(obj.Source, share.WireSize(), share)
		}
		n.pump(q)
	}
}

// coversAnyLabel reports whether the object evidences at least one of the
// wanted labels.
func coversAnyLabel(obj *object.Object, wanted []string) bool {
	for _, w := range wanted {
		if obj.CoversLabel(w) {
			return true
		}
	}
	return false
}

func queryReferences(q *localQuery, label string) bool {
	for _, l := range q.engine.Labels() {
		if l == label {
			return true
		}
	}
	return false
}

func queryWantsAny(q *localQuery, obj *object.Object) bool {
	for _, l := range obj.Labels {
		if queryReferences(q, l) {
			return true
		}
	}
	return false
}

// handleLabelShare caches shared label records and either consumes them
// (when this node is the destination) or forwards them on (Section VI-D).
func (n *Node) handleLabelShare(from string, s *LabelShare) {
	now := n.now()
	for i := range s.Records {
		rec := s.Records[i]
		if n.authority.Verify(&rec) == nil {
			n.labels.Put(&rec)
		}
	}
	if s.Dest != n.id {
		n.sendTo(s.Dest, s.WireSize(), s)
		return
	}
	if s.QueryID == "" {
		return // propagation toward source ends here
	}
	q, ok := n.queries[s.QueryID]
	if !ok {
		return
	}
	accepted := false
	for i := range s.Records {
		rec := s.Records[i]
		if err := n.policy.Accept(n.authority, &rec, now); err != nil {
			continue
		}
		if q.engine.Set(rec.Name, rec.Value, rec.Expiry(), "", rec.Annotator) == nil {
			accepted = true
		}
	}
	// A label answer retires the object request it replaced: clear any
	// outstanding objects that could have resolved the now-known labels.
	if accepted {
		for objName := range q.outstanding {
			delete(q.outstanding, objName)
		}
	}
	n.pump(q)
}

// kick schedules queue draining. Callers hold n.mu.
func (n *Node) kick() {
	if n.draining {
		return
	}
	n.draining = true
	n.timers.After(0, n.drain)
}

// drain processes the fetch queue fully, then at most one background
// prefetch task (the prefetch queue is only served when the fetch queue is
// empty, Section VI-A).
func (n *Node) drain() {
	n.mu.Lock()
	defer n.mu.Unlock()
	// A drain issues a query's whole fan-in burst synchronously; ship
	// what it coalesced as soon as the burst is done (the Nagle push).
	defer n.flushBursts()
	n.draining = false

	// Drain the fetch queue most-urgent query first (hierarchical
	// priority bands, ref [1]); the sort is stable so a query's own
	// requests keep their plan order.
	sort.SliceStable(n.fetchQ, func(a, b int) bool {
		return n.fetchQ[a].urgency < n.fetchQ[b].urgency
	})
	for len(n.fetchQ) > 0 {
		qr := n.fetchQ[0]
		n.fetchQ = n.fetchQ[1:]
		n.dispatchRequest(qr.req)
	}

	if len(n.prefetchQ) == 0 {
		return
	}
	task := n.prefetchQ[0]
	n.prefetchQ = n.prefetchQ[1:]
	if n.desc != nil && task.origin != n.id {
		now := n.now()
		obj := n.sample(now)
		// Don't re-push a version this origin already received.
		key := task.origin + "|" + obj.ID.Name.String()
		if n.pushedVersions[key] != obj.ID.Version {
			n.pushedVersions[key] = obj.ID.Version
			n.stats.PrefetchPushes++
			n.sendData(obj, task.origin, task.queryID, true)
		}
	}
	if len(n.prefetchQ) > 0 {
		n.draining = true
		n.timers.After(n.prefetchDelay, n.drain)
	}
}

// dispatchRequest serves a locally originated request: local cache and
// own-sensor answers short-circuit the network entirely; otherwise the
// request is routed toward the source. Callers hold n.mu.
func (n *Node) dispatchRequest(req *ObjectRequest) {
	now := n.now()

	// Local label-cache answer (lvfl).
	if n.scheme == SchemeLVFL {
		if q, ok := n.queries[req.QueryID]; ok {
			satisfied := true
			for _, l := range req.Labels {
				rec, found := n.labels.Get(l, trust.TrustAll(), now)
				if !found || n.policy.Accept(n.authority, rec, now) != nil {
					satisfied = false
					break
				}
				_ = q.engine.Set(rec.Name, rec.Value, rec.Expiry(), "", rec.Annotator)
			}
			if satisfied {
				n.stats.LabelAnswers++
				delete(q.outstanding, req.Object)
				n.pump(q)
				return
			}
		}
	}

	// Local content store; deliverObject clears the outstanding mark and
	// pumps the query.
	if name, err := names.Parse(req.Object); err == nil {
		if obj, ok := n.store.Get(name, now); ok {
			n.stats.CacheAnswers++
			n.deliverObject(obj, now)
			return
		}
	}

	// Own sensor.
	if req.SourceNode == n.id && n.desc != nil {
		obj := n.sample(now)
		n.deliverObject(obj, now)
		return
	}

	n.sendTo(req.SourceNode, req.WireSize(), req)
}

package athena

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"athena/internal/annotate"
	"athena/internal/object"
)

// This file implements the Section IV-B noisy-sensor machinery: a single
// annotation misreads its evidence with probability SensorNoise, so query
// origins corroborate each label across multiple evidence objects until
// the posterior confidence reaches ConfidenceTarget, and the scheduler
// widens source selection to gather that corroborating evidence.

// noisyReading deterministically corrupts an annotation: the flip decision
// hashes the (observer, object version, label) triple, so repeated reads
// of the same evidence by the same observer agree, while different
// evidence objects err independently.
func noisyReading(truth bool, observer, objectID, label string, rate float64) bool {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s", observer, objectID, label)
	x := h.Sum64()
	// splitmix64 finalizer to whiten FNV output.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	u := float64(x>>11) / float64(1<<53)
	if u < rate {
		return !truth
	}
	return truth
}

// corroborate records one (noisy) annotation vote for a query label and
// reports whether confidence has been reached, with the majority value.
// Each exact object version votes at most once. Callers hold n.mu.
func (n *Node) corroborate(q *localQuery, label string, obj *object.Object, trueValue bool) (decided, value bool) {
	reading := noisyReading(trueValue, n.id, obj.ID.String(), label, n.sensorNoise)
	cs := q.corr[label]
	if cs == nil {
		cs = &corrState{
			c:            &annotate.Corroborator{Target: n.confTarget, Eps: n.sensorNoise},
			votedVersion: make(map[string]bool),
			nameExpiry:   make(map[string]time.Time),
		}
		q.corr[label] = cs
	}
	vid := obj.ID.String()
	if !cs.votedVersion[vid] {
		cs.votedVersion[vid] = true
		cs.nameExpiry[obj.ID.Name.String()] = obj.Expiry()
		cs.c.Add(reading)
	}
	v, confident := cs.c.Decided()
	return confident, v
}

// corrSource picks the covering source to consult next for a label still
// under corroboration: the cheapest source whose current sample has not
// voted yet (a source can vote again once its previous sample expires and
// a new version exists). When every source's fresh sample already voted,
// it returns "" and the earliest instant a new vote becomes possible.
func (n *Node) corrSource(q *localQuery, label string, now time.Time) (src string, retry time.Time) {
	cs := q.corr[label]
	sources := n.dir.SourcesFor(label)
	// Prefer the query's selected sources first, then everyone, cheapest
	// first within each group.
	ordered := make([]string, 0, len(sources))
	inSelected := make(map[string]bool, len(q.selected))
	for _, s := range q.selected {
		inSelected[s] = true
	}
	var rest []string
	for _, s := range sources {
		if inSelected[s] {
			ordered = append(ordered, s)
		} else {
			rest = append(rest, s)
		}
	}
	bySize := func(list []string) {
		sort.SliceStable(list, func(a, b int) bool {
			da, _ := n.dir.Descriptor(list[a])
			db, _ := n.dir.Descriptor(list[b])
			if da.Size != db.Size {
				return da.Size < db.Size
			}
			return list[a] < list[b]
		})
	}
	bySize(ordered)
	bySize(rest)
	ordered = append(ordered, rest...)

	var earliest time.Time
	for _, s := range ordered {
		desc, ok := n.dir.Descriptor(s)
		if !ok {
			continue
		}
		if cs == nil {
			return s, time.Time{}
		}
		exp, voted := cs.nameExpiry[desc.Name.String()]
		if !voted || !exp.After(now) {
			return s, time.Time{}
		}
		if earliest.IsZero() || exp.Before(earliest) {
			earliest = exp
		}
	}
	return "", earliest
}

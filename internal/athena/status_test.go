package athena

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"athena/internal/boolexpr"
	"athena/internal/metrics"
	"athena/internal/names"
	"athena/internal/netsim"
	"athena/internal/object"
	"athena/internal/simclock"
	"athena/internal/transport"
	"athena/internal/trust"
)

// buildStatusRig is the membership line srcA - mid - srcC with every node
// instrumented into its own registry, so the status endpoint has live data
// to serve.
func buildStatusRig(t *testing.T, world staticWorld) (*memberRig, map[string]*metrics.Registry) {
	t.Helper()
	sched := simclock.New(tBase)
	net := netsim.New(sched)
	for _, id := range []string{"srcA", "mid", "srcC"} {
		net.AddNode(id, nil)
	}
	linkCfg := netsim.LinkConfig{Bandwidth: 125_000, Latency: time.Millisecond}
	if err := net.AddLink("srcA", "mid", linkCfg); err != nil {
		t.Fatal(err)
	}
	if err := net.AddLink("mid", "srcC", linkCfg); err != nil {
		t.Fatal(err)
	}

	descs := map[string]*object.Descriptor{
		"srcA": {
			Name: names.MustParse("/cam/a"), Size: 100_000, Source: "srcA",
			Labels: []string{"shared"}, Validity: time.Minute, ProbTrue: 0.8,
		},
		"srcC": {
			Name: names.MustParse("/cam/c"), Size: 200_000, Source: "srcC",
			Labels: []string{"shared"}, Validity: time.Minute, ProbTrue: 0.8,
		},
	}
	all := []object.Descriptor{*descs["srcA"], *descs["srcC"]}
	auth := trust.NewAuthority()
	meta := boolexpr.MetaTable{
		"shared": {Cost: 100_000, ProbTrue: 0.8, Validity: time.Minute},
	}

	r := &memberRig{sched: sched, net: net, nodes: make(map[string]*Node)}
	regs := make(map[string]*metrics.Registry)
	for _, id := range []string{"srcA", "mid", "srcC"} {
		regs[id] = metrics.NewRegistry()
		node, err := New(Config{
			ID:                id,
			Transport:         transport.NewSim(net, id),
			Router:            net,
			Timers:            schedTimers{sched},
			Scheme:            SchemeLVF,
			Directory:         NewDirectory(all),
			Meta:              meta,
			World:             world,
			Authority:         auth,
			Signer:            auth.Register(id, []byte("k-"+id)),
			Policy:            trust.TrustAll(),
			Descriptor:        descs[id],
			CacheBytes:        8 << 20,
			DisablePrefetch:   true,
			HeartbeatInterval: time.Second,
			HeartbeatMiss:     3,
			Metrics:           regs[id],
		})
		if err != nil {
			t.Fatal(err)
		}
		r.nodes[id] = node
	}
	return r, regs
}

// The status endpoint must serve a JSON snapshot whose directory version,
// peer liveness map and eviction/retry counters reflect a membership
// eviction, alongside the cache hit ratio and latency histograms.
func TestStatusEndpointAfterEviction(t *testing.T) {
	r, regs := buildStatusRig(t, staticWorld{"shared": true})

	// srcA (preferred: smaller object) is dead from the start, so mid's
	// failure detector evicts it and the query fails over to srcC.
	if err := r.net.SetNodeDown("srcA", true); err != nil {
		t.Fatal(err)
	}
	mid := r.nodes["mid"]
	r.sched.After(time.Second, func() {
		if _, err := mid.QueryInit(boolexpr.ToDNF(boolexpr.MustParse("shared")), 30*time.Second); err != nil {
			t.Errorf("QueryInit: %v", err)
		}
	})
	r.run(t, 40*time.Second)

	srv := httptest.NewServer(mid.StatusMux())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var s StatusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatalf("decoding statusz: %v", err)
	}

	if s.Node != "mid" {
		t.Errorf("node = %q, want mid", s.Node)
	}
	if s.DirectoryVersion == 0 {
		t.Error("directory version missing from snapshot")
	}
	if got := uint64(s.Metrics.Gauges["directory.version"]); got != s.DirectoryVersion {
		t.Errorf("directory.version gauge = %d, want %d", got, s.DirectoryVersion)
	}

	a, ok := s.Peers["srcA"]
	if !ok {
		t.Fatalf("evicted srcA missing from peers: %v", s.Peers)
	}
	if a.Present || a.Alive {
		t.Errorf("evicted srcA should be absent and dead: %+v", a)
	}
	c, ok := s.Peers["srcC"]
	if !ok || !c.Present || !c.Alive {
		t.Errorf("healthy srcC should be present and alive: %+v (found %v)", c, ok)
	}

	if s.Stats.Evictions == 0 {
		t.Error("eviction counter missing from stats")
	}
	if s.Metrics.Counter("membership.evictions") == 0 {
		t.Error("membership.evictions counter not mirrored into metrics")
	}
	if s.CacheHitRatio < 0 || s.CacheHitRatio > 1 {
		t.Errorf("cache hit ratio out of range: %v", s.CacheHitRatio)
	}
	for _, h := range []string{"query.fetch_latency_s", "query.decision_age_s"} {
		hs, ok := s.Metrics.Histograms[h]
		if !ok {
			t.Errorf("histogram %s missing from snapshot", h)
			continue
		}
		if hs.Count == 0 {
			t.Errorf("histogram %s empty after a resolved query", h)
		}
	}

	// The auxiliary debug handlers share the mux.
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		dr, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		dr.Body.Close()
		if dr.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d", path, dr.StatusCode)
		}
	}

	// The eviction is also visible on the registry directly (what athenad
	// would report without an HTTP round-trip).
	if regs["mid"].Snapshot().Counter("membership.evictions") == 0 {
		t.Error("registry snapshot lost the eviction")
	}
}

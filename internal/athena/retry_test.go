package athena

import (
	"testing"
	"time"

	"athena/internal/boolexpr"
	"athena/internal/core"
)

// A link outage eats the forwarded request; the retransmission layer must
// recover the query before its deadline. Fully deterministic: the outage
// window is scheduled, no loss randomness is involved.
func TestRetransmissionRecoversFromOutage(t *testing.T) {
	world := staticWorld{"lc1": true, "lc2": true}
	r := buildRig(t, SchemeLVF, world, nil)
	// nodeB -> nodeC is down when the forwarded request crosses it, and
	// back up well before the retry window lapses.
	if err := r.net.ScheduleLinkOutage("nodeB", "nodeC", tBase, 4*time.Second); err != nil {
		t.Fatal(err)
	}
	expr := boolexpr.ToDNF(boolexpr.MustParse("lc1 & lc2"))
	if _, err := r.nodes["nodeA"].QueryInit(expr, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	r.run(t, 25*time.Second)

	results := r.nodes["nodeA"].Results()
	if len(results) != 1 {
		t.Fatalf("results = %d, want 1", len(results))
	}
	if results[0].Status != core.ResolvedTrue {
		t.Fatalf("status = %v, want resolved-true (retransmission did not recover the lost request)", results[0].Status)
	}
	if got := r.nodes["nodeB"].Stats().Retransmits; got < 1 {
		t.Errorf("nodeB retransmits = %d, want >= 1", got)
	}
	if got := r.nodes["nodeA"].Stats().RequestTimeouts; got < 1 {
		t.Errorf("nodeA request timeouts = %d, want >= 1", got)
	}
}

// The same outage with retries disabled strands the query: the lost
// request is never re-forwarded and the only safety net (the fixed
// RequestTimeout) lies beyond the deadline.
func TestOutageWithoutRetriesExpires(t *testing.T) {
	world := staticWorld{"lc1": true, "lc2": true}
	r := buildRig(t, SchemeLVF, world, func(c *Config) { c.DisableRetries = true })
	if err := r.net.ScheduleLinkOutage("nodeB", "nodeC", tBase, 4*time.Second); err != nil {
		t.Fatal(err)
	}
	expr := boolexpr.ToDNF(boolexpr.MustParse("lc1 & lc2"))
	if _, err := r.nodes["nodeA"].QueryInit(expr, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	r.run(t, 25*time.Second)

	results := r.nodes["nodeA"].Results()
	if len(results) != 1 {
		t.Fatalf("results = %d, want 1", len(results))
	}
	if results[0].Status != core.Expired {
		t.Fatalf("status = %v, want expired (retries were disabled)", results[0].Status)
	}
	if got := r.nodes["nodeB"].Stats().Retransmits; got != 0 {
		t.Errorf("nodeB retransmits = %d, want 0 with retries disabled", got)
	}
}

// Origin-side backoff: with the only covering source churned out for
// good, the origin's re-requests back off exponentially — the query
// expires without flooding the network with retries.
func TestBackoffBoundsRequestVolume(t *testing.T) {
	world := staticWorld{"lc1": true}
	r := buildRig(t, SchemeLVF, world, nil)
	if err := r.net.SetNodeDown("nodeC", true); err != nil {
		t.Fatal(err)
	}
	expr := boolexpr.ToDNF(boolexpr.MustParse("lc1"))
	if _, err := r.nodes["nodeA"].QueryInit(expr, 40*time.Second); err != nil {
		t.Fatal(err)
	}
	r.run(t, 45*time.Second)

	results := r.nodes["nodeA"].Results()
	if len(results) != 1 || results[0].Status != core.Expired {
		t.Fatalf("results = %+v, want one expired query", results)
	}
	// Backoff bounds the request volume: attempts at ~6, 12, 24, 30s...
	// within a 40s deadline that is at most a handful of re-requests, not
	// one per pump.
	sent := r.nodes["nodeA"].Stats().RequestsSent
	if sent < 2 || sent > 8 {
		t.Errorf("origin sent %d requests; want a small backoff-bounded number (2..8)", sent)
	}
}

package athena

import (
	"fmt"
	"testing"
	"time"

	"athena/internal/names"
	"athena/internal/object"
)

func shardDesc(source, name string, labels ...string) object.Descriptor {
	return object.Descriptor{
		Source: source, Name: names.MustParse(name), Size: 100,
		Labels: labels, Validity: time.Minute, ProbTrue: 0.9,
	}
}

func shardAdvert(source, name string, seq uint64, labels ...string) Advertisement {
	return advertisementOf(shardDesc(source, name, labels...), seq)
}

func routerView(n int) []string {
	view := make([]string, n)
	for i := range view {
		view[i] = fmt.Sprintf("n%d", i)
	}
	return view
}

// Before the first refresh the nil snapshot keeps everything; afterwards
// retention follows ownership, with the node's own source always kept.
func TestShardRouterKeep(t *testing.T) {
	sr := NewShardRouter("n0", 8, 2, 16)
	foreign := shardDesc("n9", "/grid/g1/n9", "s09")
	if !sr.Keep(foreign) {
		t.Fatal("nil snapshot must keep everything")
	}
	if _, changed := sr.Refresh(routerView(16)); !changed {
		t.Fatal("first refresh must report a change")
	}
	if !sr.Keep(shardDesc("n0", "/grid/g0/n0", "s00")) {
		t.Error("own source must always be kept")
	}
	// A descriptor is kept iff its name shard or any label shard is owned.
	owned := make(map[int]bool)
	for _, s := range sr.OwnedShards() {
		owned[s] = true
	}
	for i := 0; i < 16; i++ {
		d := shardDesc(fmt.Sprintf("n%d", i+100), fmt.Sprintf("/grid/g%d/x%d", i, i), fmt.Sprintf("s%02d", i))
		want := owned[sr.smap.OfName(d.Name)] || owned[sr.smap.OfKey(d.Labels[0])]
		if got := sr.Keep(d); got != want {
			t.Errorf("Keep(%s) = %v, want %v", d.Name, got, want)
		}
	}
}

// Refresh reports exactly the newly gained shards, and a shrinking view
// reassigns the lost node's shards to survivors.
func TestShardRouterRefreshTracksOwnership(t *testing.T) {
	sr := NewShardRouter("n0", 32, 3, 16)
	added, changed := sr.Refresh(routerView(8))
	if !changed || len(added) != len(sr.OwnedShards()) {
		t.Fatalf("first refresh: added=%v changed=%v owned=%v", added, changed, sr.OwnedShards())
	}
	if _, changed := sr.Refresh(routerView(8)); changed {
		t.Fatal("unchanged view must not report a change")
	}
	// Drop half the fleet: n0 should pick up some of the orphaned shards.
	added, changed = sr.Refresh(routerView(4))
	if !changed || len(added) == 0 {
		t.Fatalf("shrunk view: added=%v changed=%v", added, changed)
	}
	for _, s := range sr.OwnedShards() {
		reps := sr.Replicas(s)
		if len(reps) != 3 {
			t.Fatalf("shard %d replicas = %v, want 3", s, reps)
		}
		found := false
		for _, r := range reps {
			if r == "n0" {
				found = true
			}
		}
		if !found {
			t.Fatalf("owned shard %d replica set %v misses n0", s, reps)
		}
	}
}

// SharedShards is the intersection of two nodes' owned sets — the scope of
// their anti-entropy — and InShards admits exactly the descriptors whose
// name or label shard falls in the given set.
func TestShardRouterSharedAndScope(t *testing.T) {
	sr := NewShardRouter("n0", 16, 3, 16)
	sr.Refresh(routerView(6))
	shared := sr.SharedShards("n1")
	sharedSet := make(map[int]bool)
	for _, s := range shared {
		sharedSet[int(s)] = true
	}
	for _, s := range sr.OwnedShards() {
		if sr.smap.Owns("n1", s, routerView(6), 3) != sharedSet[s] {
			t.Fatalf("SharedShards mismatch at shard %d", s)
		}
	}
	include := sr.InShards(shared)
	for i := 0; i < 12; i++ {
		d := shardDesc(fmt.Sprintf("n%d", i), fmt.Sprintf("/grid/g%d/n%d", i, i), fmt.Sprintf("s%02d", i))
		want := sharedSet[sr.smap.OfName(d.Name)] || sharedSet[sr.smap.OfKey(d.Labels[0])]
		if got := include(d); got != want {
			t.Errorf("InShards(%s) = %v, want %v", d.Name, got, want)
		}
	}
}

// Begin dedups by label, Complete returns the union of waiting queries
// exactly once, and a duplicate reply is rejected.
func TestShardRouterLookupLifecycle(t *testing.T) {
	sr := NewShardRouter("n0", 8, 2, 16)
	sr.Refresh(routerView(6))
	msg, ok := sr.Begin("sx", "q1")
	if !ok || msg == nil {
		t.Fatal("first Begin must start a lookup")
	}
	if msg.From != "n0" || msg.To == "n0" || msg.Label != "sx" {
		t.Fatalf("lookup message = %+v", msg)
	}
	if dup, ok := sr.Begin("sx", "q2"); ok || dup != nil {
		t.Fatal("second Begin for the same label must join, not re-send")
	}
	queries, ok := sr.Complete(msg.Nonce, []Advertisement{
		shardAdvert("n3", "/grid/g3/n3", 1, "sx"),
	})
	if !ok || len(queries) != 2 || queries[0] != "q1" || queries[1] != "q2" {
		t.Fatalf("Complete = %v, %v; want [q1 q2]", queries, ok)
	}
	if _, ok := sr.Complete(msg.Nonce, nil); ok {
		t.Fatal("duplicate reply must be rejected")
	}
	if srcs, ok := sr.CachedSources("sx"); !ok || len(srcs) != 1 || srcs[0] != "n3" {
		t.Fatalf("CachedSources = %v, %v", srcs, ok)
	}
	if d, ok := sr.Desc("n3"); !ok || d.Source != "n3" {
		t.Fatalf("Desc(n3) = %+v, %v", d, ok)
	}
	// Empty replies are not cached: the label gets re-asked next pump.
	msg2, ok := sr.Begin("sy", "q3")
	if !ok {
		t.Fatal("Begin sy")
	}
	if _, ok := sr.Complete(msg2.Nonce, nil); !ok {
		t.Fatal("empty reply still completes the lookup")
	}
	if _, ok := sr.CachedSources("sy"); ok {
		t.Fatal("empty result must not be cached")
	}
}

// Retry walks the replica set and gives up after the try budget; a
// completed lookup stops retrying.
func TestShardRouterRetryWalksReplicas(t *testing.T) {
	sr := NewShardRouter("n0", 8, 3, 16)
	sr.Refresh(routerView(6))
	msg, ok := sr.Begin("sx", "q1")
	if !ok {
		t.Fatal("Begin")
	}
	seen := map[string]bool{msg.To: true}
	tries := 1
	for {
		next, ok := sr.Retry(msg.Nonce)
		if !ok {
			break
		}
		if next.To == "n0" {
			t.Fatal("retry targeted self")
		}
		seen[next.To] = true
		tries++
		if tries > 2*shardLookupMaxTries {
			t.Fatal("retry never exhausted")
		}
	}
	if len(seen) < 2 {
		t.Fatalf("retries never advanced past the primary: %v", seen)
	}
	// The exhausted lookup is gone: a fresh Begin starts over.
	if _, ok := sr.Begin("sx", "q1"); !ok {
		t.Fatal("exhausted lookup must allow a fresh Begin")
	}
}

// SourceDown invalidates cache entries naming the dead source (dropping
// descriptor refcounts) and re-routes pending lookups around it.
func TestShardRouterSourceDown(t *testing.T) {
	sr := NewShardRouter("n0", 8, 3, 16)
	sr.Refresh(routerView(6))
	m1, _ := sr.Begin("sa", "q1")
	sr.Complete(m1.Nonce, []Advertisement{
		shardAdvert("n3", "/grid/g3/n3", 1, "sa"),
		shardAdvert("n4", "/grid/g4/n4", 1, "sa"),
	})
	m2, _ := sr.Begin("sb", "q2")
	sr.Complete(m2.Nonce, []Advertisement{shardAdvert("n4", "/grid/g4/n4", 1, "sb")})

	m3, ok := sr.Begin("sc", "q3")
	if !ok {
		t.Fatal("Begin sc")
	}
	resend := sr.SourceDown(m3.To)
	if len(resend) != 1 || resend[0].To == m3.To || resend[0].Label != "sc" {
		t.Fatalf("SourceDown resend = %+v", resend)
	}

	sr.SourceDown("n4")
	if _, ok := sr.CachedSources("sa"); ok {
		t.Error("cache entry naming the dead source survived")
	}
	if _, ok := sr.CachedSources("sb"); ok {
		t.Error("second cache entry naming the dead source survived")
	}
	if _, ok := sr.Desc("n4"); ok {
		t.Error("dead source descriptor survived")
	}
	if _, ok := sr.Desc("n3"); ok {
		t.Error("descriptor leaked after its last cache entry was invalidated")
	}
}

// The lookup cache evicts its least-recently-touched entry first, and
// descriptor refcounts follow the entries.
func TestShardRouterCacheLRU(t *testing.T) {
	sr := NewShardRouter("n0", 8, 2, 2)
	sr.Refresh(routerView(6))
	install := func(label, src string) {
		m, ok := sr.Begin(label, "q")
		if !ok {
			t.Fatalf("Begin %s", label)
		}
		if _, ok := sr.Complete(m.Nonce, []Advertisement{shardAdvert(src, "/grid/g1/"+src, 1, label)}); !ok {
			t.Fatalf("Complete %s", label)
		}
	}
	install("la", "n3")
	install("lb", "n4")
	if _, ok := sr.CachedSources("la"); !ok { // touch la: lb becomes LRU
		t.Fatal("la missing")
	}
	install("lc", "n5")
	if _, ok := sr.CachedSources("lb"); ok {
		t.Error("lb should have been evicted as LRU")
	}
	if _, ok := sr.CachedSources("la"); !ok {
		t.Error("la evicted despite recent touch")
	}
	if _, ok := sr.Desc("n4"); ok {
		t.Error("evicted entry's descriptor survived")
	}
	if sr.CacheLen() != 2 {
		t.Errorf("CacheLen = %d, want 2", sr.CacheLen())
	}
}

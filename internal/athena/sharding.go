package athena

import (
	"sort"

	"athena/internal/cover"
	"athena/internal/object"
)

// This file wires the ShardRouter (shardrouter.go) into the node: the
// retention-driven shard refresh and backfill, the query-path wrappers
// that resolve owned labels from the local directory and route the rest,
// and the handlers for the four shard wire messages. Everything here is
// inert unless Config.Shards > 0.

// shardRefresh recomputes shard ownership when the directory version moved
// (the membership view is derived from it, mirroring refreshSampler),
// refilters the directory on an ownership change, and backfills newly
// owned shards from a standing co-replica — the local copies are thin, and
// only a scoped sync can restore the payloads. Callers hold n.mu.
func (n *Node) shardRefresh() {
	if !n.shardOn {
		return
	}
	v := n.dir.Version()
	if v == n.shardVer {
		return
	}
	n.shardVer = v
	added, changed := n.shardRouter.Refresh(n.dir.Sources())
	if !changed {
		return
	}
	n.dir.Refilter()
	byPeer := make(map[string][]uint32)
	for _, s := range added {
		for _, r := range n.shardRouter.Replicas(s) {
			if r != n.id {
				byPeer[r] = append(byPeer[r], uint32(s))
				break
			}
		}
	}
	peers := make([]string, 0, len(byPeer))
	for p := range byPeer {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	for _, peer := range peers {
		shards := byPeer[peer]
		req := &ShardSyncRequest{
			From:   n.id,
			To:     peer,
			Shards: shards,
			Seqs:   n.dir.SeqVectorScoped(n.shardRouter.InShards(shards)),
		}
		n.sendCtl(peer, req.WireSize(), req)
	}
}

// descriptorOf resolves a source's descriptor from the local directory,
// falling back to the router's lookup cache for remote sources whose
// records are thin here. Callers hold n.mu.
func (n *Node) descriptorOf(source string) (object.Descriptor, bool) {
	if desc, ok := n.dir.Descriptor(source); ok {
		return desc, true
	}
	if n.shardOn {
		return n.shardRouter.Desc(source)
	}
	return object.Descriptor{}, false
}

// selectSources is the sharded counterpart of Directory.SelectSources: the
// local directory is authoritative for labels whose home shard this node
// replicates, unowned labels resolve from the lookup cache, and cache
// misses start a routed ShardLookup on behalf of the query (whose selected
// set is recomputed when the reply lands). The greedy set cover then runs
// over the combined candidate pool. Callers hold n.mu.
func (n *Node) selectSources(queryID string, labels []string) []string {
	if !n.shardOn {
		return n.dir.SelectSources(labels)
	}
	candidateSet := make(map[string]bool)
	coverable := make([]string, 0, len(labels))
	for _, l := range labels {
		var srcs []string
		if n.shardRouter.OwnsLabel(l) {
			srcs = n.dir.SourcesFor(l)
		} else if cached, ok := n.shardRouter.CachedSources(l); ok {
			n.stats.ShardLookupHits++
			srcs = cached
		} else {
			n.startShardLookup(l, queryID)
			// Best-effort until the reply lands: whatever partial view the
			// local directory holds (own source, name-shard overlap).
			srcs = n.dir.SourcesFor(l)
		}
		if len(srcs) == 0 {
			continue
		}
		coverable = append(coverable, l)
		for _, s := range srcs {
			candidateSet[s] = true
		}
	}
	if len(coverable) == 0 {
		return nil
	}
	candidates := make([]string, 0, len(candidateSet))
	for s := range candidateSet {
		candidates = append(candidates, s)
	}
	sort.Strings(candidates)

	wanted := make(map[string]bool, len(coverable))
	for _, l := range coverable {
		wanted[l] = true
	}
	sources := make([]cover.Source, 0, len(candidates))
	for _, s := range candidates {
		desc, ok := n.descriptorOf(s)
		if !ok {
			continue
		}
		covers := make([]string, 0, len(desc.Labels))
		for _, l := range desc.Labels {
			if wanted[l] {
				covers = append(covers, l)
			}
		}
		sources = append(sources, cover.Source{ID: s, Cost: float64(desc.Size), Covers: covers})
	}
	picked, err := cover.Greedy(coverable, sources)
	if err != nil {
		// A candidate's descriptor went away between indexing and pricing;
		// fall back to the whole pool rather than dropping coverage.
		out := make([]string, len(sources))
		for i := range sources {
			out[i] = sources[i].ID
		}
		return out
	}
	out := make([]string, len(picked))
	for i, idx := range picked {
		out[i] = sources[idx].ID
	}
	sort.Strings(out)
	return out
}

// sourcesForLabel is the sharded counterpart of Directory.SourcesFor for
// the cmp scheme's fan-out-to-everyone retrieval. Callers hold n.mu.
func (n *Node) sourcesForLabel(q *localQuery, label string) []string {
	if !n.shardOn || n.shardRouter.OwnsLabel(label) {
		return n.dir.SourcesFor(label)
	}
	if cached, ok := n.shardRouter.CachedSources(label); ok {
		n.stats.ShardLookupHits++
		return cached
	}
	n.startShardLookup(label, q.engine.ID())
	return n.dir.SourcesFor(label)
}

// sourceForRouted resolves an unowned label from the lookup cache with the
// same preference rules as Directory.SourceForLabelExcluding: the query's
// selected set first, then any covering source; cheapest descriptor wins,
// ties to the smaller id; suspects are steered around when an alternative
// exists. A cache miss starts a routed lookup and falls back to the local
// directory's partial view. Callers hold n.mu.
func (n *Node) sourceForRouted(q *localQuery, label string) string {
	srcs, ok := n.shardRouter.CachedSources(label)
	if !ok {
		n.startShardLookup(label, q.engine.ID())
		if len(q.suspect) > 0 {
			if s := n.dir.SourceForLabelExcluding(label, q.selected, q.suspect); s != "" {
				return s
			}
		}
		return n.dir.SourceForLabel(label, q.selected)
	}
	n.stats.ShardLookupHits++
	prefSet := make(map[string]bool, len(q.selected))
	for _, p := range q.selected {
		prefSet[p] = true
	}
	pick := func(exclude map[string]bool) string {
		best := ""
		var bestSize int64
		consider := func(s string) {
			if exclude[s] {
				return
			}
			desc, have := n.descriptorOf(s)
			if !have {
				return
			}
			if best == "" || desc.Size < bestSize || (desc.Size == bestSize && s < best) {
				best, bestSize = s, desc.Size
			}
		}
		for _, s := range srcs {
			if prefSet[s] {
				consider(s)
			}
		}
		if best != "" {
			return best
		}
		for _, s := range srcs {
			consider(s)
		}
		return best
	}
	if len(q.suspect) > 0 {
		if s := pick(q.suspect); s != "" {
			return s
		}
	}
	return pick(nil)
}

// startShardLookup routes a lookup for an unowned label to its home
// shard's primary, deduplicated per label, with a retry timer that walks
// the replica set. Callers hold n.mu.
func (n *Node) startShardLookup(label, queryID string) {
	msg, ok := n.shardRouter.Begin(label, queryID)
	if !ok {
		return
	}
	n.stats.ShardLookups++
	n.sendCtl(msg.To, msg.WireSize(), msg)
	n.armShardRetry(msg.Nonce)
}

// armShardRetry re-sends a still-unanswered lookup to the next replica in
// rendezvous order after two protocol periods. Callers hold n.mu.
func (n *Node) armShardRetry(nonce uint64) {
	n.timers.After(2*n.hbInterval, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		msg, ok := n.shardRouter.Retry(nonce)
		if !ok {
			return
		}
		n.stats.ShardReroutes++
		n.sendCtl(msg.To, msg.WireSize(), msg)
		n.armShardRetry(nonce)
	})
}

// shardOnSourceDown reacts to an eviction or withdrawal: cached lookup
// results naming the source are invalidated and pending lookups targeting
// it are re-routed to the next replica. Callers hold n.mu.
func (n *Node) shardOnSourceDown(src string) {
	if !n.shardOn {
		return
	}
	for _, msg := range n.shardRouter.SourceDown(src) {
		n.stats.ShardReroutes++
		n.sendCtl(msg.To, msg.WireSize(), msg)
	}
}

// handleShardLookup serves a routed label lookup from the local directory
// (this replica owns the label's home shard; the index holds every
// covering advert). A stale view at the requester just gets whatever this
// replica has — the requester's retry walks on. Callers hold n.mu.
func (n *Node) handleShardLookup(from string, m *ShardLookup) {
	if !n.shardOn {
		return
	}
	if m.To != n.id {
		n.sendCtl(m.To, m.WireSize(), m)
		return
	}
	n.stats.ShardServed++
	reply := &ShardLookupReply{
		From:    n.id,
		To:      m.From,
		Label:   m.Label,
		Shard:   m.Shard,
		Nonce:   m.Nonce,
		Adverts: n.dir.AdvertsFor(m.Label),
	}
	n.sendCtl(m.From, reply.WireSize(), reply)
}

// handleShardLookupReply completes a pending lookup: the result is cached,
// and every query that was waiting re-selects its sources and pumps.
// Callers hold n.mu.
func (n *Node) handleShardLookupReply(from string, m *ShardLookupReply) {
	if !n.shardOn {
		return
	}
	if m.To != n.id {
		n.sendCtl(m.To, m.WireSize(), m)
		return
	}
	ids, ok := n.shardRouter.Complete(m.Nonce, m.Adverts)
	if !ok {
		return
	}
	for _, id := range ids {
		q, live := n.queries[id]
		if !live || q.recorded {
			continue
		}
		if n.scheme != SchemeCMP {
			q.selected = n.selectSources(id, q.engine.Expr().Labels())
		}
		n.pump(q)
	}
}

// handleShardSyncRequest answers a scoped anti-entropy request with the
// delta this replica holds within the requested shards, plus its own
// scoped vector for the push-back half. Callers hold n.mu.
func (n *Node) handleShardSyncRequest(from string, req *ShardSyncRequest) {
	if !n.shardOn {
		return
	}
	if req.To != n.id {
		n.sendCtl(req.To, req.WireSize(), req)
		return
	}
	include := n.shardRouter.InShards(req.Shards)
	resp := &ShardSyncResponse{
		From:    n.id,
		To:      req.From,
		Shards:  req.Shards,
		Adverts: n.dir.DeltaScoped(req.Seqs, include),
		Seqs:    n.dir.SeqVectorScoped(include),
	}
	n.sendCtl(req.From, resp.WireSize(), resp)
}

// handleShardSyncResponse applies the pull half of a scoped sync and
// pushes back whatever the responder's scoped vector shows it is still
// missing — both replicas end at the union of their records within the
// exchanged shards. Callers hold n.mu.
func (n *Node) handleShardSyncResponse(from string, resp *ShardSyncResponse) {
	if !n.shardOn {
		return
	}
	if resp.To != n.id {
		n.sendCtl(resp.To, resp.WireSize(), resp)
		return
	}
	n.applyAdverts(resp.Adverts, "")
	if len(resp.Seqs) > 0 {
		if push := n.dir.DeltaScoped(resp.Seqs, n.shardRouter.InShards(resp.Shards)); len(push) > 0 {
			g := &AdvertGossip{To: resp.From, Adverts: push}
			n.sendCtl(resp.From, g.WireSize(), g)
		}
	}
}

// ShardingEnabled reports whether the sharded directory is on.
func (n *Node) ShardingEnabled() bool { return n.shardOn }

// ShardInfo summarizes the node's shard state for /statusz.
type ShardInfo struct {
	// Shards is the configured shard count.
	Shards int `json:"shards"`
	// Replicas is the per-shard replication factor.
	Replicas int `json:"replicas"`
	// Owned lists the shards this node currently replicates.
	Owned []int `json:"owned"`
	// EntriesHeld counts directory records whose payload is held locally.
	EntriesHeld int `json:"entries_held"`
	// CacheLen counts cached remote lookup results.
	CacheLen int `json:"cache_len"`
	// Lookups / Served count routed lookups issued and answered here.
	Lookups int `json:"lookups"`
	Served  int `json:"served"`
}

// ShardInfo returns the node's shard state; ok is false when sharding is
// disabled.
func (n *Node) ShardInfo() (ShardInfo, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.shardOn {
		return ShardInfo{}, false
	}
	return ShardInfo{
		Shards:      n.shardRouter.smap.Shards(),
		Replicas:    n.shardRouter.rf,
		Owned:       n.shardRouter.OwnedShards(),
		EntriesHeld: n.dir.EntriesHeld(),
		CacheLen:    n.shardRouter.CacheLen(),
		Lookups:     n.stats.ShardLookups,
		Served:      n.stats.ShardServed,
	}, true
}

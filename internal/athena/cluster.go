package athena

import (
	"fmt"
	"math/rand"
	"time"

	"athena/internal/metrics"
	"athena/internal/netsim"
	"athena/internal/simclock"
	"athena/internal/transport"
	"athena/internal/trust"
	"athena/internal/workload"
)

// ClusterConfig tunes a simulated Athena deployment.
type ClusterConfig struct {
	// Scheme is the retrieval strategy all nodes run.
	Scheme Scheme
	// CacheBytes bounds each node's content store (default 8 MB;
	// negative = unbounded).
	CacheBytes int64
	// TrustFraction is the fraction of nodes whose annotations everyone
	// accepts (1.0 = trust all, the Figure 2/3 setting; ablation A1
	// lowers it).
	TrustFraction float64
	// EnablePrefetch turns on background prefetch pushes. Off by
	// default: ablation A2 shows the push model costs more bandwidth
	// than it saves in the Section VII workload.
	EnablePrefetch bool
	// IssueStagger spreads query issuance uniformly over this window so
	// all queries do not start in lockstep (default 5s).
	IssueStagger time.Duration
	// RunSlack is extra simulated time after the last deadline before
	// the run stops (default 5s).
	RunSlack time.Duration
	// MaxEvents bounds the simulation (default 50M events).
	MaxEvents int
	// BatchWindow / SequentialWindow / RequestTimeout / SensorNoise /
	// ConfidenceTarget pass through to every node's Config.
	BatchWindow      int
	SequentialWindow int
	RequestTimeout   time.Duration
	SensorNoise      float64
	ConfidenceTarget float64
	// CoalesceWindow / CoalesceBytes enable data-plane batching on every
	// node (ablation A11): same-destination requests and data coalesce
	// into RequestBatch/DataBatch frames for up to CoalesceWindow or
	// until CoalesceBytes are queued. Zero window (the default) keeps the
	// one-frame-per-message data plane, byte for byte.
	CoalesceWindow time.Duration
	CoalesceBytes  int64
	// RetryInterval / RetryBackoff / MaxRetries tune the recovery layer
	// on every node; DisableRetries turns it off (ablation A6 baseline).
	RetryInterval  time.Duration
	RetryBackoff   float64
	MaxRetries     int
	RetryBandwidth float64
	DisableRetries bool
	// LinkLoss injects the given per-message loss probability on every
	// link (ablation A6). Draws are seeded from the scenario seed, so
	// runs stay deterministic.
	LinkLoss float64
	// HeartbeatInterval enables the live-membership layer (ablation A7):
	// every node gets its own directory replica fed by advertisements,
	// floods heartbeats, evicts silent sources after HeartbeatMiss missed
	// beats, re-sources their in-flight fetches, and reconciles replicas
	// by anti-entropy. Zero (the default) keeps the pre-membership shared
	// static directory.
	HeartbeatInterval time.Duration
	// HeartbeatMiss is the failure detector tolerance in missed beats
	// (default 3).
	HeartbeatMiss int
	// GossipFanout switches the membership layer from flooded heartbeats
	// to SWIM-style gossip (ablation A8): each interval every node probes
	// this many sampled peers, failure detection goes through indirect
	// ping-req and a suspicion timeout, and membership updates ride as
	// piggybacked deltas on the probe traffic. Zero (the default) keeps
	// the flood protocol. Requires HeartbeatInterval > 0.
	GossipFanout int
	// GossipIndirect is the number of ping-req intermediaries consulted
	// before suspecting a silent peer (default 2).
	GossipIndirect int
	// SuspectTimeout is how long a suspect may stay silent before
	// eviction (default 3×HeartbeatMiss heartbeat intervals; see
	// Config.SuspectTimeout for why the sampled detector needs the
	// longer window).
	SuspectTimeout time.Duration
	// GossipRetransmit is the piggyback budget multiplier λ: each update
	// is retransmitted λ·⌈log₂(n+1)⌉ times (default 3).
	GossipRetransmit int
	// Shards partitions every node's directory replica into this many
	// name-prefix shards (ablation A9): each shard is replicated on
	// ShardReplicas nodes chosen by rendezvous hashing, non-owned payloads
	// are thinned out, and label lookups outside the owned shards are
	// routed to shard owners. Zero (the default) keeps the full-replica
	// directory. Requires GossipFanout > 0.
	Shards int
	// ShardReplicas is the per-shard replication factor (default 3).
	ShardReplicas int
	// ChurnEvents schedules this many deterministic node outages across
	// the run (drawn from the scenario seed). Zero disables churn.
	ChurnEvents int
	// ChurnOutage is each churned node's downtime (default 30s).
	ChurnOutage time.Duration
	// Metrics is the shared fleet registry every node mirrors its activity
	// into. Nil (the default) makes NewCluster create one, so Outcome
	// snapshots are always populated; set DisableMetrics to opt out
	// entirely and run the uninstrumented (nil-instrument) fast path.
	Metrics        *metrics.Registry
	DisableMetrics bool
	// Workers selects the simulation engine. Zero (the default) runs the
	// sequential reference scheduler — the pre-parallel event loop,
	// byte-identical to earlier releases. Any positive value runs the
	// parallel kernel with that many worker goroutines; kernel outcomes
	// are a pure function of the seed, identical at every worker count,
	// so Workers only changes wall-clock time.
	Workers int
}

// Cluster is a fully wired simulated Athena deployment running a
// workload scenario.
type Cluster struct {
	Scenario *workload.Scenario
	// Scheduler is the sequential engine's event loop; nil when the
	// cluster runs on the parallel kernel (Workers > 0), in which case
	// Kernel is set instead. Network.RunUntil drives either.
	Scheduler *simclock.Scheduler
	Kernel    *simclock.Kernel
	Network   *netsim.Network
	Nodes     map[string]*Node
	Authority *trust.Authority
	Directory *Directory
	// Metrics is the fleet registry shared by every node (nil when
	// DisableMetrics was set).
	Metrics *metrics.Registry

	cfg ClusterConfig
}

// NewCluster builds the deployment: network topology, one Athena node per
// placement, signing identities, trust policies, and the shared directory.
func NewCluster(s *workload.Scenario, cfg ClusterConfig) (*Cluster, error) {
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 8 << 20
	}
	if cfg.TrustFraction == 0 {
		cfg.TrustFraction = 1
	}
	if cfg.IssueStagger <= 0 {
		cfg.IssueStagger = 5 * time.Second
	}
	if cfg.RunSlack <= 0 {
		cfg.RunSlack = 5 * time.Second
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 50_000_000
	}
	if cfg.DisableMetrics {
		cfg.Metrics = nil
	} else if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}

	var (
		sched *simclock.Scheduler
		kern  *simclock.Kernel
		net   *netsim.Network
	)
	if cfg.Workers > 0 {
		kern = simclock.NewKernel(s.Epoch, simclock.KernelOpts{Workers: cfg.Workers, Seed: uint64(s.Config.Seed)})
		net = netsim.NewParallel(kern)
	} else {
		sched = simclock.New(s.Epoch)
		net = netsim.New(sched)
	}
	if err := s.BuildNetwork(net); err != nil {
		return nil, err
	}
	if cfg.LinkLoss > 0 {
		net.SeedFailures(s.Config.Seed + 0xfa17)
		if err := net.SetLoss(cfg.LinkLoss); err != nil {
			return nil, err
		}
	}
	dir := NewDirectory(s.Sources)
	auth := trust.NewAuthority()

	// Trusted-annotator set: the first TrustFraction of nodes (by index)
	// are universally trusted; others' labels are rejected by consumers.
	trusted := make([]string, 0, len(s.Placements))
	cut := int(cfg.TrustFraction * float64(len(s.Placements)))
	for i, p := range s.Placements {
		if i < cut {
			trusted = append(trusted, p.ID)
		}
	}
	policy := trust.TrustOnly(trusted...)
	if cfg.TrustFraction >= 1 {
		policy = trust.TrustAll()
	}

	c := &Cluster{
		Scenario:  s,
		Scheduler: sched,
		Kernel:    kern,
		Network:   net,
		Nodes:     make(map[string]*Node, len(s.Placements)),
		Authority: auth,
		Directory: dir,
		Metrics:   cfg.Metrics,
		cfg:       cfg,
	}

	for i := range s.Placements {
		p := s.Placements[i]
		desc := s.Sources[i]
		signer := auth.Register(p.ID, []byte("athena-secret-"+p.ID))
		// With membership on, every node maintains its own directory
		// replica (converged by gossip and anti-entropy); the static mode
		// shares one immutable-in-practice directory, as before.
		nodeDir := dir
		if cfg.HeartbeatInterval > 0 {
			nodeDir = NewDirectory(s.Sources)
		}
		// Each node's timers live on its own lane in kernel mode, so its
		// callbacks always execute with the rest of the node's events.
		var timers Timers = schedTimers{sched}
		if kern != nil {
			timers = laneTimers{net.LaneOf(p.ID)}
		}
		node, err := New(Config{
			ID:                p.ID,
			Transport:         transport.NewSim(net, p.ID),
			Router:            net,
			Timers:            timers,
			Scheme:            cfg.Scheme,
			Directory:         nodeDir,
			Meta:              s.Meta,
			World:             s.World,
			Authority:         auth,
			Signer:            signer,
			Policy:            policy,
			Descriptor:        &desc,
			CacheBytes:        cfg.CacheBytes,
			DisablePrefetch:   !cfg.EnablePrefetch,
			BatchWindow:       cfg.BatchWindow,
			SequentialWindow:  cfg.SequentialWindow,
			RequestTimeout:    cfg.RequestTimeout,
			CoalesceWindow:    cfg.CoalesceWindow,
			CoalesceBytes:     cfg.CoalesceBytes,
			SensorNoise:       cfg.SensorNoise,
			ConfidenceTarget:  cfg.ConfidenceTarget,
			RetryInterval:     cfg.RetryInterval,
			RetryBandwidth:    cfg.RetryBandwidth,
			RetryBackoff:      cfg.RetryBackoff,
			MaxRetries:        cfg.MaxRetries,
			DisableRetries:    cfg.DisableRetries,
			HeartbeatInterval: cfg.HeartbeatInterval,
			HeartbeatMiss:     cfg.HeartbeatMiss,
			GossipFanout:      cfg.GossipFanout,
			GossipIndirect:    cfg.GossipIndirect,
			SuspectTimeout:    cfg.SuspectTimeout,
			GossipRetransmit:  cfg.GossipRetransmit,
			GossipSeed:        s.Config.Seed,
			Shards:            cfg.Shards,
			ShardReplicas:     cfg.ShardReplicas,
			Metrics:           cfg.Metrics,
		})
		if err != nil {
			return nil, fmt.Errorf("athena: node %s: %w", p.ID, err)
		}
		c.Nodes[p.ID] = node
	}
	if cfg.HeartbeatInterval > 0 {
		// A node returning from an outage re-announces itself through the
		// same Rejoin path a daemon would use after reconnecting.
		net.OnChurn(func(id string, up bool) {
			if up {
				if node, ok := c.Nodes[id]; ok {
					node.Rejoin()
				}
			}
		})
	}
	return c, nil
}

// schedTimers adapts the simulation scheduler to the Timers interface.
type schedTimers struct{ s *simclock.Scheduler }

func (t schedTimers) After(d time.Duration, fn func()) { t.s.After(d, fn) }

func (t schedTimers) AfterArg(d time.Duration, fn func(any), arg any) { t.s.AfterCall(d, fn, arg) }

// laneTimers adapts a node's kernel lane to the Timers interface.
type laneTimers struct{ l *simclock.Lane }

func (t laneTimers) After(d time.Duration, fn func()) { t.l.After(d, fn) }

func (t laneTimers) AfterArg(d time.Duration, fn func(any), arg any) { t.l.AfterCall(d, fn, arg) }

// Outcome aggregates a finished run.
type Outcome struct {
	// Scheme is the strategy that ran.
	Scheme Scheme
	// QueriesIssued and QueriesResolved give the Figure 2 resolution
	// ratio (resolved = a decision, true or false, was reached by the
	// deadline on fresh data).
	QueriesIssued, QueriesResolved int
	// ResolvedTrue / ResolvedFalse split the resolutions.
	ResolvedTrue, ResolvedFalse int
	// TotalBytes is the Figure 3 measurement: all bytes transmitted.
	TotalBytes int64
	// MeanLatency is the mean issue-to-decision latency of resolved
	// queries.
	MeanLatency time.Duration
	// Node aggregates per-node counters.
	Node Stats
	// Metrics is the fleet registry snapshot at the end of the run: cache
	// hit/miss/eviction counters, retry and failover counts, membership
	// events, and fetch-latency / decision-age histograms summed across all
	// nodes. Zero-valued when the cluster ran with DisableMetrics.
	Metrics metrics.Snapshot
}

// ResolutionRatio is resolved/issued (1 if nothing was issued).
func (o Outcome) ResolutionRatio() float64 {
	if o.QueriesIssued == 0 {
		return 1
	}
	return float64(o.QueriesResolved) / float64(o.QueriesIssued)
}

// CacheHitRatio is the fleet content-store hit ratio, counting approximate
// substitutions as hits (1 when the cache saw no lookups).
func (o Outcome) CacheHitRatio() float64 {
	hits := o.Metrics.Counter("cache.hits") + o.Metrics.Counter("cache.approx_hits")
	total := hits + o.Metrics.Counter("cache.misses")
	if total == 0 {
		return 1
	}
	return float64(hits) / float64(total)
}

// RetryCount sums the fleet's recovery-layer events: origin-side request
// timeouts and interest-layer retransmissions.
func (o Outcome) RetryCount() int64 {
	return o.Metrics.Counter("retry.timeouts") + o.Metrics.Counter("retry.retransmits")
}

// Run issues every scenario query (staggered deterministically), runs the
// simulation until all deadlines plus slack have passed, and aggregates
// the outcome.
func (c *Cluster) Run() (Outcome, error) {
	rng := rand.New(rand.NewSource(c.Scenario.Config.Seed + 0x5eed))
	var lastDeadline time.Time
	for _, qs := range c.Scenario.Queries {
		node, ok := c.Nodes[qs.Origin]
		if !ok {
			return Outcome{}, fmt.Errorf("athena: query origin %q has no node", qs.Origin)
		}
		offset := time.Duration(rng.Int63n(int64(c.cfg.IssueStagger)))
		deadlineAt := c.Scenario.Epoch.Add(offset).Add(qs.Deadline)
		if deadlineAt.After(lastDeadline) {
			lastDeadline = deadlineAt
		}
		expr := qs.Expr
		dl := qs.Deadline
		// AtNode keeps the injection on the origin's own lane in kernel
		// mode (and on the shared scheduler otherwise).
		err := c.Network.AtNode(qs.Origin, c.Scenario.Epoch.Add(offset), func() {
			if _, err := node.QueryInit(expr, dl); err != nil {
				panic(fmt.Sprintf("athena: QueryInit: %v", err))
			}
		})
		if err != nil {
			return Outcome{}, fmt.Errorf("athena: query injection: %w", err)
		}
	}

	if c.cfg.ChurnEvents > 0 {
		outage := c.cfg.ChurnOutage
		if outage <= 0 {
			outage = 30 * time.Second
		}
		start := c.Scenario.Epoch.Add(c.cfg.IssueStagger)
		window := lastDeadline.Sub(start) - outage
		if window <= 0 {
			window = c.cfg.IssueStagger
		}
		c.Network.ScheduleChurn(c.Scenario.Config.Seed+0xc4c4, c.cfg.ChurnEvents, start, window, outage)
	}

	stop := lastDeadline.Add(c.cfg.RunSlack)
	if err := c.Network.RunUntil(stop, c.cfg.MaxEvents); err != nil {
		return Outcome{}, fmt.Errorf("athena: simulation horizon: %w", err)
	}

	out := Outcome{Scheme: c.cfg.Scheme, TotalBytes: c.Network.Stats().BytesSent, Metrics: c.Metrics.Snapshot()}
	var latencySum time.Duration
	for _, node := range c.Nodes {
		st := node.Stats()
		out.Node.RequestsSent += st.RequestsSent
		out.Node.Refetches += st.Refetches
		out.Node.Retransmits += st.Retransmits
		out.Node.RequestTimeouts += st.RequestTimeouts
		out.Node.CacheAnswers += st.CacheAnswers
		out.Node.LabelAnswers += st.LabelAnswers
		out.Node.PrefetchPushes += st.PrefetchPushes
		out.Node.Annotations += st.Annotations
		out.Node.RoutingDrops += st.RoutingDrops
		out.Node.HeartbeatsSent += st.HeartbeatsSent
		out.Node.Evictions += st.Evictions
		out.Node.SyncExchanges += st.SyncExchanges
		out.Node.PingsSent += st.PingsSent
		out.Node.Suspicions += st.Suspicions
		out.Node.Refutations += st.Refutations
		out.Node.ControlMsgs += st.ControlMsgs
		out.Node.ControlBytes += st.ControlBytes
		out.Node.DataFrames += st.DataFrames
		out.Node.BatchesSent += st.BatchesSent
		out.Node.BatchedMsgs += st.BatchedMsgs
		out.Node.BatchBytesSaved += st.BatchBytesSaved
		out.QueriesIssued += st.QueriesIssued
		out.ResolvedTrue += st.ResolvedTrue
		out.ResolvedFalse += st.ResolvedFalse
		for _, r := range node.Results() {
			if r.Status.String() == "resolved-true" || r.Status.String() == "resolved-false" {
				latencySum += r.Finished.Sub(r.Issued)
			}
		}
	}
	out.QueriesResolved = out.ResolvedTrue + out.ResolvedFalse
	if out.QueriesResolved > 0 {
		out.MeanLatency = latencySum / time.Duration(out.QueriesResolved)
	}
	return out, nil
}

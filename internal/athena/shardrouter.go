package athena

import (
	"sort"
	"sync"
	"sync/atomic"

	"athena/internal/object"
	"athena/internal/shard"
)

// This file implements the routing half of the sharded directory
// (Config.Shards > 0): the ShardRouter tracks which shards this node
// replicates under the live membership view, drives the directory's
// retention filter so non-owned advertisement payloads are thinned out,
// caches remote lookup results in a bounded LRU, and manages the pending
// shard lookups the query path issues for labels this node does not own.
// Node-side wiring (handlers, query-path wrappers, backfill) lives in
// sharding.go.

// shardView is the router's lock-free ownership snapshot, swapped
// atomically on every Refresh. Directory.Advertise consults it through
// ShardRouter.Keep while holding the directory lock, and the canonical
// lock order (Node < ShardRouter < Directory) forbids taking the router
// lock there — hence the atomic pointer instead of sr.mu.
type shardView struct {
	owned map[int]bool
}

// shardCacheEntry is one remote lookup result: the sources covering a
// label, stamped for LRU eviction with a logical counter (wall-clock-free,
// so eviction order is deterministic under the simulator).
type shardCacheEntry struct {
	sources []string
	stamp   uint64
}

// refDesc reference-counts a remote source's descriptor across the cache
// entries that mention it, so descriptorOf keeps working until the last
// entry naming the source is evicted.
type refDesc struct {
	desc object.Descriptor
	refs int
}

// pendingShardLookup tracks one in-flight ShardLookup: the replica set it
// can be routed to (rendezvous order — index 0 is the shard's primary and
// the rest is the deterministic re-route order), the target currently
// tried, and the local queries waiting on the answer.
type pendingShardLookup struct {
	label   string
	shardID int
	nonce   uint64
	targets []string
	next    int
	tries   int
	queries map[string]bool
}

// shardLookupMaxTries bounds re-sends per pending lookup (cycling through
// the replica set) before the lookup is abandoned; the next query pump
// starts a fresh one.
const shardLookupMaxTries = 8

// ShardRouter owns the prefix→shard map, the rendezvous assignment of
// per-shard replica sets from the live membership view, the bounded LRU of
// remote lookup results, and the pending-lookup table. It is safe for
// concurrent use; in the canonical lock order it ranks between Node and
// Directory (Node < ShardRouter < Directory).
type ShardRouter struct {
	mu sync.Mutex

	smap *shard.Map
	rf   int
	self string

	view    atomic.Pointer[shardView]
	members []string // live view at last Refresh, sorted
	owned   []int    // owned shards at last Refresh, sorted

	cacheCap int
	stamp    uint64
	cache    map[string]*shardCacheEntry
	descs    map[string]*refDesc

	nonce   uint64
	pending map[string]*pendingShardLookup // by label
	byNonce map[uint64]*pendingShardLookup
}

// NewShardRouter builds a router for the given node over a fixed shard
// count with the given replication factor and lookup-cache capacity.
func NewShardRouter(self string, shards, rf, cacheCap int) *ShardRouter {
	return &ShardRouter{
		smap:     shard.NewMap(shards, 0),
		rf:       rf,
		self:     self,
		cacheCap: cacheCap,
		cache:    make(map[string]*shardCacheEntry),
		descs:    make(map[string]*refDesc),
		pending:  make(map[string]*pendingShardLookup),
		byNonce:  make(map[uint64]*pendingShardLookup),
	}
}

// Keep is the directory retention filter: keep the full payload when the
// advertisement is this node's own, or when any of its shards — the name
// prefix's, or any coverage label's home — is replicated here. Labels hash
// to a home shard of their own so a label query routes to ONE shard whose
// owners hold every covering advert. Called under the directory lock; it
// must take no locks, so it reads the atomic ownership snapshot. Before
// the first Refresh the snapshot is nil and everything is kept.
func (sr *ShardRouter) Keep(desc object.Descriptor) bool {
	if desc.Source == sr.self {
		return true
	}
	v := sr.view.Load()
	if v == nil {
		return true
	}
	if v.owned[sr.smap.OfName(desc.Name)] {
		return true
	}
	for _, l := range desc.Labels {
		if v.owned[sr.smap.OfKey(l)] {
			return true
		}
	}
	return false
}

// Refresh recomputes shard ownership from the live membership view and
// swaps the retention snapshot. It returns the shards this node gained
// (the caller backfills them from a co-replica) and whether ownership
// changed at all (the caller refilters the directory then).
func (sr *ShardRouter) Refresh(members []string) (added []int, changed bool) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	owned := sr.smap.OwnedBy(sr.self, members, sr.rf)
	prev := make(map[int]bool, len(sr.owned))
	for _, s := range sr.owned {
		prev[s] = true
	}
	ownedSet := make(map[int]bool, len(owned))
	for _, s := range owned {
		ownedSet[s] = true
		if !prev[s] {
			added = append(added, s)
		}
	}
	// The first refresh always counts as a change: until then the nil
	// snapshot kept every payload, and the caller must refilter even when
	// this node turns out to own nothing.
	changed = sr.view.Load() == nil || len(added) > 0 || len(owned) != len(sr.owned)
	sr.members = append(sr.members[:0], members...)
	sort.Strings(sr.members)
	sr.owned = owned
	if changed {
		sr.view.Store(&shardView{owned: ownedSet})
	}
	return added, changed
}

// OwnsLabel reports whether this node replicates the label's home shard —
// the query path resolves owned labels from the local directory and routes
// the rest.
func (sr *ShardRouter) OwnsLabel(label string) bool {
	v := sr.view.Load()
	return v != nil && v.owned[sr.smap.OfKey(label)]
}

// OwnedShards returns the sorted shards this node replicates under the
// last refreshed view.
func (sr *ShardRouter) OwnedShards() []int {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return append([]int(nil), sr.owned...)
}

// Replicas returns shard s's replica set under the last refreshed view, in
// rendezvous (descending-weight) order.
func (sr *ShardRouter) Replicas(s int) []string {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return sr.smap.Replicas(s, sr.members, sr.rf)
}

// SharedShards returns the sorted shard ids both this node and peer
// replicate under the last refreshed view — the scope of an anti-entropy
// exchange between the two.
func (sr *ShardRouter) SharedShards(peer string) []uint32 {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	var out []uint32
	for _, s := range sr.owned {
		if sr.smap.Owns(peer, s, sr.members, sr.rf) {
			out = append(out, uint32(s))
		}
	}
	return out
}

// InShards returns an inclusion predicate for the scoped anti-entropy
// methods (Directory.DeltaScoped / SeqVectorScoped): an advertisement is
// in scope when its name-prefix shard or any label's home shard is in the
// given set. The predicate takes no locks (the shard map is immutable), so
// the directory may call it while holding its own lock.
func (sr *ShardRouter) InShards(shards []uint32) func(object.Descriptor) bool {
	set := make(map[int]bool, len(shards))
	for _, s := range shards {
		set[int(s)] = true
	}
	smap := sr.smap
	return func(desc object.Descriptor) bool {
		if set[smap.OfName(desc.Name)] {
			return true
		}
		for _, l := range desc.Labels {
			if set[smap.OfKey(l)] {
				return true
			}
		}
		return false
	}
}

// CachedSources returns the cached remote lookup result for a label,
// touching its LRU stamp on hit.
func (sr *ShardRouter) CachedSources(label string) ([]string, bool) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	e, ok := sr.cache[label]
	if !ok {
		return nil, false
	}
	sr.stamp++
	e.stamp = sr.stamp
	return e.sources, true
}

// Desc returns a remote source's descriptor learned through a lookup
// reply, while any cache entry still references the source.
func (sr *ShardRouter) Desc(src string) (object.Descriptor, bool) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if rd, ok := sr.descs[src]; ok {
		return rd.desc, true
	}
	return object.Descriptor{}, false
}

// Begin registers a lookup for an unowned label on behalf of a query. The
// first caller gets the ShardLookup to send (routed to the shard's
// primary); later callers for the same label just join the waiters.
// Returns ok=false with a nil message when the label's replica set is
// empty (nobody to ask).
func (sr *ShardRouter) Begin(label, queryID string) (msg *ShardLookup, ok bool) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if p, exists := sr.pending[label]; exists {
		if queryID != "" {
			p.queries[queryID] = true
		}
		return nil, false
	}
	s := sr.smap.OfKey(label)
	targets := sr.targetsFor(s)
	if len(targets) == 0 {
		return nil, false
	}
	sr.nonce++
	p := &pendingShardLookup{
		label:   label,
		shardID: s,
		nonce:   sr.nonce,
		targets: targets,
		queries: make(map[string]bool, 1),
	}
	if queryID != "" {
		p.queries[queryID] = true
	}
	sr.pending[label] = p
	sr.byNonce[p.nonce] = p
	return p.lookup(sr.self), true
}

// targetsFor is shard s's replica set minus this node, in rendezvous
// order. Callers hold sr.mu.
func (sr *ShardRouter) targetsFor(s int) []string {
	reps := sr.smap.Replicas(s, sr.members, sr.rf)
	out := reps[:0]
	for _, r := range reps {
		if r != sr.self {
			out = append(out, r)
		}
	}
	return out
}

// lookup builds the wire message for the pending lookup's current target.
func (p *pendingShardLookup) lookup(self string) *ShardLookup {
	return &ShardLookup{
		From:  self,
		To:    p.targets[p.next],
		Label: p.label,
		Shard: uint32(p.shardID),
		Nonce: p.nonce,
	}
}

// Retry advances a still-pending lookup to the next replica (wrapping) and
// returns the re-routed message. ok=false means the lookup completed in
// the meantime or exhausted its tries and was abandoned — the next query
// pump starts a fresh one.
func (sr *ShardRouter) Retry(nonce uint64) (msg *ShardLookup, ok bool) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	p, exists := sr.byNonce[nonce]
	if !exists {
		return nil, false
	}
	p.tries++
	if p.tries >= shardLookupMaxTries {
		sr.dropPendingLocked(p)
		return nil, false
	}
	p.next = (p.next + 1) % len(p.targets)
	return p.lookup(sr.self), true
}

// Complete resolves a pending lookup from its reply: the result is
// installed in the LRU cache (empty results are not cached, so a label
// that gains coverage later is re-asked) and the waiting query ids are
// returned for re-pumping. ok=false marks a stale or duplicate reply.
func (sr *ShardRouter) Complete(nonce uint64, adverts []Advertisement) (queries []string, ok bool) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	p, exists := sr.byNonce[nonce]
	if !exists {
		return nil, false
	}
	sr.dropPendingLocked(p)
	if len(adverts) > 0 {
		sources := make([]string, 0, len(adverts))
		for _, a := range adverts {
			desc, err := a.Descriptor()
			if err != nil {
				continue
			}
			sources = append(sources, a.Source)
			if rd, have := sr.descs[a.Source]; have {
				rd.desc = desc
			} else {
				sr.descs[a.Source] = &refDesc{desc: desc}
			}
		}
		sort.Strings(sources)
		sr.installLocked(p.label, sources)
	}
	queries = make([]string, 0, len(p.queries))
	for id := range p.queries {
		queries = append(queries, id)
	}
	sort.Strings(queries)
	return queries, true
}

// dropPendingLocked removes a pending lookup from both indexes. Callers
// hold sr.mu.
func (sr *ShardRouter) dropPendingLocked(p *pendingShardLookup) {
	delete(sr.pending, p.label)
	delete(sr.byNonce, p.nonce)
}

// installLocked inserts a cache entry, evicting the least-recently-touched
// entry when at capacity (min-stamp scan — O(cap), deterministic). Callers
// hold sr.mu.
func (sr *ShardRouter) installLocked(label string, sources []string) {
	if old, exists := sr.cache[label]; exists {
		sr.releaseLocked(old.sources)
		delete(sr.cache, label)
	}
	for len(sr.cache) >= sr.cacheCap && sr.cacheCap > 0 {
		victim, minStamp := "", ^uint64(0)
		for l, e := range sr.cache {
			if e.stamp < minStamp || (e.stamp == minStamp && l < victim) {
				victim, minStamp = l, e.stamp
			}
		}
		sr.releaseLocked(sr.cache[victim].sources)
		delete(sr.cache, victim)
	}
	for _, s := range sources {
		sr.descs[s].refs++
	}
	sr.stamp++
	sr.cache[label] = &shardCacheEntry{sources: sources, stamp: sr.stamp}
}

// releaseLocked drops one cache entry's references, deleting descriptors
// nobody mentions anymore. Callers hold sr.mu.
func (sr *ShardRouter) releaseLocked(sources []string) {
	for _, s := range sources {
		if rd, ok := sr.descs[s]; ok {
			rd.refs--
			if rd.refs <= 0 {
				delete(sr.descs, s)
			}
		}
	}
}

// SourceDown reacts to a source's eviction or withdrawal: cache entries
// naming it are invalidated (their labels get re-asked on the next pump),
// and pending lookups currently targeting it are re-routed to the next
// replica in rendezvous order. The re-routed messages are returned for the
// node to send.
func (sr *ShardRouter) SourceDown(src string) (resend []*ShardLookup) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	labels := make([]string, 0, len(sr.cache))
	for l, e := range sr.cache {
		for _, s := range e.sources {
			if s == src {
				labels = append(labels, l)
				break
			}
		}
	}
	sort.Strings(labels)
	for _, l := range labels {
		sr.releaseLocked(sr.cache[l].sources)
		delete(sr.cache, l)
	}
	delete(sr.descs, src)

	pend := make([]string, 0, len(sr.pending))
	for l, p := range sr.pending {
		if p.targets[p.next] == src {
			pend = append(pend, l)
		}
	}
	sort.Strings(pend)
	for _, l := range pend {
		p := sr.pending[l]
		moved := false
		for step := 1; step < len(p.targets); step++ {
			cand := (p.next + step) % len(p.targets)
			if p.targets[cand] != src {
				p.next = cand
				moved = true
				break
			}
		}
		if !moved {
			sr.dropPendingLocked(p)
			continue
		}
		resend = append(resend, p.lookup(sr.self))
	}
	return resend
}

// CacheLen returns the number of cached lookup results (for /statusz).
func (sr *ShardRouter) CacheLen() int {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return len(sr.cache)
}

package athena

import (
	"testing"
	"time"

	"athena/internal/boolexpr"
	"athena/internal/core"
	"athena/internal/names"
	"athena/internal/netsim"
	"athena/internal/object"
	"athena/internal/simclock"
	"athena/internal/transport"
	"athena/internal/trust"
)

// memberRig is a line network srcA - mid - srcC with live membership on:
// both ends advertise a stream covering the shared label (srcA cheaper),
// and every node keeps its own directory replica, as a deployment would.
type memberRig struct {
	sched *simclock.Scheduler
	net   *netsim.Network
	nodes map[string]*Node
}

func buildMemberRig(t *testing.T, world staticWorld, interval time.Duration, miss int) *memberRig {
	t.Helper()
	sched := simclock.New(tBase)
	net := netsim.New(sched)
	for _, id := range []string{"srcA", "mid", "srcC"} {
		net.AddNode(id, nil)
	}
	linkCfg := netsim.LinkConfig{Bandwidth: 125_000, Latency: time.Millisecond}
	if err := net.AddLink("srcA", "mid", linkCfg); err != nil {
		t.Fatal(err)
	}
	if err := net.AddLink("mid", "srcC", linkCfg); err != nil {
		t.Fatal(err)
	}

	descs := map[string]*object.Descriptor{
		"srcA": {
			Name: names.MustParse("/cam/a"), Size: 100_000, Source: "srcA",
			Labels: []string{"shared", "la1"}, Validity: time.Minute, ProbTrue: 0.8,
		},
		"srcC": {
			Name: names.MustParse("/cam/c"), Size: 200_000, Source: "srcC",
			Labels: []string{"shared"}, Validity: time.Minute, ProbTrue: 0.8,
		},
	}
	all := []object.Descriptor{*descs["srcA"], *descs["srcC"]}
	auth := trust.NewAuthority()
	meta := boolexpr.MetaTable{
		"shared": {Cost: 100_000, ProbTrue: 0.8, Validity: time.Minute},
		"la1":    {Cost: 100_000, ProbTrue: 0.8, Validity: time.Minute},
	}

	r := &memberRig{sched: sched, net: net, nodes: make(map[string]*Node)}
	for _, id := range []string{"srcA", "mid", "srcC"} {
		node, err := New(Config{
			ID:                id,
			Transport:         transport.NewSim(net, id),
			Router:            net,
			Timers:            schedTimers{sched},
			Scheme:            SchemeLVF,
			Directory:         NewDirectory(all), // per-node replica
			Meta:              meta,
			World:             world,
			Authority:         auth,
			Signer:            auth.Register(id, []byte("k-"+id)),
			Policy:            trust.TrustAll(),
			Descriptor:        descs[id],
			CacheBytes:        8 << 20,
			DisablePrefetch:   true,
			HeartbeatInterval: interval,
			HeartbeatMiss:     miss,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.nodes[id] = node
	}
	return r
}

func (r *memberRig) run(t *testing.T, until time.Duration) {
	t.Helper()
	if err := r.sched.RunUntil(tBase.Add(until), 0); err != nil {
		t.Fatal(err)
	}
}

// A silent source is evicted after the miss budget and the in-flight fetch
// is re-sourced to the alternate covering source, resolving the query well
// before the retry layer alone would have.
func TestMembershipEvictsSilentSourceAndReSources(t *testing.T) {
	world := staticWorld{"shared": true}
	r := buildMemberRig(t, world, time.Second, 3)

	// srcA (the preferred, cheaper source) is dead from the start.
	if err := r.net.SetNodeDown("srcA", true); err != nil {
		t.Fatal(err)
	}

	mid := r.nodes["mid"]
	var id string
	r.sched.After(time.Second, func() {
		var err error
		id, err = mid.QueryInit(boolexpr.ToDNF(boolexpr.MustParse("shared")), 30*time.Second)
		if err != nil {
			t.Errorf("QueryInit: %v", err)
		}
	})
	r.run(t, 40*time.Second)

	st := mid.Stats()
	if st.Evictions == 0 {
		t.Fatalf("expected mid to evict the silent srcA; stats %+v", st)
	}
	if mid.Directory().Has("srcA") {
		t.Fatal("srcA still present in mid's directory")
	}
	results := mid.Results()
	if len(results) != 1 || results[0].QueryID != id {
		t.Fatalf("expected one result for %s, got %+v", id, results)
	}
	if results[0].Status != core.ResolvedTrue {
		t.Fatalf("query not resolved after re-sourcing: %+v", results[0])
	}
	// Eviction (3 missed 1s beats) must beat the pure retry failover path:
	// resolution should come just a few seconds after issuance.
	latency := results[0].Finished.Sub(results[0].Issued)
	if latency > 15*time.Second {
		t.Fatalf("re-sourced resolution took %v; eviction should be much faster", latency)
	}
}

// A partition makes both sides evict each other; after the link heals, the
// next heartbeat reveals the missing advertisements and a push-pull
// anti-entropy exchange re-admits the sources and reconciles the label
// caches across the old partition boundary.
func TestMembershipPartitionHealAntiEntropy(t *testing.T) {
	runOnce := func(t *testing.T) (Stats, Stats) {
		world := staticWorld{"shared": true, "la1": true}
		r := buildMemberRig(t, world, time.Second, 3)

		// Partition srcC away from {srcA, mid} between t=2s and t=15s.
		if err := r.net.ScheduleLinkOutage("mid", "srcC", tBase.Add(2*time.Second), 13*time.Second); err != nil {
			t.Fatal(err)
		}

		// During the partition, mid resolves la1 from srcA, computing a
		// label record srcC cannot have seen.
		mid := r.nodes["mid"]
		r.sched.After(4*time.Second, func() {
			if _, err := mid.QueryInit(boolexpr.ToDNF(boolexpr.MustParse("la1")), 20*time.Second); err != nil {
				t.Errorf("QueryInit: %v", err)
			}
		})

		// Let the partition persist long enough for mutual eviction.
		r.run(t, 14*time.Second)
		srcC := r.nodes["srcC"]
		if srcC.Directory().Has("srcA") {
			t.Fatal("srcC should have evicted srcA during the partition")
		}
		if mid.Directory().Has("srcC") {
			t.Fatal("mid should have evicted srcC during the partition")
		}

		// Heal and give anti-entropy a few heartbeat intervals.
		r.run(t, 25*time.Second)
		for _, id := range []string{"srcA", "mid", "srcC"} {
			dir := r.nodes[id].Directory()
			for _, src := range []string{"srcA", "srcC"} {
				if !dir.Has(src) {
					t.Fatalf("after heal, %s's directory is missing %s", id, src)
				}
			}
		}
		// The anti-entropy exchange also reconciled label caches: srcC now
		// holds the la1 record computed on the other side of the partition.
		srcC.mu.Lock()
		_, hasLabel := srcC.labels.Get("la1", trust.TrustAll(), srcC.now())
		srcC.mu.Unlock()
		if !hasLabel {
			t.Fatal("after heal, srcC's label cache is missing la1")
		}
		if st := srcC.Stats(); st.SyncExchanges == 0 {
			t.Fatalf("expected srcC to initiate anti-entropy; stats %+v", st)
		}
		return mid.Stats(), srcC.Stats()
	}

	mid1, srcC1 := runOnce(t)
	mid2, srcC2 := runOnce(t)
	if mid1 != mid2 || srcC1 != srcC2 {
		t.Fatalf("partition-heal run is not deterministic:\nrun1 mid=%+v srcC=%+v\nrun2 mid=%+v srcC=%+v",
			mid1, srcC1, mid2, srcC2)
	}
}

// A graceful leave tombstones the advertisement everywhere immediately (no
// miss budget) and a later stale re-advertisement cannot resurrect it.
func TestMembershipGracefulLeave(t *testing.T) {
	world := staticWorld{"shared": true}
	r := buildMemberRig(t, world, time.Second, 3)

	r.sched.After(2*time.Second, func() {
		if err := r.nodes["srcA"].Leave(); err != nil {
			t.Errorf("Leave: %v", err)
		}
	})
	r.run(t, 4*time.Second)

	for _, id := range []string{"mid", "srcC"} {
		dir := r.nodes[id].Directory()
		if dir.Has("srcA") {
			t.Fatalf("%s still lists srcA after its leave", id)
		}
		seq, present, withdrawn := dir.Known("srcA")
		if present || !withdrawn || seq == 0 {
			t.Fatalf("%s: want withdrawn tombstone for srcA, got seq=%d present=%v withdrawn=%v",
				id, seq, present, withdrawn)
		}
	}

	// Queries after the leave go straight to the alternate source.
	mid := r.nodes["mid"]
	r.sched.After(time.Second, func() {
		if _, err := mid.QueryInit(boolexpr.ToDNF(boolexpr.MustParse("shared")), 20*time.Second); err != nil {
			t.Errorf("QueryInit: %v", err)
		}
	})
	r.run(t, 15*time.Second)
	if st := mid.Stats(); st.ResolvedTrue != 1 {
		t.Fatalf("query after leave did not resolve via srcC: %+v", st)
	}
}

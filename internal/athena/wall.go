package athena

import (
	"fmt"
	"time"
)

// WallTimers schedules node callbacks on real time, for nodes running
// outside the simulator (cmd/athenad).
type WallTimers struct{}

var _ Timers = WallTimers{}

// After implements Timers with time.AfterFunc.
func (WallTimers) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	time.AfterFunc(d, fn)
}

// AfterArg implements Timers. Wall-clock timers gain nothing from the
// no-closure form, so it simply wraps the pair.
func (WallTimers) AfterArg(d time.Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	time.AfterFunc(d, func() { fn(arg) })
}

// StaticRouter is a Router backed by a fixed next-hop table, for
// deployments without a routing protocol. Destinations without an entry
// are assumed to be direct neighbors.
type StaticRouter struct {
	// Self is the local node id.
	Self string
	// NextHops maps destination node id to the neighbor to use.
	NextHops map[string]string
}

var _ Router = (*StaticRouter)(nil)

// NextHop implements Router.
func (r *StaticRouter) NextHop(from, to string) (string, error) {
	if from != r.Self {
		return "", fmt.Errorf("athena: static router for %q asked from %q", r.Self, from)
	}
	if hop, ok := r.NextHops[to]; ok {
		return hop, nil
	}
	return to, nil // assume direct neighbor
}

package athena

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"athena/internal/boolexpr"
	"athena/internal/names"
	"athena/internal/netsim"
	"athena/internal/object"
	"athena/internal/simclock"
	"athena/internal/transport"
	"athena/internal/trust"
)

// shardRig is a gossip fleet with per-node labels and prefix-diverse
// names, so a sharded directory actually partitions and queries actually
// route. shards=0 builds the full-replica baseline on the same topology.
type shardRig struct {
	sched *simclock.Scheduler
	net   *netsim.Network
	ids   []string
	nodes map[string]*Node
}

func buildShardRig(t *testing.T, n, shards, rf int, seed int64) *shardRig {
	t.Helper()
	sched := simclock.New(tBase)
	net := netsim.New(sched)
	rng := rand.New(rand.NewSource(seed))
	linkCfg := netsim.LinkConfig{Bandwidth: 1 << 20, Latency: time.Millisecond}
	if err := netsim.BuildRandomConnected(net, n, n/2, linkCfg, rng); err != nil {
		t.Fatal(err)
	}

	r := &shardRig{sched: sched, net: net, nodes: make(map[string]*Node)}
	descs := make([]object.Descriptor, n)
	meta := make(boolexpr.MetaTable)
	world := staticWorld{}
	for i := range descs {
		id := fmt.Sprintf("n%d", i)
		r.ids = append(r.ids, id)
		label := fmt.Sprintf("s%02d", i)
		descs[i] = object.Descriptor{
			// Eight name-prefix groups, so the prefix partition has spread.
			Name: names.MustParse(fmt.Sprintf("/grid/g%d/%s", i%8, id)),
			Size: 1000, Source: id,
			Labels: []string{label, "ok"}, Validity: time.Minute, ProbTrue: 0.8,
		}
		meta[label] = boolexpr.Meta{Cost: 1000, ProbTrue: 0.8, Validity: time.Minute}
		world[label] = true
	}
	meta["ok"] = boolexpr.Meta{Cost: 1000, ProbTrue: 0.8, Validity: time.Minute}
	world["ok"] = true
	auth := trust.NewAuthority()
	for i, id := range r.ids {
		desc := descs[i]
		node, err := New(Config{
			ID:                id,
			Transport:         transport.NewSim(net, id),
			Router:            net,
			Timers:            schedTimers{sched},
			Scheme:            SchemeLVF,
			Directory:         NewDirectory(descs),
			Meta:              meta,
			World:             world,
			Authority:         auth,
			Signer:            auth.Register(id, []byte("k-"+id)),
			Policy:            trust.TrustAll(),
			Descriptor:        &desc,
			CacheBytes:        8 << 20,
			DisablePrefetch:   true,
			HeartbeatInterval: time.Second,
			HeartbeatMiss:     3,
			GossipFanout:      2,
			GossipSeed:        seed,
			Shards:            shards,
			ShardReplicas:     rf,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.nodes[id] = node
	}
	return r
}

func (r *shardRig) run(t *testing.T, until time.Duration) {
	t.Helper()
	if err := r.sched.RunUntil(tBase.Add(until), 0); err != nil {
		t.Fatal(err)
	}
}

// statuses collects the terminal status of every query issued on the rig,
// keyed by query id.
func (r *shardRig) statuses() map[string]string {
	out := make(map[string]string)
	for _, id := range r.ids {
		for _, res := range r.nodes[id].Results() {
			out[res.QueryID] = res.Status.String()
		}
	}
	return out
}

// Sharding is off by default, and the degenerate configuration — one shard
// replicated on every node — must behave exactly like the full replica:
// every node owns everything, nothing is thinned, no lookup is ever
// routed, and the same workload resolves to the same statuses.
func TestFullReplicaUnchangedBySharding(t *testing.T) {
	const n = 16
	workload := func(r *shardRig) {
		r.run(t, 10*time.Second)
		for j := 0; j < 4; j++ {
			origin := r.nodes[r.ids[j*3]]
			label := fmt.Sprintf("s%02d", (j*3+n/2)%n)
			if _, err := origin.QueryInit(boolexpr.ToDNF(boolexpr.MustParse(label+" & ok")), 30*time.Second); err != nil {
				t.Fatal(err)
			}
		}
		r.run(t, 60*time.Second)
	}

	full := buildShardRig(t, n, 0, 0, 7)
	workload(full)
	degen := buildShardRig(t, n, 1, n, 7)
	workload(degen)

	wantDigest := full.nodes[full.ids[0]].Directory().Digest()
	for _, id := range degen.ids {
		node := degen.nodes[id]
		if got := node.Directory().Digest(); got != wantDigest {
			t.Errorf("%s digest diverged from full-replica baseline", id)
		}
		if got := node.Directory().EntriesHeld(); got != n {
			t.Errorf("%s EntriesHeld = %d, want %d (degenerate shard owns all)", id, got, n)
		}
		st := node.Stats()
		if st.ShardLookups != 0 || st.ShardReroutes != 0 {
			t.Errorf("%s routed lookups in degenerate sharding: %+v", id, st)
		}
	}
	fullRes, degenRes := full.statuses(), degen.statuses()
	if len(fullRes) != 4 || len(degenRes) != 4 {
		t.Fatalf("results: full %d, degenerate %d, want 4 each", len(fullRes), len(degenRes))
	}
	for qid, status := range fullRes {
		if degenRes[qid] != status {
			t.Errorf("query %s: full-replica %s, degenerate-shard %s", qid, status, degenRes[qid])
		}
		if status != "resolved-true" {
			t.Errorf("query %s did not resolve true: %s", qid, status)
		}
	}
}

// With real sharding on, nodes hold strictly fewer directory payloads than
// a full replica, queries for unowned labels route to shard owners and
// still resolve, and the lookup machinery actually runs.
func TestShardedClusterResolvesRoutedQueries(t *testing.T) {
	const (
		n      = 24
		shards = 16
		rf     = 3
	)
	r := buildShardRig(t, n, shards, rf, 9)
	r.run(t, 10*time.Second) // settle: first refresh thins the replicas

	held := 0
	for _, id := range r.ids {
		held += r.nodes[id].Directory().EntriesHeld()
	}
	if held >= n*n {
		t.Fatalf("total entries held = %d, want < %d (full replication)", held, n*n)
	}

	queries := 0
	for j := 0; j < 6; j++ {
		origin := r.nodes[r.ids[j*4]]
		label := fmt.Sprintf("s%02d", (j*4+n/2)%n)
		if _, err := origin.QueryInit(boolexpr.ToDNF(boolexpr.MustParse(label)), 40*time.Second); err != nil {
			t.Fatal(err)
		}
		queries++
	}
	r.run(t, 80*time.Second)

	res := r.statuses()
	if len(res) != queries {
		t.Fatalf("got %d results, want %d", len(res), queries)
	}
	for qid, status := range res {
		if status != "resolved-true" {
			t.Errorf("query %s = %s, want resolved-true", qid, status)
		}
	}
	lookups, served := 0, 0
	for _, id := range r.ids {
		st := r.nodes[id].Stats()
		lookups += st.ShardLookups
		served += st.ShardServed
	}
	if lookups == 0 {
		t.Error("no routed shard lookups despite unowned query labels")
	}
	if served == 0 {
		t.Error("no node served a shard lookup")
	}
	if info, ok := r.nodes[r.ids[0]].ShardInfo(); !ok || info.Shards != shards || info.Replicas != rf {
		t.Errorf("ShardInfo = %+v, %v; want shards=%d rf=%d", info, ok, shards, rf)
	}
}

// An evicted shard owner's lookups re-route: pending lookups walk to the
// next replica in rendezvous order and later queries reach the surviving
// owners, so resolution survives the crash of a shard's primary.
func TestShardedClusterSurvivesOwnerCrash(t *testing.T) {
	const (
		n      = 24
		shards = 16
		rf     = 3
	)
	r := buildShardRig(t, n, shards, rf, 21)
	r.run(t, 10*time.Second)

	// Crash a leaf (routes are not failure-aware; a transit crash would
	// legitimately strand nodes behind it).
	dead := ""
	for _, id := range r.ids {
		if len(r.net.Neighbors(id)) == 1 {
			dead = id
			break
		}
	}
	if dead == "" {
		t.Fatal("topology has no leaf node")
	}
	if err := r.net.SetNodeDown(dead, true); err != nil {
		t.Fatal(err)
	}
	r.run(t, 60*time.Second) // suspicion window + eviction + re-ownership

	// Every surviving node's queries still resolve, whoever owned what.
	queries := 0
	for j := 0; j < 4; j++ {
		originID := r.ids[(j*5)%n]
		targetID := (j*5 + n/2) % n
		if originID == dead || r.ids[targetID] == dead {
			continue
		}
		label := fmt.Sprintf("s%02d", targetID)
		if _, err := r.nodes[originID].QueryInit(boolexpr.ToDNF(boolexpr.MustParse(label)), 40*time.Second); err != nil {
			t.Fatal(err)
		}
		queries++
	}
	if queries == 0 {
		t.Fatal("workload degenerated: every query touched the dead node")
	}
	r.run(t, 120*time.Second)

	res := r.statuses()
	if len(res) != queries {
		t.Fatalf("got %d results, want %d", len(res), queries)
	}
	for qid, status := range res {
		if status != "resolved-true" {
			t.Errorf("query %s = %s, want resolved-true", qid, status)
		}
	}
	for _, id := range r.ids {
		if id == dead {
			continue
		}
		if r.nodes[id].Directory().Has(dead) {
			t.Errorf("%s still lists crashed %s", id, dead)
		}
	}
}

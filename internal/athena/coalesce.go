package athena

import "time"

// Data-plane batching (the coalescing layer): per-neighbor send queues
// merge same-destination ObjectRequests and ObjectData messages into
// RequestBatch/DataBatch frames, amortizing the per-frame overhead the
// wire charges for every message. A queue flushes when its byte budget
// fills or when the coalescing window expires, whichever comes first; a
// message whose query is close to its deadline flushes immediately
// (deadline-slack bound), and critical-namespace traffic bypasses the
// queue entirely so priority transmission is never delayed. Batching is
// off by default (CoalesceWindow == 0) and the off path is byte-identical
// to the pre-batching node — TestUnbatchedUnchangedByBatchingLayer pins
// that.
//
// A batch is strictly hop-local: members keep their own end-to-end
// addressing, the receiver unpacks and runs each through the ordinary
// handlers (interest fan-out, caching, forwarding), and forwarded members
// re-coalesce at the next hop. Retry state is untouched: origin timeout
// timers and interest retransmit timers are armed per member at enqueue
// time, so a batch member's loss is detected and recovered individually.

// coalesceSlackFactor scales the deadline-slack bound: a local query with
// less than this many coalescing windows of slack left skips the wait.
const coalesceSlackFactor = 8

// sendQueue is one neighbor's pending coalesced traffic. bytes counts the
// members' batched contribution (what the flush will ship), flushAt is
// the armed flush instant (zero when no flush is armed; it only ever
// moves earlier between flushes, so a fired timer can check staleness
// against it), and lastSend is when this link last shipped data-plane
// traffic — the Nagle-style idle test: a message on a quiet link goes out
// immediately, and only traffic arriving within a window of other traffic
// waits to coalesce.
type sendQueue struct {
	hop      string
	reqs     []*ObjectRequest
	datas    []*ObjectData
	bytes    int64
	flushAt  time.Time
	lastSend time.Time
	inBurst  bool
}

// queueFor returns (creating on first use) the neighbor's send queue.
// Callers hold n.mu.
func (n *Node) queueFor(hop string) *sendQueue {
	sq := n.sendQ[hop]
	if sq == nil {
		sq = &sendQueue{hop: hop}
		n.sendQ[hop] = sq
	}
	return sq
}

// coalesceDelay bounds the coalescing wait by deadline slack: when the
// message serves a query issued at this node and that query's remaining
// slack is under coalesceSlackFactor windows, the wait collapses to zero
// — batching must never cost a query its deadline. Non-local queries
// (forwarded members) get the full window; it is milliseconds against
// deadlines of seconds. Callers hold n.mu.
func (n *Node) coalesceDelay(queryID string, now time.Time) time.Duration {
	if q, ok := n.queries[queryID]; ok {
		if slack := q.engine.Deadline().Sub(now); slack < coalesceSlackFactor*n.coalesceWindow {
			return 0
		}
	}
	return n.coalesceWindow
}

// enqueueRequest coalesces a request headed for the neighbor, reporting
// whether it was queued (false = caller must transmit natively: batching
// off, or critical-namespace bypass). Callers hold n.mu.
func (n *Node) enqueueRequest(hop string, req *ObjectRequest) bool {
	if n.coalesceWindow <= 0 || n.isCritical(req.Object) {
		return false
	}
	sq := n.queueFor(hop)
	if n.linkIdle(sq) {
		return false // quiet link: ship immediately, remember the send
	}
	sq.reqs = append(sq.reqs, req)
	sq.bytes += batchedRequestBytes
	n.markBurst(sq)
	n.settleQueue(sq, n.coalesceDelay(req.QueryID, n.now()))
	return true
}

// enqueueData coalesces a data message headed for the neighbor, reporting
// whether it was queued. Critical-namespace objects bypass even as
// background pushes: the queue must never sit between a critical object
// and the wire. Callers hold n.mu.
func (n *Node) enqueueData(hop string, d *ObjectData) bool {
	if n.coalesceWindow <= 0 || n.isCritical(d.Object) {
		return false
	}
	sq := n.queueFor(hop)
	if n.linkIdle(sq) {
		return false // quiet link: ship immediately, remember the send
	}
	sq.datas = append(sq.datas, d)
	sq.bytes += batchedDataHeaderBytes + d.Size
	n.markBurst(sq)
	n.settleQueue(sq, n.coalesceDelay(d.QueryID, n.now()))
	return true
}

// linkIdle implements the Nagle-style immediate path: with nothing queued
// and no data-plane send to this neighbor within the last window, waiting
// would add latency with nothing to merge, so the message ships natively
// right away (the send is remembered, so a companion arriving within the
// window does coalesce behind it). Callers hold n.mu.
func (n *Node) linkIdle(sq *sendQueue) bool {
	if len(sq.reqs)+len(sq.datas) > 0 {
		return false
	}
	now := n.now()
	if now.Sub(sq.lastSend) < n.coalesceWindow {
		return false
	}
	sq.lastSend = now
	return true
}

// markBurst records that the current dispatch touched this queue, so
// flushBursts can consider it when the dispatch ends. Callers hold n.mu.
func (n *Node) markBurst(sq *sendQueue) {
	if !sq.inBurst {
		sq.inBurst = true
		n.burstQs = append(n.burstQs, sq)
	}
}

// flushBursts is the Nagle "push": a dispatch (one inbound frame, or one
// fetch-queue drain) that coalesced two or more messages for a neighbor
// has nothing more coming for them — the burst was synchronous — so the
// batch ships now instead of waiting out the window. A queue the dispatch
// left with a single member keeps its armed timer: a lone message may yet
// be joined by a companion from a later dispatch, and the window bounds
// its wait. This keeps the coalescing window out of the fan-out hot path
// entirely — end-to-end latency cost stays at most one window per hop,
// paid only by stragglers. Runs at the end of every top-level dispatch;
// callers hold n.mu.
func (n *Node) flushBursts() {
	for _, sq := range n.burstQs {
		sq.inBurst = false
		if len(sq.reqs)+len(sq.datas) >= 2 {
			n.flushQueue(sq)
		}
	}
	n.burstQs = n.burstQs[:0]
}

// settleQueue flushes a queue whose byte budget is full or whose newest
// member demands an immediate send, and otherwise (re-)arms the flush
// timer. Callers hold n.mu.
func (n *Node) settleQueue(sq *sendQueue, delay time.Duration) {
	if sq.bytes >= n.coalesceBytes || delay <= 0 {
		n.flushQueue(sq)
		return
	}
	due := n.now().Add(delay)
	if !sq.flushAt.IsZero() && !due.Before(sq.flushAt) {
		return // an earlier (or equal) flush is already armed
	}
	sq.flushAt = due
	n.timers.After(delay, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if sq.flushAt.IsZero() || n.now().Before(sq.flushAt) {
			return // already flushed, or re-armed for later members
		}
		n.flushQueue(sq)
	})
}

// flushQueue ships everything the queue holds: one RequestBatch and/or
// one DataBatch, except that a lone member of either kind ships in its
// native frame (a one-element batch would cost more wire than it saves).
// Callers hold n.mu.
func (n *Node) flushQueue(sq *sendQueue) {
	reqs, datas := sq.reqs, sq.datas
	sq.reqs, sq.datas = nil, nil
	sq.bytes = 0
	sq.flushAt = time.Time{}
	sq.lastSend = n.now()

	switch {
	case len(reqs) == 1:
		n.transmitOrDrop(sq.hop, reqs[0].WireSize(), reqs[0])
	case len(reqs) > 1:
		b := &RequestBatch{Requests: make([]ObjectRequest, len(reqs))}
		var native int64
		for i, r := range reqs {
			b.Requests[i] = *r
			native += r.WireSize()
		}
		n.recordBatch(len(reqs), native, b.WireSize())
		n.transmitOrDrop(sq.hop, b.WireSize(), b)
	}

	switch {
	case len(datas) == 1:
		n.transmitOrDrop(sq.hop, datas[0].WireSize(), datas[0])
	case len(datas) > 1:
		b := &DataBatch{Items: make([]ObjectData, len(datas))}
		var native int64
		for i, d := range datas {
			b.Items[i] = *d
			native += d.WireSize()
		}
		n.recordBatch(len(datas), native, b.WireSize())
		n.transmitOrDrop(sq.hop, b.WireSize(), b)
	}
}

// transmitOrDrop sends a flushed frame to the queue's neighbor,
// accounting a routing drop on failure exactly like the native path.
// Coalesced traffic is always default-priority (critical bypasses the
// queue), so no priority class is needed.
func (n *Node) transmitOrDrop(hop string, size int64, payload any) {
	if err := n.transmit(hop, size, payload, 0); err != nil {
		n.stats.RoutingDrops++
	}
}

// recordBatch accounts one shipped batch of k members whose standalone
// frames would have cost native bytes against the batch's actual cost.
func (n *Node) recordBatch(k int, native, batched int64) {
	n.stats.BatchesSent++
	n.stats.BatchedMsgs += k
	n.stats.BatchBytesSaved += native - batched
	n.m.batchSize.Observe(float64(k))
	n.m.batchFramesSaved.Add(int64(k - 1))
	n.m.batchBytesSaved.Add(native - batched)
}

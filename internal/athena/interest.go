package athena

import (
	"time"
)

// interestEntry records that a downstream node awaits an object
// (Section VI-B): who asked, for which query, via which neighbor the
// request arrived (data returns along the reverse path, as in NDN), and
// when the interest lapses.
type interestEntry struct {
	origin  string
	queryID string
	from    string // downstream neighbor the request came from
	labels  []string
	expires time.Time
}

// InterestTable keeps per-object interest entries — the PIT analogue.
type InterestTable struct {
	ttl     time.Duration
	entries map[string][]interestEntry // object name -> waiters
	pending map[string]bool            // object name -> forwarded upstream
}

// NewInterestTable creates a table whose entries expire after ttl.
func NewInterestTable(ttl time.Duration) *InterestTable {
	return &InterestTable{
		ttl:     ttl,
		entries: make(map[string][]interestEntry),
		pending: make(map[string]bool),
	}
}

// Add records interest of origin/query in the object, remembering the
// downstream neighbor the request arrived from. It reports whether a
// request for this object is already pending upstream (in which case the
// caller must not forward a duplicate downstream request, Section VI-B).
func (t *InterestTable) Add(obj, origin, queryID, from string, labels []string, now time.Time) (alreadyPending bool) {
	t.reap(obj, now)
	entries := t.entries[obj]
	for _, e := range entries {
		if e.origin == origin && e.queryID == queryID {
			return t.pending[obj] // refreshed by reap; duplicate waiter
		}
	}
	t.entries[obj] = append(entries, interestEntry{
		origin:  origin,
		queryID: queryID,
		from:    from,
		labels:  append([]string(nil), labels...),
		expires: now.Add(t.ttl),
	})
	was := t.pending[obj]
	t.pending[obj] = true
	return was
}

// Waiters consumes and returns the live interest entries for an object —
// called when matching data arrives (Section VI-C).
func (t *InterestTable) Waiters(obj string, now time.Time) []interestEntry {
	t.reap(obj, now)
	out := t.entries[obj]
	delete(t.entries, obj)
	delete(t.pending, obj)
	return out
}

// Pending reports whether a request for the object is in flight upstream.
func (t *InterestTable) Pending(obj string, now time.Time) bool {
	t.reap(obj, now)
	return t.pending[obj]
}

// Len counts live entries across all objects.
func (t *InterestTable) Len(now time.Time) int {
	n := 0
	for obj := range t.entries {
		t.reap(obj, now)
		n += len(t.entries[obj])
	}
	return n
}

func (t *InterestTable) reap(obj string, now time.Time) {
	entries := t.entries[obj]
	live := entries[:0]
	for _, e := range entries {
		if e.expires.After(now) {
			live = append(live, e)
		}
	}
	if len(live) == 0 {
		delete(t.entries, obj)
		delete(t.pending, obj)
		return
	}
	t.entries[obj] = live
}

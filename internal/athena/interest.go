package athena

import (
	"time"

	"athena/internal/metrics"
)

// interestEntry records that a downstream node awaits an object
// (Section VI-B): who asked, for which query, via which neighbor the
// request arrived (data returns along the reverse path, as in NDN), and
// when the interest lapses.
type interestEntry struct {
	origin  string
	queryID string
	from    string // downstream neighbor the request came from
	labels  []string
	expires time.Time
}

// InterestTable keeps per-object interest entries — the PIT analogue.
// Waiter lifetime and pending-request lifetime are tracked independently:
// waiters lapse after the interest TTL, while the in-flight upstream
// request stays pending until its own expiry (extended by the
// retransmission layer), so a lapsed waiter does not cause the next Add to
// forward a duplicate upstream request while the first is still in flight.
type InterestTable struct {
	ttl      time.Duration
	entries  map[string][]interestEntry // object name -> waiters
	pending  map[string]time.Time       // object name -> upstream request expiry
	inserts  *metrics.Counter
	expiries *metrics.Counter
}

// NewInterestTable creates a table whose entries expire after ttl.
func NewInterestTable(ttl time.Duration) *InterestTable {
	return &InterestTable{
		ttl:     ttl,
		entries: make(map[string][]interestEntry),
		pending: make(map[string]time.Time),
	}
}

// Instrument mirrors waiter inserts and expiries into the given counters
// (either may be nil for a no-op).
func (t *InterestTable) Instrument(inserts, expiries *metrics.Counter) {
	t.inserts = inserts
	t.expiries = expiries
}

// Add records interest of origin/query in the object, remembering the
// downstream neighbor the request arrived from. A duplicate waiter has its
// expiry refreshed. It reports whether a request for this object is
// already pending upstream (in which case the caller must not forward a
// duplicate downstream request, Section VI-B); when it reports false the
// caller is expected to forward upstream, so the pending lifetime starts.
func (t *InterestTable) Add(obj, origin, queryID, from string, labels []string, now time.Time) (alreadyPending bool) {
	t.reap(obj, now)
	entries := t.entries[obj]
	for i := range entries {
		if entries[i].origin == origin && entries[i].queryID == queryID {
			entries[i].expires = now.Add(t.ttl)
			return t.Pending(obj, now)
		}
	}
	t.inserts.Inc()
	t.entries[obj] = append(entries, interestEntry{
		origin:  origin,
		queryID: queryID,
		from:    from,
		labels:  append([]string(nil), labels...),
		expires: now.Add(t.ttl),
	})
	was := t.Pending(obj, now)
	if !was {
		t.pending[obj] = now.Add(t.ttl)
	}
	return was
}

// Waiters consumes and returns the live interest entries for an object —
// called when matching data arrives (Section VI-C). Foreground data is
// the answer to the upstream request, so it satisfies the pending mark;
// a background push (satisfied=false) serves the waiters but leaves the
// pending lifetime alone — the foreground request it overlaps is still
// in flight upstream, and clearing its mark would let the next Add
// forward a duplicate request the retransmission layer then races.
func (t *InterestTable) Waiters(obj string, now time.Time, satisfied bool) []interestEntry {
	t.reap(obj, now)
	out := t.entries[obj]
	delete(t.entries, obj)
	if satisfied {
		delete(t.pending, obj)
	}
	return out
}

// HasWaiters reports whether any live interest entry remains for the
// object, without consuming them.
func (t *InterestTable) HasWaiters(obj string, now time.Time) bool {
	t.reap(obj, now)
	return len(t.entries[obj]) > 0
}

// Pending reports whether a request for the object is in flight upstream.
func (t *InterestTable) Pending(obj string, now time.Time) bool {
	exp, ok := t.pending[obj]
	if !ok {
		return false
	}
	if !exp.After(now) {
		delete(t.pending, obj)
		return false
	}
	return true
}

// RefreshPending extends the pending-request lifetime to the given expiry
// (used by the retransmission layer to cover the next retry window). A
// refresh never shortens the current lifetime.
func (t *InterestTable) RefreshPending(obj string, expires time.Time) {
	if cur, ok := t.pending[obj]; !ok || expires.After(cur) {
		t.pending[obj] = expires
	}
}

// ClearPending drops the pending-request mark, allowing the next Add to
// forward a fresh upstream request (used when retransmission gives up).
func (t *InterestTable) ClearPending(obj string) {
	delete(t.pending, obj)
}

// Len counts live entries across all objects.
func (t *InterestTable) Len(now time.Time) int {
	n := 0
	for obj := range t.entries {
		t.reap(obj, now)
		n += len(t.entries[obj])
	}
	return n
}

// reap removes lapsed waiters. The pending-request mark is left alone: the
// upstream request may still be in flight even when every waiter lapsed,
// and it expires on its own clock.
func (t *InterestTable) reap(obj string, now time.Time) {
	entries := t.entries[obj]
	live := entries[:0]
	for _, e := range entries {
		if e.expires.After(now) {
			live = append(live, e)
		}
	}
	if n := len(entries) - len(live); n > 0 {
		t.expiries.Add(int64(n))
	}
	if len(live) == 0 {
		delete(t.entries, obj)
		return
	}
	t.entries[obj] = live
}

package athena

import (
	"testing"
	"time"

	"athena/internal/boolexpr"
	"athena/internal/core"
	"athena/internal/names"
	"athena/internal/netsim"
	"athena/internal/object"
	"athena/internal/simclock"
	"athena/internal/transport"
	"athena/internal/trust"
)

func TestNoisyReadingDeterministicAndRateful(t *testing.T) {
	// Same inputs always agree.
	a := noisyReading(true, "n1", "/cam/x#1", "l", 0.3)
	b := noisyReading(true, "n1", "/cam/x#1", "l", 0.3)
	if a != b {
		t.Fatal("noisyReading nondeterministic")
	}
	// Empirical flip rate over many distinct versions approaches the
	// configured rate.
	flips := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if !noisyReading(true, "n1", names.MustParse("/cam/x").String()+string(rune('a'+i%26))+string(rune('0'+i/26%10))+string(rune('0'+i/260)), "l", 0.3) {
			flips++
		}
	}
	rate := float64(flips) / n
	if rate < 0.27 || rate > 0.33 {
		t.Errorf("flip rate = %v, want ~0.3", rate)
	}
	// Rate 0 never flips.
	if !noisyReading(true, "n1", "/cam/x#1", "l", 0) {
		t.Error("rate 0 flipped")
	}
}

// noisyRig: one origin, three cameras covering the same label, all one
// hop away — corroboration must gather votes across the cameras.
func buildNoisyRig(t *testing.T, noise float64, nSources int) (*simclock.Scheduler, *netsim.Network, *Node) {
	t.Helper()
	sched := simclock.New(tBase)
	net := netsim.New(sched)
	net.AddNode("origin", nil)
	link := netsim.LinkConfig{Bandwidth: 125_000, Latency: time.Millisecond}

	world := staticWorld{"viable": true}
	var descs []object.Descriptor
	for i := 0; i < nSources; i++ {
		id := string(rune('A' + i))
		net.AddNode(id, nil)
		if err := net.AddLink("origin", id, link); err != nil {
			t.Fatal(err)
		}
		descs = append(descs, object.Descriptor{
			Name:     names.MustParse("/noisy/cam" + id),
			Size:     50_000,
			Validity: 20 * time.Second,
			Labels:   []string{"viable"},
			Source:   id,
			ProbTrue: 0.8,
		})
	}
	dir := NewDirectory(descs)
	auth := trust.NewAuthority()
	meta := boolexpr.MetaTable{"viable": {Cost: 50_000, ProbTrue: 0.8, Validity: 20 * time.Second}}
	mk := func(id string, d *object.Descriptor) *Node {
		node, err := New(Config{
			ID: id, Transport: transport.NewSim(net, id), Router: net,
			Timers: schedTimers{sched}, Scheme: SchemeLVF, Directory: dir,
			Meta: meta, World: world, Authority: auth,
			Signer: auth.Register(id, []byte(id)), Policy: trust.TrustAll(),
			Descriptor: d, CacheBytes: 8 << 20, DisablePrefetch: true,
			SensorNoise: noise, ConfidenceTarget: 0.95,
		})
		if err != nil {
			t.Fatal(err)
		}
		return node
	}
	origin := mk("origin", nil)
	for i := range descs {
		mk(descs[i].Source, &descs[i])
	}
	return sched, net, origin
}

func TestNoisyCorroborationResolves(t *testing.T) {
	sched, _, origin := buildNoisyRig(t, 0.2, 4)
	expr := boolexpr.ToDNF(boolexpr.MustParse("viable"))
	if _, err := origin.QueryInit(expr, time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := sched.RunUntil(tBase.Add(2*time.Minute), 0); err != nil {
		t.Fatal(err)
	}
	results := origin.Results()
	if len(results) != 1 {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Status != core.ResolvedTrue {
		t.Fatalf("status = %v (ground truth is true)", results[0].Status)
	}
	// Confidence 0.95 at eps 0.2 needs at least 3 unanimous votes, so at
	// least 3 annotations must have happened.
	if got := origin.Stats().Annotations; got < 3 {
		t.Errorf("annotations = %d, want >= 3 (corroboration)", got)
	}
}

func TestNoisyCorroborationWaitsForFreshSamples(t *testing.T) {
	// Only one camera: after its sample votes, the next vote needs a new
	// sample (post-expiry). The query still resolves eventually within a
	// long deadline, using multiple sampling rounds.
	sched, _, origin := buildNoisyRig(t, 0.2, 1)
	expr := boolexpr.ToDNF(boolexpr.MustParse("viable"))
	if _, err := origin.QueryInit(expr, 3*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := sched.RunUntil(tBase.Add(4*time.Minute), 0); err != nil {
		t.Fatal(err)
	}
	results := origin.Results()
	if len(results) != 1 {
		t.Fatalf("results = %+v", results)
	}
	// With validity 20s and >= 3 votes needed, resolution takes > 40s.
	if results[0].Status == core.ResolvedTrue {
		if took := results[0].Finished.Sub(results[0].Issued); took < 40*time.Second {
			t.Errorf("resolved in %v; too fast for single-source corroboration", took)
		}
	}
	if origin.Stats().Annotations < 3 {
		t.Errorf("annotations = %d", origin.Stats().Annotations)
	}
}

func TestNoiseFreePathUnchanged(t *testing.T) {
	sched, net, origin := buildNoisyRig(t, 0, 2)
	expr := boolexpr.ToDNF(boolexpr.MustParse("viable"))
	if _, err := origin.QueryInit(expr, time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := sched.RunUntil(tBase.Add(time.Minute), 0); err != nil {
		t.Fatal(err)
	}
	results := origin.Results()
	if len(results) != 1 || results[0].Status != core.ResolvedTrue {
		t.Fatalf("results = %+v", results)
	}
	// One camera fetch suffices without noise.
	if origin.Stats().Annotations != 1 {
		t.Errorf("annotations = %d, want 1", origin.Stats().Annotations)
	}
	if bytes := net.Stats().BytesSent; bytes > 120_000 {
		t.Errorf("bytes = %d, noise-free run over-fetched", bytes)
	}
}

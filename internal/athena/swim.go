package athena

import (
	"sort"
	"time"

	"athena/internal/gossip"
)

// This file implements the SWIM-style gossip membership protocol
// (GossipFanout > 0), the scalable alternative to membership.go's flooded
// heartbeats. Each protocol period a node pings GossipFanout members drawn
// from a deterministic round-robin sampler; an unacknowledged probe makes
// the target suspect and is retried indirectly through GossipIndirect
// intermediaries (ping-req); a suspect still silent after SuspectTimeout
// is evicted and the eviction notice disseminates epidemically. All
// membership updates — joins, leaves, evictions, refutations — ride as
// bounded piggyback buffers on ping/ack with per-update retransmit
// budgets of λ·⌈log₂(n+1)⌉ transmissions, so the AdvertGossip/PeerLeave
// floods and the periodic digest sync of the flood protocol collapse into
// the probe channel. Directory divergence detected by a probe's digest
// triggers a seq-vector delta anti-entropy exchange (see membership.go's
// maybeSync) instead of a full-snapshot push. Per-node control traffic is
// O(fanout·log n) per period instead of the flood's O(n·degree).

// probeState tracks one outstanding direct probe. It carries its own seq
// so the state value can double as the timeout timer's argument, and a
// freelist link: the timer is the last holder of every probe state, so
// probeTimeout can recycle them through the node's freelist.
type probeState struct {
	target  string
	started time.Time
	seq     uint64
	next    *probeState
}

// newProbe takes a probe state off the freelist (or allocates one).
// Callers hold n.mu.
func (n *Node) newProbe(target string, started time.Time, seq uint64) *probeState {
	ps := n.probeFree
	if ps == nil {
		return &probeState{target: target, started: started, seq: seq}
	}
	n.probeFree = ps.next
	*ps = probeState{target: target, started: started, seq: seq}
	return ps
}

// freeProbe returns a probe state to the freelist. Only probeTimeout may
// call it: the timeout timer always fires and is always the last holder.
func (n *Node) freeProbe(ps *probeState) {
	*ps = probeState{next: n.probeFree}
	n.probeFree = ps
}

// gossipTickArg adapts gossipTick to the Timers.AfterArg shape; it is
// bound once in New (n.gossipTickFn) so re-arming each protocol period
// allocates nothing.
func (n *Node) gossipTickArg(any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.gossipTick()
}

// gossipTick runs one SWIM protocol period — sweep the suspect list,
// probe the sampled peers plus every live suspect — and re-arms itself.
// Callers hold n.mu.
func (n *Node) gossipTick() {
	now := n.now()
	n.beatSeq++
	n.sweepSuspects(now)
	n.refreshSampler()
	n.shardRefresh()
	targets := n.sampler.Next(n.fanout)
	for _, target := range targets {
		n.sendProbe(target, now)
	}
	// Suspects are re-probed every period on top of the sampled fanout:
	// each period is another chance for a slow ack to clear the suspicion
	// before the timeout expires. The common tick has no suspects, so the
	// dedup set is only built when there is something to dedup against.
	if len(n.suspects) > 0 {
		probed := make(map[string]bool, len(targets))
		for _, t := range targets {
			probed[t] = true
		}
		for _, target := range sortedKeys(n.suspects) {
			if !probed[target] {
				n.sendProbe(target, now)
			}
		}
	}
	n.timers.AfterArg(n.hbInterval, n.gossipTickFn, nil)
}

// lhmMax caps the local health multiplier: the suspicion window dilates
// at most (1+lhmMax)-fold when every probe is timing out.
const lhmMax = 8

// sweepSuspects clears suspicions answered since they were raised and
// evicts suspects that stayed silent through the whole suspicion window,
// disseminating each eviction as a piggybacked death notice. The window
// is SuspectTimeout dilated by the local health multiplier: when this
// node's probes are failing across the board the problem is local (its
// links, or fleet-wide congestion), so eviction verdicts wait; when only
// the suspect is silent while other acks flow, lhm sits at zero and
// detection stays fast. Callers hold n.mu.
func (n *Node) sweepSuspects(now time.Time) {
	window := time.Duration(1+n.lhm) * n.suspectTO
	for _, target := range sortedKeys(n.suspects) {
		since := n.suspects[target]
		if last, heard := n.lastHeard[target]; heard && !last.Before(since) {
			delete(n.suspects, target)
			continue
		}
		if !n.dir.Has(target) {
			delete(n.suspects, target)
			continue
		}
		if now.Sub(since) < window {
			continue
		}
		delete(n.suspects, target)
		deadSeq, _, _ := n.dir.Known(target)
		n.evictSource(target)
		n.enqueuePiggy(MemberUpdate{
			Adv:  Advertisement{Source: target, Seq: deadSeq},
			Dead: true,
			Born: now,
		})
	}
}

// sortedKeys returns the map's keys in sorted order, so iteration stays
// deterministic under the simulator.
func sortedKeys(m map[string]time.Time) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// refreshSampler rebuilds the sampling ring from the directory's present
// sources when the directory changed since the last refresh. Callers hold
// n.mu.
func (n *Node) refreshSampler() {
	v := n.dir.Version()
	if v == n.samplerVer {
		return
	}
	n.samplerVer = v
	sources := n.dir.Sources()
	// First refresh with the directory populated: re-make lastHeard sized
	// for the fleet, so the per-contact bookkeeping writes never rehash.
	if len(n.lastHeard) == 0 && len(sources) > 1 {
		n.lastHeard = make(map[string]time.Time, 2*len(sources))
	}
	peers := n.peerScratch[:0]
	for _, s := range sources {
		if s != n.id {
			peers = append(peers, s)
		}
	}
	n.peerScratch = peers
	n.sampler.SetPeers(peers)
}

// sendProbe opens one direct probe of target and arms the suspicion
// machinery: no ack within half a period → indirect ping-req through
// intermediaries; still nothing heard from the target by SuspectTimeout →
// eviction. Callers hold n.mu.
func (n *Node) sendProbe(target string, now time.Time) {
	if target == n.id {
		return
	}
	n.probeSeq++
	seq := n.probeSeq
	p := &Ping{
		From:    n.id,
		To:      target,
		Seq:     seq,
		AdvSeq:  n.adSeq,
		Digest:  n.dir.Digest(),
		Updates: n.takePiggy(),
	}
	n.stats.PingsSent++
	n.m.pings.Inc()
	n.sendCtl(target, p.WireSize(), p)
	ps := n.newProbe(target, now, seq)
	n.probes[seq] = ps

	// The probe state itself rides as the timer argument: the timeout
	// path allocates no closure (n.probeTimeoutFn is bound once in New).
	n.timers.AfterArg(n.hbInterval/2, n.probeTimeoutFn, ps)
}

// probeTimeout fires half a period after a direct probe: if the probe is
// still outstanding the target becomes suspect and the indirect ping-req
// round starts. arg is the *probeState registered by sendProbe.
func (n *Node) probeTimeout(arg any) {
	ps, ok := arg.(*probeState)
	if !ok {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	defer n.freeProbe(ps) // the timer was the last holder
	pr, ok := n.probes[ps.seq]
	if !ok || pr != ps {
		return // acked in time
	}
	delete(n.probes, ps.seq) // the probe failed; indirect round takes over
	if last, heard := n.lastHeard[pr.target]; heard && !last.Before(pr.started) {
		return // heard from it through other traffic since the probe
	}
	if _, already := n.suspects[pr.target]; !already {
		n.suspects[pr.target] = pr.started
		n.stats.Suspicions++
		n.m.suspicions.Inc()
		// A fresh failed probe is evidence this node's own view of the
		// network is degraded (congestion, or its own links): stretch
		// the suspicion window (Lifeguard's local health multiplier).
		if n.lhm < lhmMax {
			n.lhm++
		}
	}
	if n.pickExcl == nil {
		n.pickExcl = make(map[string]bool, 2)
	}
	clear(n.pickExcl)
	n.pickExcl[pr.target] = true
	for _, mid := range n.sampler.Pick(n.indirectK, n.pickExcl) {
		preq := &PingReq{From: n.id, To: mid, Target: pr.target, Seq: ps.seq, Updates: n.takePiggy()}
		n.stats.PingsSent++
		n.m.pings.Inc()
		n.sendCtl(mid, preq.WireSize(), preq)
	}
}

// handlePing answers a probe (forwarding it first if this node is only a
// hop on its route), merging the piggybacked updates and mirroring the
// flood protocol's advert/digest divergence checks. Callers hold n.mu.
func (n *Node) handlePing(from string, p *Ping) {
	if !n.memberOn || !n.gossipOn || p.From == n.id {
		return
	}
	if p.To != n.id {
		n.sendCtl(p.To, p.WireSize(), p)
		return
	}
	now := n.now()
	n.lastHeard[p.From] = now
	delete(n.suspects, p.From)
	n.applyUpdates(p.Updates, now)
	// Direct probes ack to the prober; relayed probes (ping-req) ack
	// straight to the original prober under its own probe sequence.
	dest, seq := p.From, p.Seq
	if p.OnBehalf != "" {
		dest, seq = p.OnBehalf, p.OnBehalfSeq
	}
	if dest != n.id {
		ack := &Ack{
			From:    n.id,
			To:      dest,
			Seq:     seq,
			AdvSeq:  n.adSeq,
			Digest:  n.dir.Digest(),
			Updates: n.takePiggy(),
		}
		n.sendCtl(dest, ack.WireSize(), ack)
	}
	n.checkPeerState(p.From, p.AdvSeq, p.Digest, now)
}

// handleAck closes the matching outstanding probe and merges the
// responder's piggybacked state. Callers hold n.mu.
func (n *Node) handleAck(from string, a *Ack) {
	if !n.memberOn || !n.gossipOn || a.From == n.id {
		return
	}
	if a.To != n.id {
		n.sendCtl(a.To, a.WireSize(), a)
		return
	}
	now := n.now()
	n.lastHeard[a.From] = now
	delete(n.suspects, a.From)
	if pr, ok := n.probes[a.Seq]; ok && pr.target == a.From {
		delete(n.probes, a.Seq)
		if n.lhm > 0 {
			n.lhm-- // a timely ack is evidence the local view is healthy
		}
	}
	n.applyUpdates(a.Updates, now)
	n.checkPeerState(a.From, a.AdvSeq, a.Digest, now)
}

// handlePingReq relays an indirect probe: ping the suspect on the
// requester's behalf, with the suspect acking the requester directly.
// Callers hold n.mu.
func (n *Node) handlePingReq(from string, pr *PingReq) {
	if !n.memberOn || !n.gossipOn || pr.From == n.id {
		return
	}
	if pr.To != n.id {
		n.sendCtl(pr.To, pr.WireSize(), pr)
		return
	}
	now := n.now()
	n.lastHeard[pr.From] = now
	delete(n.suspects, pr.From)
	n.applyUpdates(pr.Updates, now)
	if pr.Target == n.id {
		// We are the suspect: answer directly.
		ack := &Ack{From: n.id, To: pr.From, Seq: pr.Seq, AdvSeq: n.adSeq, Digest: n.dir.Digest(), Updates: n.takePiggy()}
		n.sendCtl(pr.From, ack.WireSize(), ack)
		return
	}
	relay := &Ping{
		From:        n.id,
		To:          pr.Target,
		AdvSeq:      n.adSeq,
		Digest:      n.dir.Digest(),
		OnBehalf:    pr.From,
		OnBehalfSeq: pr.Seq,
		Updates:     n.takePiggy(),
	}
	n.stats.PingsSent++
	n.m.pings.Inc()
	n.sendCtl(pr.Target, relay.WireSize(), relay)
}

// applyUpdates merges piggybacked membership events: adverts and
// tombstones go through the directory with the usual re-sourcing side
// effects, eviction notices evict (when not already superseded), news
// about this node itself is refuted with a bumped advertisement (SWIM's
// incarnation, with the advert seq as incarnation number), and whatever
// was news is re-enqueued so it keeps spreading epidemically. Callers
// hold n.mu.
func (n *Node) applyUpdates(ups []MemberUpdate, now time.Time) {
	for _, u := range ups {
		if u.Adv.Source == n.id {
			if (u.Dead || u.Adv.Withdrawn) && !n.left && n.desc != nil && u.Adv.Seq >= n.adSeq {
				n.adSeq = u.Adv.Seq + 1
				n.dir.Advertise(*n.desc, n.adSeq)
				n.stats.Refutations++
				n.m.refutes.Inc()
				n.enqueuePiggy(MemberUpdate{Adv: advertisementOf(*n.desc, n.adSeq), Born: now})
			}
			continue
		}
		if u.Dead {
			seq, present, _ := n.dir.Known(u.Adv.Source)
			if present && seq <= u.Adv.Seq {
				delete(n.suspects, u.Adv.Source)
				n.evictSource(u.Adv.Source)
				n.enqueuePiggy(u)
				n.observeConvergence(u.Born, now)
			}
			continue
		}
		if n.applyOneAdvert(u.Adv, now) {
			n.enqueuePiggy(u)
			n.observeConvergence(u.Born, now)
		}
	}
}

// checkPeerState triggers anti-entropy when a probe or heartbeat reveals
// a missing advertisement or a diverged directory — the same divergence
// rules for both protocols. Callers hold n.mu.
func (n *Node) checkPeerState(peer string, advSeq, digest uint64, now time.Time) {
	needSync := false
	if advSeq > 0 {
		// A live node advertises a source we do not list: either we missed
		// the advertisement or we evicted it (a false positive, or a healed
		// partition). A withdrawn tombstone at or past advSeq means it left
		// on purpose and this probe is stale — no sync for that.
		seq, present, withdrawn := n.dir.Known(peer)
		if !present && (advSeq > seq || !withdrawn) {
			needSync = true
		}
	}
	if digest != n.dir.Digest() {
		needSync = true
	}
	if needSync {
		n.maybeSync(peer, now)
	}
}

// enqueuePiggy adds a membership update to the piggyback buffer with a
// fresh λ·⌈log₂(n+1)⌉ retransmit budget (n = every source the directory
// knows of). Per-source rank ordering makes newer protocol states
// supersede queued older ones. Callers hold n.mu.
func (n *Node) enqueuePiggy(u MemberUpdate) {
	n.piggy.Put(u.Adv.Source, updateRank(u), u, gossip.Budget(n.lambda, len(n.dir.AllSources())))
}

// updateRank orders piggyback updates about the same source: higher
// sequence numbers win; at equal seq a withdraw (the source's own word)
// beats an eviction notice (a detector's suspicion) beats a plain advert.
func updateRank(u MemberUpdate) uint64 {
	r := u.Adv.Seq << 2
	if u.Dead {
		r |= 1
	}
	if u.Adv.Withdrawn {
		r |= 2
	}
	return r
}

// takePiggy drains up to the per-message piggyback cap from the buffer.
// Callers hold n.mu.
func (n *Node) takePiggy() []MemberUpdate {
	items := n.piggy.Take(n.piggyMax)
	if len(items) == 0 {
		return nil
	}
	out := make([]MemberUpdate, len(items))
	for i, it := range items {
		out[i] = it.(MemberUpdate)
	}
	return out
}

// observeConvergence records how long a membership update took to reach
// this replica, measured from its origination stamp — meaningful under
// the simulator's shared virtual clock; best-effort over TCP. Callers
// hold n.mu.
func (n *Node) observeConvergence(born, now time.Time) {
	if born.IsZero() {
		return
	}
	if d := now.Sub(born); d >= 0 {
		n.m.convergence.ObserveDuration(d)
	}
}

// accountCtl charges one membership control message to the node's
// control-plane counters — the common currency flood and gossip mode are
// compared in. Callers hold n.mu.
func (n *Node) accountCtl(size int64) {
	n.stats.ControlMsgs++
	n.stats.ControlBytes += size
	n.m.ctlMsgs.Inc()
	n.m.ctlBytes.Add(size)
}

// sendCtl routes a membership control message toward dest, accounting its
// cost. In gossip mode control messages ride the preferential class
// (Section V-C): probe latency is the failure detector's clock, and the
// messages are small and bounded (piggyback cap, seq-vector deltas), so
// letting them jump queued bulk object transfers keeps detection timing
// honest under congestion without starving data. Flood-mode control stays
// in the default class, exactly as before this protocol existed. Callers
// hold n.mu.
func (n *Node) sendCtl(dest string, size int64, payload any) {
	n.accountCtl(size)
	if n.gossipOn {
		n.sendToPri(dest, size, payload, 1)
	} else {
		n.sendTo(dest, size, payload)
	}
}

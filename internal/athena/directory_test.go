package athena

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"athena/internal/names"
	"athena/internal/object"
)

func dirDesc(source, name string, size int64, labels ...string) object.Descriptor {
	return object.Descriptor{
		Name:     names.MustParse(name),
		Size:     size,
		Source:   source,
		Labels:   labels,
		Validity: time.Minute,
		ProbTrue: 0.8,
	}
}

func TestSelectSourcesTieBreaking(t *testing.T) {
	// Two equal-cost sources each fully cover the label set; the greedy
	// cover must pick deterministically (lexicographically first).
	d := NewDirectory([]object.Descriptor{
		dirDesc("nodeB", "/cam/b", 100, "l1", "l2"),
		dirDesc("nodeA", "/cam/a", 100, "l1", "l2"),
		dirDesc("nodeC", "/cam/c", 500, "l1"),
	})
	got := d.SelectSources([]string{"l1", "l2"})
	if len(got) != 1 || got[0] != "nodeA" {
		t.Fatalf("SelectSources tie-break: got %v, want [nodeA]", got)
	}
	// Labels nobody covers are omitted, not an error.
	if got := d.SelectSources([]string{"l1", "nocov"}); len(got) != 1 {
		t.Fatalf("SelectSources with uncoverable label: got %v", got)
	}
	if got := d.SelectSources([]string{"nocov"}); got != nil {
		t.Fatalf("SelectSources all-uncoverable: got %v, want nil", got)
	}
}

func TestSourceForLabelExcludingFallback(t *testing.T) {
	d := NewDirectory([]object.Descriptor{
		dirDesc("cheap", "/cam/1", 100, "l"),
		dirDesc("mid", "/cam/2", 200, "l"),
		dirDesc("dear", "/cam/3", 300, "l"),
	})
	// Preferred set wins even when a cheaper source exists outside it.
	if got := d.SourceForLabel("l", []string{"mid", "dear"}); got != "mid" {
		t.Fatalf("preferred: got %q, want mid", got)
	}
	// Excluding the preferred pick falls back to the next preferred.
	if got := d.SourceForLabelExcluding("l", []string{"mid", "dear"}, map[string]bool{"mid": true}); got != "dear" {
		t.Fatalf("exclude preferred: got %q, want dear", got)
	}
	// Excluding every preferred source falls back outside the set.
	ex := map[string]bool{"mid": true, "dear": true}
	if got := d.SourceForLabelExcluding("l", []string{"mid", "dear"}, ex); got != "cheap" {
		t.Fatalf("exclude all preferred: got %q, want cheap", got)
	}
	// Excluding everyone yields "".
	ex["cheap"] = true
	if got := d.SourceForLabelExcluding("l", nil, ex); got != "" {
		t.Fatalf("exclude all: got %q, want empty", got)
	}
}

func TestDirectoryAdvertiseWithdrawEvictOrdering(t *testing.T) {
	d := NewDirectory(nil)
	desc := dirDesc("src", "/cam/s", 100, "l")

	if !d.Advertise(desc, 1) {
		t.Fatal("initial advertise rejected")
	}
	v1 := d.Version()
	if d.Advertise(desc, 1) {
		t.Fatal("duplicate advertise at same seq applied")
	}
	if d.Version() != v1 {
		t.Fatal("rejected advertise bumped version")
	}
	if !d.Advertise(desc, 2) {
		t.Fatal("newer advertise rejected")
	}

	// Eviction is a local suspicion: re-admission at the same seq heals it.
	if !d.Evict("src") {
		t.Fatal("evict of present source failed")
	}
	if d.Has("src") {
		t.Fatal("evicted source still present")
	}
	if d.SourceForLabel("l", nil) != "" {
		t.Fatal("evicted source still serves label lookups")
	}
	if !d.Advertise(desc, 2) {
		t.Fatal("re-admission at same seq after evict rejected")
	}
	if !d.Has("src") {
		t.Fatal("source absent after re-admission")
	}

	// Withdraw is authoritative: re-admission needs a strictly newer seq.
	if !d.Withdraw("src", 2) {
		t.Fatal("withdraw at current seq rejected")
	}
	if d.Advertise(desc, 2) {
		t.Fatal("advertise at withdrawn seq applied")
	}
	if !d.Advertise(desc, 3) {
		t.Fatal("advertise past tombstone rejected")
	}

	// A withdraw for an unknown source leaves a tombstone (leave can
	// overtake join on some replica).
	if !d.Withdraw("ghost", 5) {
		t.Fatal("withdraw of unknown source not recorded")
	}
	seq, present, withdrawn := d.Known("ghost")
	if seq != 5 || present || !withdrawn {
		t.Fatalf("ghost tombstone: seq=%d present=%v withdrawn=%v", seq, present, withdrawn)
	}
	if d.Advertise(dirDesc("ghost", "/cam/g", 1, "g"), 4) {
		t.Fatal("stale advertise resurrected a tombstoned source")
	}
}

func TestDirectoryDigestAndSnapshotConvergence(t *testing.T) {
	descA := dirDesc("a", "/cam/a", 100, "l1")
	descB := dirDesc("b", "/cam/b", 200, "l2")
	d1 := NewDirectory([]object.Descriptor{descA, descB})
	d2 := NewDirectory([]object.Descriptor{descB, descA})
	// Same content, different bootstrap order: the per-source seqs differ,
	// so exchange snapshots until both apply nothing new.
	for _, a := range d1.Snapshot() {
		d2.Apply(a)
	}
	for _, a := range d2.Snapshot() {
		d1.Apply(a)
	}
	if d1.Digest() != d2.Digest() {
		t.Fatalf("digests differ after exchange: %x vs %x", d1.Digest(), d2.Digest())
	}
	// Eviction must not change the digest (it is a local suspicion).
	before := d1.Digest()
	if !d1.Evict("a") {
		t.Fatal("evict failed")
	}
	if d1.Digest() != before {
		t.Fatal("eviction changed the digest")
	}
	// But a withdraw must.
	if !d1.Withdraw("b", 10) {
		t.Fatal("withdraw failed")
	}
	if d1.Digest() == before {
		t.Fatal("withdraw did not change the digest")
	}
	// Snapshots omit evicted records and keep withdrawn tombstones.
	snap := d1.Snapshot()
	if len(snap) != 1 || snap[0].Source != "b" || !snap[0].Withdrawn {
		t.Fatalf("snapshot after evict+withdraw: %+v", snap)
	}
}

func TestDirectoryConcurrentAdvertiseEvict(t *testing.T) {
	// Exercise the RWMutex paths under the race detector: writers
	// advertising/evicting/withdrawing while readers run lookups.
	d := NewDirectory(nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := fmt.Sprintf("src%d", w)
			desc := dirDesc(src, "/cam/"+src, int64(100+w), "l")
			for i := 1; i <= 200; i++ {
				d.Advertise(desc, uint64(i))
				if i%3 == 0 {
					d.Evict(src)
				}
				if i%50 == 0 {
					d.Withdraw(src, uint64(i))
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d.SourceForLabel("l", nil)
				d.SelectSources([]string{"l"})
				d.Sources()
				d.Snapshot()
				d.Digest()
				d.Version()
			}
		}()
	}
	wg.Wait()
	// Every writer's last operation determines its final state; the last
	// op at i=200 is Withdraw(200) preceded by Advertise(200) — withdraw
	// wins at equal seq, so nobody is present.
	if got := d.Sources(); len(got) != 0 {
		t.Fatalf("final sources: %v, want none", got)
	}
}

package athena

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"athena/internal/names"
	"athena/internal/object"
)

func dirDesc(source, name string, size int64, labels ...string) object.Descriptor {
	return object.Descriptor{
		Name:     names.MustParse(name),
		Size:     size,
		Source:   source,
		Labels:   labels,
		Validity: time.Minute,
		ProbTrue: 0.8,
	}
}

func TestSelectSourcesTieBreaking(t *testing.T) {
	// Two equal-cost sources each fully cover the label set; the greedy
	// cover must pick deterministically (lexicographically first).
	d := NewDirectory([]object.Descriptor{
		dirDesc("nodeB", "/cam/b", 100, "l1", "l2"),
		dirDesc("nodeA", "/cam/a", 100, "l1", "l2"),
		dirDesc("nodeC", "/cam/c", 500, "l1"),
	})
	got := d.SelectSources([]string{"l1", "l2"})
	if len(got) != 1 || got[0] != "nodeA" {
		t.Fatalf("SelectSources tie-break: got %v, want [nodeA]", got)
	}
	// Labels nobody covers are omitted, not an error.
	if got := d.SelectSources([]string{"l1", "nocov"}); len(got) != 1 {
		t.Fatalf("SelectSources with uncoverable label: got %v", got)
	}
	if got := d.SelectSources([]string{"nocov"}); got != nil {
		t.Fatalf("SelectSources all-uncoverable: got %v, want nil", got)
	}
}

func TestSourceForLabelExcludingFallback(t *testing.T) {
	d := NewDirectory([]object.Descriptor{
		dirDesc("cheap", "/cam/1", 100, "l"),
		dirDesc("mid", "/cam/2", 200, "l"),
		dirDesc("dear", "/cam/3", 300, "l"),
	})
	// Preferred set wins even when a cheaper source exists outside it.
	if got := d.SourceForLabel("l", []string{"mid", "dear"}); got != "mid" {
		t.Fatalf("preferred: got %q, want mid", got)
	}
	// Excluding the preferred pick falls back to the next preferred.
	if got := d.SourceForLabelExcluding("l", []string{"mid", "dear"}, map[string]bool{"mid": true}); got != "dear" {
		t.Fatalf("exclude preferred: got %q, want dear", got)
	}
	// Excluding every preferred source falls back outside the set.
	ex := map[string]bool{"mid": true, "dear": true}
	if got := d.SourceForLabelExcluding("l", []string{"mid", "dear"}, ex); got != "cheap" {
		t.Fatalf("exclude all preferred: got %q, want cheap", got)
	}
	// Excluding everyone yields "".
	ex["cheap"] = true
	if got := d.SourceForLabelExcluding("l", nil, ex); got != "" {
		t.Fatalf("exclude all: got %q, want empty", got)
	}
}

func TestDirectoryAdvertiseWithdrawEvictOrdering(t *testing.T) {
	d := NewDirectory(nil)
	desc := dirDesc("src", "/cam/s", 100, "l")

	if !d.Advertise(desc, 1) {
		t.Fatal("initial advertise rejected")
	}
	v1 := d.Version()
	if d.Advertise(desc, 1) {
		t.Fatal("duplicate advertise at same seq applied")
	}
	if d.Version() != v1 {
		t.Fatal("rejected advertise bumped version")
	}
	if !d.Advertise(desc, 2) {
		t.Fatal("newer advertise rejected")
	}

	// Eviction is a local suspicion: re-admission at the same seq heals it.
	if !d.Evict("src") {
		t.Fatal("evict of present source failed")
	}
	if d.Has("src") {
		t.Fatal("evicted source still present")
	}
	if d.SourceForLabel("l", nil) != "" {
		t.Fatal("evicted source still serves label lookups")
	}
	if !d.Advertise(desc, 2) {
		t.Fatal("re-admission at same seq after evict rejected")
	}
	if !d.Has("src") {
		t.Fatal("source absent after re-admission")
	}

	// Withdraw is authoritative: re-admission needs a strictly newer seq.
	if !d.Withdraw("src", 2) {
		t.Fatal("withdraw at current seq rejected")
	}
	if d.Advertise(desc, 2) {
		t.Fatal("advertise at withdrawn seq applied")
	}
	if !d.Advertise(desc, 3) {
		t.Fatal("advertise past tombstone rejected")
	}

	// A withdraw for an unknown source leaves a tombstone (leave can
	// overtake join on some replica).
	if !d.Withdraw("ghost", 5) {
		t.Fatal("withdraw of unknown source not recorded")
	}
	seq, present, withdrawn := d.Known("ghost")
	if seq != 5 || present || !withdrawn {
		t.Fatalf("ghost tombstone: seq=%d present=%v withdrawn=%v", seq, present, withdrawn)
	}
	if d.Advertise(dirDesc("ghost", "/cam/g", 1, "g"), 4) {
		t.Fatal("stale advertise resurrected a tombstoned source")
	}
}

func TestDirectoryDigestAndSnapshotConvergence(t *testing.T) {
	descA := dirDesc("a", "/cam/a", 100, "l1")
	descB := dirDesc("b", "/cam/b", 200, "l2")
	d1 := NewDirectory([]object.Descriptor{descA, descB})
	d2 := NewDirectory([]object.Descriptor{descB, descA})
	// Same content, different bootstrap order: the per-source seqs differ,
	// so exchange snapshots until both apply nothing new.
	for _, a := range d1.Snapshot() {
		d2.Apply(a)
	}
	for _, a := range d2.Snapshot() {
		d1.Apply(a)
	}
	if d1.Digest() != d2.Digest() {
		t.Fatalf("digests differ after exchange: %x vs %x", d1.Digest(), d2.Digest())
	}
	// Eviction must not change the digest (it is a local suspicion).
	before := d1.Digest()
	if !d1.Evict("a") {
		t.Fatal("evict failed")
	}
	if d1.Digest() != before {
		t.Fatal("eviction changed the digest")
	}
	// But a withdraw must.
	if !d1.Withdraw("b", 10) {
		t.Fatal("withdraw failed")
	}
	if d1.Digest() == before {
		t.Fatal("withdraw did not change the digest")
	}
	// Snapshots omit evicted records and keep withdrawn tombstones.
	snap := d1.Snapshot()
	if len(snap) != 1 || snap[0].Source != "b" || !snap[0].Withdrawn {
		t.Fatalf("snapshot after evict+withdraw: %+v", snap)
	}
}

func TestDirectoryConcurrentAdvertiseEvict(t *testing.T) {
	// Exercise the RWMutex paths under the race detector: writers
	// advertising/evicting/withdrawing while readers run lookups.
	d := NewDirectory(nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := fmt.Sprintf("src%d", w)
			desc := dirDesc(src, "/cam/"+src, int64(100+w), "l")
			for i := 1; i <= 200; i++ {
				d.Advertise(desc, uint64(i))
				if i%3 == 0 {
					d.Evict(src)
				}
				if i%50 == 0 {
					d.Withdraw(src, uint64(i))
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d.SourceForLabel("l", nil)
				d.SelectSources([]string{"l"})
				d.Sources()
				d.Snapshot()
				d.Digest()
				d.Version()
			}
		}()
	}
	wg.Wait()
	// Every writer's last operation determines its final state; the last
	// op at i=200 is Withdraw(200) preceded by Advertise(200) — withdraw
	// wins at equal seq, so nobody is present.
	if got := d.Sources(); len(got) != 0 {
		t.Fatalf("final sources: %v, want none", got)
	}
}

// Retention: a filter installed by SetRetention demotes declined payloads
// to thin records — seq state (digest, vectors, liveness) stays global
// while the descriptor payload and label index are dropped.
func TestDirectoryRetentionThinsDeclinedRecords(t *testing.T) {
	d := NewDirectory(nil)
	for i := 0; i < 4; i++ {
		src := fmt.Sprintf("n%d", i)
		if !d.Advertise(dirDesc(src, "/grid/cam/"+src, 100, "seg-h"), 1) {
			t.Fatalf("advertise %s rejected", src)
		}
	}
	full := NewDirectory(nil)
	for _, a := range d.Snapshot() {
		full.Apply(a)
	}
	keep := func(desc object.Descriptor) bool { return desc.Source < "n2" }
	d.SetRetention(keep)

	if got := d.EntriesHeld(); got != 2 {
		t.Fatalf("EntriesHeld = %d, want 2", got)
	}
	// Thin records stay in the liveness view but leave the label index and
	// descriptor store.
	if got := d.Sources(); len(got) != 4 {
		t.Fatalf("Sources = %v, want all 4", got)
	}
	if got := d.SourcesFor("seg-h"); len(got) != 2 || got[0] != "n0" || got[1] != "n1" {
		t.Fatalf("SourcesFor = %v, want [n0 n1]", got)
	}
	if _, ok := d.Descriptor("n3"); ok {
		t.Fatal("thin record returned a descriptor")
	}
	if _, ok := d.Descriptor("n1"); !ok {
		t.Fatal("retained record lost its descriptor")
	}
	// The digest covers seq state only, so a thinned replica still agrees
	// with a full one.
	if d.Digest() != full.Digest() {
		t.Fatalf("digest diverged after thinning: %#x vs %#x", d.Digest(), full.Digest())
	}
	// Snapshot and DeltaAgainst ship only full payloads.
	if got := d.Snapshot(); len(got) != 2 {
		t.Fatalf("Snapshot = %d adverts, want 2", len(got))
	}
	if got := d.DeltaAgainst(nil); len(got) != 2 {
		t.Fatalf("DeltaAgainst(nil) = %d adverts, want 2", len(got))
	}

	// A re-advertisement at the SAME seq upgrades thin back to full once the
	// filter admits it (ownership-change backfill), and new advertisements
	// consult the filter on arrival.
	d.SetRetention(func(desc object.Descriptor) bool { return true })
	if !d.Advertise(dirDesc("n2", "/grid/cam/n2", 100, "seg-h"), 1) {
		t.Fatal("equal-seq thin->full upgrade rejected")
	}
	// n3 stays thin: widening the filter cannot resurrect a dropped payload
	// (the bytes are gone) — only a re-advertisement can.
	if got := d.EntriesHeld(); got != 3 {
		t.Fatalf("EntriesHeld after refilter+upgrade = %d, want 3", got)
	}
	if _, ok := d.Descriptor("n2"); !ok {
		t.Fatal("upgraded record has no descriptor")
	}
	if !d.Advertise(dirDesc("n3", "/grid/cam/n3", 100, "seg-h"), 1) {
		t.Fatal("equal-seq upgrade for n3 rejected")
	}
	if got := d.EntriesHeld(); got != 4 {
		t.Fatalf("EntriesHeld after n3 upgrade = %d, want 4", got)
	}
	if got := d.SourcesFor("seg-h"); len(got) != 4 {
		t.Fatalf("SourcesFor after upgrades = %v, want 4 sources", got)
	}
	// Duplicate equal-seq full advert on a full record is still not news.
	if d.Advertise(dirDesc("n3", "/grid/cam/n3", 100, "seg-h"), 1) {
		t.Fatal("duplicate equal-seq advert on full record reported news")
	}
}

// Scoped anti-entropy: DeltaScoped/SeqVectorScoped restrict full payloads
// to the include set but always carry withdraw tombstones.
func TestDirectoryScopedDeltaAndVector(t *testing.T) {
	d := NewDirectory(nil)
	d.Advertise(dirDesc("a", "/g/x/1", 10, "l1"), 3)
	d.Advertise(dirDesc("b", "/g/y/1", 10, "l2"), 2)
	d.Advertise(dirDesc("c", "/g/z/1", 10, "l3"), 1)
	d.Withdraw("b", 5)

	inX := func(desc object.Descriptor) bool { return desc.Source == "a" }
	vec := d.SeqVectorScoped(inX)
	if len(vec) != 2 { // a (included) + b (tombstone)
		t.Fatalf("SeqVectorScoped = %v, want a and the b tombstone", vec)
	}
	if _, ok := vec["c"]; ok {
		t.Fatal("scoped vector leaked an out-of-scope source")
	}

	delta := d.DeltaScoped(nil, inX)
	if len(delta) != 2 {
		t.Fatalf("DeltaScoped(nil) = %v, want advert a + tombstone b", delta)
	}
	for _, a := range delta {
		if a.Source == "b" && !a.Withdrawn {
			t.Fatal("tombstone for b lost its withdrawn flag")
		}
		if a.Source == "c" {
			t.Fatal("scoped delta leaked an out-of-scope advert")
		}
	}
	// A peer already at the tombstone seq filters it out.
	delta = d.DeltaScoped(map[string]uint64{"b": seqState(5, true)}, inX)
	if len(delta) != 1 || delta[0].Source != "a" {
		t.Fatalf("DeltaScoped vs caught-up peer = %v, want just a", delta)
	}
}

// AdvertsFor serves a shard owner's lookup reply: full adverts for the
// present sources covering a label, sorted by source.
func TestDirectoryAdvertsFor(t *testing.T) {
	d := NewDirectory(nil)
	d.Advertise(dirDesc("n2", "/g/a/2", 10, "seg"), 1)
	d.Advertise(dirDesc("n1", "/g/a/1", 10, "seg", "other"), 4)
	d.Advertise(dirDesc("n3", "/g/a/3", 10, "other"), 1)
	got := d.AdvertsFor("seg")
	if len(got) != 2 || got[0].Source != "n1" || got[1].Source != "n2" {
		t.Fatalf("AdvertsFor(seg) = %v, want sorted [n1 n2]", got)
	}
	if got[0].Seq != 4 || len(got[0].Labels) != 2 {
		t.Fatalf("AdvertsFor lost payload: %+v", got[0])
	}
	if got := d.AdvertsFor("nobody"); len(got) != 0 {
		t.Fatalf("AdvertsFor(nobody) = %v, want empty", got)
	}
}

// Listing methods must pre-size their result buffers: per-call allocations
// stay flat (AllSources, Sources) or exactly one labels copy per advert
// (Snapshot, DeltaAgainst) regardless of directory size.
func TestDirectoryListingAllocs(t *testing.T) {
	const n = 64
	d := NewDirectory(nil)
	for i := 0; i < n; i++ {
		src := fmt.Sprintf("n%02d", i)
		d.Advertise(dirDesc(src, "/grid/cam/"+src, 100, "seg-h", "seg-v"), 1)
	}
	checks := []struct {
		name string
		max  float64
		fn   func()
	}{
		{"AllSources", 2, func() { d.AllSources() }},
		{"Sources", 2, func() { d.Sources() }},
		{"Snapshot", n + 2, func() { d.Snapshot() }},
		{"DeltaAgainst", n + 2, func() { d.DeltaAgainst(nil) }},
	}
	for _, c := range checks {
		if got := testing.AllocsPerRun(20, c.fn); got > c.max {
			t.Errorf("%s: %.0f allocs/op with %d records, want <= %.0f", c.name, got, n, c.max)
		}
	}
}

package athena

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"athena/internal/boolexpr"
	"athena/internal/names"
	"athena/internal/netsim"
	"athena/internal/object"
	"athena/internal/simclock"
	"athena/internal/transport"
	"athena/internal/trust"
)

// gossipRig is a fleet of gossip-membership nodes on a seeded random
// connected topology (BuildRandomConnected), every node a source with its
// own directory replica — the shape the SWIM protocol is built for.
type gossipRig struct {
	sched *simclock.Scheduler
	net   *netsim.Network
	ids   []string
	nodes map[string]*Node
}

func buildGossipRig(t *testing.T, n, fanout int, seed int64) *gossipRig {
	t.Helper()
	sched := simclock.New(tBase)
	net := netsim.New(sched)
	rng := rand.New(rand.NewSource(seed))
	linkCfg := netsim.LinkConfig{Bandwidth: 1 << 20, Latency: time.Millisecond}
	if err := netsim.BuildRandomConnected(net, n, n/2, linkCfg, rng); err != nil {
		t.Fatal(err)
	}

	r := &gossipRig{sched: sched, net: net, nodes: make(map[string]*Node)}
	descs := make([]object.Descriptor, n)
	for i := range descs {
		id := fmt.Sprintf("n%d", i)
		r.ids = append(r.ids, id)
		descs[i] = object.Descriptor{
			Name: names.MustParse("/src/" + id), Size: 1000, Source: id,
			Labels: []string{"ok"}, Validity: time.Minute, ProbTrue: 0.8,
		}
	}
	auth := trust.NewAuthority()
	meta := boolexpr.MetaTable{"ok": {Cost: 1000, ProbTrue: 0.8, Validity: time.Minute}}
	world := staticWorld{"ok": true}
	for i, id := range r.ids {
		desc := descs[i]
		node, err := New(Config{
			ID:                id,
			Transport:         transport.NewSim(net, id),
			Router:            net,
			Timers:            schedTimers{sched},
			Scheme:            SchemeLVF,
			Directory:         NewDirectory(descs),
			Meta:              meta,
			World:             world,
			Authority:         auth,
			Signer:            auth.Register(id, []byte("k-"+id)),
			Policy:            trust.TrustAll(),
			Descriptor:        &desc,
			CacheBytes:        8 << 20,
			DisablePrefetch:   true,
			HeartbeatInterval: time.Second,
			HeartbeatMiss:     3,
			GossipFanout:      fanout,
			GossipSeed:        seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.nodes[id] = node
	}
	return r
}

func (r *gossipRig) run(t *testing.T, until time.Duration) {
	t.Helper()
	if err := r.sched.RunUntil(tBase.Add(until), 0); err != nil {
		t.Fatal(err)
	}
}

// logRounds is ⌈log₂(n+1)⌉ — the epidemic-dissemination round unit the
// piggyback budget is denominated in.
func logRounds(n int) int {
	r := 1
	for v := 1; v < n+1; v <<= 1 {
		r++
	}
	return r
}

// All replicas start equal, so steady gossip must keep them equal: no
// suspicions ripen into evictions and every digest stays converged on an
// idle fleet.
func TestGossipSteadyStateNoFalseEvictions(t *testing.T) {
	r := buildGossipRig(t, 16, 2, 11)
	r.run(t, 60*time.Second)
	want := r.nodes[r.ids[0]].Directory().Digest()
	for _, id := range r.ids {
		node := r.nodes[id]
		if got := node.Directory().Digest(); got != want {
			t.Fatalf("%s digest diverged", id)
		}
		if st := node.Stats(); st.Evictions != 0 {
			t.Fatalf("%s false evictions: %+v", id, st)
		}
		if len(node.Directory().Sources()) != 16 {
			t.Fatalf("%s lost sources: %d", id, len(node.Directory().Sources()))
		}
	}
}

// A crashed node is suspected, confirmed through indirect probes, and
// evicted from every live replica within the suspicion window plus
// O(log n) dissemination rounds; no live node is falsely evicted.
func TestGossipCrashEvictionConverges(t *testing.T) {
	const n = 24
	r := buildGossipRig(t, n, 2, 13)
	r.run(t, 20*time.Second) // settle

	// Crash a leaf: the simulator's routes are not failure-aware, so a
	// dead transit node legitimately makes everything behind it
	// unreachable (and thus evictable). A leaf carries no transit
	// traffic, isolating the failure-detector behaviour under test.
	dead := ""
	for _, id := range r.ids {
		if len(r.net.Neighbors(id)) == 1 {
			dead = id
			break
		}
	}
	if dead == "" {
		t.Fatal("topology has no leaf node")
	}
	if err := r.net.SetNodeDown(dead, true); err != nil {
		t.Fatal(err)
	}
	// Detection: the suspicion window is 3×miss×interval = 9s. Eviction
	// disseminates epidemically after that; allow the window plus a
	// generous multiple of log₂ n rounds (1s each).
	wait := 9*time.Second + time.Duration(4*logRounds(n))*time.Second
	r.run(t, 20*time.Second+wait+10*time.Second)

	for _, id := range r.ids {
		if id == dead {
			continue
		}
		node := r.nodes[id]
		if node.Directory().Has(dead) {
			t.Errorf("%s still lists crashed %s", id, dead)
		}
		for _, live := range r.ids {
			if live == dead {
				continue
			}
			if !node.Directory().Has(live) {
				t.Errorf("%s falsely dropped live %s", id, live)
			}
		}
	}
}

// A graceful Leave spreads as a piggybacked withdraw tombstone: every
// replica drops the leaver within O(log n) gossip rounds, with no
// suspicion machinery involved.
func TestGossipGracefulLeaveSpreads(t *testing.T) {
	const n = 24
	r := buildGossipRig(t, n, 2, 17)
	r.run(t, 20*time.Second) // settle

	leaver := r.ids[3]
	if err := r.nodes[leaver].Leave(); err != nil {
		t.Fatal(err)
	}
	rounds := 4 * logRounds(n)
	r.run(t, 20*time.Second+time.Duration(rounds)*time.Second)

	for _, id := range r.ids {
		if id == leaver {
			continue
		}
		if r.nodes[id].Directory().Has(leaver) {
			t.Errorf("%s still lists %s after graceful leave (%d rounds)", id, leaver, rounds)
		}
	}
	evictions := 0
	for _, id := range r.ids {
		evictions += r.nodes[id].Stats().Evictions
	}
	if evictions != 0 {
		t.Errorf("graceful leave caused %d evictions; want tombstones only", evictions)
	}
}

// A rejoining node re-advertises past its tombstone and every replica
// re-admits it within O(log n) rounds of the return.
func TestGossipRejoinConverges(t *testing.T) {
	const n = 16
	r := buildGossipRig(t, n, 2, 19)
	r.run(t, 20*time.Second)

	gone := ""
	for _, id := range r.ids {
		if len(r.net.Neighbors(id)) == 1 {
			gone = id
			break
		}
	}
	if gone == "" {
		t.Fatal("topology has no leaf node")
	}
	if err := r.net.SetNodeDown(gone, true); err != nil {
		t.Fatal(err)
	}
	r.run(t, 60*time.Second) // long outage: everyone evicts it
	for _, id := range r.ids {
		if id != gone && r.nodes[id].Directory().Has(gone) {
			t.Fatalf("%s did not evict %s during outage", id, gone)
		}
	}

	if err := r.net.SetNodeDown(gone, false); err != nil {
		t.Fatal(err)
	}
	r.nodes[gone].Rejoin()
	r.run(t, 60*time.Second+time.Duration(4*logRounds(n))*time.Second)

	for _, id := range r.ids {
		if !r.nodes[id].Directory().Has(gone) {
			t.Errorf("%s did not re-admit %s after rejoin", id, gone)
		}
	}
}

// A false death notice about a live node is refuted: the victim bumps its
// advertisement sequence (SWIM incarnation) and the fleet re-admits it.
func TestGossipRefutesFalseEviction(t *testing.T) {
	const n = 12
	r := buildGossipRig(t, n, 2, 23)
	r.run(t, 15*time.Second)

	victim := r.ids[2]
	accuser := r.nodes[r.ids[7]]
	accuser.mu.Lock()
	seq, _, _ := accuser.dir.Known(victim)
	accuser.applyUpdates([]MemberUpdate{{
		Adv:  Advertisement{Source: victim, Seq: seq},
		Dead: true,
		Born: accuser.now(),
	}}, accuser.now())
	accuser.mu.Unlock()

	r.run(t, 15*time.Second+time.Duration(6*logRounds(n))*time.Second)

	for _, id := range r.ids {
		if !r.nodes[id].Directory().Has(victim) {
			t.Errorf("%s still believes %s dead after refutation", id, victim)
		}
	}
	if st := r.nodes[victim].Stats(); st.Refutations == 0 {
		t.Error("victim never refuted the death notice")
	}
}

// Flood mode must not regress: with GossipFanout unset the same rig runs
// the pre-existing flooded-heartbeat protocol and converges too — and the
// gossip control plane stays strictly cheaper per node than the flood.
func TestGossipControlPlaneCheaperThanFlood(t *testing.T) {
	bytesPerNode := func(fanout int) int64 {
		sched := simclock.New(tBase)
		net := netsim.New(sched)
		rng := rand.New(rand.NewSource(31))
		const n = 32
		if err := netsim.BuildRandomConnected(net, n, n/2, netsim.LinkConfig{Bandwidth: 1 << 20, Latency: time.Millisecond}, rng); err != nil {
			t.Fatal(err)
		}
		descs := make([]object.Descriptor, n)
		ids := make([]string, n)
		for i := range descs {
			ids[i] = fmt.Sprintf("n%d", i)
			descs[i] = object.Descriptor{
				Name: names.MustParse("/src/" + ids[i]), Size: 1000, Source: ids[i],
				Labels: []string{"ok"}, Validity: time.Minute, ProbTrue: 0.8,
			}
		}
		auth := trust.NewAuthority()
		meta := boolexpr.MetaTable{"ok": {Cost: 1000, ProbTrue: 0.8, Validity: time.Minute}}
		nodes := make([]*Node, n)
		for i, id := range ids {
			desc := descs[i]
			node, err := New(Config{
				ID: id, Transport: transport.NewSim(net, id), Router: net,
				Timers: schedTimers{sched}, Scheme: SchemeLVF,
				Directory: NewDirectory(descs), Meta: meta,
				World: staticWorld{"ok": true}, Authority: auth,
				Signer: auth.Register(id, []byte("k-"+id)), Policy: trust.TrustAll(),
				Descriptor: &desc, CacheBytes: 8 << 20, DisablePrefetch: true,
				HeartbeatInterval: time.Second, HeartbeatMiss: 3,
				GossipFanout: fanout, GossipSeed: 31,
			})
			if err != nil {
				t.Fatal(err)
			}
			nodes[i] = node
		}
		if err := sched.RunUntil(tBase.Add(120*time.Second), 0); err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, node := range nodes {
			total += node.Stats().ControlBytes
		}
		return total / n
	}

	flood := bytesPerNode(0)
	gossip := bytesPerNode(2)
	// The 1/3 bound reflects honest probe pricing: pingBaseBytes was
	// repriced from 72 to 96 (the old value undercounted real encoded
	// probe frames), which raised gossip's measured bytes while flood —
	// which sends no probes — was unaffected.
	if gossip*3 > flood {
		t.Errorf("gossip control plane = %d B/node, flood = %d B/node; want gossip <= 33%%", gossip, flood)
	}
}

package athena

import (
	"testing"
	"time"

	"athena/internal/boolexpr"
	"athena/internal/core"
	"athena/internal/names"
	"athena/internal/netsim"
	"athena/internal/object"
	"athena/internal/simclock"
	"athena/internal/transport"
	"athena/internal/trust"
)

// staticWorld is a fixed ground truth for integration tests.
type staticWorld map[string]bool

func (w staticWorld) LabelValue(label string, _ time.Time) bool { return w[label] }

// rig is a hand-built line network nodeA - nodeB - nodeC with a sensor at
// each end and the middle node as pure forwarder.
type rig struct {
	sched *simclock.Scheduler
	net   *netsim.Network
	nodes map[string]*Node
}

func buildRig(t *testing.T, scheme Scheme, world staticWorld, opts func(*Config)) *rig {
	t.Helper()
	sched := simclock.New(tBase)
	net := netsim.New(sched)
	for _, id := range []string{"nodeA", "nodeB", "nodeC"} {
		net.AddNode(id, nil)
	}
	linkCfg := netsim.LinkConfig{Bandwidth: 125_000, Latency: time.Millisecond}
	if err := net.AddLink("nodeA", "nodeB", linkCfg); err != nil {
		t.Fatal(err)
	}
	if err := net.AddLink("nodeB", "nodeC", linkCfg); err != nil {
		t.Fatal(err)
	}

	descs := map[string]*object.Descriptor{
		"nodeA": {
			Name: names.MustParse("/cam/a"), Size: 100_000, Source: "nodeA",
			Labels: []string{"la1", "la2"}, Validity: time.Minute, ProbTrue: 0.8,
		},
		"nodeC": {
			Name: names.MustParse("/cam/c"), Size: 200_000, Source: "nodeC",
			Labels: []string{"lc1", "lc2"}, Validity: time.Minute, ProbTrue: 0.8,
		},
	}
	var all []object.Descriptor
	for _, d := range descs {
		all = append(all, *d)
	}
	dir := NewDirectory(all)
	auth := trust.NewAuthority()
	meta := boolexpr.MetaTable{
		"la1": {Cost: 100_000, ProbTrue: 0.8, Validity: time.Minute},
		"la2": {Cost: 100_000, ProbTrue: 0.8, Validity: time.Minute},
		"lc1": {Cost: 200_000, ProbTrue: 0.8, Validity: time.Minute},
		"lc2": {Cost: 200_000, ProbTrue: 0.8, Validity: time.Minute},
	}

	r := &rig{sched: sched, net: net, nodes: make(map[string]*Node)}
	for _, id := range []string{"nodeA", "nodeB", "nodeC"} {
		cfg := Config{
			ID:         id,
			Transport:  transport.NewSim(net, id),
			Router:     net,
			Timers:     schedTimers{sched},
			Scheme:     scheme,
			Directory:  dir,
			Meta:       meta,
			World:      world,
			Authority:  auth,
			Signer:     auth.Register(id, []byte("k-"+id)),
			Policy:     trust.TrustAll(),
			Descriptor: descs[id],
			CacheBytes: 8 << 20,
			// Prefetch is exercised by its own tests; keep byte-count
			// assertions crisp elsewhere.
			DisablePrefetch: true,
		}
		if opts != nil {
			opts(&cfg)
		}
		node, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.nodes[id] = node
	}
	return r
}

func (r *rig) run(t *testing.T, until time.Duration) {
	t.Helper()
	if err := r.sched.RunUntil(tBase.Add(until), 0); err != nil {
		t.Fatal(err)
	}
}

func TestNodeResolvesRemoteEvidence(t *testing.T) {
	world := staticWorld{"lc1": true, "lc2": true}
	r := buildRig(t, SchemeLVF, world, nil)
	expr := boolexpr.ToDNF(boolexpr.MustParse("lc1 & lc2"))
	id, err := r.nodes["nodeA"].QueryInit(expr, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, time.Minute)
	results := r.nodes["nodeA"].Results()
	if len(results) != 1 || results[0].QueryID != id {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Status != core.ResolvedTrue {
		t.Errorf("status = %v, want resolved-true", results[0].Status)
	}
	// The 200 KB object must have crossed both hops exactly once.
	bytes := r.net.Stats().BytesSent
	if bytes < 400_000 || bytes > 500_000 {
		t.Errorf("network bytes = %d, want ~2 x 200KB + control", bytes)
	}
}

func TestNodeResolvesFalseWithShortCircuit(t *testing.T) {
	world := staticWorld{"lc1": false, "lc2": true}
	r := buildRig(t, SchemeLVF, world, nil)
	expr := boolexpr.ToDNF(boolexpr.MustParse("lc1 & lc2"))
	if _, err := r.nodes["nodeA"].QueryInit(expr, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	r.run(t, time.Minute)
	results := r.nodes["nodeA"].Results()
	if len(results) != 1 || results[0].Status != core.ResolvedFalse {
		t.Fatalf("results = %+v", results)
	}
}

func TestNodeShortCircuitsAcrossTerms(t *testing.T) {
	// First term (cheap, local) is viable: the remote term must never be
	// fetched.
	world := staticWorld{"la1": true, "la2": true, "lc1": true, "lc2": true}
	r := buildRig(t, SchemeLVF, world, nil)
	expr := boolexpr.ToDNF(boolexpr.MustParse("(la1 & la2) | (lc1 & lc2)"))
	if _, err := r.nodes["nodeA"].QueryInit(expr, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	r.run(t, time.Minute)
	results := r.nodes["nodeA"].Results()
	if len(results) != 1 || results[0].Status != core.ResolvedTrue {
		t.Fatalf("results = %+v", results)
	}
	// la* evidence is nodeA's own sensor: no object should cross the
	// network (only announcements).
	if bytes := r.net.Stats().BytesSent; bytes > 10_000 {
		t.Errorf("network bytes = %d, want control traffic only", bytes)
	}
}

func TestNodeDeadlineExpiry(t *testing.T) {
	world := staticWorld{"lc1": true, "lc2": true}
	r := buildRig(t, SchemeLVF, world, nil)
	expr := boolexpr.ToDNF(boolexpr.MustParse("lc1 & lc2"))
	// 200 KB over 2 hops at 125 KB/s needs ~3.2s; 1s deadline must fail.
	if _, err := r.nodes["nodeA"].QueryInit(expr, time.Second); err != nil {
		t.Fatal(err)
	}
	r.run(t, time.Minute)
	results := r.nodes["nodeA"].Results()
	if len(results) != 1 || results[0].Status != core.Expired {
		t.Fatalf("results = %+v, want expired", results)
	}
}

func TestForwarderCacheServesSecondQuery(t *testing.T) {
	world := staticWorld{"lc1": true, "lc2": true}
	r := buildRig(t, SchemeLVF, world, nil)
	expr := boolexpr.ToDNF(boolexpr.MustParse("lc1 & lc2"))
	if _, err := r.nodes["nodeA"].QueryInit(expr, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	r.run(t, 20*time.Second)
	before := r.net.Stats().BytesSent

	// nodeB asks next: its own content store (on-path cache) has the
	// object, so no new transfer from nodeC is needed.
	if _, err := r.nodes["nodeB"].QueryInit(expr, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	r.run(t, 40*time.Second)
	results := r.nodes["nodeB"].Results()
	if len(results) != 1 || results[0].Status != core.ResolvedTrue {
		t.Fatalf("nodeB results = %+v", results)
	}
	delta := r.net.Stats().BytesSent - before
	if delta > 50_000 {
		t.Errorf("second query moved %d bytes; want cache answer (< 50KB)", delta)
	}
	if r.nodes["nodeB"].Stats().CacheAnswers == 0 {
		t.Error("no cache answer recorded")
	}
}

func TestLabelSharingAnswersWithRecords(t *testing.T) {
	world := staticWorld{"lc1": true, "lc2": true}
	r := buildRig(t, SchemeLVFL, world, nil)
	expr := boolexpr.ToDNF(boolexpr.MustParse("lc1 & lc2"))
	if _, err := r.nodes["nodeA"].QueryInit(expr, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	r.run(t, 20*time.Second)
	before := r.net.Stats().BytesSent

	// nodeB's query is answered by cached label records: orders of
	// magnitude less traffic than the 200 KB object.
	if _, err := r.nodes["nodeB"].QueryInit(expr, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	r.run(t, 40*time.Second)
	results := r.nodes["nodeB"].Results()
	if len(results) != 1 || results[0].Status != core.ResolvedTrue {
		t.Fatalf("nodeB results = %+v", results)
	}
	delta := r.net.Stats().BytesSent - before
	if delta > 10_000 {
		t.Errorf("label-share answer moved %d bytes, want < 10KB", delta)
	}
}

func TestTrustNonePolicyForcesObjectFetch(t *testing.T) {
	world := staticWorld{"lc1": true, "lc2": true}
	r := buildRig(t, SchemeLVFL, world, func(cfg *Config) {
		cfg.Policy = trust.TrustNone()
	})
	expr := boolexpr.ToDNF(boolexpr.MustParse("lc1 & lc2"))
	if _, err := r.nodes["nodeA"].QueryInit(expr, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	r.run(t, 20*time.Second)
	results := r.nodes["nodeA"].Results()
	// Like Alice refusing Bob's judgment: the raw object must still
	// resolve the query (nodeA annotates it itself).
	if len(results) != 1 || results[0].Status != core.ResolvedTrue {
		t.Fatalf("results = %+v", results)
	}
	if r.net.Stats().BytesSent < 400_000 {
		t.Error("object transfer expected under TrustNone")
	}
}

func TestRefetchAfterExpiry(t *testing.T) {
	// Dedicated two-node rig with a short-validity sensor.
	sched := simclock.New(tBase)
	net := netsim.New(sched)
	net.AddNode("src", nil)
	net.AddNode("origin", nil)
	if err := net.AddLink("src", "origin", netsim.LinkConfig{Bandwidth: 125_000}); err != nil {
		t.Fatal(err)
	}
	desc := &object.Descriptor{
		Name: names.MustParse("/cam/s"), Size: 400_000, Source: "src",
		// 400 KB at 125 KB/s = 3.2s per hop; validity 4s: fresh on
		// arrival with ~0.8s to spare, but the decision needs a second
		// label that never resolves, so the evidence expires and gets
		// refetched.
		Labels: []string{"ls1", "never"}, Validity: 4 * time.Second, ProbTrue: 0.8,
	}
	dir := NewDirectory([]object.Descriptor{*desc})
	auth := trust.NewAuthority()
	mkNode := func(id string, d *object.Descriptor) *Node {
		node, err := New(Config{
			ID: id, Transport: transport.NewSim(net, id), Router: net,
			Timers: schedTimers{sched}, Scheme: SchemeLVF, Directory: dir,
			Meta:  boolexpr.MetaTable{"ls1": {Cost: 400_000, ProbTrue: 0.8, Validity: 4 * time.Second}},
			World: staticWorld{"ls1": true}, Authority: auth,
			Signer: auth.Register(id, []byte(id)), Policy: trust.TrustAll(),
			Descriptor: d, CacheBytes: 8 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		return node
	}
	mkNode("src", desc)
	origin := mkNode("origin", nil)
	// Query needs ls1 AND an uncoverable label: it can never resolve, so
	// ls1 keeps expiring and being refetched until the deadline.
	expr := boolexpr.ToDNF(boolexpr.MustParse("ls1 & uncoverable"))
	if _, err := origin.QueryInit(expr, 25*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sched.RunUntil(tBase.Add(40*time.Second), 0); err != nil {
		t.Fatal(err)
	}
	results := origin.Results()
	if len(results) != 1 || results[0].Status != core.Expired {
		t.Fatalf("results = %+v, want expired", results)
	}
	if origin.Stats().Refetches == 0 {
		t.Error("no refetches despite expiring evidence")
	}
}

func TestPrefetchPushesFromAnnouncement(t *testing.T) {
	world := staticWorld{"lc1": true, "lc2": true}
	r := buildRig(t, SchemeLVF, world, func(cfg *Config) { cfg.DisablePrefetch = false })
	expr := boolexpr.ToDNF(boolexpr.MustParse("lc1 & lc2"))
	if _, err := r.nodes["nodeA"].QueryInit(expr, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	r.run(t, time.Minute)
	if r.nodes["nodeC"].Stats().PrefetchPushes == 0 {
		t.Error("source did not prefetch-push for the announced query")
	}
}

func TestPrefetchDisabled(t *testing.T) {
	world := staticWorld{"lc1": true, "lc2": true}
	r := buildRig(t, SchemeLVF, world, func(cfg *Config) { cfg.DisablePrefetch = true })
	expr := boolexpr.ToDNF(boolexpr.MustParse("lc1 & lc2"))
	if _, err := r.nodes["nodeA"].QueryInit(expr, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	r.run(t, time.Minute)
	for id, n := range r.nodes {
		if n.Stats().PrefetchPushes != 0 {
			t.Errorf("node %s pushed despite DisablePrefetch", id)
		}
	}
}

func TestQueryInitValidation(t *testing.T) {
	world := staticWorld{}
	r := buildRig(t, SchemeLVF, world, nil)
	if _, err := r.nodes["nodeA"].QueryInit(boolexpr.DNF{}, time.Second); err == nil {
		t.Error("empty expression accepted")
	}
}

func TestNewConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestOnQueryDoneCallback(t *testing.T) {
	world := staticWorld{"la1": true, "la2": true}
	r := buildRig(t, SchemeLVF, world, nil)
	var got []QueryResult
	r.nodes["nodeA"].OnQueryDone(func(res QueryResult) { got = append(got, res) })
	expr := boolexpr.ToDNF(boolexpr.MustParse("la1 & la2"))
	if _, err := r.nodes["nodeA"].QueryInit(expr, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	r.run(t, 20*time.Second)
	if len(got) != 1 || got[0].Status != core.ResolvedTrue {
		t.Fatalf("callback results = %+v", got)
	}
}

func TestBatchSchemeResolves(t *testing.T) {
	world := staticWorld{"la1": true, "lc1": false, "lc2": true}
	for _, scheme := range []Scheme{SchemeCMP, SchemeSLT, SchemeLCF} {
		r := buildRig(t, scheme, world, nil)
		expr := boolexpr.ToDNF(boolexpr.MustParse("(lc1 & lc2) | la1"))
		if _, err := r.nodes["nodeA"].QueryInit(expr, 30*time.Second); err != nil {
			t.Fatal(err)
		}
		r.run(t, time.Minute)
		results := r.nodes["nodeA"].Results()
		if len(results) != 1 || results[0].Status != core.ResolvedTrue {
			t.Fatalf("%v results = %+v", scheme, results)
		}
	}
}

func TestApproximateSubstitution(t *testing.T) {
	// Two cameras under a shared name prefix view the same labels; with
	// approximate matching on, a cached sibling object answers a request
	// for the other camera without contacting its source.
	sched := simclock.New(tBase)
	net := netsim.New(sched)
	for _, id := range []string{"origin", "mid", "cam1", "cam2"} {
		net.AddNode(id, nil)
	}
	link := netsim.LinkConfig{Bandwidth: 125_000, Latency: time.Millisecond}
	for _, l := range [][2]string{{"origin", "mid"}, {"mid", "cam1"}, {"mid", "cam2"}} {
		if err := net.AddLink(l[0], l[1], link); err != nil {
			t.Fatal(err)
		}
	}
	world := staticWorld{"scene": true, "extra": true}
	descs := []object.Descriptor{
		{Name: names.MustParse("/city/market/cam1"), Size: 150_000, Source: "cam1",
			Labels: []string{"scene"}, Validity: time.Minute, ProbTrue: 0.8},
		{Name: names.MustParse("/city/market/cam2"), Size: 150_000, Source: "cam2",
			Labels: []string{"scene", "extra"}, Validity: time.Minute, ProbTrue: 0.8},
	}
	dir := NewDirectory(descs)
	auth := trust.NewAuthority()
	mk := func(id string, d *object.Descriptor) *Node {
		node, err := New(Config{
			ID: id, Transport: transport.NewSim(net, id), Router: net,
			Timers: schedTimers{sched}, Scheme: SchemeLVF, Directory: dir,
			Meta: boolexpr.MetaTable{
				"scene": {Cost: 150_000, ProbTrue: 0.8, Validity: time.Minute},
				"extra": {Cost: 150_000, ProbTrue: 0.8, Validity: time.Minute},
			},
			World: world, Authority: auth,
			Signer: auth.Register(id, []byte(id)), Policy: trust.TrustAll(),
			Descriptor: d, CacheBytes: 8 << 20, DisablePrefetch: true,
			ApproxMinSimilarity: 0.6,
		})
		if err != nil {
			t.Fatal(err)
		}
		return node
	}
	origin := mk("origin", nil)
	mid := mk("mid", nil)
	mk("cam1", &descs[0])
	mk("cam2", &descs[1])

	// Warm mid's cache with cam1's object ("scene" evidence) by resolving
	// a first query at origin; SourceForLabel prefers the cheaper/first
	// camera cam1.
	if _, err := origin.QueryInit(boolexpr.ToDNF(boolexpr.MustParse("scene")), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sched.RunUntil(tBase.Add(20*time.Second), 0); err != nil {
		t.Fatal(err)
	}

	// Now ask for something only cam2 advertises... actually request
	// "scene" via cam2's object by directing the query from mid itself
	// after clearing its own direct knowledge: issue a query at mid for
	// "scene" — its exact cached name matches cam1's object, so to force
	// the approximate path, request cam2's object name directly.
	req := ObjectRequest{
		QueryID:    "manual",
		Origin:     "origin",
		Object:     "/city/market/cam2",
		SourceNode: "cam2",
		Labels:     []string{"scene"},
	}
	before := mid.Stats().ApproxAnswers
	mid.handleMessage("origin", req.WireSize(), &req)
	if err := sched.RunUntil(tBase.Add(30*time.Second), 0); err != nil {
		t.Fatal(err)
	}
	if got := mid.Stats().ApproxAnswers; got != before+1 {
		t.Errorf("ApproxAnswers = %d, want %d (sibling camera substitution)", got, before+1)
	}
}

func TestApproximateSubstitutionDisabledByDefault(t *testing.T) {
	world := staticWorld{"lc1": true, "lc2": true}
	r := buildRig(t, SchemeLVF, world, nil)
	expr := boolexpr.ToDNF(boolexpr.MustParse("lc1 & lc2"))
	if _, err := r.nodes["nodeA"].QueryInit(expr, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	r.run(t, time.Minute)
	for id, n := range r.nodes {
		if n.Stats().ApproxAnswers != 0 {
			t.Errorf("node %s served approximate answers with feature off", id)
		}
	}
}

func TestCriticalNamespacePriority(t *testing.T) {
	// Two sensors behind one congested link: bulk traffic queues first,
	// but the critical-namespace object must be serialized ahead of the
	// bulk backlog and resolve its query sooner.
	sched := simclock.New(tBase)
	net := netsim.New(sched)
	for _, id := range []string{"origin", "relay", "srcBulk", "srcCrit"} {
		net.AddNode(id, nil)
	}
	link := netsim.LinkConfig{Bandwidth: 125_000, Latency: time.Millisecond}
	for _, l := range [][2]string{{"origin", "relay"}, {"relay", "srcBulk"}, {"relay", "srcCrit"}} {
		if err := net.AddLink(l[0], l[1], link); err != nil {
			t.Fatal(err)
		}
	}
	world := staticWorld{"bulk1": true, "crit1": true}
	descs := []object.Descriptor{
		{Name: names.MustParse("/bulk/cam"), Size: 2_000_000, Source: "srcBulk",
			Labels: []string{"bulk1"}, Validity: 5 * time.Minute, ProbTrue: 0.8},
		{Name: names.MustParse("/critical/alarm"), Size: 100_000, Source: "srcCrit",
			Labels: []string{"crit1"}, Validity: 5 * time.Minute, ProbTrue: 0.8},
	}
	dir := NewDirectory(descs)
	auth := trust.NewAuthority()
	critical := names.MustParse("/critical")
	mk := func(id string, d *object.Descriptor) *Node {
		node, err := New(Config{
			ID: id, Transport: transport.NewSim(net, id), Router: net,
			Timers: schedTimers{sched}, Scheme: SchemeLVF, Directory: dir,
			Meta: boolexpr.MetaTable{
				"bulk1": {Cost: 2_000_000, ProbTrue: 0.8, Validity: 5 * time.Minute},
				"crit1": {Cost: 100_000, ProbTrue: 0.8, Validity: 5 * time.Minute},
			},
			World: world, Authority: auth,
			Signer: auth.Register(id, []byte(id)), Policy: trust.TrustAll(),
			Descriptor: d, CacheBytes: 16 << 20, DisablePrefetch: true,
			CriticalPrefix: critical,
		})
		if err != nil {
			t.Fatal(err)
		}
		return node
	}
	origin := mk("origin", nil)
	mk("relay", nil)
	mk("srcBulk", &descs[0])
	mk("srcCrit", &descs[1])

	// Bulk query first so the 2 MB transfer occupies the relay->origin
	// link (16s serialization); then the critical query arrives.
	if _, err := origin.QueryInit(boolexpr.ToDNF(boolexpr.MustParse("bulk1")), 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := sched.RunUntil(tBase.Add(2*time.Second), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := origin.QueryInit(boolexpr.ToDNF(boolexpr.MustParse("crit1")), 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := sched.RunUntil(tBase.Add(2*time.Minute), 0); err != nil {
		t.Fatal(err)
	}

	var bulkDone, critDone time.Time
	for _, r := range origin.Results() {
		if r.Status != core.ResolvedTrue {
			t.Fatalf("query %s = %v", r.QueryID, r.Status)
		}
		switch r.QueryID {
		case "origin/q1":
			bulkDone = r.Finished
		case "origin/q2":
			critDone = r.Finished
		}
	}
	// The critical object (requested while the bulk transfer was in
	// flight) must finish well before the bulk query despite arriving
	// later.
	if !critDone.Before(bulkDone) {
		t.Errorf("critical finished %v, bulk %v: no preferential treatment", critDone, bulkDone)
	}
}

func TestPrewarmTriggersPrefetch(t *testing.T) {
	world := staticWorld{"lc1": true, "lc2": true}
	r := buildRig(t, SchemeLVF, world, func(cfg *Config) { cfg.DisablePrefetch = false })
	expr := boolexpr.ToDNF(boolexpr.MustParse("lc1 & lc2"))

	// Anticipate the decision: nodeC (the source) pushes its object
	// toward nodeA before any query exists.
	if err := r.nodes["nodeA"].Prewarm(expr); err != nil {
		t.Fatal(err)
	}
	r.run(t, 20*time.Second)
	if r.nodes["nodeC"].Stats().PrefetchPushes == 0 {
		t.Fatal("prewarm did not trigger a prefetch push")
	}
	warmBytes := r.net.Stats().BytesSent

	// The actual query now resolves from local/cached state with little
	// extra traffic and immediately.
	if _, err := r.nodes["nodeA"].QueryInit(expr, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	r.run(t, 40*time.Second)
	results := r.nodes["nodeA"].Results()
	if len(results) != 1 || results[0].Status != core.ResolvedTrue {
		t.Fatalf("results = %+v", results)
	}
	delta := r.net.Stats().BytesSent - warmBytes
	if delta > 50_000 {
		t.Errorf("post-prewarm query moved %d bytes; want cached answer", delta)
	}
	if got := results[0].Finished.Sub(results[0].Issued); got > time.Second {
		t.Errorf("post-prewarm latency = %v", got)
	}
	if err := r.nodes["nodeA"].Prewarm(boolexpr.DNF{}); err == nil {
		t.Error("empty prewarm accepted")
	}
}

func TestQueryEvery(t *testing.T) {
	world := staticWorld{"la1": true, "la2": true}
	r := buildRig(t, SchemeLVF, world, nil)
	expr := boolexpr.ToDNF(boolexpr.MustParse("la1 & la2"))
	stop, err := r.nodes["nodeA"].QueryEvery(expr, 5*time.Second, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// 35s window: firings at 0, 10, 20, 30 -> 4 queries.
	r.run(t, 35*time.Second)
	stop()
	r.run(t, 60*time.Second)

	results := r.nodes["nodeA"].Results()
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4 periodic firings", len(results))
	}
	for _, res := range results {
		if res.Status != core.ResolvedTrue {
			t.Errorf("periodic query %s = %v", res.QueryID, res.Status)
		}
	}
	// After stop, no further firings.
	if got := len(r.nodes["nodeA"].Results()); got != 4 {
		t.Errorf("results after stop = %d", got)
	}

	if _, err := r.nodes["nodeA"].QueryEvery(expr, time.Second, 0); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := r.nodes["nodeA"].QueryEvery(boolexpr.DNF{}, time.Second, time.Second); err == nil {
		t.Error("empty expression accepted")
	}
}

func TestFetchQueueOrdersByQueryUrgency(t *testing.T) {
	// Two queries at the same node: the later-issued one has a much
	// tighter deadline, so its request must be dispatched first when both
	// sit in the fetch queue.
	world := staticWorld{"lc1": true, "lc2": true}
	r := buildRig(t, SchemeLVF, world, nil)

	relaxedExpr := boolexpr.ToDNF(boolexpr.MustParse("lc1"))
	urgentExpr := boolexpr.ToDNF(boolexpr.MustParse("lc2"))

	// Issue both before the event loop runs, so both requests are queued
	// together in nodeA's fetch queue.
	if _, err := r.nodes["nodeA"].QueryInit(relaxedExpr, 50*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := r.nodes["nodeA"].QueryInit(urgentExpr, 8*time.Second); err != nil {
		t.Fatal(err)
	}
	r.run(t, time.Minute)

	results := r.nodes["nodeA"].Results()
	if len(results) != 2 {
		t.Fatalf("results = %+v", results)
	}
	byID := make(map[string]QueryResult, 2)
	for _, res := range results {
		byID[res.QueryID] = res
		if res.Status != core.ResolvedTrue {
			t.Fatalf("%s = %v", res.QueryID, res.Status)
		}
	}
	// q2 (urgent) must finish before q1 (relaxed) even though both need
	// the same 200 KB object from nodeC: the urgent request went first
	// and the relaxed query was then served opportunistically from the
	// same delivery, i.e. not later than the urgent one plus epsilon.
	if byID["nodeA/q2"].Finished.After(byID["nodeA/q1"].Finished) {
		t.Errorf("urgent query finished at %v, after relaxed at %v",
			byID["nodeA/q2"].Finished, byID["nodeA/q1"].Finished)
	}
}

package athena

import (
	"testing"
	"time"

	"athena/internal/workload"
)

// runCoalesceScenario runs the pin scenario with the given coalescing
// settings on the sequential reference scheduler.
func runCoalesceScenario(t *testing.T, window time.Duration, budget int64) Outcome {
	t.Helper()
	wcfg := workload.DefaultConfig()
	wcfg.GridRows, wcfg.GridCols = 5, 5
	wcfg.Nodes = 14
	wcfg.QueriesPerNode = 2
	wcfg.Seed = 7
	wcfg.FastRatio = 0.4
	s, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(s, ClusterConfig{
		Scheme:         SchemeLVF,
		CoalesceWindow: window,
		CoalesceBytes:  budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := cluster.Run()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestUnbatchedUnchangedByBatchingLayer pins the acceptance contract of
// the coalescing layer: with CoalesceWindow zero the data plane is
// byte-for-byte the pre-batching node — the goldens below were recorded
// from the baseline this layer landed on, and any drift in them means the
// off path is no longer inert. A non-zero CoalesceBytes without a window
// must be equally inert (the budget only bounds an enabled queue).
func TestUnbatchedUnchangedByBatchingLayer(t *testing.T) {
	const (
		goldenBytes    = int64(67970515)
		goldenIssued   = 24
		goldenResolved = 22
	)
	off := runCoalesceScenario(t, 0, 0)
	if off.TotalBytes != goldenBytes {
		t.Errorf("unbatched TotalBytes = %d, golden %d: the off path is no longer byte-identical",
			off.TotalBytes, goldenBytes)
	}
	if off.QueriesIssued != goldenIssued || off.QueriesResolved != goldenResolved {
		t.Errorf("unbatched resolution = %d/%d, golden %d/%d",
			off.QueriesResolved, off.QueriesIssued, goldenResolved, goldenIssued)
	}
	if off.Node.BatchesSent != 0 || off.Node.BatchedMsgs != 0 || off.Node.BatchBytesSaved != 0 {
		t.Errorf("unbatched run shipped batches: %+v", off.Node)
	}

	budgetOnly := runCoalesceScenario(t, 0, 1<<20)
	if budgetOnly.TotalBytes != off.TotalBytes || budgetOnly.Node != off.Node {
		t.Errorf("CoalesceBytes without a window changed the run:\n%+v\nvs\n%+v",
			budgetOnly.Node, off.Node)
	}
}

// TestBatchedMatchesUnbatchedDecisions runs the pin scenario with
// coalescing enabled and checks the contract from the other side: every
// query still resolves to the same decisions, batches actually ship, and
// the data plane crosses the network in fewer frames for fewer bytes.
func TestBatchedMatchesUnbatchedDecisions(t *testing.T) {
	off := runCoalesceScenario(t, 0, 0)
	on := runCoalesceScenario(t, 10*time.Millisecond, 0)
	if on.QueriesIssued != off.QueriesIssued || on.ResolvedTrue != off.ResolvedTrue ||
		on.ResolvedFalse != off.ResolvedFalse {
		t.Errorf("batched resolution diverged: %d issued (%d true, %d false) vs %d (%d, %d)",
			on.QueriesIssued, on.ResolvedTrue, on.ResolvedFalse,
			off.QueriesIssued, off.ResolvedTrue, off.ResolvedFalse)
	}
	if on.Node.BatchesSent == 0 {
		t.Error("batched run shipped no batch frames")
	}
	if on.Node.DataFrames >= off.Node.DataFrames {
		t.Errorf("batched run did not reduce data-plane frames: %d vs %d",
			on.Node.DataFrames, off.Node.DataFrames)
	}
	if on.TotalBytes >= off.TotalBytes {
		t.Errorf("batched run did not reduce bytes: %d vs %d", on.TotalBytes, off.TotalBytes)
	}
}

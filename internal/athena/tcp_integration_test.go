package athena

import (
	"testing"
	"time"

	"athena/internal/boolexpr"
	"athena/internal/core"
	"athena/internal/names"
	"athena/internal/object"
	"athena/internal/transport"
	"athena/internal/trust"
)

// TestTCPThreeNodeRelay runs three Athena nodes as the paper deployed
// them — separate endpoints addressed by IP:PORT — with the origin and
// source not directly connected: origin <-> relay <-> source. The query
// must resolve through real TCP sockets with hop-by-hop forwarding.
func TestTCPThreeNodeRelay(t *testing.T) {
	RegisterWireTypes()
	world := staticWorld{"remoteA": true, "remoteB": true}
	desc := object.Descriptor{
		Name:     names.MustParse("/tcp/cam"),
		Size:     100_000,
		Validity: time.Minute,
		Labels:   []string{"remoteA", "remoteB"},
		Source:   "source",
		ProbTrue: 0.8,
	}
	dir := NewDirectory([]object.Descriptor{desc})
	auth := trust.NewAuthority()
	meta := boolexpr.MetaTable{
		"remoteA": {Cost: 100_000, ProbTrue: 0.8, Validity: time.Minute},
		"remoteB": {Cost: 100_000, ProbTrue: 0.8, Validity: time.Minute},
	}

	mk := func(id string, d *object.Descriptor, routes map[string]string) (*Node, *transport.TCPTransport) {
		t.Helper()
		tr, err := transport.NewTCP(id, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		node, err := New(Config{
			ID:        id,
			Transport: tr,
			Router:    &StaticRouter{Self: id, NextHops: routes},
			Timers:    WallTimers{},
			Scheme:    SchemeLVFL,
			Directory: dir,
			Meta:      meta,
			World:     world,
			Authority: auth,
			Signer:    auth.Register(id, []byte(id)),
			Policy:    trust.TrustAll(),

			Descriptor: d,
			CacheBytes: 8 << 20,
		})
		if err != nil {
			tr.Close()
			t.Fatal(err)
		}
		return node, tr
	}

	// origin can only dial relay; source can only dial relay.
	origin, originTr := mk("origin", nil, map[string]string{"source": "relay"})
	defer originTr.Close()
	_, relayTr := mk("relay", nil, nil)
	defer relayTr.Close()
	_, sourceTr := mk("source", &desc, map[string]string{"origin": "relay"})
	defer sourceTr.Close()

	originTr.AddPeer("relay", relayTr.Addr())
	relayTr.AddPeer("origin", originTr.Addr())
	relayTr.AddPeer("source", sourceTr.Addr())
	sourceTr.AddPeer("relay", relayTr.Addr())

	done := make(chan QueryResult, 1)
	origin.OnQueryDone(func(r QueryResult) { done <- r })
	expr := boolexpr.ToDNF(boolexpr.MustParse("remoteA & remoteB"))
	if _, err := origin.QueryInit(expr, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.Status != core.ResolvedTrue {
			t.Fatalf("status = %v", r.Status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for decision over TCP")
	}
}

// TestTCPLabelSharingAcrossProcesses verifies that a second consumer is
// answered with signed label records over TCP after the first resolved
// the same predicates.
func TestTCPLabelSharingAcrossProcesses(t *testing.T) {
	RegisterWireTypes()
	world := staticWorld{"shared1": true}
	desc := object.Descriptor{
		Name:     names.MustParse("/tcp/share/cam"),
		Size:     500_000,
		Validity: time.Minute,
		Labels:   []string{"shared1"},
		Source:   "src",
		ProbTrue: 0.8,
	}
	dir := NewDirectory([]object.Descriptor{desc})
	auth := trust.NewAuthority()
	meta := boolexpr.MetaTable{"shared1": {Cost: 500_000, ProbTrue: 0.8, Validity: time.Minute}}

	mk := func(id string, d *object.Descriptor) (*Node, *transport.TCPTransport) {
		t.Helper()
		tr, err := transport.NewTCP(id, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		node, err := New(Config{
			ID: id, Transport: tr, Router: &StaticRouter{Self: id},
			Timers: WallTimers{}, Scheme: SchemeLVFL, Directory: dir,
			Meta: meta, World: world, Authority: auth,
			Signer: auth.Register(id, []byte(id)), Policy: trust.TrustAll(),
			Descriptor: d, CacheBytes: 8 << 20,
		})
		if err != nil {
			tr.Close()
			t.Fatal(err)
		}
		return node, tr
	}

	consumerA, trA := mk("consumerA", nil)
	defer trA.Close()
	consumerB, trB := mk("consumerB", nil)
	defer trB.Close()
	src, trSrc := mk("src", &desc)
	defer trSrc.Close()

	// Both consumers talk to the source directly; B's request should be
	// answered from the source's label cache after A's annotation labels
	// propagate back (dest = source).
	trA.AddPeer("src", trSrc.Addr())
	trB.AddPeer("src", trSrc.Addr())
	trSrc.AddPeer("consumerA", trA.Addr())
	trSrc.AddPeer("consumerB", trB.Addr())

	expr := boolexpr.ToDNF(boolexpr.MustParse("shared1"))
	doneA := make(chan QueryResult, 1)
	consumerA.OnQueryDone(func(r QueryResult) { doneA <- r })
	if _, err := consumerA.QueryInit(expr, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-doneA:
		if r.Status != core.ResolvedTrue {
			t.Fatalf("consumerA status = %v", r.Status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("consumerA timed out")
	}

	// Give consumerA's label-share propagation a moment to reach and be
	// cached at the source before consumerB asks.
	time.Sleep(200 * time.Millisecond)

	doneB := make(chan QueryResult, 1)
	consumerB.OnQueryDone(func(r QueryResult) { doneB <- r })
	if _, err := consumerB.QueryInit(expr, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-doneB:
		if r.Status != core.ResolvedTrue {
			t.Fatalf("consumerB status = %v", r.Status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("consumerB timed out")
	}
	if src.Stats().LabelAnswers == 0 {
		t.Error("source answered consumerB with the object, not cached labels")
	}
}

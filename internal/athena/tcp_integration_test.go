package athena_test

import (
	"testing"
	"time"

	"athena/internal/athena"
	"athena/internal/boolexpr"
	"athena/internal/core"
	"athena/internal/names"
	"athena/internal/object"
	"athena/internal/transport"
	"athena/internal/trust"
	"athena/internal/wire"
)

// staticWorld is a fixed ground truth, duplicated from the in-package
// tests (this file lives in the external test package so it can use the
// internal/wire codec, which itself imports athena).
type staticWorld map[string]bool

func (w staticWorld) LabelValue(label string, _ time.Time) bool { return w[label] }

// TestTCPThreeNodeRelay runs three Athena nodes as the paper deployed
// them — separate endpoints addressed by IP:PORT — with the origin and
// source not directly connected: origin <-> relay <-> source. The query
// must resolve through real TCP sockets with hop-by-hop forwarding.
func TestTCPThreeNodeRelay(t *testing.T) {
	world := staticWorld{"remoteA": true, "remoteB": true}
	desc := object.Descriptor{
		Name:     names.MustParse("/tcp/cam"),
		Size:     100_000,
		Validity: time.Minute,
		Labels:   []string{"remoteA", "remoteB"},
		Source:   "source",
		ProbTrue: 0.8,
	}
	dir := athena.NewDirectory([]object.Descriptor{desc})
	auth := trust.NewAuthority()
	meta := boolexpr.MetaTable{
		"remoteA": {Cost: 100_000, ProbTrue: 0.8, Validity: time.Minute},
		"remoteB": {Cost: 100_000, ProbTrue: 0.8, Validity: time.Minute},
	}

	mk := func(id string, d *object.Descriptor, routes map[string]string) (*athena.Node, *transport.TCPTransport) {
		t.Helper()
		tr, err := transport.NewTCP(id, "127.0.0.1:0", wire.Codec{})
		if err != nil {
			t.Fatal(err)
		}
		node, err := athena.New(athena.Config{
			ID:        id,
			Transport: tr,
			Router:    &athena.StaticRouter{Self: id, NextHops: routes},
			Timers:    athena.WallTimers{},
			Scheme:    athena.SchemeLVFL,
			Directory: dir,
			Meta:      meta,
			World:     world,
			Authority: auth,
			Signer:    auth.Register(id, []byte(id)),
			Policy:    trust.TrustAll(),

			Descriptor: d,
			CacheBytes: 8 << 20,
		})
		if err != nil {
			tr.Close()
			t.Fatal(err)
		}
		return node, tr
	}

	// origin can only dial relay; source can only dial relay.
	origin, originTr := mk("origin", nil, map[string]string{"source": "relay"})
	defer originTr.Close()
	_, relayTr := mk("relay", nil, nil)
	defer relayTr.Close()
	_, sourceTr := mk("source", &desc, map[string]string{"origin": "relay"})
	defer sourceTr.Close()

	originTr.AddPeer("relay", relayTr.Addr())
	relayTr.AddPeer("origin", originTr.Addr())
	relayTr.AddPeer("source", sourceTr.Addr())
	sourceTr.AddPeer("relay", relayTr.Addr())

	done := make(chan athena.QueryResult, 1)
	origin.OnQueryDone(func(r athena.QueryResult) { done <- r })
	expr := boolexpr.ToDNF(boolexpr.MustParse("remoteA & remoteB"))
	if _, err := origin.QueryInit(expr, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.Status != core.ResolvedTrue {
			t.Fatalf("status = %v", r.Status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for decision over TCP")
	}
}

// TestTCPLabelSharingAcrossProcesses verifies that a second consumer is
// answered with signed label records over TCP after the first resolved
// the same predicates.
func TestTCPLabelSharingAcrossProcesses(t *testing.T) {
	world := staticWorld{"shared1": true}
	desc := object.Descriptor{
		Name:     names.MustParse("/tcp/share/cam"),
		Size:     500_000,
		Validity: time.Minute,
		Labels:   []string{"shared1"},
		Source:   "src",
		ProbTrue: 0.8,
	}
	dir := athena.NewDirectory([]object.Descriptor{desc})
	auth := trust.NewAuthority()
	meta := boolexpr.MetaTable{"shared1": {Cost: 500_000, ProbTrue: 0.8, Validity: time.Minute}}

	mk := func(id string, d *object.Descriptor) (*athena.Node, *transport.TCPTransport) {
		t.Helper()
		tr, err := transport.NewTCP(id, "127.0.0.1:0", wire.Codec{})
		if err != nil {
			t.Fatal(err)
		}
		node, err := athena.New(athena.Config{
			ID: id, Transport: tr, Router: &athena.StaticRouter{Self: id},
			Timers: athena.WallTimers{}, Scheme: athena.SchemeLVFL, Directory: dir,
			Meta: meta, World: world, Authority: auth,
			Signer: auth.Register(id, []byte(id)), Policy: trust.TrustAll(),
			Descriptor: d, CacheBytes: 8 << 20,
		})
		if err != nil {
			tr.Close()
			t.Fatal(err)
		}
		return node, tr
	}

	consumerA, trA := mk("consumerA", nil)
	defer trA.Close()
	consumerB, trB := mk("consumerB", nil)
	defer trB.Close()
	src, trSrc := mk("src", &desc)
	defer trSrc.Close()

	// Both consumers talk to the source directly; B's request should be
	// answered from the source's label cache after A's annotation labels
	// propagate back (dest = source).
	trA.AddPeer("src", trSrc.Addr())
	trB.AddPeer("src", trSrc.Addr())
	trSrc.AddPeer("consumerA", trA.Addr())
	trSrc.AddPeer("consumerB", trB.Addr())

	expr := boolexpr.ToDNF(boolexpr.MustParse("shared1"))
	doneA := make(chan athena.QueryResult, 1)
	consumerA.OnQueryDone(func(r athena.QueryResult) { doneA <- r })
	if _, err := consumerA.QueryInit(expr, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-doneA:
		if r.Status != core.ResolvedTrue {
			t.Fatalf("consumerA status = %v", r.Status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("consumerA timed out")
	}

	// Give consumerA's label-share propagation a moment to reach and be
	// cached at the source before consumerB asks.
	time.Sleep(200 * time.Millisecond)

	doneB := make(chan athena.QueryResult, 1)
	consumerB.OnQueryDone(func(r athena.QueryResult) { doneB <- r })
	if _, err := consumerB.QueryInit(expr, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-doneB:
		if r.Status != core.ResolvedTrue {
			t.Fatalf("consumerB status = %v", r.Status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("consumerB timed out")
	}
	if src.Stats().LabelAnswers == 0 {
		t.Error("source answered consumerB with the object, not cached labels")
	}
}

// TestTCPMembershipLifecycle drives the full membership arc over real
// sockets — the exact code path the simulator exercises: three sources
// join an origin through the PeerJoin handshake (no static directory —
// the origin starts knowing nobody), a query resolves via the cheapest
// source, that source leaves gracefully (tombstone), a second source dies
// ungracefully (heartbeat eviction), and a final query is re-sourced to
// the last source standing.
func TestTCPMembershipLifecycle(t *testing.T) {
	world := staticWorld{"live": true}
	auth := trust.NewAuthority()
	meta := boolexpr.MetaTable{"live": {Cost: 100_000, ProbTrue: 0.8, Validity: time.Minute}}
	descFor := func(id string, size int64) *object.Descriptor {
		return &object.Descriptor{
			Name:     names.MustParse("/tcp/member/" + id),
			Size:     size,
			Validity: time.Minute,
			Labels:   []string{"live"},
			Source:   id,
			ProbTrue: 0.8,
		}
	}

	mk := func(id string, d *object.Descriptor) (*athena.Node, *transport.TCPTransport) {
		t.Helper()
		tr, err := transport.NewTCP(id, "127.0.0.1:0", wire.Codec{})
		if err != nil {
			t.Fatal(err)
		}
		// Fail sends to dead peers fast: membership sends hold the node
		// lock, and eviction is how dead peers are handled anyway.
		tr.SetRetryPolicy(1, 0)
		node, err := athena.New(athena.Config{
			ID: id, Transport: tr, Router: &athena.StaticRouter{Self: id},
			Timers: athena.WallTimers{}, Scheme: athena.SchemeLVF,
			Directory: athena.NewDirectory(nil), // learned entirely from joins
			Meta:      meta, World: world, Authority: auth,
			Signer: auth.Register(id, []byte(id)), Policy: trust.TrustAll(),
			Descriptor: d, CacheBytes: 8 << 20,
			HeartbeatInterval: 100 * time.Millisecond,
			HeartbeatMiss:     3,
		})
		if err != nil {
			tr.Close()
			t.Fatal(err)
		}
		return node, tr
	}

	origin, trOrigin := mk("origin", nil)
	defer trOrigin.Close()
	srcA, trA := mk("srcA", descFor("srcA", 100_000))
	defer trA.Close()
	srcB, trB := mk("srcB", descFor("srcB", 200_000))
	defer trB.Close()
	srcC, trC := mk("srcC", descFor("srcC", 300_000))
	defer trC.Close()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Join handshake: each source knows only the origin's address; the
	// origin learns theirs from the PeerJoin, and the acks carry the peer
	// map so later joiners can complete the mesh.
	for _, s := range []struct {
		n  *athena.Node
		tr *transport.TCPTransport
	}{{srcA, trA}, {srcB, trB}, {srcC, trC}} {
		s.tr.AddPeer("origin", trOrigin.Addr())
		if err := s.n.Join("origin"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor("origin to admit all three sources", func() bool {
		d := origin.Directory()
		return d.Has("srcA") && d.Has("srcB") && d.Has("srcC")
	})

	// Query 1 resolves via srcA, the cheapest advertised source.
	expr := boolexpr.ToDNF(boolexpr.MustParse("live"))
	run := func(name string) {
		t.Helper()
		done := make(chan athena.QueryResult, 1)
		origin.OnQueryDone(func(r athena.QueryResult) { done <- r })
		if _, err := origin.QueryInit(expr, 15*time.Second); err != nil {
			t.Fatal(err)
		}
		select {
		case r := <-done:
			if r.Status != core.ResolvedTrue {
				t.Fatalf("%s: status = %v", name, r.Status)
			}
		case <-time.After(20 * time.Second):
			t.Fatalf("%s: timed out", name)
		}
	}
	run("query via srcA")
	if origin.Directory().SourceForLabel("live", nil) != "srcA" {
		t.Fatalf("expected srcA to be the preferred source")
	}

	// Graceful leave: srcA floods a tombstone; everyone drops it at once.
	if err := srcA.Leave(); err != nil {
		t.Fatal(err)
	}
	waitFor("srcA tombstone at origin", func() bool {
		_, present, withdrawn := origin.Directory().Known("srcA")
		return !present && withdrawn
	})
	waitFor("srcA tombstone at srcC", func() bool {
		_, present, withdrawn := srcC.Directory().Known("srcA")
		return !present && withdrawn
	})

	// Ungraceful death: srcB's transport is severed; the origin's failure
	// detector evicts it after the missed-heartbeat budget.
	trB.Close()
	waitFor("srcB eviction at origin", func() bool {
		return !origin.Directory().Has("srcB")
	})
	if origin.Stats().Evictions == 0 {
		t.Fatal("srcB disappeared without an eviction")
	}

	// Query 2 must be re-sourced to srcC, the last source standing.
	run("query re-sourced to srcC")
	if got := origin.Directory().SourceForLabel("live", nil); got != "srcC" {
		t.Fatalf("after leave+eviction, preferred source = %q, want srcC", got)
	}
	_ = srcB // kept alive for its deferred close
}

// TestTCPGossipJoinAddressDissemination pins the join re-flood: under
// SWIM gossip over TCP, every member needs a dialable address for every
// other member — probes and acks are point-to-point, not flooded — but a
// joiner only handshakes with one of them. Before the re-flood, a member
// that joined earlier never learned a later joiner's address; its probes
// (or acks to the joiner's probes) were undeliverable, and after one
// suspicion window a live node was evicted fleet-wide by a gossiped death
// notice. The test stands up origin + two sources that each know only the
// origin, waits through several suspicion windows, and requires zero
// evictions and a fully-meshed address table.
func TestTCPGossipJoinAddressDissemination(t *testing.T) {
	world := staticWorld{"live": true}
	auth := trust.NewAuthority()
	meta := boolexpr.MetaTable{"live": {Cost: 100_000, ProbTrue: 0.8, Validity: time.Minute}}

	mk := func(id string, d *object.Descriptor) (*athena.Node, *transport.TCPTransport) {
		t.Helper()
		tr, err := transport.NewTCP(id, "127.0.0.1:0", wire.Codec{})
		if err != nil {
			t.Fatal(err)
		}
		tr.SetRetryPolicy(1, 0)
		node, err := athena.New(athena.Config{
			ID: id, Transport: tr, Router: &athena.StaticRouter{Self: id},
			Timers: athena.WallTimers{}, Scheme: athena.SchemeLVF,
			Directory: athena.NewDirectory(nil),
			Meta:      meta, World: world, Authority: auth,
			Signer: auth.Register(id, []byte(id)), Policy: trust.TrustAll(),
			Descriptor: d, CacheBytes: 8 << 20,
			HeartbeatInterval: 100 * time.Millisecond,
			HeartbeatMiss:     3,
			GossipFanout:      2,
			SuspectTimeout:    300 * time.Millisecond,
		})
		if err != nil {
			tr.Close()
			t.Fatal(err)
		}
		return node, tr
	}

	descFor := func(id string) *object.Descriptor {
		return &object.Descriptor{
			Name:     names.MustParse("/tcp/gossip/" + id),
			Size:     100_000,
			Validity: time.Minute,
			Labels:   []string{"live"},
			Source:   id,
			ProbTrue: 0.8,
		}
	}

	origin, trOrigin := mk("origin", nil)
	defer trOrigin.Close()
	camA, trA := mk("camA", descFor("camA"))
	defer trA.Close()
	camB, trB := mk("camB", descFor("camB"))
	defer trB.Close()

	// Staggered joins through the origin only: camA is already a member
	// when camB arrives, so camA can learn camB's address only from the
	// re-flooded join.
	trA.AddPeer("origin", trOrigin.Addr())
	if err := camA.Join("origin"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !origin.Directory().Has("camA") {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for camA to join")
		}
		time.Sleep(20 * time.Millisecond)
	}
	trB.AddPeer("origin", trOrigin.Addr())
	if err := camB.Join("origin"); err != nil {
		t.Fatal(err)
	}

	// Several suspicion windows (300ms timeout, 100ms probe interval):
	// long enough that an undeliverable probe path would have evicted.
	time.Sleep(3 * time.Second)

	for _, n := range []*athena.Node{origin, camA, camB} {
		if ev := n.Stats().Evictions; ev != 0 {
			t.Errorf("%s evicted %d live members", n.ID(), ev)
		}
		for _, member := range []string{"camA", "camB"} {
			if !n.Directory().Has(member) {
				t.Errorf("%s lost %s from its directory", n.ID(), member)
			}
		}
	}
	if addr := trA.Peers()["camB"]; addr != trB.Addr() {
		t.Errorf("camA's address for camB = %q, want %q", addr, trB.Addr())
	}
	if addr := trB.Peers()["camA"]; addr != trA.Addr() {
		t.Errorf("camB's address for camA = %q, want %q", addr, trA.Addr())
	}
}

// Package athena implements the paper's proof-of-concept system
// (Section VI): a distributed node that resolves decision queries by
// routing object requests toward data sources through interest tables,
// caching objects and labels on path, prefetching for queries announced by
// neighbors, and — with label sharing enabled — answering object requests
// with tiny signed label records instead of megabyte evidence objects.
package athena

import (
	"fmt"
	"time"

	"athena/internal/trust"
)

// Scheme selects the data-retrieval strategy, matching the five schemes
// evaluated in Section VII.
type Scheme int

const (
	// SchemeCMP is comprehensive retrieval: every relevant object from
	// every covering source, requested eagerly.
	SchemeCMP Scheme = iota + 1
	// SchemeSLT adds source selection (least-cost set cover) to CMP.
	SchemeSLT
	// SchemeLCF is SLT with requests dispatched lowest-cost-first.
	SchemeLCF
	// SchemeLVF is decision-driven scheduling: sequential short-circuit
	// retrieval with longest-validity-first ordering, no label sharing.
	SchemeLVF
	// SchemeLVFL is LVF with label sharing enabled.
	SchemeLVFL
)

// String returns the paper's abbreviation for the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeCMP:
		return "cmp"
	case SchemeSLT:
		return "slt"
	case SchemeLCF:
		return "lcf"
	case SchemeLVF:
		return "lvf"
	case SchemeLVFL:
		return "lvfl"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ParseScheme parses a paper abbreviation.
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "cmp":
		return SchemeCMP, nil
	case "slt":
		return SchemeSLT, nil
	case "lcf":
		return SchemeLCF, nil
	case "lvf":
		return SchemeLVF, nil
	case "lvfl":
		return SchemeLVFL, nil
	default:
		return 0, fmt.Errorf("athena: unknown scheme %q", s)
	}
}

// Schemes lists all retrieval schemes in the paper's presentation order.
func Schemes() []Scheme {
	return []Scheme{SchemeCMP, SchemeSLT, SchemeLCF, SchemeLVF, SchemeLVFL}
}

// Wire message sizes (bytes) used for bandwidth accounting. Control
// messages are small; object payloads dominate, as in the paper.
//
// These constants are load-bearing: netsim charges WireSize() against
// link bandwidth, and the TCP transport pads each encoded frame up to it
// (internal/wire), so every constant must be at least the realistic raw
// encoding of its message. internal/wire's TestWireSizeIsFrameLength and
// TestConstantsCoverRawEncoding keep them honest. labelRecordBytes stays
// well above the raw encoding of a trust.Label on purpose: the HMAC
// signer is a stand-in for a PKI, and 600 B models a real signed record
// (X.509-style cert chain reference + signature), matching the paper's
// label-vs-object byte comparisons.
const (
	announceBaseBytes = 200
	requestBytes      = 160
	dataHeaderBytes   = 256
	labelRecordBytes  = 600
	heartbeatBytes    = 64
	advertBytes       = 160
	joinBaseBytes     = 120
	peerEntryBytes    = 48
	syncBaseBytes     = 96
	// pingBaseBytes was 72, which underpriced the probe header: a raw
	// Ping frame with OnBehalf set (indirect probe) and realistic node
	// ids already encodes to ~80 B before piggyback, so gossip-mode
	// byte tables were charging less than the wire ships.
	pingBaseBytes     = 96
	memberUpdateBytes = advertBytes + 16
	seqEntryBytes     = 24
	// Shard-routed directory traffic: a lookup is a small routed frame
	// (sender, target, label, shard id, nonce), and scoped sync frames
	// carry a shard-id list on top of the usual seq-vector + advert load.
	shardLookupBytes   = 128
	shardSyncBaseBytes = 96
	shardIDBytes       = 4
	// Coalesced data-plane frames: one batch header amortizes the
	// per-message overhead (length prefix, version/type, addressing,
	// padding slack) across every member, so a batched member is priced
	// below its standalone frame. The deltas — 48 B per request, 64 B per
	// data header — are the modeled per-frame overhead batching reclaims.
	batchBaseBytes         = 64
	batchedRequestBytes    = requestBytes - 48
	batchedDataHeaderBytes = dataHeaderBytes - 64
)

// QueryAnnounce floods a query's Boolean expression to nearby nodes
// (execution step (iv) of Section VI-A) so they can prefetch.
type QueryAnnounce struct {
	// QueryID is globally unique.
	QueryID string
	// Origin is the issuing node.
	Origin string
	// Expr is the DNF decision expression in parseable text form.
	Expr string
	// Deadline is the absolute decision deadline.
	Deadline time.Time
	// TTL limits flooding hops.
	TTL int
	// Hops counts how far the announcement has traveled from the origin.
	Hops int
}

// WireSize is the modeled frame length of the encoded message, charged
// against link bandwidth by netsim and padded to by the TCP transport.
func (m QueryAnnounce) WireSize() int64 {
	return announceBaseBytes + int64(len(m.Expr))
}

// ObjectRequest asks for a (fresh copy of a) data object, traveling
// hop-by-hop toward its source node.
type ObjectRequest struct {
	// QueryID names the decision query this request serves.
	QueryID string
	// Origin is the query's origin node (where data must return).
	Origin string
	// Object is the requested object's semantic name.
	Object string
	// SourceNode hosts the sensor that originates the object.
	SourceNode string
	// Labels are the predicates the origin wants resolved from the
	// object; a label-cache hit on all of them can answer the request.
	Labels []string
	// Prefetch marks background requests, which are served from cache or
	// source but never forwarded (Section VI-B).
	Prefetch bool
}

// WireSize is the modeled frame length of the encoded message, charged
// against link bandwidth by netsim and padded to by the TCP transport.
func (m ObjectRequest) WireSize() int64 { return requestBytes }

// ObjectData carries an evidence object hop-by-hop toward Origin, being
// cached at every node on the way (Section VI-C).
type ObjectData struct {
	// Object is the object's semantic name.
	Object string
	// Version is the sample sequence number.
	Version uint64
	// Size is the object payload size in bytes.
	Size int64
	// Created is the sample instant.
	Created time.Time
	// Validity is the freshness interval.
	Validity time.Duration
	// Labels are the predicates the object can evidence.
	Labels []string
	// SourceNode is the originating sensor node.
	SourceNode string
	// Origin is the node the data is being delivered to.
	Origin string
	// QueryID is the query that requested it ("" for prefetch pushes).
	QueryID string
	// Background marks prefetch pushes.
	Background bool
}

// WireSize is the modeled frame length of the encoded message, charged
// against link bandwidth by netsim and padded to by the TCP transport.
func (m ObjectData) WireSize() int64 { return dataHeaderBytes + m.Size }

// LabelShare propagates signed label records (Section VI-D): from an
// evaluator back toward the data source for caching, or from a caching
// node back to a requester as a cheap answer to an ObjectRequest.
type LabelShare struct {
	// Records are the signed labels.
	Records []trust.Label
	// Dest is the node the share is routed toward.
	Dest string
	// QueryID is the query served ("" for propagation toward sources).
	QueryID string
}

// WireSize is the modeled frame length of the encoded message, charged
// against link bandwidth by netsim and padded to by the TCP transport.
func (m LabelShare) WireSize() int64 {
	return int64(len(m.Records)) * labelRecordBytes
}

// Heartbeat is the liveness beacon of the membership layer: flooded
// network-wide (deduplicated by Beat) so every replica's failure detector
// hears every live node. AdvSeq and Digest let receivers notice missing
// advertisements and divergent directories and trigger anti-entropy.
type Heartbeat struct {
	// Node is the beating node.
	Node string
	// Beat is the node's monotonic heartbeat counter (flood dedup key).
	Beat uint64
	// AdvSeq is the node's current advertisement sequence number (0 if it
	// advertises no source).
	AdvSeq uint64
	// Digest summarizes the sender's directory (see Directory.Digest).
	Digest uint64
}

// WireSize is the modeled frame length of the encoded message, charged
// against link bandwidth by netsim and padded to by the TCP transport.
func (m Heartbeat) WireSize() int64 { return heartbeatBytes }

// AdvertGossip propagates advertisement records. In flood mode (To empty)
// it fans network-wide and a node re-floods only the records that were
// news to its own directory, so the flood self-terminates once every
// replica has applied them. In gossip mode it is routed point-to-point:
// the closing push of a seq-vector anti-entropy exchange.
type AdvertGossip struct {
	// To routes the records to one node ("" = flood to all neighbors).
	To string
	// Adverts are the advertisement records being propagated.
	Adverts []Advertisement
}

// WireSize is the modeled frame length of the encoded message, charged
// against link bandwidth by netsim and padded to by the TCP transport.
func (m AdvertGossip) WireSize() int64 {
	return announceBaseBytes + int64(len(m.Adverts))*advertBytes
}

// PeerJoin is the join handshake: a newcomer introduces itself to one
// known peer, carrying its own advertisements and (over TCP) its dialable
// address.
type PeerJoin struct {
	// Node is the joining node.
	Node string
	// Addr is the joiner's dialable transport address ("" on transports
	// with fixed topology, e.g. the simulator).
	Addr string
	// Adverts are the joiner's directory records (usually just its own).
	Adverts []Advertisement
}

// WireSize is the modeled frame length of the encoded message, charged
// against link bandwidth by netsim and padded to by the TCP transport.
func (m PeerJoin) WireSize() int64 {
	return joinBaseBytes + int64(len(m.Adverts))*advertBytes
}

// PeerJoinAck answers a PeerJoin with the responder's directory and (over
// TCP) the addresses of the peers it knows, so the newcomer can complete
// the mesh.
type PeerJoinAck struct {
	// Node is the responding node.
	Node string
	// Addr is the responder's dialable address ("" on the simulator).
	Addr string
	// Peers maps known peer ids to their dialable addresses.
	Peers map[string]string
	// Adverts are the responder's directory records.
	Adverts []Advertisement
}

// WireSize is the modeled frame length of the encoded message, charged
// against link bandwidth by netsim and padded to by the TCP transport.
func (m PeerJoinAck) WireSize() int64 {
	return joinBaseBytes + int64(len(m.Peers))*peerEntryBytes + int64(len(m.Adverts))*advertBytes
}

// PeerLeave floods a graceful departure: receivers tombstone the node's
// advertisement at Seq and re-flood while the withdraw is news.
type PeerLeave struct {
	// Node is the departing node.
	Node string
	// Seq is the node's final advertisement sequence number.
	Seq uint64
}

// WireSize is the modeled frame length of the encoded message, charged
// against link bandwidth by netsim and padded to by the TCP transport.
func (m PeerLeave) WireSize() int64 { return heartbeatBytes }

// SyncRequest opens a push-pull anti-entropy exchange (partition healing,
// Section VI-D spirit). In flood mode the requester pushes its full
// directory snapshot; in gossip mode it sends only its per-source seq
// vector (Seqs), and each side then ships just the records the other is
// behind on — delta extraction against a seq watermark.
type SyncRequest struct {
	// From is the requesting node (the SyncResponse's destination).
	From string
	// To routes the exchange to one node over multiple hops ("" = the
	// receiving neighbor, the pre-gossip behavior).
	To string
	// Adverts are the requester's directory records (flood mode).
	Adverts []Advertisement
	// Seqs maps each known source to its encoded sequence state (gossip
	// mode; see Directory.SeqVector).
	Seqs map[string]uint64
	// Labels are the requester's fresh signed label records.
	Labels []trust.Label
}

// WireSize is the modeled frame length of the encoded message, charged
// against link bandwidth by netsim and padded to by the TCP transport.
func (m SyncRequest) WireSize() int64 {
	return syncBaseBytes + int64(len(m.Adverts))*advertBytes +
		int64(len(m.Seqs))*seqEntryBytes + int64(len(m.Labels))*labelRecordBytes
}

// SyncResponse completes the exchange with the responder's records — the
// full snapshot in flood mode, or only the delta the requester's seq
// vector was missing plus the responder's own vector in gossip mode (so
// the requester can push back whatever the responder lacks).
type SyncResponse struct {
	// From is the responding node.
	From string
	// To routes the response back to the requester ("" = neighbor).
	To string
	// Adverts are the responder's directory records (full or delta).
	Adverts []Advertisement
	// Seqs is the responder's seq vector (gossip mode).
	Seqs map[string]uint64
	// Labels are the responder's fresh signed label records.
	Labels []trust.Label
}

// WireSize is the modeled frame length of the encoded message, charged
// against link bandwidth by netsim and padded to by the TCP transport.
func (m SyncResponse) WireSize() int64 {
	return syncBaseBytes + int64(len(m.Adverts))*advertBytes +
		int64(len(m.Seqs))*seqEntryBytes + int64(len(m.Labels))*labelRecordBytes
}

// MemberUpdate is one piggybacked membership event riding on Ping/Ack/
// PingReq: a (re-)advertisement, a withdraw tombstone (Adv.Withdrawn), or
// a failure-detector eviction notice (Dead) at the sequence number the
// detector last saw. A Dead notice is refutable: the subject re-advertises
// past Adv.Seq (SWIM's incarnation bump) and the fresher advert supersedes
// the notice everywhere it spreads.
type MemberUpdate struct {
	// Adv carries the subject's advertisement state.
	Adv Advertisement
	// Dead marks a failure-detector eviction notice for Adv.Source.
	Dead bool
	// Born stamps the update's origination, for convergence measurement
	// (meaningful under the simulator's shared virtual clock).
	Born time.Time
}

// Ping is the SWIM probe: a direct liveness check of To, carrying the
// prober's advert seq + directory digest (to trigger anti-entropy exactly
// like a flooded heartbeat would) and a bounded piggyback buffer of
// membership updates. When relayed by an intermediary (ping-req), OnBehalf
// names the original prober and the target acks it directly.
type Ping struct {
	// From is the probing (or relaying) node.
	From string
	// To is the probe target; intermediate hops forward unopened.
	To string
	// Seq matches the ack to the prober's outstanding probe state.
	Seq uint64
	// AdvSeq is the prober's current advertisement sequence number.
	AdvSeq uint64
	// Digest summarizes the prober's directory (see Directory.Digest).
	Digest uint64
	// OnBehalf is the original prober when this ping is an indirect probe
	// relayed by an intermediary ("" for direct probes).
	OnBehalf string
	// OnBehalfSeq is the original prober's probe sequence number.
	OnBehalfSeq uint64
	// Updates is the piggybacked membership delta.
	Updates []MemberUpdate
}

// WireSize is the modeled frame length of the encoded message, charged
// against link bandwidth by netsim and padded to by the TCP transport.
func (m Ping) WireSize() int64 {
	return pingBaseBytes + int64(len(m.Updates))*memberUpdateBytes
}

// Ack answers a Ping, carrying the responder's own state and piggyback
// buffer back — every probe round doubles as a bidirectional update
// exchange.
type Ack struct {
	// From is the acking node (the probe's target).
	From string
	// To is the prober the ack is routed to.
	To string
	// Seq echoes the probe's sequence number.
	Seq uint64
	// AdvSeq is the acker's current advertisement sequence number.
	AdvSeq uint64
	// Digest summarizes the acker's directory.
	Digest uint64
	// Updates is the piggybacked membership delta.
	Updates []MemberUpdate
}

// WireSize is the modeled frame length of the encoded message, charged
// against link bandwidth by netsim and padded to by the TCP transport.
func (m Ack) WireSize() int64 {
	return pingBaseBytes + int64(len(m.Updates))*memberUpdateBytes
}

// PingReq asks intermediary To to probe Target on From's behalf — the
// SWIM indirect probe that separates "the target is dead" from "my path
// to the target is bad" before eviction.
type PingReq struct {
	// From is the suspecting prober.
	From string
	// To is the intermediary asked to relay the probe.
	To string
	// Target is the suspect to probe.
	Target string
	// Seq is the prober's probe sequence number (echoed by the ack).
	Seq uint64
	// Updates is the piggybacked membership delta.
	Updates []MemberUpdate
}

// WireSize is the modeled frame length of the encoded message, charged
// against link bandwidth by netsim and padded to by the TCP transport.
func (m PingReq) WireSize() int64 {
	return pingBaseBytes + int64(len(m.Updates))*memberUpdateBytes
}

// ShardLookup asks a shard owner to resolve a coverage label against its
// shard-local directory. Under sharding, a non-owner holds only thin
// records for the label's sources, so the query path routes to the label's
// home shard instead of scanning a full replica.
type ShardLookup struct {
	// From is the querying node (the reply's destination).
	From string
	// To is the shard owner the lookup is routed to.
	To string
	// Label is the coverage label being resolved.
	Label string
	// Shard is the label's home shard, echoed for ownership checks.
	Shard uint32
	// Nonce matches the reply to the querier's pending lookup state.
	Nonce uint64
}

// WireSize is the modeled frame length of the encoded message, charged
// against link bandwidth by netsim and padded to by the TCP transport.
func (m ShardLookup) WireSize() int64 { return shardLookupBytes }

// ShardLookupReply answers a ShardLookup with the full advertisements of
// the present sources covering the label, straight from the owner's
// shard-local index.
type ShardLookupReply struct {
	// From is the answering shard owner.
	From string
	// To routes the reply back to the querier.
	To string
	// Label echoes the resolved label.
	Label string
	// Shard echoes the label's home shard.
	Shard uint32
	// Nonce echoes the lookup's nonce.
	Nonce uint64
	// Adverts are the covering sources' full advertisement records.
	Adverts []Advertisement
}

// WireSize is the modeled frame length of the encoded message, charged
// against link bandwidth by netsim and padded to by the TCP transport.
func (m ShardLookupReply) WireSize() int64 {
	return shardLookupBytes + int64(len(m.Adverts))*advertBytes
}

// ShardSyncRequest opens a push-pull anti-entropy exchange scoped to the
// shards both ends replicate: the requester ships its seq vector restricted
// to those shards' sources, and the responder returns only the records the
// requester is behind on. Replaces whole-directory sync between co-replicas
// and serves as the backfill path when a node gains a shard.
type ShardSyncRequest struct {
	// From is the requesting node (the response's destination).
	From string
	// To routes the exchange to one co-replica over multiple hops.
	To string
	// Shards are the shard ids the exchange is scoped to.
	Shards []uint32
	// Seqs is the requester's seq vector restricted to the scoped shards
	// (plus withdraw tombstones; see Directory.SeqVectorScoped).
	Seqs map[string]uint64
}

// WireSize is the modeled frame length of the encoded message, charged
// against link bandwidth by netsim and padded to by the TCP transport.
func (m ShardSyncRequest) WireSize() int64 {
	return shardSyncBaseBytes + int64(len(m.Shards))*shardIDBytes +
		int64(len(m.Seqs))*seqEntryBytes
}

// ShardSyncResponse completes a scoped exchange: the delta the requester's
// vector was missing within the scoped shards, plus the responder's own
// scoped vector so the requester can push back whatever the responder
// lacks — without ever widening the exchange past the shared shards.
type ShardSyncResponse struct {
	// From is the responding co-replica.
	From string
	// To routes the response back to the requester.
	To string
	// Shards echo the exchange's scope.
	Shards []uint32
	// Adverts are the scoped delta records.
	Adverts []Advertisement
	// Seqs is the responder's scoped seq vector.
	Seqs map[string]uint64
}

// WireSize is the modeled frame length of the encoded message, charged
// against link bandwidth by netsim and padded to by the TCP transport.
func (m ShardSyncResponse) WireSize() int64 {
	return shardSyncBaseBytes + int64(len(m.Shards))*shardIDBytes +
		int64(len(m.Adverts))*advertBytes + int64(len(m.Seqs))*seqEntryBytes
}

// RequestBatch coalesces same-neighbor ObjectRequests into one frame.
// A batch is a hop-local container: it is addressed to a direct neighbor,
// and each member carries its own end-to-end routing state (Origin,
// SourceNode), so the receiver unpacks it and runs every member through
// the ordinary request path — forwarding re-coalesces at the next hop.
type RequestBatch struct {
	// Requests are the coalesced member requests, in enqueue order.
	Requests []ObjectRequest
}

// WireSize is the modeled frame length of the encoded message, charged
// against link bandwidth by netsim and padded to by the TCP transport.
// One batch header replaces the members' per-frame overhead.
func (m RequestBatch) WireSize() int64 {
	return batchBaseBytes + int64(len(m.Requests))*batchedRequestBytes
}

// DataBatch coalesces same-neighbor ObjectData messages into one frame.
// Like RequestBatch it is hop-local: members keep their own Origin and
// QueryID, and the receiver feeds each through the ordinary data path
// (caching, interest fan-out, onward forwarding).
type DataBatch struct {
	// Items are the coalesced member objects, in enqueue order.
	Items []ObjectData
}

// WireSize is the modeled frame length of the encoded message, charged
// against link bandwidth by netsim and padded to by the TCP transport.
// Members keep their payload bytes; only the per-frame header shrinks.
func (m DataBatch) WireSize() int64 {
	size := int64(batchBaseBytes)
	for i := range m.Items {
		size += batchedDataHeaderBytes + m.Items[i].Size
	}
	return size
}

package athena

import (
	"sort"

	"athena/internal/cover"
	"athena/internal/object"
)

// Directory is the semantic lookup service (standing in for the paper's
// refs [8][9]): it maps labels to the sources whose advertised object
// streams can evidence them. In the simulation it is populated from the
// scenario; a deployment would build it from source advertisements.
type Directory struct {
	bySource map[string]object.Descriptor
	byLabel  map[string][]string
}

// NewDirectory indexes the advertised descriptors.
func NewDirectory(descs []object.Descriptor) *Directory {
	d := &Directory{
		bySource: make(map[string]object.Descriptor, len(descs)),
		byLabel:  make(map[string][]string),
	}
	for _, desc := range descs {
		d.bySource[desc.Source] = desc
		for _, l := range desc.Labels {
			d.byLabel[l] = append(d.byLabel[l], desc.Source)
		}
	}
	for l := range d.byLabel {
		sort.Strings(d.byLabel[l])
	}
	return d
}

// SourcesFor lists the source nodes covering a label, sorted.
func (d *Directory) SourcesFor(label string) []string {
	return append([]string(nil), d.byLabel[label]...)
}

// Descriptor returns a source node's advertised stream.
func (d *Directory) Descriptor(source string) (object.Descriptor, bool) {
	desc, ok := d.bySource[source]
	return desc, ok
}

// SelectSources solves the Section III-B coverage problem for a label set:
// the least-cost subset of sources covering all labels, via greedy
// weighted set cover (ref [10]). It returns the chosen source ids. Labels
// nobody covers are simply omitted from the result's coverage (the query
// will fail to resolve them, which is surfaced at decision time).
func (d *Directory) SelectSources(labels []string) []string {
	candidateSet := make(map[string]bool)
	coverable := make([]string, 0, len(labels))
	for _, l := range labels {
		srcs := d.byLabel[l]
		if len(srcs) == 0 {
			continue
		}
		coverable = append(coverable, l)
		for _, s := range srcs {
			candidateSet[s] = true
		}
	}
	if len(coverable) == 0 {
		return nil
	}
	candidates := make([]string, 0, len(candidateSet))
	for s := range candidateSet {
		candidates = append(candidates, s)
	}
	sort.Strings(candidates)

	wanted := make(map[string]bool, len(coverable))
	for _, l := range coverable {
		wanted[l] = true
	}
	sources := make([]cover.Source, len(candidates))
	for i, s := range candidates {
		desc := d.bySource[s]
		covers := make([]string, 0, len(desc.Labels))
		for _, l := range desc.Labels {
			if wanted[l] {
				covers = append(covers, l)
			}
		}
		sources[i] = cover.Source{ID: s, Cost: float64(desc.Size), Covers: covers}
	}
	picked, err := cover.Greedy(coverable, sources)
	if err != nil {
		// Greedy covers everything coverable by construction; defensive.
		return candidates
	}
	out := make([]string, len(picked))
	for i, idx := range picked {
		out[i] = sources[idx].ID
	}
	sort.Strings(out)
	return out
}

// SourceForLabel picks, among preferred sources (if any cover the label),
// the cheapest covering source; preferred is typically the query's
// selected-source set. Returns "" if nobody covers the label.
func (d *Directory) SourceForLabel(label string, preferred []string) string {
	return d.SourceForLabelExcluding(label, preferred, nil)
}

// SourceForLabelExcluding is SourceForLabel restricted to sources not in
// exclude. The retry layer uses it to find an alternate source when the
// primary keeps timing out (Section VI-B's directory-supplied alternates).
// Returns "" when every covering source is excluded.
func (d *Directory) SourceForLabelExcluding(label string, preferred []string, exclude map[string]bool) string {
	all := d.byLabel[label]
	if len(all) == 0 {
		return ""
	}
	prefSet := make(map[string]bool, len(preferred))
	for _, p := range preferred {
		prefSet[p] = true
	}
	best := ""
	var bestSize int64
	consider := func(s string) {
		if exclude[s] {
			return
		}
		desc := d.bySource[s]
		if best == "" || desc.Size < bestSize || (desc.Size == bestSize && s < best) {
			best, bestSize = s, desc.Size
		}
	}
	for _, s := range all {
		if prefSet[s] {
			consider(s)
		}
	}
	if best != "" {
		return best
	}
	for _, s := range all {
		consider(s)
	}
	return best
}

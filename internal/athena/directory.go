package athena

import (
	"slices"
	"sort"
	"strings"
	"sync"
	"time"

	"athena/internal/cover"
	"athena/internal/metrics"
	"athena/internal/names"
	"athena/internal/object"
)

// Advertisement is the wire form of one source's directory record: a
// flattened descriptor plus the advertisement sequence number that orders
// updates from the same source. Withdrawn records are tombstones left by
// explicit leaves so stale re-advertisements cannot resurrect a departed
// source.
type Advertisement struct {
	// Source is the advertising node.
	Source string
	// Name is the advertised object stream's semantic name.
	Name string
	// Size is the typical object size in bytes.
	Size int64
	// Validity is the stream's freshness interval.
	Validity time.Duration
	// Labels are the predicates the stream evidences.
	Labels []string
	// ProbTrue is the prior probability a label from this stream is true.
	ProbTrue float64
	// Seq is the source's monotonic advertisement sequence number.
	Seq uint64
	// Withdrawn marks a tombstone from an explicit leave.
	Withdrawn bool
}

// Descriptor reconstructs the object.Descriptor the advertisement carries.
func (a Advertisement) Descriptor() (object.Descriptor, error) {
	name, err := names.Parse(a.Name)
	if err != nil {
		return object.Descriptor{}, err
	}
	return object.Descriptor{
		Name:     name,
		Size:     a.Size,
		Validity: a.Validity,
		Labels:   append([]string(nil), a.Labels...),
		Source:   a.Source,
		ProbTrue: a.ProbTrue,
	}, nil
}

// advertisementOf flattens a descriptor into its wire form.
func advertisementOf(desc object.Descriptor, seq uint64) Advertisement {
	return Advertisement{
		Source:   desc.Source,
		Name:     desc.Name.String(),
		Size:     desc.Size,
		Validity: desc.Validity,
		Labels:   append([]string(nil), desc.Labels...),
		ProbTrue: desc.ProbTrue,
		Seq:      seq,
	}
}

// advState is one source's directory record. A record outlives its
// presence: after a withdraw or eviction the sequence number is kept so
// ordering against later advertisements still works.
type advState struct {
	desc object.Descriptor
	seq  uint64
	// present means the source is currently admitted (listed for lookups).
	present bool
	// withdrawn distinguishes an explicit leave (re-admission needs a
	// strictly newer Seq) from a failure-detector eviction (re-admission at
	// the same Seq is allowed — the eviction may have been a false
	// positive).
	withdrawn bool
	// thin marks a record whose descriptor payload was declined by the
	// retention filter (the source's shard is not replicated here): the
	// sequence/liveness state is kept — digests and seq vectors still
	// converge globally — but the labels are dropped and the record is not
	// in the label index.
	thin bool
}

// Directory is the semantic lookup service (standing in for the paper's
// refs [8][9]): it maps labels to the sources whose advertised object
// streams can evidence them. It is a mutable, versioned store fed by
// source advertisements — Advertise admits or updates a source, Withdraw
// processes an explicit leave, and Evict removes a source the failure
// detector gave up on. Per-source monotonic sequence numbers order
// concurrent updates, so replicas that exchange advertisements converge
// regardless of delivery order. All methods are safe for concurrent use.
type Directory struct {
	mu       sync.RWMutex
	version  uint64
	records  map[string]*advState
	byLabel  map[string][]string // present sources per label, sorted
	verGauge *metrics.Gauge      // mirrors version; nil when uninstrumented

	// digest caches Digest()'s value until the next mutation. digestSrcs
	// is the recompute's sort scratch; both are guarded by mu.
	digest     uint64
	digestOK   bool
	digestSrcs []string

	// keep is the retention filter installed by SetRetention (nil keeps
	// every payload — the full-replica default). It must not take locks:
	// Advertise calls it while holding d.mu.
	keep func(object.Descriptor) bool
}

// NewDirectory indexes the bootstrap descriptors. Later descriptors for
// the same source replace earlier ones (they get a newer sequence number).
func NewDirectory(descs []object.Descriptor) *Directory {
	d := &Directory{
		records: make(map[string]*advState, len(descs)),
		byLabel: make(map[string][]string),
	}
	for i, desc := range descs {
		d.Advertise(desc, uint64(i)+1)
	}
	return d
}

// Instrument mirrors the directory's version counter into the given gauge
// (nil for a no-op) so pollers can watch membership churn without locking
// the directory.
func (d *Directory) Instrument(version *metrics.Gauge) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.verGauge = version
	d.verGauge.SetMax(int64(d.version))
}

// Advertise admits or updates a source's advertisement. It applies only
// when seq is newer than the source's current record (or equal, for a
// source that was evicted rather than withdrawn — an eviction is a local
// suspicion, not a statement by the source). Returns whether the
// directory changed.
func (d *Directory) Advertise(desc object.Descriptor, seq uint64) bool {
	if desc.Source == "" {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	keepFull := d.keep == nil || d.keep(desc)
	r, ok := d.records[desc.Source]
	if ok {
		if r.present && seq <= r.seq {
			// One re-application at the current seq is allowed: upgrading a
			// thin record to a full one when the retention filter now wants
			// the payload (backfill after a shard ownership change).
			if !(r.thin && keepFull && seq == r.seq) {
				return false
			}
		}
		if !r.present && (seq < r.seq || (r.withdrawn && seq == r.seq)) {
			return false
		}
		if r.present && !r.thin {
			d.unindexLocked(r.desc)
		}
	} else {
		r = &advState{}
		d.records[desc.Source] = r
	}
	if keepFull {
		r.desc = desc
		r.thin = false
		d.indexLocked(desc)
	} else {
		// Retention declined the payload: keep only what ordering and
		// liveness need. The name survives so re-route bookkeeping can still
		// tell which stream went away.
		r.desc = object.Descriptor{Source: desc.Source, Name: desc.Name}
		r.thin = true
	}
	r.seq = seq
	r.present = true
	r.withdrawn = false
	d.bumpVersionLocked()
	return true
}

// SetRetention installs a descriptor retention filter: advertisements the
// filter declines are stored as thin records — sequence and liveness state
// only, no descriptor payload and no label-index entry — so a sharded
// node's descriptor memory stays proportional to the shards it replicates
// while digests and sequence vectors still converge globally. A nil filter
// keeps every payload (the full-replica default). Existing full records
// the filter declines are demoted immediately; thin records it now wants
// are promoted by the next scoped sync (the payload is gone locally).
func (d *Directory) SetRetention(keep func(object.Descriptor) bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.keep = keep
	d.refilterLocked()
}

// Refilter re-applies the retention filter to every held record, demoting
// full records the filter no longer wants. Call it after the filter's
// decision inputs change (a shard ownership change); promotions happen via
// scoped sync, not here.
func (d *Directory) Refilter() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.refilterLocked()
}

func (d *Directory) refilterLocked() {
	if d.keep == nil {
		return
	}
	changed := false
	for src, r := range d.records {
		if !r.present || r.thin || d.keep(r.desc) {
			continue
		}
		d.unindexLocked(r.desc)
		r.desc = object.Descriptor{Source: src, Name: r.desc.Name}
		r.thin = true
		changed = true
	}
	if changed {
		d.bumpVersionLocked()
	}
}

// EntriesHeld counts the records whose descriptor payload is held locally
// (present, non-thin) — the per-node directory-memory metric ablation A9
// reports. A full replica holds every present source.
func (d *Directory) EntriesHeld() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for _, r := range d.records {
		if r.present && !r.thin {
			n++
		}
	}
	return n
}

// Withdraw processes an explicit leave: the source's record becomes a
// tombstone at the given sequence number, rejecting any advertisement at
// or below it. Withdrawing an unknown source records the tombstone too
// (the leave may arrive before the join on some replica). Returns whether
// the directory changed.
func (d *Directory) Withdraw(source string, seq uint64) bool {
	if source == "" {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.records[source]
	if !ok {
		d.records[source] = &advState{
			desc:      object.Descriptor{Source: source},
			seq:       seq,
			withdrawn: true,
		}
		d.bumpVersionLocked()
		return true
	}
	if seq < r.seq || (!r.present && r.withdrawn && seq == r.seq) {
		return false
	}
	if r.present {
		d.unindexLocked(r.desc)
	}
	r.present = false
	r.withdrawn = true
	r.seq = seq
	d.bumpVersionLocked()
	return true
}

// Evict removes a source the failure detector declared dead. The sequence
// number is kept and re-admission at the same number stays possible, so a
// false positive heals as soon as the source is heard from again. Returns
// whether the source was present.
func (d *Directory) Evict(source string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.records[source]
	if !ok || !r.present {
		return false
	}
	d.unindexLocked(r.desc)
	r.present = false
	r.withdrawn = false
	d.bumpVersionLocked()
	return true
}

// bumpVersionLocked increments the mutation counter, mirrors it into
// the instrumentation gauge, and invalidates the cached digest. Callers
// hold d.mu.
func (d *Directory) bumpVersionLocked() {
	d.version++
	d.digestOK = false
	// SetMax, not Set: in a cluster every replica mirrors into one fleet
	// gauge, and max-merge is the only order-independent combination.
	d.verGauge.SetMax(int64(d.version))
}

// Apply dispatches a wire advertisement to Advertise or Withdraw.
func (d *Directory) Apply(a Advertisement) bool {
	if a.Withdrawn {
		return d.Withdraw(a.Source, a.Seq)
	}
	desc, err := a.Descriptor()
	if err != nil {
		return false
	}
	return d.Advertise(desc, a.Seq)
}

// Version returns the mutation counter: it increments on every applied
// Advertise/Withdraw/Evict, so pollers can detect change cheaply. It is a
// local counter — versions of different replicas are not comparable.
func (d *Directory) Version() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.version
}

// Digest summarizes the advertisement state replicas must agree on: every
// known source's sequence number and withdrawn flag. Presence is excluded
// on purpose — evictions are local suspicions, and two healthy replicas
// disagreeing only about an eviction should not ping-pong anti-entropy
// exchanges. Equal digests mean no advertisement either side is missing.
// The digest is cached until the next mutation: probes attach it on
// every ping, and between membership changes recomputing the sorted
// fold is pure waste.
func (d *Directory) Digest() uint64 {
	d.mu.RLock()
	if d.digestOK {
		v := d.digest
		d.mu.RUnlock()
		return v
	}
	d.mu.RUnlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.digestOK {
		d.digest = d.computeDigestLocked()
		d.digestOK = true
	}
	return d.digest
}

// computeDigestLocked folds the record state with FNV-1a, matching
// hash/fnv's 64a parameters without its allocation. Callers hold d.mu
// for writing (the sort scratch is reused).
func (d *Directory) computeDigestLocked() uint64 {
	srcs := d.digestSrcs[:0]
	for s := range d.records {
		srcs = append(srcs, s)
	}
	sort.Strings(srcs)
	d.digestSrcs = srcs
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, s := range srcs {
		r := d.records[s]
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * prime64
		}
		for i := 0; i < 8; i++ {
			h = (h ^ (r.seq >> (8 * i) & 0xff)) * prime64
		}
		w := uint64(0)
		if r.withdrawn {
			w = 1
		}
		h = (h ^ w) * prime64
	}
	return h
}

// seqState encodes one record's ordering state for vector exchange: the
// sequence number shifted left one bit with the withdrawn flag in the low
// bit, so a tombstone at seq n orders strictly after a presence at seq n —
// exactly the precedence Withdraw/Advertise apply.
func seqState(seq uint64, withdrawn bool) uint64 {
	s := seq << 1
	if withdrawn {
		s |= 1
	}
	return s
}

// SeqVector summarizes every known source's sequence state for a delta
// anti-entropy exchange: source → seqState. It is the watermark DeltaAgainst
// extracts changes against, and costs O(sources) small entries instead of
// the full advertisement snapshot.
func (d *Directory) SeqVector() map[string]uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[string]uint64, len(d.records))
	for src, r := range d.records {
		out[src] = seqState(r.seq, !r.present && r.withdrawn)
	}
	return out
}

// DeltaAgainst returns the records (present advertisements and withdrawn
// tombstones) that are news to a replica whose SeqVector is peer — the
// delta half of the gossip-mode anti-entropy exchange. Evicted records are
// omitted for the same reason Snapshot omits them: an eviction is this
// replica's suspicion, not state to push; thin records are omitted because
// their payload is not held here. Sorted by source.
func (d *Directory) DeltaAgainst(peer map[string]uint64) []Advertisement {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Advertisement, 0, len(d.records))
	for src, r := range d.records {
		var a Advertisement
		switch {
		case r.present && !r.thin:
			a = advertisementOf(r.desc, r.seq)
		case !r.present && r.withdrawn:
			a = Advertisement{Source: src, Seq: r.seq, Withdrawn: true}
		default:
			continue
		}
		if have, ok := peer[src]; !ok || seqState(r.seq, a.Withdrawn) > have {
			out = append(out, a)
		}
	}
	sortAdverts(out)
	return out
}

// DeltaScoped is DeltaAgainst restricted to a shard subset: the full
// present records the include filter accepts, plus every withdrawn
// tombstone (a tombstone's shard set is unknowable — its payload is gone —
// and its seq entry is tiny), filtered to news against the peer vector.
// Sorted by source.
func (d *Directory) DeltaScoped(peer map[string]uint64, include func(object.Descriptor) bool) []Advertisement {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Advertisement, 0, len(d.records))
	for src, r := range d.records {
		var a Advertisement
		switch {
		case r.present && !r.thin && include(r.desc):
			a = advertisementOf(r.desc, r.seq)
		case !r.present && r.withdrawn:
			a = Advertisement{Source: src, Seq: r.seq, Withdrawn: true}
		default:
			continue
		}
		if have, ok := peer[src]; !ok || seqState(r.seq, a.Withdrawn) > have {
			out = append(out, a)
		}
	}
	sortAdverts(out)
	return out
}

// SeqVectorScoped is SeqVector restricted the same way DeltaScoped is:
// full present records the include filter accepts plus withdrawn
// tombstones. It is the watermark half of a shard-scoped sync request.
func (d *Directory) SeqVectorScoped(include func(object.Descriptor) bool) map[string]uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[string]uint64)
	for src, r := range d.records {
		switch {
		case r.present && !r.thin && include(r.desc):
			out[src] = seqState(r.seq, false)
		case !r.present && r.withdrawn:
			out[src] = seqState(r.seq, true)
		}
	}
	return out
}

// Snapshot returns every present advertisement plus withdrawn tombstones,
// sorted by source — the anti-entropy exchange unit. Evicted records are
// omitted: an eviction is this replica's suspicion, not state to push.
// Thin records are omitted too — their payload is not held here.
func (d *Directory) Snapshot() []Advertisement {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Advertisement, 0, len(d.records))
	for src, r := range d.records {
		switch {
		case r.present && !r.thin:
			out = append(out, advertisementOf(r.desc, r.seq))
		case !r.present && r.withdrawn:
			out = append(out, Advertisement{Source: src, Seq: r.seq, Withdrawn: true})
		}
	}
	sortAdverts(out)
	return out
}

// sortAdverts orders adverts by source without sort.Slice's interface and
// swapper allocations — these sorts sit on the anti-entropy and status
// scrape paths.
func sortAdverts(out []Advertisement) {
	slices.SortFunc(out, func(a, b Advertisement) int {
		return strings.Compare(a.Source, b.Source)
	})
}

// AllSources lists every source the directory has a record for — present,
// withdrawn or evicted — sorted. The status endpoint uses it to report
// liveness for departed peers too.
func (d *Directory) AllSources() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.records))
	for src := range d.records {
		out = append(out, src)
	}
	sort.Strings(out)
	return out
}

// Sources lists the present source nodes, sorted.
func (d *Directory) Sources() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.records))
	for src, r := range d.records {
		if r.present {
			out = append(out, src)
		}
	}
	sort.Strings(out)
	return out
}

// Has reports whether the source is currently admitted.
func (d *Directory) Has(source string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	r, ok := d.records[source]
	return ok && r.present
}

// Seq returns the highest advertisement sequence number processed for the
// source (whether or not it is present).
func (d *Directory) Seq(source string) (uint64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	r, ok := d.records[source]
	if !ok {
		return 0, false
	}
	return r.seq, true
}

// Known returns the source's full record state: its highest processed
// sequence number, whether it is present, and whether its absence is an
// explicit withdraw (vs. a local eviction). A source never heard of
// returns (0, false, false).
func (d *Directory) Known(source string) (seq uint64, present, withdrawn bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	r, ok := d.records[source]
	if !ok {
		return 0, false, false
	}
	return r.seq, r.present, r.withdrawn
}

// indexLocked adds a present source to the label index. Callers hold d.mu.
func (d *Directory) indexLocked(desc object.Descriptor) {
	for _, l := range desc.Labels {
		srcs := d.byLabel[l]
		i := sort.SearchStrings(srcs, desc.Source)
		if i < len(srcs) && srcs[i] == desc.Source {
			continue
		}
		srcs = append(srcs, "")
		copy(srcs[i+1:], srcs[i:])
		srcs[i] = desc.Source
		d.byLabel[l] = srcs
	}
}

// unindexLocked removes a source from the label index. Callers hold d.mu.
func (d *Directory) unindexLocked(desc object.Descriptor) {
	for _, l := range desc.Labels {
		srcs := d.byLabel[l]
		i := sort.SearchStrings(srcs, desc.Source)
		if i >= len(srcs) || srcs[i] != desc.Source {
			continue
		}
		srcs = append(srcs[:i], srcs[i+1:]...)
		if len(srcs) == 0 {
			delete(d.byLabel, l)
		} else {
			d.byLabel[l] = srcs
		}
	}
}

// SourcesFor lists the source nodes covering a label, sorted.
func (d *Directory) SourcesFor(label string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]string(nil), d.byLabel[label]...)
}

// AdvertsFor returns full advertisements for the present sources covering
// a label, sorted by source — the payload a shard owner serves in a
// ShardLookupReply.
func (d *Directory) AdvertsFor(label string) []Advertisement {
	d.mu.RLock()
	defer d.mu.RUnlock()
	srcs := d.byLabel[label]
	out := make([]Advertisement, 0, len(srcs))
	for _, s := range srcs {
		r := d.records[s]
		out = append(out, advertisementOf(r.desc, r.seq))
	}
	return out
}

// Descriptor returns a present source node's advertised stream. Thin
// records (payload declined by the retention filter) read as absent, so
// callers fall through to the shard-routed remote lookup.
func (d *Directory) Descriptor(source string) (object.Descriptor, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	r, ok := d.records[source]
	if !ok || !r.present || r.thin {
		return object.Descriptor{}, false
	}
	return r.desc, true
}

// SelectSources solves the Section III-B coverage problem for a label set:
// the least-cost subset of sources covering all labels, via greedy
// weighted set cover (ref [10]). It returns the chosen source ids. Labels
// nobody covers are simply omitted from the result's coverage (the query
// will fail to resolve them, which is surfaced at decision time).
func (d *Directory) SelectSources(labels []string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	candidateSet := make(map[string]bool)
	coverable := make([]string, 0, len(labels))
	for _, l := range labels {
		srcs := d.byLabel[l]
		if len(srcs) == 0 {
			continue
		}
		coverable = append(coverable, l)
		for _, s := range srcs {
			candidateSet[s] = true
		}
	}
	if len(coverable) == 0 {
		return nil
	}
	candidates := make([]string, 0, len(candidateSet))
	for s := range candidateSet {
		candidates = append(candidates, s)
	}
	sort.Strings(candidates)

	wanted := make(map[string]bool, len(coverable))
	for _, l := range coverable {
		wanted[l] = true
	}
	sources := make([]cover.Source, len(candidates))
	for i, s := range candidates {
		desc := d.records[s].desc
		covers := make([]string, 0, len(desc.Labels))
		for _, l := range desc.Labels {
			if wanted[l] {
				covers = append(covers, l)
			}
		}
		sources[i] = cover.Source{ID: s, Cost: float64(desc.Size), Covers: covers}
	}
	picked, err := cover.Greedy(coverable, sources)
	if err != nil {
		// Greedy covers everything coverable by construction; defensive.
		return candidates
	}
	out := make([]string, len(picked))
	for i, idx := range picked {
		out[i] = sources[idx].ID
	}
	sort.Strings(out)
	return out
}

// SourceForLabel picks, among preferred sources (if any cover the label),
// the cheapest covering source; preferred is typically the query's
// selected-source set. Returns "" if nobody covers the label.
func (d *Directory) SourceForLabel(label string, preferred []string) string {
	return d.SourceForLabelExcluding(label, preferred, nil)
}

// SourceForLabelExcluding is SourceForLabel restricted to sources not in
// exclude. The retry layer uses it to find an alternate source when the
// primary keeps timing out (Section VI-B's directory-supplied alternates).
// Returns "" when every covering source is excluded.
func (d *Directory) SourceForLabelExcluding(label string, preferred []string, exclude map[string]bool) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	all := d.byLabel[label]
	if len(all) == 0 {
		return ""
	}
	prefSet := make(map[string]bool, len(preferred))
	for _, p := range preferred {
		prefSet[p] = true
	}
	best := ""
	var bestSize int64
	consider := func(s string) {
		if exclude[s] {
			return
		}
		desc := d.records[s].desc
		if best == "" || desc.Size < bestSize || (desc.Size == bestSize && s < best) {
			best, bestSize = s, desc.Size
		}
	}
	for _, s := range all {
		if prefSet[s] {
			consider(s)
		}
	}
	if best != "" {
		return best
	}
	for _, s := range all {
		consider(s)
	}
	return best
}

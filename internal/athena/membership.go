package athena

import (
	"errors"
	"sort"
	"time"

	"athena/internal/transport"
	"athena/internal/trust"
)

// This file implements the live-membership layer (the deployment half of
// the paper's semantic lookup service, refs [8][9]): nodes advertise their
// source streams, flood heartbeats so every replica's failure detector
// hears every live node, evict sources that miss HeartbeatMiss beats,
// re-source in-flight fetches of evicted sources, and reconcile diverged
// directory replicas and label caches with push-pull anti-entropy after a
// partition heals. The same code path runs over the deterministic
// simulator (cluster churn) and over real TCP (cmd/athenad join/leave).

// startMembership arms the protocol loop — flooded heartbeats by default,
// SWIM gossip rounds when GossipFanout is set (swim.go). Called once from
// New when HeartbeatInterval is positive; runs on the node's timers so the
// first round happens after construction (and, over TCP, after peers are
// added).
func (n *Node) startMembership() {
	n.timers.After(0, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.gossipOn {
			n.gossipTick()
		} else {
			n.heartbeatTick()
		}
	})
}

// heartbeatTick floods one heartbeat, runs the failure detector, and
// re-arms itself. Callers hold n.mu.
func (n *Node) heartbeatTick() {
	now := n.now()
	n.beatSeq++
	hb := &Heartbeat{Node: n.id, Beat: n.beatSeq, AdvSeq: n.adSeq, Digest: n.dir.Digest()}
	n.floodCtl(hb.WireSize(), hb, "")
	n.stats.HeartbeatsSent++
	n.m.heartbeats.Inc()

	// Failure detection: a present source (other than us) that has been
	// silent for HeartbeatMiss intervals is evicted. A source we have never
	// heard from gets its grace clock armed now.
	deadline := time.Duration(n.hbMiss) * n.hbInterval
	for _, src := range n.dir.Sources() {
		if src == n.id {
			continue
		}
		last, ok := n.lastHeard[src]
		if !ok {
			n.lastHeard[src] = now
			continue
		}
		if now.Sub(last) > deadline {
			n.evictSource(src)
		}
	}

	n.timers.AfterArg(n.hbInterval, n.heartbeatTickFn, nil)
}

// heartbeatTickArg adapts heartbeatTick to the Timers.AfterArg shape; it
// is bound once in New (n.heartbeatTickFn) so re-arming each interval
// allocates nothing.
func (n *Node) heartbeatTickArg(any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.heartbeatTick()
}

// evictSource removes a silent source from the directory and re-sources
// every in-flight fetch that was waiting on it via the directory's
// alternate-source path. Callers hold n.mu.
func (n *Node) evictSource(src string) {
	desc, had := n.descriptorOf(src)
	if !n.dir.Evict(src) {
		return
	}
	n.stats.Evictions++
	n.m.evictions.Inc()
	delete(n.lastHeard, src)
	n.shardOnSourceDown(src)
	if had {
		n.reSourceFrom(src, desc.Name.String())
	}
}

// reSourceFrom clears in-flight fetches of the given object and marks its
// source suspect on every affected query, then pumps them so the next
// request goes to an alternate covering source
// (SourceForLabelExcluding). Callers hold n.mu.
func (n *Node) reSourceFrom(src, objName string) {
	ids := make([]string, 0, len(n.queries))
	for id := range n.queries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		q := n.queries[id]
		if q.recorded {
			continue
		}
		if _, ok := q.outstanding[objName]; !ok {
			continue
		}
		delete(q.outstanding, objName)
		q.suspect[src] = true
		n.pump(q)
	}
}

// floodCtl fans a control message out to all neighbors except one,
// charging each copy to the control-plane counters. Callers hold n.mu.
func (n *Node) floodCtl(size int64, payload any, except string) {
	for _, nb := range n.tr.Neighbors() {
		if nb == except {
			continue
		}
		n.accountCtl(size)
		if err := n.tr.Send(nb, size, payload); err != nil {
			n.stats.RoutingDrops++
		}
	}
}

// handleHeartbeat tracks liveness, re-floods the beat, and triggers
// anti-entropy when the beat reveals a missing advertisement or a
// diverged directory. Callers hold n.mu.
func (n *Node) handleHeartbeat(from string, hb *Heartbeat) {
	if !n.memberOn || hb.Node == n.id {
		return
	}
	if hb.Beat <= n.seenBeat[hb.Node] {
		return
	}
	n.seenBeat[hb.Node] = hb.Beat
	now := n.now()
	n.lastHeard[hb.Node] = now
	n.floodCtl(hb.WireSize(), hb, from)
	// Divergence checks shared with the gossip protocol (swim.go) — note
	// the flood protocol syncs with the delivering neighbor, not the
	// beat's originator, so checkPeerState's peer argument is the node
	// whose advert/digest we examined while the sync partner stays `from`.
	needSync := false
	if hb.AdvSeq > 0 {
		// A live node advertises a source we do not list: either we missed
		// the advertisement or we evicted it (a false positive, or a healed
		// partition). A withdrawn tombstone at or past AdvSeq means it left
		// on purpose and this beat is stale — no sync for that.
		seq, present, withdrawn := n.dir.Known(hb.Node)
		if !present && (hb.AdvSeq > seq || !withdrawn) {
			needSync = true
		}
	}
	if hb.Digest != n.dir.Digest() {
		needSync = true
	}
	if needSync {
		n.maybeSync(from, now)
	}
}

// maybeSync opens a push-pull anti-entropy exchange with a peer,
// rate-limited to one per heartbeat interval per peer. Flood mode pushes
// the full directory snapshot to a neighbor; gossip mode routes a compact
// seq vector to the (possibly distant) peer and each side then ships only
// the records the other's vector is behind on. Callers hold n.mu.
func (n *Node) maybeSync(peer string, now time.Time) {
	if last, ok := n.lastSync[peer]; ok && now.Sub(last) < n.hbInterval {
		return
	}
	n.lastSync[peer] = now
	if n.shardOn {
		// Sharded replicas reconcile only the shards both sides own; the
		// rest of the seq space converges through the piggyback channel.
		// Nothing shared means nothing to exchange (the rate-limit slot
		// still burns, bounding re-checks against this peer).
		shared := n.shardRouter.SharedShards(peer)
		if len(shared) == 0 {
			return
		}
		n.stats.SyncExchanges++
		n.m.syncRounds.Inc()
		sreq := &ShardSyncRequest{
			From:   n.id,
			To:     peer,
			Shards: shared,
			Seqs:   n.dir.SeqVectorScoped(n.shardRouter.InShards(shared)),
		}
		n.sendCtl(peer, sreq.WireSize(), sreq)
		return
	}
	n.stats.SyncExchanges++
	n.m.syncRounds.Inc()
	req := &SyncRequest{From: n.id, To: peer}
	if n.gossipOn {
		// Gossip-mode sync reconciles the directory only: seq vectors in,
		// deltas out. Label records keep flowing through the retrieval
		// plane (query answers); shipping the full label cache on every
		// digest divergence would dwarf the probe traffic this protocol
		// exists to bound.
		req.Seqs = n.dir.SeqVector()
	} else {
		req.Adverts = n.dir.Snapshot()
		req.Labels = n.labels.Records(now)
	}
	n.sendCtl(peer, req.WireSize(), req)
}

// handleSyncRequest applies the requester's push half and answers with
// this replica's records — the full snapshot for a flood-mode request,
// or the delta against the requester's seq vector plus this replica's own
// vector for a gossip-mode one. Callers hold n.mu.
func (n *Node) handleSyncRequest(from string, req *SyncRequest) {
	if !n.memberOn {
		return
	}
	if req.To != "" && req.To != n.id {
		n.sendCtl(req.To, req.WireSize(), req)
		return
	}
	n.applyAdverts(req.Adverts, "")
	n.absorbLabels(req.Labels)
	now := n.now()
	resp := &SyncResponse{From: n.id, To: req.From}
	if len(req.Seqs) > 0 {
		resp.Adverts = n.dir.DeltaAgainst(req.Seqs)
		resp.Seqs = n.dir.SeqVector()
	} else {
		resp.Adverts = n.dir.Snapshot()
		resp.Labels = n.labels.Records(now)
	}
	n.sendCtl(req.From, resp.WireSize(), resp)
}

// handleSyncResponse applies the pull half and, in gossip mode, pushes
// back whatever the responder's seq vector shows it is still missing —
// closing the exchange with both replicas at the union of their records.
// Callers hold n.mu.
func (n *Node) handleSyncResponse(from string, resp *SyncResponse) {
	if !n.memberOn {
		return
	}
	if resp.To != "" && resp.To != n.id {
		n.sendCtl(resp.To, resp.WireSize(), resp)
		return
	}
	n.applyAdverts(resp.Adverts, "")
	n.absorbLabels(resp.Labels)
	if len(resp.Seqs) > 0 {
		if push := n.dir.DeltaAgainst(resp.Seqs); len(push) > 0 {
			g := &AdvertGossip{To: resp.From, Adverts: push}
			n.sendCtl(resp.From, g.WireSize(), g)
		}
	}
}

// handleGossip applies propagated advertisements: a flood-mode message
// (no To) re-floods whatever was news so the flood self-terminates on
// convergence; a routed one (gossip mode's sync push) is forwarded until
// it reaches its destination and applied there, with news spreading
// onward through the piggyback channel. Callers hold n.mu.
func (n *Node) handleGossip(from string, g *AdvertGossip) {
	if !n.memberOn {
		return
	}
	if g.To != "" && g.To != n.id {
		n.sendCtl(g.To, g.WireSize(), g)
		return
	}
	n.applyAdverts(g.Adverts, from)
}

// applyOneAdvert merges one advertisement record into the directory with
// its liveness and re-sourcing side effects, and reports whether it was
// news. Dissemination is the caller's business. Callers hold n.mu.
func (n *Node) applyOneAdvert(a Advertisement, now time.Time) bool {
	if a.Source == n.id {
		return false // we are the authority on our own advertisement
	}
	desc, hadDesc := n.descriptorOf(a.Source)
	if !n.dir.Apply(a) {
		return false
	}
	delete(n.suspects, a.Source)
	if a.Withdrawn {
		delete(n.lastHeard, a.Source)
		n.shardOnSourceDown(a.Source)
		if hadDesc {
			n.reSourceFrom(a.Source, desc.Name.String())
		}
	} else {
		n.lastHeard[a.Source] = now
	}
	return true
}

// applyAdverts merges advertisement records into the directory,
// re-sources fetches stranded by applied withdrawals, and disseminates
// the records that were news — flooding them to all neighbors except the
// one they came from, or (gossip mode) enqueueing them on the piggyback
// buffer. Callers hold n.mu.
func (n *Node) applyAdverts(advs []Advertisement, from string) []Advertisement {
	now := n.now()
	var news []Advertisement
	for _, a := range advs {
		if n.applyOneAdvert(a, now) {
			news = append(news, a)
		}
	}
	if len(news) > 0 {
		if n.gossipOn {
			for _, a := range news {
				n.enqueuePiggy(MemberUpdate{Adv: a, Born: now})
			}
		} else {
			g := &AdvertGossip{Adverts: news}
			n.floodCtl(g.WireSize(), g, from)
		}
	}
	return news
}

// absorbLabels verifies and caches shared label records from an
// anti-entropy exchange. Callers hold n.mu.
func (n *Node) absorbLabels(recs []trust.Label) {
	for i := range recs {
		rec := recs[i]
		if n.authority.Verify(&rec) == nil {
			n.labels.Put(&rec)
		}
	}
}

// handlePeerJoin admits a newcomer: learn its address (on transports that
// support it), apply and propagate its advertisements, and answer with
// this replica's directory plus the peer addresses it knows. The join is
// re-flooded while the joiner's address is news so existing members learn
// it too — gossip probes and acks need a dialable address for every
// member, and the joiner only handshakes with one of them. Callers hold
// n.mu.
func (n *Node) handlePeerJoin(from string, pj *PeerJoin) {
	if !n.memberOn || pj.Node == n.id {
		return
	}
	news := false
	if pa, ok := n.tr.(transport.PeerAdder); ok && pj.Addr != "" {
		news = n.peerAddrs()[pj.Node] != pj.Addr
		pa.AddPeer(pj.Node, pj.Addr)
	}
	n.lastHeard[pj.Node] = n.now()
	n.applyAdverts(pj.Adverts, pj.Node)
	if from == pj.Node {
		// Direct handshake: answer with our directory and peer map.
		// Flooded copies stay one-way — the joiner already has an ack.
		ack := &PeerJoinAck{
			Node:    n.id,
			Addr:    n.selfAddr(),
			Peers:   n.peerAddrs(),
			Adverts: n.dir.Snapshot(),
		}
		n.sendCtl(pj.Node, ack.WireSize(), ack)
	}
	if news {
		n.floodCtl(pj.WireSize(), pj, from)
	}
}

// handlePeerJoinAck completes the joiner's side of the handshake: learn
// every peer address the responder shared and merge its directory.
// Callers hold n.mu.
func (n *Node) handlePeerJoinAck(from string, ack *PeerJoinAck) {
	if !n.memberOn {
		return
	}
	if pa, ok := n.tr.(transport.PeerAdder); ok {
		if ack.Addr != "" {
			pa.AddPeer(ack.Node, ack.Addr)
		}
		ids := make([]string, 0, len(ack.Peers))
		for id := range ack.Peers {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			if id != n.id && ack.Peers[id] != "" {
				pa.AddPeer(id, ack.Peers[id])
			}
		}
	}
	n.lastHeard[ack.Node] = n.now()
	n.applyAdverts(ack.Adverts, ack.Node)
}

// handlePeerLeave tombstones a departing node, re-sources fetches that
// depended on it, and re-floods while the withdraw is news. Callers hold
// n.mu.
func (n *Node) handlePeerLeave(from string, pl *PeerLeave) {
	if !n.memberOn || pl.Node == n.id {
		return
	}
	desc, had := n.descriptorOf(pl.Node)
	if !n.dir.Withdraw(pl.Node, pl.Seq) {
		return
	}
	delete(n.lastHeard, pl.Node)
	delete(n.suspects, pl.Node)
	n.shardOnSourceDown(pl.Node)
	if had {
		n.reSourceFrom(pl.Node, desc.Name.String())
	}
	if n.gossipOn {
		n.enqueuePiggy(MemberUpdate{
			Adv:  Advertisement{Source: pl.Node, Seq: pl.Seq, Withdrawn: true},
			Born: n.now(),
		})
	} else {
		n.floodCtl(pl.WireSize(), pl, from)
	}
}

// Join introduces this node to an already-known peer: it sends the join
// handshake carrying this node's advertisements and (over TCP) its
// dialable address. The peer answers with its directory and peer list.
// On TCP the peer must have been added to the transport first.
func (n *Node) Join(peer string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.memberOn {
		return errors.New("athena: membership disabled (set HeartbeatInterval)")
	}
	pj := &PeerJoin{Node: n.id, Addr: n.selfAddr(), Adverts: n.dir.Snapshot()}
	n.accountCtl(pj.WireSize())
	if err := n.tr.Send(peer, pj.WireSize(), pj); err != nil {
		return err
	}
	return nil
}

// Leave floods this node's graceful departure: every replica tombstones
// its advertisement at the current sequence number and re-sources fetches
// that depended on it.
func (n *Node) Leave() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.memberOn {
		return errors.New("athena: membership disabled (set HeartbeatInterval)")
	}
	n.dir.Withdraw(n.id, n.adSeq)
	if n.gossipOn {
		// The tombstone rides the piggyback channel; an immediate probe
		// round seeds its dissemination before this node goes quiet.
		n.left = true
		n.enqueuePiggy(MemberUpdate{
			Adv:  Advertisement{Source: n.id, Seq: n.adSeq, Withdrawn: true},
			Born: n.now(),
		})
		now := n.now()
		n.refreshSampler()
		for _, target := range n.sampler.Next(n.fanout) {
			n.sendProbe(target, now)
		}
	} else {
		pl := &PeerLeave{Node: n.id, Seq: n.adSeq}
		n.floodCtl(pl.WireSize(), pl, "")
	}
	return nil
}

// Rejoin re-announces this node after an outage: it bumps the
// advertisement sequence number past any tombstone or eviction, floods
// the fresh advertisement, and opens an anti-entropy exchange with its
// first neighbor to relearn what changed while it was away. The sim
// cluster calls it from the network's churn hook; a daemon calls it after
// reconnecting.
func (n *Node) Rejoin() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.memberOn {
		return
	}
	now := n.now()
	for k := range n.lastSync {
		delete(n.lastSync, k)
	}
	if n.gossipOn {
		// Pending probe timers from before the outage are stale: drop the
		// probe state so their callbacks become no-ops.
		n.left = false
		for seq := range n.probes {
			delete(n.probes, seq)
		}
	}
	if n.desc != nil {
		n.adSeq++
		n.dir.Advertise(*n.desc, n.adSeq)
		adv := advertisementOf(*n.desc, n.adSeq)
		if n.gossipOn {
			n.enqueuePiggy(MemberUpdate{Adv: adv, Born: now})
		} else {
			g := &AdvertGossip{Adverts: []Advertisement{adv}}
			n.floodCtl(g.WireSize(), g, "")
		}
	}
	if n.gossipOn {
		// Relearn what changed while away from a sampled peer, and run an
		// immediate probe round so the fresh advertisement starts spreading.
		n.refreshSampler()
		targets := n.sampler.Next(n.fanout)
		if len(targets) > 0 {
			n.maybeSync(targets[0], now)
		}
		for _, target := range targets {
			n.sendProbe(target, now)
		}
		return
	}
	if nbs := n.tr.Neighbors(); len(nbs) > 0 {
		n.maybeSync(nbs[0], now)
	}
}

// Directory returns the node's directory replica.
func (n *Node) Directory() *Directory { return n.dir }

// MembershipEnabled reports whether the live-membership layer is on.
func (n *Node) MembershipEnabled() bool { return n.memberOn }

// selfAddr returns the transport's dialable address, if it has one.
// Callers hold n.mu.
func (n *Node) selfAddr() string {
	if a, ok := n.tr.(transport.Addresser); ok {
		return a.Addr()
	}
	return ""
}

// peerAddrs returns the transport's known peer addresses, if it tracks
// them. Callers hold n.mu.
func (n *Node) peerAddrs() map[string]string {
	if pl, ok := n.tr.(transport.PeerLister); ok {
		return pl.Peers()
	}
	return nil
}

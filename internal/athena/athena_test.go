package athena

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"athena/internal/boolexpr"
	"athena/internal/names"
	"athena/internal/object"
	"athena/internal/trust"
)

func TestSchemeStringParse(t *testing.T) {
	for _, s := range Schemes() {
		parsed, err := ParseScheme(s.String())
		if err != nil || parsed != s {
			t.Errorf("round trip %v: %v %v", s, parsed, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("ParseScheme accepted bogus")
	}
}

func testDescriptors() []object.Descriptor {
	return []object.Descriptor{
		{
			Name: names.MustParse("/cam/a"), Size: 100, Source: "nodeA",
			Labels: []string{"l1", "l2"}, Validity: time.Minute, ProbTrue: 0.8,
		},
		{
			Name: names.MustParse("/cam/b"), Size: 50, Source: "nodeB",
			Labels: []string{"l2", "l3"}, Validity: time.Minute, ProbTrue: 0.8,
		},
		{
			Name: names.MustParse("/cam/c"), Size: 500, Source: "nodeC",
			Labels: []string{"l1", "l2", "l3", "l4"}, Validity: time.Minute, ProbTrue: 0.8,
		},
	}
}

func TestDirectoryLookups(t *testing.T) {
	d := NewDirectory(testDescriptors())
	if got := d.SourcesFor("l2"); len(got) != 3 {
		t.Errorf("SourcesFor(l2) = %v", got)
	}
	if got := d.SourcesFor("zz"); len(got) != 0 {
		t.Errorf("SourcesFor(zz) = %v", got)
	}
	desc, ok := d.Descriptor("nodeB")
	if !ok || desc.Size != 50 {
		t.Errorf("Descriptor(nodeB) = %+v %v", desc, ok)
	}
}

func TestDirectorySelectSources(t *testing.T) {
	d := NewDirectory(testDescriptors())
	// l1+l2+l3: nodeA(100)+nodeB(50)=150 beats nodeC(500).
	sel := d.SelectSources([]string{"l1", "l2", "l3"})
	if len(sel) != 2 || sel[0] != "nodeA" || sel[1] != "nodeB" {
		t.Errorf("SelectSources = %v", sel)
	}
	// l4 only coverable by nodeC.
	sel = d.SelectSources([]string{"l4"})
	if len(sel) != 1 || sel[0] != "nodeC" {
		t.Errorf("SelectSources(l4) = %v", sel)
	}
	// Uncoverable labels are skipped, coverable ones still selected.
	sel = d.SelectSources([]string{"zz", "l3"})
	if len(sel) != 1 || sel[0] != "nodeB" {
		t.Errorf("SelectSources(zz,l3) = %v", sel)
	}
	if sel := d.SelectSources([]string{"zz"}); sel != nil {
		t.Errorf("SelectSources(zz) = %v", sel)
	}
}

func TestDirectorySourceForLabel(t *testing.T) {
	d := NewDirectory(testDescriptors())
	// Cheapest covering source wins.
	if got := d.SourceForLabel("l2", nil); got != "nodeB" {
		t.Errorf("SourceForLabel(l2) = %q, want nodeB (cheapest)", got)
	}
	// Preferred set restricts the choice.
	if got := d.SourceForLabel("l2", []string{"nodeC"}); got != "nodeC" {
		t.Errorf("SourceForLabel(l2, [nodeC]) = %q", got)
	}
	// Preferred set that does not cover falls back to all sources.
	if got := d.SourceForLabel("l4", []string{"nodeA"}); got != "nodeC" {
		t.Errorf("SourceForLabel(l4, [nodeA]) = %q", got)
	}
	if got := d.SourceForLabel("zz", nil); got != "" {
		t.Errorf("SourceForLabel(zz) = %q", got)
	}
}

func TestDirectorySourceForLabelExcluding(t *testing.T) {
	d := NewDirectory(testDescriptors())
	// Excluding the cheapest source yields the alternate.
	got := d.SourceForLabelExcluding("l2", nil, map[string]bool{"nodeB": true})
	if got != "nodeA" {
		t.Errorf("SourceForLabelExcluding(l2, -nodeB) = %q, want nodeA", got)
	}
	// Excluding every covering source yields "" (caller falls back).
	got = d.SourceForLabelExcluding("l4", nil, map[string]bool{"nodeC": true})
	if got != "" {
		t.Errorf("SourceForLabelExcluding(l4, -nodeC) = %q, want empty", got)
	}
}

var tBase = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestInterestTable(t *testing.T) {
	it := NewInterestTable(10 * time.Second)
	if pending := it.Add("/cam/x", "origin1", "q1", "nb1", []string{"l1"}, tBase); pending {
		t.Error("first Add reported pending")
	}
	if pending := it.Add("/cam/x", "origin2", "q2", "nb2", nil, tBase); !pending {
		t.Error("second Add did not report pending")
	}
	// Duplicate waiter: still pending, not duplicated.
	if pending := it.Add("/cam/x", "origin1", "q1", "nb1", nil, tBase); !pending {
		t.Error("duplicate Add did not report pending")
	}
	if n := it.Len(tBase); n != 2 {
		t.Errorf("Len = %d, want 2", n)
	}
	ws := it.Waiters("/cam/x", tBase.Add(time.Second), true)
	if len(ws) != 2 {
		t.Fatalf("Waiters = %d", len(ws))
	}
	if ws[0].from != "nb1" || ws[1].from != "nb2" {
		t.Errorf("waiter froms = %v %v", ws[0].from, ws[1].from)
	}
	// Consumed: no longer pending.
	if it.Pending("/cam/x", tBase.Add(time.Second)) {
		t.Error("consumed entry still pending")
	}
}

func TestInterestTableExpiry(t *testing.T) {
	it := NewInterestTable(5 * time.Second)
	it.Add("/cam/x", "o", "q", "nb", nil, tBase)
	if !it.Pending("/cam/x", tBase.Add(4*time.Second)) {
		t.Error("entry lapsed early")
	}
	if it.Pending("/cam/x", tBase.Add(6*time.Second)) {
		t.Error("entry survived TTL")
	}
	if ws := it.Waiters("/cam/x", tBase.Add(6*time.Second), true); len(ws) != 0 {
		t.Errorf("stale waiters returned: %d", len(ws))
	}
}

func TestMessageWireSizes(t *testing.T) {
	a := QueryAnnounce{Expr: "a & b"}
	if a.WireSize() <= announceBaseBytes {
		t.Error("announce size ignores expression")
	}
	r := ObjectRequest{}
	if r.WireSize() != requestBytes {
		t.Error("request size")
	}
	d := ObjectData{Size: 1000}
	if d.WireSize() != dataHeaderBytes+1000 {
		t.Error("data size")
	}
	ls := LabelShare{Records: make([]trust.Label, 3)}
	if ls.WireSize() != 3*labelRecordBytes {
		t.Error("label share size")
	}
}

func TestPlanForCachesByExpressionAndDirectoryVersion(t *testing.T) {
	meta := boolexpr.MetaTable{
		"a": {Cost: 1, ProbTrue: 0.5, Validity: time.Second},
		"b": {Cost: 2, ProbTrue: 0.5, Validity: time.Minute},
	}
	dir := NewDirectory(nil)
	n := &Node{scheme: SchemeLVF, meta: meta, dir: dir}
	expr := boolexpr.ToDNF(boolexpr.MustParse("a & b"))
	key := expr.String()

	n.planFor(expr, key)
	if n.stats.PlanCacheHits != 0 {
		t.Fatalf("first planFor hit the cache")
	}
	n.planFor(expr, key)
	if n.stats.PlanCacheHits != 1 {
		t.Fatalf("second planFor missed the cache: hits = %d", n.stats.PlanCacheHits)
	}

	// A directory version bump (any membership event) invalidates the
	// cached plan; the next call re-plans and re-caches.
	dir.Advertise(object.Descriptor{
		Name: names.MustParse("/new/src"), Source: "newsrc", Size: 10,
		Validity: time.Minute, Labels: []string{"a"},
	}, 1)
	n.planFor(expr, key)
	if n.stats.PlanCacheHits != 1 {
		t.Fatalf("planFor used a stale plan after directory change: hits = %d", n.stats.PlanCacheHits)
	}
	n.planFor(expr, key)
	if n.stats.PlanCacheHits != 2 {
		t.Fatalf("planFor did not re-cache after directory change: hits = %d", n.stats.PlanCacheHits)
	}
}

func BenchmarkPlanFor(b *testing.B) {
	meta := make(boolexpr.MetaTable)
	labels := make([]string, 12)
	for i := range labels {
		labels[i] = fmt.Sprintf("l%02d", i)
		meta[labels[i]] = boolexpr.Meta{
			Cost:     float64(100 + i*37),
			ProbTrue: 0.5,
			Validity: time.Duration(1+i) * time.Second,
		}
	}
	exprText := strings.Join(labels[:6], " & ") + " | " + strings.Join(labels[6:], " & ")
	expr := boolexpr.ToDNF(boolexpr.MustParse(exprText))
	key := expr.String()

	b.Run("uncached", func(b *testing.B) {
		n := &Node{scheme: SchemeLVF, meta: meta, dir: NewDirectory(nil)}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n.planCache = nil // force a re-plan, as before memoization
			n.planFor(expr, key)
		}
	})
	b.Run("cached", func(b *testing.B) {
		n := &Node{scheme: SchemeLVF, meta: meta, dir: NewDirectory(nil)}
		n.planFor(expr, key)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n.planFor(expr, key)
		}
	})
}

func TestPlanForLVFOrdersByValidity(t *testing.T) {
	meta := boolexpr.MetaTable{
		"short": {Cost: 1, ProbTrue: 0.5, Validity: time.Second},
		"long":  {Cost: 1, ProbTrue: 0.5, Validity: time.Hour},
		"mid":   {Cost: 1, ProbTrue: 0.5, Validity: time.Minute},
	}
	n := &Node{scheme: SchemeLVF, meta: meta, dir: NewDirectory(nil)}
	expr := boolexpr.ToDNF(boolexpr.MustParse("short & long & mid"))
	plan := n.planFor(expr, expr.String())
	order := plan.LiteralOrder[0]
	lits := expr.Terms[0].Literals
	if lits[order[0]].Label != "long" || lits[order[2]].Label != "short" {
		t.Errorf("LVF literal order = [%s %s %s]",
			lits[order[0]].Label, lits[order[1]].Label, lits[order[2]].Label)
	}
}

package names

import "sort"

// Trie is a component-wise prefix tree mapping Names to values. It backs
// forwarding tables (longest-prefix match), content indexes (prefix walks),
// and approximate substitution (Nearest). The zero value is an empty trie.
type Trie[V any] struct {
	root trieNode[V]
	size int
}

type trieNode[V any] struct {
	children map[string]*trieNode[V]
	value    V
	present  bool
}

// Len reports the number of names stored.
func (t *Trie[V]) Len() int { return t.size }

// Put stores value under name, replacing any previous value.
func (t *Trie[V]) Put(name Name, value V) {
	node := &t.root
	for _, c := range name.Components() {
		if node.children == nil {
			node.children = make(map[string]*trieNode[V])
		}
		next, ok := node.children[c]
		if !ok {
			next = &trieNode[V]{}
			node.children[c] = next
		}
		node = next
	}
	if !node.present {
		t.size++
	}
	node.value = value
	node.present = true
}

// Get returns the value stored exactly under name.
func (t *Trie[V]) Get(name Name) (V, bool) {
	node := t.lookup(name)
	if node == nil || !node.present {
		var zero V
		return zero, false
	}
	return node.value, true
}

// Delete removes name. It reports whether the name was present. Interior
// nodes left childless are pruned.
func (t *Trie[V]) Delete(name Name) bool {
	comps := name.Components()
	if len(comps) == 0 {
		return false
	}
	return t.deleteRec(&t.root, comps)
}

func (t *Trie[V]) deleteRec(node *trieNode[V], comps []string) bool {
	if len(comps) == 0 {
		if !node.present {
			return false
		}
		node.present = false
		var zero V
		node.value = zero
		t.size--
		return true
	}
	child, ok := node.children[comps[0]]
	if !ok {
		return false
	}
	deleted := t.deleteRec(child, comps[1:])
	if deleted && !child.present && len(child.children) == 0 {
		delete(node.children, comps[0])
	}
	return deleted
}

func (t *Trie[V]) lookup(name Name) *trieNode[V] {
	node := &t.root
	for _, c := range name.Components() {
		next, ok := node.children[c]
		if !ok {
			return nil
		}
		node = next
	}
	return node
}

// LongestPrefix returns the deepest stored name that is a prefix of the
// query, with its value — the NDN FIB lookup.
func (t *Trie[V]) LongestPrefix(query Name) (Name, V, bool) {
	node := &t.root
	comps := query.Components()
	var (
		bestDepth = -1
		bestValue V
	)
	depth := 0
	if node.present { // a root entry would be depth 0; names can't be root
		bestDepth = 0
		bestValue = node.value
	}
	for _, c := range comps {
		next, ok := node.children[c]
		if !ok {
			break
		}
		node = next
		depth++
		if node.present {
			bestDepth = depth
			bestValue = node.value
		}
	}
	if bestDepth <= 0 {
		var zero V
		return Name{}, zero, false
	}
	prefix, err := New(comps[:bestDepth]...)
	if err != nil {
		var zero V
		return Name{}, zero, false
	}
	return prefix, bestValue, true
}

// WalkPrefix visits every stored name under prefix (inclusive) in
// lexicographic order. Returning false from fn stops the walk.
func (t *Trie[V]) WalkPrefix(prefix Name, fn func(Name, V) bool) {
	start := &t.root
	comps := prefix.Components()
	for _, c := range comps {
		next, ok := start.children[c]
		if !ok {
			return
		}
		start = next
	}
	walk(start, comps, fn)
}

// Walk visits every stored name in lexicographic order.
func (t *Trie[V]) Walk(fn func(Name, V) bool) {
	walk(&t.root, nil, fn)
}

func walk[V any](node *trieNode[V], comps []string, fn func(Name, V) bool) bool {
	if node.present && len(comps) > 0 {
		name, err := New(comps...)
		if err == nil && !fn(name, node.value) {
			return false
		}
	}
	keys := make([]string, 0, len(node.children))
	for k := range node.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !walk(node.children[k], append(comps, k), fn) {
			return false
		}
	}
	return true
}

// Nearest implements approximate object substitution (Section V-A): it
// returns the stored name with the highest Similarity to the query that is
// at least minSimilarity, preferring deeper shared prefixes and breaking
// ties lexicographically. An exact match always wins. The accept callback
// (optional) can veto candidates, e.g. stale cache entries.
func (t *Trie[V]) Nearest(query Name, minSimilarity float64, accept func(Name, V) bool) (Name, V, bool) {
	var (
		bestName Name
		bestVal  V
		bestSim  = -1.0
		found    bool
	)
	t.Walk(func(n Name, v V) bool {
		if accept != nil && !accept(n, v) {
			return true
		}
		sim := query.Similarity(n)
		if sim > bestSim || (sim == bestSim && found && n.Compare(bestName) < 0) {
			bestSim, bestName, bestVal, found = sim, n, v, true
		}
		return bestSim < 1.0 // stop early on exact match
	})
	if !found || bestSim < minSimilarity {
		var zero V
		return Name{}, zero, false
	}
	return bestName, bestVal, true
}

package names

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"/a", "/a"},
		{"/a/b/c", "/a/b/c"},
		{"/city/marketplace/south/noon/camera1/", "/city/marketplace/south/noon/camera1"},
	}
	for _, tc := range cases {
		n, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if n.String() != tc.want {
			t.Errorf("Parse(%q) = %q, want %q", tc.in, n, tc.want)
		}
	}
}

func TestParseInvalid(t *testing.T) {
	cases := []struct {
		in      string
		wantErr error
	}{
		{"", ErrEmpty},
		{"/", ErrEmpty},
		{"a/b", ErrMalformed},
		{"/a//b", ErrMalformed},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.in); !errors.Is(err, tc.wantErr) {
			t.Errorf("Parse(%q) err = %v, want %v", tc.in, err, tc.wantErr)
		}
	}
}

func TestComponentsDepthParentChild(t *testing.T) {
	n := MustParse("/a/b/c")
	if got := n.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
	comps := n.Components()
	if len(comps) != 3 || comps[0] != "a" || comps[2] != "c" {
		t.Errorf("Components = %v", comps)
	}
	p, ok := n.Parent()
	if !ok || p.String() != "/a/b" {
		t.Errorf("Parent = %v, %v", p, ok)
	}
	root := MustParse("/a")
	if _, ok := root.Parent(); ok {
		t.Error("single-component name has a parent")
	}
	c, err := n.Child("d")
	if err != nil || c.String() != "/a/b/c/d" {
		t.Errorf("Child = %v, %v", c, err)
	}
}

func TestHasPrefix(t *testing.T) {
	cases := []struct {
		n, prefix string
		want      bool
	}{
		{"/a/b/c", "/a/b", true},
		{"/a/b/c", "/a/b/c", true},
		{"/a/bc", "/a/b", false},
		{"/a/b", "/a/b/c", false},
		{"/x/y", "/a", false},
	}
	for _, tc := range cases {
		got := MustParse(tc.n).HasPrefix(MustParse(tc.prefix))
		if got != tc.want {
			t.Errorf("HasPrefix(%q, %q) = %v, want %v", tc.n, tc.prefix, got, tc.want)
		}
	}
}

func TestSimilarity(t *testing.T) {
	a := MustParse("/city/marketplace/south/noon/camera1")
	b := MustParse("/city/marketplace/south/noon/camera2")
	c := MustParse("/city/harbor/north")
	if got := a.Similarity(b); got != 0.8 {
		t.Errorf("sibling similarity = %v, want 0.8", got)
	}
	if got := a.Similarity(a); got != 1.0 {
		t.Errorf("self similarity = %v, want 1", got)
	}
	if got, want := a.Similarity(c), 1.0/5.0; got != want {
		t.Errorf("distant similarity = %v, want %v", got, want)
	}
}

func TestSimilaritySymmetric(t *testing.T) {
	f := func(a, b uint8) bool {
		n := MustParse("/r/" + strings.Repeat("x/", int(a%5)) + "leaf")
		m := MustParse("/r/" + strings.Repeat("x/", int(b%5)) + "leaf")
		return n.Similarity(m) == m.Similarity(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrieBasics(t *testing.T) {
	var tr Trie[int]
	tr.Put(MustParse("/a/b"), 1)
	tr.Put(MustParse("/a/b/c"), 2)
	tr.Put(MustParse("/a/b"), 3) // overwrite
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if v, ok := tr.Get(MustParse("/a/b")); !ok || v != 3 {
		t.Errorf("Get(/a/b) = %d, %v", v, ok)
	}
	if _, ok := tr.Get(MustParse("/a")); ok {
		t.Error("Get(/a) found interior node")
	}
	if !tr.Delete(MustParse("/a/b/c")) {
		t.Error("Delete(/a/b/c) = false")
	}
	if tr.Delete(MustParse("/a/b/c")) {
		t.Error("double Delete = true")
	}
	if tr.Len() != 1 {
		t.Errorf("Len after delete = %d, want 1", tr.Len())
	}
}

func TestTrieLongestPrefix(t *testing.T) {
	var tr Trie[string]
	tr.Put(MustParse("/a"), "A")
	tr.Put(MustParse("/a/b/c"), "ABC")
	name, v, ok := tr.LongestPrefix(MustParse("/a/b/c/d"))
	if !ok || name.String() != "/a/b/c" || v != "ABC" {
		t.Errorf("LongestPrefix = %v %q %v", name, v, ok)
	}
	name, v, ok = tr.LongestPrefix(MustParse("/a/x"))
	if !ok || name.String() != "/a" || v != "A" {
		t.Errorf("LongestPrefix(/a/x) = %v %q %v", name, v, ok)
	}
	if _, _, ok := tr.LongestPrefix(MustParse("/z")); ok {
		t.Error("LongestPrefix(/z) matched")
	}
}

func TestTrieWalkPrefixOrder(t *testing.T) {
	var tr Trie[int]
	for i, s := range []string{"/a/b", "/a/a", "/a/c/d", "/b/x"} {
		tr.Put(MustParse(s), i)
	}
	var got []string
	tr.WalkPrefix(MustParse("/a"), func(n Name, _ int) bool {
		got = append(got, n.String())
		return true
	})
	want := []string{"/a/a", "/a/b", "/a/c/d"}
	if len(got) != len(want) {
		t.Fatalf("WalkPrefix = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WalkPrefix = %v, want %v", got, want)
		}
	}
}

func TestPrefix(t *testing.T) {
	n := MustParse("/a/b/c")
	cases := []struct {
		depth int
		want  string
	}{
		{-1, ""}, {0, ""}, {1, "/a"}, {2, "/a/b"}, {3, "/a/b/c"}, {4, "/a/b/c"},
	}
	for _, c := range cases {
		if got := n.Prefix(c.depth); got.String() != c.want {
			t.Errorf("Prefix(%d) = %q, want %q", c.depth, got, c.want)
		}
	}
	if got := (Name{}).Prefix(2); !got.IsZero() {
		t.Errorf("zero Prefix = %q, want zero", got)
	}
	// Prefix output is always a component-wise prefix of the input.
	deep := MustParse("/grid/cam/3-4")
	for d := 1; d <= deep.Depth(); d++ {
		p := deep.Prefix(d)
		if !deep.HasPrefix(p) || p.Depth() != d {
			t.Errorf("Prefix(%d) = %q: not a depth-%d prefix of %q", d, p, d, deep)
		}
	}
}

// Delete of a name that is a prefix of another live name must keep the
// deeper name reachable and must not prune the shared interior path.
func TestTrieDeletePrefixOfLiveName(t *testing.T) {
	var tr Trie[int]
	tr.Put(MustParse("/a/b"), 1)
	tr.Put(MustParse("/a/b/c"), 2)
	if !tr.Delete(MustParse("/a/b")) {
		t.Fatal("Delete(/a/b) = false")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	if _, ok := tr.Get(MustParse("/a/b")); ok {
		t.Error("deleted /a/b still present")
	}
	if v, ok := tr.Get(MustParse("/a/b/c")); !ok || v != 2 {
		t.Errorf("Get(/a/b/c) after prefix delete = %d, %v; want 2, true", v, ok)
	}
	// The longest-prefix view must now skip the deleted interior entry.
	if name, _, ok := tr.LongestPrefix(MustParse("/a/b/c/d")); !ok || name.String() != "/a/b/c" {
		t.Errorf("LongestPrefix after prefix delete = %v %v, want /a/b/c", name, ok)
	}
	// Re-inserting the prefix restores it without disturbing the child.
	tr.Put(MustParse("/a/b"), 7)
	if v, ok := tr.Get(MustParse("/a/b")); !ok || v != 7 {
		t.Errorf("re-Put Get(/a/b) = %d, %v", v, ok)
	}
	if tr.Len() != 2 {
		t.Errorf("Len after re-Put = %d, want 2", tr.Len())
	}
}

// WalkPrefix from the root (zero Name) must visit every stored name in
// lexicographic order, identically to Walk.
func TestTrieWalkPrefixFromRoot(t *testing.T) {
	var tr Trie[int]
	stored := []string{"/b/x", "/a/b", "/a", "/c"}
	for i, s := range stored {
		tr.Put(MustParse(s), i)
	}
	var viaWalk, viaPrefix []string
	tr.Walk(func(n Name, _ int) bool {
		viaWalk = append(viaWalk, n.String())
		return true
	})
	tr.WalkPrefix(Name{}, func(n Name, _ int) bool {
		viaPrefix = append(viaPrefix, n.String())
		return true
	})
	want := []string{"/a", "/a/b", "/b/x", "/c"}
	if len(viaPrefix) != len(want) {
		t.Fatalf("WalkPrefix(root) = %v, want %v", viaPrefix, want)
	}
	for i := range want {
		if viaPrefix[i] != want[i] || viaWalk[i] != want[i] {
			t.Fatalf("WalkPrefix(root) = %v, Walk = %v, want %v", viaPrefix, viaWalk, want)
		}
	}
	// Early stop from the root is honoured.
	var first []string
	tr.WalkPrefix(Name{}, func(n Name, _ int) bool {
		first = append(first, n.String())
		return false
	})
	if len(first) != 1 || first[0] != "/a" {
		t.Errorf("WalkPrefix(root) early stop = %v, want [/a]", first)
	}
}

// LongestPrefix when only an interior (non-present) node lies on the query
// path must report no match: traversal alone is not a hit.
func TestTrieLongestPrefixInteriorOnly(t *testing.T) {
	var tr Trie[string]
	tr.Put(MustParse("/a/b/c"), "ABC")
	// /a and /a/b are interior nodes only.
	if name, v, ok := tr.LongestPrefix(MustParse("/a/b")); ok {
		t.Errorf("LongestPrefix(/a/b) = %v %q, want miss (interior only)", name, v)
	}
	if name, v, ok := tr.LongestPrefix(MustParse("/a/x/y")); ok {
		t.Errorf("LongestPrefix(/a/x/y) = %v %q, want miss (interior only)", name, v)
	}
	// The stored leaf itself still matches, both exactly and below.
	if name, _, ok := tr.LongestPrefix(MustParse("/a/b/c")); !ok || name.String() != "/a/b/c" {
		t.Errorf("LongestPrefix(/a/b/c) = %v %v, want exact hit", name, ok)
	}
	// After deleting the leaf, the whole chain is interior; nothing matches.
	tr.Delete(MustParse("/a/b/c"))
	if _, _, ok := tr.LongestPrefix(MustParse("/a/b/c/d")); ok {
		t.Error("LongestPrefix after delete still matches")
	}
}

func TestTrieNearest(t *testing.T) {
	var tr Trie[int]
	tr.Put(MustParse("/city/market/south/cam1"), 1)
	tr.Put(MustParse("/city/market/north/cam9"), 2)
	tr.Put(MustParse("/rural/farm"), 3)

	// Exact present: returns it.
	n, v, ok := tr.Nearest(MustParse("/city/market/south/cam1"), 0.5, nil)
	if !ok || v != 1 || n.String() != "/city/market/south/cam1" {
		t.Errorf("Nearest exact = %v %d %v", n, v, ok)
	}
	// Sibling camera substitution.
	n, v, ok = tr.Nearest(MustParse("/city/market/south/cam2"), 0.5, nil)
	if !ok || v != 1 {
		t.Errorf("Nearest sibling = %v %d %v", n, v, ok)
	}
	// Threshold too high: nothing acceptable.
	if _, _, ok := tr.Nearest(MustParse("/ocean/deep"), 0.5, nil); ok {
		t.Error("Nearest found dissimilar match")
	}
	// Veto the best candidate; falls back to next best.
	n, _, ok = tr.Nearest(MustParse("/city/market/south/cam2"), 0.4,
		func(cand Name, _ int) bool { return cand.String() != "/city/market/south/cam1" })
	if !ok || n.String() != "/city/market/north/cam9" {
		t.Errorf("Nearest with veto = %v %v", n, ok)
	}
}

// Property: Put then Get returns the stored value; Delete removes it; Len
// matches a reference map.
func TestTriePropertyAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tr Trie[int]
	ref := make(map[string]int)
	comps := []string{"a", "b", "c", "d"}
	randomName := func() Name {
		depth := 1 + rng.Intn(4)
		parts := make([]string, depth)
		for i := range parts {
			parts[i] = comps[rng.Intn(len(comps))]
		}
		n, err := New(parts...)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	for i := 0; i < 2000; i++ {
		n := randomName()
		switch rng.Intn(3) {
		case 0:
			tr.Put(n, i)
			ref[n.String()] = i
		case 1:
			got, ok := tr.Get(n)
			want, wok := ref[n.String()]
			if ok != wok || (ok && got != want) {
				t.Fatalf("Get(%v) = %d,%v want %d,%v", n, got, ok, want, wok)
			}
		case 2:
			got := tr.Delete(n)
			_, want := ref[n.String()]
			if got != want {
				t.Fatalf("Delete(%v) = %v want %v", n, got, want)
			}
			delete(ref, n.String())
		}
		if tr.Len() != len(ref) {
			t.Fatalf("Len = %d want %d", tr.Len(), len(ref))
		}
	}
}

func BenchmarkTrieLongestPrefix(b *testing.B) {
	var tr Trie[int]
	for i := 0; i < 26; i++ {
		for j := 0; j < 26; j++ {
			n, _ := New(string(rune('a'+i)), string(rune('a'+j)), "leaf")
			tr.Put(n, i*26+j)
		}
	}
	q := MustParse("/m/n/leaf/extra/deep")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.LongestPrefix(q)
	}
}

// Property: Parse never panics and, when it succeeds, produces a
// canonical name that re-parses to itself.
func TestQuickParseTotalAndCanonical(t *testing.T) {
	f := func(s string) bool {
		n, err := Parse(s)
		if err != nil {
			return true
		}
		again, err := Parse(n.String())
		return err == nil && again.Compare(n) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: similarity is within [0,1], 1 exactly for equal names, and
// has the shared-prefix monotonicity: extending both names by the same
// component never lowers the shared prefix count.
func TestQuickSimilarityBounds(t *testing.T) {
	comps := []string{"a", "b", "c"}
	f := func(xs, ys []uint8) bool {
		build := func(picks []uint8) (Name, bool) {
			parts := make([]string, 0, len(picks)%6+1)
			for i := 0; i < len(picks)%6+1; i++ {
				parts = append(parts, comps[int(picks[i%max(len(picks), 1)])%len(comps)])
			}
			n, err := New(parts...)
			return n, err == nil
		}
		if len(xs) == 0 || len(ys) == 0 {
			return true
		}
		a, ok1 := build(xs)
		b, ok2 := build(ys)
		if !ok1 || !ok2 {
			return true
		}
		sim := a.Similarity(b)
		if sim < 0 || sim > 1 {
			return false
		}
		if a.Compare(b) == 0 && sim != 1 {
			return false
		}
		ax, err1 := a.Child("z")
		bx, err2 := b.Child("z")
		if err1 != nil || err2 != nil {
			return true
		}
		return ax.CommonPrefixLen(bx) >= a.CommonPrefixLen(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

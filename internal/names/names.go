// Package names implements hierarchical semantic naming (Section V-A of the
// paper): UNIX-path-like content names where a longer shared prefix means
// higher semantic similarity, plus a prefix trie used for routing tables
// (FIB), content stores, and approximate object substitution.
package names

import (
	"errors"
	"fmt"
	"strings"
)

// Name is a hierarchical content name such as
// "/city/marketplace/south/noon/camera1". It is stored in canonical form:
// leading slash, no trailing slash, no empty components.
type Name struct {
	s string
}

var (
	// ErrEmpty is returned when parsing an empty or root-only name.
	ErrEmpty = errors.New("names: empty name")
	// ErrMalformed is returned when a name has empty components or no
	// leading slash.
	ErrMalformed = errors.New("names: malformed name")
)

// Parse validates and canonicalizes a textual name.
func Parse(s string) (Name, error) {
	if s == "" || s == "/" {
		return Name{}, ErrEmpty
	}
	if !strings.HasPrefix(s, "/") {
		return Name{}, fmt.Errorf("%w: %q lacks leading slash", ErrMalformed, s)
	}
	s = strings.TrimSuffix(s, "/")
	parts := strings.Split(s[1:], "/")
	for _, p := range parts {
		if p == "" {
			return Name{}, fmt.Errorf("%w: %q has empty component", ErrMalformed, s)
		}
	}
	return Name{s: s}, nil
}

// MustParse is Parse that panics on error, for static names in tests and
// examples.
func MustParse(s string) Name {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

// New builds a name from components.
func New(components ...string) (Name, error) {
	return Parse("/" + strings.Join(components, "/"))
}

// IsZero reports whether n is the zero Name.
func (n Name) IsZero() bool { return n.s == "" }

// String returns the canonical textual form.
func (n Name) String() string { return n.s }

// Components splits the name into path components.
func (n Name) Components() []string {
	if n.IsZero() {
		return nil
	}
	return strings.Split(n.s[1:], "/")
}

// Depth is the number of components.
func (n Name) Depth() int {
	if n.IsZero() {
		return 0
	}
	return strings.Count(n.s, "/")
}

// Child returns the name extended by one component.
func (n Name) Child(component string) (Name, error) {
	return Parse(n.s + "/" + component)
}

// Parent returns the name with the last component removed, and false if n
// has a single component (no parent).
func (n Name) Parent() (Name, bool) {
	i := strings.LastIndexByte(n.s, '/')
	if i <= 0 {
		return Name{}, false
	}
	return Name{s: n.s[:i]}, true
}

// HasPrefix reports whether prefix is a component-wise prefix of n
// ("/a/b" is a prefix of "/a/b/c" but not of "/a/bc").
func (n Name) HasPrefix(prefix Name) bool {
	if prefix.IsZero() {
		return true
	}
	if len(prefix.s) > len(n.s) {
		return false
	}
	if n.s[:len(prefix.s)] != prefix.s {
		return false
	}
	return len(n.s) == len(prefix.s) || n.s[len(prefix.s)] == '/'
}

// Prefix returns the name truncated to its first depth components — the
// partition key used when sharding a namespace by leading prefix. depth <= 0
// yields the zero Name; depth >= Depth() returns n unchanged.
func (n Name) Prefix(depth int) Name {
	if depth <= 0 || n.IsZero() {
		return Name{}
	}
	end := 0
	for k := 0; k < depth; k++ {
		j := strings.IndexByte(n.s[end+1:], '/')
		if j < 0 {
			return n
		}
		end += 1 + j
	}
	return Name{s: n.s[:end]}
}

// CommonPrefixLen returns the number of leading components n shares with m.
func (n Name) CommonPrefixLen(m Name) int {
	a, b := n.Components(), m.Components()
	limit := min(len(a), len(b))
	k := 0
	for k < limit && a[k] == b[k] {
		k++
	}
	return k
}

// Similarity is the paper's semantic-similarity proxy: shared-prefix length
// normalized by the longer name's depth, in [0, 1]. Identical names score 1.
func (n Name) Similarity(m Name) float64 {
	da, db := n.Depth(), m.Depth()
	if da == 0 || db == 0 {
		return 0
	}
	return float64(n.CommonPrefixLen(m)) / float64(max(da, db))
}

// Compare orders names lexicographically by component.
func (n Name) Compare(m Name) int {
	return strings.Compare(n.s, m.s)
}

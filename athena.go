// Package athena is the public API of the decision-driven execution
// library — a reproduction of "Decision-Driven Execution: A Distributed
// Resource Management Paradigm for the Age of IoT" (ICDCS 2017).
//
// The paradigm ties all resource consumption to the information needs of
// decisions. A decision query is a Boolean expression over predicates
// ("labels"); evidence objects fetched from sensor sources resolve labels
// through annotators; retrieval is scheduled to respect both data-validity
// intervals and decision deadlines while minimizing cost.
//
// Three layers are exposed here:
//
//   - Decision logic and planning: ParseExpr/ToDNF build decision
//     expressions; NewDecision tracks one query's evidence and tells you
//     what to fetch next (short-circuit aware).
//   - The Athena distributed system: NewNode runs one node over any
//     Transport (simulated or TCP); NewCluster wires a whole simulated
//     deployment from a generated Scenario.
//   - The paper's evaluation: GenerateScenario, RunFig2, RunFig3 and the
//     ablations regenerate Section VII's figures.
package athena

import (
	"time"

	iathena "athena/internal/athena"
	"athena/internal/boolexpr"
	"athena/internal/core"
	"athena/internal/experiment"
	"athena/internal/workload"
)

// Decision-logic types.
type (
	// Expr is a decision-logic expression tree over labels.
	Expr = boolexpr.Expr
	// DNF is a decision query in disjunctive normal form: an OR of
	// alternative courses of action, each an AND of conditions.
	DNF = boolexpr.DNF
	// Literal is a possibly negated label inside a DNF term.
	Literal = boolexpr.Literal
	// Term is one course of action: a conjunction of literals.
	Term = boolexpr.Term
	// Meta is per-label planning metadata: retrieval cost, latency,
	// success probability, validity interval (Section III-A).
	Meta = boolexpr.Meta
	// MetaTable maps labels to their metadata.
	MetaTable = boolexpr.MetaTable
	// QueryPlan orders terms and literals for retrieval.
	QueryPlan = boolexpr.QueryPlan
	// Value is three-valued logic: True, False or Unknown.
	Value = boolexpr.Value
	// Assignment maps labels to values.
	Assignment = boolexpr.Assignment
)

// Three-valued logic constants.
const (
	Unknown = boolexpr.Unknown
	True    = boolexpr.True
	False   = boolexpr.False
)

// Decision engine types.
type (
	// Decision tracks one decision query: held evidence with expiry,
	// resolution status, and the next label the plan wants resolved.
	Decision = core.Engine
	// DecisionStatus is the query's progress.
	DecisionStatus = core.Status
)

// Decision statuses.
const (
	// Pending means more evidence is needed.
	Pending = core.Pending
	// ResolvedTrue means a viable course of action was found in time.
	ResolvedTrue = core.ResolvedTrue
	// ResolvedFalse means every course of action was ruled out in time.
	ResolvedFalse = core.ResolvedFalse
	// Expired means the deadline passed first.
	Expired = core.Expired
)

// Distributed-system types.
type (
	// Scheme is a retrieval strategy (cmp, slt, lcf, lvf, lvfl).
	Scheme = iathena.Scheme
	// Node is one Athena node.
	Node = iathena.Node
	// NodeConfig assembles a node.
	NodeConfig = iathena.Config
	// QueryResult is the outcome of a node-local query.
	QueryResult = iathena.QueryResult
	// NodeStats counts a node's activity.
	NodeStats = iathena.Stats
	// Directory is the semantic lookup service mapping labels to
	// sources — a mutable, versioned advertisement store.
	Directory = iathena.Directory
	// Advertisement is the wire form of one source's directory record.
	Advertisement = iathena.Advertisement
	// Cluster is a fully wired simulated deployment.
	Cluster = iathena.Cluster
	// ClusterConfig tunes a simulated deployment.
	ClusterConfig = iathena.ClusterConfig
	// Outcome aggregates a finished cluster run.
	Outcome = iathena.Outcome
)

// Retrieval schemes (Section VII).
const (
	// SchemeCMP is comprehensive retrieval.
	SchemeCMP = iathena.SchemeCMP
	// SchemeSLT adds source selection.
	SchemeSLT = iathena.SchemeSLT
	// SchemeLCF dispatches lowest-cost-first.
	SchemeLCF = iathena.SchemeLCF
	// SchemeLVF is decision-driven longest-validity-first scheduling.
	SchemeLVF = iathena.SchemeLVF
	// SchemeLVFL is LVF with label sharing.
	SchemeLVFL = iathena.SchemeLVFL
)

// Workload and experiment types.
type (
	// WorkloadConfig parameterizes the Section VII scenario generator.
	WorkloadConfig = workload.Config
	// Scenario is a generated evaluation instance.
	Scenario = workload.Scenario
	// World is the ground-truth environment model.
	World = workload.World
	// ExperimentConfig parameterizes figure regeneration.
	ExperimentConfig = experiment.Config
	// Point is one aggregated experiment data point.
	Point = experiment.Point
	// AblationRow is one row of an ablation table.
	AblationRow = experiment.AblationRow
)

// ParseExpr parses a decision-logic expression such as
//
//	(viableA & viableB & viableC) | (viableD & viableE & viableF)
func ParseExpr(s string) (Expr, error) { return boolexpr.Parse(s) }

// MustParseExpr is ParseExpr that panics on error, for static expressions.
func MustParseExpr(s string) Expr { return boolexpr.MustParse(s) }

// ToDNF converts an expression to disjunctive normal form, simplifying
// contradictions, duplicates and absorbed terms.
func ToDNF(e Expr) DNF { return boolexpr.ToDNF(e) }

// GreedyPlan builds the Section III-A short-circuit retrieval plan:
// literals by descending (1-p)/C within terms, terms by success
// probability per unit expected cost.
func GreedyPlan(d DNF, m MetaTable) QueryPlan { return boolexpr.GreedyPlan(d, m) }

// ExpectedQueryCost is the expected retrieval cost of executing plan on d.
func ExpectedQueryCost(d DNF, m MetaTable, plan QueryPlan) float64 {
	return boolexpr.ExpectedQueryCost(d, m, plan)
}

// NewDecision creates a decision engine for a query with the given
// absolute deadline. Use Set to feed resolved labels, Step to poll status,
// and NextLabel to ask what evidence the plan wants next.
func NewDecision(id string, expr DNF, deadline time.Time, meta MetaTable) *Decision {
	return core.NewEngine(id, expr, deadline, meta)
}

// Schemes lists all retrieval schemes in the paper's order.
func Schemes() []Scheme { return iathena.Schemes() }

// ParseScheme parses a scheme abbreviation (cmp, slt, lcf, lvf, lvfl).
func ParseScheme(s string) (Scheme, error) { return iathena.ParseScheme(s) }

// NewNode assembles an Athena node over the given transport and routing.
func NewNode(cfg NodeConfig) (*Node, error) { return iathena.New(cfg) }

// NewDirectory indexes source advertisements into a semantic lookup
// service.
func NewDirectory(s *Scenario) *Directory { return iathena.NewDirectory(s.Sources) }

// DefaultWorkload returns the paper's Section VII scenario parameters:
// an 8x8 Manhattan grid, 30 nodes, 1 Mbps links, 100 KB-1 MB objects,
// 5 candidate routes per query, 3 queries per node.
func DefaultWorkload() WorkloadConfig { return workload.DefaultConfig() }

// GenerateScenario builds a deterministic evaluation scenario.
func GenerateScenario(cfg WorkloadConfig) (*Scenario, error) { return workload.Generate(cfg) }

// NewCluster wires a simulated Athena deployment for a scenario.
func NewCluster(s *Scenario, cfg ClusterConfig) (*Cluster, error) {
	return iathena.NewCluster(s, cfg)
}

// DefaultExperiment returns the Section VII experiment configuration
// (10 repetitions per point, all five schemes, dynamics 0..1).
func DefaultExperiment() ExperimentConfig { return experiment.Default() }

// RunFig2 regenerates Figure 2: query resolution ratio vs environment
// dynamics, per scheme.
func RunFig2(cfg ExperimentConfig) ([]Point, error) { return experiment.Fig2(cfg) }

// RunFig3 regenerates Figure 3: total network bandwidth per scheme at 40%
// fast-changing objects.
func RunFig3(cfg ExperimentConfig) ([]Point, error) { return experiment.Fig3(cfg) }

// RenderFig2 formats Figure 2 points as the paper's series.
func RenderFig2(points []Point) string { return experiment.RenderFig2(points) }

// RenderFig3 formats Figure 3 points as the paper's bars.
func RenderFig3(points []Point) string { return experiment.RenderFig3(points) }

// ExperimentCSV renders points as CSV.
func ExperimentCSV(points []Point) string { return experiment.CSV(points) }

package athena_test

import (
	"strings"
	"testing"
	"time"

	"athena"
)

func TestFacadeDecisionFlow(t *testing.T) {
	expr, err := athena.ParseExpr("(a & b) | c")
	if err != nil {
		t.Fatal(err)
	}
	dnf := athena.ToDNF(expr)
	if len(dnf.Terms) != 2 {
		t.Fatalf("terms = %d", len(dnf.Terms))
	}
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	meta := athena.MetaTable{
		"a": {Cost: 1, ProbTrue: 0.9, Validity: time.Minute},
		"b": {Cost: 1, ProbTrue: 0.9, Validity: time.Minute},
		"c": {Cost: 100, ProbTrue: 0.1, Validity: time.Minute},
	}
	d := athena.NewDecision("q", dnf, now.Add(time.Minute), meta)
	if d.Step(now) != athena.Pending {
		t.Fatal("not pending")
	}
	label, ok := d.NextLabel(now)
	if !ok || (label != "a" && label != "b") {
		t.Fatalf("NextLabel = %q (plan should try the cheap likely term)", label)
	}
	if err := d.Set("c", true, now.Add(time.Minute), "s", "ann"); err != nil {
		t.Fatal(err)
	}
	if d.Step(now) != athena.ResolvedTrue {
		t.Fatal("c=true did not resolve")
	}
}

func TestFacadeExpectedCostWorkedExample(t *testing.T) {
	dnf := athena.ToDNF(athena.MustParseExpr("h & k"))
	meta := athena.MetaTable{
		"h": {Cost: 4, ProbTrue: 0.6},
		"k": {Cost: 5, ProbTrue: 0.2},
	}
	plan := athena.GreedyPlan(dnf, meta)
	if got := athena.ExpectedQueryCost(dnf, meta, plan); got != 5.8 {
		t.Errorf("expected cost = %v, want the paper's 5.8", got)
	}
}

func TestFacadeSchemes(t *testing.T) {
	if got := len(athena.Schemes()); got != 5 {
		t.Fatalf("schemes = %d", got)
	}
	s, err := athena.ParseScheme("lvfl")
	if err != nil || s != athena.SchemeLVFL {
		t.Fatalf("ParseScheme = %v, %v", s, err)
	}
}

func TestFacadeScenarioAndCluster(t *testing.T) {
	cfg := athena.DefaultWorkload()
	cfg.GridRows, cfg.GridCols = 4, 4
	cfg.Nodes = 6
	cfg.QueriesPerNode = 1
	s, err := athena.GenerateScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := athena.NewCluster(s, athena.ClusterConfig{Scheme: athena.SchemeLVFL})
	if err != nil {
		t.Fatal(err)
	}
	out, err := cluster.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.QueriesIssued == 0 || out.TotalBytes == 0 {
		t.Errorf("outcome = %+v", out)
	}
	if r := out.ResolutionRatio(); r < 0 || r > 1 {
		t.Errorf("ratio = %v", r)
	}
}

// worldTrue resolves every label true.
type worldTrue struct{}

func (worldTrue) LabelValue(string, time.Time) bool { return true }

func TestSimNetworkEndToEnd(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	net := athena.NewSimNetwork(start)
	if err := net.AddLink("consumer", "sensor", 125_000, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	src := &athena.SourceDescriptor{
		Name:     athena.MustParseName("/sim/cam"),
		Size:     100_000,
		Validity: time.Minute,
		Labels:   []string{"x", "y"},
		Source:   "sensor",
		ProbTrue: 0.5,
	}
	if err := net.AddNode(athena.SimNodeConfig{ID: "consumer", World: worldTrue{}}); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode(athena.SimNodeConfig{ID: "sensor", World: worldTrue{}, Source: src}); err != nil {
		t.Fatal(err)
	}
	consumer, err := net.Node("consumer")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := consumer.QueryInit(athena.ToDNF(athena.MustParseExpr("x & y")), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	results := consumer.Results()
	if len(results) != 1 || results[0].Status != athena.ResolvedTrue {
		t.Fatalf("results = %+v", results)
	}
	if net.BytesSent() < 100_000 {
		t.Errorf("BytesSent = %d", net.BytesSent())
	}
	if !net.Now().After(start) {
		t.Error("clock did not advance")
	}
}

// simParallelRun builds a small three-node chain on the parallel kernel
// with the given worker count and returns its traffic totals and the
// consumer's results.
func simParallelRun(t *testing.T, workers int) (int64, []athena.QueryResult) {
	t.Helper()
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	net := athena.NewSimNetwork(start)
	if err := net.SetWorkers(workers, 42); err != nil {
		t.Fatal(err)
	}
	if err := net.AddLink("consumer", "relay", 125_000, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := net.AddLink("relay", "sensor", 125_000, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	src := &athena.SourceDescriptor{
		Name:     athena.MustParseName("/sim/cam"),
		Size:     100_000,
		Validity: time.Minute,
		Labels:   []string{"x", "y"},
		Source:   "sensor",
		ProbTrue: 0.5,
	}
	for _, cfg := range []athena.SimNodeConfig{
		{ID: "consumer", World: worldTrue{}},
		{ID: "relay", World: worldTrue{}},
		{ID: "sensor", World: worldTrue{}, Source: src},
	} {
		if err := net.AddNode(cfg); err != nil {
			t.Fatal(err)
		}
	}
	consumer, err := net.Node("consumer")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := consumer.QueryInit(athena.ToDNF(athena.MustParseExpr("x & y")), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	return net.BytesSent(), consumer.Results()
}

// TestSimNetworkParallelEngine pins the public facade's kernel switch:
// the run resolves identically to the sequential engine's scenario shape
// and the outcome is byte-identical across worker counts.
func TestSimNetworkParallelEngine(t *testing.T) {
	bytes1, res1 := simParallelRun(t, 1)
	if len(res1) != 1 || res1[0].Status != athena.ResolvedTrue {
		t.Fatalf("results = %+v", res1)
	}
	if bytes1 < 100_000 {
		t.Errorf("BytesSent = %d", bytes1)
	}
	for _, w := range []int{2, 4} {
		bytesN, resN := simParallelRun(t, w)
		if bytesN != bytes1 {
			t.Errorf("W=%d: BytesSent = %d, want %d", w, bytesN, bytes1)
		}
		if len(resN) != len(res1) || resN[0].Status != res1[0].Status {
			t.Errorf("W=%d: results = %+v, want %+v", w, resN, res1)
		}
	}
	// SetWorkers must precede topology building and Build.
	late := athena.NewSimNetwork(time.Now())
	if err := late.AddLink("a", "b", 1000, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := late.SetWorkers(2, 1); err == nil {
		t.Error("SetWorkers after AddLink accepted")
	}
}

func TestSimNetworkValidation(t *testing.T) {
	net := athena.NewSimNetwork(time.Now())
	if err := net.AddNode(athena.SimNodeConfig{}); err == nil {
		t.Error("empty node accepted")
	}
	if err := net.AddLink("a", "b", 1000, 0); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode(athena.SimNodeConfig{ID: "a", World: worldTrue{}}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Node("missing"); err == nil {
		t.Error("unknown node returned")
	}
	// Build is implicit and idempotent; post-build mutation fails.
	if err := net.Build(); err != nil {
		t.Fatal(err)
	}
	if err := net.AddLink("c", "d", 1000, 0); err == nil {
		t.Error("AddLink after Build accepted")
	}
	if err := net.AddNode(athena.SimNodeConfig{ID: "e", World: worldTrue{}}); err == nil {
		t.Error("AddNode after Build accepted")
	}
}

func TestFacadeExperimentRender(t *testing.T) {
	cfg := athena.DefaultExperiment()
	cfg.Reps = 1
	cfg.Dynamics = []float64{0.4}
	cfg.Schemes = []athena.Scheme{athena.SchemeLVFL}
	w := athena.DefaultWorkload()
	w.GridRows, w.GridCols = 4, 4
	w.Nodes = 6
	w.QueriesPerNode = 1
	cfg.Workload = w
	points, err := athena.RunFig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points = %d", len(points))
	}
	if out := athena.RenderFig2(points); !strings.Contains(out, "lvfl") {
		t.Errorf("render: %s", out)
	}
	if out := athena.ExperimentCSV(points); !strings.Contains(out, "lvfl,0.40") {
		t.Errorf("csv: %s", out)
	}
}

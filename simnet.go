package athena

import (
	"errors"
	"fmt"
	"time"

	"athena/internal/annotate"
	iathena "athena/internal/athena"
	"athena/internal/metrics"
	"athena/internal/names"
	"athena/internal/netsim"
	"athena/internal/object"
	"athena/internal/simclock"
	"athena/internal/transport"
	"athena/internal/trust"
)

// Naming and source-advertisement types.
type (
	// ContentName is a hierarchical semantic name
	// (e.g. /city/market/south/cam1).
	ContentName = names.Name
	// SourceDescriptor advertises a sensor's object stream: name,
	// typical size, validity interval, and the labels it evidences.
	SourceDescriptor = object.Descriptor
	// GroundTruth supplies the true value of labels over time; machine
	// annotators read it through the evidence's sample instant.
	GroundTruth = annotate.GroundTruth
)

// ParseName parses a hierarchical content name.
func ParseName(s string) (ContentName, error) { return names.Parse(s) }

// MustParseName is ParseName that panics on error.
func MustParseName(s string) ContentName { return names.MustParse(s) }

// SimNetwork is a deterministic simulated Athena deployment built by hand
// — the public testbed for experimenting with the system outside the
// paper's fixed grid scenario. Build links first, then nodes, then issue
// queries and Run.
type SimNetwork struct {
	sched *simclock.Scheduler
	kern  *simclock.Kernel
	net   *netsim.Network
	auth  *trust.Authority
	start time.Time
	reg   *metrics.Registry

	descriptors []SourceDescriptor
	nodeCfgs    []simNodeSpec
	nodes       map[string]*Node
	built       bool
	touched     bool

	hbInterval time.Duration
	hbMiss     int
	gFanout    int
	gSeed      int64
	shards     int
	shardRF    int
}

type simNodeSpec struct {
	id         string
	scheme     Scheme
	descriptor *SourceDescriptor
	world      GroundTruth
	policy     *trust.Policy
	cacheBytes int64
	noPrefetch bool
	noise      float64
	confTarget float64
	approxSim  float64
	critical   ContentName
	noRetries  bool
}

// NewSimNetwork creates an empty simulated network starting at the given
// virtual instant.
func NewSimNetwork(start time.Time) *SimNetwork {
	sched := simclock.New(start)
	return &SimNetwork{
		sched: sched,
		net:   netsim.New(sched),
		auth:  trust.NewAuthority(),
		start: start,
		reg:   metrics.NewRegistry(),
		nodes: make(map[string]*Node),
	}
}

// SetWorkers switches the simulation onto the parallel deterministic
// kernel with the given number of lane executors (values <= 1 still use
// the kernel, single-threaded). seed feeds the kernel's canonical
// merge-order tie-break; the outcome is a pure function of the scenario
// and seed, never of the worker count or GOMAXPROCS. Must be called
// before the first AddLink. Not calling it keeps the sequential
// reference scheduler — the original engine, byte-identical to every
// release before the kernel existed.
func (s *SimNetwork) SetWorkers(workers int, seed int64) error {
	if s.built {
		return errors.New("athena: SetWorkers after Build")
	}
	if s.touched {
		return errors.New("athena: SetWorkers must be called before AddLink")
	}
	s.kern = simclock.NewKernel(s.start, simclock.KernelOpts{Workers: workers, Seed: uint64(seed)})
	s.sched = nil
	s.net = netsim.NewParallel(s.kern)
	return nil
}

// Now returns the current virtual time.
func (s *SimNetwork) Now() time.Time { return s.net.Now() }

// AddLink connects two node ids (creating them as network endpoints if
// needed) with a duplex link of the given bandwidth (bytes/second) and
// one-way latency.
func (s *SimNetwork) AddLink(a, b string, bandwidth float64, latency time.Duration) error {
	if s.built {
		return errors.New("athena: AddLink after Build")
	}
	s.touched = true
	s.net.AddNode(a, nil)
	s.net.AddNode(b, nil)
	return s.net.AddLink(a, b, netsim.LinkConfig{Bandwidth: bandwidth, Latency: latency})
}

// SimNodeConfig describes one node for AddNode.
type SimNodeConfig struct {
	// ID is the node identifier (must appear in at least one AddLink).
	ID string
	// Scheme is the retrieval strategy (default SchemeLVFL).
	Scheme Scheme
	// Source advertises this node's sensor stream (nil for pure
	// forwarders/consumers).
	Source *SourceDescriptor
	// World is the ground truth this node's annotator reads. Required
	// for nodes that issue queries or host sensors.
	World GroundTruth
	// Policy decides whose shared labels this node accepts (default:
	// trust all).
	Policy *trust.Policy
	// CacheBytes bounds the content store (default 16 MB).
	CacheBytes int64
	// DisablePrefetch turns off background prefetching.
	DisablePrefetch bool
	// SensorNoise is the per-annotation error rate; positive values turn
	// on corroboration to ConfidenceTarget (Section IV-B).
	SensorNoise float64
	// ConfidenceTarget is the corroboration confidence (default 0.95
	// when SensorNoise > 0).
	ConfidenceTarget float64
	// ApproxMinSimilarity enables approximate object substitution
	// (Section V-A); zero disables.
	ApproxMinSimilarity float64
	// CriticalPrefix marks the critical name space (Section V-C).
	CriticalPrefix ContentName
	// DisableRetries turns off the timeout/retransmission recovery layer
	// on this node (useful to contrast behaviour under injected faults).
	DisableRetries bool
}

// TrustAllPolicy accepts labels from every verified annotator.
func TrustAllPolicy() *trust.Policy { return trust.TrustAll() }

// TrustOnlyPolicy accepts labels only from the listed annotator node ids.
func TrustOnlyPolicy(annotators ...string) *trust.Policy {
	return trust.TrustOnly(annotators...)
}

// TrustNonePolicy rejects all shared labels, forcing raw-object retrieval.
func TrustNonePolicy() *trust.Policy { return trust.TrustNone() }

// AddNode registers a node specification. Nodes are constructed on Build
// (or the first Run), after all sources are known to the directory.
func (s *SimNetwork) AddNode(cfg SimNodeConfig) error {
	if s.built {
		return errors.New("athena: AddNode after Build")
	}
	if cfg.ID == "" {
		return errors.New("athena: node ID required")
	}
	if cfg.Scheme == 0 {
		cfg.Scheme = SchemeLVFL
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 16 << 20
	}
	if cfg.Policy == nil {
		cfg.Policy = trust.TrustAll()
	}
	if cfg.Source != nil {
		s.descriptors = append(s.descriptors, *cfg.Source)
	}
	s.nodeCfgs = append(s.nodeCfgs, simNodeSpec{
		id:         cfg.ID,
		scheme:     cfg.Scheme,
		descriptor: cfg.Source,
		world:      cfg.World,
		policy:     cfg.Policy,
		cacheBytes: cfg.CacheBytes,
		noPrefetch: cfg.DisablePrefetch,
		noise:      cfg.SensorNoise,
		confTarget: cfg.ConfidenceTarget,
		approxSim:  cfg.ApproxMinSimilarity,
		critical:   cfg.CriticalPrefix,
		noRetries:  cfg.DisableRetries,
	})
	return nil
}

// EnableMembership turns on the live-membership layer for every node
// built afterwards: each node gets its own directory replica (instead of
// the shared static index), floods heartbeats every interval, evicts
// sources that miss `miss` consecutive beats, re-sources their in-flight
// fetches, and reconciles replicas by anti-entropy after partitions heal.
// Nodes returning from a SetNodeDown/ScheduleNodeOutage churn re-announce
// themselves automatically. Must be called before Build/Run.
func (s *SimNetwork) EnableMembership(interval time.Duration, miss int) error {
	if s.built {
		return errors.New("athena: EnableMembership after Build")
	}
	if interval <= 0 {
		return errors.New("athena: membership interval must be positive")
	}
	s.hbInterval = interval
	s.hbMiss = miss
	return nil
}

// EnableGossip switches the membership layer from flooded heartbeats to
// SWIM-style gossip: each heartbeat interval every node probes `fanout`
// sampled peers, failure detection goes through indirect ping-req plus a
// suspicion timeout, and membership updates ride as piggybacked deltas on
// the probe traffic instead of flooding. Peer sampling is seeded from
// `seed` so runs stay deterministic. Requires EnableMembership; must be
// called before Build/Run.
func (s *SimNetwork) EnableGossip(fanout int, seed int64) error {
	if s.built {
		return errors.New("athena: EnableGossip after Build")
	}
	if fanout <= 0 {
		return errors.New("athena: gossip fanout must be positive")
	}
	s.gFanout = fanout
	s.gSeed = seed
	return nil
}

// EnableSharding partitions every node's directory replica into `shards`
// name-prefix shards, each replicated on `replicas` nodes chosen by
// rendezvous hashing over the live membership view. Nodes thin out
// payloads of shards they do not own and route label lookups to shard
// owners, so per-node directory memory and sync traffic stay proportional
// to the owned share instead of the whole fleet. Requires EnableGossip;
// must be called before Build/Run. Not calling it keeps the full-replica
// directory — the pre-sharding behavior.
func (s *SimNetwork) EnableSharding(shards, replicas int) error {
	if s.built {
		return errors.New("athena: EnableSharding after Build")
	}
	if shards <= 0 {
		return errors.New("athena: shard count must be positive")
	}
	if s.gFanout <= 0 {
		return errors.New("athena: EnableSharding requires EnableGossip")
	}
	s.shards = shards
	s.shardRF = replicas
	return nil
}

// Build constructs all registered nodes. Called implicitly by Run.
func (s *SimNetwork) Build() error {
	if s.built {
		return nil
	}
	dir := iathena.NewDirectory(s.descriptors)
	meta := make(MetaTable)
	for _, d := range s.descriptors {
		for _, l := range d.Labels {
			if existing, ok := meta[l]; !ok || float64(d.Size) < existing.Cost {
				meta[l] = Meta{Cost: float64(d.Size), ProbTrue: d.ProbTrue, Validity: d.Validity}
			}
		}
	}
	for _, spec := range s.nodeCfgs {
		nodeDir := dir
		if s.hbInterval > 0 {
			nodeDir = iathena.NewDirectory(s.descriptors)
		}
		// On the kernel engine each node's timers live on its own lane,
		// so callbacks execute with the rest of the node's events.
		var timers iathena.Timers = simTimers{s.sched}
		if s.kern != nil {
			timers = laneSimTimers{s.net.LaneOf(spec.id)}
		}
		node, err := iathena.New(iathena.Config{
			ID:                  spec.id,
			Transport:           transport.NewSim(s.net, spec.id),
			Router:              s.net,
			Timers:              timers,
			Scheme:              spec.scheme,
			Directory:           nodeDir,
			Meta:                meta,
			World:               spec.world,
			Authority:           s.auth,
			Signer:              s.auth.Register(spec.id, []byte("simnet-"+spec.id)),
			Policy:              spec.policy,
			Descriptor:          spec.descriptor,
			CacheBytes:          spec.cacheBytes,
			DisablePrefetch:     spec.noPrefetch,
			SensorNoise:         spec.noise,
			ConfidenceTarget:    spec.confTarget,
			ApproxMinSimilarity: spec.approxSim,
			CriticalPrefix:      spec.critical,
			DisableRetries:      spec.noRetries,
			HeartbeatInterval:   s.hbInterval,
			HeartbeatMiss:       s.hbMiss,
			GossipFanout:        s.gFanout,
			GossipSeed:          s.gSeed,
			Shards:              s.shards,
			ShardReplicas:       s.shardRF,
			Metrics:             s.reg,
		})
		if err != nil {
			return fmt.Errorf("athena: build node %s: %w", spec.id, err)
		}
		s.nodes[spec.id] = node
	}
	if s.hbInterval > 0 {
		s.net.OnChurn(func(id string, up bool) {
			if up {
				if node, ok := s.nodes[id]; ok {
					node.Rejoin()
				}
			}
		})
	}
	s.built = true
	return nil
}

type simTimers struct{ s *simclock.Scheduler }

func (t simTimers) After(d time.Duration, fn func()) { t.s.After(d, fn) }

func (t simTimers) AfterArg(d time.Duration, fn func(any), arg any) { t.s.AfterCall(d, fn, arg) }

type laneSimTimers struct{ l *simclock.Lane }

func (t laneSimTimers) After(d time.Duration, fn func()) { t.l.After(d, fn) }

func (t laneSimTimers) AfterArg(d time.Duration, fn func(any), arg any) { t.l.AfterCall(d, fn, arg) }

// Node returns a built node by id.
func (s *SimNetwork) Node(id string) (*Node, error) {
	if err := s.Build(); err != nil {
		return nil, err
	}
	node, ok := s.nodes[id]
	if !ok {
		return nil, fmt.Errorf("athena: unknown node %q", id)
	}
	return node, nil
}

// Run advances the simulation by d of virtual time, delivering messages
// and firing timers.
func (s *SimNetwork) Run(d time.Duration) error {
	if err := s.Build(); err != nil {
		return err
	}
	return s.net.RunUntil(s.net.Now().Add(d), 0)
}

// MetricsSnapshot is a detached point-in-time copy of a metrics registry:
// counter/gauge values plus latency and decision-age histograms.
type MetricsSnapshot = metrics.Snapshot

// Metrics returns a snapshot of the fleet-wide registry every node in the
// network reports into: cache hits and misses, retry and eviction
// counters, heartbeat traffic, and the query latency / decision-age
// histograms.
func (s *SimNetwork) Metrics() MetricsSnapshot { return s.reg.Snapshot() }

// BytesSent is the total bytes transmitted so far.
func (s *SimNetwork) BytesSent() int64 { return s.net.Stats().BytesSent }

// MessagesLost is the number of messages dropped by the fault-injection
// layer so far.
func (s *SimNetwork) MessagesLost() int64 { return s.net.Stats().MessagesLost }

// SeedFailures arms the deterministic fault-injection layer. Must be
// called before any positive loss probability is set; the same seed
// reproduces the same drop pattern.
func (s *SimNetwork) SeedFailures(seed int64) { s.net.SeedFailures(seed) }

// SetLinkLoss sets the per-message loss probability on the a<->b link.
func (s *SimNetwork) SetLinkLoss(a, b string, p float64) error {
	return s.net.SetLinkLoss(a, b, p)
}

// SetLoss sets the per-message loss probability on every link.
func (s *SimNetwork) SetLoss(p float64) error { return s.net.SetLoss(p) }

// SetLinkDown takes the a<->b link down (or back up). Messages sent over
// a down link are silently dropped, like a radio shadow.
func (s *SimNetwork) SetLinkDown(a, b string, down bool) error {
	return s.net.SetLinkDown(a, b, down)
}

// ScheduleLinkOutage takes the a<->b link down at the given virtual
// instant and restores it after outage.
func (s *SimNetwork) ScheduleLinkOutage(a, b string, at time.Time, outage time.Duration) error {
	return s.net.ScheduleLinkOutage(a, b, at, outage)
}

// SetNodeDown fails (or revives) a node: while down it neither sends nor
// receives.
func (s *SimNetwork) SetNodeDown(id string, down bool) error {
	return s.net.SetNodeDown(id, down)
}

// ScheduleNodeOutage fails the node at the given virtual instant and
// revives it after outage.
func (s *SimNetwork) ScheduleNodeOutage(id string, at time.Time, outage time.Duration) error {
	return s.net.ScheduleNodeOutage(id, at, outage)
}

// OnChurn registers a hook fired whenever a node changes up/down state.
func (s *SimNetwork) OnChurn(fn func(id string, up bool)) { s.net.OnChurn(fn) }
